package harmony

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"harmony/internal/energy"
	"harmony/internal/stats"
	"harmony/internal/trace"
)

// Experiment is the regenerated form of one paper figure or table.
type Experiment struct {
	ID      string
	Title   string
	Series  []Series
	Summary map[string]float64
}

// Render writes the experiment as plain text (header, summary numbers,
// then each series).
func (e *Experiment) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", e.ID, e.Title)
	if len(e.Summary) > 0 {
		keys := make([]string, 0, len(e.Summary))
		for k := range e.Summary {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-40s %12.6g\n", k, e.Summary[k])
		}
	}
	for _, s := range e.Series {
		b.WriteString(s.Render())
	}
	return b.String()
}

// Env holds the lazily built inputs shared by all experiments: the
// workload, its characterization, and the three policy simulations.
// Every cache is sync.Once-guarded, so one Env may be shared by any
// number of goroutines: concurrent callers of the same accessor block
// until the first finishes, and dependent stages (workload →
// characterization → simulation) compose safely.
type Env struct {
	WorkloadCfg     WorkloadConfig
	CharacterizeCfg CharacterizeConfig
	SimCfg          SimulationConfig

	wOnce sync.Once
	w     *Workload
	wErr  error

	cOnce sync.Once
	c     *Characterization
	cErr  error

	baseOnce sync.Once
	base     *SimulationResult
	baseErr  error

	cbsOnce sync.Once
	cbs     *SimulationResult
	cbsErr  error

	cbpOnce sync.Once
	cbp     *SimulationResult
	cbpErr  error
}

// NewEnv creates an experiment environment. Zero-valued configs get the
// package defaults (24h Table II workload at scale 10).
func NewEnv(wc WorkloadConfig, cc CharacterizeConfig, sc SimulationConfig) *Env {
	if wc.ClusterScale <= 0 {
		wc.ClusterScale = 10
	}
	return &Env{WorkloadCfg: wc, CharacterizeCfg: cc, SimCfg: sc}
}

// Workload returns the (lazily generated) workload.
func (e *Env) Workload() (*Workload, error) {
	e.wOnce.Do(func() { e.w, e.wErr = GenerateWorkload(e.WorkloadCfg) })
	return e.w, e.wErr
}

// Characterization returns the (lazily computed) clustering.
func (e *Env) Characterization() (*Characterization, error) {
	e.cOnce.Do(func() {
		w, err := e.Workload()
		if err != nil {
			e.cErr = err
			return
		}
		e.c, e.cErr = w.Characterize(e.CharacterizeCfg)
	})
	return e.c, e.cErr
}

// prime pre-populates the workload and characterization caches; tests
// and benchmarks use it to measure the policy simulations in isolation.
func (e *Env) prime(w *Workload, c *Characterization) {
	e.wOnce.Do(func() { e.w = w })
	e.cOnce.Do(func() { e.c = c })
}

func (e *Env) simulate(p Policy) (*SimulationResult, error) {
	w, err := e.Workload()
	if err != nil {
		return nil, err
	}
	var c *Characterization
	if p == PolicyCBS || p == PolicyCBP {
		if c, err = e.Characterization(); err != nil {
			return nil, err
		}
	}
	cfg := e.SimCfg
	cfg.Policy = p
	return Simulate(w, c, cfg)
}

// BaselineRun returns the cached baseline simulation.
func (e *Env) BaselineRun() (*SimulationResult, error) {
	e.baseOnce.Do(func() { e.base, e.baseErr = e.simulate(PolicyBaseline) })
	return e.base, e.baseErr
}

// CBSRun returns the cached HARMONY-CBS simulation.
func (e *Env) CBSRun() (*SimulationResult, error) {
	e.cbsOnce.Do(func() { e.cbs, e.cbsErr = e.simulate(PolicyCBS) })
	return e.cbs, e.cbsErr
}

// CBPRun returns the cached HARMONY-CBP simulation.
func (e *Env) CBPRun() (*SimulationResult, error) {
	e.cbpOnce.Do(func() { e.cbp, e.cbpErr = e.simulate(PolicyCBP) })
	return e.cbp, e.cbpErr
}

// PolicyRuns evaluates the baseline, CBS, and CBP simulations
// concurrently and returns all three. The paper's §IX comparison runs
// three independent policies over one trace, so the fan-out is free
// parallelism: each simulation owns its state and shares only the
// Once-guarded workload and characterization. Results are cached
// exactly like the individual accessors and are bit-identical to
// running them sequentially.
func (e *Env) PolicyRuns() (base, cbs, cbp *SimulationResult, err error) {
	err = runAll(
		func() error { r, err := e.BaselineRun(); base = r; return err },
		func() error { r, err := e.CBSRun(); cbs = r; return err },
		func() error { r, err := e.CBPRun(); cbp = r; return err },
	)
	return base, cbs, cbp, err
}

// ExperimentIDs lists every regenerable figure/table in paper order.
func ExperimentIDs() []string {
	return []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig9", "fig10-12", "fig13-17", "fig14-18", "fig19",
		"fig20", "fig21", "fig22", "fig23-25", "fig26",
	}
}

// Run regenerates one experiment by id.
func (e *Env) Run(id string) (*Experiment, error) {
	switch id {
	case "fig1":
		return e.demandExperiment(true)
	case "fig2":
		return e.demandExperiment(false)
	case "fig3":
		return e.machineUsageExperiment()
	case "fig4":
		return e.delayCDFExperiment()
	case "fig5":
		return e.machineTypesExperiment()
	case "fig6":
		return e.durationCDFExperiment()
	case "fig7":
		return e.taskSizeExperiment()
	case "fig9":
		return energyCurvesExperiment(), nil
	case "fig10-12":
		return e.classSizesExperiment()
	case "fig13-17":
		return e.centroidsExperiment()
	case "fig14-18":
		return e.shortLongExperiment()
	case "fig19":
		return e.arrivalRatesExperiment()
	case "fig20":
		return e.containersExperiment()
	case "fig21":
		return e.serversExperiment("fig21", PolicyBaseline)
	case "fig22":
		return e.serversExperiment("fig22", PolicyCBS)
	case "fig23-25":
		return e.policyDelaysExperiment()
	case "fig26":
		return e.energyComparisonExperiment()
	default:
		return nil, fmt.Errorf("harmony: unknown experiment %q", id)
	}
}

func (e *Env) demandExperiment(cpu bool) (*Experiment, error) {
	w, err := e.Workload()
	if err != nil {
		return nil, err
	}
	cpuS, memS, err := trace.DemandSeries(w.Trace, e.binWidth())
	if err != nil {
		return nil, err
	}
	if cpu {
		return &Experiment{
			ID:     "fig1",
			Title:  "Total CPU demand over time",
			Series: []Series{fromStatsSeries(cpuS)},
			Summary: map[string]float64{
				"peak CPU demand": maxY(cpuS),
			},
		}, nil
	}
	return &Experiment{
		ID:     "fig2",
		Title:  "Total memory demand over time",
		Series: []Series{fromStatsSeries(memS)},
		Summary: map[string]float64{
			"peak memory demand": maxY(memS),
		},
	}, nil
}

func (e *Env) binWidth() float64 {
	bw := e.SimCfg.PeriodSeconds
	if bw <= 0 {
		bw = 300
	}
	return bw
}

func (e *Env) machineUsageExperiment() (*Experiment, error) {
	w, err := e.Workload()
	if err != nil {
		return nil, err
	}
	cfg := e.SimCfg
	cfg.Policy = PolicyAlwaysOn
	res, err := Simulate(w, nil, cfg)
	if err != nil {
		return nil, err
	}
	avail := Series{Name: "machines available"}
	for _, p := range res.ActiveMachines.Points {
		avail.Points = append(avail.Points, Point{X: p.X, Y: float64(w.NumMachines())})
	}
	// With every machine powered, the interesting curve is how many are
	// actually running at least one task — the paper's observation that
	// the cluster never adjusts capacity to demand.
	used, err := e.usedSeries(w)
	if err != nil {
		return nil, err
	}
	return &Experiment{
		ID:     "fig3",
		Title:  "Machines available vs used (capacity never adjusted)",
		Series: []Series{avail, used},
		Summary: map[string]float64{
			"machines available": float64(w.NumMachines()),
			"peak machines used": maxYP(used.Points),
		},
	}, nil
}

// usedSeries reruns the always-on simulation at the sim layer to extract
// the used-machine curve.
func (e *Env) usedSeries(w *Workload) (Series, error) {
	cfg := e.SimCfg
	cfg.defaults()
	counts := make([]int, len(w.Trace.Machines))
	for i, mt := range w.Trace.Machines {
		counts[i] = mt.Count
	}
	res, err := runRawSim(w, cfg, counts)
	if err != nil {
		return Series{}, err
	}
	return fromStatsSeries(res.UsedSeries), nil
}

func (e *Env) delayCDFExperiment() (*Experiment, error) {
	w, err := e.Workload()
	if err != nil {
		return nil, err
	}
	cfg := e.SimCfg
	cfg.Policy = PolicyAlwaysOn
	res, err := Simulate(w, nil, cfg)
	if err != nil {
		return nil, err
	}
	exp := &Experiment{
		ID:      "fig4",
		Title:   "CDF of task scheduling delay by priority group",
		Summary: map[string]float64{},
	}
	for _, g := range Groups() {
		exp.Series = append(exp.Series, res.DelayCDF[g])
		exp.Summary["mean delay "+g.String()+" (s)"] = res.MeanDelaySeconds[g]
	}
	return exp, nil
}

func (e *Env) machineTypesExperiment() (*Experiment, error) {
	w, err := e.Workload()
	if err != nil {
		return nil, err
	}
	hs := trace.MachineHeterogeneity(w.Trace)
	count := Series{Name: "machines per type"}
	cpu := Series{Name: "CPU capacity per type"}
	mem := Series{Name: "memory capacity per type"}
	summary := map[string]float64{}
	for _, h := range hs {
		x := float64(h.Type.ID)
		count.Points = append(count.Points, Point{X: x, Y: float64(h.Type.Count)})
		cpu.Points = append(cpu.Points, Point{X: x, Y: h.Type.CPU})
		mem.Points = append(mem.Points, Point{X: x, Y: h.Type.Mem})
	}
	if len(hs) > 0 {
		summary["types"] = float64(len(hs))
		summary["largest type share"] = hs[0].Fraction
	}
	return &Experiment{
		ID:      "fig5",
		Title:   "Machine heterogeneity (types, capacities, population)",
		Series:  []Series{count, cpu, mem},
		Summary: summary,
	}, nil
}

func (e *Env) durationCDFExperiment() (*Experiment, error) {
	w, err := e.Workload()
	if err != nil {
		return nil, err
	}
	cdfs := trace.DurationCDFs(w.Trace)
	exp := &Experiment{
		ID:      "fig6",
		Title:   "CDF of task duration by priority group",
		Summary: map[string]float64{},
	}
	for _, g := range Groups() {
		cdf := cdfs[g]
		s := stats.Series{Name: "duration CDF " + g.String(), Points: cdf.Points(101)}
		exp.Series = append(exp.Series, fromStatsSeries(s))
		exp.Summary["median duration "+g.String()+" (s)"] = cdf.Quantile(0.5)
		exp.Summary["max duration "+g.String()+" (s)"] = cdf.Quantile(1)
	}
	return exp, nil
}

func (e *Env) taskSizeExperiment() (*Experiment, error) {
	w, err := e.Workload()
	if err != nil {
		return nil, err
	}
	exp := &Experiment{
		ID:      "fig7",
		Title:   "Task size scatter (CPU vs memory) per priority group",
		Summary: map[string]float64{},
	}
	for _, g := range Groups() {
		pts := trace.SizeScatter(w.Trace, g)
		s := Series{Name: "task sizes " + g.String()}
		var minC, maxC float64
		for i, p := range pts {
			if i == 0 || p.X < minC {
				minC = p.X
			}
			if p.X > maxC {
				maxC = p.X
			}
			// Cap the emitted scatter for readability.
			if i < 2000 {
				s.Points = append(s.Points, Point{X: p.X, Y: p.Y})
			}
		}
		exp.Series = append(exp.Series, s)
		if minC > 0 {
			exp.Summary["CPU size ratio "+g.String()] = maxC / minC
		}
	}
	return exp, nil
}

func energyCurvesExperiment() *Experiment {
	exp := &Experiment{
		ID:      "fig9",
		Title:   "Machine energy consumption vs CPU usage (Table II models)",
		Summary: map[string]float64{},
	}
	for _, m := range energy.TableII() {
		s := Series{Name: m.Name}
		for _, p := range energy.CurvePoints(m, 11) {
			s.Points = append(s.Points, Point{X: p.CPUUtil, Y: p.Watts})
		}
		exp.Series = append(exp.Series, s)
		exp.Summary[m.Name+" idle W"] = m.IdleWatts
		exp.Summary[m.Name+" peak W"] = m.PeakWatts()
	}
	return exp
}

func (e *Env) classSizesExperiment() (*Experiment, error) {
	c, err := e.Characterization()
	if err != nil {
		return nil, err
	}
	exp := &Experiment{
		ID:      "fig10-12",
		Title:   "Tasks per class for each priority group",
		Summary: map[string]float64{},
	}
	for _, g := range Groups() {
		s := Series{Name: "class sizes " + g.String()}
		for _, cl := range c.Classes() {
			if cl.Group != g {
				continue
			}
			s.Points = append(s.Points, Point{X: float64(cl.ID), Y: float64(cl.Count)})
		}
		exp.Series = append(exp.Series, s)
		exp.Summary["classes "+g.String()] = float64(len(s.Points))
	}
	return exp, nil
}

func (e *Env) centroidsExperiment() (*Experiment, error) {
	c, err := e.Characterization()
	if err != nil {
		return nil, err
	}
	exp := &Experiment{
		ID:      "fig13-17",
		Title:   "Class centroids: mean and stddev of CPU and memory",
		Summary: map[string]float64{},
	}
	accurate := 0
	for _, g := range Groups() {
		cpuMean := Series{Name: "cpu mean " + g.String()}
		cpuStd := Series{Name: "cpu stddev " + g.String()}
		memMean := Series{Name: "mem mean " + g.String()}
		memStd := Series{Name: "mem stddev " + g.String()}
		for _, cl := range c.Classes() {
			if cl.Group != g {
				continue
			}
			x := float64(cl.ID)
			cpuMean.Points = append(cpuMean.Points, Point{X: x, Y: cl.CPU})
			cpuStd.Points = append(cpuStd.Points, Point{X: x, Y: cl.CPUStd})
			memMean.Points = append(memMean.Points, Point{X: x, Y: cl.Mem})
			memStd.Points = append(memStd.Points, Point{X: x, Y: cl.MemStd})
			if cl.CPUStd < cl.CPU && cl.MemStd < cl.Mem {
				accurate++
			}
		}
		exp.Series = append(exp.Series, cpuMean, cpuStd, memMean, memStd)
	}
	exp.Summary["classes with std < mean"] = float64(accurate)
	exp.Summary["classes total"] = float64(len(c.Classes()))
	return exp, nil
}

func (e *Env) shortLongExperiment() (*Experiment, error) {
	c, err := e.Characterization()
	if err != nil {
		return nil, err
	}
	exp := &Experiment{
		ID:      "fig14-18",
		Title:   "Short/long duration sub-classes per class",
		Summary: map[string]float64{},
	}
	short := Series{Name: "short mean duration (s)"}
	long := Series{Name: "long mean duration (s)"}
	split := 0
	for _, cl := range c.Classes() {
		x := float64(cl.ID)
		short.Points = append(short.Points, Point{X: x, Y: cl.SubDurations[0]})
		if len(cl.SubDurations) > 1 {
			long.Points = append(long.Points, Point{X: x, Y: cl.SubDurations[1]})
			split++
		}
	}
	exp.Series = []Series{short, long}
	exp.Summary["classes with short/long split"] = float64(split)
	exp.Summary["classes total"] = float64(len(c.Classes()))
	return exp, nil
}

func (e *Env) arrivalRatesExperiment() (*Experiment, error) {
	w, err := e.Workload()
	if err != nil {
		return nil, err
	}
	rates, err := trace.ArrivalRates(w.Trace, e.binWidth())
	if err != nil {
		return nil, err
	}
	exp := &Experiment{
		ID:      "fig19",
		Title:   "Aggregated task arrival rates per priority group",
		Summary: map[string]float64{},
	}
	for _, g := range Groups() {
		s := rates[g]
		exp.Series = append(exp.Series, fromStatsSeries(s))
		exp.Summary["peak rate "+g.String()+" (tasks/s)"] = maxY(s)
	}
	return exp, nil
}

func (e *Env) containersExperiment() (*Experiment, error) {
	res, err := e.CBSRun()
	if err != nil {
		return nil, err
	}
	exp := &Experiment{
		ID:      "fig20",
		Title:   "Containers provisioned per priority group (HARMONY)",
		Summary: map[string]float64{},
	}
	for _, g := range Groups() {
		s := res.Containers[g]
		exp.Series = append(exp.Series, s)
		exp.Summary["peak containers "+g.String()] = maxYP(s.Points)
	}
	return exp, nil
}

func (e *Env) serversExperiment(id string, p Policy) (*Experiment, error) {
	var (
		res *SimulationResult
		err error
	)
	switch p {
	case PolicyBaseline:
		res, err = e.BaselineRun()
	case PolicyCBS:
		res, err = e.CBSRun()
	default:
		res, err = e.simulate(p)
	}
	if err != nil {
		return nil, err
	}
	title := fmt.Sprintf("Active servers over time (%s)", res.Policy)
	exp := &Experiment{
		ID:     id,
		Title:  title,
		Series: []Series{res.ActiveMachines},
		Summary: map[string]float64{
			"peak active machines": maxYP(res.ActiveMachines.Points),
			"mean active machines": meanYP(res.ActiveMachines.Points),
		},
	}
	if id == "fig22" {
		// CBS and CBP provision essentially the same machines; attach
		// CBP's series for completeness.
		cbp, err := e.CBPRun()
		if err != nil {
			return nil, err
		}
		exp.Series = append(exp.Series, cbp.ActiveMachines)
		exp.Summary["mean active machines CBP"] = meanYP(cbp.ActiveMachines.Points)
	}
	return exp, nil
}

func (e *Env) policyDelaysExperiment() (*Experiment, error) {
	base, cbs, cbp, err := e.PolicyRuns()
	if err != nil {
		return nil, err
	}
	exp := &Experiment{
		ID:      "fig23-25",
		Title:   "Scheduling-delay CDFs per priority group, all policies",
		Summary: map[string]float64{},
	}
	for _, g := range Groups() {
		for _, r := range []*SimulationResult{base, cbp, cbs} {
			exp.Series = append(exp.Series, r.DelayCDF[g])
			exp.Summary[fmt.Sprintf("mean delay %s %s (s)", g, r.Policy)] = r.MeanDelaySeconds[g]
		}
	}
	return exp, nil
}

func (e *Env) energyComparisonExperiment() (*Experiment, error) {
	base, cbs, cbp, err := e.PolicyRuns()
	if err != nil {
		return nil, err
	}
	summary := map[string]float64{
		"baseline energy (kWh)":    base.EnergyKWh,
		"harmony-CBP energy (kWh)": cbp.EnergyKWh,
		"harmony-CBS energy (kWh)": cbs.EnergyKWh,
		"baseline cost ($)":        base.EnergyCost,
		"harmony-CBP cost ($)":     cbp.EnergyCost,
		"harmony-CBS cost ($)":     cbs.EnergyCost,
	}
	if base.EnergyKWh > 0 {
		summary["CBS energy saving vs baseline (%)"] =
			100 * (base.EnergyKWh - cbs.EnergyKWh) / base.EnergyKWh
		summary["CBP energy saving vs baseline (%)"] =
			100 * (base.EnergyKWh - cbp.EnergyKWh) / base.EnergyKWh
	}
	bars := Series{Name: "total energy (kWh) [1=baseline 2=CBP 3=CBS]", Points: []Point{
		{X: 1, Y: base.EnergyKWh}, {X: 2, Y: cbp.EnergyKWh}, {X: 3, Y: cbs.EnergyKWh},
	}}
	return &Experiment{
		ID:      "fig26",
		Title:   "Total energy consumption: baseline vs CBP vs CBS",
		Series:  []Series{bars},
		Summary: summary,
	}, nil
}

func maxY(s stats.Series) float64 {
	mx := 0.0
	for _, p := range s.Points {
		if p.Y > mx {
			mx = p.Y
		}
	}
	return mx
}

func maxYP(pts []Point) float64 {
	mx := 0.0
	for _, p := range pts {
		if p.Y > mx {
			mx = p.Y
		}
	}
	return mx
}

func meanYP(pts []Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range pts {
		sum += p.Y
	}
	return sum / float64(len(pts))
}
