package harmony

import (
	"strings"
	"testing"
)

// The simulation-backed experiments (figures 3, 4, 20-26) run end to end
// on a tiny workload and produce well-formed results.
func TestEnvSimulationExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiments are slow")
	}
	env := NewEnv(
		WorkloadConfig{Seed: 8, Hours: 2, TasksPerSecond: 0.25, ClusterScale: 100},
		CharacterizeConfig{Seed: 8, MaxClassesPerGroup: 4},
		SimulationConfig{PeriodSeconds: 300},
	)
	for _, id := range []string{"fig3", "fig4", "fig20", "fig21", "fig22", "fig23-25", "fig26"} {
		exp, err := env.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(exp.Series) == 0 {
			t.Errorf("%s: no series", id)
		}
		if len(exp.Summary) == 0 {
			t.Errorf("%s: no summary", id)
		}
	}

	// fig26 exposes the headline comparison numbers.
	exp, err := env.Run("fig26")
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"baseline energy (kWh)",
		"harmony-CBS energy (kWh)",
		"harmony-CBP energy (kWh)",
		"CBS energy saving vs baseline (%)",
	} {
		if _, ok := exp.Summary[key]; !ok {
			t.Errorf("fig26 summary missing %q", key)
		}
	}
	if exp.Summary["baseline energy (kWh)"] <= 0 {
		t.Error("baseline energy not positive")
	}

	// Policy runs are cached: a second retrieval is cheap and identical.
	again, err := env.Run("fig26")
	if err != nil {
		t.Fatal(err)
	}
	if again.Summary["baseline energy (kWh)"] != exp.Summary["baseline energy (kWh)"] {
		t.Error("cached evaluation changed between runs")
	}

	// fig22 carries both CBS and CBP series per the paper's note that
	// they provision the same machines.
	f22, err := env.Run("fig22")
	if err != nil {
		t.Fatal(err)
	}
	if len(f22.Series) < 2 {
		t.Errorf("fig22 series = %d, want CBS and CBP", len(f22.Series))
	}

	// fig23-25 has one CDF per group per policy.
	f23, err := env.Run("fig23-25")
	if err != nil {
		t.Fatal(err)
	}
	if len(f23.Series) != 9 {
		t.Errorf("fig23-25 series = %d, want 9 (3 groups x 3 policies)", len(f23.Series))
	}
	names := make([]string, 0, len(f23.Series))
	for _, s := range f23.Series {
		names = append(names, s.Name)
	}
	joined := strings.Join(names, "|")
	for _, frag := range []string{"baseline", "harmony-CBS", "harmony-CBP", "gratis", "production"} {
		if !strings.Contains(joined, frag) {
			t.Errorf("fig23-25 series names missing %q: %v", frag, names)
		}
	}
}
