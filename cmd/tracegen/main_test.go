package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"harmony/internal/trace"
)

func TestRunFlagErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"unknown format", []string{"-hours", "0.05", "-format", "xml"}, "unknown format"},
		{"non-numeric rate", []string{"-rate", "fast"}, "invalid value"},
		{"undefined flag", []string{"-bogus"}, "flag provided but not defined"},
		{"missing inspect file", []string{"-inspect", "/nonexistent/trace.jsonl"}, "no such file"},
		{"bad output dir", []string{"-hours", "0.05", "-o", "/nonexistent/dir/t.jsonl"}, "no such file"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := run(tt.args, io.Discard)
			if err == nil {
				t.Fatalf("run(%v) accepted", tt.args)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("run(%v) error = %q, want substring %q", tt.args, err, tt.want)
			}
		})
	}
}

// TestRunStreamMatchesBatch pins that -stream changes only the header's
// task count (unknown up front), never the tasks: both modes must emit
// byte-identical task lines for the same seed.
func TestRunStreamMatchesBatch(t *testing.T) {
	args := []string{"-seed", "7", "-hours", "0.3", "-rate", "0.6", "-machines", "60"}
	var batch, stream bytes.Buffer
	if err := run(args, &batch); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-stream", "-chunk", "5"}, args...), &stream); err != nil {
		t.Fatal(err)
	}
	bLines := strings.Split(batch.String(), "\n")
	sLines := strings.Split(stream.String(), "\n")
	if len(bLines) != len(sLines) {
		t.Fatalf("batch %d lines, stream %d lines", len(bLines), len(sLines))
	}
	if !strings.Contains(bLines[0], `"tasks":`) || !strings.Contains(sLines[0], `"tasks":-1`) {
		t.Errorf("headers: batch %q, stream %q", bLines[0], sLines[0])
	}
	for i := 1; i < len(bLines); i++ {
		if bLines[i] != sLines[i] {
			t.Fatalf("line %d differs:\nbatch:  %s\nstream: %s", i, bLines[i], sLines[i])
		}
	}
}

// TestRunScaleFlag pins the Google-scale divisor: -scale N selects
// 12000/N machines regardless of -machines.
func TestRunScaleFlag(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-hours", "0.02", "-machines", "7", "-scale", "100"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var header struct {
		Machines []struct {
			Count int `json:"count"`
		} `json:"machines"`
	}
	line := strings.SplitN(out.String(), "\n", 2)[0]
	if err := json.Unmarshal([]byte(line), &header); err != nil {
		t.Fatalf("parse header %q: %v", line, err)
	}
	total := 0
	for _, m := range header.Machines {
		total += m.Count
	}
	want := 0
	for _, m := range trace.GoogleLikeMachines(12000 / 100) {
		want += m.Count
	}
	if total != want {
		t.Errorf("scale 100 should give the 12000/100-machine population (%d), got %d", want, total)
	}
}

// TestRunGoldenOutput regenerates a small trace and compares it to the
// committed golden file, byte for byte.
func TestRunGoldenOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-seed", "3", "-hours", "0.1", "-rate", "0.5", "-machines", "40"}, &out); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_trace.jsonl")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with: go run . -seed 3 -hours 0.1 -rate 0.5 -machines 40 -o %s): %v", golden, err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("output differs from %s — the generator or writer changed; regenerate the golden if intended", golden)
	}
}

// TestRunInspectRoundTrip writes a trace to disk and inspects it.
func TestRunInspectRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.jsonl")
	if err := run([]string{"-seed", "5", "-hours", "0.3", "-rate", "0.5", "-machines", "50", "-o", path}, io.Discard); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-inspect", path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tasks:", "machines:", "horizon:", "production"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("inspect output missing %q:\n%s", want, out.String())
		}
	}
}
