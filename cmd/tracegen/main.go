// Command tracegen generates a synthetic Google-like workload trace
// (Section III statistics) and writes it as a JSON-lines or CSV stream,
// or prints summary statistics about an existing trace file. With
// -stream the trace is generated and written chunk by chunk, so a
// 25M-task Google-scale month never lives in memory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"harmony/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 1, "RNG seed")
		hours    = fs.Float64("hours", 24, "trace length in hours")
		rate     = fs.Float64("rate", 1.0, "mean task arrival rate (tasks/second)")
		machines = fs.Int("machines", 1200, "approximate machine population")
		scale    = fs.Int("scale", 0, "Google-scale divisor: machines = 12000/scale, rate = 10.14/scale (overrides -machines and -rate)")
		outPath  = fs.String("o", "", "output file (default stdout)")
		format   = fs.String("format", "jsonl", "output format: jsonl | csv")
		stream   = fs.Bool("stream", false, "generate and write chunk by chunk (constant memory)")
		chunk    = fs.Int("chunk", 4096, "streaming chunk size in tasks")
		inspect  = fs.String("inspect", "", "print statistics of an existing trace file instead of generating")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *inspect != "" {
		return inspectTrace(*inspect, out)
	}

	if *scale > 0 {
		// The Google trace: 12 000 machines, 25.4M tasks over 29 days
		// (≈10.14 tasks/s). -scale N keeps the shape at 1/N the size.
		*machines = 12000 / *scale
		if *machines < 1 {
			*machines = 1
		}
		*rate = 10.14 / float64(*scale)
	}

	cfg := trace.DefaultConfig(*seed)
	cfg.Horizon = *hours * trace.Hour
	cfg.RatePerS = *rate
	cfg.Machines = trace.GoogleLikeMachines(*machines)

	w := out
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	var (
		nTasks      int64
		nMachines   int
		horizonHrs  float64
		writeChunks = func(src trace.TaskSource) (int64, error) {
			switch *format {
			case "jsonl":
				return trace.WriteStream(w, src)
			case "csv":
				return trace.WriteCSVStream(w, src)
			default:
				return 0, fmt.Errorf("unknown format %q", *format)
			}
		}
	)
	if *stream {
		src, err := trace.NewGenSource(cfg, *chunk)
		if err != nil {
			return err
		}
		n, err := writeChunks(src)
		if err != nil {
			return err
		}
		m := src.Meta()
		for _, mt := range m.Machines {
			nMachines += mt.Count
		}
		nTasks, horizonHrs = n, m.Horizon/trace.Hour
	} else {
		tr, err := trace.Generate(cfg)
		if err != nil {
			return err
		}
		n, err := writeChunks(trace.NewSliceSource(tr))
		if err != nil {
			return err
		}
		nTasks, nMachines, horizonHrs = n, tr.TotalMachines(), tr.Horizon/trace.Hour
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d tasks, %d machines, %.1f hours\n",
		nTasks, nMachines, horizonHrs)
	return nil
}

func inspectTrace(path string, out io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return err
	}
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("trace invalid: %w", err)
	}
	fmt.Fprintf(out, "tasks:    %d\n", len(tr.Tasks))
	fmt.Fprintf(out, "machines: %d (%d types)\n", tr.TotalMachines(), len(tr.Machines))
	fmt.Fprintf(out, "horizon:  %.1f hours\n", tr.Horizon/trace.Hour)
	counts := trace.GroupCounts(tr)
	for _, g := range trace.Groups() {
		fmt.Fprintf(out, "  %-10s %8d tasks (%.1f%%)\n",
			g, counts[g], 100*float64(counts[g])/float64(len(tr.Tasks)))
	}
	for _, h := range trace.MachineHeterogeneity(tr) {
		fmt.Fprintf(out, "  type %2d %-6s cpu %.3f mem %.3f count %5d (%.1f%%)\n",
			h.Type.ID, h.Type.Platform, h.Type.CPU, h.Type.Mem, h.Type.Count, 100*h.Fraction)
	}
	return nil
}
