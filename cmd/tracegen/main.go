// Command tracegen generates a synthetic Google-like workload trace
// (Section III statistics) and writes it as a JSON-lines stream, or prints
// summary statistics about an existing trace file.
package main

import (
	"flag"
	"fmt"
	"os"

	"harmony/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed     = flag.Int64("seed", 1, "RNG seed")
		hours    = flag.Float64("hours", 24, "trace length in hours")
		rate     = flag.Float64("rate", 1.0, "mean task arrival rate (tasks/second)")
		machines = flag.Int("machines", 1200, "approximate machine population")
		out      = flag.String("o", "", "output file (default stdout)")
		format   = flag.String("format", "jsonl", "output format: jsonl | csv")
		inspect  = flag.String("inspect", "", "print statistics of an existing trace file instead of generating")
	)
	flag.Parse()

	if *inspect != "" {
		return inspectTrace(*inspect)
	}

	cfg := trace.DefaultConfig(*seed)
	cfg.Horizon = *hours * trace.Hour
	cfg.RatePerS = *rate
	cfg.Machines = trace.GoogleLikeMachines(*machines)
	tr, err := trace.Generate(cfg)
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "jsonl":
		if err := trace.Write(w, tr); err != nil {
			return err
		}
	case "csv":
		if err := trace.WriteCSV(w, tr); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d tasks, %d machines, %.1f hours\n",
		len(tr.Tasks), tr.TotalMachines(), tr.Horizon/trace.Hour)
	return nil
}

func inspectTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return err
	}
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("trace invalid: %w", err)
	}
	fmt.Printf("tasks:    %d\n", len(tr.Tasks))
	fmt.Printf("machines: %d (%d types)\n", tr.TotalMachines(), len(tr.Machines))
	fmt.Printf("horizon:  %.1f hours\n", tr.Horizon/trace.Hour)
	counts := trace.GroupCounts(tr)
	for _, g := range trace.Groups() {
		fmt.Printf("  %-10s %8d tasks (%.1f%%)\n",
			g, counts[g], 100*float64(counts[g])/float64(len(tr.Tasks)))
	}
	for _, h := range trace.MachineHeterogeneity(tr) {
		fmt.Printf("  type %2d %-6s cpu %.3f mem %.3f count %5d (%.1f%%)\n",
			h.Type.ID, h.Type.Platform, h.Type.CPU, h.Type.Mem, h.Type.Count, 100*h.Fraction)
	}
	return nil
}
