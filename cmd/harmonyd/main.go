// Command harmonyd runs the HARMONY control loop as a long-running
// online provisioning daemon: tasks stream in over POST /v1/tasks
// (JSON object, array, or NDJSON), each control period the incremental
// pipeline (classification → forecast → M/G/c sizing → CBS/MPC →
// packing) refreshes the machine plan, and the current plan, stats, and
// Prometheus-style metrics are served over HTTP. SIGINT/SIGTERM trigger
// a graceful shutdown: the ingest queue is flushed, a final tick runs,
// and the final plan is written to stdout.
//
// With -tenants pointing at a tenants config file the daemon runs in
// multi-tenant mode: tasks route by their "tenant" field, SLO-compatible
// tenants share provisioning groups, and every group runs its own
// pipeline. A single-tenant config reproduces the default daemon's plans
// bit-for-bit.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"harmony/internal/classify"
	"harmony/internal/core"
	"harmony/internal/daemon"
	"harmony/internal/energy"
	"harmony/internal/sched"
	"harmony/internal/tenant"
	"harmony/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "harmonyd:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: args are parsed with ContinueOnError,
// the final plan goes to out, and ready (when non-nil) receives the bound
// listen address.
func run(ctx context.Context, args []string, out io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("harmonyd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "HTTP listen address")
		charPath = fs.String("char", "", "characterization JSON (from harmony-classify -o); required")
		scale    = fs.Int("scale", 100, "divide the Table II cluster size by this factor")
		mode     = fs.String("mode", "CBS", "container mode: CBS (spread) or CBP (pack)")
		period   = fs.Float64("period", 300, "control period in model-time seconds")
		horizon  = fs.Int("horizon", 2, "MPC look-ahead periods")
		tickWall    = fs.Duration("tick-every", 0, "wall-clock interval between automatic ticks (0 = tick only via POST /v1/tick)")
		deadline    = fs.Duration("tick-deadline", 30*time.Second, "per-tick solve deadline")
		queue       = fs.Int("queue", 65536, "ingest queue capacity (excess tasks get 429)")
		tenantsPath = fs.String("tenants", "", "tenants config JSON; enables multi-tenant mode")
		forecaster  = fs.String("forecaster", "arima", "arrival forecaster: arima, auto, seasonal, ewma, or holtwinters")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *charPath == "" {
		return fmt.Errorf("missing -char (run harmony-classify -o to create one)")
	}
	var coreMode core.Mode
	switch *mode {
	case "CBS", "cbs":
		coreMode = core.CBS
	case "CBP", "cbp":
		coreMode = core.CBP
	default:
		return fmt.Errorf("unknown -mode %q (want CBS or CBP)", *mode)
	}
	var predictor sched.PredictorKind
	switch *forecaster {
	case "arima":
		predictor = sched.PredictARIMA
	case "auto":
		predictor = sched.PredictAutoARIMA
	case "seasonal":
		predictor = sched.PredictSeasonal
	case "ewma":
		predictor = sched.PredictEWMA
	case "holtwinters":
		predictor = sched.PredictHoltWinters
	default:
		return fmt.Errorf("unknown -forecaster %q (want arima, auto, seasonal, ewma, or holtwinters)", *forecaster)
	}

	f, err := os.Open(*charPath)
	if err != nil {
		return err
	}
	ch, err := classify.Load(f)
	f.Close() //harmony:allow errflow read-only close; a Load failure is what matters and is checked below
	if err != nil {
		return fmt.Errorf("load characterization: %w", err)
	}

	models := energy.TableII()
	machines := make([]trace.MachineType, len(models))
	for i := range models {
		if *scale > 1 {
			models[i].Count /= *scale
			if models[i].Count < 1 {
				models[i].Count = 1
			}
		}
		machines[i] = models[i].MachineType(i + 1)
	}

	engCfg := daemon.Config{
		Machines:      machines,
		Models:        models,
		Char:          ch,
		Mode:          coreMode,
		PeriodSeconds: *period,
		Horizon:       *horizon,
		Forecaster:    predictor,
	}
	logger := log.New(os.Stderr, "", log.LstdFlags)

	if *tenantsPath != "" {
		tf, err := os.Open(*tenantsPath)
		if err != nil {
			return err
		}
		doc, err := tenant.Load(tf)
		tf.Close() //harmony:allow errflow read-only close; a Load failure is what matters and is checked below
		if err != nil {
			return fmt.Errorf("load tenants: %w", err)
		}
		m, err := tenant.New(tenant.Config{
			Base:         engCfg,
			Tenants:      doc.Tenants,
			SLOTolerance: doc.SLOTolerance,
		})
		if err != nil {
			return err
		}
		d, err := tenant.NewDaemon(m, tenant.RunConfig{
			Addr:      *addr,
			TickEvery: *tickWall,
			Server: tenant.ServerConfig{
				QueueSize:      *queue,
				GlobalQueueCap: *queue,
				TickDeadline:   *deadline,
			},
			FinalPlans: out,
			Log:        logger,
			Ready:      ready,
		})
		if err != nil {
			return err
		}
		return d.Run(ctx)
	}

	eng, err := daemon.NewEngine(engCfg)
	if err != nil {
		return err
	}
	d, err := daemon.NewDaemon(eng, daemon.RunConfig{
		Addr:      *addr,
		TickEvery: *tickWall,
		Server: daemon.ServerConfig{
			QueueSize:    *queue,
			TickDeadline: *deadline,
		},
		FinalPlan: out,
		Log:       logger,
		Ready:     ready,
	})
	if err != nil {
		return err
	}
	return d.Run(ctx)
}
