package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// charDoc is a minimal valid characterization in the persist format: one
// gratis class with a short/long split.
const charDoc = `{
  "version": 1,
  "classes": [
    {
      "id": 0, "group": 1,
      "cpu": 0.02, "mem": 0.02, "cpuStd": 0.005, "memStd": 0.005,
      "count": 1000,
      "cpuQuantiles": [0.025, 0.03, 0.035, 0.05],
      "memQuantiles": [0.025, 0.03, 0.035, 0.05],
      "sub": [
        {"MeanDuration": 60, "SqCV": 1.2, "MaxDuration": 100, "Count": 900},
        {"MeanDuration": 5000, "SqCV": 0.5, "MaxDuration": 20000, "Count": 100}
      ],
      "logCentroid": [-3.912, -3.912]
    }
  ]
}`

func writeCharFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "char.json")
	if err := os.WriteFile(path, []byte(charDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFlagErrors(t *testing.T) {
	char := writeCharFile(t)
	badTenants := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(badTenants, []byte(`{"tenants":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		args []string
		want string
	}{
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"missing char", nil, "missing -char"},
		{"bad mode", []string{"-char", char, "-mode", "XXX"}, "unknown -mode"},
		{"missing char file", []string{"-char", "/does/not/exist.json"}, "no such file"},
		{"bad forecaster", []string{"-char", char, "-forecaster", "psychic"}, "unknown -forecaster"},
		{"missing tenants file", []string{"-char", char, "-tenants", "/does/not/exist.json"}, "no such file"},
		{"empty tenants doc", []string{"-char", char, "-tenants", badTenants}, "no tenants"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(context.Background(), tc.args, &out, nil)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestRunServesUntilSIGTERM boots the daemon on an ephemeral port, streams
// a few tasks, forces a tick, then delivers a real SIGTERM and requires a
// clean exit with the final plan on stdout.
func TestRunServesUntilSIGTERM(t *testing.T) {
	char := writeCharFile(t)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	var out bytes.Buffer
	ready := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-char", char,
			"-scale", "400",
			"-tick-deadline", "10s",
		}, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-runErr:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	body := `{"id":1,"submit":5,"duration":60,"cpu":0.02,"mem":0.02,"priority":0}` + "\n" +
		`{"id":2,"submit":9,"duration":60,"cpu":0.02,"mem":0.02,"priority":0}` + "\n"
	resp, err := http.Post("http://"+addr+"/v1/tasks", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	resp, err = http.Post("http://"+addr+"/v1/tick", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tick status = %d", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit within the tick deadline after SIGTERM")
	}

	var plan struct {
		PeriodIndex int `json:"periodIndex"`
	}
	if err := json.Unmarshal(out.Bytes(), &plan); err != nil {
		t.Fatalf("final plan not valid JSON: %v\n%s", err, out.Bytes())
	}
	// One forced tick plus the shutdown tick.
	if plan.PeriodIndex != 2 {
		t.Errorf("final plan period = %d", plan.PeriodIndex)
	}
}

// TestRunMultiTenantServesUntilSIGTERM boots the daemon in multi-tenant
// mode, streams tenant-tagged tasks, forces a tick, and requires a clean
// SIGTERM exit with the per-group final plans on stdout.
func TestRunMultiTenantServesUntilSIGTERM(t *testing.T) {
	char := writeCharFile(t)
	tenantsPath := filepath.Join(t.TempDir(), "tenants.json")
	tenantsDoc := `{"tenants":[
		{"name":"web","sloDelay":60},
		{"name":"api","sloDelay":100},
		{"name":"batch"}
	]}`
	if err := os.WriteFile(tenantsPath, []byte(tenantsDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	var out bytes.Buffer
	ready := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-char", char,
			"-scale", "400",
			"-tenants", tenantsPath,
			"-forecaster", "ewma",
			"-tick-deadline", "10s",
		}, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-runErr:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	body := `{"id":1,"submit":5,"duration":60,"cpu":0.02,"mem":0.02,"priority":0,"tenant":"web"}` + "\n" +
		`{"id":2,"submit":9,"duration":60,"cpu":0.02,"mem":0.02,"priority":0,"tenant":"batch"}` + "\n"
	resp, err := http.Post("http://"+addr+"/v1/tasks", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	resp, err = http.Post("http://"+addr+"/v1/tick", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tick status = %d", resp.StatusCode)
	}
	resp, err = http.Get("http://" + addr + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Tenants []struct {
			Name          string `json:"name"`
			TasksIngested uint64 `json:"tasksIngested"`
		} `json:"tenants"`
		Groups []struct {
			Name string `json:"name"`
		} `json:"groups"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(stats.Tenants) != 3 || len(stats.Groups) != 2 {
		t.Fatalf("stats: %d tenants, %d groups", len(stats.Tenants), len(stats.Groups))
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}

	var final struct {
		Groups map[string]struct {
			PeriodIndex int `json:"periodIndex"`
		} `json:"groups"`
	}
	if err := json.Unmarshal(out.Bytes(), &final); err != nil {
		t.Fatalf("final plans not valid JSON: %v\n%s", err, out.Bytes())
	}
	if len(final.Groups) != 2 || final.Groups["g0"].PeriodIndex != 2 {
		t.Errorf("final plans = %+v", final)
	}
}
