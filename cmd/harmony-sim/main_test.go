package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestRunFlagErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"unknown policy", []string{"-policy", "magic"}, "unknown policy"},
		{"non-numeric rate", []string{"-rate", "fast"}, "invalid value"},
		{"undefined flag", []string{"-bogus"}, "flag provided but not defined"},
		{"missing trace file", []string{"-trace", "/nonexistent/trace.jsonl"}, "no such file"},
		{"stream with trace", []string{"-stream", "-trace", "x.jsonl"}, "cannot be combined"},
		{"heap cap exceeded", []string{"-stream", "-hours", "0.5", "-rate", "0.5", "-scale", "100",
			"-policy", "baseline", "-max-heap-mb", "0.001"}, "exceeds cap"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := run(tt.args, io.Discard)
			if err == nil {
				t.Fatalf("run(%v) accepted", tt.args)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("run(%v) error = %q, want substring %q", tt.args, err, tt.want)
			}
		})
	}
}

// TestRunStreamMode exercises the streaming path end to end, including
// the scale-metrics report and a generous heap cap.
func TestRunStreamMode(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-stream", "-hours", "1", "-rate", "1", "-scale", "100",
		"-policy", "baseline", "-max-heap-mb", "512"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	for _, want := range []string{"baseline results:", "scale metrics (streamed):", "tasks:", "peak heap:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stream output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunStreamCBS covers the sample-characterization path for the
// HARMONY policies in streaming mode.
func TestRunStreamCBS(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-stream", "-hours", "1.5", "-sample-hours", "1", "-rate", "0.5",
		"-scale", "100", "-policy", "cbs"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	if !strings.Contains(out.String(), "characterization (1.0h sample):") {
		t.Errorf("missing sample characterization line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "harmony-CBS results:") {
		t.Errorf("missing CBS results:\n%s", out.String())
	}
}
