package main

import (
	"io"
	"strings"
	"testing"
)

func TestRunFlagErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"unknown policy", []string{"-policy", "magic"}, "unknown policy"},
		{"non-numeric rate", []string{"-rate", "fast"}, "invalid value"},
		{"undefined flag", []string{"-bogus"}, "flag provided but not defined"},
		{"missing trace file", []string{"-trace", "/nonexistent/trace.jsonl"}, "no such file"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := run(tt.args, io.Discard)
			if err == nil {
				t.Fatalf("run(%v) accepted", tt.args)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("run(%v) error = %q, want substring %q", tt.args, err, tt.want)
			}
		})
	}
}
