// Command harmony-sim runs one end-to-end cluster simulation — synthetic
// workload, characterization, and a chosen provisioning policy — and
// prints the headline measurements (energy, scheduling delays, machine
// usage).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"harmony"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "harmony-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("harmony-sim", flag.ContinueOnError)
	var (
		traceIn = fs.String("trace", "", "run on a trace file (from tracegen) instead of generating one")
		seed    = fs.Int64("seed", 1, "RNG seed")
		hours   = fs.Float64("hours", 12, "workload length in hours")
		rate    = fs.Float64("rate", 0.8, "task arrival rate (tasks/second)")
		scale   = fs.Int("scale", 40, "cluster scale divisor (Table II has 10000 machines at scale 1)")
		policy  = fs.String("policy", "cbs", "policy: baseline | cbs | cbp | always-on")
		period  = fs.Float64("period", 300, "control period in seconds")
		horizon = fs.Int("horizon", 2, "MPC look-ahead periods")
		epsilon = fs.Float64("epsilon", 0, "container-sizing overflow bound (0 = default 0.25)")
		omega   = fs.Float64("omega", 1, "over-provisioning factor")
		diurnal = fs.Bool("diurnal-price", false, "use a sinusoidal daily electricity price")
		series  = fs.Bool("series", false, "also print the active-machine time series")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var p harmony.Policy
	switch *policy {
	case "baseline":
		p = harmony.PolicyBaseline
	case "cbs":
		p = harmony.PolicyCBS
	case "cbp":
		p = harmony.PolicyCBP
	case "always-on":
		p = harmony.PolicyAlwaysOn
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}

	var (
		w   *harmony.Workload
		err error
	)
	if *traceIn != "" {
		w, err = harmony.LoadWorkload(*traceIn)
	} else {
		w, err = harmony.GenerateWorkload(harmony.WorkloadConfig{
			Seed:           *seed,
			Hours:          *hours,
			TasksPerSecond: *rate,
			Cluster:        harmony.ClusterTableII,
			ClusterScale:   *scale,
		})
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "workload: %d tasks, %d machines\n", w.NumTasks(), w.NumMachines())

	var ch *harmony.Characterization
	if p == harmony.PolicyCBS || p == harmony.PolicyCBP {
		ch, err = w.Characterize(harmony.CharacterizeConfig{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "characterization: %d classes, %d task types\n",
			len(ch.Classes()), ch.NumTaskTypes())
	}

	res, err := harmony.Simulate(w, ch, harmony.SimulationConfig{
		Policy:        p,
		PeriodSeconds: *period,
		Horizon:       *horizon,
		Epsilon:       *epsilon,
		Omega:         *omega,
		DiurnalPrice:  *diurnal,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "\n%s results:\n", res.Policy)
	fmt.Fprintf(out, "  energy:        %.2f kWh ($%.2f)\n", res.EnergyKWh, res.EnergyCost)
	fmt.Fprintf(out, "  switching:     %d events ($%.2f)\n", res.SwitchEvents, res.SwitchCost)
	fmt.Fprintf(out, "  tasks:         %d scheduled, %d unscheduled, %d completed\n",
		res.Scheduled, res.Unscheduled, res.Completed)
	for _, g := range harmony.Groups() {
		fmt.Fprintf(out, "  %-10s mean delay %8.1f s\n", g, res.MeanDelaySeconds[g])
	}
	if *series {
		fmt.Fprintln(out)
		fmt.Fprint(out, res.ActiveMachines.Render())
	}
	return nil
}
