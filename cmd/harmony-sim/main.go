// Command harmony-sim runs one end-to-end cluster simulation — synthetic
// workload, characterization, and a chosen provisioning policy — and
// prints the headline measurements (energy, scheduling delays, machine
// usage).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"harmony"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "harmony-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("harmony-sim", flag.ContinueOnError)
	var (
		traceIn = fs.String("trace", "", "run on a trace file (from tracegen) instead of generating one")
		seed    = fs.Int64("seed", 1, "RNG seed")
		hours   = fs.Float64("hours", 12, "workload length in hours")
		rate    = fs.Float64("rate", 0.8, "task arrival rate (tasks/second)")
		scale   = fs.Int("scale", 40, "cluster scale divisor (Table II has 10000 machines at scale 1)")
		policy  = fs.String("policy", "cbs", "policy: baseline | cbs | cbp | always-on")
		period  = fs.Float64("period", 300, "control period in seconds")
		horizon = fs.Int("horizon", 2, "MPC look-ahead periods")
		epsilon = fs.Float64("epsilon", 0, "container-sizing overflow bound (0 = default 0.25)")
		omega   = fs.Float64("omega", 1, "over-provisioning factor")
		diurnal = fs.Bool("diurnal-price", false, "use a sinusoidal daily electricity price")
		series  = fs.Bool("series", false, "also print the active-machine time series")

		stream = fs.Bool("stream", false, "stream the generated workload through the simulator "+
			"(constant memory; incompatible with -trace)")
		delaySamples = fs.Int("delay-samples", 0, "streaming mode: per-group delay-CDF reservoir size "+
			"(0 = default 100000, negative = exact)")
		sampleHours = fs.Float64("sample-hours", 2, "streaming mode: hours of materialized sample to characterize for cbs/cbp")
		maxHeapMB   = fs.Float64("max-heap-mb", 0, "fail if the sampled peak heap exceeds this many MiB (0 = no cap)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var p harmony.Policy
	switch *policy {
	case "baseline":
		p = harmony.PolicyBaseline
	case "cbs":
		p = harmony.PolicyCBS
	case "cbp":
		p = harmony.PolicyCBP
	case "always-on":
		p = harmony.PolicyAlwaysOn
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}

	if *stream {
		if *traceIn != "" {
			return fmt.Errorf("-stream generates its workload; it cannot be combined with -trace")
		}
		return runStream(out, p, streamParams{
			seed: *seed, hours: *hours, rate: *rate, scale: *scale,
			period: *period, horizon: *horizon, epsilon: *epsilon, omega: *omega,
			diurnal: *diurnal, delaySamples: *delaySamples,
			sampleHours: *sampleHours, maxHeapMB: *maxHeapMB,
		})
	}

	var (
		w   *harmony.Workload
		err error
	)
	if *traceIn != "" {
		w, err = harmony.LoadWorkload(*traceIn)
	} else {
		w, err = harmony.GenerateWorkload(harmony.WorkloadConfig{
			Seed:           *seed,
			Hours:          *hours,
			TasksPerSecond: *rate,
			Cluster:        harmony.ClusterTableII,
			ClusterScale:   *scale,
		})
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "workload: %d tasks, %d machines\n", w.NumTasks(), w.NumMachines())

	var ch *harmony.Characterization
	if p == harmony.PolicyCBS || p == harmony.PolicyCBP {
		ch, err = w.Characterize(harmony.CharacterizeConfig{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "characterization: %d classes, %d task types\n",
			len(ch.Classes()), ch.NumTaskTypes())
	}

	res, err := harmony.Simulate(w, ch, harmony.SimulationConfig{
		Policy:        p,
		PeriodSeconds: *period,
		Horizon:       *horizon,
		Epsilon:       *epsilon,
		Omega:         *omega,
		DiurnalPrice:  *diurnal,
	})
	if err != nil {
		return err
	}

	printResults(out, res, *series)
	return nil
}

func printResults(out io.Writer, res *harmony.SimulationResult, series bool) {
	fmt.Fprintf(out, "\n%s results:\n", res.Policy)
	fmt.Fprintf(out, "  energy:        %.2f kWh ($%.2f)\n", res.EnergyKWh, res.EnergyCost)
	fmt.Fprintf(out, "  switching:     %d events ($%.2f)\n", res.SwitchEvents, res.SwitchCost)
	fmt.Fprintf(out, "  tasks:         %d scheduled, %d unscheduled, %d completed\n",
		res.Scheduled, res.Unscheduled, res.Completed)
	for _, g := range harmony.Groups() {
		fmt.Fprintf(out, "  %-10s mean delay %8.1f s\n", g, res.MeanDelaySeconds[g])
	}
	if series {
		fmt.Fprintln(out)
		fmt.Fprint(out, res.ActiveMachines.Render())
	}
}

type streamParams struct {
	seed           int64
	hours, rate    float64
	scale          int
	period         float64
	horizon        int
	epsilon, omega float64
	diurnal        bool
	delaySamples   int
	sampleHours    float64
	maxHeapMB      float64
}

// runStream runs the streaming entry point: the workload flows through
// the simulator chunk by chunk, so the full trace is never in memory.
// The HARMONY policies still need a characterization, which comes from
// a short materialized sample of the same workload.
func runStream(out io.Writer, p harmony.Policy, sp streamParams) error {
	wcfg := harmony.WorkloadConfig{
		Seed:           sp.seed,
		Hours:          sp.hours,
		TasksPerSecond: sp.rate,
		Cluster:        harmony.ClusterTableII,
		ClusterScale:   sp.scale,
	}

	var ch *harmony.Characterization
	if p == harmony.PolicyCBS || p == harmony.PolicyCBP {
		sampleCfg := wcfg
		if sp.sampleHours > 0 && sp.sampleHours < sampleCfg.Hours {
			sampleCfg.Hours = sp.sampleHours
		}
		sample, err := harmony.GenerateWorkload(sampleCfg)
		if err != nil {
			return err
		}
		ch, err = sample.Characterize(harmony.CharacterizeConfig{Seed: sp.seed})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "characterization (%.1fh sample): %d classes, %d task types\n",
			sampleCfg.Hours, len(ch.Classes()), ch.NumTaskTypes())
	}

	res, metrics, err := harmony.SimulateStream(harmony.StreamConfig{
		Workload:        wcfg,
		MaxDelaySamples: sp.delaySamples,
	}, ch, harmony.SimulationConfig{
		Policy:        p,
		PeriodSeconds: sp.period,
		Horizon:       sp.horizon,
		Epsilon:       sp.epsilon,
		Omega:         sp.omega,
		DiurnalPrice:  sp.diurnal,
	})
	if err != nil {
		return err
	}

	printResults(out, res, false)
	peakMB := float64(metrics.PeakHeapBytes) / (1 << 20)
	fmt.Fprintf(out, "\nscale metrics (streamed):\n")
	fmt.Fprintf(out, "  tasks:         %d\n", metrics.Tasks)
	fmt.Fprintf(out, "  wall time:     %.2f s (%.0f tasks/s)\n", metrics.WallSeconds, metrics.TasksPerSecond)
	fmt.Fprintf(out, "  allocation:    %.0f bytes/task\n", metrics.BytesPerTask)
	fmt.Fprintf(out, "  peak heap:     %.1f MiB\n", peakMB)
	if sp.maxHeapMB > 0 && peakMB > sp.maxHeapMB {
		return fmt.Errorf("peak heap %.1f MiB exceeds cap %.1f MiB", peakMB, sp.maxHeapMB)
	}
	return nil
}
