package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"harmony/internal/classify"
	"harmony/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden output file")

// writeTestTrace generates a small deterministic trace and writes it in
// the tracegen JSON-lines format.
func writeTestTrace(t *testing.T) string {
	t.Helper()
	cfg := trace.DefaultConfig(11)
	cfg.Horizon = trace.Hour / 2
	cfg.RatePerS = 2
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.Write(f, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFlagErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}, "flag provided but not defined"},
		{"missing trace", nil, "missing -trace"},
		{"bad flag value", []string{"-max-classes", "many"}, "invalid value"},
		{"missing trace file", []string{"-trace", "/does/not/exist.jsonl"}, "no such file"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(tc.args, &out)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestRunGoldenOutput(t *testing.T) {
	tracePath := writeTestTrace(t)
	var out bytes.Buffer
	if err := run([]string{"-trace", tracePath, "-seed", "3", "-max-classes", "4", "-v"}, &out); err != nil {
		t.Fatal(err)
	}

	const goldenPath = "testdata/golden_output.txt"
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(out.Bytes(), golden) {
		t.Errorf("output differs from %s (regenerate with -update):\n--- got ---\n%s\n--- want ---\n%s",
			goldenPath, out.Bytes(), golden)
	}
}

func TestRunSavesLoadableCharacterization(t *testing.T) {
	tracePath := writeTestTrace(t)
	charPath := filepath.Join(t.TempDir(), "char.json")
	var out bytes.Buffer
	if err := run([]string{"-trace", tracePath, "-seed", "3", "-o", charPath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "characterization saved to") {
		t.Errorf("missing save confirmation in output:\n%s", out.String())
	}

	f, err := os.Open(charPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ch, err := classify.Load(f)
	if err != nil {
		t.Fatalf("saved characterization does not load: %v", err)
	}
	if len(ch.Classes) == 0 || len(ch.TaskTypes()) == 0 {
		t.Errorf("loaded characterization empty: %d classes", len(ch.Classes))
	}
	// The loaded characterization must label tasks from every group that
	// has classes.
	task := trace.Task{ID: 1, Duration: 60, CPU: 0.02, Mem: 0.02, Priority: 0}
	if id := ch.Label(task); id < 0 {
		t.Error("loaded characterization cannot label a gratis task")
	}
}
