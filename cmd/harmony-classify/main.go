// Command harmony-classify runs HARMONY's two-step task characterization
// (Section V) over a trace file produced by tracegen, prints the resulting
// task classes, and optionally saves the characterization as JSON for
// later online use.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"harmony/internal/classify"
	"harmony/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "harmony-classify:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: args are parsed with ContinueOnError
// and all report output goes to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("harmony-classify", flag.ContinueOnError)
	var (
		in      = fs.String("trace", "", "input trace file (JSON lines, from tracegen)")
		outPath = fs.String("o", "", "write the characterization JSON to this file")
		maxK    = fs.Int("max-classes", 12, "maximum classes per priority group")
		gain    = fs.Float64("elbow-gain", 0.05, "elbow threshold for choosing k")
		seed    = fs.Int64("seed", 1, "clustering seed")
		verbose = fs.Bool("v", false, "also print per-class duration sub-classes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -trace (generate one with tracegen)")
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return err
	}
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("trace invalid: %w", err)
	}

	ch, err := classify.Characterize(tr, classify.Config{
		MaxK:    *maxK,
		MinGain: *gain,
		Seed:    *seed,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "%d tasks -> %d classes, %d task types\n",
		len(tr.Tasks), len(ch.Classes), len(ch.TaskTypes()))
	for i := range ch.Classes {
		c := &ch.Classes[i]
		fmt.Fprintf(out, "class %3d [%-10s] cpu %.4f±%.4f mem %.4f±%.4f tasks %6d\n",
			c.ID, c.Group, c.CPU, c.CPUStd, c.Mem, c.MemStd, c.Count)
		if *verbose {
			for si, sub := range c.Sub {
				kind := "short"
				if si > 0 {
					kind = "long"
				}
				fmt.Fprintf(out, "    %-5s mean %9.1fs cv2 %6.2f max %10.1fs tasks %6d\n",
					kind, sub.MeanDuration, sub.SqCV, sub.MaxDuration, sub.Count)
			}
		}
	}

	if *outPath != "" {
		of, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer of.Close()
		if err := classify.Save(of, ch); err != nil {
			return err
		}
		fmt.Fprintf(out, "characterization saved to %s\n", *outPath)
	}
	return nil
}
