package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"harmony/internal/lint"
)

// -update rewrites the golden files from the current output instead of
// diffing against them: go test ./cmd/harmony-lint -update
var update = flag.Bool("update", false, "rewrite golden files from current output")

// checkGolden diffs got against the named golden file, rewriting the
// file instead when -update is set.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
		return
	}
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if !bytes.Equal(got, golden) {
		t.Errorf("output drifted from testdata/%s (run with -update to regenerate):\n--- golden\n%s--- got\n%s",
			name, golden, got)
	}
}

func TestRunList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run -list = %d, stderr %q", code, errOut.String())
	}
	for _, name := range []string{"ctxflow", "deferclose", "divzero", "floateq", "lockedfield", "lockorder", "nansource", "nodeterm", "rngdiscipline", "sortedemit", "unitcheck"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("run -nosuch = %d, want 2", code)
	}
	if errOut.Len() == 0 {
		t.Error("expected usage output on stderr")
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-analyzers", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("run -analyzers nosuch = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Errorf("stderr %q missing unknown-analyzer error", errOut.String())
	}
}

// -only is an alias of -analyzers: same subset semantics, same unknown-
// analyzer error, and combining the two is refused.
func TestRunOnlyFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-only", "floateq,ctxflow", "-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run -only floateq,ctxflow -list = %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "floateq") || !strings.Contains(out.String(), "ctxflow") {
		t.Errorf("-only subset missing from -list output:\n%s", out.String())
	}
	if strings.Contains(out.String(), "nodeterm") {
		t.Errorf("-only subset should exclude nodeterm:\n%s", out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-only", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("run -only nosuch = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Errorf("stderr %q missing unknown-analyzer error", errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-only", "floateq", "-analyzers", "floateq"}, &out, &errOut); code != 2 {
		t.Fatalf("run -only -analyzers = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "aliases") {
		t.Errorf("stderr %q missing alias-conflict error", errOut.String())
	}
}

func TestRunBadPkgPattern(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-pkg", "[", "./..."}, &out, &errOut); code != 2 {
		t.Fatalf("run -pkg [ = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "bad -pkg pattern") {
		t.Errorf("stderr %q missing bad-pattern error", errOut.String())
	}
}

func TestPkgPatternMatches(t *testing.T) {
	cases := []struct {
		pattern, pkg string
		want         bool
	}{
		{"harmony/internal/*", "harmony/internal/daemon", true},
		{"harmony/internal/*", "harmony/cmd/harmonyd", false},
		{"daemon", "harmony/internal/daemon", true},
		{"daemon", "harmony/internal/tenant", false},
		{"harmony/*/daemon", "harmony/internal/daemon", true},
	}
	for _, c := range cases {
		if got := pkgPatternMatches(c.pattern, c.pkg); got != c.want {
			t.Errorf("pkgPatternMatches(%q, %q) = %v, want %v", c.pattern, c.pkg, got, c.want)
		}
	}
}

// TestRunCleanPackage drives the real loader over a small deterministic
// package that must be finding-free.
func TestRunCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"./internal/queueing"}, &out, &errOut); code != 0 {
		t.Fatalf("run ./internal/queueing = %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected findings:\n%s", out.String())
	}
}

// TestRunListGolden pins the -list output to the documented analyzer
// set; CI diffs the binary's output against the same golden file, so
// adding an analyzer without documenting it fails both.
func TestRunListGolden(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run -list = %d, stderr %q", code, errOut.String())
	}
	checkGolden(t, "analyzers.txt", out.Bytes())
}

func TestRunListJSONConflict(t *testing.T) {
	for _, args := range [][]string{
		{"-list", "-json"},
		{"-list", "-sarif"},
		{"-json", "-sarif"},
	} {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != 2 {
			t.Fatalf("run %v = %d, want 2", args, code)
		}
		if !strings.Contains(errOut.String(), "cannot be combined") {
			t.Errorf("run %v: stderr %q missing conflict error", args, errOut.String())
		}
	}
}

// TestWriteFindingsJSON pins the -json shape against a golden file:
// sorted order preserved, paths relativized only under the base, the
// witness path present only when non-empty.
func TestWriteFindingsJSON(t *testing.T) {
	base := "/work/repo"
	diags := []lint.Diagnostic{
		{
			Pos:      token.Position{Filename: "/work/repo/internal/sched/harmony.go", Line: 42, Column: 7},
			Analyzer: "detertaint",
			Message:  "call of x transitively reads time.Now (wall clock)",
			Path:     []string{"sched.(*Harmony).Period", "impure.Stamp", "time.Now (wall clock)"},
		},
		{
			Pos:      token.Position{Filename: "/elsewhere/outside.go", Line: 7, Column: 1},
			Analyzer: "floateq",
			Message:  "float == comparison",
		},
		{
			Pos:      token.Position{Filename: "/work/repo/internal/energy/energy.go", Line: 133, Column: 14},
			Analyzer: "unitcheck",
			Message:  "scale mixing: W + kW without an annotated conversion (/1000 the W side)",
			Path:     []string{"w := m.Power(u) [W]", "budget := g.idleKW [kW]"},
		},
	}
	var out bytes.Buffer
	if err := writeFindingsJSON(&out, base, diags); err != nil {
		t.Fatalf("writeFindingsJSON: %v", err)
	}
	checkGolden(t, "findings.json", out.Bytes())
}

// TestWriteFindingsSARIF pins the -sarif shape against a golden file:
// SARIF 2.1.0 envelope, one rule per analyzer that ran, witness paths
// folded into the message text.
func TestWriteFindingsSARIF(t *testing.T) {
	base := "/work/repo"
	azs, err := lint.ByName([]string{"detertaint", "floateq", "unitcheck"})
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	diags := []lint.Diagnostic{
		{
			Pos:      token.Position{Filename: "/work/repo/internal/sched/harmony.go", Line: 42, Column: 7},
			Analyzer: "detertaint",
			Message:  "call of x transitively reads time.Now (wall clock)",
			Path:     []string{"sched.(*Harmony).Period", "impure.Stamp", "time.Now (wall clock)"},
		},
		{
			Pos:      token.Position{Filename: "/elsewhere/outside.go", Line: 7, Column: 1},
			Analyzer: "floateq",
			Message:  "float == comparison",
		},
		{
			Pos:      token.Position{Filename: "/work/repo/internal/energy/energy.go", Line: 133, Column: 14},
			Analyzer: "unitcheck",
			Message:  "scale mixing: W + kW without an annotated conversion (/1000 the W side)",
			Path:     []string{"w := m.Power(u) [W]", "budget := g.idleKW [kW]"},
		},
	}
	var out bytes.Buffer
	if err := writeFindingsSARIF(&out, base, azs, diags); err != nil {
		t.Fatalf("writeFindingsSARIF: %v", err)
	}
	checkGolden(t, "findings.sarif", out.Bytes())
}

// TestRunTiming drives -timing and -timing-budget through the real
// loader: timings land on stderr (stdout stays clean for findings), one
// line per analyzer, and an absurdly small budget trips exit 1.
func TestRunTiming(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-timing", "-only", "floateq,divzero", "./internal/queueing"}, &out, &errOut); code != 0 {
		t.Fatalf("run -timing = %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("timing output leaked onto stdout:\n%s", out.String())
	}
	for _, name := range []string{"timing: divzero", "timing: floateq"} {
		if !strings.Contains(errOut.String(), name) {
			t.Errorf("stderr missing %q:\n%s", name, errOut.String())
		}
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-timing-budget", "1ns", "-only", "floateq", "./internal/queueing"}, &out, &errOut); code != 1 {
		t.Fatalf("run -timing-budget 1ns = %d, want 1\nstderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "OVER BUDGET") || !strings.Contains(errOut.String(), "budget 1ns exceeded") {
		t.Errorf("stderr missing budget failure:\n%s", errOut.String())
	}
}

// TestRunSARIFCleanPackage drives -sarif through the real loader: a
// clean package must produce a valid SARIF log with no results, exit 0.
func TestRunSARIFCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-sarif", "./internal/queueing"}, &out, &errOut); code != 0 {
		t.Fatalf("run -sarif ./internal/queueing = %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	var log sarifLog
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected SARIF envelope: %+v", log)
	}
	if got := log.Runs[0].Tool.Driver.Name; got != "harmony-lint" {
		t.Errorf("driver name %q", got)
	}
	if len(log.Runs[0].Results) != 0 {
		t.Errorf("unexpected findings: %+v", log.Runs[0].Results)
	}
	if len(log.Runs[0].Tool.Driver.Rules) != len(lint.All()) {
		t.Errorf("rules = %d, want one per analyzer (%d)", len(log.Runs[0].Tool.Driver.Rules), len(lint.All()))
	}
}

// TestRunJSONCleanPackage drives -json through the real loader: a clean
// package must produce an empty JSON array and exit 0.
func TestRunJSONCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", "./internal/queueing"}, &out, &errOut); code != 0 {
		t.Fatalf("run -json ./internal/queueing = %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(findings) != 0 {
		t.Errorf("unexpected findings: %+v", findings)
	}
}
