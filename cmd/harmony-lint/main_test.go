package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"harmony/internal/lint"
)

func TestRunList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run -list = %d, stderr %q", code, errOut.String())
	}
	for _, name := range []string{"floateq", "mutexspan", "nodeterm", "rngdiscipline", "sortedemit"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("run -nosuch = %d, want 2", code)
	}
	if errOut.Len() == 0 {
		t.Error("expected usage output on stderr")
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-analyzers", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("run -analyzers nosuch = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Errorf("stderr %q missing unknown-analyzer error", errOut.String())
	}
}

// TestRunCleanPackage drives the real loader over a small deterministic
// package that must be finding-free.
func TestRunCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"./internal/queueing"}, &out, &errOut); code != 0 {
		t.Fatalf("run ./internal/queueing = %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected findings:\n%s", out.String())
	}
}

// TestRunListGolden pins the -list output to the documented analyzer
// set; CI diffs the binary's output against the same golden file, so
// adding an analyzer without documenting it fails both.
func TestRunListGolden(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "analyzers.txt"))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run -list = %d, stderr %q", code, errOut.String())
	}
	if out.String() != string(golden) {
		t.Errorf("-list output drifted from testdata/analyzers.txt:\n--- golden\n%s--- got\n%s",
			golden, out.String())
	}
}

func TestRunListJSONConflict(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list", "-json"}, &out, &errOut); code != 2 {
		t.Fatalf("run -list -json = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "cannot be combined") {
		t.Errorf("stderr %q missing conflict error", errOut.String())
	}
}

// TestWriteFindingsJSON pins the -json shape against a golden file:
// sorted order preserved, paths relativized only under the base, the
// witness path present only when non-empty.
func TestWriteFindingsJSON(t *testing.T) {
	base := "/work/repo"
	diags := []lint.Diagnostic{
		{
			Pos:      token.Position{Filename: "/work/repo/internal/sched/harmony.go", Line: 42, Column: 7},
			Analyzer: "detertaint",
			Message:  "call of x transitively reads time.Now (wall clock)",
			Path:     []string{"sched.(*Harmony).Period", "impure.Stamp", "time.Now (wall clock)"},
		},
		{
			Pos:      token.Position{Filename: "/elsewhere/outside.go", Line: 7, Column: 1},
			Analyzer: "floateq",
			Message:  "float == comparison",
		},
	}
	var out bytes.Buffer
	if err := writeFindingsJSON(&out, base, diags); err != nil {
		t.Fatalf("writeFindingsJSON: %v", err)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "findings.json"))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if out.String() != string(golden) {
		t.Errorf("-json output drifted from testdata/findings.json:\n--- golden\n%s--- got\n%s",
			golden, out.String())
	}
}

// TestRunJSONCleanPackage drives -json through the real loader: a clean
// package must produce an empty JSON array and exit 0.
func TestRunJSONCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", "./internal/queueing"}, &out, &errOut); code != 0 {
		t.Fatalf("run -json ./internal/queueing = %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(findings) != 0 {
		t.Errorf("unexpected findings: %+v", findings)
	}
}
