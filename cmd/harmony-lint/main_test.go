package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run -list = %d, stderr %q", code, errOut.String())
	}
	for _, name := range []string{"floateq", "mutexspan", "nodeterm", "rngdiscipline", "sortedemit"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("run -nosuch = %d, want 2", code)
	}
	if errOut.Len() == 0 {
		t.Error("expected usage output on stderr")
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-analyzers", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("run -analyzers nosuch = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Errorf("stderr %q missing unknown-analyzer error", errOut.String())
	}
}

// TestRunCleanPackage drives the real loader over a small deterministic
// package that must be finding-free.
func TestRunCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"./internal/queueing"}, &out, &errOut); code != 0 {
		t.Fatalf("run ./internal/queueing = %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected findings:\n%s", out.String())
	}
}
