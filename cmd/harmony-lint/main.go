// Command harmony-lint runs the determinism and concurrency analyzers of
// internal/lint over the module — the multichecker CI runs alongside go
// vet. Exit status: 0 clean, 1 findings, 2 usage or load failure.
//
//	harmony-lint [-only a,b,...] [-pkg pattern] [-json|-sarif] [-timing] [packages...]
//
// With no packages it checks ./... from the enclosing module root.
// -only (alias: -analyzers) restricts the run to a comma-separated
// analyzer subset. -pkg restricts *reporting* to packages whose import
// path matches a glob (or contains the pattern as a substring when it
// has no glob metacharacters); the analysis itself still sees the whole
// module, so interprocedural facts stay accurate. -json emits the
// findings as a JSON array (file, line, column, analyzer, message, and
// the call-path witness for interprocedural findings), sorted the same
// way as the text output, with file paths relative to the working
// directory. -sarif emits the same findings as a SARIF 2.1.0 log for
// code-scanning upload. -timing prints each analyzer's wall-clock cost
// to stderr (stdout stays machine-parseable); -timing-budget fails the
// run when any single analyzer exceeds the given duration, which CI uses
// as a coarse performance regression tripwire. Findings can be
// suppressed in place with
// `//harmony:allow <analyzer> <reason>` on the flagged line or the line
// above it; see internal/lint.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path"
	"path/filepath"
	"strings"
	"time"

	"harmony/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("harmony-lint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		names    = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		only     = fs.String("only", "", "comma-separated analyzer subset (alias of -analyzers)")
		pkgPat   = fs.String("pkg", "", "report findings only in packages whose import path matches this glob (substring match when the pattern has no metacharacters)")
		list     = fs.Bool("list", false, "list analyzers and exit")
		jsonOut  = fs.Bool("json", false, "emit findings as a JSON array")
		sarifOut = fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
		timing   = fs.Bool("timing", false, "print per-analyzer wall-clock timings to stderr")
		budget   = fs.Duration("timing-budget", 0, "fail when any analyzer exceeds this wall-clock budget (implies -timing)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list && (*jsonOut || *sarifOut) {
		fmt.Fprintln(errOut, "harmony-lint: -list and -json/-sarif cannot be combined")
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(errOut, "harmony-lint: -json and -sarif cannot be combined")
		return 2
	}
	if *names != "" && *only != "" {
		fmt.Fprintln(errOut, "harmony-lint: -analyzers and -only cannot be combined (they are aliases)")
		return 2
	}
	if *only != "" {
		*names = *only
	}
	if *pkgPat != "" {
		if _, err := path.Match(*pkgPat, "probe"); err != nil {
			fmt.Fprintf(errOut, "harmony-lint: bad -pkg pattern %q: %v\n", *pkgPat, err)
			return 2
		}
	}

	analyzers := lint.All()
	if *names != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*names, ","))
		if err != nil {
			fmt.Fprintln(errOut, err)
			return 2
		}
	}
	if *list {
		for _, az := range analyzers {
			fmt.Fprintf(out, "%-14s %s\n", az.Name, az.Doc)
		}
		return 0
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 2
	}
	var (
		diags   []lint.Diagnostic
		timings []lint.AnalyzerTiming
	)
	if *timing || *budget > 0 {
		diags, timings = lint.CheckTimed(pkgs, analyzers)
	} else {
		diags = lint.Check(pkgs, analyzers)
	}
	if *pkgPat != "" {
		diags = filterDiagsByPkg(diags, pkgs, *pkgPat)
	}
	if *jsonOut || *sarifOut {
		cwd, err := os.Getwd()
		if err != nil {
			cwd = "" // keep absolute paths rather than fail the run
		}
		write := writeFindingsJSON
		if *sarifOut {
			write = func(out io.Writer, base string, diags []lint.Diagnostic) error {
				return writeFindingsSARIF(out, base, analyzers, diags)
			}
		}
		if err := write(out, cwd, diags); err != nil {
			fmt.Fprintln(errOut, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
	}
	// Timings go to stderr so -json/-sarif stdout stays machine-parseable.
	overBudget := false
	for _, tm := range timings {
		mark := ""
		if *budget > 0 && tm.Elapsed > *budget {
			mark = "  OVER BUDGET"
			overBudget = true
		}
		fmt.Fprintf(errOut, "timing: %-14s %12s%s\n", tm.Name, tm.Elapsed.Round(time.Microsecond), mark)
	}
	if len(diags) > 0 {
		fmt.Fprintf(errOut, "harmony-lint: %d finding(s)\n", len(diags))
		return 1
	}
	if overBudget {
		fmt.Fprintf(errOut, "harmony-lint: per-analyzer budget %s exceeded\n", *budget)
		return 1
	}
	return 0
}

// jsonFinding is one finding in -json output. Path is the call-chain
// witness of an interprocedural finding, outermost caller first.
type jsonFinding struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Column   int      `json:"column"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Path     []string `json:"path,omitempty"`
}

// writeFindingsJSON renders the diagnostics as a JSON array, preserving
// their sorted order, with file paths relative to base when they lie
// under it.
func writeFindingsJSON(out io.Writer, base string, diags []lint.Diagnostic) error {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if base != "" {
			if rel, err := filepath.Rel(base, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		findings = append(findings, jsonFinding{
			File:     file,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Path:     d.Path,
		})
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// pkgPatternMatches reports whether an import path matches the -pkg
// pattern: path.Match semantics when the pattern carries glob
// metacharacters, substring containment otherwise.
func pkgPatternMatches(pattern, pkgPath string) bool {
	if strings.ContainsAny(pattern, "*?[") {
		ok, err := path.Match(pattern, pkgPath)
		return err == nil && ok
	}
	return strings.Contains(pkgPath, pattern)
}

// filterDiagsByPkg keeps the findings whose file belongs to a package
// matching the -pkg pattern. The mapping goes through package
// directories, so analysis stays whole-module while reporting narrows.
func filterDiagsByPkg(diags []lint.Diagnostic, pkgs []*lint.Package, pattern string) []lint.Diagnostic {
	dirs := make(map[string]bool)
	for _, pkg := range pkgs {
		if pkgPatternMatches(pattern, pkg.Path) {
			dirs[pkg.Dir] = true
		}
	}
	out := diags[:0]
	for _, d := range diags {
		if dirs[filepath.Dir(d.Pos.Filename)] {
			out = append(out, d)
		}
	}
	return out
}

// --- SARIF 2.1.0 output -------------------------------------------------

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeFindingsSARIF renders the diagnostics as a SARIF 2.1.0 log. The
// rules array carries every analyzer that ran (so zero-finding runs
// still document the rule set), and interprocedural witness paths fold
// into the message text.
func writeFindingsSARIF(out io.Writer, base string, azs []*lint.Analyzer, diags []lint.Diagnostic) error {
	ruleIndex := make(map[string]int, len(azs))
	rules := make([]sarifRule, 0, len(azs))
	for _, az := range azs {
		ruleIndex[az.Name] = len(rules)
		rules = append(rules, sarifRule{ID: az.Name, ShortDescription: sarifMessage{Text: az.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if base != "" {
			if rel, err := filepath.Rel(base, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		text := d.Message
		if len(d.Path) > 0 {
			text += "\nwitness: " + strings.Join(d.Path, " → ")
		}
		idx, ok := ruleIndex[d.Analyzer]
		if !ok {
			idx = len(rules)
			ruleIndex[d.Analyzer] = idx
			rules = append(rules, sarifRule{ID: d.Analyzer, ShortDescription: sarifMessage{Text: d.Analyzer}})
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: text},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(file)},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "harmony-lint", Rules: rules}}, Results: results}},
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
