// Command harmony-lint runs the determinism and concurrency analyzers of
// internal/lint over the module — the multichecker CI runs alongside go
// vet. Exit status: 0 clean, 1 findings, 2 usage or load failure.
//
//	harmony-lint [-analyzers a,b,...] [-json] [packages...]
//
// With no packages it checks ./... from the enclosing module root.
// -json emits the findings as a JSON array (file, line, column,
// analyzer, message, and the call-path witness for interprocedural
// findings), sorted the same way as the text output, with file paths
// relative to the working directory. Findings can be suppressed in place
// with `//harmony:allow <analyzer> <reason>` on the flagged line or the
// line above it; see internal/lint.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"harmony/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("harmony-lint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		names   = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list    = fs.Bool("list", false, "list analyzers and exit")
		jsonOut = fs.Bool("json", false, "emit findings as a JSON array")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list && *jsonOut {
		fmt.Fprintln(errOut, "harmony-lint: -list and -json cannot be combined")
		return 2
	}

	analyzers := lint.All()
	if *names != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*names, ","))
		if err != nil {
			fmt.Fprintln(errOut, err)
			return 2
		}
	}
	if *list {
		for _, az := range analyzers {
			fmt.Fprintf(out, "%-14s %s\n", az.Name, az.Doc)
		}
		return 0
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 2
	}
	diags := lint.Check(pkgs, analyzers)
	if *jsonOut {
		cwd, err := os.Getwd()
		if err != nil {
			cwd = "" // keep absolute paths rather than fail the run
		}
		if err := writeFindingsJSON(out, cwd, diags); err != nil {
			fmt.Fprintln(errOut, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(errOut, "harmony-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// jsonFinding is one finding in -json output. Path is the call-chain
// witness of an interprocedural finding, outermost caller first.
type jsonFinding struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Column   int      `json:"column"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Path     []string `json:"path,omitempty"`
}

// writeFindingsJSON renders the diagnostics as a JSON array, preserving
// their sorted order, with file paths relative to base when they lie
// under it.
func writeFindingsJSON(out io.Writer, base string, diags []lint.Diagnostic) error {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if base != "" {
			if rel, err := filepath.Rel(base, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		findings = append(findings, jsonFinding{
			File:     file,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Path:     d.Path,
		})
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}
