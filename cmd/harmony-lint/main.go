// Command harmony-lint runs the determinism and concurrency analyzers of
// internal/lint over the module — the multichecker CI runs alongside go
// vet. Exit status: 0 clean, 1 findings, 2 usage or load failure.
//
//	harmony-lint [-analyzers a,b,...] [packages...]
//
// With no packages it checks ./... from the enclosing module root.
// Findings can be suppressed in place with
// `//harmony:allow <analyzer> <reason>` on the flagged line or the line
// above it; see internal/lint.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"harmony/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("harmony-lint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		names = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list  = fs.Bool("list", false, "list analyzers and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *names != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*names, ","))
		if err != nil {
			fmt.Fprintln(errOut, err)
			return 2
		}
	}
	if *list {
		for _, az := range analyzers {
			fmt.Fprintf(out, "%-14s %s\n", az.Name, az.Doc)
		}
		return 0
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 2
	}
	diags := lint.Check(pkgs, analyzers)
	for _, d := range diags {
		fmt.Fprintln(out, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(errOut, "harmony-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
