package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"harmony"
)

// simScaleSchema identifies the streaming-simulation scale baseline; it
// coexists with the control-path schema in checkBenchJSON, which
// dispatches on the schema tag.
const simScaleSchema = "harmony/sim-scale-bench/v1"

// simScaleOps is the exact op set a sim-scale baseline must carry.
var simScaleOps = []string{"tasks-per-sec", "bytes-per-task", "peak-heap-bytes"}

// simScaleMetric is one recorded scale measurement.
type simScaleMetric struct {
	Op    string  `json:"op"`
	Value float64 `json:"value"`
}

// simScaleFile is the on-disk shape of BENCH_sim_scale.json. Config
// records how the run was produced, Tasks how many tasks streamed
// through — the committed baseline demonstrates a 1M+-task run with
// bounded memory.
type simScaleFile struct {
	Schema string `json:"schema"`
	Config struct {
		Seed   int64   `json:"seed"`
		Hours  float64 `json:"hours"`
		Rate   float64 `json:"rate"`
		Scale  int     `json:"scale"`
		Policy string  `json:"policy"`
	} `json:"config"`
	Tasks   int64            `json:"tasks"`
	Metrics []simScaleMetric `json:"metrics"`
}

// writeSimScaleJSON runs one streaming simulation at the given workload
// parameters and records its scale profile: throughput, allocation per
// task, and the sampled live-heap peak (an RSS proxy). The trace is
// never materialized, so the run's memory is O(live tasks + machines).
func writeSimScaleJSON(path string, seed int64, hours, rate float64, scale int, policyName string, out io.Writer) error {
	var policy harmony.Policy
	switch policyName {
	case "baseline":
		policy = harmony.PolicyBaseline
	case "always-on":
		policy = harmony.PolicyAlwaysOn
	default:
		return fmt.Errorf("simscale-json: policy %q (characterization-free policies only: baseline | always-on)", policyName)
	}
	fmt.Fprintf(out, "simscale: streaming %.1fh at %.2f tasks/s (cluster scale %d, %s)...\n",
		hours, rate, scale, policyName)
	_, metrics, err := harmony.SimulateStream(harmony.StreamConfig{
		Workload: harmony.WorkloadConfig{
			Seed:           seed,
			Hours:          hours,
			TasksPerSecond: rate,
			Cluster:        harmony.ClusterTableII,
			ClusterScale:   scale,
		},
	}, nil, harmony.SimulationConfig{Policy: policy})
	if err != nil {
		return fmt.Errorf("simscale-json: %w", err)
	}

	var file simScaleFile
	file.Schema = simScaleSchema
	file.Config.Seed = seed
	file.Config.Hours = hours
	file.Config.Rate = rate
	file.Config.Scale = scale
	file.Config.Policy = policyName
	file.Tasks = metrics.Tasks
	file.Metrics = []simScaleMetric{
		{Op: "tasks-per-sec", Value: metrics.TasksPerSecond},
		{Op: "bytes-per-task", Value: metrics.BytesPerTask},
		{Op: "peak-heap-bytes", Value: float64(metrics.PeakHeapBytes)},
	}
	for _, m := range file.Metrics {
		fmt.Fprintf(out, "simscale: %-16s %16.0f\n", m.Op, m.Value)
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("simscale-json: %w", err)
	}
	fmt.Fprintf(out, "simscale: wrote %s (%d tasks)\n", path, file.Tasks)
	return nil
}

// checkSimScaleJSON validates a recorded sim-scale baseline: the exact
// op set, once each, with plausible values.
func checkSimScaleJSON(data []byte, path string, out io.Writer) error {
	var file simScaleFile
	if err := json.Unmarshal(data, &file); err != nil {
		return fmt.Errorf("benchjson-check: %s: %w", path, err)
	}
	if file.Tasks < 1 {
		return fmt.Errorf("benchjson-check: %s: implausible task count %d", path, file.Tasks)
	}
	known := make(map[string]bool, len(simScaleOps))
	for _, op := range simScaleOps {
		known[op] = true
	}
	seen := make(map[string]bool, len(file.Metrics))
	for _, m := range file.Metrics {
		if !known[m.Op] {
			return fmt.Errorf("benchjson-check: %s: unknown op %q (regenerate with make sim-scale-baseline)", path, m.Op)
		}
		if seen[m.Op] {
			return fmt.Errorf("benchjson-check: %s: duplicate op %q", path, m.Op)
		}
		seen[m.Op] = true
		if m.Value <= 0 {
			return fmt.Errorf("benchjson-check: %s: op %q has implausible value %g", path, m.Op, m.Value)
		}
	}
	for _, op := range simScaleOps {
		if !seen[op] {
			return fmt.Errorf("benchjson-check: %s: missing op %q (regenerate with make sim-scale-baseline)", path, op)
		}
	}
	fmt.Fprintf(out, "benchjson: %s ok (sim-scale, %d tasks)\n", path, file.Tasks)
	return nil
}
