package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"harmony"
)

// benchSchema identifies the tracked control-path baseline format; bump
// it when the record shape changes.
const benchSchema = "harmony/control-path-bench/v1"

// benchRecord is one measured control-path operation.
type benchRecord struct {
	Op          string  `json:"op"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchFile is the on-disk shape of BENCH_control_path.json.
type benchFile struct {
	Schema     string        `json:"schema"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

// writeBenchJSON measures every control-path operation and writes the
// baseline file.
func writeBenchJSON(path string, msPerOp int, out io.Writer) error {
	ops, err := harmony.ControlPathOps()
	if err != nil {
		return fmt.Errorf("benchjson: %w", err)
	}
	file := benchFile{Schema: benchSchema}
	for _, op := range ops {
		rec, err := measureOp(op, time.Duration(msPerOp)*time.Millisecond)
		if err != nil {
			return fmt.Errorf("benchjson: %s: %w", op.Name, err)
		}
		fmt.Fprintf(out, "bench: %-20s %14.0f ns/op %10.0f allocs/op  (%d iters)\n",
			rec.Op, rec.NsPerOp, rec.AllocsPerOp, rec.Iters)
		file.Benchmarks = append(file.Benchmarks, rec)
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("benchjson: %w", err)
	}
	fmt.Fprintf(out, "bench: wrote %s\n", path)
	return nil
}

// measureOp warms an operation up once, then times it in doubling
// batches until one batch runs for at least target; that batch's wall
// time and heap allocations (runtime.MemStats deltas) give the per-op
// numbers, the same way testing.B converges on -benchtime.
func measureOp(op harmony.ControlPathOp, target time.Duration) (benchRecord, error) {
	if err := op.Run(1); err != nil {
		return benchRecord{}, err
	}
	for iters := 1; ; iters *= 2 {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		err := op.Run(iters)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return benchRecord{}, err
		}
		if elapsed >= target || iters >= 1<<22 {
			return benchRecord{
				Op:          op.Name,
				Iters:       iters,
				NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
				AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
			}, nil
		}
	}
}

// checkBenchJSON validates a recorded baseline without re-running the
// benchmarks. It dispatches on the file's schema tag: control-path
// baselines get their op set checked against the code's current op set,
// sim-scale baselines against the fixed scale-metric set — either way a
// stale baseline fails CI instead of silently tracking operations that
// no longer exist.
func checkBenchJSON(path string, out io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("benchjson-check: %w (record with -benchjson)", err)
	}
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return fmt.Errorf("benchjson-check: %s: %w", path, err)
	}
	switch head.Schema {
	case benchSchema:
	case simScaleSchema:
		return checkSimScaleJSON(data, path, out)
	default:
		return fmt.Errorf("benchjson-check: %s: schema %q, want %q or %q",
			path, head.Schema, benchSchema, simScaleSchema)
	}
	var file benchFile
	if err := json.Unmarshal(data, &file); err != nil {
		return fmt.Errorf("benchjson-check: %s: %w", path, err)
	}
	want := harmony.ControlPathOpNames()
	known := make(map[string]bool, len(want))
	for _, name := range want {
		known[name] = true
	}
	seen := make(map[string]bool, len(file.Benchmarks))
	for _, rec := range file.Benchmarks {
		if !known[rec.Op] {
			return fmt.Errorf("benchjson-check: %s: unknown op %q (regenerate with make bench-baseline)", path, rec.Op)
		}
		if seen[rec.Op] {
			return fmt.Errorf("benchjson-check: %s: duplicate op %q", path, rec.Op)
		}
		seen[rec.Op] = true
		if rec.Iters < 1 || rec.NsPerOp <= 0 || rec.AllocsPerOp < 0 {
			return fmt.Errorf("benchjson-check: %s: op %q has implausible numbers", path, rec.Op)
		}
	}
	for _, name := range want {
		if !seen[name] {
			return fmt.Errorf("benchjson-check: %s: missing op %q (regenerate with make bench-baseline)", path, name)
		}
	}
	fmt.Fprintf(out, "benchjson: %s ok (%d ops)\n", path, len(file.Benchmarks))
	return nil
}
