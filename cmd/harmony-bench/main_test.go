package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestRunFlagErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"missing exp", nil, "missing -exp"},
		{"unknown exp", []string{"-exp", "fig999"}, "unknown experiment"},
		{"unknown exp among all ids", []string{"-exp", "nope"}, "unknown experiment"},
		{"unknown cluster", []string{"-exp", "fig9", "-cluster", "azure"}, "unknown cluster"},
		{"zero parallel", []string{"-exp", "fig9", "-parallel", "0"}, "invalid -parallel"},
		{"negative parallel", []string{"-exp", "fig9", "-parallel", "-3"}, "invalid -parallel"},
		{"non-numeric parallel", []string{"-exp", "fig9", "-parallel", "lots"}, "invalid value"},
		{"undefined flag", []string{"-exp", "fig9", "-bogus"}, "flag provided but not defined"},
		{"bad golden mode", []string{"-exp", "fig9", "-golden", "verify"}, "invalid -golden"},
		{"unknown id in list", []string{"-exp", "fig9,fig999"}, "unknown experiment"},
		{"only commas", []string{"-exp", ",,"}, "missing -exp"},
		{"zero bench-ms", []string{"-benchjson", "x.json", "-bench-ms", "0"}, "invalid -bench-ms"},
		{"negative bench-ms", []string{"-benchjson", "x.json", "-bench-ms", "-5"}, "invalid -bench-ms"},
		{"non-numeric bench-ms", []string{"-benchjson", "x.json", "-bench-ms", "slow"}, "invalid value"},
		{"unwritable cpuprofile", []string{"-list", "-cpuprofile", "/nonexistent-dir/cpu.prof"}, "-cpuprofile"},
		{"unwritable memprofile", []string{"-list", "-memprofile", "/nonexistent-dir/mem.prof"}, "-memprofile"},
		{"missing baseline", []string{"-benchjson-check", "/nonexistent-dir/bench.json"}, "benchjson-check"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := run(tt.args, io.Discard)
			if err == nil {
				t.Fatalf("run(%v) accepted", tt.args)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("run(%v) error = %q, want substring %q", tt.args, err, tt.want)
			}
		})
	}
}

func TestRunList(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig1", "fig26"} {
		if !strings.Contains(b.String(), id) {
			t.Errorf("-list output missing %q", id)
		}
	}
}

// A static experiment regenerates under -parallel without touching the
// simulation caches, and the flag accepts values above the id count.
func TestRunStaticExperimentParallel(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-exp", "fig9", "-parallel", "8"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "fig9") {
		t.Errorf("fig9 output missing header: %q", b.String())
	}
}

// Comma-separated ids run in input order, like separate invocations.
func TestRunCommaSeparatedExperiments(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-exp", "fig1, fig9"}, &b); err != nil {
		t.Fatal(err)
	}
	i1 := strings.Index(b.String(), "fig1")
	i9 := strings.Index(b.String(), "fig9")
	if i1 < 0 || i9 < 0 || i9 < i1 {
		t.Errorf("expected fig1 before fig9 in output:\n%s", b.String())
	}
}

func TestGoldenWriteCheckRoundtrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "golden")
	var b strings.Builder
	if err := run([]string{"-exp", "fig1,fig9", "-golden", "write", "-golden-dir", dir}, &b); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig1", "fig9"} {
		if _, err := os.Stat(filepath.Join(dir, id+".txt")); err != nil {
			t.Errorf("golden file for %s not written: %v", id, err)
		}
	}

	// Unchanged inputs pass the check.
	b.Reset()
	if err := run([]string{"-exp", "fig1,fig9", "-golden", "check", "-golden-dir", dir}, &b); err != nil {
		t.Fatalf("check after write: %v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "fig1 ok") || !strings.Contains(b.String(), "fig9 ok") {
		t.Errorf("check output: %s", b.String())
	}

	// A tampered golden fails the check and names the experiment.
	tampered := filepath.Join(dir, "fig9.txt")
	if err := os.WriteFile(tampered, []byte("stale rendering\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	err := run([]string{"-exp", "fig1,fig9", "-golden", "check", "-golden-dir", dir}, &b)
	if err == nil || !strings.Contains(err.Error(), "fig9") {
		t.Fatalf("tampered golden not caught: err=%v\n%s", err, b.String())
	}
	if strings.Contains(err.Error(), "fig1,") {
		t.Errorf("untampered fig1 flagged: %v", err)
	}

	// A missing golden is an error, not a silent pass.
	if err := os.Remove(tampered); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "fig9", "-golden", "check", "-golden-dir", dir}, io.Discard); err == nil {
		t.Error("missing golden file passed the check")
	}
}

// TestBenchJSONRoundtrip captures a (tiny-budget) control-path baseline
// and validates it with -benchjson-check; tampered schemas, unknown ops,
// and missing ops must all fail the check.
func TestBenchJSONRoundtrip(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark capture in -short mode")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	var b strings.Builder
	if err := run([]string{"-benchjson", path, "-bench-ms", "1"}, &b); err != nil {
		t.Fatalf("benchjson: %v\n%s", err, b.String())
	}
	for _, op := range []string{"relax-cold-mpc", "relax-warm-mpc", "placement", "placement-delta", "harmony-period-tick"} {
		if !strings.Contains(b.String(), op) {
			t.Errorf("capture output missing op %q:\n%s", op, b.String())
		}
	}

	b.Reset()
	if err := run([]string{"-benchjson-check", path}, &b); err != nil {
		t.Fatalf("check after capture: %v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "ok") {
		t.Errorf("check output: %s", b.String())
	}

	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []struct {
		name, content, want string
	}{
		{"wrong schema", strings.Replace(string(good), "control-path-bench/v1", "control-path-bench/v0", 1), "schema"},
		{"unknown op", strings.Replace(string(good), `"relax-cold-mpc"`, `"relax-hot-mpc"`, 1), "unknown op"},
		{"not json", "ns/op all the way down", "invalid character"},
	} {
		t.Run(tt.name, func(t *testing.T) {
			bad := filepath.Join(t.TempDir(), "bad.json")
			if err := os.WriteFile(bad, []byte(tt.content), 0o644); err != nil {
				t.Fatal(err)
			}
			err := run([]string{"-benchjson-check", bad}, io.Discard)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("tampered baseline (%s) not caught: %v", tt.name, err)
			}
		})
	}
}

// TestCommittedBenchBaseline guards the repository's own tracked
// baseline: BENCH_control_path.json must parse and cover the current op
// set. (Numbers are a record of one machine's run, not an assertion.)
func TestCommittedBenchBaseline(t *testing.T) {
	if err := run([]string{"-benchjson-check", filepath.Join("..", "..", "BENCH_control_path.json")}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestSimScaleJSONRoundtrip captures a (tiny) streaming-scale baseline
// and validates it with the same -benchjson-check entry point — the
// checker dispatches on the schema tag. Tampered files must fail.
func TestSimScaleJSONRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "simscale.json")
	var b strings.Builder
	args := []string{"-simscale-json", path, "-hours", "0.5", "-rate", "0.5", "-scale", "200"}
	if err := run(args, &b); err != nil {
		t.Fatalf("simscale-json: %v\n%s", err, b.String())
	}
	for _, op := range []string{"tasks-per-sec", "bytes-per-task", "peak-heap-bytes"} {
		if !strings.Contains(b.String(), op) {
			t.Errorf("capture output missing op %q:\n%s", op, b.String())
		}
	}

	b.Reset()
	if err := run([]string{"-benchjson-check", path}, &b); err != nil {
		t.Fatalf("check after capture: %v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "sim-scale") {
		t.Errorf("check output should identify the schema: %s", b.String())
	}

	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []struct {
		name, content, want string
	}{
		{"wrong schema", strings.Replace(string(good), "sim-scale-bench/v1", "sim-scale-bench/v0", 1), "schema"},
		{"unknown op", strings.Replace(string(good), `"tasks-per-sec"`, `"tasks-per-min"`, 1), "unknown op"},
		{"missing op", strings.Replace(string(good), `"bytes-per-task"`, `"tasks-per-sec"`, 1), "duplicate op"},
		{"zero tasks", regexp.MustCompile(`"tasks": \d+`).ReplaceAllString(string(good), `"tasks": 0`), "implausible task count"},
	} {
		t.Run(tt.name, func(t *testing.T) {
			bad := filepath.Join(t.TempDir(), "bad.json")
			if err := os.WriteFile(bad, []byte(tt.content), 0o644); err != nil {
				t.Fatal(err)
			}
			err := run([]string{"-benchjson-check", bad}, io.Discard)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("tampered baseline (%s) not caught: %v", tt.name, err)
			}
		})
	}

	if err := run([]string{"-simscale-json", path, "-simscale-policy", "cbs"}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "characterization-free") {
		t.Errorf("cbs simscale policy should be rejected, got %v", err)
	}
}

// TestCommittedSimScaleBaseline guards the tracked streaming-scale
// baseline: BENCH_sim_scale.json must parse, carry the exact op set,
// and record the 1M+-task run it documents.
func TestCommittedSimScaleBaseline(t *testing.T) {
	path := filepath.Join("..", "..", "BENCH_sim_scale.json")
	if err := run([]string{"-benchjson-check", path}, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file simScaleFile
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatal(err)
	}
	if file.Tasks < 1_000_000 {
		t.Errorf("committed baseline records %d tasks, want >= 1M (regenerate with make sim-scale-baseline)", file.Tasks)
	}
}

// TestProfileFlags exercises the pprof hooks on a cheap mode: both
// profile files must exist and be non-empty afterwards.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	if err := run([]string{"-list", "-cpuprofile", cpu, "-memprofile", mem}, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// TestCommittedGoldens guards the repository's own golden files: the fast
// deterministic experiments must reproduce them exactly.
func TestCommittedGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping experiment regeneration in -short mode")
	}
	var b strings.Builder
	if err := run([]string{"-exp", "fig1,fig9,fig10-12", "-golden", "check"}, &b); err != nil {
		t.Fatalf("committed goldens stale: %v\n%s", err, b.String())
	}
}
