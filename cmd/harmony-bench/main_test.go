package main

import (
	"io"
	"strings"
	"testing"
)

func TestRunFlagErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"missing exp", nil, "missing -exp"},
		{"unknown exp", []string{"-exp", "fig999"}, "unknown experiment"},
		{"unknown exp among all ids", []string{"-exp", "nope"}, "unknown experiment"},
		{"unknown cluster", []string{"-exp", "fig9", "-cluster", "azure"}, "unknown cluster"},
		{"zero parallel", []string{"-exp", "fig9", "-parallel", "0"}, "invalid -parallel"},
		{"negative parallel", []string{"-exp", "fig9", "-parallel", "-3"}, "invalid -parallel"},
		{"non-numeric parallel", []string{"-exp", "fig9", "-parallel", "lots"}, "invalid value"},
		{"undefined flag", []string{"-exp", "fig9", "-bogus"}, "flag provided but not defined"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := run(tt.args, io.Discard)
			if err == nil {
				t.Fatalf("run(%v) accepted", tt.args)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("run(%v) error = %q, want substring %q", tt.args, err, tt.want)
			}
		})
	}
}

func TestRunList(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig1", "fig26"} {
		if !strings.Contains(b.String(), id) {
			t.Errorf("-list output missing %q", id)
		}
	}
}

// A static experiment regenerates under -parallel without touching the
// simulation caches, and the flag accepts values above the id count.
func TestRunStaticExperimentParallel(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-exp", "fig9", "-parallel", "8"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "fig9") {
		t.Errorf("fig9 output missing header: %q", b.String())
	}
}
