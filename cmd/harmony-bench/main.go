// Command harmony-bench regenerates the paper's tables and figures: each
// experiment id produces the corresponding data series and headline
// numbers. Run with -list to see the available experiments, -exp all to
// regenerate everything (comma-separated ids select a subset), and
// -parallel N to fan independent experiments out across N workers
// (results print in deterministic input order). The -golden write|check
// modes persist each experiment's full rendering under -golden-dir and
// diff against it, so CI can catch unintended result drift.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"

	"harmony"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "harmony-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("harmony-bench", flag.ContinueOnError)
	var (
		exp       = fs.String("exp", "", "experiment id or comma-separated ids (see -list), or 'all'")
		list      = fs.Bool("list", false, "list experiment ids")
		seed      = fs.Int64("seed", 1, "RNG seed")
		hours     = fs.Float64("hours", 12, "workload length in hours")
		rate      = fs.Float64("rate", 0.8, "task arrival rate (tasks/second)")
		scale     = fs.Int("scale", 40, "cluster scale divisor")
		cluster   = fs.String("cluster", "tableii", "cluster: tableii | googlelike")
		full      = fs.Bool("full-series", false, "print full series (default: summaries only)")
		epsilon   = fs.Float64("epsilon", 0, "container-sizing overflow bound (0 = default 0.25)")
		parallel  = fs.Int("parallel", 1, "experiments to run concurrently (>= 1)")
		golden    = fs.String("golden", "", "golden mode: 'write' records per-experiment renderings, 'check' diffs against them")
		goldenDir = fs.String("golden-dir", filepath.Join("testdata", "golden"), "directory for golden files")

		benchJSON  = fs.String("benchjson", "", "measure the control-path micro-benchmarks and write the baseline JSON to this path")
		benchCheck = fs.String("benchjson-check", "", "validate a recorded control-path baseline (schema + op set) without re-benchmarking")
		benchMS    = fs.Int("bench-ms", 200, "per-op measurement budget for -benchjson, in milliseconds")

		simScaleJSON = fs.String("simscale-json", "", "run one streaming simulation (at -seed/-hours/-rate/-scale) and write its scale baseline JSON to this path")
		simScalePol  = fs.String("simscale-policy", "baseline", "policy for -simscale-json: baseline | always-on")
		cpuprofile   = fs.String("cpuprofile", "", "write a CPU profile of the run to this path")
		memprofile   = fs.String("memprofile", "", "write a heap profile at the end of the run to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *golden {
	case "", "write", "check":
	default:
		return fmt.Errorf("invalid -golden %q: must be 'write' or 'check'", *golden)
	}
	if *benchMS < 1 {
		return fmt.Errorf("invalid -bench-ms %d: must be >= 1", *benchMS)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	// body routes to the selected mode (baseline check, baseline capture,
	// experiment listing, experiment runs); it is a closure so the pprof
	// hooks above and below bracket every mode uniformly.
	body := func() error {
		if *benchCheck != "" {
			return checkBenchJSON(*benchCheck, out)
		}
		if *benchJSON != "" {
			return writeBenchJSON(*benchJSON, *benchMS, out)
		}
		if *simScaleJSON != "" {
			return writeSimScaleJSON(*simScaleJSON, *seed, *hours, *rate, *scale, *simScalePol, out)
		}
		return runExperiments(out, *exp, *list, *seed, *hours, *rate, *scale,
			*cluster, *full, *epsilon, *parallel, *golden, *goldenDir)
	}
	if err := body(); err != nil {
		return err
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
	}
	return nil
}

// runExperiments is the original harmony-bench mode: regenerate the
// selected experiments (optionally in parallel and against goldens).
func runExperiments(out io.Writer, exp string, list bool, seed int64, hours, rate float64,
	scale int, cluster string, full bool, epsilon float64, parallel int,
	golden, goldenDir string) error {
	if list {
		for _, id := range harmony.ExperimentIDs() {
			fmt.Fprintln(out, id)
		}
		return nil
	}
	if exp == "" {
		return fmt.Errorf("missing -exp (use -list to see ids)")
	}
	if parallel < 1 {
		return fmt.Errorf("invalid -parallel %d: must be >= 1", parallel)
	}

	kind := harmony.ClusterTableII
	switch cluster {
	case "tableii":
	case "googlelike":
		kind = harmony.ClusterGoogleLike
	default:
		return fmt.Errorf("unknown cluster %q", cluster)
	}

	known := make(map[string]bool)
	for _, id := range harmony.ExperimentIDs() {
		known[id] = true
	}
	var ids []string
	if exp == "all" {
		ids = harmony.ExperimentIDs()
	} else {
		for _, id := range strings.Split(exp, ",") {
			id = strings.TrimSpace(id)
			if id != "" {
				ids = append(ids, id)
			}
		}
	}
	if len(ids) == 0 {
		return fmt.Errorf("missing -exp (use -list to see ids)")
	}
	for _, id := range ids {
		if !known[id] {
			return fmt.Errorf("unknown experiment %q (use -list to see ids)", id)
		}
	}

	env := harmony.NewEnv(
		harmony.WorkloadConfig{
			Seed:           seed,
			Hours:          hours,
			TasksPerSecond: rate,
			Cluster:        kind,
			ClusterScale:   scale,
		},
		harmony.CharacterizeConfig{Seed: seed},
		harmony.SimulationConfig{Epsilon: epsilon},
	)

	// The Env is race-safe (Once-guarded caches), so independent
	// experiment ids fan out across workers; rendered text is collected
	// per id and printed in input order so the output is byte-identical
	// to a sequential run. Golden mode always records the full rendering,
	// so the series data is what gets diffed.
	texts := make([]string, len(ids))
	errs := make([]error, len(ids))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	wg.Add(len(ids))
	for i, id := range ids {
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			result, err := env.Run(id)
			if err != nil {
				errs[i] = fmt.Errorf("experiment %s: %w", id, err)
				return
			}
			if full || golden != "" {
				texts[i] = result.Render()
			} else {
				texts[i] = summarize(result)
			}
		}()
	}
	wg.Wait()
	for i := range ids {
		if errs[i] != nil {
			return errs[i]
		}
	}
	if golden != "" {
		return runGolden(golden, goldenDir, ids, texts, out)
	}
	for i := range ids {
		fmt.Fprint(out, texts[i])
	}
	return nil
}

// runGolden writes or checks per-experiment golden files: one
// <dir>/<id>.txt per experiment holding its full rendering.
func runGolden(mode, dir string, ids, texts []string, out io.Writer) error {
	if mode == "write" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		for i, id := range ids {
			path := filepath.Join(dir, id+".txt")
			if err := os.WriteFile(path, []byte(texts[i]), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "golden: wrote %s\n", path)
		}
		return nil
	}
	var stale []string
	for i, id := range ids {
		path := filepath.Join(dir, id+".txt")
		want, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("golden: %w (record with -golden write)", err)
		}
		if string(want) != texts[i] {
			stale = append(stale, id)
			fmt.Fprintf(out, "golden: %s differs from %s%s\n", id, path, firstDiff(string(want), texts[i]))
			continue
		}
		fmt.Fprintf(out, "golden: %s ok\n", id)
	}
	if len(stale) > 0 {
		return fmt.Errorf("golden mismatch for %s (intentional changes: rerun with -golden write)",
			strings.Join(stale, ", "))
	}
	return nil
}

// firstDiff locates the first line where the two renderings diverge.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf(" (line %d: %q vs %q)", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf(" (length %d vs %d lines)", len(wl), len(gl))
}

func summarize(e *harmony.Experiment) string {
	var b strings.Builder
	full := e.Render()
	inSeries := false
	for _, line := range strings.Split(full, "\n") {
		if strings.HasPrefix(line, "# series:") {
			fmt.Fprintf(&b, "  %s\n", line)
			inSeries = true
			continue
		}
		if !inSeries && line != "" {
			fmt.Fprintln(&b, line)
		}
	}
	return b.String()
}
