// Command harmony-bench regenerates the paper's tables and figures: each
// experiment id produces the corresponding data series and headline
// numbers. Run with -list to see the available experiments, -exp all to
// regenerate everything.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"harmony"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "harmony-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list    = flag.Bool("list", false, "list experiment ids")
		seed    = flag.Int64("seed", 1, "RNG seed")
		hours   = flag.Float64("hours", 12, "workload length in hours")
		rate    = flag.Float64("rate", 0.8, "task arrival rate (tasks/second)")
		scale   = flag.Int("scale", 40, "cluster scale divisor")
		cluster = flag.String("cluster", "tableii", "cluster: tableii | googlelike")
		full    = flag.Bool("full-series", false, "print full series (default: summaries only)")
		epsilon = flag.Float64("epsilon", 0, "container-sizing overflow bound (0 = default 0.25)")
	)
	flag.Parse()

	if *list {
		for _, id := range harmony.ExperimentIDs() {
			fmt.Println(id)
		}
		return nil
	}
	if *exp == "" {
		return fmt.Errorf("missing -exp (use -list to see ids)")
	}

	kind := harmony.ClusterTableII
	switch *cluster {
	case "tableii":
	case "googlelike":
		kind = harmony.ClusterGoogleLike
	default:
		return fmt.Errorf("unknown cluster %q", *cluster)
	}
	env := harmony.NewEnv(
		harmony.WorkloadConfig{
			Seed:           *seed,
			Hours:          *hours,
			TasksPerSecond: *rate,
			Cluster:        kind,
			ClusterScale:   *scale,
		},
		harmony.CharacterizeConfig{Seed: *seed},
		harmony.SimulationConfig{Epsilon: *epsilon},
	)

	ids := []string{*exp}
	if *exp == "all" {
		ids = harmony.ExperimentIDs()
	}
	for _, id := range ids {
		result, err := env.Run(id)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		if *full {
			fmt.Print(result.Render())
		} else {
			fmt.Print(summarize(result))
		}
	}
	return nil
}

func summarize(e *harmony.Experiment) string {
	var b strings.Builder
	full := e.Render()
	inSeries := false
	for _, line := range strings.Split(full, "\n") {
		if strings.HasPrefix(line, "# series:") {
			fmt.Fprintf(&b, "  %s\n", line)
			inSeries = true
			continue
		}
		if !inSeries && line != "" {
			fmt.Fprintln(&b, line)
		}
	}
	return b.String()
}
