package binpack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func item(id int, demands ...float64) Item {
	return Item{ID: id, Demands: demands}
}

func TestBinAddRemove(t *testing.T) {
	b := NewBin([]float64{1, 1})
	if err := b.Add(item(1, 0.5, 0.3)); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(item(2, 0.5, 0.3)); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(item(3, 0.1, 0.5)); err == nil {
		t.Error("overflow accepted")
	}
	if !b.Remove(1) {
		t.Error("remove failed")
	}
	if b.Remove(99) {
		t.Error("removed phantom item")
	}
	if b.Used[0] != 0.5 || len(b.Items) != 1 {
		t.Errorf("after remove: used=%v items=%d", b.Used, len(b.Items))
	}
	// Now item 3 fits.
	if err := b.Add(item(3, 0.1, 0.5)); err != nil {
		t.Errorf("add after remove: %v", err)
	}
}

func TestBinFitsDimMismatch(t *testing.T) {
	b := NewBin([]float64{1})
	if b.Fits(item(1, 0.1, 0.1)) {
		t.Error("dim mismatch accepted")
	}
}

func TestEffectiveUtilization(t *testing.T) {
	b := NewBin([]float64{1, 2})
	_ = b.Add(item(1, 0.5, 1.0))
	if got := b.EffectiveUtilization(); got != 0.5 {
		t.Errorf("utilization = %v, want 0.5", got)
	}
	var empty Bin
	if empty.EffectiveUtilization() != 0 {
		t.Error("empty bin utilization should be 0")
	}
}

func TestValidation(t *testing.T) {
	if _, err := FirstFit([]Item{item(1, 0.5)}, nil); err == nil {
		t.Error("empty capacity accepted")
	}
	if _, err := FirstFit([]Item{item(1, 0.5)}, []float64{0}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := FirstFit([]Item{item(1, 2)}, []float64{1}); err == nil {
		t.Error("oversized item accepted")
	}
	if _, err := FirstFit([]Item{item(1, -0.1)}, []float64{1}); err == nil {
		t.Error("negative demand accepted")
	}
	if _, err := FirstFit([]Item{item(1, 0.1, 0.1)}, []float64{1}); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestFirstFitExact(t *testing.T) {
	items := []Item{
		item(1, 0.6), item(2, 0.6), item(3, 0.4), item(4, 0.4),
	}
	bins, err := FirstFit(items, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	// FF: [0.6, 0.4], [0.6, 0.4] -> 2 bins.
	if len(bins) != 2 {
		t.Fatalf("bins = %d, want 2", len(bins))
	}
}

func TestFirstFitDecreasingBeatsFF(t *testing.T) {
	// Classic instance where FFD helps: FF of 0.3,0.3,0.3,0.8 wastes.
	items := []Item{item(1, 0.3), item(2, 0.3), item(3, 0.3), item(4, 0.8)}
	ff, _ := FirstFit(items, []float64{1})
	ffd, _ := FirstFitDecreasing(items, []float64{1})
	if len(ffd) > len(ff) {
		t.Errorf("FFD used %d bins, FF used %d", len(ffd), len(ff))
	}
	if len(ffd) != 2 {
		t.Errorf("FFD bins = %d, want 2", len(ffd))
	}
}

func TestBestFit(t *testing.T) {
	items := []Item{item(1, 0.5), item(2, 0.3), item(3, 0.5), item(4, 0.2)}
	bins, err := BestFit(items, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 2 {
		t.Errorf("BestFit bins = %d, want 2", len(bins))
	}
}

func TestFirstFitBounded(t *testing.T) {
	items := []Item{item(1, 0.9), item(2, 0.9), item(3, 0.9)}
	bins, unplaced, err := FirstFitBounded(items, []float64{1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 2 || len(unplaced) != 1 {
		t.Errorf("bins=%d unplaced=%d, want 2/1", len(bins), len(unplaced))
	}
	if unplaced[0].ID != 3 {
		t.Errorf("unplaced = %v", unplaced)
	}
	if _, _, err := FirstFitBounded(items, []float64{1}, -1); err == nil {
		t.Error("negative budget accepted")
	}
	// Zero budget: everything unplaced.
	bins, unplaced, err = FirstFitBounded(items, []float64{1}, 0)
	if err != nil || len(bins) != 0 || len(unplaced) != 3 {
		t.Errorf("zero budget: bins=%d unplaced=%d err=%v", len(bins), len(unplaced), err)
	}
}

func TestDrain(t *testing.T) {
	// Three bins, light load: draining to 2 should re-home everything.
	var bins []*Bin
	for i := 0; i < 3; i++ {
		b := NewBin([]float64{1, 1})
		_ = b.Add(item(i, 0.2, 0.2))
		bins = append(bins, b)
	}
	kept, stranded := Drain(bins, 2)
	if len(kept) != 2 || len(stranded) != 0 {
		t.Errorf("kept=%d stranded=%d", len(kept), len(stranded))
	}
	total := 0
	for _, b := range kept {
		total += len(b.Items)
	}
	if total != 3 {
		t.Errorf("items after drain = %d, want 3", total)
	}

	// Heavy load: draining strands items.
	var heavy []*Bin
	for i := 0; i < 2; i++ {
		b := NewBin([]float64{1})
		_ = b.Add(Item{ID: i, Demands: []float64{0.9}})
		heavy = append(heavy, b)
	}
	kept, stranded = Drain(heavy, 1)
	if len(kept) != 1 || len(stranded) != 1 {
		t.Errorf("heavy drain kept=%d stranded=%d", len(kept), len(stranded))
	}

	// Target >= len: no-op.
	kept, stranded = Drain(heavy, 5)
	if len(kept) != 2 || stranded != nil {
		t.Error("no-op drain changed bins")
	}
}

// Property: First-Fit never overfills a bin, packs every item exactly once,
// and leaves at most one bin below the 1/(2|R|) effective-utilization
// threshold (the "half-full" property in Lemma 1's proof).
func TestFirstFitProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dims := 1 + r.Intn(3)
		capacity := make([]float64, dims)
		for d := range capacity {
			capacity[d] = 1
		}
		n := 1 + r.Intn(60)
		items := make([]Item, n)
		for i := range items {
			dem := make([]float64, dims)
			for d := range dem {
				dem[d] = r.Float64() * 0.9
			}
			items[i] = Item{ID: i, Demands: dem}
		}
		bins, err := FirstFit(items, capacity)
		if err != nil {
			return false
		}
		seen := make(map[int]bool, n)
		for _, b := range bins {
			for d := range capacity {
				sum := 0.0
				for _, it := range b.Items {
					sum += it.Demands[d]
				}
				if sum > capacity[d]+1e-9 {
					return false
				}
			}
			for _, it := range b.Items {
				if seen[it.ID] {
					return false
				}
				seen[it.ID] = true
			}
		}
		if len(seen) != n {
			return false
		}
		return HalfFullCount(bins, dims) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: FFD and BestFit also produce valid packings of all items.
func TestVariantsPackEverything(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.Intn(50)
		items := make([]Item, n)
		for i := range items {
			items[i] = item(i, r.Float64()*0.8, r.Float64()*0.8)
		}
		capacity := []float64{1, 1}
		for _, pack := range []func([]Item, []float64) ([]*Bin, error){FirstFitDecreasing, BestFit} {
			bins, err := pack(items, capacity)
			if err != nil {
				t.Fatal(err)
			}
			count := 0
			for _, b := range bins {
				count += len(b.Items)
				for d := range capacity {
					if b.Used[d] > capacity[d]+1e-9 {
						t.Fatal("overfull bin")
					}
				}
			}
			if count != n {
				t.Fatalf("packed %d of %d items", count, n)
			}
		}
	}
}
