// Package binpack implements the vector bin-packing primitives behind
// HARMONY's integer realization of the fractional CBS-RELAX plan
// (Section VII-C): First-Fit (whose "half-full" property powers Lemma 1),
// First-Fit-Decreasing, Best-Fit, bounded-bin packing, and the drain/repack
// step Algorithm 1 uses to empty machines before turning them off.
package binpack

import (
	"errors"
	"fmt"
	"sort"
)

// Item is one multi-dimensional object to pack (a container in HARMONY).
type Item struct {
	ID      int
	Demands []float64 // one entry per resource dimension
}

// Bin is one target with fixed capacity per dimension (a machine).
type Bin struct {
	Capacity []float64
	Used     []float64
	Items    []Item
}

// NewBin creates an empty bin with the given capacity (copied).
func NewBin(capacity []float64) *Bin {
	c := make([]float64, len(capacity))
	copy(c, capacity)
	return &Bin{Capacity: c, Used: make([]float64, len(capacity))}
}

// Fits reports whether it can be added without exceeding any dimension.
func (b *Bin) Fits(it Item) bool {
	if len(it.Demands) != len(b.Capacity) {
		return false
	}
	for d, dem := range it.Demands {
		if b.Used[d]+dem > b.Capacity[d]+1e-12 {
			return false
		}
	}
	return true
}

// Add places it in the bin. It returns an error when it does not fit.
func (b *Bin) Add(it Item) error {
	if !b.Fits(it) {
		return fmt.Errorf("binpack: item %d does not fit", it.ID)
	}
	for d, dem := range it.Demands {
		b.Used[d] += dem
	}
	b.Items = append(b.Items, it)
	return nil
}

// Remove takes the item with the given ID out of the bin. It reports
// whether the item was present.
func (b *Bin) Remove(id int) bool {
	for i, it := range b.Items {
		if it.ID == id {
			for d, dem := range it.Demands {
				b.Used[d] -= dem
				if b.Used[d] < 0 {
					b.Used[d] = 0
				}
			}
			b.Items = append(b.Items[:i], b.Items[i+1:]...)
			return true
		}
	}
	return false
}

// EffectiveUtilization is the mean per-dimension utilization, the measure
// used in the paper's Lemma 1 proof.
func (b *Bin) EffectiveUtilization() float64 {
	if len(b.Capacity) == 0 {
		return 0
	}
	sum := 0.0
	for d := range b.Capacity {
		if b.Capacity[d] > 0 {
			sum += b.Used[d] / b.Capacity[d]
		}
	}
	return sum / float64(len(b.Capacity))
}

var errDimMismatch = errors.New("binpack: item dimensionality differs from capacity")

func validate(items []Item, capacity []float64) error {
	if len(capacity) == 0 {
		return errors.New("binpack: empty capacity vector")
	}
	for _, c := range capacity {
		if c <= 0 {
			return errors.New("binpack: non-positive capacity")
		}
	}
	for _, it := range items {
		if len(it.Demands) != len(capacity) {
			return errDimMismatch
		}
		for d, dem := range it.Demands {
			if dem < 0 {
				return fmt.Errorf("binpack: item %d negative demand", it.ID)
			}
			if dem > capacity[d]+1e-12 {
				return fmt.Errorf("binpack: item %d exceeds bin capacity in dim %d", it.ID, d)
			}
		}
	}
	return nil
}

// FirstFit packs all items into identical bins of the given capacity,
// opening a new bin whenever an item fits in none. Items oversized for a
// single bin cause an error.
func FirstFit(items []Item, capacity []float64) ([]*Bin, error) {
	if err := validate(items, capacity); err != nil {
		return nil, err
	}
	var bins []*Bin
	for _, it := range items {
		placed := false
		for _, b := range bins {
			if b.Fits(it) {
				if err := b.Add(it); err != nil {
					return nil, err
				}
				placed = true
				break
			}
		}
		if !placed {
			b := NewBin(capacity)
			if err := b.Add(it); err != nil {
				return nil, err
			}
			bins = append(bins, b)
		}
	}
	return bins, nil
}

// FirstFitDecreasing sorts items by their largest normalized dimension,
// descending, then first-fits. It typically uses fewer bins than plain
// first-fit.
func FirstFitDecreasing(items []Item, capacity []float64) ([]*Bin, error) {
	if err := validate(items, capacity); err != nil {
		return nil, err
	}
	sorted := make([]Item, len(items))
	copy(sorted, items)
	key := func(it Item) float64 {
		mx := 0.0
		for d, dem := range it.Demands {
			v := dem / capacity[d]
			if v > mx {
				mx = v
			}
		}
		return mx
	}
	sort.SliceStable(sorted, func(i, j int) bool { return key(sorted[i]) > key(sorted[j]) })
	return FirstFit(sorted, capacity)
}

// BestFit places each item into the feasible bin with the highest
// effective utilization, opening a new bin when none fits.
func BestFit(items []Item, capacity []float64) ([]*Bin, error) {
	if err := validate(items, capacity); err != nil {
		return nil, err
	}
	var bins []*Bin
	for _, it := range items {
		best := -1
		bestU := -1.0
		for i, b := range bins {
			if b.Fits(it) && b.EffectiveUtilization() > bestU {
				best, bestU = i, b.EffectiveUtilization()
			}
		}
		if best >= 0 {
			if err := bins[best].Add(it); err != nil {
				return nil, err
			}
			continue
		}
		b := NewBin(capacity)
		if err := b.Add(it); err != nil {
			return nil, err
		}
		bins = append(bins, b)
	}
	return bins, nil
}

// FirstFitBounded first-fits items into at most maxBins bins and returns
// the leftovers that did not fit. This realizes the controller's bound of
// z*+1 machines per type (Lemma 1).
func FirstFitBounded(items []Item, capacity []float64, maxBins int) (bins []*Bin, unplaced []Item, err error) {
	if maxBins < 0 {
		return nil, nil, errors.New("binpack: negative bin budget")
	}
	if err := validate(items, capacity); err != nil {
		return nil, nil, err
	}
	for _, it := range items {
		placed := false
		for _, b := range bins {
			if b.Fits(it) {
				if err := b.Add(it); err != nil {
					return nil, nil, err
				}
				placed = true
				break
			}
		}
		if placed {
			continue
		}
		if len(bins) < maxBins {
			b := NewBin(capacity)
			if err := b.Add(it); err != nil {
				return nil, nil, err
			}
			bins = append(bins, b)
			continue
		}
		unplaced = append(unplaced, it)
	}
	return bins, unplaced, nil
}

// Drain tries to empty bins down to targetBins by moving the items of the
// least-utilized bins into the remaining ones (first-fit). It returns the
// surviving bins and the items that could not be re-homed (these stay on
// their machines, so the caller keeps the corresponding machine on). This
// is the container-reassignment ("re-parking") step of Algorithm 1.
func Drain(bins []*Bin, targetBins int) (kept []*Bin, stranded []Item) {
	if targetBins < 0 {
		targetBins = 0
	}
	if len(bins) <= targetBins {
		return bins, nil
	}
	sorted := make([]*Bin, len(bins))
	copy(sorted, bins)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].EffectiveUtilization() > sorted[j].EffectiveUtilization()
	})
	kept = sorted[:targetBins]
	for _, victim := range sorted[targetBins:] {
		for _, it := range victim.Items {
			moved := false
			for _, dst := range kept {
				if dst.Fits(it) {
					//harmony:allow errflow Add cannot fail after the Fits check above
					_ = dst.Add(it)
					moved = true
					break
				}
			}
			if !moved {
				stranded = append(stranded, it)
			}
		}
	}
	return kept, stranded
}

// HalfFullCount returns how many bins have effective utilization at most
// 1/(2·dims) — by the Lemma 1 argument, First-Fit leaves at most one such
// bin per packing.
func HalfFullCount(bins []*Bin, dims int) int {
	n := 0
	threshold := 1.0 / (2 * float64(dims))
	for _, b := range bins {
		if b.EffectiveUtilization() < threshold {
			n++
		}
	}
	return n
}
