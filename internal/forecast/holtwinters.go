package forecast

import "math"

// HoltWinters is additive triple exponential smoothing: a level, a linear
// trend, and an additive seasonal cycle of Season samples, each updated
// with its own smoothing factor. It is the first member of the forecast
// model zoo that handles the trending diurnal arrival series of Figure 19
// natively — SeasonalNaive tracks the cycle but not the trend, EWMA the
// level but neither — and it is selectable as the daemon's forecaster
// (sched.PredictHoltWinters).
type HoltWinters struct {
	// Season is the cycle length in samples (required, > 0); e.g.
	// trace.Day / PeriodSeconds for a diurnal cycle at the control period.
	Season int
	// Alpha, Beta, Gamma are the level, trend, and seasonal smoothing
	// factors in (0,1]; zero values default to 0.3, 0.05, and 0.2.
	Alpha, Beta, Gamma float64

	level    float64
	trend    float64
	seasonal []float64 // additive seasonal indices, length Season
	nextIdx  int       // seasonal index of the first forecast step
	fitted   bool
}

// Fit implements Predictor. It needs at least two full seasons: the first
// initializes the level and seasonal indices, the second anchors the
// initial trend estimate.
func (hw *HoltWinters) Fit(series []float64) error {
	m := hw.Season
	if m <= 0 {
		return ErrBadHorizon
	}
	if len(series) < 2*m {
		return ErrTooShort
	}
	alpha, beta, gamma := hw.Alpha, hw.Beta, hw.Gamma
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	if beta <= 0 || beta > 1 {
		beta = 0.05
	}
	if gamma <= 0 || gamma > 1 {
		gamma = 0.2
	}

	// Classical initialization: the level is the first season's mean, the
	// trend the per-sample drift between the first two seasons' means, and
	// each seasonal index the deviation from its season's mean averaged
	// over every complete season in the series.
	mean0, mean1 := 0.0, 0.0
	for i := 0; i < m; i++ {
		mean0 += series[i]
		mean1 += series[m+i]
	}
	mean0 /= float64(m)
	mean1 /= float64(m)
	level := mean0
	trend := (mean1 - mean0) / float64(m)

	seasons := len(series) / m
	seasonal := make([]float64, m)
	for i := 0; i < m; i++ {
		sum := 0.0
		for j := 0; j < seasons; j++ {
			seasonMean := 0.0
			for k := 0; k < m; k++ {
				seasonMean += series[j*m+k]
			}
			seasonMean /= float64(m)
			sum += series[j*m+i] - seasonMean
		}
		seasonal[i] = sum / float64(seasons)
	}

	// Run the smoothing recursions over the whole series.
	for t, x := range series {
		i := t % m
		s := seasonal[i]
		prevLevel := level
		level = alpha*(x-s) + (1-alpha)*(level+trend)
		trend = beta*(level-prevLevel) + (1-beta)*trend
		seasonal[i] = gamma*(x-level) + (1-gamma)*s
	}
	if math.IsNaN(level) || math.IsInf(level, 0) ||
		math.IsNaN(trend) || math.IsInf(trend, 0) {
		return ErrTooShort
	}

	hw.level = level
	hw.trend = trend
	hw.seasonal = seasonal
	hw.nextIdx = len(series) % m
	hw.fitted = true
	return nil
}

// Forecast implements Predictor: level plus extrapolated trend plus the
// seasonal index of each future slot.
func (hw *HoltWinters) Forecast(h int) ([]float64, error) {
	if !hw.fitted {
		return nil, ErrNotFitted
	}
	if h <= 0 {
		return nil, ErrBadHorizon
	}
	out := make([]float64, h)
	for i := range out {
		out[i] = hw.level + float64(i+1)*hw.trend + hw.seasonal[(hw.nextIdx+i)%hw.Season]
	}
	return out, nil
}
