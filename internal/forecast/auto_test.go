package forecast

import (
	"math"
	"math/rand"
	"testing"
)

func TestSeasonalNaive(t *testing.T) {
	s := &SeasonalNaive{Season: 4}
	if err := s.Fit([]float64{1, 2}); err == nil {
		t.Error("short series accepted")
	}
	if err := s.Fit([]float64{9, 9, 9, 9, 1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	f, err := s.Forecast(6)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3, 4, 1, 2}
	for i := range want {
		if f[i] != want[i] {
			t.Errorf("f[%d] = %v, want %v", i, f[i], want[i])
		}
	}
	var unfit SeasonalNaive
	unfit.Season = 2
	if _, err := unfit.Forecast(1); err == nil {
		t.Error("forecast before fit accepted")
	}
	bad := &SeasonalNaive{}
	if err := bad.Fit([]float64{1, 2, 3}); err == nil {
		t.Error("zero season accepted")
	}
}

func TestSeasonalNaiveBeatsNaiveOnDiurnal(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const season = 48
	n := season * 10
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 100 + 50*math.Sin(2*math.Pi*float64(i)/season) + 2*r.NormFloat64()
	}
	seasonal, err := Backtest(&SeasonalNaive{Season: season}, xs, season*5)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Backtest(&Naive{}, xs, season*5)
	if err != nil {
		t.Fatal(err)
	}
	if seasonal.RMSE >= naive.RMSE {
		t.Errorf("seasonal RMSE %v >= naive %v on diurnal series", seasonal.RMSE, naive.RMSE)
	}
}

func TestAutoARIMASelectsReasonableOrder(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	n := 800
	xs := make([]float64, n)
	xs[0] = 10
	for i := 1; i < n; i++ {
		xs[i] = 3 + 0.7*xs[i-1] + r.NormFloat64()
	}
	a := &AutoARIMA{}
	if err := a.Fit(xs); err != nil {
		t.Fatal(err)
	}
	p, d, q := a.Orders()
	if p == 0 && q == 0 {
		t.Error("degenerate order selected")
	}
	if d != 0 {
		t.Errorf("d = %d for a stationary series, want 0", d)
	}
	f, err := a.Forecast(10)
	if err != nil {
		t.Fatal(err)
	}
	mean := 3.0 / (1 - 0.7)
	if math.Abs(f[9]-mean) > 3 {
		t.Errorf("forecast tail %v far from process mean %v", f[9], mean)
	}
}

func TestAutoARIMATrendPrefersDifferencing(t *testing.T) {
	n := 400
	xs := make([]float64, n)
	r := rand.New(rand.NewSource(9))
	for i := range xs {
		xs[i] = 5*float64(i) + r.NormFloat64()
	}
	a := &AutoARIMA{}
	if err := a.Fit(xs); err != nil {
		t.Fatal(err)
	}
	f, err := a.Forecast(5)
	if err != nil {
		t.Fatal(err)
	}
	// Whatever the chosen order, the forecast must continue the trend.
	for i, v := range f {
		want := 5 * float64(n+i)
		if math.Abs(v-want) > 50 {
			t.Errorf("f[%d] = %v, want ~%v", i, v, want)
		}
	}
}

func TestAutoARIMAErrors(t *testing.T) {
	a := &AutoARIMA{}
	if _, err := a.Forecast(1); err == nil {
		t.Error("forecast before fit accepted")
	}
	if err := a.Fit([]float64{1, 2, 3}); err == nil {
		t.Error("tiny series accepted")
	}
}
