package forecast

import (
	"errors"
	"fmt"
	"math"
)

// ARIMA is an autoregressive integrated moving-average model ARIMA(p,d,q),
// the predictor the paper uses for per-class arrival rates [7]. Parameters
// are estimated with the Hannan–Rissanen procedure: a long autoregression
// supplies innovation estimates, then a single least-squares regression on
// lagged values and lagged innovations yields the AR and MA coefficients.
type ARIMA struct {
	P, D, Q int

	constant float64
	ar       []float64 // φ_1..φ_p
	ma       []float64 // θ_1..θ_q
	// tail state retained from fitting, used to seed forecasts
	diffTail  []float64 // last P values of the differenced series
	residTail []float64 // last Q residuals
	lastVals  []float64 // last D values of the raw series (for integration)
	fitted    bool
}

// NewARIMA constructs an ARIMA(p,d,q) model. Orders must be non-negative
// and p+q must be positive.
func NewARIMA(p, d, q int) (*ARIMA, error) {
	if p < 0 || d < 0 || q < 0 {
		return nil, errors.New("forecast: negative ARIMA order")
	}
	if p+q == 0 {
		return nil, errors.New("forecast: ARIMA needs p+q > 0")
	}
	return &ARIMA{P: p, D: d, Q: q}, nil
}

// Fit implements Predictor.
func (m *ARIMA) Fit(series []float64) error {
	need := m.D + m.P + m.Q + 8
	if len(series) < need {
		return fmt.Errorf("%w: have %d, need >= %d", ErrTooShort, len(series), need)
	}
	w, err := Difference(series, m.D)
	if err != nil {
		return err
	}

	resid := make([]float64, len(w))
	if m.Q > 0 {
		// Stage one: long AR to estimate innovations.
		long := m.P + m.Q + 4
		if long > len(w)/2 {
			long = len(w) / 2
		}
		if long < 1 {
			long = 1
		}
		c0, phi0, err := fitAR(w, long)
		if err != nil {
			return err
		}
		for t := long; t < len(w); t++ {
			pred := c0
			for j := 0; j < long; j++ {
				pred += phi0[j] * w[t-1-j]
			}
			resid[t] = w[t] - pred
		}
	}

	// Stage two: regress w_t on p lags of w and q lags of residuals.
	start := m.P
	if m.Q > 0 {
		lo := m.P + m.Q + 4
		if lo > len(w)/2 {
			lo = len(w) / 2
		}
		if lo < 1 {
			lo = 1
		}
		if s := lo + m.Q; s > start {
			start = s
		}
	}
	rows := len(w) - start
	cols := 1 + m.P + m.Q
	if rows <= cols {
		return ErrTooShort
	}
	x := make([][]float64, rows)
	y := make([]float64, rows)
	for i := 0; i < rows; i++ {
		t := start + i
		row := make([]float64, cols)
		row[0] = 1
		for j := 0; j < m.P; j++ {
			row[1+j] = w[t-1-j]
		}
		for j := 0; j < m.Q; j++ {
			row[1+m.P+j] = resid[t-1-j]
		}
		x[i] = row
		y[i] = w[t]
	}
	beta, err := leastSquares(x, y)
	if err != nil {
		return err
	}
	m.constant = beta[0]
	m.ar = beta[1 : 1+m.P]
	m.ma = beta[1+m.P:]

	// Retain tails for forecasting.
	m.diffTail = tail(w, m.P)
	m.residTail = tail(resid, m.Q)
	m.lastVals = lastIntegrationState(series, m.D)
	m.fitted = true
	return nil
}

// Forecast implements Predictor. Future innovations are set to zero; the
// differenced forecasts are integrated back D times.
func (m *ARIMA) Forecast(h int) ([]float64, error) {
	if !m.fitted {
		return nil, ErrNotFitted
	}
	if h <= 0 {
		return nil, ErrBadHorizon
	}
	w := append([]float64(nil), m.diffTail...)
	e := append([]float64(nil), m.residTail...)
	out := make([]float64, 0, h)
	for i := 0; i < h; i++ {
		pred := m.constant
		for j := 0; j < m.P; j++ {
			idx := len(w) - 1 - j
			if idx >= 0 {
				pred += m.ar[j] * w[idx]
			}
		}
		for j := 0; j < m.Q; j++ {
			idx := len(e) - 1 - j
			if idx >= 0 {
				pred += m.ma[j] * e[idx]
			}
		}
		w = append(w, pred)
		e = append(e, 0)
		out = append(out, pred)
	}
	// Integrate back d times using the stored integration state.
	for d := m.D - 1; d >= 0; d-- {
		acc := m.lastVals[d]
		for i := range out {
			acc += out[i]
			out[i] = acc
		}
	}
	return out, nil
}

// fitAR estimates an AR(p) model with intercept by ordinary least squares.
func fitAR(w []float64, p int) (c float64, phi []float64, err error) {
	rows := len(w) - p
	cols := 1 + p
	if rows <= cols {
		return 0, nil, ErrTooShort
	}
	x := make([][]float64, rows)
	y := make([]float64, rows)
	for i := 0; i < rows; i++ {
		t := p + i
		row := make([]float64, cols)
		row[0] = 1
		for j := 0; j < p; j++ {
			row[1+j] = w[t-1-j]
		}
		x[i] = row
		y[i] = w[t]
	}
	beta, err := leastSquares(x, y)
	if err != nil {
		return 0, nil, err
	}
	return beta[0], beta[1:], nil
}

// leastSquares solves min ||Xb - y||² via the normal equations with a
// ridge fallback for (near-)singular designs.
func leastSquares(x [][]float64, y []float64) ([]float64, error) {
	rows := len(x)
	if rows == 0 {
		return nil, ErrTooShort
	}
	cols := len(x[0])
	if cols == 0 {
		return nil, ErrTooShort
	}
	// Build XtX and Xty.
	xtx := make([][]float64, cols)
	xty := make([]float64, cols)
	for i := 0; i < cols; i++ {
		xtx[i] = make([]float64, cols)
	}
	for r := 0; r < rows; r++ {
		for i := 0; i < cols; i++ {
			xty[i] += x[r][i] * y[r]
			for j := i; j < cols; j++ {
				xtx[i][j] += x[r][i] * x[r][j]
			}
		}
	}
	for i := 0; i < cols; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}
	b, err := solveSPD(xtx, xty)
	if err == nil {
		return b, nil
	}
	// Ridge fallback: add a small multiple of the diagonal scale.
	scale := 0.0
	for i := 0; i < cols; i++ {
		scale += xtx[i][i]
	}
	lambda := 1e-8 * (scale/float64(cols) + 1)
	for i := 0; i < cols; i++ {
		xtx[i][i] += lambda
	}
	return solveSPD(xtx, xty)
}

// solveSPD solves Ax=b by Gaussian elimination with partial pivoting.
func solveSPD(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	// Work on copies to leave inputs intact for the ridge retry.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
		m[i] = append(m[i], b[i])
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil, errors.New("forecast: singular normal equations")
		}
		m[col], m[piv] = m[piv], m[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}

func tail(xs []float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n > len(xs) {
		n = len(xs)
	}
	return append([]float64(nil), xs[len(xs)-n:]...)
}

// lastIntegrationState returns, for each differencing level d = 0..D-1,
// the last value of the d-times-differenced series, which seeds the
// cumulative sums that undo differencing.
func lastIntegrationState(series []float64, d int) []float64 {
	out := make([]float64, d)
	cur := series
	for level := 0; level < d; level++ {
		out[level] = cur[len(cur)-1]
		next := make([]float64, len(cur)-1)
		for j := 1; j < len(cur); j++ {
			next[j-1] = cur[j] - cur[j-1]
		}
		cur = next
	}
	return out
}
