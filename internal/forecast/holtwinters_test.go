package forecast

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestHoltWintersErrors(t *testing.T) {
	bad := &HoltWinters{}
	if err := bad.Fit([]float64{1, 2, 3, 4}); err == nil {
		t.Error("zero season accepted")
	}
	hw := &HoltWinters{Season: 4}
	if err := hw.Fit([]float64{1, 2, 3, 4, 5, 6, 7}); !errors.Is(err, ErrTooShort) {
		t.Errorf("sub-two-season series: err = %v, want ErrTooShort", err)
	}
	if _, err := hw.Forecast(1); !errors.Is(err, ErrNotFitted) {
		t.Errorf("forecast before fit: err = %v, want ErrNotFitted", err)
	}
	if err := hw.Fit([]float64{1, 2, 3, 4, 1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := hw.Forecast(0); !errors.Is(err, ErrBadHorizon) {
		t.Errorf("zero horizon: err = %v, want ErrBadHorizon", err)
	}
}

// A pure level+trend+seasonal series is Holt-Winters' model class: after
// fitting several clean cycles the multi-step forecast must continue the
// pattern closely.
func TestHoltWintersTracksTrendingSeasonal(t *testing.T) {
	const season = 8
	gen := func(i int) float64 {
		return 50 + 0.5*float64(i) + 10*math.Sin(2*math.Pi*float64(i)/season)
	}
	n := season * 12
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = gen(i)
	}
	hw := &HoltWinters{Season: season}
	if err := hw.Fit(xs); err != nil {
		t.Fatal(err)
	}
	f, err := hw.Forecast(2 * season)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range f {
		want := gen(n + i)
		if math.Abs(v-want) > 3 {
			t.Errorf("f[%d] = %.2f, want ~%.2f", i, v, want)
		}
	}
}

// The Figure-19-style backtest: a noisy diurnal cycle riding a slow growth
// trend, rolling-origin one-step evaluation. Holt-Winters must beat both
// the flat EWMA (no cycle) and the seasonal-naive baseline (no trend, full
// noise replay).
func TestHoltWintersBacktestBeatsBaselinesOnDiurnal(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	const season = 48 // 5-minute windows over 4 hours, or scaled day
	n := season * 10
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 100 + 0.05*float64(i) +
			40*math.Sin(2*math.Pi*float64(i)/season) + 3*r.NormFloat64()
	}
	minTrain := season * 3
	hw, err := Backtest(&HoltWinters{Season: season}, xs, minTrain)
	if err != nil {
		t.Fatal(err)
	}
	ewma, err := Backtest(&EWMA{Alpha: 0.4}, xs, minTrain)
	if err != nil {
		t.Fatal(err)
	}
	seasonal, err := Backtest(&SeasonalNaive{Season: season}, xs, minTrain)
	if err != nil {
		t.Fatal(err)
	}
	if hw.RMSE >= ewma.RMSE {
		t.Errorf("Holt-Winters RMSE %.3f >= EWMA %.3f on diurnal series", hw.RMSE, ewma.RMSE)
	}
	if hw.RMSE >= seasonal.RMSE {
		t.Errorf("Holt-Winters RMSE %.3f >= seasonal-naive %.3f on diurnal series", hw.RMSE, seasonal.RMSE)
	}
}

// Custom smoothing factors are honored and out-of-range ones fall back to
// the defaults rather than corrupting the recursion.
func TestHoltWintersSmoothingFactors(t *testing.T) {
	const season = 6
	xs := make([]float64, season*4)
	for i := range xs {
		xs[i] = 10 + math.Sin(2*math.Pi*float64(i)/season)
	}
	for _, hw := range []*HoltWinters{
		{Season: season, Alpha: 0.9, Beta: 0.5, Gamma: 0.9},
		{Season: season, Alpha: -1, Beta: 7, Gamma: 0},
	} {
		if err := hw.Fit(xs); err != nil {
			t.Fatalf("%+v: %v", hw, err)
		}
		f, err := hw.Forecast(season)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range f {
			if math.IsNaN(v) || math.Abs(v-10) > 5 {
				t.Errorf("f[%d] = %v, want near 10", i, v)
			}
		}
	}
}
