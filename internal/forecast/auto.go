package forecast

import (
	"math"
)

// SeasonalNaive predicts the value observed one season earlier (e.g. the
// same 5-minute slot yesterday). It is the natural baseline for the
// strongly diurnal arrival-rate series of Figure 19.
type SeasonalNaive struct {
	// Season is the period length in samples (required, > 0).
	Season int

	tail   []float64 // last Season observations
	fitted bool
}

// Fit implements Predictor.
func (s *SeasonalNaive) Fit(series []float64) error {
	if s.Season <= 0 {
		return ErrBadHorizon
	}
	if len(series) < s.Season {
		return ErrTooShort
	}
	s.tail = append(s.tail[:0], series[len(series)-s.Season:]...)
	s.fitted = true
	return nil
}

// Forecast implements Predictor.
func (s *SeasonalNaive) Forecast(h int) ([]float64, error) {
	if !s.fitted {
		return nil, ErrNotFitted
	}
	if h <= 0 {
		return nil, ErrBadHorizon
	}
	out := make([]float64, h)
	for i := range out {
		out[i] = s.tail[i%s.Season]
	}
	return out, nil
}

// AutoARIMA selects ARIMA orders by minimizing AIC over a small grid and
// delegates to the winning model. The grid covers p in [0,MaxP], q in
// [0,MaxQ], d in [0,MaxD] (defaults 3/2/1), skipping p=q=0.
type AutoARIMA struct {
	MaxP, MaxD, MaxQ int

	chosen *ARIMA
	orders [3]int
}

// Orders returns the selected (p,d,q) after Fit.
func (a *AutoARIMA) Orders() (p, d, q int) {
	return a.orders[0], a.orders[1], a.orders[2]
}

// Fit implements Predictor: grid-search orders by AIC.
func (a *AutoARIMA) Fit(series []float64) error {
	maxP, maxD, maxQ := a.MaxP, a.MaxD, a.MaxQ
	if maxP <= 0 {
		maxP = 3
	}
	if maxD < 0 {
		maxD = 0
	} else if maxD == 0 {
		maxD = 1
	}
	if maxQ <= 0 {
		maxQ = 2
	}

	bestAIC := math.Inf(1)
	var best *ARIMA
	var bestOrders [3]int
	for d := 0; d <= maxD; d++ {
		for p := 0; p <= maxP; p++ {
			for q := 0; q <= maxQ; q++ {
				if p+q == 0 {
					continue
				}
				m, err := NewARIMA(p, d, q)
				if err != nil {
					continue
				}
				if err := m.Fit(series); err != nil {
					continue
				}
				aic, err := aicOf(m, series)
				if err != nil {
					continue
				}
				if aic < bestAIC {
					bestAIC = aic
					best = m
					bestOrders = [3]int{p, d, q}
				}
			}
		}
	}
	if best == nil {
		return ErrTooShort
	}
	a.chosen = best
	a.orders = bestOrders
	return nil
}

// Forecast implements Predictor.
func (a *AutoARIMA) Forecast(h int) ([]float64, error) {
	if a.chosen == nil {
		return nil, ErrNotFitted
	}
	return a.chosen.Forecast(h)
}

// aicOf computes AIC from in-sample one-step residuals of a fitted ARIMA:
// AIC = n·ln(SSE/n) + 2k with k = p+q+1 parameters.
func aicOf(m *ARIMA, series []float64) (float64, error) {
	w, err := Difference(series, m.D)
	if err != nil {
		return 0, err
	}
	start := m.P
	if m.Q > 0 {
		start += m.Q + 4 + m.P
		if half := len(w) / 2; start > half+m.Q {
			start = half + m.Q
		}
	}
	if start < m.P {
		start = m.P
	}
	n := 0
	sse := 0.0
	// Reconstruct one-step in-sample predictions with zero innovations
	// (the MA terms contribute through the fitted residual tail only at
	// the end of the series, so this is an approximation adequate for
	// order selection).
	for t := start; t < len(w); t++ {
		pred := m.constant
		for j := 0; j < m.P && t-1-j >= 0; j++ {
			pred += m.ar[j] * w[t-1-j]
		}
		d := w[t] - pred
		sse += d * d
		n++
	}
	if n <= 0 || sse <= 0 {
		return math.Inf(1), nil
	}
	k := float64(m.P + m.Q + 1)
	return float64(n)*math.Log(sse/float64(n)) + 2*k, nil
}
