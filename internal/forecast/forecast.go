// Package forecast implements the time-series prediction used by HARMONY's
// workload-prediction module (Section VI): an ARIMA(p,d,q) model fitted
// with the Hannan–Rissanen two-stage regression, plus simple baselines
// (naive, moving average, exponential smoothing) and accuracy metrics.
package forecast

import (
	"errors"
	"fmt"
	"math"
)

// Predictor is a one-dimensional time-series forecaster.
type Predictor interface {
	// Fit estimates model parameters from the series.
	Fit(series []float64) error
	// Forecast returns h-step-ahead predictions following the fitted
	// series. Fit must have been called.
	Forecast(h int) ([]float64, error)
}

var (
	// ErrTooShort is returned when the series is too short for the model.
	ErrTooShort = errors.New("forecast: series too short")
	// ErrNotFitted is returned when Forecast is called before Fit.
	ErrNotFitted = errors.New("forecast: model not fitted")
	// ErrBadHorizon is returned for non-positive forecast horizons.
	ErrBadHorizon = errors.New("forecast: horizon must be positive")
)

// Difference applies d-th order differencing to xs, returning a series of
// length len(xs)-d. It returns an error when the series is too short.
func Difference(xs []float64, d int) ([]float64, error) {
	if d < 0 {
		return nil, errors.New("forecast: negative differencing order")
	}
	cur := append([]float64(nil), xs...)
	for i := 0; i < d; i++ {
		if len(cur) < 2 {
			return nil, ErrTooShort
		}
		next := make([]float64, len(cur)-1)
		for j := 1; j < len(cur); j++ {
			next[j-1] = cur[j] - cur[j-1]
		}
		cur = next
	}
	return cur, nil
}

// Naive predicts the last observed value for every horizon step.
type Naive struct {
	last   float64
	fitted bool
}

// Fit implements Predictor.
func (n *Naive) Fit(series []float64) error {
	if len(series) == 0 {
		return ErrTooShort
	}
	n.last = series[len(series)-1]
	n.fitted = true
	return nil
}

// Forecast implements Predictor.
func (n *Naive) Forecast(h int) ([]float64, error) {
	if !n.fitted {
		return nil, ErrNotFitted
	}
	if h <= 0 {
		return nil, ErrBadHorizon
	}
	out := make([]float64, h)
	for i := range out {
		out[i] = n.last
	}
	return out, nil
}

// MovingAverage predicts the mean of the last Window observations.
type MovingAverage struct {
	Window int

	mean   float64
	fitted bool
}

// Fit implements Predictor.
func (m *MovingAverage) Fit(series []float64) error {
	w := m.Window
	if w <= 0 {
		w = 8
	}
	if len(series) == 0 {
		return ErrTooShort
	}
	if w > len(series) {
		w = len(series)
	}
	sum := 0.0
	for _, x := range series[len(series)-w:] {
		sum += x
	}
	m.mean = sum / float64(w)
	m.fitted = true
	return nil
}

// Forecast implements Predictor.
func (m *MovingAverage) Forecast(h int) ([]float64, error) {
	if !m.fitted {
		return nil, ErrNotFitted
	}
	if h <= 0 {
		return nil, ErrBadHorizon
	}
	out := make([]float64, h)
	for i := range out {
		out[i] = m.mean
	}
	return out, nil
}

// EWMA predicts with exponentially weighted moving average smoothing.
type EWMA struct {
	Alpha float64 // smoothing factor in (0,1]; default 0.3

	level  float64
	fitted bool
}

// Fit implements Predictor.
func (e *EWMA) Fit(series []float64) error {
	if len(series) == 0 {
		return ErrTooShort
	}
	a := e.Alpha
	if a <= 0 || a > 1 {
		a = 0.3
	}
	level := series[0]
	for _, x := range series[1:] {
		level = a*x + (1-a)*level
	}
	e.level = level
	e.fitted = true
	return nil
}

// Forecast implements Predictor.
func (e *EWMA) Forecast(h int) ([]float64, error) {
	if !e.fitted {
		return nil, ErrNotFitted
	}
	if h <= 0 {
		return nil, ErrBadHorizon
	}
	out := make([]float64, h)
	for i := range out {
		out[i] = e.level
	}
	return out, nil
}

// Metrics holds forecast accuracy measures.
type Metrics struct {
	MAE  float64 // mean absolute error
	RMSE float64 // root mean squared error
	MAPE float64 // mean absolute percentage error (skips zero actuals)
}

// Evaluate compares forecasts against actuals.
func Evaluate(actual, predicted []float64) (Metrics, error) {
	if len(actual) != len(predicted) {
		return Metrics{}, fmt.Errorf("forecast: length mismatch %d vs %d", len(actual), len(predicted))
	}
	if len(actual) == 0 {
		return Metrics{}, ErrTooShort
	}
	var absSum, sqSum, pctSum float64
	pctN := 0
	for i := range actual {
		d := predicted[i] - actual[i]
		if d < 0 {
			d = -d
		}
		absSum += d
		sqSum += d * d
		if actual[i] != 0 {
			pct := d / abs(actual[i])
			pctSum += pct
			pctN++
		}
	}
	n := float64(len(actual))
	m := Metrics{
		MAE:  absSum / n,
		RMSE: math.Sqrt(sqSum / n),
	}
	if pctN > 0 {
		m.MAPE = pctSum / float64(pctN)
	}
	return m, nil
}

// Backtest performs rolling-origin evaluation: for each position after
// minTrain, the predictor is fitted on the prefix and asked for a one-step
// forecast, which is compared with the next actual value.
func Backtest(p Predictor, series []float64, minTrain int) (Metrics, error) {
	if minTrain < 1 || minTrain >= len(series) {
		return Metrics{}, ErrTooShort
	}
	var actual, predicted []float64
	for i := minTrain; i < len(series); i++ {
		if err := p.Fit(series[:i]); err != nil {
			return Metrics{}, fmt.Errorf("forecast: backtest fit at %d: %w", i, err)
		}
		f, err := p.Forecast(1)
		if err != nil {
			return Metrics{}, fmt.Errorf("forecast: backtest forecast at %d: %w", i, err)
		}
		actual = append(actual, series[i])
		predicted = append(predicted, f[0])
	}
	return Evaluate(actual, predicted)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
