package forecast

import (
	"math"
	"math/rand"
	"testing"
)

func TestDifference(t *testing.T) {
	xs := []float64{1, 3, 6, 10}
	d1, err := Difference(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 4}
	for i := range want {
		if d1[i] != want[i] {
			t.Errorf("d1[%d] = %v, want %v", i, d1[i], want[i])
		}
	}
	d2, err := Difference(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2) != 2 || d2[0] != 1 || d2[1] != 1 {
		t.Errorf("d2 = %v", d2)
	}
	d0, err := Difference(xs, 0)
	if err != nil || len(d0) != 4 {
		t.Errorf("d0 = %v, %v", d0, err)
	}
	if _, err := Difference([]float64{1}, 1); err == nil {
		t.Error("short series accepted")
	}
	if _, err := Difference(xs, -1); err == nil {
		t.Error("negative order accepted")
	}
}

func TestNaive(t *testing.T) {
	var n Naive
	if _, err := n.Forecast(1); err == nil {
		t.Error("forecast before fit accepted")
	}
	if err := n.Fit(nil); err == nil {
		t.Error("empty fit accepted")
	}
	if err := n.Fit([]float64{1, 2, 7}); err != nil {
		t.Fatal(err)
	}
	f, err := n.Forecast(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range f {
		if v != 7 {
			t.Errorf("naive forecast = %v, want 7", v)
		}
	}
	if _, err := n.Forecast(0); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestMovingAverage(t *testing.T) {
	m := MovingAverage{Window: 2}
	if err := m.Fit([]float64{1, 2, 4, 6}); err != nil {
		t.Fatal(err)
	}
	f, _ := m.Forecast(1)
	if f[0] != 5 {
		t.Errorf("MA forecast = %v, want 5", f[0])
	}
	// Window larger than series uses the whole series.
	m2 := MovingAverage{Window: 100}
	if err := m2.Fit([]float64{2, 4}); err != nil {
		t.Fatal(err)
	}
	f2, _ := m2.Forecast(1)
	if f2[0] != 3 {
		t.Errorf("MA wide forecast = %v, want 3", f2[0])
	}
	var m3 MovingAverage
	if _, err := m3.Forecast(1); err == nil {
		t.Error("forecast before fit accepted")
	}
}

func TestEWMA(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	if err := e.Fit([]float64{0, 4}); err != nil {
		t.Fatal(err)
	}
	f, _ := e.Forecast(2)
	if f[0] != 2 || f[1] != 2 {
		t.Errorf("EWMA forecast = %v, want [2 2]", f)
	}
	// Constant series converges to the constant.
	e2 := EWMA{}
	_ = e2.Fit([]float64{5, 5, 5, 5})
	f2, _ := e2.Forecast(1)
	if f2[0] != 5 {
		t.Errorf("EWMA constant = %v", f2[0])
	}
}

func TestEvaluate(t *testing.T) {
	m, err := Evaluate([]float64{1, 2, 4}, []float64{1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !close2(m.MAE, 1) {
		t.Errorf("MAE = %v, want 1", m.MAE)
	}
	wantRMSE := math.Sqrt((0 + 1 + 4) / 3.0)
	if !close2(m.RMSE, wantRMSE) {
		t.Errorf("RMSE = %v, want %v", m.RMSE, wantRMSE)
	}
	if _, err := Evaluate([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Evaluate(nil, nil); err == nil {
		t.Error("empty accepted")
	}
}

func TestEvaluateMAPESkipsZeros(t *testing.T) {
	m, err := Evaluate([]float64{0, 10}, []float64{5, 12})
	if err != nil {
		t.Fatal(err)
	}
	if !close2(m.MAPE, 0.2) {
		t.Errorf("MAPE = %v, want 0.2", m.MAPE)
	}
}

func close2(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewARIMAValidation(t *testing.T) {
	if _, err := NewARIMA(-1, 0, 1); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := NewARIMA(0, 0, 0); err == nil {
		t.Error("p+q=0 accepted")
	}
	if _, err := NewARIMA(2, 1, 1); err != nil {
		t.Errorf("valid orders rejected: %v", err)
	}
}

func TestARIMATooShort(t *testing.T) {
	m, _ := NewARIMA(2, 0, 0)
	if err := m.Fit([]float64{1, 2, 3}); err == nil {
		t.Error("short series accepted")
	}
	if _, err := m.Forecast(1); err == nil {
		t.Error("forecast before fit accepted")
	}
}

// AR(1) process: x_t = 5 + 0.7 x_{t-1} + eps. The fitted AR coefficient
// must be close to 0.7 and forecasts must head toward the process mean.
func TestARIMARecoversAR1(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	n := 2000
	xs := make([]float64, n)
	xs[0] = 5 / (1 - 0.7)
	for i := 1; i < n; i++ {
		xs[i] = 5 + 0.7*xs[i-1] + 0.5*r.NormFloat64()
	}
	m, _ := NewARIMA(1, 0, 0)
	if err := m.Fit(xs); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.ar[0]-0.7) > 0.08 {
		t.Errorf("AR coefficient = %v, want ~0.7", m.ar[0])
	}
	f, err := m.Forecast(50)
	if err != nil {
		t.Fatal(err)
	}
	mean := 5 / (1 - 0.7)
	if math.Abs(f[49]-mean) > 1.5 {
		t.Errorf("long-run forecast = %v, want ~%v", f[49], mean)
	}
}

// A deterministic linear trend is captured by d=1: forecasts continue the
// trend.
func TestARIMATrend(t *testing.T) {
	n := 200
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 3 + 2*float64(i)
	}
	m, _ := NewARIMA(1, 1, 0)
	if err := m.Fit(xs); err != nil {
		t.Fatal(err)
	}
	f, err := m.Forecast(5)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range f {
		want := 3 + 2*float64(n+i)
		if math.Abs(v-want) > 1 {
			t.Errorf("f[%d] = %v, want ~%v", i, v, want)
		}
	}
}

// ARMA(1,1) fitting should still beat naive on a strongly autocorrelated
// series with moving-average noise.
func TestARIMABeatsNaiveOnSinusoid(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	n := 600
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 50 + 20*math.Sin(2*math.Pi*float64(i)/48) + r.NormFloat64()
	}
	m, _ := NewARIMA(3, 0, 1)
	arima, err := Backtest(m, xs, 400)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Backtest(&Naive{}, xs, 400)
	if err != nil {
		t.Fatal(err)
	}
	if arima.RMSE >= naive.RMSE {
		t.Errorf("ARIMA RMSE %v >= naive %v", arima.RMSE, naive.RMSE)
	}
}

func TestBacktestValidation(t *testing.T) {
	if _, err := Backtest(&Naive{}, []float64{1, 2}, 0); err == nil {
		t.Error("minTrain=0 accepted")
	}
	if _, err := Backtest(&Naive{}, []float64{1, 2}, 2); err == nil {
		t.Error("minTrain=len accepted")
	}
}

func TestARIMAForecastHorizonValidation(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = r.Float64()
	}
	m, _ := NewARIMA(1, 0, 1)
	if err := m.Fit(xs); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forecast(0); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := m.Forecast(-2); err == nil {
		t.Error("negative horizon accepted")
	}
}
