// Package metrics is a minimal, dependency-free metrics registry with
// Prometheus text exposition (the subset of the format harmonyd's
// /metrics endpoint needs): counters, gauges, histograms, and labeled
// variants of the scalar kinds. All operations are safe for concurrent
// use and the rendered output is deterministic (sorted by metric name,
// then label value), so it can be asserted byte-for-byte in tests.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v; negative deltas are ignored (counters
// are monotone by contract).
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by v (may be negative).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into fixed cumulative buckets.
type Histogram struct {
	mu sync.Mutex
	//harmony:guardedby(mu)
	bounds []float64 // upper bounds, ascending; +Inf implicit
	//harmony:guardedby(mu)
	counts []uint64 // len(bounds)+1, last is the +Inf bucket
	//harmony:guardedby(mu)
	sum float64
	//harmony:guardedby(mu)
	samples uint64
}

// DefBuckets are the default latency buckets in seconds.
var DefBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]uint64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.samples++
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.samples
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// metric is one registered family.
type metric struct {
	name, help, kind string
	counter          *Counter
	gauge            *Gauge
	hist             *Histogram
	vec              *vec
	labelName        string
}

// vec is a label-value-indexed family of scalar children.
type vec struct {
	mu sync.Mutex
	//harmony:guardedby(mu)
	counters map[string]*Counter
	//harmony:guardedby(mu)
	gauges map[string]*Gauge
}

// Registry holds metric families and renders them as Prometheus text.
type Registry struct {
	mu sync.Mutex
	//harmony:guardedby(mu)
	families map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*metric)}
}

// lookupLocked finds or creates the family. Callers hold r.mu — the
// child-metric lazy init must happen under the same critical section as
// the family lookup, or two concurrent registrations of the same name
// could each hand out a different child and split its increments.
func (r *Registry) lookupLocked(name, help, kind string) *metric {
	if m, ok := r.families[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	r.families[name] = m
	return m
}

// Counter registers (or returns the existing) counter with the name.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookupLocked(name, help, "counter")
	if m.counter == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// Gauge registers (or returns the existing) gauge with the name.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookupLocked(name, help, "gauge")
	if m.gauge == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// Histogram registers a histogram with the given bucket upper bounds
// (DefBuckets when nil).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookupLocked(name, help, "histogram")
	if m.hist == nil {
		m.hist = newHistogram(buckets)
	}
	return m.hist
}

// CounterVec registers a counter family keyed by one label.
func (r *Registry) CounterVec(name, help, labelName string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookupLocked(name, help, "counter")
	if m.vec == nil {
		m.vec = &vec{counters: make(map[string]*Counter)}
		m.labelName = labelName
	}
	return &CounterVec{m: m}
}

// GaugeVec registers a gauge family keyed by one label.
func (r *Registry) GaugeVec(name, help, labelName string) *GaugeVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookupLocked(name, help, "gauge")
	if m.vec == nil {
		m.vec = &vec{gauges: make(map[string]*Gauge)}
		m.labelName = labelName
	}
	return &GaugeVec{m: m}
}

// CounterVec hands out per-label-value counters.
type CounterVec struct{ m *metric }

// With returns the child counter for the label value.
func (v *CounterVec) With(value string) *Counter {
	v.m.vec.mu.Lock()
	defer v.m.vec.mu.Unlock()
	c, ok := v.m.vec.counters[value]
	if !ok {
		c = &Counter{}
		v.m.vec.counters[value] = c
	}
	return c
}

// GaugeVec hands out per-label-value gauges.
type GaugeVec struct{ m *metric }

// With returns the child gauge for the label value.
func (v *GaugeVec) With(value string) *Gauge {
	v.m.vec.mu.Lock()
	defer v.m.vec.mu.Unlock()
	g, ok := v.m.vec.gauges[value]
	if !ok {
		g = &Gauge{}
		v.m.vec.gauges[value] = g
	}
	return g
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Render writes the registry in Prometheus text exposition format.
func (r *Registry) Render() string {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*metric, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, m := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.kind)
		switch {
		case m.hist != nil:
			m.hist.mu.Lock()
			cum := uint64(0)
			for i, bound := range m.hist.bounds {
				cum += m.hist.counts[i]
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m.name, formatValue(bound), cum)
			}
			cum += m.hist.counts[len(m.hist.bounds)]
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum)
			fmt.Fprintf(&b, "%s_sum %s\n", m.name, formatValue(m.hist.sum))
			fmt.Fprintf(&b, "%s_count %d\n", m.name, cum)
			m.hist.mu.Unlock()
		case m.vec != nil:
			m.vec.mu.Lock()
			vals := make([]string, 0, len(m.vec.counters)+len(m.vec.gauges))
			for v := range m.vec.counters {
				vals = append(vals, v)
			}
			for v := range m.vec.gauges {
				vals = append(vals, v)
			}
			sort.Strings(vals)
			for _, v := range vals {
				var x float64
				if c := m.vec.counters[v]; c != nil {
					x = c.Value()
				} else {
					x = m.vec.gauges[v].Value()
				}
				fmt.Fprintf(&b, "%s{%s=%q} %s\n", m.name, m.labelName, v, formatValue(x))
			}
			m.vec.mu.Unlock()
		case m.counter != nil:
			fmt.Fprintf(&b, "%s %s\n", m.name, formatValue(m.counter.Value()))
		case m.gauge != nil:
			fmt.Fprintf(&b, "%s %s\n", m.name, formatValue(m.gauge.Value()))
		}
	}
	return b.String()
}
