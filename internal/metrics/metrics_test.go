package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tasks_total", "tasks ingested")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters are monotone
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("queue_depth", "current depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %v, want 4", got)
	}
	// Re-registering returns the same instance.
	if r.Counter("tasks_total", "tasks ingested") != c {
		t.Error("re-registered counter is a different instance")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("registering x as gauge after counter did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("tick_seconds", "tick latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Errorf("sum = %v, want 56.05", h.Sum())
	}
	out := r.Render()
	for _, want := range []string{
		`tick_seconds_bucket{le="0.1"} 1`,
		`tick_seconds_bucket{le="1"} 3`,
		`tick_seconds_bucket{le="10"} 4`,
		`tick_seconds_bucket{le="+Inf"} 5`,
		`tick_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestVecsAndRenderDeterminism(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("arrivals_total", "arrivals per group", "group")
	cv.With("production").Add(10)
	cv.With("gratis").Add(2)
	gv := r.GaugeVec("active_machines", "powered machines per type", "type")
	gv.With("1").Set(5)
	r.Counter("zzz_last", "sorted last").Inc()

	out := r.Render()
	for _, want := range []string{
		"# HELP arrivals_total arrivals per group\n# TYPE arrivals_total counter\n",
		`arrivals_total{group="gratis"} 2`,
		`arrivals_total{group="production"} 10`,
		`active_machines{type="1"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Label values render sorted; metric names render sorted.
	if strings.Index(out, `group="gratis"`) > strings.Index(out, `group="production"`) {
		t.Error("label values not sorted")
	}
	if strings.Index(out, "arrivals_total") > strings.Index(out, "zzz_last") {
		t.Error("metric families not sorted by name")
	}
	if out != r.Render() {
		t.Error("render is not deterministic")
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n", "")
	h := r.Histogram("h", "", nil)
	cv := r.CounterVec("v", "", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j))
				cv.With("a").Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %v, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
	if cv.With("a").Value() != 8000 {
		t.Errorf("vec counter = %v, want 8000", cv.With("a").Value())
	}
}

// TestRenderDeterministic populates two registries with the same families
// and label values in different orders and asserts the rendered text is
// byte-identical — and matches the golden exposition verbatim, so any
// ordering regression (map-iteration leakage) shows as a diff.
func TestRenderDeterministic(t *testing.T) {
	const golden = `# HELP depth current depth
# TYPE depth gauge
depth 3
# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="1"} 2
lat_seconds_bucket{le="+Inf"} 3
lat_seconds_sum 5.55
lat_seconds_count 3
# HELP reqs_total requests by route
# TYPE reqs_total counter
reqs_total{route="/metrics"} 1
reqs_total{route="/v1/stats"} 2
reqs_total{route="/v1/tasks"} 4
# HELP tasks_total tasks ingested
# TYPE tasks_total counter
tasks_total 2
`

	forward := NewRegistry()
	forward.Gauge("depth", "current depth").Set(3)
	h := forward.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	rv := forward.CounterVec("reqs_total", "requests by route", "route")
	rv.With("/metrics").Inc()
	rv.With("/v1/stats").Add(2)
	rv.With("/v1/tasks").Add(4)
	forward.Counter("tasks_total", "tasks ingested").Add(2)

	// Same state, reversed registration and label-touch order.
	reverse := NewRegistry()
	reverse.Counter("tasks_total", "tasks ingested").Add(2)
	rv = reverse.CounterVec("reqs_total", "requests by route", "route")
	rv.With("/v1/tasks").Add(4)
	rv.With("/v1/stats").Add(2)
	rv.With("/metrics").Inc()
	h = reverse.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(5)
	h.Observe(0.5)
	h.Observe(0.05)
	reverse.Gauge("depth", "current depth").Set(3)

	a, b := forward.Render(), reverse.Render()
	if a != b {
		t.Errorf("render differs by population order:\n--- forward ---\n%s--- reverse ---\n%s", a, b)
	}
	if a != golden {
		t.Errorf("render drifted from golden:\n--- got ---\n%s--- want ---\n%s", a, golden)
	}
}
