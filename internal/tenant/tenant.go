// Package tenant generalizes the harmonyd control loop from one implicit
// application to N: each tenant owns a name, an SLO (target mean
// scheduling delay), an arrival stream, and a cost share. Tenants with
// compatible SLOs merge into provisioning groups — HarmonyBatch-style —
// and every group runs its own complete forecast → size → MPC → pack
// pipeline (a private daemon.Engine, so warm LP bases, delta-placement
// state, and online classification stay per group). The layer adds
// per-tenant ingest routing and accounting, per-group cost and
// SLO-violation accounting, and an HTTP front-end with per-tenant
// backpressure under a shared global cap.
//
// With exactly one tenant the group pipeline is configured identically to
// the single-tenant daemon, so plans (and the deterministic engine
// metrics) are bit-identical to daemon.Replay over the same stream — the
// N=1 equivalence contract pinned by the tests in this package.
package tenant

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Spec declares one tenant (application) of the provisioning plane.
type Spec struct {
	// Name identifies the tenant; tasks carry it in their "tenant" field.
	Name string `json:"name"`
	// SLODelay is the tenant's target mean scheduling delay in seconds
	// for production-priority work (lower-priority groups scale by the
	// daemon's default 120/300/900 ratios). 0 means the daemon defaults.
	SLODelay float64 `json:"sloDelay,omitempty"`
	// Share weights the tenant's slice of its group's provisioning cost
	// (its price sensitivity). Defaults to 1.
	Share float64 `json:"share,omitempty"`
	// QueueSize bounds the tenant's private ingest queue; 0 uses the
	// server default.
	QueueSize int `json:"queueSize,omitempty"`
}

// Document is the tenants config file format read by harmonyd -tenants.
type Document struct {
	Tenants []Spec `json:"tenants"`
	// SLOTolerance is the grouping compatibility factor: a tenant joins a
	// group when its SLO is within this multiple of the group's smallest
	// member SLO (default 2).
	SLOTolerance float64 `json:"sloTolerance,omitempty"`
}

// DefaultSLOTolerance is the grouping factor used when a Document (or
// Config) does not set one.
const DefaultSLOTolerance = 2.0

// Load parses and validates a tenants config document.
func Load(r io.Reader) (*Document, error) {
	var doc Document
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("tenant: parse config: %w", err)
	}
	if err := ValidateSpecs(doc.Tenants); err != nil {
		return nil, err
	}
	if doc.SLOTolerance < 0 || math.IsNaN(doc.SLOTolerance) || math.IsInf(doc.SLOTolerance, 0) {
		return nil, fmt.Errorf("tenant: sloTolerance must be a finite value >= 1 (or 0 for the default)")
	}
	if doc.SLOTolerance != 0 && doc.SLOTolerance < 1 {
		return nil, fmt.Errorf("tenant: sloTolerance %v < 1 would split equal SLOs", doc.SLOTolerance)
	}
	return &doc, nil
}

// ValidateSpecs rejects empty, duplicate, or non-finite tenant specs.
func ValidateSpecs(specs []Spec) error {
	if len(specs) == 0 {
		return fmt.Errorf("tenant: no tenants declared")
	}
	seen := make(map[string]bool, len(specs))
	for i, s := range specs {
		if s.Name == "" {
			return fmt.Errorf("tenant: spec %d has no name", i)
		}
		if seen[s.Name] {
			return fmt.Errorf("tenant: duplicate tenant %q", s.Name)
		}
		seen[s.Name] = true
		if !(s.SLODelay >= 0) || math.IsInf(s.SLODelay, 1) {
			return fmt.Errorf("tenant: %q sloDelay not in [0,+Inf)", s.Name)
		}
		if !(s.Share >= 0) || math.IsInf(s.Share, 1) {
			return fmt.Errorf("tenant: %q share not in [0,+Inf)", s.Name)
		}
		if s.QueueSize < 0 {
			return fmt.Errorf("tenant: %q negative queueSize", s.Name)
		}
	}
	return nil
}

// GroupSpecs partitions tenants into provisioning groups by SLO
// compatibility. Tenants with explicit SLOs are sorted ascending by
// (SLODelay, Name) and greedily merged: a tenant joins the open group
// while its SLO is within tolerance× the group's first (smallest) member
// SLO, so the group can be provisioned against that smallest SLO and
// every member's target is met conservatively. Tenants with the default
// SLO (0) always form their own final group — merging them with an
// explicit-SLO group would silently change the default pipeline.
//
// The result is deterministic: groups are ordered by ascending SLO with
// the default group last, and members within a group are ordered by
// (SLODelay, Name).
func GroupSpecs(specs []Spec, tolerance float64) [][]Spec {
	if tolerance < 1 {
		tolerance = DefaultSLOTolerance
	}
	var explicit, defaults []Spec
	for _, s := range specs {
		if s.SLODelay > 0 {
			explicit = append(explicit, s)
		} else {
			defaults = append(defaults, s)
		}
	}
	sortSpecs := func(xs []Spec) {
		sort.Slice(xs, func(i, j int) bool {
			//harmony:allow floateq grouping tie-break must be exact for a deterministic order
			if xs[i].SLODelay != xs[j].SLODelay {
				return xs[i].SLODelay < xs[j].SLODelay
			}
			return xs[i].Name < xs[j].Name
		})
	}
	sortSpecs(explicit)
	sortSpecs(defaults)

	var groups [][]Spec
	for _, s := range explicit {
		if n := len(groups); n > 0 {
			first := groups[n-1][0].SLODelay
			if s.SLODelay <= first*tolerance {
				groups[n-1] = append(groups[n-1], s)
				continue
			}
		}
		groups = append(groups, []Spec{s})
	}
	if len(defaults) > 0 {
		groups = append(groups, defaults)
	}
	return groups
}
