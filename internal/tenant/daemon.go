package tenant

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"
)

// RunConfig parameterizes a multi-tenant daemon process.
type RunConfig struct {
	// Addr is the listen address (e.g. ":8080"). Required.
	Addr string
	// TickEvery is the wall-clock interval between automatic control
	// ticks (all groups tick together). 0 disables automatic ticks (they
	// can still be forced via POST /v1/tick).
	TickEvery time.Duration
	// Server holds the HTTP front-end options.
	Server ServerConfig
	// FinalPlans, when non-nil, receives the final per-group plans as
	// JSON during graceful shutdown.
	FinalPlans io.Writer
	// Log receives operational messages; log.Default() when nil.
	Log *log.Logger
	// Ready, when non-nil, receives the bound listen address and is then
	// closed. For tests and for ":0" listeners.
	Ready chan<- string
}

// Daemon couples a Multi with its HTTP server and run loop.
type Daemon struct {
	multi *Multi
	srv   *Server
	cfg   RunConfig
}

// NewDaemon builds a multi-tenant daemon around a Multi.
func NewDaemon(m *Multi, cfg RunConfig) (*Daemon, error) {
	if cfg.Addr == "" {
		return nil, errors.New("tenant: listen address required")
	}
	if cfg.Log == nil {
		cfg.Log = log.Default()
	}
	return &Daemon{multi: m, srv: NewServer(m, cfg.Server), cfg: cfg}, nil
}

// Run serves until ctx is cancelled, then shuts down gracefully: every
// tenant queue is flushed, one final control tick runs for every group,
// the final per-group plans are written to cfg.FinalPlans, and the HTTP
// listener drains.
func (d *Daemon) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", d.cfg.Addr)
	if err != nil {
		return fmt.Errorf("tenant: listen %s: %w", d.cfg.Addr, err)
	}
	httpSrv := &http.Server{Handler: d.srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	d.cfg.Log.Printf("harmonyd: multi-tenant: listening on %s (%d tenants, %d groups)",
		ln.Addr(), len(d.multi.tenants), len(d.multi.groups))
	if d.cfg.Ready != nil {
		d.cfg.Ready <- ln.Addr().String()
		close(d.cfg.Ready)
	}

	var tickC <-chan time.Time
	if d.cfg.TickEvery > 0 {
		//harmony:allow nodeterm the run loop's tick cadence is genuinely wall-clock; Replay is the deterministic reference
		ticker := time.NewTicker(d.cfg.TickEvery)
		defer ticker.Stop()
		tickC = ticker.C
	}

loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case err := <-serveErr:
			return fmt.Errorf("tenant: serve: %w", err)
		case <-tickC:
			if _, err := d.srv.ForceTick(context.Background()); err != nil {
				d.cfg.Log.Printf("harmonyd: tick: %v", err)
			}
		}
	}

	d.cfg.Log.Printf("harmonyd: shutting down")
	if _, err := d.srv.ForceTick(context.Background()); err != nil {
		d.cfg.Log.Printf("harmonyd: final tick: %v", err)
	}
	if d.cfg.FinalPlans != nil {
		if plans, err := d.multi.Plans(); err == nil {
			enc := json.NewEncoder(d.cfg.FinalPlans)
			enc.SetIndent("", "  ")
			if err := enc.Encode(map[string]interface{}{"groups": plans}); err != nil {
				d.cfg.Log.Printf("harmonyd: final plans: %v", err)
			}
		}
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), d.srv.cfg.TickDeadline)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("tenant: shutdown: %w", err)
	}
	<-serveErr // http.ErrServerClosed
	// With the listener drained nothing can enqueue anymore; stop the
	// per-tenant ingest workers so no goroutine outlives Run.
	d.srv.Close()
	return nil
}
