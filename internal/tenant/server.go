package tenant

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"harmony/internal/daemon"
	"harmony/internal/metrics"
	"harmony/internal/trace"
)

// ServerConfig parameterizes the multi-tenant HTTP front-end.
type ServerConfig struct {
	// QueueSize bounds each tenant's private ingest queue when the
	// tenant's Spec does not set one (default 8192).
	QueueSize int
	// GlobalQueueCap bounds the total tasks waiting across every tenant
	// queue — a shared admission cap so one tenant cannot starve the rest
	// of queue memory (default 65536).
	GlobalQueueCap int
	// TickDeadline bounds each control-period solve (default 30s).
	TickDeadline time.Duration

	// startWorkers exists for tests that need the queues to stay full.
	startWorkers *bool
}

func (cfg *ServerConfig) defaults() {
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 8192
	}
	if cfg.GlobalQueueCap <= 0 {
		cfg.GlobalQueueCap = 65536
	}
	if cfg.TickDeadline <= 0 {
		cfg.TickDeadline = 30 * time.Second
	}
}

// ingestItem is one unit on a tenant queue: a task, or a barrier that
// closes its channel once every earlier item has been applied.
type ingestItem struct {
	task    trace.Task
	barrier chan struct{}
}

// tenantQueue is one tenant's bounded ingest lane: a private queue drained
// by a private worker, so each tenant's tasks apply in arrival order and a
// slow tenant only backs up its own lane.
type tenantQueue struct {
	ts    *tenantState
	queue chan ingestItem
	depth *metrics.Gauge
}

// Server is the multi-tenant HTTP front-end: tenant-tagged streaming
// ingest with per-tenant backpressure under a shared global cap, group
// plan/tick endpoints, per-tenant and per-group stats, and metrics.
type Server struct {
	multi *Multi
	cfg   ServerConfig
	mux   *http.ServeMux

	queues  map[string]*tenantQueue
	ordered []*tenantQueue // deterministic (tenant-name) order
	// globalDepth counts tasks admitted across all queues; admission is
	// add-then-check with rollback so concurrent producers cannot
	// overshoot GlobalQueueCap.
	globalDepth atomic.Int64
	workers     sync.WaitGroup
	closeOnce   sync.Once

	mRejected   *metrics.Counter
	mIngestErrs *metrics.Counter
	mPanics     *metrics.Counter
	mRequests   *metrics.CounterVec
}

// NewServer wires the multi-tenant controller behind the HTTP API and
// starts one ingest worker per tenant.
func NewServer(m *Multi, cfg ServerConfig) *Server {
	cfg.defaults()
	s := &Server{
		multi:  m,
		cfg:    cfg,
		mux:    http.NewServeMux(),
		queues: make(map[string]*tenantQueue, len(m.tenants)),
	}
	r := m.cfg.Registry
	depthVec := r.GaugeVec("harmonyd_tenant_queue_depth", "Tasks waiting on the tenant's ingest queue.", "tenant")
	s.mRejected = r.Counter("harmonyd_ingest_rejected_total", "Tasks rejected with 429 because a tenant queue or the global cap was full.")
	s.mIngestErrs = r.Counter("harmonyd_ingest_invalid_total", "Tasks rejected because they failed validation or named an unknown tenant.")
	s.mPanics = r.Counter("harmonyd_panics_recovered_total", "Panics recovered by the HTTP middleware.")
	s.mRequests = r.CounterVec("harmonyd_http_requests_total", "HTTP requests served, by route.", "route")

	for _, ts := range m.tenants {
		size := ts.spec.QueueSize
		if size <= 0 {
			size = cfg.QueueSize
		}
		q := &tenantQueue{
			ts:    ts,
			queue: make(chan ingestItem, size),
			depth: depthVec.With(ts.spec.Name),
		}
		s.queues[ts.spec.Name] = q
		s.ordered = append(s.ordered, q)
	}

	s.mux.HandleFunc("POST /v1/tasks", s.handleTasks)
	s.mux.HandleFunc("POST /v1/tick", s.handleTick)
	s.mux.HandleFunc("GET /v1/plan", s.handlePlan)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics/{group}", s.handleGroupMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if cfg.startWorkers == nil || *cfg.startWorkers {
		for _, q := range s.ordered {
			s.workers.Add(1)
			go s.ingestWorker(q)
		}
	}
	return s
}

// Close shuts down the ingest pipeline: every tenant queue is closed so
// its worker drains what was admitted and exits. Callers must stop the
// HTTP server first — an enqueue racing Close would send on a closed
// queue. Close is idempotent and blocks until all workers have exited.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		for _, q := range s.ordered {
			close(q.queue)
		}
		s.workers.Wait()
	})
}

// ServeHTTP implements http.Handler with panic recovery around the mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if v := recover(); v != nil {
			s.mPanics.Inc()
			writeJSONError(w, http.StatusInternalServerError, fmt.Sprintf("panic: %v", v))
		}
	}()
	s.mRequests.With(r.URL.Path).Inc()
	s.mux.ServeHTTP(w, r)
}

// ingestWorker drains one tenant's queue into its group engine until
// Close closes the queue.
func (s *Server) ingestWorker(q *tenantQueue) {
	defer s.workers.Done()
	for item := range q.queue {
		if item.barrier != nil {
			close(item.barrier)
			continue
		}
		if err := s.multi.Ingest(item.task); err != nil {
			s.mIngestErrs.Inc()
		}
		s.globalDepth.Add(-1)
		q.depth.Set(float64(len(q.queue)))
	}
}

// Flush blocks until every task enqueued before the call has been applied
// to the engines. It is what makes a forced tick observe all prior POSTs.
func (s *Server) Flush() {
	barriers := make([]chan struct{}, len(s.ordered))
	for i, q := range s.ordered {
		barriers[i] = make(chan struct{})
		q.queue <- ingestItem{barrier: barriers[i]}
	}
	for _, b := range barriers {
		<-b
	}
}

// enqueue pushes one task onto its tenant's queue, honoring both the
// tenant's bound and the shared global cap. Admission against the global
// cap is add-then-check with rollback: overshooting producers retreat, so
// the cap holds under arbitrary concurrency.
func (s *Server) enqueue(q *tenantQueue, t trace.Task) bool {
	if s.globalDepth.Add(1) > int64(s.cfg.GlobalQueueCap) {
		s.globalDepth.Add(-1)
		return false
	}
	select {
	case q.queue <- ingestItem{task: t}:
		q.depth.Set(float64(len(q.queue)))
		return true
	default:
		s.globalDepth.Add(-1)
		q.depth.Set(float64(len(q.queue)))
		return false
	}
}

type ingestResponse struct {
	Accepted int    `json:"accepted"`
	Rejected int    `json:"rejected,omitempty"`
	Invalid  int    `json:"invalid,omitempty"`
	Error    string `json:"error,omitempty"`
}

// handleTasks ingests a tenant-tagged task stream (object, array, or
// NDJSON — the same wire formats as the single-tenant daemon). Each task
// routes by its "tenant" field; a ?tenant= query parameter supplies the
// tag for untagged tasks. Tasks naming unknown tenants are counted
// invalid; a full tenant queue (or the global cap) rejects the remainder
// of that tenant's tasks with 429.
func (s *Server) handleTasks(w http.ResponseWriter, r *http.Request) {
	tasks, err := daemon.DecodeTasks(r.Body)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	defaultTenant := r.URL.Query().Get("tenant")
	var resp ingestResponse
	for _, t := range tasks {
		if t.Tenant == "" {
			t.Tenant = defaultTenant
		}
		ts, err := s.multi.resolve(t.Tenant)
		if err != nil {
			resp.Invalid++
			s.mIngestErrs.Inc()
			continue
		}
		if !s.enqueue(s.queues[ts.spec.Name], t) {
			resp.Rejected++
			s.mRejected.Inc()
			s.multi.recordRejected(ts, 1)
			continue
		}
		resp.Accepted++
	}
	switch {
	case resp.Rejected > 0:
		resp.Error = "ingest queue full"
		writeJSON(w, http.StatusTooManyRequests, resp)
	case resp.Invalid > 0 && resp.Accepted == 0:
		resp.Error = "unknown tenant"
		writeJSON(w, http.StatusBadRequest, resp)
	default:
		writeJSON(w, http.StatusAccepted, resp)
	}
}

// ForceTick flushes every tenant queue and runs one control period for
// all groups under the configured deadline.
func (s *Server) ForceTick(parent context.Context) (map[string]*daemon.Plan, error) {
	s.Flush()
	ctx, cancel := context.WithTimeout(parent, s.cfg.TickDeadline)
	defer cancel()
	return s.multi.Tick(ctx)
}

func (s *Server) handleTick(w http.ResponseWriter, r *http.Request) {
	plans, err := s.ForceTick(r.Context())
	body := struct {
		Groups map[string]*daemon.Plan `json:"groups"`
		Error  string                  `json:"error,omitempty"`
	}{Groups: plans}
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, body)
	case errors.Is(err, daemon.ErrTickInFlight):
		body.Error = err.Error()
		writeJSON(w, http.StatusConflict, body)
	case errors.Is(err, context.DeadlineExceeded):
		body.Error = err.Error()
		writeJSON(w, http.StatusGatewayTimeout, body)
	default:
		body.Error = err.Error()
		writeJSON(w, http.StatusInternalServerError, body)
	}
}

func (s *Server) handlePlan(w http.ResponseWriter, _ *http.Request) {
	plans, err := s.multi.Plans()
	if err != nil {
		writeJSONError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Groups map[string]*daemon.Plan `json:"groups"`
	}{plans})
}

// queueStats is the per-tenant queue telemetry nested under /v1/stats.
type queueStats struct {
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	queues := make(map[string]queueStats, len(s.ordered))
	for _, q := range s.ordered {
		queues[q.ts.spec.Name] = queueStats{Depth: len(q.queue), Capacity: cap(q.queue)}
	}
	writeJSON(w, http.StatusOK, struct {
		MultiStats
		Queues      map[string]queueStats `json:"queues"`
		GlobalDepth int64                 `json:"globalDepth"`
		GlobalCap   int                   `json:"globalCap"`
	}{s.multi.Snapshot(), queues, s.globalDepth.Load(), s.cfg.GlobalQueueCap})
}

// handleMetrics serves the multi-tenant registry: the tenant- and
// group-labeled series plus the front-end's own counters. Per-group
// engine series (identical families per group) live at /metrics/{group}.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	//harmony:allow errflow HTTP response write; the client disconnecting is not an error we can handle
	io.WriteString(w, s.multi.cfg.Registry.Render())
}

// handleGroupMetrics serves one group engine's private registry — the
// same families the single-tenant daemon exposes, scoped to the group.
func (s *Server) handleGroupMetrics(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("group")
	for _, g := range s.multi.groups {
		if g.name == name {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			//harmony:allow errflow HTTP response write; the client disconnecting is not an error we can handle
			io.WriteString(w, g.reg.Render())
			return
		}
	}
	writeJSONError(w, http.StatusNotFound, fmt.Sprintf("tenant: no group %q", name))
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//harmony:allow errflow HTTP response write; the client disconnecting is not an error we can handle
	_ = enc.Encode(v)
}

func writeJSONError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
