package tenant

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"harmony/internal/daemon"
	"harmony/internal/trace"
)

func newTestServer(t *testing.T, cfg ServerConfig, specs ...Spec) (*Server, *Multi) {
	t.Helper()
	if len(specs) == 0 {
		specs = []Spec{{Name: "app"}}
	}
	m, err := New(Config{Base: testBase(t), Tenants: specs})
	if err != nil {
		t.Fatal(err)
	}
	return NewServer(m, cfg), m
}

func taskNDJSON(tasks ...trace.Task) string {
	var sb strings.Builder
	for _, task := range tasks {
		b, _ := json.Marshal(task)
		sb.Write(b)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func postTasks(t *testing.T, url, body string) (int, ingestResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/tasks", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ir ingestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, ir
}

func TestRoutingByTenantTag(t *testing.T) {
	s, m := newTestServer(t, ServerConfig{},
		Spec{Name: "web", SLODelay: 60}, Spec{Name: "api", SLODelay: 100})
	srv := httptest.NewServer(s)
	defer srv.Close()

	code, ir := postTasks(t, srv.URL, taskNDJSON(
		gratisTask(1, 0, 60, "web"),
		gratisTask(2, 1, 60, "api"),
		gratisTask(3, 2, 60, "web"),
		gratisTask(4, 3, 60, "nobody"), // unknown: counted invalid
	))
	if code != http.StatusAccepted || ir.Accepted != 3 || ir.Invalid != 1 {
		t.Fatalf("status %d response %+v", code, ir)
	}
	s.Flush()
	snap := m.Snapshot()
	got := map[string]uint64{}
	for _, ts := range snap.Tenants {
		got[ts.Name] = ts.TasksIngested
	}
	if got["web"] != 2 || got["api"] != 1 {
		t.Errorf("per-tenant counts = %v", got)
	}

	// ?tenant= supplies the tag for untagged tasks.
	resp, err := http.Post(srv.URL+"/v1/tasks?tenant=api", "application/x-ndjson",
		strings.NewReader(taskNDJSON(gratisTask(5, 4, 60, ""))))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	s.Flush()
	snap = m.Snapshot()
	for _, ts := range snap.Tenants {
		if ts.Name == "api" && ts.TasksIngested != 2 {
			t.Errorf("api after default-tag post = %d", ts.TasksIngested)
		}
	}

	// All-unknown is a 400.
	code, ir = postTasks(t, srv.URL, taskNDJSON(gratisTask(6, 5, 60, "ghost")))
	if code != http.StatusBadRequest || ir.Invalid != 1 || ir.Accepted != 0 {
		t.Errorf("all-unknown: status %d response %+v", code, ir)
	}
}

func TestPerTenantBackpressure429(t *testing.T) {
	off := false
	s, m := newTestServer(t, ServerConfig{QueueSize: 4, startWorkers: &off},
		Spec{Name: "web", SLODelay: 60}, Spec{Name: "api", SLODelay: 100})
	srv := httptest.NewServer(s)
	defer srv.Close()

	var tasks []trace.Task
	for i := 0; i < 10; i++ {
		tasks = append(tasks, gratisTask(uint64(i), float64(i), 60, "web"))
	}
	code, ir := postTasks(t, srv.URL, taskNDJSON(tasks...))
	if code != http.StatusTooManyRequests || ir.Accepted != 4 || ir.Rejected != 6 || ir.Error == "" {
		t.Fatalf("status %d response %+v", code, ir)
	}

	// The other tenant's lane is unaffected.
	code, ir = postTasks(t, srv.URL, taskNDJSON(gratisTask(99, 0, 60, "api")))
	if code != http.StatusAccepted || ir.Accepted != 1 {
		t.Errorf("independent lane: status %d response %+v", code, ir)
	}

	// Rejections are charged to the tenant.
	for _, ts := range m.Snapshot().Tenants {
		if ts.Name == "web" && ts.TasksRejected != 6 {
			t.Errorf("web rejected = %d, want 6", ts.TasksRejected)
		}
	}

	// Draining frees capacity.
	for _, q := range s.ordered {
		go s.ingestWorker(q)
	}
	s.Flush()
	code, _ = postTasks(t, srv.URL, taskNDJSON(gratisTask(100, 0, 60, "web")))
	if code != http.StatusAccepted {
		t.Errorf("post-drain status = %d", code)
	}
}

// TestGlobalCapBackpressure fills the shared cap from one tenant and
// checks the other tenant is refused admission even with queue room.
func TestGlobalCapBackpressure(t *testing.T) {
	off := false
	s, _ := newTestServer(t, ServerConfig{QueueSize: 64, GlobalQueueCap: 6, startWorkers: &off},
		Spec{Name: "web", SLODelay: 60}, Spec{Name: "api", SLODelay: 100})
	srv := httptest.NewServer(s)
	defer srv.Close()

	var tasks []trace.Task
	for i := 0; i < 10; i++ {
		tasks = append(tasks, gratisTask(uint64(i), float64(i), 60, "web"))
	}
	code, ir := postTasks(t, srv.URL, taskNDJSON(tasks...))
	if code != http.StatusTooManyRequests || ir.Accepted != 6 || ir.Rejected != 4 {
		t.Fatalf("status %d response %+v", code, ir)
	}
	code, ir = postTasks(t, srv.URL, taskNDJSON(gratisTask(99, 0, 60, "api")))
	if code != http.StatusTooManyRequests || ir.Rejected != 1 {
		t.Errorf("global cap must refuse the second tenant: status %d response %+v", code, ir)
	}
}

// TestConcurrentProducersBackpressure hammers one tenant's queue from
// concurrent producers and checks the accepted/rejected accounting adds
// up exactly to the cap — the add-then-check admission cannot overshoot.
func TestConcurrentProducersBackpressure(t *testing.T) {
	off := false
	s, m := newTestServer(t, ServerConfig{QueueSize: 8, GlobalQueueCap: 8, startWorkers: &off},
		Spec{Name: "app"})
	srv := httptest.NewServer(s)
	defer srv.Close()

	const producers, perProducer = 4, 10
	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted, rejected := 0, 0
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var tasks []trace.Task
			for i := 0; i < perProducer; i++ {
				tasks = append(tasks, gratisTask(uint64(p*100+i), float64(i), 60, "app"))
			}
			resp, err := http.Post(srv.URL+"/v1/tasks", "application/x-ndjson",
				strings.NewReader(taskNDJSON(tasks...)))
			if err != nil {
				t.Errorf("post: %v", err)
				return
			}
			defer resp.Body.Close()
			var ir ingestResponse
			if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
				t.Errorf("decode: %v", err)
				return
			}
			mu.Lock()
			accepted += ir.Accepted
			rejected += ir.Rejected
			mu.Unlock()
		}(p)
	}
	wg.Wait()

	if accepted != 8 || rejected != producers*perProducer-8 {
		t.Errorf("accepted %d rejected %d, want 8 and %d", accepted, rejected, producers*perProducer-8)
	}
	if got := s.globalDepth.Load(); got != 8 {
		t.Errorf("global depth = %d, want 8", got)
	}
	for _, ts := range m.Snapshot().Tenants {
		if ts.TasksRejected != uint64(rejected) {
			t.Errorf("tenant rejected = %d, want %d", ts.TasksRejected, rejected)
		}
	}
	if !strings.Contains(m.cfg.Registry.Render(),
		`harmonyd_tenant_tasks_rejected_total{tenant="app"} 32`) {
		t.Error("rejected counter not exposed on the tenant registry")
	}
}

// TestThreeTenantEndpoints is the ≥3-tenant acceptance path: tagged
// ingest over HTTP, a forced tick, and per-tenant/per-group reporting on
// /v1/stats and /metrics.
func TestThreeTenantEndpoints(t *testing.T) {
	s, _ := newTestServer(t, ServerConfig{},
		Spec{Name: "web", SLODelay: 60, Share: 2},
		Spec{Name: "api", SLODelay: 100},
		Spec{Name: "batch"})
	srv := httptest.NewServer(s)
	defer srv.Close()

	var tasks []trace.Task
	id := uint64(1)
	for j := 0; j < 12; j++ {
		tasks = append(tasks, gratisTask(id, float64(j*5), 60, []string{"web", "api", "batch"}[j%3]))
		id++
	}
	for j := 0; j < 4; j++ {
		tasks = append(tasks, prodTask(id, float64(j*11), 400, "api"))
		id++
	}
	code, ir := postTasks(t, srv.URL, taskNDJSON(tasks...))
	if code != http.StatusAccepted || ir.Accepted != 16 {
		t.Fatalf("status %d response %+v", code, ir)
	}

	// Forced tick returns every group's fresh plan.
	resp, err := http.Post(srv.URL+"/v1/tick", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var tick struct {
		Groups map[string]*daemon.Plan `json:"groups"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tick); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(tick.Groups) != 2 {
		t.Fatalf("tick: status %d groups %v", resp.StatusCode, tick.Groups)
	}
	if tick.Groups["g0"].PeriodIndex != 1 || tick.Groups["g1"].PeriodIndex != 1 {
		t.Errorf("plans = %+v", tick.Groups)
	}

	// /v1/plan serves the same group plans.
	resp, err = http.Get(srv.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	var planBody struct {
		Groups map[string]*daemon.Plan `json:"groups"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&planBody); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(planBody.Groups) != 2 {
		t.Errorf("plan groups = %v", planBody.Groups)
	}

	// /v1/stats carries the per-tenant and per-group accounting.
	resp, err = http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		MultiStats
		Queues      map[string]queueStats `json:"queues"`
		GlobalDepth int64                 `json:"globalDepth"`
		GlobalCap   int                   `json:"globalCap"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(stats.Tenants) != 3 || len(stats.Groups) != 2 {
		t.Fatalf("stats shape: %+v", stats)
	}
	wantCounts := map[string]uint64{"web": 4, "api": 8, "batch": 4}
	for _, ts := range stats.Tenants {
		if ts.TasksIngested != wantCounts[ts.Name] {
			t.Errorf("%s ingested = %d, want %d", ts.Name, ts.TasksIngested, wantCounts[ts.Name])
		}
	}
	for _, gs := range stats.Groups {
		if gs.CostDollars <= 0 || gs.Engine.Ticks != 1 {
			t.Errorf("group %s stats = %+v", gs.Name, gs)
		}
	}
	if len(stats.Queues) != 3 || stats.GlobalCap != 65536 {
		t.Errorf("queues = %v, cap = %d", stats.Queues, stats.GlobalCap)
	}

	// /metrics exposes the labeled tenant/group families.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	rendered := string(raw)
	for _, want := range []string{
		`harmonyd_tenant_tasks_ingested_total{tenant="api"} 8`,
		`harmonyd_tenant_tasks_ingested_total{tenant="web"} 4`,
		`harmonyd_group_cost_dollars{group="g0"}`,
		`harmonyd_group_ticks_total{group="g1"} 1`,
		`harmonyd_group_slo_violations_total`,
		`harmonyd_tenant_queue_depth{tenant="batch"}`,
	} {
		if !strings.Contains(rendered, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Per-group engine series live under /metrics/{group}.
	resp, err = http.Get(srv.URL + "/metrics/g0")
	if err != nil {
		t.Fatal(err)
	}
	raw, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "harmonyd_ticks_total 1") {
		t.Error("/metrics/g0 missing the group engine series")
	}
	resp, err = http.Get(srv.URL + "/metrics/g9")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown group metrics = %d", resp.StatusCode)
	}
}

// TestN1EndToEndBitIdentical streams a single-tenant workload through the
// multi-tenant HTTP path — POST /v1/tasks per period, POST /v1/tick at
// each boundary — and checks the final plan is byte-for-byte the
// single-tenant daemon.Replay plan.
func TestN1EndToEndBitIdentical(t *testing.T) {
	const periods = 3
	tasks := stream(periods, "app")

	want, err := daemon.Replay(testBase(t), tasks, periods)
	if err != nil {
		t.Fatal(err)
	}

	s, _ := newTestServer(t, ServerConfig{}, Spec{Name: "app"})
	srv := httptest.NewServer(s)
	defer srv.Close()

	i := 0
	for k := 1; k <= periods; k++ {
		boundary := float64(k) * defaultPeriodSeconds
		var window []trace.Task
		for i < len(tasks) && tasks[i].Submit < boundary {
			window = append(window, tasks[i])
			i++
		}
		if len(window) > 0 {
			code, ir := postTasks(t, srv.URL, taskNDJSON(window...))
			if code != http.StatusAccepted || ir.Accepted != len(window) {
				t.Fatalf("period %d ingest: status %d response %+v", k, code, ir)
			}
		}
		resp, err := http.Post(srv.URL+"/v1/tick", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tick %d status = %d", k, resp.StatusCode)
		}
	}

	resp, err := http.Get(srv.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	var planBody struct {
		Groups map[string]*daemon.Plan `json:"groups"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&planBody); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := planBody.Groups["g0"]
	if got == nil {
		t.Fatalf("no g0 plan: %v", planBody.Groups)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if string(wantJSON) != string(gotJSON) {
		t.Errorf("N=1 HTTP plan differs:\n  daemon: %s\n  tenant: %s", wantJSON, gotJSON)
	}
}

func TestPanicRecoveryAndHealth(t *testing.T) {
	s, _ := newTestServer(t, ServerConfig{})
	s.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
}
