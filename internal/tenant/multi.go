package tenant

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"harmony/internal/classify"
	"harmony/internal/daemon"
	"harmony/internal/metrics"
	"harmony/internal/trace"
)

// Config parameterizes the multi-tenant controller.
type Config struct {
	// Base is the per-group engine configuration: machines, models,
	// characterization, mode, period, and so on. Base.SLODelay and
	// Base.Registry are overridden per group (each group gets the SLO the
	// grouping rule assigns and a private metrics registry).
	Base daemon.Config
	// Tenants declares the applications sharing the provisioning plane.
	Tenants []Spec
	// SLOTolerance is the grouping compatibility factor (default 2).
	SLOTolerance float64
	// Registry receives the tenant- and group-level series; a private
	// registry is created when nil. Per-group engine metrics live in each
	// group's own registry (Group.Registry), not here.
	Registry *metrics.Registry
}

// Routing errors.
var (
	// ErrUnknownTenant is returned when a task names a tenant that does
	// not exist (or carries no tenant tag while several are configured).
	ErrUnknownTenant = errors.New("tenant: unknown tenant")
	// ErrNoPlans is returned by Plans before any group has ticked.
	ErrNoPlans = errors.New("tenant: no plans yet")
)

// Group is one provisioning group: a set of SLO-compatible tenants served
// by a private daemon.Engine, so the group owns its own online
// classification state, warm LP basis, and delta-placement state.
type Group struct {
	name    string
	slo     float64 // smallest member SLO; 0 = engine defaults
	eng     *daemon.Engine
	reg     *metrics.Registry
	members []*tenantState

	// Cost model inputs, mirrored from the effective engine config.
	//harmony:unit(kW)
	idleKW []float64 // per machine type
	//harmony:unit($)
	switchCost []float64 // per on/off transition, per type
	//harmony:unit($/kWh)
	price float64
	//harmony:unit(h)
	periodH float64 // model time per period

	mu sync.Mutex
	//harmony:guardedby(mu)
	prevActive []int
	//harmony:guardedby(mu)
	ticks uint64
	//harmony:guardedby(mu)
	violations uint64
	//harmony:guardedby(mu)
	//harmony:unit($)
	cost float64
	//harmony:guardedby(mu)
	lastPlan *daemon.Plan
}

// Name returns the group's deterministic identifier ("g0", "g1", ...).
func (g *Group) Name() string { return g.name }

// SLO returns the group's provisioning SLO (seconds of target mean
// scheduling delay for production work; 0 means the daemon defaults).
func (g *Group) SLO() float64 { return g.slo }

// Engine returns the group's control-loop engine.
func (g *Group) Engine() *daemon.Engine { return g.eng }

// Registry returns the group engine's private metrics registry.
func (g *Group) Registry() *metrics.Registry { return g.reg }

// tenantState is the per-tenant accounting the multi layer owns.
type tenantState struct {
	spec    Spec
	group   *Group
	labeler *classify.Labeler

	mu sync.Mutex
	//harmony:guardedby(mu)
	ingested uint64
	//harmony:guardedby(mu)
	invalid uint64
	//harmony:guardedby(mu)
	rejected uint64 // queue-full rejections, recorded by the server
	//harmony:guardedby(mu)
	byClass map[string]uint64
	//harmony:guardedby(mu)
	window uint64 // tasks since the group's last tick (cost attribution)
	//harmony:guardedby(mu)
	//harmony:unit($)
	cost float64
}

// Multi owns N tenants and their provisioning groups. Ingest may be called
// from any goroutine; Tick runs every group's control loop concurrently
// (each group serializes its own ticks exactly like a single engine).
type Multi struct {
	cfg     Config
	groups  []*Group
	tenants []*tenantState // sorted by name
	byName  map[string]*tenantState
	single  *tenantState // untagged-ingest target when exactly one tenant

	mTenantTasks    *metrics.CounterVec
	mTenantInvalid  *metrics.CounterVec
	mTenantRejected *metrics.CounterVec
	mTenantCost     *metrics.GaugeVec
	mGroupCost      *metrics.GaugeVec
	mGroupViol      *metrics.CounterVec
	mGroupTicks     *metrics.CounterVec
	mGroupActive    *metrics.GaugeVec
	mGroupCont      *metrics.GaugeVec
	mGroupDropped   *metrics.GaugeVec
	mGroupDeltaRe   *metrics.GaugeVec
	mGroupDeltaRp   *metrics.GaugeVec
	mGroupDeltaFu   *metrics.GaugeVec
}

// Mirror of the daemon.Config defaults the cost model depends on; they
// must track (*daemon.Config).defaults, and TestCostDefaultsMatchEngine
// pins the period one through the engine.
const (
	defaultPeriodSeconds = 300  //harmony:unit(s)
	defaultPricePerKWh   = 0.08 //harmony:unit($/kWh)
	defaultSwitchDollars = 0.01 //harmony:unit($)
)

// New validates the configuration, groups the tenants, and builds one
// engine per group.
func New(cfg Config) (*Multi, error) {
	if err := ValidateSpecs(cfg.Tenants); err != nil {
		return nil, err
	}
	if cfg.SLOTolerance == 0 {
		cfg.SLOTolerance = DefaultSLOTolerance
	}
	if cfg.SLOTolerance < 1 {
		return nil, fmt.Errorf("tenant: SLO tolerance %v < 1", cfg.SLOTolerance)
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}

	period := cfg.Base.PeriodSeconds
	if period <= 0 {
		period = defaultPeriodSeconds
	}
	price := cfg.Base.PricePerKWh
	if price <= 0 {
		price = defaultPricePerKWh
	}
	switchDollars := cfg.Base.SwitchCostDollars
	if switchDollars <= 0 {
		switchDollars = defaultSwitchDollars
	}
	maxIdle := 0.0
	for _, mdl := range cfg.Base.Models {
		if mdl.IdleWatts > maxIdle {
			maxIdle = mdl.IdleWatts
		}
	}

	m := &Multi{cfg: cfg, byName: make(map[string]*tenantState, len(cfg.Tenants))}
	for gi, members := range GroupSpecs(cfg.Tenants, cfg.SLOTolerance) {
		g := &Group{
			name:       fmt.Sprintf("g%d", gi),
			slo:        members[0].SLODelay,
			reg:        metrics.NewRegistry(),
			price:      price,
			periodH:    period / 3600,
			prevActive: make([]int, len(cfg.Base.Machines)),
		}
		engCfg := cfg.Base
		engCfg.Registry = g.reg
		engCfg.SLODelay = groupSLODelay(g.slo)
		eng, err := daemon.NewEngine(engCfg)
		if err != nil {
			return nil, fmt.Errorf("tenant: group %s engine: %w", g.name, err)
		}
		g.eng = eng
		g.idleKW = make([]float64, len(cfg.Base.Models))
		g.switchCost = make([]float64, len(cfg.Base.Models))
		for i, mdl := range cfg.Base.Models {
			g.idleKW[i] = mdl.IdleWatts / 1000
			if maxIdle > 0 {
				g.switchCost[i] = switchDollars * mdl.IdleWatts / maxIdle
			}
		}
		for _, s := range members {
			if s.Share == 0 {
				s.Share = 1
			}
			ts := &tenantState{
				spec:    s,
				group:   g,
				labeler: classify.NewLabeler(cfg.Base.Char),
				byClass: make(map[string]uint64),
			}
			g.members = append(g.members, ts)
			m.tenants = append(m.tenants, ts)
			m.byName[s.Name] = ts
		}
		m.groups = append(m.groups, g)
	}
	sortTenants(m.tenants)
	if len(m.tenants) == 1 {
		m.single = m.tenants[0]
	}

	r := cfg.Registry
	m.mTenantTasks = r.CounterVec("harmonyd_tenant_tasks_ingested_total", "Tasks ingested, by tenant.", "tenant")
	m.mTenantInvalid = r.CounterVec("harmonyd_tenant_tasks_invalid_total", "Tasks rejected by validation, by tenant.", "tenant")
	m.mTenantRejected = r.CounterVec("harmonyd_tenant_tasks_rejected_total", "Tasks rejected with 429 because the tenant's queue (or the global cap) was full.", "tenant")
	m.mTenantCost = r.GaugeVec("harmonyd_tenant_cost_dollars", "Cumulative provisioning cost attributed to the tenant.", "tenant")
	m.mGroupCost = r.GaugeVec("harmonyd_group_cost_dollars", "Cumulative provisioning cost of the group (idle energy + switching).", "group")
	m.mGroupViol = r.CounterVec("harmonyd_group_slo_violations_total", "Control periods whose packing dropped containers (SLO at risk), by group.", "group")
	m.mGroupTicks = r.CounterVec("harmonyd_group_ticks_total", "Completed control-period ticks, by group.", "group")
	m.mGroupActive = r.GaugeVec("harmonyd_group_machines_active", "Machines the group's current plan keeps powered.", "group")
	m.mGroupCont = r.GaugeVec("harmonyd_group_containers_planned", "Container slots in the group's current plan.", "group")
	m.mGroupDropped = r.GaugeVec("harmonyd_group_containers_dropped", "Containers the group's current packing could not place.", "group")
	m.mGroupDeltaRe = r.GaugeVec("harmonyd_group_delta_reused_types", "Machine types whose packings the group's delta placement reused (cumulative).", "group")
	m.mGroupDeltaRp = r.GaugeVec("harmonyd_group_delta_repacked_types", "Machine types the group's delta placement repacked (cumulative).", "group")
	m.mGroupDeltaFu = r.GaugeVec("harmonyd_group_delta_full_repacks", "Group realizations that fell back to a full repack (cumulative).", "group")
	return m, nil
}

// groupSLODelay maps a group SLO to the per-priority-group delay targets,
// preserving the daemon's default 120/300/900 ratios. A zero SLO keeps the
// engine defaults — the N=1 equivalence contract depends on this.
func groupSLODelay(slo float64) map[trace.PriorityGroup]float64 {
	if slo <= 0 {
		return nil
	}
	return map[trace.PriorityGroup]float64{
		trace.Production: slo,
		trace.Other:      slo * 2.5,
		trace.Gratis:     slo * 7.5,
	}
}

func sortTenants(xs []*tenantState) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j].spec.Name < xs[j-1].spec.Name; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Groups returns the provisioning groups in deterministic order.
func (m *Multi) Groups() []*Group { return m.groups }

// TenantNames returns the tenant names in deterministic (sorted) order.
func (m *Multi) TenantNames() []string {
	names := make([]string, len(m.tenants))
	for i, ts := range m.tenants {
		names[i] = ts.spec.Name
	}
	return names
}

// resolve maps a task's tenant tag to its state. An empty tag routes to
// the single tenant when exactly one is configured.
func (m *Multi) resolve(name string) (*tenantState, error) {
	if name == "" {
		if m.single != nil {
			return m.single, nil
		}
		return nil, fmt.Errorf("%w: task carries no tenant tag and %d tenants are configured",
			ErrUnknownTenant, len(m.tenants))
	}
	ts, ok := m.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	return ts, nil
}

// Ingest routes one task to its tenant's group engine and keeps the
// per-tenant accounting: ingest counts, per-class classification counts
// (the tenant's own labeler state), and the arrival window used for cost
// attribution at the next tick.
func (m *Multi) Ingest(t trace.Task) error {
	ts, err := m.resolve(t.Tenant)
	if err != nil {
		return err
	}
	if err := ts.group.eng.Ingest(t); err != nil {
		ts.mu.Lock()
		ts.invalid++
		ts.mu.Unlock()
		m.mTenantInvalid.With(ts.spec.Name).Inc()
		return err
	}
	classKey := "unclassified"
	if id, ok := ts.labeler.Initial(t); ok {
		classKey = fmt.Sprintf("class%d", id.Class)
	}
	ts.mu.Lock()
	ts.ingested++
	ts.window++
	ts.byClass[classKey]++
	ts.mu.Unlock()
	m.mTenantTasks.With(ts.spec.Name).Inc()
	return nil
}

// recordRejected charges queue-full rejections to a tenant (server path).
func (m *Multi) recordRejected(ts *tenantState, n int) {
	ts.mu.Lock()
	ts.rejected += uint64(n)
	ts.mu.Unlock()
	m.mTenantRejected.With(ts.spec.Name).Add(float64(n))
}

// Tick runs one control period for every group concurrently and returns
// the fresh plans by group name. Groups are fully independent — each has
// its own engine, LP basis, and placement state — so concurrent group
// ticks are race-free and each group's output is bit-identical to ticking
// it alone. Per-group errors (including daemon.ErrTickInFlight) are
// joined; groups that succeeded still publish their plans.
func (m *Multi) Tick(ctx context.Context) (map[string]*daemon.Plan, error) {
	type result struct {
		plan *daemon.Plan
		err  error
	}
	results := make([]result, len(m.groups))
	var wg sync.WaitGroup
	for i, g := range m.groups {
		wg.Add(1)
		go func(i int, g *Group) {
			defer wg.Done()
			plan, err := g.eng.Tick(ctx)
			if err == nil {
				m.accountTick(g, plan)
			}
			results[i] = result{plan, err}
		}(i, g)
	}
	wg.Wait()

	plans := make(map[string]*daemon.Plan, len(m.groups))
	var errs []error
	for i, g := range m.groups {
		if results[i].err != nil {
			errs = append(errs, fmt.Errorf("group %s: %w", g.name, results[i].err))
			continue
		}
		plans[g.name] = results[i].plan
	}
	return plans, errors.Join(errs...)
}

// accountTick books one completed group tick: provisioning cost (idle
// energy of powered machines plus switch transitions), SLO-violation
// accounting (a period whose packing dropped containers under-provisioned
// some class), and the tenant cost attribution weighted by share × tasks
// ingested in the closed window.
func (m *Multi) accountTick(g *Group, plan *daemon.Plan) {
	g.mu.Lock()
	cost := 0.0
	for i, mp := range plan.Machines {
		cost += float64(mp.Active) * g.idleKW[i] * g.periodH * g.price
		delta := mp.Active - g.prevActive[i]
		if delta < 0 {
			delta = -delta
		}
		cost += float64(delta) * g.switchCost[i]
		g.prevActive[i] = mp.Active
	}
	g.ticks++
	g.cost += cost
	violated := plan.Dropped > 0
	if violated {
		g.violations++
	}
	g.lastPlan = plan
	totalCost := g.cost
	g.mu.Unlock()

	// Close the members' arrival windows and split the tick's cost by
	// share-weighted window size (by share alone in an idle period).
	weights := make([]float64, len(g.members))
	sum := 0.0
	for i, ts := range g.members {
		ts.mu.Lock()
		w := float64(ts.window)
		ts.window = 0
		ts.mu.Unlock()
		weights[i] = ts.spec.Share * w
		sum += weights[i]
	}
	if sum == 0 {
		for i, ts := range g.members {
			weights[i] = ts.spec.Share
			sum += weights[i]
		}
	}
	for i, ts := range g.members {
		if sum == 0 {
			break
		}
		ts.mu.Lock()
		ts.cost += cost * weights[i] / sum
		tCost := ts.cost
		ts.mu.Unlock()
		m.mTenantCost.With(ts.spec.Name).Set(tCost)
	}

	snap := g.eng.Snapshot()
	m.mGroupTicks.With(g.name).Inc()
	m.mGroupCost.With(g.name).Set(totalCost)
	if violated {
		m.mGroupViol.With(g.name).Inc()
	}
	m.mGroupActive.With(g.name).Set(float64(plan.TotalActive))
	m.mGroupCont.With(g.name).Set(float64(plan.TotalContainers))
	m.mGroupDropped.With(g.name).Set(float64(plan.Dropped))
	m.mGroupDeltaRe.With(g.name).Set(float64(snap.DeltaReusedTypes))
	m.mGroupDeltaRp.With(g.name).Set(float64(snap.DeltaRepackedTypes))
	m.mGroupDeltaFu.With(g.name).Set(float64(snap.DeltaFullRepacks))
}

// Plans returns the most recent plan of every group that has one.
func (m *Multi) Plans() (map[string]*daemon.Plan, error) {
	out := make(map[string]*daemon.Plan, len(m.groups))
	for _, g := range m.groups {
		g.mu.Lock()
		if g.lastPlan != nil {
			out[g.name] = g.lastPlan
		}
		g.mu.Unlock()
	}
	if len(out) == 0 {
		return nil, ErrNoPlans
	}
	return out, nil
}

// TenantStats is the per-tenant observability snapshot.
type TenantStats struct {
	Name             string            `json:"name"`
	Group            string            `json:"group"`
	SLODelay         float64           `json:"sloDelay,omitempty"`
	Share            float64           `json:"share"`
	TasksIngested    uint64            `json:"tasksIngested"`
	TasksInvalid     uint64            `json:"tasksInvalid,omitempty"`
	TasksRejected    uint64            `json:"tasksRejected,omitempty"`
	TasksByClass     map[string]uint64 `json:"tasksByClass,omitempty"`
	CostDollars      float64           `json:"costDollars"`
	SLOViolations    uint64            `json:"sloViolations"`
	SLOViolationRate float64           `json:"sloViolationRate"`
}

// GroupStats is the per-group observability snapshot; Engine embeds the
// group pipeline's full daemon.Stats (including the delta-placement
// counters).
type GroupStats struct {
	Name             string       `json:"name"`
	SLODelay         float64      `json:"sloDelay,omitempty"`
	Tenants          []string     `json:"tenants"`
	CostDollars      float64      `json:"costDollars"`
	SLOViolations    uint64       `json:"sloViolations"`
	SLOViolationRate float64      `json:"sloViolationRate"`
	Engine           daemon.Stats `json:"engine"`
}

// MultiStats is the /v1/stats payload of the multi-tenant daemon.
type MultiStats struct {
	Tenants []TenantStats `json:"tenants"`
	Groups  []GroupStats  `json:"groups"`
}

// Snapshot returns a deterministic copy of the multi-tenant statistics.
func (m *Multi) Snapshot() MultiStats {
	var out MultiStats
	groupRate := make(map[*Group][2]float64, len(m.groups))
	for _, g := range m.groups {
		g.mu.Lock()
		ticks, violations, cost := g.ticks, g.violations, g.cost
		g.mu.Unlock()
		rate := 0.0
		if ticks > 0 {
			rate = float64(violations) / float64(ticks)
		}
		groupRate[g] = [2]float64{float64(violations), rate}
		names := make([]string, len(g.members))
		for i, ts := range g.members {
			names[i] = ts.spec.Name
		}
		out.Groups = append(out.Groups, GroupStats{
			Name:             g.name,
			SLODelay:         g.slo,
			Tenants:          names,
			CostDollars:      cost,
			SLOViolations:    violations,
			SLOViolationRate: rate,
			Engine:           g.eng.Snapshot(),
		})
	}
	for _, ts := range m.tenants {
		ts.mu.Lock()
		byClass := make(map[string]uint64, len(ts.byClass))
		for k, v := range ts.byClass {
			byClass[k] = v
		}
		st := TenantStats{
			Name:          ts.spec.Name,
			Group:         ts.group.name,
			SLODelay:      ts.spec.SLODelay,
			Share:         ts.spec.Share,
			TasksIngested: ts.ingested,
			TasksInvalid:  ts.invalid,
			TasksRejected: ts.rejected,
			TasksByClass:  byClass,
			CostDollars:   ts.cost,
		}
		ts.mu.Unlock()
		gv := groupRate[ts.group]
		st.SLOViolations = uint64(gv[0])
		st.SLOViolationRate = gv[1]
		out.Tenants = append(out.Tenants, st)
	}
	return out
}

// Replay is the batch reference for the multi-tenant daemon: a fresh Multi
// is driven over the prefix of a (tenant-tagged) task stream covered by
// the given number of control periods — ingesting in submit order and
// ticking every group at each boundary — and the final plans are
// returned. A stream POSTed through the HTTP path with a tick per
// boundary must produce bit-identical plans per group.
func Replay(cfg Config, tasks []trace.Task, ticks int) (map[string]*daemon.Plan, error) {
	if ticks <= 0 {
		return nil, errors.New("tenant: replay needs at least one tick")
	}
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	period := cfg.Base.PeriodSeconds
	if period <= 0 {
		period = defaultPeriodSeconds
	}
	i := 0
	for k := 1; k <= ticks; k++ {
		boundary := float64(k) * period
		for i < len(tasks) && tasks[i].Submit < boundary {
			if err := m.Ingest(tasks[i]); err != nil {
				return nil, err
			}
			i++
		}
		if _, err := m.Tick(context.Background()); err != nil {
			return nil, fmt.Errorf("tenant: replay tick %d: %w", k, err)
		}
	}
	return m.Plans()
}
