package tenant

import (
	"context"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"harmony/internal/classify"
	"harmony/internal/daemon"
	"harmony/internal/energy"
	"harmony/internal/metrics"
	"harmony/internal/trace"
)

// testCharDoc mirrors the daemon test characterization: a gratis class
// with a short/long split and a production class with one short sub-class.
const testCharDoc = `{
  "version": 1,
  "classes": [
    {
      "id": 0, "group": 1,
      "cpu": 0.02, "mem": 0.02, "cpuStd": 0.005, "memStd": 0.005,
      "count": 1000,
      "cpuQuantiles": [0.025, 0.03, 0.035, 0.05],
      "memQuantiles": [0.025, 0.03, 0.035, 0.05],
      "sub": [
        {"MeanDuration": 60, "SqCV": 1.2, "MaxDuration": 100, "Count": 900},
        {"MeanDuration": 5000, "SqCV": 0.5, "MaxDuration": 20000, "Count": 100}
      ],
      "logCentroid": [-3.912, -3.912]
    },
    {
      "id": 1, "group": 3,
      "cpu": 0.1, "mem": 0.1, "cpuStd": 0.02, "memStd": 0.02,
      "count": 50,
      "cpuQuantiles": [0.12, 0.13, 0.14, 0.16],
      "memQuantiles": [0.12, 0.13, 0.14, 0.16],
      "sub": [
        {"MeanDuration": 300, "SqCV": 1.0, "MaxDuration": 2000, "Count": 50}
      ],
      "logCentroid": [-2.303, -2.303]
    }
  ]
}`

func testChar(t testing.TB) *classify.Characterization {
	t.Helper()
	ch, err := classify.Load(strings.NewReader(testCharDoc))
	if err != nil {
		t.Fatalf("load test characterization: %v", err)
	}
	return ch
}

// testBase returns the daemon config the groups run: the Table II cluster
// scaled down 100x with the two-class characterization.
func testBase(t testing.TB) daemon.Config {
	t.Helper()
	models := energy.TableII()
	machines := make([]trace.MachineType, len(models))
	for i := range models {
		models[i].Count /= 100
		if models[i].Count < 1 {
			models[i].Count = 1
		}
		machines[i] = models[i].MachineType(i + 1)
	}
	return daemon.Config{Machines: machines, Models: models, Char: testChar(t)}
}

// gratisTask builds a task that labels into class 0 (short sub first).
func gratisTask(id uint64, submit, duration float64, tenant string) trace.Task {
	return trace.Task{ID: id, Submit: submit, Duration: duration,
		CPU: 0.02, Mem: 0.02, Priority: 0, Tenant: tenant}
}

// prodTask builds a task that labels into class 1.
func prodTask(id uint64, submit, duration float64, tenant string) trace.Task {
	return trace.Task{ID: id, Submit: submit, Duration: duration,
		CPU: 0.1, Mem: 0.1, Priority: 10, Tenant: tenant}
}

func TestLoadValidation(t *testing.T) {
	good := `{"tenants":[{"name":"a","sloDelay":60},{"name":"b"}],"sloTolerance":3}`
	doc, err := Load(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Tenants) != 2 || doc.SLOTolerance != 3 {
		t.Errorf("doc = %+v", doc)
	}

	bad := []string{
		`{"tenants":[]}`,
		`{"tenants":[{"name":""}]}`,
		`{"tenants":[{"name":"a"},{"name":"a"}]}`,
		`{"tenants":[{"name":"a","sloDelay":-1}]}`,
		`{"tenants":[{"name":"a","share":-2}]}`,
		`{"tenants":[{"name":"a","queueSize":-1}]}`,
		`{"tenants":[{"name":"a"}],"sloTolerance":0.5}`,
		`{"tenants":[{"name":"a"}],"unknown":1}`,
		`{"tenants":[{"name":"a","bogus":true}]}`,
		`not json`,
	}
	for _, body := range bad {
		if _, err := Load(strings.NewReader(body)); err == nil {
			t.Errorf("accepted %q", body)
		}
	}
}

func TestGroupSpecs(t *testing.T) {
	specs := []Spec{
		{Name: "slow", SLODelay: 500},
		{Name: "deflt2"},
		{Name: "fast", SLODelay: 60},
		{Name: "mid", SLODelay: 100},
		{Name: "edge", SLODelay: 130},
		{Name: "deflt1"},
	}
	groups := GroupSpecs(specs, 2)
	want := [][]string{
		{"fast", "mid"}, // 100 <= 60*2
		{"edge"},        // 130 > 120 opens a new group
		{"slow"},
		{"deflt1", "deflt2"}, // default-SLO tenants always last, alone
	}
	if len(groups) != len(want) {
		t.Fatalf("got %d groups, want %d: %+v", len(groups), len(want), groups)
	}
	for i, g := range groups {
		var names []string
		for _, s := range g {
			names = append(names, s.Name)
		}
		if !reflect.DeepEqual(names, want[i]) {
			t.Errorf("group %d = %v, want %v", i, names, want[i])
		}
	}

	// A wider tolerance merges the edge tenant into the first group.
	groups = GroupSpecs(specs, 3)
	if len(groups) != 3 || len(groups[0]) != 3 {
		t.Errorf("tolerance 3 groups = %+v", groups)
	}
}

func TestNewValidation(t *testing.T) {
	base := testBase(t)
	if _, err := New(Config{Base: base}); err == nil {
		t.Error("no tenants accepted")
	}
	if _, err := New(Config{Base: base, Tenants: []Spec{{Name: "a"}}, SLOTolerance: 0.5}); err == nil {
		t.Error("tolerance < 1 accepted")
	}
	if _, err := New(Config{Base: daemon.Config{}, Tenants: []Spec{{Name: "a"}}}); err == nil {
		t.Error("empty base config accepted")
	}
}

// TestCostDefaultsMatchEngine pins the period default the cost model
// mirrors to the engine's actual default.
func TestCostDefaultsMatchEngine(t *testing.T) {
	eng, err := daemon.NewEngine(testBase(t))
	if err != nil {
		t.Fatal(err)
	}
	if eng.PeriodSeconds() != defaultPeriodSeconds {
		t.Errorf("engine default period %v, cost model assumes %v",
			eng.PeriodSeconds(), float64(defaultPeriodSeconds))
	}
}

// stream builds a deterministic two-class arrival stream covering the
// given number of default control periods.
func stream(periods int, tenant string) []trace.Task {
	var tasks []trace.Task
	id := uint64(1)
	for k := 0; k < periods; k++ {
		base := float64(k) * defaultPeriodSeconds
		for j := 0; j < 6+2*(k%3); j++ {
			tasks = append(tasks, gratisTask(id, base+float64(j*7), 60, tenant))
			id++
		}
		for j := 0; j < 2+k%2; j++ {
			tasks = append(tasks, prodTask(id, base+float64(j*31), 400, tenant))
			id++
		}
	}
	return tasks
}

// filterNondet drops the wall-clock-dependent metric lines (the tick
// latency histogram and its derived sum/count) so two registries driven
// over the same model-time stream compare byte-for-byte.
func filterNondet(render string) string {
	var keep []string
	for _, line := range strings.Split(render, "\n") {
		if strings.Contains(line, "harmonyd_tick_duration_seconds") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// TestN1BitIdentical is the equivalence contract: one tenant with the
// default SLO reproduces the single-tenant daemon byte-for-byte — the
// final plan, the stats snapshot, and the engine metrics (modulo the
// wall-clock tick-latency histogram).
func TestN1BitIdentical(t *testing.T) {
	const periods = 3
	tasks := stream(periods, "") // untagged: routes to the single tenant

	// Reference: a bare engine driven exactly as daemon.Replay drives it,
	// with a visible registry.
	baseCfg := testBase(t)
	reg := metrics.NewRegistry()
	engCfg := baseCfg
	engCfg.Registry = reg
	eng, err := daemon.NewEngine(engCfg)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for k := 1; k <= periods; k++ {
		boundary := float64(k) * defaultPeriodSeconds
		for i < len(tasks) && tasks[i].Submit < boundary {
			if err := eng.Ingest(tasks[i]); err != nil {
				t.Fatal(err)
			}
			i++
		}
		if _, err := eng.Tick(context.Background()); err != nil {
			t.Fatalf("reference tick %d: %v", k, err)
		}
	}
	wantPlan, err := eng.Plan()
	if err != nil {
		t.Fatal(err)
	}

	// Multi-tenant N=1 over the same stream, boundary-driven via Replay.
	plans, err := Replay(Config{Base: testBase(t), Tenants: []Spec{{Name: "app"}}}, tasks, periods)
	if err != nil {
		t.Fatal(err)
	}
	gotPlan, ok := plans["g0"]
	if !ok {
		t.Fatalf("replay plans = %v", plans)
	}
	wantJSON, _ := json.Marshal(wantPlan)
	gotJSON, _ := json.Marshal(gotPlan)
	if string(wantJSON) != string(gotJSON) {
		t.Errorf("N=1 plan differs:\n  daemon: %s\n  tenant: %s", wantJSON, gotJSON)
	}

	// Drive a second Multi boundary-by-boundary to compare stats and
	// metrics (Replay's Multi is not returned).
	m2, err := New(Config{Base: testBase(t), Tenants: []Spec{{Name: "app"}}})
	if err != nil {
		t.Fatal(err)
	}
	i = 0
	for k := 1; k <= periods; k++ {
		boundary := float64(k) * defaultPeriodSeconds
		for i < len(tasks) && tasks[i].Submit < boundary {
			if err := m2.Ingest(tasks[i]); err != nil {
				t.Fatal(err)
			}
			i++
		}
		if _, err := m2.Tick(context.Background()); err != nil {
			t.Fatalf("multi tick %d: %v", k, err)
		}
	}
	g := m2.Groups()[0]
	if g.SLO() != 0 {
		t.Errorf("N=1 default group SLO = %v, want 0 (engine defaults)", g.SLO())
	}

	wantStats := eng.Snapshot()
	gotStats := g.Engine().Snapshot()
	wantStats.LastTickSeconds, gotStats.LastTickSeconds = 0, 0
	if !reflect.DeepEqual(wantStats, gotStats) {
		t.Errorf("N=1 stats differ:\n  daemon: %+v\n  tenant: %+v", wantStats, gotStats)
	}

	wantMetrics := filterNondet(reg.Render())
	gotMetrics := filterNondet(g.Registry().Render())
	if wantMetrics != gotMetrics {
		t.Errorf("N=1 engine metrics differ:\n--- daemon ---\n%s\n--- tenant ---\n%s",
			wantMetrics, gotMetrics)
	}
}

// TestGroupingAndAccounting runs three tenants across two groups and
// checks routing, per-tenant counts, classification state, and per-group
// cost and violation accounting.
func TestGroupingAndAccounting(t *testing.T) {
	m, err := New(Config{Base: testBase(t), Tenants: []Spec{
		{Name: "web", SLODelay: 60},
		{Name: "api", SLODelay: 100},
		{Name: "batch"}, // default SLO: own group
	}})
	if err != nil {
		t.Fatal(err)
	}
	groups := m.Groups()
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if groups[0].SLO() != 60 || groups[1].SLO() != 0 {
		t.Errorf("group SLOs = %v, %v", groups[0].SLO(), groups[1].SLO())
	}

	counts := map[string]int{"web": 10, "api": 5, "batch": 7}
	id := uint64(1)
	for name, n := range counts {
		for j := 0; j < n; j++ {
			task := gratisTask(id, float64(j), 60, name)
			if name == "api" {
				task = prodTask(id, float64(j), 400, name)
			}
			if err := m.Ingest(task); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}
	if err := m.Ingest(gratisTask(id, 0, 60, "nobody")); err == nil {
		t.Error("unknown tenant accepted")
	}
	if err := m.Ingest(gratisTask(id, 0, 60, "")); err == nil {
		t.Error("untagged task accepted with 3 tenants configured")
	}

	if _, err := m.Tick(context.Background()); err != nil {
		t.Fatal(err)
	}
	plans, err := m.Plans()
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 || plans["g0"] == nil || plans["g1"] == nil {
		t.Fatalf("plans = %v", plans)
	}

	snap := m.Snapshot()
	if len(snap.Tenants) != 3 || len(snap.Groups) != 2 {
		t.Fatalf("snapshot shape: %d tenants, %d groups", len(snap.Tenants), len(snap.Groups))
	}
	byName := map[string]TenantStats{}
	for _, ts := range snap.Tenants {
		byName[ts.Name] = ts
	}
	for name, n := range counts {
		if got := byName[name].TasksIngested; got != uint64(n) {
			t.Errorf("%s ingested = %d, want %d", name, got, n)
		}
	}
	if byName["web"].Group != "g0" || byName["api"].Group != "g0" || byName["batch"].Group != "g1" {
		t.Errorf("tenant groups: %+v", byName)
	}
	if byName["api"].TasksByClass["class1"] != 5 {
		t.Errorf("api classes = %v", byName["api"].TasksByClass)
	}
	if byName["web"].TasksByClass["class0"] != 10 {
		t.Errorf("web classes = %v", byName["web"].TasksByClass)
	}

	for _, gs := range snap.Groups {
		if gs.CostDollars <= 0 {
			t.Errorf("group %s cost = %v, want > 0 (idle energy of active machines)", gs.Name, gs.CostDollars)
		}
		if gs.SLOViolationRate < 0 || gs.SLOViolationRate > 1 {
			t.Errorf("group %s violation rate = %v", gs.Name, gs.SLOViolationRate)
		}
		if gs.Engine.Ticks != 1 {
			t.Errorf("group %s engine ticks = %d", gs.Name, gs.Engine.Ticks)
		}
	}
	// Tenant cost attribution partitions each group's cost.
	groupCost := map[string]float64{}
	for _, gs := range snap.Groups {
		groupCost[gs.Name] = gs.CostDollars
	}
	sums := map[string]float64{}
	for _, ts := range snap.Tenants {
		if ts.CostDollars <= 0 {
			t.Errorf("tenant %s cost = %v, want > 0", ts.Name, ts.CostDollars)
		}
		sums[ts.Group] += ts.CostDollars
	}
	for name, want := range groupCost {
		if math.Abs(sums[name]-want) > 1e-9 {
			t.Errorf("group %s tenant costs sum to %v, group cost %v", name, sums[name], want)
		}
	}
}

// TestCostAttributionByShare checks the share weighting: two tenants in
// one group with equal arrival windows split the tick cost by Share.
func TestCostAttributionByShare(t *testing.T) {
	m, err := New(Config{Base: testBase(t), Tenants: []Spec{
		{Name: "gold", SLODelay: 60, Share: 3},
		{Name: "bronze", SLODelay: 60, Share: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Groups()) != 1 {
		t.Fatalf("equal SLOs must share a group")
	}
	id := uint64(1)
	for j := 0; j < 8; j++ {
		for _, name := range []string{"gold", "bronze"} {
			if err := m.Ingest(gratisTask(id, float64(j), 60, name)); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}
	if _, err := m.Tick(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	var gold, bronze float64
	for _, ts := range snap.Tenants {
		switch ts.Name {
		case "gold":
			gold = ts.CostDollars
		case "bronze":
			bronze = ts.CostDollars
		}
	}
	if bronze <= 0 || math.Abs(gold-3*bronze) > 1e-9 {
		t.Errorf("share split: gold=%v bronze=%v, want 3:1", gold, bronze)
	}
}

// TestConcurrentTickIngestSnapshot exercises the multi layer under the
// race detector: concurrent tagged ingest, overlapping tick requests, and
// snapshot/plan readers.
func TestConcurrentTickIngestSnapshot(t *testing.T) {
	m, err := New(Config{Base: testBase(t), Tenants: []Spec{
		{Name: "web", SLODelay: 60},
		{Name: "api", SLODelay: 100},
		{Name: "batch"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"web", "api", "batch"}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				task := gratisTask(uint64(w*1000+j), float64(j), 60, names[(w+j)%len(names)])
				if err := m.Ingest(task); err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Overlapping ticks may hit ErrTickInFlight per group; that is
			// the contract, not an error.
			_, _ = m.Tick(context.Background())
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = m.Snapshot()
			_, _ = m.Plans()
		}()
	}
	wg.Wait()

	if _, err := m.Tick(context.Background()); err != nil {
		t.Fatalf("final tick: %v", err)
	}
	snap := m.Snapshot()
	var total uint64
	for _, ts := range snap.Tenants {
		total += ts.TasksIngested
	}
	if total != 200 {
		t.Errorf("ingested %d tasks, want 200", total)
	}
}

// TestReplayRejectsBadInput covers the replay entry points.
func TestReplayRejectsBadInput(t *testing.T) {
	cfg := Config{Base: testBase(t), Tenants: []Spec{{Name: "app"}}}
	if _, err := Replay(cfg, nil, 0); err == nil {
		t.Error("zero ticks accepted")
	}
	if _, err := Replay(Config{Base: testBase(t)}, nil, 1); err == nil {
		t.Error("no tenants accepted")
	}
	bad := []trace.Task{gratisTask(1, 0, 60, "ghost")}
	if _, err := Replay(cfg, bad, 1); err == nil {
		t.Error("unknown tenant tag accepted")
	}
}
