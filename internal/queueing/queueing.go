// Package queueing implements the M/G/c scheduling-delay model of
// Section VI: the Erlang-C waiting probability (Eq. 2), the M/G/c mean
// waiting-time approximation (Eq. 1), and the solver that turns a per-class
// arrival rate, service statistics, and a scheduling-delay SLO into the
// minimum number of containers (§VI).
package queueing

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

var (
	// ErrUnstable is returned when no feasible server count exists
	// within the solver's cap.
	ErrUnstable = errors.New("queueing: system unstable within server cap")
	// ErrBadParam is returned for non-positive rates or delays.
	ErrBadParam = errors.New("queueing: parameters must be positive")
)

// ErlangC returns the probability that an arriving task waits in an M/M/c
// queue with c servers and offered load a = λ/μ (Eq. 2 of the paper). It
// is computed through the numerically stable Erlang-B recurrence, so it
// works for thousands of servers without overflow. The result is 1 when
// the system is saturated (a >= c) and c > 0.
func ErlangC(c int, a float64) (float64, error) {
	if c <= 0 {
		return 0, fmt.Errorf("%w: servers=%d", ErrBadParam, c)
	}
	if a < 0 {
		return 0, fmt.Errorf("%w: load=%v", ErrBadParam, a)
	}
	if a == 0 {
		return 0, nil
	}
	rho := a / float64(c)
	if rho >= 1 {
		return 1, nil
	}
	// Erlang-B recurrence: B(0)=1, B(k) = a B(k-1) / (k + a B(k-1)).
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	// Erlang-C from Erlang-B.
	return b / (1 - rho*(1-b)), nil
}

// MGcWait returns the approximate mean waiting time of an M/G/c queue
// (Eq. 1): W ≈ π/(1-ρ) · (1+CV²)/2 · 1/(cμ), where π is the Erlang-C
// waiting probability, λ the arrival rate (tasks/s), mu the per-container
// service rate (1/mean duration), and sqCV the squared coefficient of
// variation of service times. It returns +Inf when the queue is unstable.
//
//harmony:unit(task/s) lambda
//harmony:unit(task/s) mu
//harmony:unit(s) return
func MGcWait(c int, lambda, mu, sqCV float64) (float64, error) {
	if c <= 0 || lambda < 0 || mu <= 0 || sqCV < 0 {
		return 0, fmt.Errorf("%w: c=%d lambda=%v mu=%v cv2=%v", ErrBadParam, c, lambda, mu, sqCV)
	}
	if lambda == 0 {
		return 0, nil
	}
	a := lambda / mu
	rho := a / float64(c)
	if rho >= 1 {
		return math.Inf(1), nil
	}
	pi, err := ErlangC(c, a)
	if err != nil {
		return 0, err
	}
	return pi / (1 - rho) * (1 + sqCV) / 2 / (float64(c) * mu), nil
}

// maxContainers caps the solver's search; a class needing more than this
// many containers indicates a unit error upstream.
const maxContainers = 10_000_000

// waitEvals counts the MGcWait evaluations performed by MinContainers;
// the solver tests assert the gallop + binary-search strategy stays
// logarithmic. Atomic because concurrent policy simulations size
// containers in parallel.
var waitEvals atomic.Int64

// MinContainers returns the smallest container count c such that the
// M/G/c mean waiting time is at most maxDelay seconds and the traffic
// intensity is strictly below 1. This is the container manager's sizing
// rule from Section VI.
//
// MGcWait is monotone decreasing in c, so instead of a linear scan the
// solver gallops (doubling the offset above the stability bound) to
// bracket the answer and then binary-searches the bracket: O(log c)
// MGcWait evaluations, each itself O(c), instead of O(c) evaluations.
//
//harmony:unit(task/s) lambda
//harmony:unit(task/s) mu
//harmony:unit(s) maxDelay
func MinContainers(lambda, mu, sqCV, maxDelay float64) (int, error) {
	return MinContainersHint(lambda, mu, sqCV, maxDelay, 0)
}

// WaitEvals returns the cumulative number of MGcWait evaluations performed
// by the solver, for warm-start efficiency assertions in callers' tests.
func WaitEvals() int64 { return waitEvals.Load() }

// MinContainersHint is MinContainers warm-started: hint is a guess at the
// answer (typically the previous control period's result for the same
// class). The result is identical to MinContainers for every hint; a good
// hint collapses the search to O(1) MGcWait evaluations (probe hint and
// hint-1), and a wrong one costs only the gallop distance from the hint.
// hint <= 0 disables warm-starting.
//
//harmony:coldpath M/G/c solve internals are part of containerDemand's measured per-type allocation budget
//harmony:unit(task/s) lambda
//harmony:unit(task/s) mu
//harmony:unit(s) maxDelay
func MinContainersHint(lambda, mu, sqCV, maxDelay float64, hint int) (int, error) {
	if lambda < 0 || mu <= 0 || sqCV < 0 || maxDelay <= 0 {
		return 0, fmt.Errorf("%w: lambda=%v mu=%v cv2=%v delay=%v",
			ErrBadParam, lambda, mu, sqCV, maxDelay)
	}
	if lambda == 0 {
		return 0, nil
	}
	eval := func(c int) (float64, error) {
		waitEvals.Add(1)
		return MGcWait(c, lambda, mu, sqCV)
	}
	// Stability requires c > a, so lo is the smallest stable count.
	a := lambda / mu
	lo := int(math.Floor(a)) + 1
	if lo > maxContainers {
		return 0, fmt.Errorf("%w: lambda=%v mu=%v", ErrUnstable, lambda, mu)
	}
	w, err := eval(lo)
	if err != nil {
		return 0, err
	}
	if w <= maxDelay {
		return lo, nil
	}
	// The answer is now known to lie in (lo, ...]. Establish a bracket
	// (bad, good] with W(bad) > maxDelay >= W(good), starting from the
	// hint when one is given.
	bad, good := lo, 0
	gallopFrom := lo
	if hint > maxContainers {
		hint = maxContainers
	}
	if hint > lo {
		w, err := eval(hint)
		if err != nil {
			return 0, err
		}
		if w <= maxDelay {
			// Answer in (lo, hint]. Fast path: an exact hint is
			// confirmed by a single probe of hint-1.
			if hint-1 == lo {
				return hint, nil // W(lo) already failed above
			}
			w1, err := eval(hint - 1)
			if err != nil {
				return 0, err
			}
			if w1 > maxDelay {
				return hint, nil
			}
			good = hint - 1 // keep searching (lo, hint-1]
		} else {
			bad = hint
			gallopFrom = hint
		}
	}
	// Gallop: double the offset until the wait satisfies the SLO. On
	// exit, bad is the largest probed count that violates the SLO and
	// good the smallest probe that satisfies it.
	for step := 1; good == 0; step *= 2 {
		c := gallopFrom + step
		if c > maxContainers {
			c = maxContainers
		}
		w, err := eval(c)
		if err != nil {
			return 0, err
		}
		if w <= maxDelay {
			good = c
			break
		}
		if c == maxContainers {
			return 0, fmt.Errorf("%w: lambda=%v mu=%v", ErrUnstable, lambda, mu)
		}
		bad = c
	}
	// Binary search (bad, good]: monotonicity makes the first
	// satisfying count the minimal one.
	for good-bad > 1 {
		mid := bad + (good-bad)/2
		w, err := eval(mid)
		if err != nil {
			return 0, err
		}
		if w <= maxDelay {
			good = mid
		} else {
			bad = mid
		}
	}
	return good, nil
}

// Utilization returns the traffic intensity ρ = λ/(cμ) of an M/G/c queue,
// the fraction of container-time that is busy.
//
//harmony:unit(task/s) lambda
//harmony:unit(task/s) mu
//harmony:unit(1) return
func Utilization(c int, lambda, mu float64) float64 {
	if c <= 0 || mu <= 0 {
		return math.Inf(1)
	}
	return lambda / (float64(c) * mu)
}
