package queueing

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// directErlangC computes Eq. 2 by direct summation, valid for small c.
func directErlangC(c int, a float64) float64 {
	rho := a / float64(c)
	fact := 1.0
	sum := 0.0
	for k := 0; k < c; k++ {
		if k > 0 {
			fact *= float64(k)
		}
		sum += math.Pow(a, float64(k)) / fact
	}
	cf := fact * float64(c) // c! = (c-1)! * c
	top := math.Pow(a, float64(c)) / (cf * (1 - rho))
	return top / (sum + top)
}

func TestErlangCValidation(t *testing.T) {
	if _, err := ErlangC(0, 1); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := ErlangC(1, -1); err == nil {
		t.Error("negative load accepted")
	}
}

func TestErlangCKnownValues(t *testing.T) {
	// M/M/1 with rho=0.5: waiting probability equals rho.
	p, err := ErlangC(1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !near(p, 0.5, 1e-12) {
		t.Errorf("ErlangC(1, 0.5) = %v, want 0.5", p)
	}
	// Zero load never waits.
	p, _ = ErlangC(10, 0)
	if p != 0 {
		t.Errorf("ErlangC(10,0) = %v", p)
	}
	// Saturated system always waits.
	p, _ = ErlangC(2, 2)
	if p != 1 {
		t.Errorf("ErlangC saturated = %v", p)
	}
}

func TestErlangCMatchesDirectSum(t *testing.T) {
	tests := []struct {
		c int
		a float64
	}{
		{2, 1.0}, {3, 2.4}, {5, 3.0}, {8, 6.5}, {12, 10.0},
	}
	for _, tt := range tests {
		got, err := ErlangC(tt.c, tt.a)
		if err != nil {
			t.Fatal(err)
		}
		want := directErlangC(tt.c, tt.a)
		if !near(got, want, 1e-9) {
			t.Errorf("ErlangC(%d, %v) = %v, want %v", tt.c, tt.a, got, want)
		}
	}
}

func TestErlangCLargeNoOverflow(t *testing.T) {
	p, err := ErlangC(5000, 4900)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		t.Errorf("ErlangC(5000, 4900) = %v", p)
	}
}

// Property: Erlang-C lies in [0,1] and is monotone decreasing in c.
func TestErlangCProperties(t *testing.T) {
	f := func(rawC uint8, rawA float64) bool {
		c := 1 + int(rawC%50)
		a := math.Mod(math.Abs(rawA), float64(c)) // keep stable
		if math.IsNaN(a) {
			return true
		}
		p1, err := ErlangC(c, a)
		if err != nil || p1 < 0 || p1 > 1 {
			return false
		}
		p2, err := ErlangC(c+1, a)
		if err != nil {
			return false
		}
		return p2 <= p1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMGcWaitMM1(t *testing.T) {
	// M/M/1 (CV²=1): W = rho/(mu - lambda) = lambda/(mu(mu-lambda)).
	lambda, mu := 0.5, 1.0
	w, err := MGcWait(1, lambda, mu, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := lambda / (mu * (mu - lambda))
	if !near(w, want, 1e-12) {
		t.Errorf("MM1 wait = %v, want %v", w, want)
	}
}

func TestMGcWaitDeterministicHalf(t *testing.T) {
	// CV²=0 (deterministic service) halves the M/M/c wait.
	wm, _ := MGcWait(3, 2, 1, 1)
	wd, _ := MGcWait(3, 2, 1, 0)
	if !near(wd, wm/2, 1e-12) {
		t.Errorf("deterministic wait = %v, want %v", wd, wm/2)
	}
}

func TestMGcWaitEdges(t *testing.T) {
	if w, _ := MGcWait(4, 0, 1, 1); w != 0 {
		t.Errorf("zero arrivals wait = %v", w)
	}
	w, _ := MGcWait(1, 2, 1, 1)
	if !math.IsInf(w, 1) {
		t.Errorf("unstable wait = %v, want +Inf", w)
	}
	if _, err := MGcWait(0, 1, 1, 1); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := MGcWait(1, 1, 0, 1); err == nil {
		t.Error("mu=0 accepted")
	}
	if _, err := MGcWait(1, 1, 1, -1); err == nil {
		t.Error("negative CV² accepted")
	}
}

func TestMinContainersValidation(t *testing.T) {
	if _, err := MinContainers(1, 0, 1, 1); err == nil {
		t.Error("mu=0 accepted")
	}
	if _, err := MinContainers(1, 1, 1, 0); err == nil {
		t.Error("zero delay accepted")
	}
	if _, err := MinContainers(-1, 1, 1, 1); err == nil {
		t.Error("negative lambda accepted")
	}
}

func TestMinContainersZeroRate(t *testing.T) {
	c, err := MinContainers(0, 1, 1, 10)
	if err != nil || c != 0 {
		t.Errorf("MinContainers(0) = %d, %v", c, err)
	}
}

func TestMinContainersSatisfiesSLO(t *testing.T) {
	tests := []struct {
		lambda, mu, cv2, delay float64
	}{
		{5, 0.1, 1, 30},
		{0.5, 1.0 / 300, 2.5, 60},
		{100, 1, 0.5, 1},
		{0.01, 1.0 / 86400, 4, 3600},
	}
	for _, tt := range tests {
		c, err := MinContainers(tt.lambda, tt.mu, tt.cv2, tt.delay)
		if err != nil {
			t.Fatalf("MinContainers(%+v): %v", tt, err)
		}
		w, err := MGcWait(c, tt.lambda, tt.mu, tt.cv2)
		if err != nil {
			t.Fatal(err)
		}
		if w > tt.delay {
			t.Errorf("c=%d gives wait %v > SLO %v", c, w, tt.delay)
		}
		if rho := Utilization(c, tt.lambda, tt.mu); rho >= 1 {
			t.Errorf("c=%d leaves rho=%v >= 1", c, rho)
		}
		// Minimality: c-1 must violate the SLO or stability.
		if c > 1 {
			wPrev, err := MGcWait(c-1, tt.lambda, tt.mu, tt.cv2)
			if err != nil {
				t.Fatal(err)
			}
			if wPrev <= tt.delay {
				t.Errorf("c=%d not minimal: c-1 wait %v <= %v", c, wPrev, tt.delay)
			}
		}
	}
}

func TestUtilization(t *testing.T) {
	if got := Utilization(4, 2, 1); !near(got, 0.5, 1e-12) {
		t.Errorf("Utilization = %v, want 0.5", got)
	}
	if got := Utilization(0, 1, 1); !math.IsInf(got, 1) {
		t.Errorf("Utilization(c=0) = %v, want +Inf", got)
	}
}

// Property: MinContainers result is always stable and tight delays demand
// at least as many containers as loose delays.
func TestMinContainersMonotoneInSLO(t *testing.T) {
	f := func(rawL, rawD float64) bool {
		lambda := math.Mod(math.Abs(rawL), 50) + 0.01
		dTight := math.Mod(math.Abs(rawD), 100) + 0.1
		dLoose := dTight * 10
		mu := 0.05
		cTight, err1 := MinContainers(lambda, mu, 1, dTight)
		cLoose, err2 := MinContainers(lambda, mu, 1, dLoose)
		if err1 != nil || err2 != nil {
			return false
		}
		return cTight >= cLoose
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// linearMinContainers is the pre-optimization reference: scan c upward
// from the stability bound, one MGcWait evaluation per candidate.
// Returns the minimal c and how many evaluations the scan spent.
func linearMinContainers(lambda, mu, sqCV, maxDelay float64) (int, int, error) {
	a := lambda / mu
	evals := 0
	for c := int(math.Floor(a)) + 1; c <= maxContainers; c++ {
		evals++
		w, err := MGcWait(c, lambda, mu, sqCV)
		if err != nil {
			return 0, evals, err
		}
		if w <= maxDelay {
			return c, evals, nil
		}
	}
	return 0, evals, ErrUnstable
}

// The gallop + binary-search solver must return exactly the linear
// scan's answer on a randomized sweep while spending asymptotically
// fewer MGcWait evaluations (logarithmic in c rather than linear).
func TestMinContainersMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var galloped, linear int64
	for i := 0; i < 300; i++ {
		// Spread the offered load over orders of magnitude (1..20000
		// containers of work) and make some delay targets tight enough
		// that the answer lands hundreds of containers past the
		// stability bound — the regime where the linear scan pays
		// hundreds of O(c) Erlang evaluations.
		a := math.Exp(rng.Float64() * math.Log(20000))
		mu := math.Exp(-(rng.Float64()*9 + 1)) // mean service 2.7 s .. 6 h
		lambda := a * mu
		sqCV := rng.Float64() * 4
		maxDelay := math.Exp(rng.Float64()*34-32) / mu

		wantC, wantEvals, wantErr := linearMinContainers(lambda, mu, sqCV, maxDelay)
		before := waitEvals.Load()
		gotC, gotErr := MinContainers(lambda, mu, sqCV, maxDelay)
		gotEvals := int(waitEvals.Load() - before)

		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("case %d (λ=%g μ=%g cv²=%g d=%g): err=%v, linear err=%v",
				i, lambda, mu, sqCV, maxDelay, gotErr, wantErr)
		}
		if wantErr != nil {
			continue
		}
		if gotC != wantC {
			t.Fatalf("case %d (λ=%g μ=%g cv²=%g d=%g): c=%d, linear c=%d",
				i, lambda, mu, sqCV, maxDelay, gotC, wantC)
		}
		// Per-case bound: gallop + binary search is 2·log2(span)+2.
		span := gotC - int(math.Floor(lambda/mu))
		if bound := 2*bits.Len(uint(span+1)) + 2; gotEvals > bound {
			t.Errorf("case %d: %d evaluations for span %d, want <= %d",
				i, gotEvals, span, bound)
		}
		galloped += int64(gotEvals)
		linear += int64(wantEvals)
	}
	// Aggregate: the sweep includes answers in the thousands, where the
	// linear scan pays thousands of evaluations and galloping ~20.
	if galloped*4 >= linear {
		t.Errorf("galloping spent %d evaluations vs linear %d; expected far fewer",
			galloped, linear)
	}
}

// logDirectErlangC evaluates Eq. 2 by direct summation in log space
// (log-sum-exp over a^k/k!), which stays finite for any c. It is the
// independent reference documenting why the Erlang-B recurrence in
// ErlangC is sufficient: the two agree to near machine precision all
// the way to c = 10^4, where naive direct summation would overflow.
func logDirectErlangC(c int, a float64) float64 {
	lga := math.Log(a)
	rho := a / float64(c)
	terms := make([]float64, c+1)
	maxT := math.Inf(-1)
	for k := 0; k <= c; k++ {
		lg, _ := math.Lgamma(float64(k + 1))
		terms[k] = float64(k)*lga - lg
		if k == c {
			terms[k] -= math.Log1p(-rho) // the (1-rho)^-1 factor on the c-term
		}
		if terms[k] > maxT {
			maxT = terms[k]
		}
	}
	sum := 0.0
	for _, lt := range terms {
		sum += math.Exp(lt - maxT)
	}
	logDenom := maxT + math.Log(sum)
	return math.Exp(terms[c] - logDenom)
}

func TestErlangCMatchesLogSpaceDirectSumLargeC(t *testing.T) {
	for _, c := range []int{10, 100, 1000, 10000} {
		for _, load := range []float64{0.5, 0.8, 0.95, 0.99} {
			a := load * float64(c)
			got, err := ErlangC(c, a)
			if err != nil {
				t.Fatal(err)
			}
			want := logDirectErlangC(c, a)
			if math.Abs(got-want) > 1e-8*math.Max(want, 1e-300) && math.Abs(got-want) > 1e-10 {
				t.Errorf("ErlangC(%d, %g) = %v, log-space direct sum %v", c, a, got, want)
			}
		}
	}
}

// MinContainersHint must return exactly MinContainers' answer for every
// hint — exact, near, wild, or out of range — and an exact hint must
// collapse the search to a constant number of MGcWait evaluations.
func TestMinContainersHintMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 300; i++ {
		a := math.Exp(rng.Float64() * math.Log(20000))
		mu := math.Exp(-(rng.Float64()*9 + 1))
		lambda := a * mu
		sqCV := rng.Float64() * 4
		maxDelay := math.Exp(rng.Float64()*34-32) / mu

		want, wantErr := MinContainers(lambda, mu, sqCV, maxDelay)
		hints := []int{0, -5, want, want - 1, want + 1, want / 2, want * 2,
			int(math.Floor(a)), maxContainers + 7, rng.Intn(40000)}
		for _, hint := range hints {
			got, gotErr := MinContainersHint(lambda, mu, sqCV, maxDelay, hint)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("case %d hint %d: err=%v, cold err=%v", i, hint, gotErr, wantErr)
			}
			if wantErr == nil && got != want {
				t.Fatalf("case %d (λ=%g μ=%g cv²=%g d=%g) hint %d: c=%d, cold c=%d",
					i, lambda, mu, sqCV, maxDelay, hint, got, want)
			}
		}
	}
}

// An exact warm-start hint (the previous control period's answer under a
// near-identical load) must cost at most 3 MGcWait evaluations — the
// stability probe, the hint, and its confirming neighbor — where a cold
// start pays the full gallop + binary search.
func TestMinContainersHintEvalCounts(t *testing.T) {
	cases := []struct {
		lambda, mu, sqCV, maxDelay float64
	}{
		{lambda: 120, mu: 0.01, sqCV: 2, maxDelay: 1},      // answer far past stability
		{lambda: 4000, mu: 0.05, sqCV: 1.5, maxDelay: 0.2}, // large system
		{lambda: 9, mu: 0.003, sqCV: 3, maxDelay: 5},       // small system, tight SLO
	}
	for i, tc := range cases {
		before := waitEvals.Load()
		want, err := MinContainers(tc.lambda, tc.mu, tc.sqCV, tc.maxDelay)
		coldEvals := int(waitEvals.Load() - before)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}

		before = waitEvals.Load()
		got, err := MinContainersHint(tc.lambda, tc.mu, tc.sqCV, tc.maxDelay, want)
		hintEvals := int(waitEvals.Load() - before)
		if err != nil || got != want {
			t.Fatalf("case %d: hinted answer %d (err %v), want %d", i, got, err, want)
		}
		if hintEvals > 3 {
			t.Errorf("case %d: exact hint cost %d evaluations, want <= 3", i, hintEvals)
		}
		if coldEvals > 4 && hintEvals >= coldEvals {
			t.Errorf("case %d: exact hint cost %d evaluations, cold start %d — no saving",
				i, hintEvals, coldEvals)
		}

		// A near hint (load drifted slightly since last period) still
		// beats the cold start.
		before = waitEvals.Load()
		got, err = MinContainersHint(tc.lambda, tc.mu, tc.sqCV, tc.maxDelay, want+2)
		nearEvals := int(waitEvals.Load() - before)
		if err != nil || got != want {
			t.Fatalf("case %d: near-hinted answer %d (err %v), want %d", i, got, err, want)
		}
		if coldEvals > 6 && nearEvals >= coldEvals {
			t.Errorf("case %d: near hint cost %d evaluations, cold start %d — no saving",
				i, nearEvals, coldEvals)
		}
	}
}
