package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// directErlangC computes Eq. 2 by direct summation, valid for small c.
func directErlangC(c int, a float64) float64 {
	rho := a / float64(c)
	fact := 1.0
	sum := 0.0
	for k := 0; k < c; k++ {
		if k > 0 {
			fact *= float64(k)
		}
		sum += math.Pow(a, float64(k)) / fact
	}
	cf := fact * float64(c) // c! = (c-1)! * c
	top := math.Pow(a, float64(c)) / (cf * (1 - rho))
	return top / (sum + top)
}

func TestErlangCValidation(t *testing.T) {
	if _, err := ErlangC(0, 1); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := ErlangC(1, -1); err == nil {
		t.Error("negative load accepted")
	}
}

func TestErlangCKnownValues(t *testing.T) {
	// M/M/1 with rho=0.5: waiting probability equals rho.
	p, err := ErlangC(1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !near(p, 0.5, 1e-12) {
		t.Errorf("ErlangC(1, 0.5) = %v, want 0.5", p)
	}
	// Zero load never waits.
	p, _ = ErlangC(10, 0)
	if p != 0 {
		t.Errorf("ErlangC(10,0) = %v", p)
	}
	// Saturated system always waits.
	p, _ = ErlangC(2, 2)
	if p != 1 {
		t.Errorf("ErlangC saturated = %v", p)
	}
}

func TestErlangCMatchesDirectSum(t *testing.T) {
	tests := []struct {
		c int
		a float64
	}{
		{2, 1.0}, {3, 2.4}, {5, 3.0}, {8, 6.5}, {12, 10.0},
	}
	for _, tt := range tests {
		got, err := ErlangC(tt.c, tt.a)
		if err != nil {
			t.Fatal(err)
		}
		want := directErlangC(tt.c, tt.a)
		if !near(got, want, 1e-9) {
			t.Errorf("ErlangC(%d, %v) = %v, want %v", tt.c, tt.a, got, want)
		}
	}
}

func TestErlangCLargeNoOverflow(t *testing.T) {
	p, err := ErlangC(5000, 4900)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		t.Errorf("ErlangC(5000, 4900) = %v", p)
	}
}

// Property: Erlang-C lies in [0,1] and is monotone decreasing in c.
func TestErlangCProperties(t *testing.T) {
	f := func(rawC uint8, rawA float64) bool {
		c := 1 + int(rawC%50)
		a := math.Mod(math.Abs(rawA), float64(c)) // keep stable
		if math.IsNaN(a) {
			return true
		}
		p1, err := ErlangC(c, a)
		if err != nil || p1 < 0 || p1 > 1 {
			return false
		}
		p2, err := ErlangC(c+1, a)
		if err != nil {
			return false
		}
		return p2 <= p1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMGcWaitMM1(t *testing.T) {
	// M/M/1 (CV²=1): W = rho/(mu - lambda) = lambda/(mu(mu-lambda)).
	lambda, mu := 0.5, 1.0
	w, err := MGcWait(1, lambda, mu, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := lambda / (mu * (mu - lambda))
	if !near(w, want, 1e-12) {
		t.Errorf("MM1 wait = %v, want %v", w, want)
	}
}

func TestMGcWaitDeterministicHalf(t *testing.T) {
	// CV²=0 (deterministic service) halves the M/M/c wait.
	wm, _ := MGcWait(3, 2, 1, 1)
	wd, _ := MGcWait(3, 2, 1, 0)
	if !near(wd, wm/2, 1e-12) {
		t.Errorf("deterministic wait = %v, want %v", wd, wm/2)
	}
}

func TestMGcWaitEdges(t *testing.T) {
	if w, _ := MGcWait(4, 0, 1, 1); w != 0 {
		t.Errorf("zero arrivals wait = %v", w)
	}
	w, _ := MGcWait(1, 2, 1, 1)
	if !math.IsInf(w, 1) {
		t.Errorf("unstable wait = %v, want +Inf", w)
	}
	if _, err := MGcWait(0, 1, 1, 1); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := MGcWait(1, 1, 0, 1); err == nil {
		t.Error("mu=0 accepted")
	}
	if _, err := MGcWait(1, 1, 1, -1); err == nil {
		t.Error("negative CV² accepted")
	}
}

func TestMinContainersValidation(t *testing.T) {
	if _, err := MinContainers(1, 0, 1, 1); err == nil {
		t.Error("mu=0 accepted")
	}
	if _, err := MinContainers(1, 1, 1, 0); err == nil {
		t.Error("zero delay accepted")
	}
	if _, err := MinContainers(-1, 1, 1, 1); err == nil {
		t.Error("negative lambda accepted")
	}
}

func TestMinContainersZeroRate(t *testing.T) {
	c, err := MinContainers(0, 1, 1, 10)
	if err != nil || c != 0 {
		t.Errorf("MinContainers(0) = %d, %v", c, err)
	}
}

func TestMinContainersSatisfiesSLO(t *testing.T) {
	tests := []struct {
		lambda, mu, cv2, delay float64
	}{
		{5, 0.1, 1, 30},
		{0.5, 1.0 / 300, 2.5, 60},
		{100, 1, 0.5, 1},
		{0.01, 1.0 / 86400, 4, 3600},
	}
	for _, tt := range tests {
		c, err := MinContainers(tt.lambda, tt.mu, tt.cv2, tt.delay)
		if err != nil {
			t.Fatalf("MinContainers(%+v): %v", tt, err)
		}
		w, err := MGcWait(c, tt.lambda, tt.mu, tt.cv2)
		if err != nil {
			t.Fatal(err)
		}
		if w > tt.delay {
			t.Errorf("c=%d gives wait %v > SLO %v", c, w, tt.delay)
		}
		if rho := Utilization(c, tt.lambda, tt.mu); rho >= 1 {
			t.Errorf("c=%d leaves rho=%v >= 1", c, rho)
		}
		// Minimality: c-1 must violate the SLO or stability.
		if c > 1 {
			wPrev, err := MGcWait(c-1, tt.lambda, tt.mu, tt.cv2)
			if err != nil {
				t.Fatal(err)
			}
			if wPrev <= tt.delay {
				t.Errorf("c=%d not minimal: c-1 wait %v <= %v", c, wPrev, tt.delay)
			}
		}
	}
}

func TestUtilization(t *testing.T) {
	if got := Utilization(4, 2, 1); !near(got, 0.5, 1e-12) {
		t.Errorf("Utilization = %v, want 0.5", got)
	}
	if got := Utilization(0, 1, 1); !math.IsInf(got, 1) {
		t.Errorf("Utilization(c=0) = %v, want +Inf", got)
	}
}

// Property: MinContainers result is always stable and tight delays demand
// at least as many containers as loose delays.
func TestMinContainersMonotoneInSLO(t *testing.T) {
	f := func(rawL, rawD float64) bool {
		lambda := math.Mod(math.Abs(rawL), 50) + 0.01
		dTight := math.Mod(math.Abs(rawD), 100) + 0.1
		dLoose := dTight * 10
		mu := 0.05
		cTight, err1 := MinContainers(lambda, mu, 1, dTight)
		cLoose, err2 := MinContainers(lambda, mu, 1, dLoose)
		if err1 != nil || err2 != nil {
			return false
		}
		return cTight >= cLoose
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
