package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// header is the first line of the serialized trace stream: machine
// population and horizon, followed by one JSON task per line. The
// line-oriented format keeps memory flat when streaming large traces.
type header struct {
	Machines []MachineType `json:"machines"`
	Horizon  float64       `json:"horizon"`
	Tasks    int           `json:"tasks"`
}

// Write serializes tr to w as a JSON-lines stream.
func Write(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	h := header{Machines: tr.Machines, Horizon: tr.Horizon, Tasks: len(tr.Tasks)}
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("trace: encode header: %w", err)
	}
	for i := range tr.Tasks {
		if err := enc.Encode(&tr.Tasks[i]); err != nil {
			return fmt.Errorf("trace: encode task %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read parses a trace previously produced by Write.
func Read(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("trace: decode header: %w", err)
	}
	tr := &Trace{
		Machines: h.Machines,
		Horizon:  h.Horizon,
		Tasks:    make([]Task, 0, h.Tasks),
	}
	for {
		var t Task
		if err := dec.Decode(&t); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("trace: decode task %d: %w", len(tr.Tasks), err)
		}
		tr.Tasks = append(tr.Tasks, t)
	}
	if h.Tasks != len(tr.Tasks) {
		return nil, fmt.Errorf("trace: header says %d tasks, stream has %d", h.Tasks, len(tr.Tasks))
	}
	return tr, nil
}
