package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// header is the first line of the serialized trace stream: machine
// population and horizon, followed by one JSON task per line. The
// line-oriented format keeps memory flat when streaming large traces.
// Tasks is -1 when the producer streamed the file without knowing the
// final count up front.
type header struct {
	Machines []MachineType `json:"machines"`
	Horizon  float64       `json:"horizon"`
	Tasks    int64         `json:"tasks"`
}

// Write serializes tr to w as a JSON-lines stream.
func Write(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	h := header{Machines: tr.Machines, Horizon: tr.Horizon, Tasks: int64(len(tr.Tasks))}
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("trace: encode header: %w", err)
	}
	for i := range tr.Tasks {
		if err := enc.Encode(&tr.Tasks[i]); err != nil {
			return fmt.Errorf("trace: encode task %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// WriteStream drains src to w in the JSON-lines trace format without
// materializing the stream, and returns the number of tasks written.
// The header records the source's task count when known and -1
// otherwise (readers then skip the count cross-check).
func WriteStream(w io.Writer, src TaskSource) (int64, error) {
	m := src.Meta()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	h := header{Machines: m.Machines, Horizon: m.Horizon, Tasks: m.Tasks}
	if h.Tasks < 0 {
		h.Tasks = TasksUnknown
	}
	if err := enc.Encode(h); err != nil {
		return 0, fmt.Errorf("trace: encode header: %w", err)
	}
	var (
		n int64
		t Task
	)
	for {
		ok, err := src.Next(&t)
		if err != nil {
			return n, err
		}
		if !ok {
			break
		}
		if err := enc.Encode(&t); err != nil {
			return n, fmt.Errorf("trace: encode task %d: %w", n, err)
		}
		n++
	}
	if m.Tasks >= 0 && n != m.Tasks {
		return n, fmt.Errorf("trace: source meta says %d tasks, stream had %d", m.Tasks, n)
	}
	return n, bw.Flush()
}

// JSONLSource streams tasks from a JSON-lines trace (the Write format)
// one decode at a time, so reading a multi-gigabyte trace holds one
// task — not the file — in memory.
type JSONLSource struct {
	dec  *json.Decoder
	meta Meta
	n    int64
	prev float64
	done bool
}

// NewJSONLSource reads the stream header from r and returns a source
// over its task lines. Each Next validates submit-order monotonicity,
// and the final count is checked against the header when it carried one.
func NewJSONLSource(r io.Reader) (*JSONLSource, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("trace: decode header: %w", err)
	}
	return &JSONLSource{
		dec:  dec,
		meta: Meta{Machines: h.Machines, Horizon: h.Horizon, Tasks: h.Tasks},
		prev: -1,
	}, nil
}

// Meta implements TaskSource.
func (s *JSONLSource) Meta() Meta { return s.meta }

// Next implements TaskSource.
func (s *JSONLSource) Next(t *Task) (bool, error) {
	if s.done {
		return false, nil
	}
	*t = Task{} // a sparse line must not inherit the previous task's fields
	if err := s.dec.Decode(t); err != nil {
		if err == io.EOF {
			s.done = true
			if s.meta.Tasks >= 0 && s.n != s.meta.Tasks {
				return false, fmt.Errorf("trace: header says %d tasks, stream has %d", s.meta.Tasks, s.n)
			}
			return false, nil
		}
		return false, fmt.Errorf("trace: decode task %d: %w", s.n, err)
	}
	if t.Submit < s.prev {
		return false, fmt.Errorf("trace: task %d out of submit order (%g after %g)", t.ID, t.Submit, s.prev)
	}
	s.prev = t.Submit
	s.n++
	return true, nil
}

// Read parses a trace previously produced by Write (or WriteStream)
// into memory. Use NewJSONLSource to stream instead of materializing.
func Read(r io.Reader) (*Trace, error) {
	src, err := NewJSONLSource(r)
	if err != nil {
		return nil, err
	}
	return Collect(src)
}
