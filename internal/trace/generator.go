package trace

import (
	"math"

	"harmony/internal/stats"
)

// Day and Hour are the time units used by generator configuration.
const (
	Hour = 3600.0    //harmony:unit(s)
	Day  = 24 * Hour //harmony:unit(s)
)

// SizeCluster is one mode of the per-group task-size mixture. Sizes are
// drawn log-normally around the centroid so that, as in the trace, a class
// has a tight core with a spread of roughly one order of magnitude across
// classes. An Atom cluster emits the exact centroid (the paper observes
// 43% of gratis tasks at exactly CPU 0.0125, Mem 0.0159).
type SizeCluster struct {
	Weight   float64 // relative probability of this cluster
	CPU, Mem float64 // centroid demand
	Spread   float64 // sigma of the log-normal scatter; 0 makes it an atom
}

// GroupProfile configures the workload of one priority group.
type GroupProfile struct {
	Share     float64       // fraction of all tasks in this group
	Sizes     []SizeCluster // task-size mixture
	ShortFrac float64       // fraction of short tasks
	//harmony:unit(s)
	ShortMean float64 // mean short duration (log-normal)
	LongAlpha float64 // Pareto shape for long durations
	//harmony:unit(s)
	LongMin float64 // minimum long duration
	//harmony:unit(s)
	LongMax     float64 // maximum long duration
	MinClass    int     // scheduling classes drawn in [MinClass, MaxClass]
	MaxClass    int
	PriorityLo  int // raw priorities drawn uniformly in [PriorityLo, PriorityHi]
	PriorityHi  int
	TasksPerJob float64 // mean tasks per job (geometric)
	// ConstraintFrac is the fraction of jobs carrying a placement
	// constraint (pinned to one machine platform).
	ConstraintFrac float64
}

// Config fully parameterizes the synthetic generator.
type Config struct {
	Seed int64
	//harmony:unit(s)
	Horizon float64 // trace length
	//harmony:unit(task/s)
	RatePerS float64 // mean task arrival rate across groups

	// Diurnal is the relative amplitude of the daily sinusoid on the
	// arrival rate (0 = flat, 0.5 = ±50%).
	Diurnal float64
	// BurstProb is the per-period probability of a workload burst;
	// BurstFactor multiplies the rate during a burst.
	BurstProb   float64
	BurstFactor float64

	Groups   [NumGroups]GroupProfile
	Machines []MachineType
}

// DefaultConfig returns a configuration that reproduces the Section III
// statistics at a scale suitable for a single machine: the same shapes and
// ratios as the 12 000-machine, 25M-task trace, scaled down by default to a
// few days and a few hundred thousand tasks (callers adjust Horizon and
// RatePerS for larger runs).
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:        seed,
		Horizon:     2 * Day,
		RatePerS:    1.5,
		Diurnal:     0.35,
		BurstProb:   0.02,
		BurstFactor: 3,
		Groups: [NumGroups]GroupProfile{
			0: { // gratis
				Share: 0.55,
				Sizes: []SizeCluster{
					{Weight: 0.43, CPU: 0.0125, Mem: 0.0159, Spread: 0}, // the exact atom from §III-D
					{Weight: 0.25, CPU: 0.006, Mem: 0.004, Spread: 0.28},
					{Weight: 0.15, CPU: 0.03, Mem: 0.008, Spread: 0.33}, // cpu-heavy
					{Weight: 0.12, CPU: 0.008, Mem: 0.05, Spread: 0.33}, // mem-heavy
					{Weight: 0.05, CPU: 0.12, Mem: 0.10, Spread: 0.44},  // large
				},
				ShortFrac:      0.75,
				ShortMean:      40,
				LongAlpha:      1.5,
				LongMin:        100,
				LongMax:        6 * Hour,
				MinClass:       0,
				MaxClass:       1,
				PriorityLo:     0,
				PriorityHi:     1,
				TasksPerJob:    20,
				ConstraintFrac: 0.004,
			},
			1: { // other
				Share: 0.40,
				Sizes: []SizeCluster{
					{Weight: 0.35, CPU: 0.02, Mem: 0.02, Spread: 0.28},
					{Weight: 0.25, CPU: 0.06, Mem: 0.015, Spread: 0.33}, // cpu-heavy
					{Weight: 0.20, CPU: 0.015, Mem: 0.08, Spread: 0.33}, // mem-heavy
					{Weight: 0.15, CPU: 0.10, Mem: 0.10, Spread: 0.39},
					{Weight: 0.05, CPU: 0.30, Mem: 0.25, Spread: 0.33}, // large
				},
				ShortFrac:      0.62,
				ShortMean:      60,
				LongAlpha:      1.4,
				LongMin:        200,
				LongMax:        8 * Hour,
				MinClass:       0,
				MaxClass:       2,
				PriorityLo:     2,
				PriorityHi:     8,
				TasksPerJob:    10,
				ConstraintFrac: 0.008,
			},
			2: { // production
				Share: 0.05,
				Sizes: []SizeCluster{
					{Weight: 0.37, CPU: 0.04, Mem: 0.04, Spread: 0.28},
					{Weight: 0.26, CPU: 0.12, Mem: 0.05, Spread: 0.28}, // cpu-heavy
					{Weight: 0.21, CPU: 0.05, Mem: 0.15, Spread: 0.28}, // mem-heavy
					{Weight: 0.12, CPU: 0.25, Mem: 0.20, Spread: 0.28},
					{Weight: 0.03, CPU: 0.55, Mem: 0.50, Spread: 0.22}, // very large
					{Weight: 0.01, CPU: 0.85, Mem: 0.75, Spread: 0.08}, // near-whole-machine
				},
				ShortFrac:      0.55,
				ShortMean:      80,
				LongAlpha:      1.35,
				LongMin:        600,
				LongMax:        17 * Day, // the paper observes production tasks up to 17 days
				MinClass:       1,
				MaxClass:       3,
				PriorityLo:     9,
				PriorityHi:     11,
				TasksPerJob:    5,
				ConstraintFrac: 0.012,
			},
		},
		Machines: GoogleLikeMachines(1200),
	}
}

// GoogleLikeMachines returns the ten machine types of Figure 5 with the
// observed population skew (>50% type 1, ~30% type 2, ~8% each types 3-4,
// small tails for types 5-10), scaled to a total of approximately n
// machines.
func GoogleLikeMachines(n int) []MachineType {
	// Fractions sum to 1; capacities echo Figure 5's spread.
	specs := []struct {
		platform string
		cpu, mem float64
		frac     float64
	}{
		{"PF-A", 0.50, 0.50, 0.53},
		{"PF-B", 0.50, 0.25, 0.31},
		{"PF-B", 0.50, 0.75, 0.077},
		{"PF-C", 1.00, 1.00, 0.076},
		{"PF-A", 0.25, 0.25, 0.004},
		{"PF-B", 0.50, 0.12, 0.003},
		{"PF-C", 0.50, 0.03, 0.0008},
		{"PF-C", 1.00, 0.50, 0.0008},
		{"PF-B", 0.25, 0.75, 0.0008},
		{"PF-C", 0.50, 1.00, 0.0006},
	}
	out := make([]MachineType, 0, len(specs))
	for i, s := range specs {
		count := int(math.Round(s.frac * float64(n)))
		if count == 0 {
			count = 1
		}
		out = append(out, MachineType{
			ID:       i + 1,
			Platform: s.platform,
			CPU:      s.cpu,
			Mem:      s.mem,
			Count:    count,
		})
	}
	return out
}

// Generate produces a synthetic trace from cfg. It is deterministic for a
// given configuration (including seed), and materializes exactly the
// stream a GenSource with the same config emits — the one-shot and
// streaming modes share one generator.
func Generate(cfg Config) (*Trace, error) {
	src, err := NewGenSource(cfg, 0)
	if err != nil {
		return nil, err
	}
	tr, err := Collect(src)
	if err != nil {
		return nil, err
	}
	// The stream is already in submit order (arrival times are
	// non-decreasing by construction); the stable sort only normalizes
	// exact-tie ordering, which the ascending task IDs already encode.
	tr.SortTasks()
	return tr, nil
}

func geometric(r *stats.RNG, mean float64) int {
	if mean <= 1 {
		return 0
	}
	p := 1 / mean
	n := 0
	for r.Float64() > p && n < 10000 {
		n++
	}
	return n
}

func drawSize(r *stats.RNG, g GroupProfile) (cpu, mem float64) {
	weights := make([]float64, len(g.Sizes))
	for i, c := range g.Sizes {
		weights[i] = c.Weight
	}
	c := g.Sizes[stats.WeightedChoice(r, weights)]
	if c.Spread == 0 {
		return clampSize(c.CPU), clampSize(c.Mem)
	}
	cpu = c.CPU * stats.LogNormal(r, 0, c.Spread)
	mem = c.Mem * stats.LogNormal(r, 0, c.Spread)
	return clampSize(cpu), clampSize(mem)
}

func clampSize(x float64) float64 {
	const lo = 0.0005
	if x < lo {
		return lo
	}
	if x > 1 {
		return 1
	}
	return x
}

func drawDuration(r *stats.RNG, g GroupProfile) float64 {
	if r.Float64() < g.ShortFrac {
		// Log-normal with the requested mean: exp(mu + s^2/2) = mean.
		// Regression: a profile with ShortMean <= 0 used to feed math.Log
		// a non-positive value, minting NaN durations that poisoned every
		// downstream delay/energy figure. Degenerate profiles now fall
		// back to the 1s duration floor (found by harmony-lint nansource).
		const sigma = 1.0
		mean := g.ShortMean
		if mean <= 0 {
			mean = 1
		}
		mu := math.Log(mean) - sigma*sigma/2
		d := stats.LogNormal(r, mu, sigma)
		if d < 1 {
			d = 1
		}
		if d > g.LongMin {
			d = g.LongMin
		}
		return d
	}
	return stats.BoundedPareto(r, g.LongAlpha, g.LongMin, g.LongMax)
}
