// Package trace defines the workload model used throughout HARMONY — tasks,
// jobs, and machine types — together with a synthetic trace generator that
// reproduces the statistical properties of the Google cluster trace analyzed
// in Section III of the paper (heterogeneous task sizes spanning orders of
// magnitude, bimodal durations, three priority groups, diurnal arrivals, and
// a skewed machine-type population).
//
// The real Google trace is proprietary and several gigabytes; the generator
// is the substitution documented in DESIGN.md. Every consumer in this module
// depends only on the distributional properties the generator reproduces.
package trace

import (
	"fmt"
	"sort"
)

// PriorityGroup is the coarse task classification used by the paper:
// gratis (priorities 0-1), other (2-8), and production (9-11).
type PriorityGroup int

// Priority groups in increasing order of importance.
const (
	Gratis PriorityGroup = iota + 1
	Other
	Production
)

// NumGroups is the number of priority groups.
const NumGroups = 3

// String returns the paper's name for the group.
func (g PriorityGroup) String() string {
	switch g {
	case Gratis:
		return "gratis"
	case Other:
		return "other"
	case Production:
		return "production"
	default:
		return fmt.Sprintf("PriorityGroup(%d)", int(g))
	}
}

// Index returns a dense 0-based index for array lookups.
func (g PriorityGroup) Index() int { return int(g) - 1 }

// GroupOf maps a raw priority (0-11) to its priority group.
func GroupOf(priority int) PriorityGroup {
	switch {
	case priority <= 1:
		return Gratis
	case priority <= 8:
		return Other
	default:
		return Production
	}
}

// Groups lists all priority groups in ascending order.
func Groups() []PriorityGroup { return []PriorityGroup{Gratis, Other, Production} }

// Task is a single schedulable unit. CPU and Mem are normalized to the
// largest machine in the cluster (capacity 1.0), exactly as in the trace.
type Task struct {
	ID    uint64 `json:"id"`
	JobID uint64 `json:"job"`
	//harmony:unit(s)
	Submit float64 `json:"submit"` // since trace start
	//harmony:unit(s)
	Duration   float64 `json:"duration"` // execution time once placed
	CPU        float64 `json:"cpu"`      // normalized CPU demand in (0,1]
	Mem        float64 `json:"mem"`      // normalized memory demand in (0,1]
	Priority   int     `json:"priority"` // 0..11
	SchedClass int     `json:"class"`    // 0 (batch) .. 3 (latency-sensitive)
	// Constraint, when non-empty, is a placement constraint: the task
	// may only run on machines of this platform (§III — the trace's
	// difficult-to-schedule tasks are often constrained).
	Constraint string `json:"constraint,omitempty"`
	// Tenant, when non-empty, names the application the task belongs to.
	// Multi-tenant harmonyd routes tagged NDJSON ingest by this field;
	// the batch pipeline and the simulator ignore it.
	Tenant string `json:"tenant,omitempty"`
}

// Group returns the task's priority group.
func (t Task) Group() PriorityGroup { return GroupOf(t.Priority) }

// MachineType describes one hardware generation in the cluster. Capacities
// are normalized so that the largest machine has CPU = Mem = 1.
type MachineType struct {
	ID       int     `json:"id"`
	Platform string  `json:"platform"` // micro-architecture identifier
	CPU      float64 `json:"cpu"`      // normalized CPU capacity
	Mem      float64 `json:"mem"`      // normalized memory capacity
	Count    int     `json:"count"`    // machines of this type in the cluster
}

// Fits reports whether a task with the given demands can run on this
// machine type at all (ignoring current load).
func (m MachineType) Fits(cpu, mem float64) bool {
	return cpu <= m.CPU && mem <= m.Mem
}

// Trace is a complete workload: a task stream sorted by submission time and
// the machine population it runs against.
type Trace struct {
	Tasks    []Task        `json:"tasks"`
	Machines []MachineType `json:"machines"`
	Horizon  float64       `json:"horizon"` // seconds covered by the trace
}

// TotalMachines returns the machine population size.
func (tr *Trace) TotalMachines() int {
	n := 0
	for _, m := range tr.Machines {
		n += m.Count
	}
	return n
}

// SortTasks sorts the task stream by submission time (stable on ID).
func (tr *Trace) SortTasks() {
	sort.SliceStable(tr.Tasks, func(i, j int) bool {
		//harmony:allow floateq sort tie-break must be exact for a deterministic order
		if tr.Tasks[i].Submit != tr.Tasks[j].Submit {
			return tr.Tasks[i].Submit < tr.Tasks[j].Submit
		}
		return tr.Tasks[i].ID < tr.Tasks[j].ID
	})
}

// Validate checks internal consistency: sorted non-negative submissions,
// positive durations, demands in (0,1], and a non-empty machine population.
func (tr *Trace) Validate() error {
	if len(tr.Machines) == 0 {
		return fmt.Errorf("trace: no machine types")
	}
	for _, m := range tr.Machines {
		if m.CPU <= 0 || m.CPU > 1 || m.Mem <= 0 || m.Mem > 1 {
			return fmt.Errorf("trace: machine type %d capacity out of (0,1]", m.ID)
		}
		if m.Count < 0 {
			return fmt.Errorf("trace: machine type %d negative count", m.ID)
		}
	}
	prev := -1.0
	for i, t := range tr.Tasks {
		if t.Submit < 0 {
			return fmt.Errorf("trace: task %d negative submit", i)
		}
		if t.Submit < prev {
			return fmt.Errorf("trace: tasks not sorted at index %d", i)
		}
		prev = t.Submit
		if t.Duration <= 0 {
			return fmt.Errorf("trace: task %d non-positive duration", i)
		}
		if t.CPU <= 0 || t.CPU > 1 || t.Mem <= 0 || t.Mem > 1 {
			return fmt.Errorf("trace: task %d demand out of (0,1]", i)
		}
		if t.Priority < 0 || t.Priority > 11 {
			return fmt.Errorf("trace: task %d priority out of [0,11]", i)
		}
		if t.SchedClass < 0 || t.SchedClass > 3 {
			return fmt.Errorf("trace: task %d sched class out of [0,3]", i)
		}
	}
	return nil
}
