package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	tr := tinyTrace()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, tr.Machines, tr.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tasks) != len(tr.Tasks) {
		t.Fatalf("tasks = %d, want %d", len(got.Tasks), len(tr.Tasks))
	}
	for i := range got.Tasks {
		if got.Tasks[i] != tr.Tasks[i] {
			t.Errorf("task %d = %+v, want %+v", i, got.Tasks[i], tr.Tasks[i])
		}
	}
	if got.Horizon != tr.Horizon {
		t.Errorf("horizon = %v", got.Horizon)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("round-tripped trace invalid: %v", err)
	}
}

func TestReadCSVInfersHorizon(t *testing.T) {
	tr := tinyTrace()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, tr.Machines, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Last-ending task: submit 15 + duration 30 = 45.
	if got.Horizon != 45 {
		t.Errorf("inferred horizon = %v, want 45", got.Horizon)
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "a,b,c\n",
		"short header": "id,job\n",
		"bad id":       "id,job,submit,duration,cpu,mem,priority,class\nx,1,0,1,0.1,0.1,0,0\n",
		"bad float":    "id,job,submit,duration,cpu,mem,priority,class\n1,1,zero,1,0.1,0.1,0,0\n",
		"bad priority": "id,job,submit,duration,cpu,mem,priority,class\n1,1,0,1,0.1,0.1,p,0\n",
		"short row":    "id,job,submit,duration,cpu,mem,priority,class\n1,1,0\n",
	}
	for name, body := range cases {
		if _, err := ReadCSV(strings.NewReader(body), nil, 1); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
