package trace

import (
	"errors"
	"math"

	"harmony/internal/stats"
)

// GenSource is the streaming form of the synthetic generator: it emits
// the exact task sequence Generate materializes — same config, same
// seed, bit-identical tasks in submit order — while holding only O(1)
// generator state. Generate itself is a thin Collect over this source,
// so the two modes cannot drift apart.
//
// Internally tasks are produced into a fixed-size chunk buffer and
// handed out one at a time; ChunkSize tunes the refill batch without
// changing the emitted stream.
type GenSource struct {
	cfg       Config
	r         *stats.RNG
	shares    []float64
	platforms []string
	peak      float64

	// Arrival-process state, advanced one accepted arrival at a time.
	t        float64
	burstEnd float64
	id       uint64
	jobID    uint64
	jobLeft  [NumGroups]int
	jobCur   [NumGroups]uint64
	jobCPU   [NumGroups]float64
	jobMem   [NumGroups]float64
	jobCon   [NumGroups]string

	chunk []Task // refill buffer (len = fill, cap = chunk size)
	pos   int
	done  bool
}

// genChunkSize is the default refill batch of a streaming generator.
const genChunkSize = 4096

// validateGenConfig is the shared precondition check of Generate and
// NewGenSource.
func validateGenConfig(cfg *Config) error {
	if cfg.Horizon <= 0 {
		return errors.New("trace: horizon must be positive")
	}
	if cfg.RatePerS <= 0 {
		return errors.New("trace: rate must be positive")
	}
	if len(cfg.Machines) == 0 {
		return errors.New("trace: no machines configured")
	}
	shareSum := 0.0
	for _, g := range cfg.Groups {
		if g.Share < 0 {
			return errors.New("trace: negative group share")
		}
		shareSum += g.Share
	}
	if shareSum <= 0 {
		return errors.New("trace: group shares sum to zero")
	}
	return nil
}

// NewGenSource returns a streaming generator for cfg. chunkSize tunes
// the internal refill batch (<= 0 selects the default); it has no
// effect on the emitted task sequence.
func NewGenSource(cfg Config, chunkSize int) (*GenSource, error) {
	if err := validateGenConfig(&cfg); err != nil {
		return nil, err
	}
	if chunkSize <= 0 {
		chunkSize = genChunkSize
	}
	g := &GenSource{
		cfg:    cfg,
		r:      stats.NewRNG(cfg.Seed),
		shares: make([]float64, NumGroups),
		peak:   cfg.RatePerS * (1 + cfg.Diurnal) * math.Max(cfg.BurstFactor, 1),
		chunk:  make([]Task, 0, chunkSize),
	}
	for i, gp := range cfg.Groups {
		g.shares[i] = gp.Share
	}
	g.platforms = make([]string, 0, len(cfg.Machines))
	for _, m := range cfg.Machines {
		g.platforms = append(g.platforms, m.Platform)
	}
	// The first candidate arrival, mirroring Generate's loop head.
	g.t = stats.Exponential(g.r, 1/g.peak)
	return g, nil
}

// Meta implements TaskSource. The task count of a synthetic stream is
// unknown until the horizon is reached.
func (g *GenSource) Meta() Meta {
	return Meta{Machines: g.cfg.Machines, Horizon: g.cfg.Horizon, Tasks: TasksUnknown}
}

// Next implements TaskSource.
func (g *GenSource) Next(t *Task) (bool, error) {
	if g.pos >= len(g.chunk) {
		if g.done {
			return false, nil
		}
		g.refill()
		if len(g.chunk) == 0 {
			return false, nil
		}
	}
	*t = g.chunk[g.pos]
	g.pos++
	return true, nil
}

// refill produces the next batch of accepted arrivals into the chunk
// buffer. Thinned non-homogeneous Poisson arrivals: candidates come
// from a homogeneous process at the peak rate; each is kept with
// probability rate(t)/peak.
func (g *GenSource) refill() {
	g.chunk = g.chunk[:0]
	g.pos = 0
	cfg := &g.cfg
	for g.t < cfg.Horizon {
		t := g.t
		rate := cfg.RatePerS * (1 + cfg.Diurnal*math.Sin(2*math.Pi*t/Day))
		if t < g.burstEnd {
			rate *= cfg.BurstFactor
		} else if g.r.Float64() < cfg.BurstProb*g.peak/cfg.RatePerS*1e-3 {
			g.burstEnd = t + 10*60 // ten-minute burst
			rate *= cfg.BurstFactor
		}
		accepted := g.r.Float64() < rate/g.peak
		if accepted {
			g.emit(t)
		}
		g.t += stats.Exponential(g.r, 1/g.peak)
		if accepted && len(g.chunk) == cap(g.chunk) {
			return
		}
	}
	g.done = true
}

// emit appends one accepted arrival at time t to the chunk buffer,
// drawing its job membership, size, and labels exactly as Generate did.
func (g *GenSource) emit(t float64) {
	gi := stats.WeightedChoice(g.r, g.shares)
	gp := g.cfg.Groups[gi]

	// Job membership: tasks arrive in job batches of geometric size. All
	// tasks of a job share one resource request, as in the real trace
	// (users specify the demand once per job) — this is what concentrates
	// the workload into tight classes (§III-D).
	if g.jobLeft[gi] == 0 {
		g.jobID++
		g.jobCur[gi] = g.jobID
		g.jobLeft[gi] = 1 + geometric(g.r, gp.TasksPerJob)
		g.jobCPU[gi], g.jobMem[gi] = drawSize(g.r, gp)
		g.jobCon[gi] = ""
		if len(g.platforms) > 0 && g.r.Float64() < gp.ConstraintFrac {
			g.jobCon[gi] = g.platforms[g.r.Intn(len(g.platforms))]
		}
	}
	g.jobLeft[gi]--

	g.id++
	g.chunk = append(g.chunk, Task{
		ID:         g.id,
		JobID:      g.jobCur[gi],
		Submit:     t,
		Duration:   drawDuration(g.r, gp),
		CPU:        g.jobCPU[gi],
		Mem:        g.jobMem[gi],
		Priority:   gp.PriorityLo + g.r.Intn(gp.PriorityHi-gp.PriorityLo+1),
		SchedClass: gp.MinClass + g.r.Intn(gp.MaxClass-gp.MinClass+1),
		Constraint: g.jobCon[gi],
	})
}
