package trace

import (
	"bytes"
	"testing"
)

func tinyTrace() *Trace {
	return &Trace{
		Machines: []MachineType{
			{ID: 1, Platform: "A", CPU: 1, Mem: 1, Count: 3},
			{ID: 2, Platform: "B", CPU: 0.5, Mem: 0.5, Count: 1},
		},
		Tasks: []Task{
			{ID: 1, Submit: 0, Duration: 20, CPU: 0.2, Mem: 0.1, Priority: 0},
			{ID: 2, Submit: 5, Duration: 10, CPU: 0.3, Mem: 0.2, Priority: 5},
			{ID: 3, Submit: 15, Duration: 30, CPU: 0.1, Mem: 0.4, Priority: 10},
		},
		Horizon: 60,
	}
}

func TestDemandSeries(t *testing.T) {
	tr := tinyTrace()
	cpu, mem, err := DemandSeries(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Bin 0 [0,10): tasks 1 and 2 both start inside -> 0.2 + 0.3.
	if got := cpu.Points[0].Y; got != 0.5 {
		t.Errorf("cpu bin0 = %v, want 0.5", got)
	}
	// Bin 1 [10,20): task 2 ends at 15 (bin 1), so its demand is removed
	// at bin 1; task 3 starts at bin 1; task 1 still running -> 0.2 + 0.1.
	if got := cpu.Points[1].Y; !almost(got, 0.3) {
		t.Errorf("cpu bin1 = %v, want 0.3", got)
	}
	// Bin 2 [20,30): task 1 ended at 20 -> only task 3 -> 0.1.
	if got := cpu.Points[2].Y; !almost(got, 0.1) {
		t.Errorf("cpu bin2 = %v, want 0.1", got)
	}
	// Memory follows the same bins.
	if got := mem.Points[0].Y; !almost(got, 0.3) {
		t.Errorf("mem bin0 = %v, want 0.3", got)
	}
	if _, _, err := DemandSeries(tr, 0); err == nil {
		t.Error("zero bin width accepted")
	}
}

func almost(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestArrivalRates(t *testing.T) {
	tr := tinyTrace()
	rates, err := ArrivalRates(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rates) != NumGroups {
		t.Fatalf("groups = %d", len(rates))
	}
	// Gratis task at t=0: rate 1/10 in bin 0.
	if got := rates[Gratis].Points[0].Y; !almost(got, 0.1) {
		t.Errorf("gratis rate bin0 = %v, want 0.1", got)
	}
	if _, err := ArrivalRates(tr, -1); err == nil {
		t.Error("negative bin width accepted")
	}
}

func TestDurationCDFs(t *testing.T) {
	tr := tinyTrace()
	cdfs := DurationCDFs(tr)
	if got := cdfs[Gratis].Len(); got != 1 {
		t.Errorf("gratis samples = %d", got)
	}
	if got := cdfs[Production].P(30); got != 1 {
		t.Errorf("production P(30) = %v", got)
	}
}

func TestSizeScatter(t *testing.T) {
	tr := tinyTrace()
	pts := SizeScatter(tr, Other)
	if len(pts) != 1 || pts[0].X != 0.3 || pts[0].Y != 0.2 {
		t.Errorf("scatter = %+v", pts)
	}
	if pts := SizeScatter(tr, PriorityGroup(99)); pts != nil {
		t.Errorf("bogus group scatter = %+v", pts)
	}
}

func TestMachineHeterogeneity(t *testing.T) {
	tr := tinyTrace()
	hs := MachineHeterogeneity(tr)
	if len(hs) != 2 {
		t.Fatalf("summaries = %d", len(hs))
	}
	if !almost(hs[0].Fraction, 0.75) || !almost(hs[1].Fraction, 0.25) {
		t.Errorf("fractions = %v, %v", hs[0].Fraction, hs[1].Fraction)
	}
}

func TestGroupCounts(t *testing.T) {
	counts := GroupCounts(tinyTrace())
	if counts[Gratis] != 1 || counts[Other] != 1 || counts[Production] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr := tinyTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Horizon != tr.Horizon {
		t.Errorf("horizon = %v", got.Horizon)
	}
	if len(got.Tasks) != len(tr.Tasks) {
		t.Fatalf("tasks = %d", len(got.Tasks))
	}
	for i := range got.Tasks {
		if got.Tasks[i] != tr.Tasks[i] {
			t.Errorf("task %d = %+v, want %+v", i, got.Tasks[i], tr.Tasks[i])
		}
	}
	if len(got.Machines) != len(tr.Machines) {
		t.Fatalf("machines = %d", len(got.Machines))
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("not json")); err == nil {
		t.Error("garbage accepted")
	}
	// Header claiming more tasks than present.
	if _, err := Read(bytes.NewBufferString(`{"machines":[],"horizon":1,"tasks":5}` + "\n")); err == nil {
		t.Error("truncated stream accepted")
	}
}
