package trace

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// drain pulls every task out of a source.
func drain(t *testing.T, src TaskSource) []Task {
	t.Helper()
	var (
		out []Task
		tk  Task
	)
	for {
		ok, err := src.Next(&tk)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			return out
		}
		out = append(out, tk)
	}
}

// The chunked streaming generator and the one-shot Generate must emit
// byte-identical task sequences for the same config.
func TestGenSourceMatchesGenerate(t *testing.T) {
	cfg := DefaultConfig(42)
	cfg.Horizon = 6 * Hour
	cfg.RatePerS = 2.0

	tr, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for _, chunk := range []int{1, 7, 4096} {
		src, err := NewGenSource(cfg, chunk)
		if err != nil {
			t.Fatalf("NewGenSource(chunk=%d): %v", chunk, err)
		}
		got := drain(t, src)
		if !reflect.DeepEqual(got, tr.Tasks) {
			t.Fatalf("chunk=%d: streamed tasks differ from Generate (%d vs %d tasks)",
				chunk, len(got), len(tr.Tasks))
		}
	}
}

// Property test: random configurations, random chunk sizes — streamed
// and materialized modes must never diverge, and the stream must be in
// submit order.
func TestGenSourceEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 12; trial++ {
		cfg := DefaultConfig(rng.Int63())
		cfg.Horizon = (0.5 + 3*rng.Float64()) * Hour
		cfg.RatePerS = 0.3 + 4*rng.Float64()
		cfg.Diurnal = rng.Float64() * 0.5
		cfg.BurstProb = rng.Float64() * 0.05
		cfg.BurstFactor = 1 + rng.Float64()*4
		chunk := 1 + rng.Intn(512)

		tr, err := Generate(cfg)
		if err != nil {
			t.Fatalf("trial %d: Generate: %v", trial, err)
		}
		src, err := NewGenSource(cfg, chunk)
		if err != nil {
			t.Fatalf("trial %d: NewGenSource: %v", trial, err)
		}
		got := drain(t, src)
		if !reflect.DeepEqual(got, tr.Tasks) {
			t.Fatalf("trial %d (seed=%d chunk=%d): streamed %d tasks differ from materialized %d",
				trial, cfg.Seed, chunk, len(got), len(tr.Tasks))
		}
		prev := -1.0
		for i := range got {
			if got[i].Submit < prev {
				t.Fatalf("trial %d: task %d out of submit order", trial, i)
			}
			prev = got[i].Submit
		}
	}
}

// ReadChunk reassembles the same stream as per-task draining.
func TestReadChunk(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.Horizon = Hour
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	src, _ := NewGenSource(cfg, 64)
	buf := make([]Task, 33)
	var got []Task
	for {
		n, err := ReadChunk(src, buf)
		if err != nil {
			t.Fatalf("ReadChunk: %v", err)
		}
		got = append(got, buf[:n]...)
		if n < len(buf) {
			break
		}
	}
	if !reflect.DeepEqual(got, tr.Tasks) {
		t.Fatalf("chunked read differs: %d vs %d tasks", len(got), len(tr.Tasks))
	}
}

// WriteStream -> JSONLSource round-trips the stream without a count in
// the header, and Read accepts the tasks:-1 form.
func TestWriteStreamRoundTrip(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Horizon = 2 * Hour
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}

	var buf bytes.Buffer
	src, _ := NewGenSource(cfg, 0)
	n, err := WriteStream(&buf, src)
	if err != nil {
		t.Fatalf("WriteStream: %v", err)
	}
	if n != int64(len(tr.Tasks)) {
		t.Fatalf("WriteStream wrote %d tasks, want %d", n, len(tr.Tasks))
	}
	if !strings.Contains(strings.SplitN(buf.String(), "\n", 2)[0], `"tasks":-1`) {
		t.Fatalf("streamed header should carry tasks:-1, got %s", strings.SplitN(buf.String(), "\n", 2)[0])
	}

	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(got.Tasks, tr.Tasks) {
		t.Fatalf("round trip differs: %d vs %d tasks", len(got.Tasks), len(tr.Tasks))
	}
	if got.Horizon != tr.Horizon || !reflect.DeepEqual(got.Machines, tr.Machines) {
		t.Fatal("round trip lost header metadata")
	}
}

// A JSONL stream with a wrong declared count fails at end of stream, and
// an out-of-order stream fails on the offending task.
func TestJSONLSourceValidation(t *testing.T) {
	t.Run("count mismatch", func(t *testing.T) {
		in := `{"machines":[],"horizon":10,"tasks":3}` + "\n" +
			`{"id":1,"submit":1,"duration":1}` + "\n"
		src, err := NewJSONLSource(strings.NewReader(in))
		if err != nil {
			t.Fatalf("NewJSONLSource: %v", err)
		}
		var tk Task
		if ok, err := src.Next(&tk); !ok || err != nil {
			t.Fatalf("first Next = %v, %v", ok, err)
		}
		if _, err := src.Next(&tk); err == nil {
			t.Fatal("count mismatch not detected")
		}
	})
	t.Run("out of order", func(t *testing.T) {
		in := `{"machines":[],"horizon":10,"tasks":-1}` + "\n" +
			`{"id":1,"submit":5,"duration":1}` + "\n" +
			`{"id":2,"submit":2,"duration":1}` + "\n"
		src, err := NewJSONLSource(strings.NewReader(in))
		if err != nil {
			t.Fatalf("NewJSONLSource: %v", err)
		}
		var tk Task
		if ok, err := src.Next(&tk); !ok || err != nil {
			t.Fatalf("first Next = %v, %v", ok, err)
		}
		if _, err := src.Next(&tk); err == nil {
			t.Fatal("out-of-order task not detected")
		}
	})
}

// CSV streaming source matches ReadCSV and rejects shuffled rows.
func TestCSVSourceRoundTrip(t *testing.T) {
	cfg := DefaultConfig(11)
	cfg.Horizon = Hour
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var buf bytes.Buffer
	if _, err := WriteCSVStream(&buf, NewSliceSource(tr)); err != nil {
		t.Fatalf("WriteCSVStream: %v", err)
	}
	src, err := NewCSVSource(bytes.NewReader(buf.Bytes()), tr.Machines, tr.Horizon)
	if err != nil {
		t.Fatalf("NewCSVSource: %v", err)
	}
	got := drain(t, src)
	if len(got) != len(tr.Tasks) {
		t.Fatalf("CSV stream has %d tasks, want %d", len(got), len(tr.Tasks))
	}
	for i := range got {
		if got[i].ID != tr.Tasks[i].ID || got[i].Submit != tr.Tasks[i].Submit ||
			got[i].Constraint != tr.Tasks[i].Constraint {
			t.Fatalf("CSV task %d differs: %+v vs %+v", i, got[i], tr.Tasks[i])
		}
	}

	t.Run("out of order", func(t *testing.T) {
		in := strings.Join([]string{
			"id,job,submit,duration,cpu,mem,priority,class,constraint",
			"1,1,5,1,0.1,0.1,0,0,",
			"2,1,2,1,0.1,0.1,0,0,",
		}, "\n")
		src, err := NewCSVSource(strings.NewReader(in), nil, 10)
		if err != nil {
			t.Fatalf("NewCSVSource: %v", err)
		}
		var tk Task
		if ok, err := src.Next(&tk); !ok || err != nil {
			t.Fatalf("first Next = %v, %v", ok, err)
		}
		if _, err := src.Next(&tk); err == nil {
			t.Fatal("out-of-order CSV row not detected")
		}
	})
}

// Collect rejects sources that violate submit order or lie about counts.
func TestCollectValidation(t *testing.T) {
	bad := &Trace{
		Horizon: 10,
		Tasks: []Task{
			{ID: 1, Submit: 5},
			{ID: 2, Submit: 1},
		},
	}
	if _, err := Collect(NewSliceSource(bad)); err == nil {
		t.Fatal("Collect accepted out-of-order source")
	}
	if _, err := Collect(ErrSource(nil)); err == nil {
		t.Fatal("Collect accepted failing source")
	}
}

// --- DemandSeries boundary pins (the end-bin accounting fix) ---

// A task ending exactly at the horizon must be released: demand returns
// to zero afterward instead of leaking into every later bin.
func TestDemandSeriesReleasesTaskEndingAtHorizon(t *testing.T) {
	tr := &Trace{
		Horizon: 100,
		Tasks: []Task{
			{ID: 1, Submit: 0, Duration: 100, CPU: 1, Mem: 1}, // spans everything
			{ID: 2, Submit: 10, Duration: 10, CPU: 2, Mem: 3}, // ends at 20 = bin boundary
		},
	}
	cpu, _, err := DemandSeries(tr, 10)
	if err != nil {
		t.Fatalf("DemandSeries: %v", err)
	}
	// Bin 1 covers [10,20): both tasks. Bin 2 covers [20,30): task 2 is
	// gone — this is the case the old floor-based end bin got right only
	// when the end fell mid-bin.
	if got := cpu.Points[1].Y; got != 3 {
		t.Errorf("bin [10,20) CPU = %g, want 3", got)
	}
	if got := cpu.Points[2].Y; got != 1 {
		t.Errorf("bin [20,30) CPU = %g, want 1 (task ending on the boundary must be released)", got)
	}
	// The horizon-spanning task is active in the last bin and the series
	// never goes negative or retains phantom demand.
	if got := cpu.Points[len(cpu.Points)-1].Y; got != 1 {
		t.Errorf("last bin CPU = %g, want 1", got)
	}
}

// Horizon an exact multiple of binWidth yields exactly Horizon/binWidth
// bins — no phantom trailing bin.
func TestDemandSeriesExactMultipleBinCount(t *testing.T) {
	tr := &Trace{Horizon: 100, Tasks: []Task{{ID: 1, Submit: 0, Duration: 1, CPU: 1, Mem: 1}}}
	cpu, mem, err := DemandSeries(tr, 10)
	if err != nil {
		t.Fatalf("DemandSeries: %v", err)
	}
	if len(cpu.Points) != 10 || len(mem.Points) != 10 {
		t.Fatalf("bin count = %d/%d, want 10/10", len(cpu.Points), len(mem.Points))
	}
	// Non-multiple horizon rounds up.
	tr.Horizon = 105
	cpu, _, err = DemandSeries(tr, 10)
	if err != nil {
		t.Fatalf("DemandSeries: %v", err)
	}
	if len(cpu.Points) != 11 {
		t.Fatalf("bin count = %d, want 11 for horizon 105", len(cpu.Points))
	}
}

// Bin membership semantics: a task enters at its submit bin and leaves
// at its end bin; one fully inside a bin nets to zero; one running past
// the horizon stays active through the last bin.
func TestDemandSeriesBinMembership(t *testing.T) {
	tr := &Trace{
		Horizon: 30,
		Tasks: []Task{
			{ID: 1, Submit: 5, Duration: 10, CPU: 1, Mem: 1},   // [5,15): enters bin 0, leaves at bin 1
			{ID: 2, Submit: 16, Duration: 2, CPU: 8, Mem: 8},   // inside bin 1: nets to zero
			{ID: 3, Submit: 25, Duration: 100, CPU: 4, Mem: 4}, // runs past horizon
		},
	}
	cpu, _, err := DemandSeries(tr, 10)
	if err != nil {
		t.Fatalf("DemandSeries: %v", err)
	}
	want := []float64{1, 0, 4}
	for i, w := range want {
		if got := cpu.Points[i].Y; got != w {
			t.Errorf("bin %d CPU = %g, want %g", i, got, w)
		}
	}
}

// Streaming and materialized analysis agree.
func TestDemandSeriesFromMatchesBatch(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.Horizon = 3 * Hour
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	bc, bm, err := DemandSeries(tr, 300)
	if err != nil {
		t.Fatalf("DemandSeries: %v", err)
	}
	src, _ := NewGenSource(cfg, 256)
	sc, sm, err := DemandSeriesFrom(src, 300)
	if err != nil {
		t.Fatalf("DemandSeriesFrom: %v", err)
	}
	if !reflect.DeepEqual(bc, sc) || !reflect.DeepEqual(bm, sm) {
		t.Fatal("streaming demand series differs from batch")
	}

	br, err := ArrivalRates(tr, 300)
	if err != nil {
		t.Fatalf("ArrivalRates: %v", err)
	}
	src2, _ := NewGenSource(cfg, 256)
	sr, err := ArrivalRatesFrom(src2, 300)
	if err != nil {
		t.Fatalf("ArrivalRatesFrom: %v", err)
	}
	if !reflect.DeepEqual(br, sr) {
		t.Fatal("streaming arrival rates differ from batch")
	}
}

// Demand conservation: the integral of the demand series equals the sum
// of task CPU-seconds clipped to the horizon (within bin quantization).
func TestDemandSeriesConservation(t *testing.T) {
	cfg := DefaultConfig(9)
	cfg.Horizon = 2 * Hour
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	const w = 60.0
	cpu, _, err := DemandSeries(tr, w)
	if err != nil {
		t.Fatalf("DemandSeries: %v", err)
	}
	var integral float64
	for _, p := range cpu.Points {
		integral += p.Y * w
	}
	var exact float64
	for _, tk := range tr.Tasks {
		end := math.Min(tk.Submit+tk.Duration, tr.Horizon)
		if end > tk.Submit {
			exact += (end - tk.Submit) * tk.CPU
		}
	}
	// Bin quantization over/under-counts by at most one bin per task edge.
	if rel := math.Abs(integral-exact) / exact; rel > 0.05 {
		t.Errorf("binned CPU-seconds %.1f vs exact %.1f (rel err %.3f)", integral, exact, rel)
	}
}
