package trace

import (
	"errors"
	"math"

	"harmony/internal/stats"
)

// DemandSeries computes the total CPU and memory demand present in the
// system over time (Figures 1 and 2): each task contributes its demand from
// submission until submission+duration. binWidth is in seconds.
func DemandSeries(tr *Trace, binWidth float64) (cpu, mem stats.Series, err error) {
	return DemandSeriesFrom(NewSliceSource(tr), binWidth)
}

// DemandSeriesFrom is the streaming form of DemandSeries: one pass over
// src with memory proportional to the number of bins, not the number of
// tasks. A task enters the series at the bin containing its submit time
// and leaves at the bin containing its end time (so a task fully inside
// one bin nets to zero — binning is unbiased, not overlap-maximal). The
// series spans ceil(Horizon/binWidth) bins: a horizon that is an exact
// multiple of the bin width yields exactly Horizon/binWidth points, with
// no phantom trailing bin, and a task ending exactly at the horizon is
// released into the diff array's off-the-end slot rather than having its
// decrement silently dropped.
func DemandSeriesFrom(src TaskSource, binWidth float64) (cpu, mem stats.Series, err error) {
	if binWidth <= 0 {
		return cpu, mem, errors.New("trace: bin width must be positive")
	}
	m := src.Meta()
	nbins := int(math.Ceil(m.Horizon / binWidth))
	if nbins < 1 {
		nbins = 1
	}
	// Difference arrays: +demand at the submit bin, -demand at the end
	// bin. Index nbins is the off-the-end slot for tasks that run to (or
	// beyond) the horizon.
	cpuDiff := make([]float64, nbins+1)
	memDiff := make([]float64, nbins+1)
	var t Task
	for {
		ok, nerr := src.Next(&t)
		if nerr != nil {
			return cpu, mem, nerr
		}
		if !ok {
			break
		}
		start := int(t.Submit / binWidth)
		if start < 0 {
			start = 0
		}
		if start > nbins-1 {
			start = nbins - 1
		}
		end := int((t.Submit + t.Duration) / binWidth)
		if end < start {
			end = start
		}
		if end > nbins {
			end = nbins
		}
		cpuDiff[start] += t.CPU
		memDiff[start] += t.Mem
		cpuDiff[end] -= t.CPU
		memDiff[end] -= t.Mem
	}
	cpuPts := make([]stats.Point, nbins)
	memPts := make([]stats.Point, nbins)
	var cAcc, mAcc float64
	for i := 0; i < nbins; i++ {
		cAcc += cpuDiff[i]
		mAcc += memDiff[i]
		x := float64(i) * binWidth
		cpuPts[i] = stats.Point{X: x, Y: cAcc}
		memPts[i] = stats.Point{X: x, Y: mAcc}
	}
	return stats.Series{Name: "total CPU demand", Points: cpuPts},
		stats.Series{Name: "total memory demand", Points: memPts}, nil
}

// ArrivalRates computes the per-priority-group task arrival rate over time
// (Figure 19), in tasks per second, binned at binWidth seconds.
func ArrivalRates(tr *Trace, binWidth float64) (map[PriorityGroup]stats.Series, error) {
	return ArrivalRatesFrom(NewSliceSource(tr), binWidth)
}

// ArrivalRatesFrom is the streaming form of ArrivalRates: one pass over
// src, memory proportional to the number of occupied bins.
func ArrivalRatesFrom(src TaskSource, binWidth float64) (map[PriorityGroup]stats.Series, error) {
	if binWidth <= 0 {
		return nil, errors.New("trace: bin width must be positive")
	}
	binners := make(map[PriorityGroup]*stats.TimeBinner, NumGroups)
	for _, g := range Groups() {
		b, err := stats.NewTimeBinner(binWidth)
		if err != nil {
			return nil, err
		}
		binners[g] = b
	}
	var t Task
	for {
		ok, err := src.Next(&t)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		binners[t.Group()].Observe(t.Submit, 1)
	}
	out := make(map[PriorityGroup]stats.Series, NumGroups)
	for g, b := range binners {
		out[g] = b.RateSeries("arrival rate " + g.String())
	}
	return out, nil
}

// DurationCDFs returns the empirical CDF of task duration per priority
// group (Figure 6).
func DurationCDFs(tr *Trace) map[PriorityGroup]*stats.CDF {
	out := make(map[PriorityGroup]*stats.CDF, NumGroups)
	for _, g := range Groups() {
		out[g] = &stats.CDF{}
	}
	for _, t := range tr.Tasks {
		out[t.Group()].Add(t.Duration)
	}
	return out
}

// SizeScatter returns the (CPU, Mem) demand points of every task in the
// given priority group (Figure 7a/b/c).
func SizeScatter(tr *Trace, g PriorityGroup) []stats.Point {
	var pts []stats.Point
	for _, t := range tr.Tasks {
		if t.Group() == g {
			pts = append(pts, stats.Point{X: t.CPU, Y: t.Mem})
		}
	}
	return pts
}

// MachineSummary describes one machine type row of Figure 5.
type MachineSummary struct {
	Type     MachineType
	Fraction float64 // fraction of the machine population
}

// MachineHeterogeneity returns the Figure 5 view of the machine population.
func MachineHeterogeneity(tr *Trace) []MachineSummary {
	total := tr.TotalMachines()
	out := make([]MachineSummary, 0, len(tr.Machines))
	for _, m := range tr.Machines {
		frac := 0.0
		if total > 0 {
			frac = float64(m.Count) / float64(total)
		}
		out = append(out, MachineSummary{Type: m, Fraction: frac})
	}
	return out
}

// GroupCounts returns the number of tasks per priority group.
func GroupCounts(tr *Trace) map[PriorityGroup]int {
	out := make(map[PriorityGroup]int, NumGroups)
	for _, t := range tr.Tasks {
		out[t.Group()]++
	}
	return out
}
