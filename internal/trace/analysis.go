package trace

import (
	"errors"

	"harmony/internal/stats"
)

// DemandSeries computes the total CPU and memory demand present in the
// system over time (Figures 1 and 2): each task contributes its demand from
// submission until submission+duration. binWidth is in seconds.
func DemandSeries(tr *Trace, binWidth float64) (cpu, mem stats.Series, err error) {
	if binWidth <= 0 {
		return cpu, mem, errors.New("trace: bin width must be positive")
	}
	nbins := int(tr.Horizon/binWidth) + 1
	cpuDiff := make([]float64, nbins+1)
	memDiff := make([]float64, nbins+1)
	clampBin := func(t float64) int {
		b := int(t / binWidth)
		if b < 0 {
			return 0
		}
		if b > nbins {
			return nbins
		}
		return b
	}
	for _, t := range tr.Tasks {
		start := clampBin(t.Submit)
		end := clampBin(t.Submit + t.Duration)
		cpuDiff[start] += t.CPU
		memDiff[start] += t.Mem
		if end < nbins {
			cpuDiff[end] -= t.CPU
			memDiff[end] -= t.Mem
		}
	}
	cpuPts := make([]stats.Point, nbins)
	memPts := make([]stats.Point, nbins)
	var cAcc, mAcc float64
	for i := 0; i < nbins; i++ {
		cAcc += cpuDiff[i]
		mAcc += memDiff[i]
		x := float64(i) * binWidth
		cpuPts[i] = stats.Point{X: x, Y: cAcc}
		memPts[i] = stats.Point{X: x, Y: mAcc}
	}
	return stats.Series{Name: "total CPU demand", Points: cpuPts},
		stats.Series{Name: "total memory demand", Points: memPts}, nil
}

// ArrivalRates computes the per-priority-group task arrival rate over time
// (Figure 19), in tasks per second, binned at binWidth seconds.
func ArrivalRates(tr *Trace, binWidth float64) (map[PriorityGroup]stats.Series, error) {
	if binWidth <= 0 {
		return nil, errors.New("trace: bin width must be positive")
	}
	binners := make(map[PriorityGroup]*stats.TimeBinner, NumGroups)
	for _, g := range Groups() {
		b, err := stats.NewTimeBinner(binWidth)
		if err != nil {
			return nil, err
		}
		binners[g] = b
	}
	for _, t := range tr.Tasks {
		binners[t.Group()].Observe(t.Submit, 1)
	}
	out := make(map[PriorityGroup]stats.Series, NumGroups)
	for g, b := range binners {
		out[g] = b.RateSeries("arrival rate " + g.String())
	}
	return out, nil
}

// DurationCDFs returns the empirical CDF of task duration per priority
// group (Figure 6).
func DurationCDFs(tr *Trace) map[PriorityGroup]*stats.CDF {
	out := make(map[PriorityGroup]*stats.CDF, NumGroups)
	for _, g := range Groups() {
		out[g] = &stats.CDF{}
	}
	for _, t := range tr.Tasks {
		out[t.Group()].Add(t.Duration)
	}
	return out
}

// SizeScatter returns the (CPU, Mem) demand points of every task in the
// given priority group (Figure 7a/b/c).
func SizeScatter(tr *Trace, g PriorityGroup) []stats.Point {
	var pts []stats.Point
	for _, t := range tr.Tasks {
		if t.Group() == g {
			pts = append(pts, stats.Point{X: t.CPU, Y: t.Mem})
		}
	}
	return pts
}

// MachineSummary describes one machine type row of Figure 5.
type MachineSummary struct {
	Type     MachineType
	Fraction float64 // fraction of the machine population
}

// MachineHeterogeneity returns the Figure 5 view of the machine population.
func MachineHeterogeneity(tr *Trace) []MachineSummary {
	total := tr.TotalMachines()
	out := make([]MachineSummary, 0, len(tr.Machines))
	for _, m := range tr.Machines {
		frac := 0.0
		if total > 0 {
			frac = float64(m.Count) / float64(total)
		}
		out = append(out, MachineSummary{Type: m, Fraction: frac})
	}
	return out
}

// GroupCounts returns the number of tasks per priority group.
func GroupCounts(tr *Trace) map[PriorityGroup]int {
	out := make(map[PriorityGroup]int, NumGroups)
	for _, t := range tr.Tasks {
		out[t.Group()]++
	}
	return out
}
