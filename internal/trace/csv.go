package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// csvHeader is the column layout of the CSV task export.
var csvHeader = []string{"id", "job", "submit", "duration", "cpu", "mem", "priority", "class", "constraint"}

// WriteCSV exports the task stream as CSV (one row per task, header row
// first). Machine metadata is not part of the CSV form — use Write for a
// lossless round trip; CSV exists for interoperability with external
// analysis tools.
func WriteCSV(w io.Writer, tr *Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: csv header: %w", err)
	}
	row := make([]string, len(csvHeader))
	for i := range tr.Tasks {
		t := &tr.Tasks[i]
		row[0] = strconv.FormatUint(t.ID, 10)
		row[1] = strconv.FormatUint(t.JobID, 10)
		row[2] = strconv.FormatFloat(t.Submit, 'g', -1, 64)
		row[3] = strconv.FormatFloat(t.Duration, 'g', -1, 64)
		row[4] = strconv.FormatFloat(t.CPU, 'g', -1, 64)
		row[5] = strconv.FormatFloat(t.Mem, 'g', -1, 64)
		row[6] = strconv.Itoa(t.Priority)
		row[7] = strconv.Itoa(t.SchedClass)
		row[8] = t.Constraint
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: csv task %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a task stream produced by WriteCSV. The caller supplies
// the machine population (CSV does not carry it) and horizon; pass
// horizon <= 0 to infer it from the last task's submit+duration.
func ReadCSV(r io.Reader, machines []MachineType, horizon float64) (*Trace, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: csv header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("trace: csv header has %d columns, want %d", len(header), len(csvHeader))
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("trace: csv column %d is %q, want %q", i, header[i], want)
		}
	}
	tr := &Trace{Machines: machines, Horizon: horizon}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: %w", line, err)
		}
		t, err := taskFromCSV(rec)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: %w", line, err)
		}
		tr.Tasks = append(tr.Tasks, t)
	}
	if tr.Horizon <= 0 {
		for i := range tr.Tasks {
			if end := tr.Tasks[i].Submit + tr.Tasks[i].Duration; end > tr.Horizon {
				tr.Horizon = end
			}
		}
	}
	return tr, nil
}

func taskFromCSV(rec []string) (Task, error) {
	var (
		t   Task
		err error
	)
	if t.ID, err = strconv.ParseUint(rec[0], 10, 64); err != nil {
		return t, fmt.Errorf("id: %w", err)
	}
	if t.JobID, err = strconv.ParseUint(rec[1], 10, 64); err != nil {
		return t, fmt.Errorf("job: %w", err)
	}
	if t.Submit, err = strconv.ParseFloat(rec[2], 64); err != nil {
		return t, fmt.Errorf("submit: %w", err)
	}
	if t.Duration, err = strconv.ParseFloat(rec[3], 64); err != nil {
		return t, fmt.Errorf("duration: %w", err)
	}
	if t.CPU, err = strconv.ParseFloat(rec[4], 64); err != nil {
		return t, fmt.Errorf("cpu: %w", err)
	}
	if t.Mem, err = strconv.ParseFloat(rec[5], 64); err != nil {
		return t, fmt.Errorf("mem: %w", err)
	}
	if t.Priority, err = strconv.Atoi(rec[6]); err != nil {
		return t, fmt.Errorf("priority: %w", err)
	}
	if t.SchedClass, err = strconv.Atoi(rec[7]); err != nil {
		return t, fmt.Errorf("class: %w", err)
	}
	t.Constraint = rec[8]
	return t, nil
}
