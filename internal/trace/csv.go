package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// csvHeader is the column layout of the CSV task export.
var csvHeader = []string{"id", "job", "submit", "duration", "cpu", "mem", "priority", "class", "constraint"}

// WriteCSV exports the task stream as CSV (one row per task, header row
// first). Machine metadata is not part of the CSV form — use Write for a
// lossless round trip; CSV exists for interoperability with external
// analysis tools.
func WriteCSV(w io.Writer, tr *Trace) error {
	_, err := WriteCSVStream(w, NewSliceSource(tr))
	return err
}

// WriteCSVStream drains src to w as CSV without materializing it, and
// returns the number of rows written (excluding the header).
func WriteCSVStream(w io.Writer, src TaskSource) (int64, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return 0, fmt.Errorf("trace: csv header: %w", err)
	}
	row := make([]string, len(csvHeader))
	var (
		n int64
		t Task
	)
	for {
		ok, err := src.Next(&t)
		if err != nil {
			return n, err
		}
		if !ok {
			break
		}
		row[0] = strconv.FormatUint(t.ID, 10)
		row[1] = strconv.FormatUint(t.JobID, 10)
		row[2] = strconv.FormatFloat(t.Submit, 'g', -1, 64)
		row[3] = strconv.FormatFloat(t.Duration, 'g', -1, 64)
		row[4] = strconv.FormatFloat(t.CPU, 'g', -1, 64)
		row[5] = strconv.FormatFloat(t.Mem, 'g', -1, 64)
		row[6] = strconv.Itoa(t.Priority)
		row[7] = strconv.Itoa(t.SchedClass)
		row[8] = t.Constraint
		if err := cw.Write(row); err != nil {
			return n, fmt.Errorf("trace: csv task %d: %w", n, err)
		}
		n++
	}
	cw.Flush()
	return n, cw.Error()
}

// CSVSource streams tasks from a WriteCSV export one row at a time. The
// caller supplies the machine population (CSV does not carry it) and
// horizon; horizon <= 0 leaves Meta.Horizon at 0, and batch callers that
// need an inferred horizon should use ReadCSV instead (inference requires
// seeing every row).
type CSVSource struct {
	cr   *csv.Reader
	meta Meta
	line int64
	prev float64
	done bool
}

// NewCSVSource validates the CSV header of r and returns a source over
// its rows. Each Next validates submit-order monotonicity, so a shuffled
// export fails fast rather than silently corrupting a simulation.
func NewCSVSource(r io.Reader, machines []MachineType, horizon float64) (*CSVSource, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	hdr, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: csv header: %w", err)
	}
	if len(hdr) != len(csvHeader) {
		return nil, fmt.Errorf("trace: csv header has %d columns, want %d", len(hdr), len(csvHeader))
	}
	for i, want := range csvHeader {
		if hdr[i] != want {
			return nil, fmt.Errorf("trace: csv column %d is %q, want %q", i, hdr[i], want)
		}
	}
	return &CSVSource{
		cr:   cr,
		meta: Meta{Machines: machines, Horizon: horizon, Tasks: TasksUnknown},
		line: 1,
		prev: -1,
	}, nil
}

// Meta implements TaskSource.
func (s *CSVSource) Meta() Meta { return s.meta }

// Next implements TaskSource.
func (s *CSVSource) Next(t *Task) (bool, error) {
	if s.done {
		return false, nil
	}
	s.line++
	rec, err := s.cr.Read()
	if err == io.EOF {
		s.done = true
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("trace: csv line %d: %w", s.line, err)
	}
	tt, err := taskFromCSV(rec)
	if err != nil {
		return false, fmt.Errorf("trace: csv line %d: %w", s.line, err)
	}
	if tt.Submit < s.prev {
		return false, fmt.Errorf("trace: csv line %d out of submit order (%g after %g)", s.line, tt.Submit, s.prev)
	}
	s.prev = tt.Submit
	*t = tt
	return true, nil
}

// ReadCSV parses a task stream produced by WriteCSV. The caller supplies
// the machine population (CSV does not carry it) and horizon; pass
// horizon <= 0 to infer it from the last task's submit+duration.
func ReadCSV(r io.Reader, machines []MachineType, horizon float64) (*Trace, error) {
	src, err := NewCSVSource(r, machines, horizon)
	if err != nil {
		return nil, err
	}
	tr, err := Collect(src)
	if err != nil {
		return nil, err
	}
	if tr.Horizon <= 0 {
		for i := range tr.Tasks {
			if end := tr.Tasks[i].Submit + tr.Tasks[i].Duration; end > tr.Horizon {
				tr.Horizon = end
			}
		}
	}
	return tr, nil
}

func taskFromCSV(rec []string) (Task, error) {
	var (
		t   Task
		err error
	)
	if t.ID, err = strconv.ParseUint(rec[0], 10, 64); err != nil {
		return t, fmt.Errorf("id: %w", err)
	}
	if t.JobID, err = strconv.ParseUint(rec[1], 10, 64); err != nil {
		return t, fmt.Errorf("job: %w", err)
	}
	if t.Submit, err = strconv.ParseFloat(rec[2], 64); err != nil {
		return t, fmt.Errorf("submit: %w", err)
	}
	if t.Duration, err = strconv.ParseFloat(rec[3], 64); err != nil {
		return t, fmt.Errorf("duration: %w", err)
	}
	if t.CPU, err = strconv.ParseFloat(rec[4], 64); err != nil {
		return t, fmt.Errorf("cpu: %w", err)
	}
	if t.Mem, err = strconv.ParseFloat(rec[5], 64); err != nil {
		return t, fmt.Errorf("mem: %w", err)
	}
	if t.Priority, err = strconv.Atoi(rec[6]); err != nil {
		return t, fmt.Errorf("priority: %w", err)
	}
	if t.SchedClass, err = strconv.Atoi(rec[7]); err != nil {
		return t, fmt.Errorf("class: %w", err)
	}
	t.Constraint = rec[8]
	return t, nil
}
