package trace

import (
	"errors"
	"fmt"
)

// TasksUnknown is the Meta.Tasks value of a stream whose total task
// count is not known up front (generators, pipes).
const TasksUnknown int64 = -1

// Meta is the fixed part of a workload stream: everything a consumer
// needs before the first task — the machine population and the horizon —
// plus the total task count when the producer knows it.
type Meta struct {
	Machines []MachineType
	Horizon  float64 // seconds covered by the stream
	Tasks    int64   // total task count, or TasksUnknown
}

// TaskSource produces a task stream in non-decreasing submit order
// without ever materializing it. It is the streaming counterpart of
// Trace: a 25M-task workload flows through a source with O(1) live
// state, so peak memory is set by the consumer (live tasks, machines),
// not the trace length.
//
// Next fills *t and reports whether a task was produced; (false, nil)
// means a clean end of stream. Sources are single-pass and not safe for
// concurrent use.
type TaskSource interface {
	Meta() Meta
	Next(t *Task) (bool, error)
}

// SliceSource adapts a materialized Trace to the TaskSource interface.
type SliceSource struct {
	tr  *Trace
	pos int
}

// NewSliceSource returns a source that replays tr's (already sorted)
// task slice.
func NewSliceSource(tr *Trace) *SliceSource { return &SliceSource{tr: tr} }

// Meta implements TaskSource.
func (s *SliceSource) Meta() Meta {
	return Meta{Machines: s.tr.Machines, Horizon: s.tr.Horizon, Tasks: int64(len(s.tr.Tasks))}
}

// Next implements TaskSource.
//
//harmony:hotpath
func (s *SliceSource) Next(t *Task) (bool, error) {
	if s.pos >= len(s.tr.Tasks) {
		return false, nil
	}
	*t = s.tr.Tasks[s.pos]
	s.pos++
	return true, nil
}

// ReadChunk fills buf from src and returns how many entries were
// filled. A short (or zero) count with a nil error means the source is
// exhausted. Chunked draining lets batch consumers amortize per-task
// call overhead while keeping memory at the chunk size.
func ReadChunk(src TaskSource, buf []Task) (int, error) {
	for i := range buf {
		ok, err := src.Next(&buf[i])
		if err != nil {
			return i, err
		}
		if !ok {
			return i, nil
		}
	}
	return len(buf), nil
}

// Collect materializes a source into a Trace. It is the bridge back to
// the batch API for workloads small enough to hold; trace-scale runs
// should consume the source directly instead.
func Collect(src TaskSource) (*Trace, error) {
	m := src.Meta()
	tr := &Trace{Machines: m.Machines, Horizon: m.Horizon}
	if m.Tasks > 0 {
		tr.Tasks = make([]Task, 0, m.Tasks)
	}
	prev := -1.0
	var t Task
	for {
		ok, err := src.Next(&t)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if t.Submit < prev {
			return nil, fmt.Errorf("trace: source emitted out-of-order task %d (submit %g after %g)",
				t.ID, t.Submit, prev)
		}
		prev = t.Submit
		tr.Tasks = append(tr.Tasks, t)
	}
	if m.Tasks >= 0 && int64(len(tr.Tasks)) != m.Tasks {
		return nil, fmt.Errorf("trace: source meta says %d tasks, stream had %d", m.Tasks, len(tr.Tasks))
	}
	return tr, nil
}

// errSource is a source that fails immediately; constructors use it so
// callers get the error on first Next when they ignore construction
// errors.
type errSource struct{ err error }

func (e errSource) Meta() Meta               { return Meta{} }
func (e errSource) Next(*Task) (bool, error) { return false, e.err }

// ErrSource returns a TaskSource whose Next always fails with err.
func ErrSource(err error) TaskSource {
	if err == nil {
		err = errors.New("trace: nil source error")
	}
	return errSource{err: err}
}
