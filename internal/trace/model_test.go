package trace

import (
	"testing"
	"testing/quick"
)

func TestGroupOf(t *testing.T) {
	tests := []struct {
		priority int
		want     PriorityGroup
	}{
		{0, Gratis}, {1, Gratis},
		{2, Other}, {5, Other}, {8, Other},
		{9, Production}, {10, Production}, {11, Production},
	}
	for _, tt := range tests {
		if got := GroupOf(tt.priority); got != tt.want {
			t.Errorf("GroupOf(%d) = %v, want %v", tt.priority, got, tt.want)
		}
	}
}

func TestGroupStringAndIndex(t *testing.T) {
	if Gratis.String() != "gratis" || Other.String() != "other" || Production.String() != "production" {
		t.Error("unexpected group names")
	}
	if PriorityGroup(99).String() != "PriorityGroup(99)" {
		t.Error("unexpected fallback name")
	}
	for i, g := range Groups() {
		if g.Index() != i {
			t.Errorf("Index(%v) = %d, want %d", g, g.Index(), i)
		}
	}
}

func TestMachineFits(t *testing.T) {
	m := MachineType{CPU: 0.5, Mem: 0.25}
	if !m.Fits(0.5, 0.25) {
		t.Error("exact fit rejected")
	}
	if m.Fits(0.51, 0.1) {
		t.Error("cpu overflow accepted")
	}
	if m.Fits(0.1, 0.26) {
		t.Error("mem overflow accepted")
	}
}

func TestTraceValidate(t *testing.T) {
	good := &Trace{
		Machines: []MachineType{{ID: 1, CPU: 1, Mem: 1, Count: 10}},
		Tasks: []Task{
			{ID: 1, Submit: 0, Duration: 10, CPU: 0.1, Mem: 0.1, Priority: 0},
			{ID: 2, Submit: 5, Duration: 10, CPU: 0.1, Mem: 0.1, Priority: 9},
		},
		Horizon: 100,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}

	tests := []struct {
		name   string
		mutate func(*Trace)
	}{
		{"no machines", func(tr *Trace) { tr.Machines = nil }},
		{"bad machine cap", func(tr *Trace) { tr.Machines[0].CPU = 1.5 }},
		{"negative count", func(tr *Trace) { tr.Machines[0].Count = -1 }},
		{"negative submit", func(tr *Trace) { tr.Tasks[0].Submit = -1 }},
		{"unsorted", func(tr *Trace) { tr.Tasks[1].Submit = -0.5; tr.Tasks[0].Submit = 1 }},
		{"zero duration", func(tr *Trace) { tr.Tasks[0].Duration = 0 }},
		{"oversized task", func(tr *Trace) { tr.Tasks[0].CPU = 1.2 }},
		{"bad priority", func(tr *Trace) { tr.Tasks[0].Priority = 12 }},
		{"bad class", func(tr *Trace) { tr.Tasks[0].SchedClass = 4 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			bad := &Trace{
				Machines: []MachineType{{ID: 1, CPU: 1, Mem: 1, Count: 10}},
				Tasks: []Task{
					{ID: 1, Submit: 0, Duration: 10, CPU: 0.1, Mem: 0.1},
					{ID: 2, Submit: 5, Duration: 10, CPU: 0.1, Mem: 0.1},
				},
				Horizon: 100,
			}
			tt.mutate(bad)
			if err := bad.Validate(); err == nil {
				t.Error("invalid trace accepted")
			}
		})
	}
}

func TestSortTasks(t *testing.T) {
	tr := &Trace{Tasks: []Task{
		{ID: 3, Submit: 10},
		{ID: 1, Submit: 5},
		{ID: 2, Submit: 5},
	}}
	tr.SortTasks()
	wantIDs := []uint64{1, 2, 3}
	for i, w := range wantIDs {
		if tr.Tasks[i].ID != w {
			t.Errorf("tasks[%d].ID = %d, want %d", i, tr.Tasks[i].ID, w)
		}
	}
}

func TestTotalMachines(t *testing.T) {
	tr := &Trace{Machines: []MachineType{{Count: 3}, {Count: 4}}}
	if got := tr.TotalMachines(); got != 7 {
		t.Errorf("TotalMachines = %d", got)
	}
}

// Property: GroupOf is total and consistent with group priority ranges.
func TestGroupOfProperty(t *testing.T) {
	f := func(p uint8) bool {
		prio := int(p % 12)
		g := GroupOf(prio)
		switch g {
		case Gratis:
			return prio <= 1
		case Other:
			return prio >= 2 && prio <= 8
		case Production:
			return prio >= 9
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
