package trace

import (
	"math"
	"testing"
)

func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Horizon = 6 * Hour
	cfg.RatePerS = 2
	return cfg
}

func TestGenerateValidates(t *testing.T) {
	tr, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	if len(tr.Tasks) < 1000 {
		t.Fatalf("too few tasks generated: %d", len(tr.Tasks))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Tasks), len(b.Tasks))
	}
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			t.Fatalf("task %d differs: %+v vs %+v", i, a.Tasks[i], b.Tasks[i])
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(smallConfig(1))
	b, _ := Generate(smallConfig(2))
	if len(a.Tasks) == len(b.Tasks) {
		same := true
		for i := range a.Tasks {
			if a.Tasks[i] != b.Tasks[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestGenerateConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero horizon", func(c *Config) { c.Horizon = 0 }},
		{"zero rate", func(c *Config) { c.RatePerS = 0 }},
		{"no machines", func(c *Config) { c.Machines = nil }},
		{"negative share", func(c *Config) { c.Groups[0].Share = -1 }},
		{"zero shares", func(c *Config) {
			for i := range c.Groups {
				c.Groups[i].Share = 0
			}
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := smallConfig(1)
			tt.mutate(&cfg)
			if _, err := Generate(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestGenerateGroupShares(t *testing.T) {
	tr, err := Generate(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	counts := GroupCounts(tr)
	total := len(tr.Tasks)
	gratisFrac := float64(counts[Gratis]) / float64(total)
	prodFrac := float64(counts[Production]) / float64(total)
	if gratisFrac < 0.45 || gratisFrac > 0.65 {
		t.Errorf("gratis share = %v, want ~0.55", gratisFrac)
	}
	if prodFrac < 0.03 || prodFrac > 0.12 {
		t.Errorf("production share = %v, want ~0.07", prodFrac)
	}
}

// The paper: task sizes span several orders of magnitude, and >50% of tasks
// are short (< 100 s).
func TestGenerateHeterogeneityProperties(t *testing.T) {
	tr, err := Generate(smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	minCPU, maxCPU := math.Inf(1), 0.0
	short := 0
	for _, task := range tr.Tasks {
		if task.CPU < minCPU {
			minCPU = task.CPU
		}
		if task.CPU > maxCPU {
			maxCPU = task.CPU
		}
		if task.Duration < 100 {
			short++
		}
	}
	if ratio := maxCPU / minCPU; ratio < 100 {
		t.Errorf("CPU size ratio = %v, want >= 100 (orders of magnitude)", ratio)
	}
	if frac := float64(short) / float64(len(tr.Tasks)); frac < 0.5 {
		t.Errorf("short-task fraction = %v, want > 0.5", frac)
	}
}

// Gratis group contains the exact atom (0.0125, 0.0159) with substantial mass.
func TestGenerateGratisAtom(t *testing.T) {
	tr, err := Generate(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	gratis, atom := 0, 0
	for _, task := range tr.Tasks {
		if task.Group() != Gratis {
			continue
		}
		gratis++
		if task.CPU == 0.0125 && task.Mem == 0.0159 {
			atom++
		}
	}
	if gratis == 0 {
		t.Fatal("no gratis tasks")
	}
	frac := float64(atom) / float64(gratis)
	if frac < 0.35 || frac > 0.5 {
		t.Errorf("atom fraction = %v, want ~0.43", frac)
	}
}

// Production durations reach past the gratis maximum; production group has
// long-running tasks (paper: up to 17 days).
func TestGenerateDurationsByGroup(t *testing.T) {
	cfg := smallConfig(6)
	cfg.Horizon = 12 * Hour
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	maxDur := map[PriorityGroup]float64{}
	for _, task := range tr.Tasks {
		if task.Duration > maxDur[task.Group()] {
			maxDur[task.Group()] = task.Duration
		}
	}
	if maxDur[Gratis] > 10*Hour {
		t.Errorf("gratis max duration %v exceeds configured 10h cap", maxDur[Gratis])
	}
	if maxDur[Production] <= 10*Hour {
		t.Errorf("production max duration = %v, want > 10h tail", maxDur[Production])
	}
}

func TestGoogleLikeMachines(t *testing.T) {
	ms := GoogleLikeMachines(1200)
	if len(ms) != 10 {
		t.Fatalf("machine types = %d, want 10", len(ms))
	}
	total := 0
	for _, m := range ms {
		if m.Count < 1 {
			t.Errorf("type %d has count %d", m.ID, m.Count)
		}
		total += m.Count
	}
	if total < 1100 || total > 1300 {
		t.Errorf("total machines = %d, want ~1200", total)
	}
	// Type 1 dominates (>50% of population), echoing Figure 5.
	if frac := float64(ms[0].Count) / float64(total); frac < 0.45 {
		t.Errorf("type-1 fraction = %v, want > 0.45", frac)
	}
}

func TestGenerateConstraints(t *testing.T) {
	cfg := smallConfig(13)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	platforms := make(map[string]bool, len(cfg.Machines))
	for _, m := range cfg.Machines {
		platforms[m.Platform] = true
	}
	constrained := 0
	for _, task := range tr.Tasks {
		if task.Constraint == "" {
			continue
		}
		constrained++
		if !platforms[task.Constraint] {
			t.Fatalf("task %d constrained to unknown platform %q", task.ID, task.Constraint)
		}
	}
	frac := float64(constrained) / float64(len(tr.Tasks))
	// Job-level constraint fractions of 1-3% yield a few percent of tasks.
	if frac == 0 {
		t.Error("no constrained tasks generated")
	}
	if frac > 0.15 {
		t.Errorf("constrained fraction = %v, want small", frac)
	}
}
