package sched

import (
	"math"
	"testing"

	"harmony/internal/classify"
	"harmony/internal/core"
	"harmony/internal/sim"
	"harmony/internal/trace"
)

func TestCapacityCatalog(t *testing.T) {
	machines := []trace.MachineType{
		{CPU: 0.5, Mem: 0.25},
		{CPU: 1.0, Mem: 1.0},
		{CPU: 0.5, Mem: 0.5}, // duplicate CPU
	}
	caps := capacityCatalog(machines, func(m trace.MachineType) float64 { return m.CPU })
	if len(caps) != 2 || caps[0] != 1.0 || caps[1] != 0.5 {
		t.Errorf("cpu catalog = %v", caps)
	}
	mem := capacityCatalog(machines, func(m trace.MachineType) float64 { return m.Mem })
	if len(mem) != 3 || mem[0] != 1.0 || mem[2] != 0.25 {
		t.Errorf("mem catalog = %v", mem)
	}
}

func TestSnapToCatalog(t *testing.T) {
	caps := []float64{1.0, 0.5, 0.25}
	const omega = 1.0
	// Just above a boundary within tolerance: snaps down.
	if got := snapToCatalog(0.55, caps, omega, 1.4); got != 0.5 {
		t.Errorf("snap(0.55) = %v, want 0.5", got)
	}
	// Far above the boundary: stays.
	if got := snapToCatalog(0.9, caps, omega, 1.4); got != 0.9 {
		t.Errorf("snap(0.9) = %v, want 0.9", got)
	}
	// Below every boundary: stays.
	if got := snapToCatalog(0.2, caps, omega, 1.4); got != 0.2 {
		t.Errorf("snap(0.2) = %v, want 0.2", got)
	}
	// Omega inflates before comparing: 0.45*1.25 = 0.5625 -> snaps to
	// 0.5/1.25 = 0.4.
	if got := snapToCatalog(0.45, caps, 1.25, 1.4); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("snap(0.45, omega=1.25) = %v, want 0.4", got)
	}
}

func TestQuantileIndex(t *testing.T) {
	// QuantileProbs = {0.80, 0.90, 0.95, 0.99}.
	tests := []struct {
		target float64
		want   int
	}{
		{0.5, 0},
		{0.80, 0},
		{0.85, 1},
		{0.93, 2},
		{0.97, 3},
		{0.999, 3}, // beyond the highest stored: last index
	}
	for _, tt := range tests {
		if got := quantileIndex(tt.target); got != tt.want {
			t.Errorf("quantileIndex(%v) = %d, want %d", tt.target, got, tt.want)
		}
	}
}

// Quantile-based sizing caps the Gaussian blowup on skewed classes.
func TestSizingUsesQuantiles(t *testing.T) {
	machines, models := scaledTableII(100)
	types := []classify.TaskType{{
		ID: classify.TypeID{Class: 0, Sub: 0}, Group: trace.Gratis,
		CPU: 0.05, Mem: 0.05,
		CPUStd: 0.20, MemStd: 0.20, // huge sigma: Gaussian size explodes
		CPUQuantiles: [4]float64{0.06, 0.08, 0.10, 0.15},
		MemQuantiles: [4]float64{0.06, 0.08, 0.10, 0.15},
		MeanDuration: 60, SqCV: 1, Count: 100,
	}}
	h, err := NewHarmony(HarmonyConfig{
		Mode: core.CBP, Machines: machines, Models: models, Types: types,
		PeriodSeconds: 300, Horizon: 1, Epsilon: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := h.Sizing()[0]
	// Gaussian would be ~0.05 + Z*0.2 >> 0.1; the q90 quantile caps it.
	if s.CPU > 0.101 {
		t.Errorf("cpu reservation %v not capped by quantile", s.CPU)
	}
	if s.CPU < 0.05 {
		t.Errorf("cpu reservation %v below class mean", s.CPU)
	}
}

// Pressure escalation: a type that keeps queueing without allocation gets
// its utility boosted until the controller allocates to it.
func TestPressureEscalation(t *testing.T) {
	machines, models := scaledTableII(100)
	h, err := NewHarmony(HarmonyConfig{
		Mode: core.CBP, Machines: machines, Models: models, Types: testTypes(),
		PeriodSeconds: 300, Horizon: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	obs := &sim.Observation{
		Arrivals: []int{0, 0, 0},
		Queued:   []int{50, 0, 0},
		Running:  make([]int, 3),
		Active:   make([]int, 4),
		Price:    0.08,
	}
	h.Period(obs)
	if h.Err() != nil {
		t.Fatal(h.Err())
	}
	// With queued demand the type should be allocated, so pressure must
	// stay zero...
	if h.pressure[0] != 0 {
		// ...but if the cluster genuinely cannot host it, pressure
		// grows; either way pressure must be non-negative and bounded.
		if h.pressure[0] < 0 || h.pressure[0] > maxPressure {
			t.Errorf("pressure out of range: %v", h.pressure[0])
		}
	}
	// Force the starvation path: an impossible queue with zero machines
	// available cannot be allocated, so pressure must grow and cap.
	empty := &sim.Observation{
		Arrivals: []int{0, 0, 0},
		Queued:   []int{50, 0, 0},
		Running:  make([]int, 3),
		Active:   make([]int, 4),
	}
	h2, err := NewHarmony(HarmonyConfig{
		Mode: core.CBP, Machines: machines, Models: models, Types: testTypes(),
		PeriodSeconds: 300, Horizon: 1,
		// Absurd energy price: the LP prefers not to power anything.
		Price: priceFn(1e12),
	})
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 12; i++ {
		h2.Period(empty)
		if h2.Err() != nil {
			t.Fatal(h2.Err())
		}
		if h2.pressure[0] < last {
			t.Fatalf("pressure decreased while starving: %v -> %v", last, h2.pressure[0])
		}
		last = h2.pressure[0]
	}
	if last == 0 {
		t.Error("pressure never grew under starvation")
	}
	if last > maxPressure {
		t.Errorf("pressure %v exceeds cap", last)
	}
}

type priceFn float64

func (p priceFn) At(float64) float64 { return float64(p) }
