package sched

import (
	"reflect"
	"testing"

	"harmony/internal/classify"
	"harmony/internal/core"
	"harmony/internal/energy"
	"harmony/internal/queueing"
	"harmony/internal/sim"
	"harmony/internal/trace"
)

// scaledTableII returns the Table II cluster divided by factor.
func scaledTableII(factor int) ([]trace.MachineType, []energy.Model) {
	models := energy.TableII()
	machines := make([]trace.MachineType, len(models))
	for i := range models {
		models[i].Count /= factor
		if models[i].Count < 1 {
			models[i].Count = 1
		}
		machines[i] = models[i].MachineType(i + 1)
	}
	return machines, models
}

func testTypes() []classify.TaskType {
	return []classify.TaskType{
		{ID: classify.TypeID{Class: 0, Sub: 0}, Group: trace.Gratis,
			CPU: 0.01, Mem: 0.01, CPUStd: 0.004, MemStd: 0.004,
			MeanDuration: 60, SqCV: 1.2, Count: 100},
		{ID: classify.TypeID{Class: 1, Sub: 0}, Group: trace.Other,
			CPU: 0.05, Mem: 0.04, CPUStd: 0.02, MemStd: 0.02,
			MeanDuration: 120, SqCV: 1.5, Count: 80},
		{ID: classify.TypeID{Class: 2, Sub: 1}, Group: trace.Production,
			CPU: 0.2, Mem: 0.15, CPUStd: 0.05, MemStd: 0.05,
			MeanDuration: 7200, SqCV: 0.8, Count: 20},
	}
}

func testHarmonyConfig(mode core.Mode) HarmonyConfig {
	machines, models := scaledTableII(100)
	return HarmonyConfig{
		Mode:          mode,
		Machines:      machines,
		Models:        models,
		Types:         testTypes(),
		PeriodSeconds: 300,
		Horizon:       2,
	}
}

func TestNewHarmonyValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*HarmonyConfig)
	}{
		{"no machines", func(c *HarmonyConfig) { c.Machines = nil }},
		{"model mismatch", func(c *HarmonyConfig) { c.Models = c.Models[:1] }},
		{"no types", func(c *HarmonyConfig) { c.Types = nil }},
		{"zero period", func(c *HarmonyConfig) { c.PeriodSeconds = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testHarmonyConfig(core.CBS)
			tt.mutate(&cfg)
			if _, err := NewHarmony(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestNewHarmonyDefaults(t *testing.T) {
	h, err := NewHarmony(testHarmonyConfig(core.CBS))
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() != "harmony-CBS" {
		t.Errorf("name = %q", h.Name())
	}
	if h.cfg.SLODelay[trace.Production] != 120 {
		t.Errorf("production SLO default = %v", h.cfg.SLODelay[trace.Production])
	}
	if h.cfg.ValuePerPeriod[trace.Gratis] != 0.01 {
		t.Errorf("gratis value default = %v", h.cfg.ValuePerPeriod[trace.Gratis])
	}
	sz := h.Sizing()
	if len(sz) != 3 {
		t.Fatalf("sizings = %d", len(sz))
	}
	for i, s := range sz {
		tt := h.cfg.Types[i]
		if s.CPU < tt.CPU || s.Mem < tt.Mem {
			t.Errorf("sizing %d below mean: %+v vs %v/%v", i, s, tt.CPU, tt.Mem)
		}
	}
}

func TestHarmonyPeriodZeroArrivals(t *testing.T) {
	h, err := NewHarmony(testHarmonyConfig(core.CBS))
	if err != nil {
		t.Fatal(err)
	}
	obs := &sim.Observation{
		Arrivals: make([]int, 3),
		Queued:   make([]int, 3),
		Running:  make([]int, 3),
		Active:   make([]int, 4),
		Price:    0.08,
	}
	dir := h.Period(obs)
	if h.Err() != nil {
		t.Fatalf("policy error: %v", h.Err())
	}
	// Zero arrivals, zero backlog: no machines needed.
	for m, a := range dir.TargetActive {
		if a != 0 {
			t.Errorf("type %d active = %d with no demand", m, a)
		}
	}
}

func TestHarmonyPeriodProvisionsForLoad(t *testing.T) {
	for _, mode := range []core.Mode{core.CBS, core.CBP} {
		h, err := NewHarmony(testHarmonyConfig(mode))
		if err != nil {
			t.Fatal(err)
		}
		obs := &sim.Observation{
			Arrivals: []int{300, 120, 10}, // tasks in the last 300 s
			Queued:   []int{5, 2, 1},
			Running:  []int{20, 10, 4},
			Active:   make([]int, 4),
			Price:    0.08,
		}
		dir := h.Period(obs)
		if h.Err() != nil {
			t.Fatalf("%v: policy error: %v", mode, h.Err())
		}
		total := 0
		for _, a := range dir.TargetActive {
			total += a
		}
		if total == 0 {
			t.Errorf("%v: no machines provisioned under load", mode)
		}
		if dir.Quota == nil {
			t.Errorf("%v: no quotas emitted", mode)
		}
		if mode == core.CBS && dir.ReserveCPU == nil {
			t.Error("CBS: no container reservations")
		}
		if mode == core.CBP && dir.ReserveCPU != nil {
			t.Error("CBP: unexpected reservations")
		}
	}
}

func TestHarmonyContainerSeriesAccumulates(t *testing.T) {
	h, err := NewHarmony(testHarmonyConfig(core.CBP))
	if err != nil {
		t.Fatal(err)
	}
	obs := &sim.Observation{
		Arrivals: []int{100, 50, 5},
		Queued:   make([]int, 3),
		Running:  make([]int, 3),
		Active:   make([]int, 4),
		Price:    0.08,
	}
	h.Period(obs)
	obs2 := *obs
	obs2.Time = 300
	h.Period(&obs2)
	series := h.ContainerSeries()
	if len(series) != trace.NumGroups {
		t.Fatalf("series groups = %d", len(series))
	}
	gratis := series[trace.Gratis]
	if len(gratis.Points) < 2 {
		t.Fatalf("gratis points = %d", len(gratis.Points))
	}
	// With 100 arrivals/period of 60s tasks there must be containers.
	if gratis.Points[1].Y <= 0 {
		t.Errorf("no gratis containers recorded: %+v", gratis.Points)
	}
}

// End-to-end smoke test: the full pipeline drives a simulation without
// internal errors and schedules the bulk of the workload.
func TestHarmonyEndToEnd(t *testing.T) {
	machines, models := scaledTableII(100) // 70/15/10/5 machines
	genCfg := trace.DefaultConfig(9)
	genCfg.Horizon = 2 * trace.Hour
	genCfg.RatePerS = 0.3
	genCfg.Machines = machines
	tr, err := trace.Generate(genCfg)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := classify.Characterize(tr, classify.Config{Seed: 4, MaxK: 4})
	if err != nil {
		t.Fatal(err)
	}
	types := ch.TaskTypes()
	labeler := classify.NewLabeler(ch)
	typeIdx := make(map[classify.TypeID]int, len(types))
	for i, tt := range types {
		typeIdx[tt.ID] = i
	}

	for _, mode := range []core.Mode{core.CBS, core.CBP} {
		h, err := NewHarmony(HarmonyConfig{
			Mode:          mode,
			Machines:      machines,
			Models:        models,
			Types:         types,
			PeriodSeconds: 300,
			Horizon:       2,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			Trace:    tr,
			Models:   models,
			Price:    energy.FlatPrice(0.08),
			Policy:   h,
			Period:   300,
			NumTypes: len(types),
			TypeOf: func(task trace.Task) int {
				id, ok := labeler.Initial(task)
				if !ok {
					return 0
				}
				return typeIdx[id]
			},
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if h.Err() != nil {
			t.Fatalf("%v: policy error: %v", mode, h.Err())
		}
		frac := float64(res.Scheduled) / float64(len(tr.Tasks))
		if frac < 0.85 {
			t.Errorf("%v: only %.1f%% of tasks scheduled", mode, frac*100)
		}
		if res.EnergyKWh <= 0 {
			t.Errorf("%v: no energy recorded", mode)
		}
	}
}

// Successive periods with near-identical loads must warm-start the M/G/c
// container solver from the previous period's answers: the second period
// spends strictly fewer MGcWait evaluations than the cold first period.
func TestHarmonyWarmStartsContainerSolver(t *testing.T) {
	h, err := NewHarmony(testHarmonyConfig(core.CBP))
	if err != nil {
		t.Fatal(err)
	}
	obs := func(i int) *sim.Observation {
		return &sim.Observation{
			Time:        float64(i) * 300,
			PeriodIndex: i,
			Arrivals:    []int{3000, 1200, 90},
			Queued:      make([]int, 3),
			Running:     make([]int, 3),
			Active:      make([]int, 4),
			Price:       0.08,
		}
	}
	before := queueing.WaitEvals()
	h.Period(obs(0))
	cold := queueing.WaitEvals() - before
	if h.Err() != nil {
		t.Fatal(h.Err())
	}
	before = queueing.WaitEvals()
	h.Period(obs(1))
	warm := queueing.WaitEvals() - before
	if h.Err() != nil {
		t.Fatal(h.Err())
	}
	if cold == 0 || warm == 0 {
		t.Fatalf("solver not exercised: cold=%d warm=%d evaluations", cold, warm)
	}
	if warm >= cold {
		t.Errorf("warm period spent %d MGcWait evaluations, cold period %d — hint not used", warm, cold)
	}
}

// TestHarmonyPeriodDeltaPlacement pins the delta-placement threading
// through the period tick: every decision the policy emits in steady
// state is bit-identical to a stateless full repack of its own plan, and
// after the first period the controller's delta path actually reuses
// unchanged machine types instead of repacking the fleet.
func TestHarmonyPeriodDeltaPlacement(t *testing.T) {
	h, obs := steadyHarmony(t, core.CBS)
	start := h.ctrl.DeltaStats()
	for period := 0; period < 4; period++ {
		if dir := h.Period(obs); dir.TargetActive == nil {
			t.Fatalf("period %d: %v", period, h.Err())
		}
		obs.Time += h.cfg.PeriodSeconds
		dec := h.LastDecision()
		cold, err := h.ctrl.Realize(dec.Plan)
		if err != nil {
			t.Fatalf("period %d cold repack: %v", period, err)
		}
		if !reflect.DeepEqual(cold, dec) {
			t.Fatalf("period %d: tick decision differs from full repack of its plan", period)
		}
	}
	stats := h.ctrl.DeltaStats()
	if stats.FullRepacks != start.FullRepacks {
		t.Errorf("steady-state ticks fell back to %d full repacks", stats.FullRepacks-start.FullRepacks)
	}
	if stats.ReusedTypes == start.ReusedTypes {
		t.Error("no machine type reused across four steady-state ticks")
	}
}
