package sched

import (
	"errors"
	"fmt"
	"math"

	"harmony/internal/classify"
	"harmony/internal/container"
	"harmony/internal/core"
	"harmony/internal/energy"
	"harmony/internal/forecast"
	"harmony/internal/queueing"
	"harmony/internal/sim"
	"harmony/internal/stats"
	"harmony/internal/trace"
	"sort"
)

// HarmonyConfig wires the full HARMONY pipeline into a sim.Policy.
type HarmonyConfig struct {
	Mode core.Mode // CBS or CBP

	Machines []trace.MachineType
	Models   []energy.Model
	Types    []classify.TaskType // flattened task types (class × sub-class)
	Price    energy.Price

	//harmony:unit(s)
	PeriodSeconds float64
	Horizon       int // MPC look-ahead W (>=1)

	// SLODelay[g] is the target mean scheduling delay (seconds) per
	// priority group. Zero entries default to sensible values
	// (production 120s, other 300s, gratis 900s).
	//harmony:unit(s)
	SLODelay map[trace.PriorityGroup]float64
	// ValuePerPeriod[g] is the utility earned per scheduled container
	// per period; zero entries get defaults ordered by priority.
	ValuePerPeriod map[trace.PriorityGroup]float64
	// Epsilon is the machine-overflow bound for container sizing
	// (default 0.05).
	Epsilon float64
	// Omega is the over-provisioning factor applied to every container
	// type (default 1).
	Omega float64
	// SwitchCost[m] is the dollar cost of one machine on/off transition.
	//harmony:unit($)
	SwitchCost []float64
	// MinHistory is how many periods of arrival history must accumulate
	// before ARIMA replaces the EWMA bootstrap predictor (default 24).
	MinHistory int
	// ARIMAOrder holds (p,d,q); zero value defaults to (2,0,1).
	ARIMAOrder [3]int
	// Predictor selects the forecasting model once MinHistory periods
	// have accumulated (before that an EWMA bootstrap is used).
	Predictor PredictorKind
}

// PredictorKind selects the arrival-rate forecaster.
type PredictorKind int

// Forecaster choices for HarmonyConfig.Predictor.
const (
	// PredictARIMA fits the fixed-order ARIMA of ARIMAOrder (default).
	PredictARIMA PredictorKind = iota
	// PredictAutoARIMA selects ARIMA orders by AIC each refit.
	PredictAutoARIMA
	// PredictSeasonal uses a daily seasonal-naive forecaster, falling
	// back to EWMA until a full day of history exists.
	PredictSeasonal
	// PredictEWMA uses exponential smoothing only.
	PredictEWMA
	// PredictHoltWinters uses additive triple exponential smoothing with
	// a daily season, falling back to EWMA until two full days of history
	// exist.
	PredictHoltWinters
)

// Harmony is the paper's full pipeline as a simulation policy: it observes
// per-type arrivals, forecasts rates, converts them to container demands
// via the M/G/c model, and runs the CBS/CBP controller every period.
type Harmony struct {
	cfg    HarmonyConfig
	ctrl   *core.Controller
	sizing []container.Sizing
	//harmony:unit(task/s)
	history    [][]float64 // arrival rate per type per elapsed period
	contSeries map[trace.PriorityGroup]*stats.TimeBinner
	lastErr    error
	lastDemand [][]float64
	lastDec    *core.Decision
	// pressure[n] counts consecutive periods in which type n had queued
	// tasks but received no allocation; it escalates the type's utility
	// so capacity triage cannot starve a class forever (f_n is a delay
	// cost, and delay cost grows as tasks keep waiting).
	pressure  []float64
	baseValue []float64
	// shortSibling[n] is the index of the short sub-type of n's class
	// (n itself when n is short); longFrac[n] is the long fraction of
	// the class population. Arrival rates are always measured on the
	// short type (everything is labeled short first), so demand
	// attribution needs both.
	shortSibling []int
	longFrac     []float64
	// solveHint[n] warm-starts the M/G/c container solver with the
	// previous period's answer for type n; successive control periods
	// see near-identical loads, so the hint usually lands within a
	// probe or two of the new answer.
	solveHint []int
	// lastRates[n] is the most recent one-period-ahead arrival-rate
	// forecast (tasks/s) for type n's class, recorded on short
	// sub-types (where all arrivals land); long sub-types keep 0.
	//harmony:unit(task/s)
	lastRates []float64
	// Per-period scratch, allocated once in NewHarmony and overwritten
	// every tick so the steady-state control path does not churn the
	// allocator. Handing these buffers out in the Directive (and via
	// LastDemand) is safe because both consumers finish with one
	// period's directive before the next Period call: the sim engine
	// re-applies the directive at every period boundary, and the daemon
	// runs at most one solve at a time and copies what it keeps.
	demandBuf  [][]float64
	ratesBuf   []float64
	priceBuf   []float64
	initialBuf []float64
	quotaBuf   [][]int
	reserveCPU []float64
	reserveMem []float64
}

// NewHarmony validates the configuration and builds the policy.
func NewHarmony(cfg HarmonyConfig) (*Harmony, error) {
	if len(cfg.Machines) == 0 || len(cfg.Models) != len(cfg.Machines) {
		return nil, errors.New("sched: machines/models mismatch")
	}
	if len(cfg.Types) == 0 {
		return nil, errors.New("sched: no task types")
	}
	if cfg.PeriodSeconds <= 0 {
		return nil, errors.New("sched: period must be positive")
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 2
	}
	if cfg.Epsilon <= 0 || cfg.Epsilon >= 1 {
		cfg.Epsilon = 0.05
	}
	if cfg.Omega < 1 {
		cfg.Omega = 1
	}
	if cfg.MinHistory <= 0 {
		cfg.MinHistory = 24
	}
	if cfg.ARIMAOrder == [3]int{} {
		cfg.ARIMAOrder = [3]int{2, 0, 1}
	}
	if cfg.Price == nil {
		cfg.Price = energy.FlatPrice(0.08)
	}
	if cfg.SLODelay == nil {
		cfg.SLODelay = map[trace.PriorityGroup]float64{}
	}
	fillDefault(cfg.SLODelay, trace.Production, 120)
	fillDefault(cfg.SLODelay, trace.Other, 300)
	fillDefault(cfg.SLODelay, trace.Gratis, 900)
	if cfg.ValuePerPeriod == nil {
		cfg.ValuePerPeriod = map[trace.PriorityGroup]float64{}
	}
	fillDefault(cfg.ValuePerPeriod, trace.Production, 1.0)
	fillDefault(cfg.ValuePerPeriod, trace.Other, 0.1)
	fillDefault(cfg.ValuePerPeriod, trace.Gratis, 0.01)

	h := &Harmony{
		cfg:        cfg,
		history:    make([][]float64, len(cfg.Types)),
		contSeries: map[trace.PriorityGroup]*stats.TimeBinner{},
	}
	for _, g := range trace.Groups() {
		b, err := stats.NewTimeBinner(cfg.PeriodSeconds)
		if err != nil {
			return nil, err
		}
		h.contSeries[g] = b
	}

	// Container sizing per task type (Eq. 3).
	cpuCaps := capacityCatalog(cfg.Machines, func(m trace.MachineType) float64 { return m.CPU })
	memCaps := capacityCatalog(cfg.Machines, func(m trace.MachineType) float64 { return m.Mem })
	h.sizing = make([]container.Sizing, len(cfg.Types))
	containers := make([]core.ContainerSpec, len(cfg.Types))
	epsR, err := container.PerResourceBound(cfg.Epsilon, 2)
	if err != nil {
		return nil, fmt.Errorf("sched: epsilon: %w", err)
	}
	qi := quantileIndex(1 - epsR)
	for i, tt := range cfg.Types {
		s, err := container.ForClass(tt.CPU, tt.CPUStd, tt.Mem, tt.MemStd, cfg.Epsilon)
		if err != nil {
			return nil, fmt.Errorf("sched: sizing type %d: %w", i, err)
		}
		// The Gaussian size overshoots badly on skewed classes; the
		// empirical class quantile gives the same per-task coverage
		// directly, so take the smaller of the two (floored at the
		// class mean so the container still fits a typical task).
		if q := tt.CPUQuantiles[qi]; q > 0 && q < s.CPU {
			s.CPU = math.Max(q, tt.CPU)
		}
		if q := tt.MemQuantiles[qi]; q > 0 && q < s.Mem {
			s.Mem = math.Max(q, tt.Mem)
		}
		// Align reservations with the machine catalog: a reservation
		// that barely exceeds a machine-size boundary (after ω) would
		// exile the whole class to the few next-larger machines, so it
		// is snapped down to the boundary at slightly increased
		// overflow risk. Oversized reservations shrink to the largest
		// machine, or the class could never be placed at all.
		s.CPU = snapToCatalog(s.CPU, cpuCaps, cfg.Omega, catalogSnapTolerance)
		s.Mem = snapToCatalog(s.Mem, memCaps, cfg.Omega, catalogSnapTolerance)
		if lim := cpuCaps[0] / cfg.Omega; s.CPU > lim {
			s.CPU = lim
		}
		if lim := memCaps[0] / cfg.Omega; s.Mem > lim {
			s.Mem = lim
		}
		h.sizing[i] = s
		// A container's utility per period scales with the work it
		// delivers: the tasks it serves per period (a slot for
		// 20-second tasks turns over ~15 tasks per 5-minute period)
		// times the resources each occupies. Without the turnover term
		// the LP starves short-task classes; without the size term the
		// value-per-resource auction starves large-container classes
		// regardless of priority.
		turnover := cfg.PeriodSeconds / tt.MeanDuration
		if turnover < 1 {
			turnover = 1
		}
		const refSize = 0.05 // container size earning exactly the group value
		sizeFactor := (s.CPU + s.Mem) / (2 * refSize)
		containers[i] = core.ContainerSpec{
			Type:  i,
			CPU:   s.CPU,
			Mem:   s.Mem,
			Value: cfg.ValuePerPeriod[tt.Group] * turnover * sizeFactor,
			Omega: cfg.Omega,
		}
	}

	machines := make([]core.MachineSpec, len(cfg.Machines))
	for i, mt := range cfg.Machines {
		sw := 0.0
		if cfg.SwitchCost != nil && i < len(cfg.SwitchCost) {
			sw = cfg.SwitchCost[i]
		}
		machines[i] = core.MachineSpec{
			Type:       mt.ID,
			CPU:        mt.CPU,
			Mem:        mt.Mem,
			Available:  mt.Count,
			IdleWatts:  cfg.Models[i].IdleWatts,
			AlphaCPU:   cfg.Models[i].AlphaCPU,
			AlphaMem:   cfg.Models[i].AlphaMem,
			SwitchCost: sw,
		}
	}
	h.ctrl = &core.Controller{
		Machines:      machines,
		Containers:    containers,
		PeriodSeconds: cfg.PeriodSeconds,
		Horizon:       cfg.Horizon,
		Mode:          cfg.Mode,
	}
	h.pressure = make([]float64, len(containers))
	h.baseValue = make([]float64, len(containers))
	h.solveHint = make([]int, len(cfg.Types))
	h.lastRates = make([]float64, len(cfg.Types))
	for i, c := range containers {
		h.baseValue[i] = c.Value
	}

	// Sibling bookkeeping for demand attribution.
	shortOfClass := make(map[int]int)
	classCount := make(map[int]int)
	for i, tt := range cfg.Types {
		classCount[tt.ID.Class] += tt.Count
		if tt.ID.Sub == 0 {
			shortOfClass[tt.ID.Class] = i
		}
	}
	h.shortSibling = make([]int, len(cfg.Types))
	h.longFrac = make([]float64, len(cfg.Types))
	for i, tt := range cfg.Types {
		if si, ok := shortOfClass[tt.ID.Class]; ok {
			h.shortSibling[i] = si
		} else {
			h.shortSibling[i] = i
		}
		long := 0
		for j, o := range cfg.Types {
			if o.ID.Class == tt.ID.Class && o.ID.Sub > 0 {
				long += cfg.Types[j].Count
			}
		}
		if total := classCount[tt.ID.Class]; total > 0 {
			h.longFrac[i] = float64(long) / float64(total)
		}
	}

	// Tick-path scratch (one backing array per matrix keeps rows hot).
	nt, nm, w := len(cfg.Types), len(cfg.Machines), cfg.Horizon
	h.demandBuf = make([][]float64, nt)
	demandRows := make([]float64, nt*w)
	for i := range h.demandBuf {
		h.demandBuf[i] = demandRows[i*w : (i+1)*w : (i+1)*w]
	}
	h.quotaBuf = make([][]int, nm)
	quotaRows := make([]int, nm*nt)
	for m := range h.quotaBuf {
		h.quotaBuf[m] = quotaRows[m*nt : (m+1)*nt : (m+1)*nt]
	}
	h.ratesBuf = make([]float64, w)
	h.priceBuf = make([]float64, w)
	h.initialBuf = make([]float64, nm)
	h.reserveCPU = make([]float64, nt)
	h.reserveMem = make([]float64, nt)
	for i, s := range h.sizing {
		h.reserveCPU[i] = s.CPU
		h.reserveMem[i] = s.Mem
	}
	return h, nil
}

func fillDefault(m map[trace.PriorityGroup]float64, g trace.PriorityGroup, v float64) {
	if m[g] == 0 {
		m[g] = v
	}
}

// quantileIndex returns the index into classify.QuantileProbs of the
// smallest recorded probability covering the target, or the last index.
func quantileIndex(target float64) int {
	for i, p := range classify.QuantileProbs {
		if p >= target {
			return i
		}
	}
	return len(classify.QuantileProbs) - 1
}

// catalogSnapTolerance is how far (multiplicatively) a reservation may
// exceed a machine-size boundary and still be snapped down to it.
const catalogSnapTolerance = 1.4

// maxPressure caps the starvation escalation multiplier.
const maxPressure = 512

// quotaSlack relaxes emitted per-type quotas above the plan so the
// scheduler can absorb within-period arrival surprises (Algorithm 1's
// "free to schedule additional containers").
const quotaSlack = 1.5

// capacityCatalog returns the distinct per-resource machine capacities in
// descending order.
func capacityCatalog(machines []trace.MachineType, get func(trace.MachineType) float64) []float64 {
	seen := make(map[float64]bool, len(machines))
	var caps []float64
	for _, m := range machines {
		v := get(m)
		if !seen[v] {
			seen[v] = true
			caps = append(caps, v)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(caps)))
	return caps
}

// snapToCatalog shrinks a reservation whose ω-inflated size barely exceeds
// a machine-capacity boundary down to that boundary, so the container can
// be hosted by the (usually much larger) population of smaller machines.
func snapToCatalog(c float64, caps []float64, omega, tolerance float64) float64 {
	eff := omega * c
	for _, cap := range caps {
		if eff > cap && eff <= cap*tolerance {
			return cap / omega
		}
	}
	return c
}

// Name implements sim.Policy.
func (h *Harmony) Name() string { return "harmony-" + h.cfg.Mode.String() }

// Err returns the last internal error encountered during a period (the
// policy degrades to keeping its previous decision rather than crashing
// the simulation).
func (h *Harmony) Err() error { return h.lastErr }

// ContainerSeries returns the total containers provisioned per priority
// group over time (Figure 20).
func (h *Harmony) ContainerSeries() map[trace.PriorityGroup]stats.Series {
	out := make(map[trace.PriorityGroup]stats.Series, trace.NumGroups)
	for g, b := range h.contSeries {
		out[g] = b.Series("containers " + g.String())
	}
	return out
}

// Sizing returns the per-type container reservations.
func (h *Harmony) Sizing() []container.Sizing { return h.sizing }

// LastDemand returns the per-type container demand matrix of the most
// recent period (for observability and tests). The matrix aliases the
// policy's reusable scratch: it is valid until the next Period call.
func (h *Harmony) LastDemand() [][]float64 { return h.lastDemand }

// LastDecision returns the most recent controller decision.
func (h *Harmony) LastDecision() *core.Decision { return h.lastDec }

// DeltaStats returns the controller's cumulative delta-placement counters
// (reused vs repacked machine types, full-repack fallbacks) so the reuse
// behavior is observable outside benches. Call it only between Period
// calls — it reads the controller the in-flight tick owns.
func (h *Harmony) DeltaStats() core.DeltaStats { return h.ctrl.DeltaStats() }

// LastForecast returns the most recent one-period-ahead arrival-rate
// forecast per task type (tasks/s). Rates are recorded on each class's
// short sub-type — where the label-short-first policy lands every
// arrival — and are 0 for long sub-types. The returned slice is a copy.
func (h *Harmony) LastForecast() []float64 {
	return append([]float64(nil), h.lastRates...)
}

// Period implements sim.Policy: record arrivals, forecast, size container
// demand, and run one MPC step.
//
//harmony:hotpath
func (h *Harmony) Period(obs *sim.Observation) sim.Directive {
	// Record this period's arrival rates.
	for n := range h.cfg.Types {
		rate := 0.0
		if n < len(obs.Arrivals) {
			rate = float64(obs.Arrivals[n]) / h.cfg.PeriodSeconds
		}
		h.history[n] = append(h.history[n], rate)
	}

	demand, err := h.containerDemand(obs)
	if err != nil {
		h.lastErr = err
		return sim.Directive{} // keep current machine state
	}
	price := h.priceBuf
	for t := 0; t < h.cfg.Horizon; t++ {
		price[t] = h.cfg.Price.At(obs.Time + float64(t)*h.cfg.PeriodSeconds)
	}
	initial := h.initialBuf[:0]
	for _, a := range obs.Active {
		initial = append(initial, float64(a))
	}
	h.initialBuf = initial
	// Escalate the utility of types whose queues were starved by
	// earlier triage: each starved period doubles the pressure term.
	for n := range h.ctrl.Containers {
		h.ctrl.Containers[n].Value = h.baseValue[n] * (1 + h.pressure[n])
	}
	dec, err := h.ctrl.Step(initial, demand, price)
	if err != nil {
		h.lastErr = err
		return sim.Directive{}
	}
	h.lastDemand = demand
	h.lastDec = dec
	for n := range h.ctrl.Containers {
		alloc := 0
		for m := range h.cfg.Machines {
			alloc += dec.Quota[m][n]
		}
		if n < len(obs.Queued) && obs.Queued[n] > 0 && alloc == 0 {
			if h.pressure[n] == 0 {
				h.pressure[n] = 1
			} else {
				h.pressure[n] *= 2
			}
			if h.pressure[n] > maxPressure {
				h.pressure[n] = maxPressure
			}
		} else {
			// Decay rather than reset: a single winning period should
			// not send a contested class back to the end of the line.
			h.pressure[n] /= 2
			if h.pressure[n] < 1 {
				h.pressure[n] = 0
			}
		}
	}

	// Figure 20 bookkeeping: containers provisioned per group.
	for n, tt := range h.cfg.Types {
		total := 0.0
		for m := range h.cfg.Machines {
			total += float64(dec.Quota[m][n])
		}
		h.contSeries[tt.Group].Observe(obs.Time, total)
	}

	// Quotas are guidance, not straitjackets: Algorithm 1 lets the
	// scheduler place additional containers beyond the packed set as
	// long as capacity allows, and within-period arrival surprises must
	// not stall on a stale plan. Machine counts remain the energy
	// control; the slack only relaxes the per-type mix.
	quota := h.quotaBuf
	for m := range dec.Quota {
		row := quota[m]
		for n, q := range dec.Quota[m] {
			row[n] = int(math.Ceil(float64(q)*quotaSlack)) + 1
		}
	}
	dir := sim.Directive{
		TargetActive: dec.ActiveMachines,
		Quota:        quota,
		BestFit:      true,
	}
	if h.cfg.Mode == core.CBS {
		// CBS schedules into container reservations (sized once at
		// construction; the catalog never changes mid-run).
		dir.ReserveCPU = h.reserveCPU
		dir.ReserveMem = h.reserveMem
	}
	return dir
}

// containerDemand converts forecast arrival rates into per-type container
// counts over the horizon via the M/G/c model, floored by what is already
// running or queued right now (period 0 only).
//
// Arrival attribution follows the paper's label-short-first scheme: every
// task of a class arrives labeled short, so the measured rate on the short
// type is the whole class's rate. The long sub-type receives its share
// (the class's long fraction) of that rate, and the short sub-type is
// additionally charged for the slots that soon-to-be-relabeled long tasks
// pin for up to one control period.
//
//harmony:hotpath
func (h *Harmony) containerDemand(obs *sim.Observation) ([][]float64, error) {
	demand := h.demandBuf
	for n, tt := range h.cfg.Types {
		rates := h.ratesBuf
		if err := h.forecastRates(h.shortSibling[n], rates); err != nil {
			return nil, err
		}
		if h.shortSibling[n] == n {
			h.lastRates[n] = rates[0]
		}
		pLong := h.longFrac[n]
		mu := 1 / tt.MeanDuration
		slo := h.cfg.SLODelay[tt.Group]
		hint := h.solveHint[n]
		row := demand[n]
		for t := 0; t < h.cfg.Horizon; t++ {
			lambda := rates[t]
			pinned := 0.0
			if tt.ID.Sub == 0 {
				lambda *= 1 - pLong
				// Mislabeled long tasks hold short slots until the
				// next relabel pass (half a period on average).
				pinned = rates[t] * pLong * h.cfg.PeriodSeconds / 2
			} else {
				// Long tasks spend up to one period mislabeled short
				// before relabeling moves them here; only the residual
				// life occupies this sub-type's containers, and tasks
				// shorter than a period never arrive at all.
				lambda *= pLong
				residual := 1 - h.cfg.PeriodSeconds/tt.MeanDuration
				if residual < 0 {
					residual = 0
				}
				lambda *= residual
			}
			c, err := queueing.MinContainersHint(lambda, mu, tt.SqCV, slo, hint)
			if err != nil {
				//harmony:allow hotpathalloc error path, not the steady-state tick
				return nil, fmt.Errorf("sched: containers for type %d: %w", n, err)
			}
			// Warm-start the next step (and, via solveHint, the next
			// period) with this answer; successive solves within a
			// horizon and across periods see near-identical loads.
			hint = c
			if t == 0 {
				h.solveHint[n] = c
			}
			row[t] = float64(c) + math.Ceil(pinned)
		}
		// Do not plan below the live load: running tasks hold their
		// containers, and the backlog needs extra slots to drain. A
		// queue of Q tasks with duration D drains within one period of
		// length T using ceil(Q·D/T) concurrent containers (at most Q).
		if n < len(obs.Running) && n < len(obs.Queued) {
			base := row[0]
			if live := float64(obs.Running[n]); live > base {
				base = live
			}
			window := h.cfg.SLODelay[tt.Group]
			if window > h.cfg.PeriodSeconds {
				window = h.cfg.PeriodSeconds
			}
			if window <= 0 {
				window = h.cfg.PeriodSeconds
			}
			drain := float64(obs.Queued[n]) * tt.MeanDuration / window
			if q := float64(obs.Queued[n]); drain > q {
				drain = q
			}
			row[0] = base + math.Ceil(drain)
		}
	}
	return demand, nil
}

// forecastRates predicts the next len(dst) arrival rates for type n,
// filling dst in place. Before MinHistory periods accumulate it uses EWMA
// over whatever exists; after that it fits the configured ARIMA model,
// falling back to EWMA when the fit degenerates.
//
//harmony:coldpath the predictor's fit and forecast are the budgeted residue TestPeriodScratchReuse measures
func (h *Harmony) forecastRates(n int, dst []float64) error {
	hist := h.history[n]
	w := len(dst)
	if len(hist) == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return nil
	}
	var pred forecast.Predictor
	if len(hist) >= h.cfg.MinHistory {
		switch h.cfg.Predictor {
		case PredictAutoARIMA:
			a := &forecast.AutoARIMA{}
			if err := a.Fit(hist); err == nil {
				pred = a
			}
		case PredictSeasonal:
			season := int(trace.Day / h.cfg.PeriodSeconds)
			sn := &forecast.SeasonalNaive{Season: season}
			if err := sn.Fit(hist); err == nil {
				pred = sn
			}
		case PredictHoltWinters:
			season := int(trace.Day / h.cfg.PeriodSeconds)
			hw := &forecast.HoltWinters{Season: season}
			if err := hw.Fit(hist); err == nil {
				pred = hw
			}
		case PredictEWMA:
			// handled by the fallback below
		default:
			if ar, err := forecast.NewARIMA(h.cfg.ARIMAOrder[0], h.cfg.ARIMAOrder[1], h.cfg.ARIMAOrder[2]); err == nil {
				if err := ar.Fit(hist); err == nil {
					pred = ar
				}
			}
		}
	}
	if pred == nil {
		e := &forecast.EWMA{Alpha: 0.4}
		if err := e.Fit(hist); err != nil {
			return err
		}
		pred = e
	}
	rates, err := pred.Forecast(w)
	if err != nil {
		return err
	}
	copy(dst, rates)
	for i, r := range dst {
		if r < 0 || math.IsNaN(r) {
			dst[i] = 0
		}
	}
	return nil
}
