package sched

import (
	"testing"

	"harmony/internal/energy"
	"harmony/internal/sim"
	"harmony/internal/trace"
)

func TestAlwaysOn(t *testing.T) {
	p := &AlwaysOn{Counts: []int{3, 2}}
	d := p.Period(&sim.Observation{})
	if d.TargetActive[0] != 3 || d.TargetActive[1] != 2 {
		t.Errorf("directive = %v", d.TargetActive)
	}
	if p.Name() != "always-on" {
		t.Error("name wrong")
	}
	// The returned slice is a copy: mutating it must not corrupt state.
	d.TargetActive[0] = 0
	if p.Counts[0] != 3 {
		t.Error("AlwaysOn state mutated through directive")
	}
}

func TestEfficiencyOrder(t *testing.T) {
	models := []energy.Model{
		{CPUCap: 0.1, MemCap: 0.1, IdleWatts: 50, AlphaCPU: 50, AlphaMem: 0},   // 0.1/100 = 0.001
		{CPUCap: 1, MemCap: 1, IdleWatts: 100, AlphaCPU: 100, AlphaMem: 0},     // 1/200 = 0.005
		{CPUCap: 0.5, MemCap: 0.5, IdleWatts: 100, AlphaCPU: 100, AlphaMem: 0}, // 0.5/200 = 0.0025
	}
	order := efficiencyOrder(models)
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestBaselineProvisionsForDemand(t *testing.T) {
	machines := []trace.MachineType{
		{ID: 1, CPU: 0.5, Mem: 0.5, Count: 10},
		{ID: 2, CPU: 1, Mem: 1, Count: 4},
	}
	models := []energy.Model{
		{CPUCap: 0.5, MemCap: 0.5, IdleWatts: 100, AlphaCPU: 50, AlphaMem: 20},
		{CPUCap: 1, MemCap: 1, IdleWatts: 150, AlphaCPU: 80, AlphaMem: 30},
	}
	b := &Baseline{Machines: machines, Models: models}

	// No demand: nothing on.
	d := b.Period(&sim.Observation{})
	if d.TargetActive[0] != 0 || d.TargetActive[1] != 0 {
		t.Errorf("idle directive = %v", d.TargetActive)
	}

	// Demand of 2.0 CPU at 80% target -> 2.5 capacity needed.
	d = b.Period(&sim.Observation{RunningDemandCPU: 1.5, QueuedDemandCPU: 0.5,
		RunningDemandMem: 1.0, QueuedDemandMem: 0.2})
	var cap float64
	for ti, n := range d.TargetActive {
		cap += float64(n) * machines[ti].CPU
	}
	if cap < 2.5 {
		t.Errorf("provisioned CPU capacity %v < 2.5", cap)
	}
	// Big machines are more capacity-efficient per watt here: the greedy
	// order uses them first and never needs the small type.
	if d.TargetActive[1] < 3 || d.TargetActive[0] != 0 {
		t.Errorf("greedy efficiency order not followed: %v", d.TargetActive)
	}
	if b.Name() != "baseline" {
		t.Error("name wrong")
	}
}

func TestBaselineRespectsCounts(t *testing.T) {
	machines := []trace.MachineType{{ID: 1, CPU: 0.5, Mem: 0.5, Count: 2}}
	models := []energy.Model{{CPUCap: 0.5, MemCap: 0.5, IdleWatts: 100, AlphaCPU: 50}}
	b := &Baseline{Machines: machines, Models: models}
	d := b.Period(&sim.Observation{QueuedDemandCPU: 100, QueuedDemandMem: 100})
	if d.TargetActive[0] != 2 {
		t.Errorf("over count: %v", d.TargetActive)
	}
}

func TestFirstFitAllOn(t *testing.T) {
	machines := []trace.MachineType{{ID: 1, CPU: 1, Mem: 1, Count: 7}}
	p := &FirstFitAllOn{Machines: machines}
	d := p.Period(nil)
	if d.TargetActive[0] != 7 {
		t.Errorf("directive = %v", d.TargetActive)
	}
	if p.Name() != "all-on-first-fit" {
		t.Error("name wrong")
	}
}
