// Package sched provides the provisioning policies evaluated in the paper:
// the heterogeneity-oblivious baseline (80% bottleneck-utilization target,
// machines powered greedily by energy efficiency), an always-on reference,
// and the HARMONY policy that wires task classification, ARIMA forecasting,
// queueing-based container counts, and the CBS/CBP controller together.
package sched

import (
	"harmony/internal/energy"
	"harmony/internal/sim"
	"harmony/internal/trace"
)

// AlwaysOn keeps every machine powered. It is the no-DCP reference the
// workload analysis figures (3 and 4) are measured against.
type AlwaysOn struct {
	Counts []int // machine count per type
}

// Name implements sim.Policy.
func (a *AlwaysOn) Name() string { return "always-on" }

// Period implements sim.Policy.
func (a *AlwaysOn) Period(*sim.Observation) sim.Directive {
	return sim.Directive{TargetActive: append([]int(nil), a.Counts...)}
}

// Baseline is the heterogeneity-oblivious comparison policy of
// Section IX-B: a reactive autoscaler that keeps the bottleneck resource
// of the powered fleet at a target utilization (80%), powering machines on
// in decreasing order of energy efficiency. It is oblivious in exactly the
// ways the paper describes: it watches only aggregate utilization — not
// the composition of the queue — so it cannot tell that waiting tasks need
// machine types it has not powered, and it scales capacity multiplicatively
// rather than planning from per-class demand.
type Baseline struct {
	Machines    []trace.MachineType
	Models      []energy.Model
	Utilization float64 // bottleneck-utilization target; default 0.8

	order []int // machine types sorted by descending efficiency
}

// Name implements sim.Policy.
func (b *Baseline) Name() string { return "baseline" }

// Period implements sim.Policy.
func (b *Baseline) Period(obs *sim.Observation) sim.Directive {
	if b.order == nil {
		b.order = efficiencyOrder(b.Models)
	}
	target := b.Utilization
	if target <= 0 || target > 1 {
		target = 0.8
	}

	// The baseline watches a single aggregate: the bottleneck resource
	// (whichever of CPU or memory is more utilized fleet-wide). It is
	// deliberately blind to the other resource and to the composition
	// of the queue — the obliviousness the paper evaluates against.
	var activeCPU, activeMem float64
	for ti, n := range obs.Active {
		activeCPU += float64(n) * b.Machines[ti].CPU
		activeMem += float64(n) * b.Machines[ti].Mem
	}
	queueBacklog := obs.QueuedDemandCPU > 0 || obs.QueuedDemandMem > 0

	// Pick the bottleneck resource by demand pressure.
	cpuBound := obs.RunningDemandCPU+obs.QueuedDemandCPU >=
		obs.RunningDemandMem+obs.QueuedDemandMem

	capOf := func(mt trace.MachineType) float64 {
		if cpuBound {
			return mt.CPU
		}
		return mt.Mem
	}
	activeCap := activeMem
	runDemand := obs.RunningDemandMem
	totDemand := obs.RunningDemandMem + obs.QueuedDemandMem
	if cpuBound {
		activeCap = activeCPU
		runDemand = obs.RunningDemandCPU
		totDemand = obs.RunningDemandCPU + obs.QueuedDemandCPU
	}

	var need float64
	if activeCap == 0 {
		// Cold start: seed from visible aggregate demand.
		need = totDemand / target
	} else {
		// Feedback on the observed utilization of the powered fleet.
		// The controller knows nothing about what the queued tasks
		// need — a backlog reads as "fully utilized", so it adds
		// capacity blindly in efficiency order whether or not the new
		// machines can host what is actually waiting. This is the
		// wastage mechanism the paper attributes to
		// heterogeneity-oblivious provisioning.
		util := runDemand / activeCap
		if queueBacklog && util < 1 {
			util = 1
		}
		need = activeCap * util / target
	}

	active := make([]int, len(b.Machines))
	have := 0.0
	for _, ti := range b.order {
		if have >= need {
			break
		}
		mt := b.Machines[ti]
		for k := 0; k < mt.Count && have < need; k++ {
			active[ti]++
			have += capOf(mt)
		}
	}
	return sim.Directive{TargetActive: active}
}

// efficiencyOrder returns machine-type indices in decreasing order of
// capacity delivered per watt at peak — the "greedy" order of the paper's
// baseline.
func efficiencyOrder(models []energy.Model) []int {
	order := make([]int, len(models))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j], order[j-1]
			if models[a].EfficiencyAtPeak() > models[b].EfficiencyAtPeak() {
				order[j], order[j-1] = order[j-1], order[j]
			} else {
				break
			}
		}
	}
	return order
}

// FirstFitAllOn is a degenerate policy used in analysis runs: all machines
// on, no quotas — i.e. the cluster as operated in the original trace
// (capacity never adjusted, Figure 3's observation).
type FirstFitAllOn struct {
	Machines []trace.MachineType
}

// Name implements sim.Policy.
func (f *FirstFitAllOn) Name() string { return "all-on-first-fit" }

// Period implements sim.Policy.
func (f *FirstFitAllOn) Period(*sim.Observation) sim.Directive {
	active := make([]int, len(f.Machines))
	for i, mt := range f.Machines {
		active[i] = mt.Count
	}
	return sim.Directive{TargetActive: active}
}
