package sched

import (
	"testing"

	"harmony/internal/core"
	"harmony/internal/sim"
)

// steadyHarmony builds a Harmony policy and drives it a few periods so
// every warm-start path (LP basis, M/G/c hints, scratch buffers) is in
// its steady state, the way a long simulation or daemon run sees it.
func steadyHarmony(t testing.TB, mode core.Mode) (*Harmony, *sim.Observation) {
	t.Helper()
	cfg := testHarmonyConfig(mode)
	cfg.Predictor = PredictEWMA
	h, err := NewHarmony(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obs := &sim.Observation{
		Arrivals: []int{240, 90, 12},
		Queued:   []int{3, 1, 0},
		Running:  []int{15, 8, 4},
		Active:   []int{2, 1, 1, 0},
		Price:    0.08,
	}
	for i := 0; i < 6; i++ {
		if dir := h.Period(obs); dir.TargetActive == nil {
			t.Fatalf("warm-up period %d: %v", i, h.Err())
		}
		obs.Time += cfg.PeriodSeconds
	}
	return h, obs
}

// TestPeriodScratchReuse pins the steady-state allocation contract of the
// tick path: the demand matrix, quota matrix, and reservation slices are
// allocated once and reused, and containerDemand itself stays within a
// small per-type allocation budget (the residue is the predictor's fit
// and forecast, not tick-path bookkeeping).
func TestPeriodScratchReuse(t *testing.T) {
	h, obs := steadyHarmony(t, core.CBS)

	dirA := h.Period(obs)
	demandA := h.LastDemand()
	obs.Time += h.cfg.PeriodSeconds
	dirB := h.Period(obs)
	demandB := h.LastDemand()

	if &demandA[0][0] != &demandB[0][0] {
		t.Error("demand matrix reallocated between periods")
	}
	if &dirA.Quota[0][0] != &dirB.Quota[0][0] {
		t.Error("quota matrix reallocated between periods")
	}
	if &dirA.ReserveCPU[0] != &dirB.ReserveCPU[0] || &dirA.ReserveMem[0] != &dirB.ReserveMem[0] {
		t.Error("reservation slices rebuilt between periods")
	}

	// The demand conversion reuses its rows and rate buffer; what remains
	// per type is the EWMA predictor value and its forecast slice plus
	// M/G/c solver internals. 8 allocations per type is a generous lid
	// that still fails loudly if per-period matrix churn returns.
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := h.containerDemand(obs); err != nil {
			t.Fatal(err)
		}
	})
	if lid := float64(8 * len(h.cfg.Types)); allocs > lid {
		t.Errorf("containerDemand allocates %.0f objects per call, budget %.0f", allocs, lid)
	} else {
		t.Logf("containerDemand: %.0f allocs per call (budget %.0f)", allocs, lid)
	}
}

// BenchmarkHarmonyPeriod measures one full control-period tick — record
// arrivals, forecast, size demand via M/G/c, warm-started CBS-RELAX
// solve, and placement — in its steady state.
func BenchmarkHarmonyPeriod(b *testing.B) {
	h, obs := steadyHarmony(b, core.CBS)
	keep := len(h.history[0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dir := h.Period(obs); dir.TargetActive == nil {
			b.Fatal(h.Err())
		}
		// Truncate the arrival history the loop just appended so every
		// iteration forecasts over the same window instead of an
		// ever-growing one.
		for n := range h.history {
			h.history[n] = h.history[n][:keep]
		}
	}
}
