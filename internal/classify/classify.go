// Package classify implements HARMONY's task characterization (Section V):
// a two-step clustering that first groups tasks by static features
// (priority group, CPU and memory demand) and then splits each class into
// short/long duration sub-classes, plus the online labeler that assigns
// arriving tasks to classes by nearest centroid and upgrades short labels
// to long as observed runtime crosses the class boundary.
package classify

import (
	"errors"
	"fmt"
	"math"

	"harmony/internal/kmeans"
	"harmony/internal/stats"
	"harmony/internal/trace"
)

// SubClass is a duration sub-class within a task class (step two of the
// characterization). Classes have at most two sub-classes: short and long.
type SubClass struct {
	MeanDuration float64 // mean task duration (seconds)
	SqCV         float64 // squared coefficient of variation of durations
	MaxDuration  float64 // largest member duration (the relabel boundary for short)
	Count        int
}

// QuantileProbs are the fixed probabilities at which per-class demand
// quantiles are recorded; container sizing picks from these to bound
// per-task coverage when class demand is too skewed for the Gaussian
// model (the paper's non-Gaussian generalization via concentration
// bounds, Section VII-A).
var QuantileProbs = [4]float64{0.80, 0.90, 0.95, 0.99}

// Class is one task class produced by step one: tasks of a single priority
// group with similar CPU/memory demand. CPU/Mem are the arithmetic-space
// centroid; the Std fields feed container sizing (Eq. 3).
type Class struct {
	ID     int
	Group  trace.PriorityGroup
	CPU    float64
	Mem    float64
	CPUStd float64
	MemStd float64
	Count  int

	// CPUQuantiles/MemQuantiles hold the class demand quantiles at
	// QuantileProbs.
	CPUQuantiles [4]float64
	MemQuantiles [4]float64

	// Sub holds the duration sub-classes sorted by mean duration
	// (short first). A class whose durations do not split keeps one.
	Sub []SubClass

	// logCentroid is the step-one centroid in log space, used for
	// nearest-centroid labeling.
	logCentroid kmeans.Point
}

// ShortSub returns the short-duration sub-class (index 0).
func (c *Class) ShortSub() SubClass { return c.Sub[0] }

// LongSub returns the long-duration sub-class and whether one exists.
func (c *Class) LongSub() (SubClass, bool) {
	if len(c.Sub) < 2 {
		return SubClass{}, false
	}
	return c.Sub[1], true
}

// Config controls characterization.
type Config struct {
	MaxK     int     // maximum classes per priority group (default 8)
	MinGain  float64 // elbow threshold for ChooseK (default 0.15)
	Seed     int64
	Restarts int // k-means restarts (default 4)
}

func (cfg *Config) defaults() {
	if cfg.MaxK <= 0 {
		cfg.MaxK = 8
	}
	if cfg.MinGain <= 0 {
		cfg.MinGain = 0.15
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 4
	}
}

// Characterization is the complete two-step clustering of a workload.
type Characterization struct {
	Classes []Class
	// byGroup indexes Classes by priority group for labeling.
	byGroup [trace.NumGroups][]int
}

// ErrNoTasks is returned when the input trace has no tasks.
var ErrNoTasks = errors.New("classify: no tasks")

// Characterize runs the two-step clustering over the tasks of tr.
//
// Step one clusters each priority group on (log CPU, log Mem); the log
// transform is essential because task sizes span orders of magnitude
// (Section III-D) and arithmetic-space K-means would be dominated by the
// few largest tasks. Step two runs k=2 K-means on log duration within each
// class, yielding the short/long split the online labeler relies on.
func Characterize(tr *trace.Trace, cfg Config) (*Characterization, error) {
	cfg.defaults()
	if len(tr.Tasks) == 0 {
		return nil, ErrNoTasks
	}

	ch := &Characterization{}
	for _, g := range trace.Groups() {
		var (
			pts   []kmeans.Point
			tasks []*trace.Task
		)
		for i := range tr.Tasks {
			t := &tr.Tasks[i]
			if t.Group() != g {
				continue
			}
			pts = append(pts, kmeans.Point{math.Log(t.CPU), math.Log(t.Mem)})
			tasks = append(tasks, t)
		}
		if len(pts) == 0 {
			continue
		}
		maxK := cfg.MaxK
		if maxK > len(pts) {
			maxK = len(pts)
		}
		_, res, err := kmeans.ChooseK(pts, maxK, cfg.MinGain, kmeans.Config{
			Seed:     cfg.Seed + int64(g),
			Restarts: cfg.Restarts,
		})
		if err != nil {
			return nil, fmt.Errorf("classify: step one for %v: %w", g, err)
		}
		if err := ch.addGroupClasses(g, res, pts, tasks, cfg); err != nil {
			return nil, err
		}
	}
	if len(ch.Classes) == 0 {
		return nil, ErrNoTasks
	}
	return ch, nil
}

func (ch *Characterization) addGroupClasses(
	g trace.PriorityGroup,
	res *kmeans.Result,
	pts []kmeans.Point,
	tasks []*trace.Task,
	cfg Config,
) error {
	k := len(res.Centroids)
	members := make([][]*trace.Task, k)
	for i, t := range tasks {
		c := res.Assignment[i]
		members[c] = append(members[c], t)
	}
	for c := 0; c < k; c++ {
		if len(members[c]) == 0 {
			continue
		}
		cpus := make([]float64, len(members[c]))
		mems := make([]float64, len(members[c]))
		durs := make([]float64, len(members[c]))
		for i, t := range members[c] {
			cpus[i] = t.CPU
			mems[i] = t.Mem
			durs[i] = t.Duration
		}
		cls := Class{
			ID:          len(ch.Classes),
			Group:       g,
			CPU:         stats.Mean(cpus),
			Mem:         stats.Mean(mems),
			CPUStd:      stats.StdDev(cpus),
			MemStd:      stats.StdDev(mems),
			Count:       len(members[c]),
			logCentroid: res.Centroids[c],
		}
		for qi, prob := range QuantileProbs {
			cq, err := stats.Percentile(cpus, prob*100)
			if err != nil {
				return err
			}
			mq, err := stats.Percentile(mems, prob*100)
			if err != nil {
				return err
			}
			cls.CPUQuantiles[qi] = cq
			cls.MemQuantiles[qi] = mq
		}
		cls.Sub = splitDurations(durs, cfg)
		ch.byGroup[g.Index()] = append(ch.byGroup[g.Index()], cls.ID)
		ch.Classes = append(ch.Classes, cls)
	}
	_ = pts
	return nil
}

// splitDurations runs step two: k=2 clustering on log duration, returning
// sub-classes sorted short-first. When the class is too small or durations
// are homogeneous, a single sub-class is returned.
func splitDurations(durs []float64, cfg Config) []SubClass {
	if len(durs) < 4 {
		return []SubClass{subClassOf(durs)}
	}
	pts := make([]kmeans.Point, len(durs))
	for i, d := range durs {
		pts[i] = kmeans.Point{math.Log(d)}
	}
	res, err := kmeans.Run(pts, kmeans.Config{K: 2, Seed: cfg.Seed, Restarts: cfg.Restarts})
	if err != nil {
		return []SubClass{subClassOf(durs)}
	}
	var a, b []float64
	for i, d := range durs {
		if res.Assignment[i] == 0 {
			a = append(a, d)
		} else {
			b = append(b, d)
		}
	}
	if len(a) == 0 || len(b) == 0 {
		return []SubClass{subClassOf(durs)}
	}
	sa, sb := subClassOf(a), subClassOf(b)
	if sa.MeanDuration > sb.MeanDuration {
		sa, sb = sb, sa
	}
	// A split that does not separate scales is not useful; require the
	// long mean to be at least 3x the short mean.
	if sb.MeanDuration < 3*sa.MeanDuration {
		return []SubClass{subClassOf(durs)}
	}
	return []SubClass{sa, sb}
}

func subClassOf(durs []float64) SubClass {
	//harmony:allow errflow Max only errors on an empty slice; callers split non-empty duration sets
	mx, _ := stats.Max(durs)
	return SubClass{
		MeanDuration: stats.Mean(durs),
		SqCV:         stats.SquaredCV(durs),
		MaxDuration:  mx,
		Count:        len(durs),
	}
}

// ClassesOf returns the classes belonging to a priority group.
func (ch *Characterization) ClassesOf(g trace.PriorityGroup) []*Class {
	ids := ch.byGroup[g.Index()]
	out := make([]*Class, len(ids))
	for i, id := range ids {
		out[i] = &ch.Classes[id]
	}
	return out
}

// Label assigns a task to its nearest class (Euclidean distance in
// (log CPU, log Mem) space, restricted to the task's priority group) and
// returns the class ID. It returns -1 when the group has no classes.
func (ch *Characterization) Label(t trace.Task) int {
	ids := ch.byGroup[t.Group().Index()]
	if len(ids) == 0 {
		return -1
	}
	p := kmeans.Point{math.Log(t.CPU), math.Log(t.Mem)}
	best, bestD := -1, math.Inf(1)
	for _, id := range ids {
		c := &ch.Classes[id]
		d := 0.0
		for j := range p {
			diff := p[j] - c.logCentroid[j]
			d += diff * diff
		}
		if d < bestD {
			best, bestD = id, d
		}
	}
	return best
}

// TypeID identifies a (class, sub-class) pair — the unit the container
// manager provisions for. Sub 0 is short, 1 is long.
type TypeID struct {
	Class int
	Sub   int
}

// Labeler performs online task classification with the paper's
// label-short-first policy: a task is initially labeled with its class's
// short sub-class; once its observed running (or waiting) time exceeds the
// short sub-class's maximum duration it is relabeled long. Because most
// tasks are short, the initial mislabeling of long tasks is rare and
// short-lived (Section V).
type Labeler struct {
	ch *Characterization
}

// NewLabeler returns a Labeler over a characterization.
func NewLabeler(ch *Characterization) *Labeler {
	return &Labeler{ch: ch}
}

// Initial labels a newly arrived task: nearest class, short sub-class.
// ok is false when the task's group has no classes.
func (l *Labeler) Initial(t trace.Task) (TypeID, bool) {
	cls := l.ch.Label(t)
	if cls < 0 {
		return TypeID{}, false
	}
	return TypeID{Class: cls, Sub: 0}, true
}

// Refresh re-evaluates a task's label given its observed age (seconds since
// it started running). It upgrades short to long when the age exceeds the
// short sub-class boundary and the class has a long sub-class.
func (l *Labeler) Refresh(id TypeID, age float64) TypeID {
	if id.Class < 0 || id.Class >= len(l.ch.Classes) {
		return id
	}
	c := &l.ch.Classes[id.Class]
	if id.Sub != 0 || len(c.Sub) < 2 {
		return id
	}
	if age > c.Sub[0].MaxDuration {
		id.Sub = 1
	}
	return id
}

// TaskType describes one provisionable task type (class × sub-class) with
// the statistics the queueing model needs.
type TaskType struct {
	ID           TypeID
	Group        trace.PriorityGroup
	CPU, Mem     float64 // centroid demand
	CPUStd       float64
	MemStd       float64
	CPUQuantiles [4]float64 // demand quantiles at QuantileProbs
	MemQuantiles [4]float64
	MeanDuration float64
	SqCV         float64
	Count        int
}

// TaskTypes flattens the characterization into the list of provisionable
// task types.
func (ch *Characterization) TaskTypes() []TaskType {
	var out []TaskType
	for i := range ch.Classes {
		c := &ch.Classes[i]
		for s, sub := range c.Sub {
			out = append(out, TaskType{
				ID:           TypeID{Class: c.ID, Sub: s},
				Group:        c.Group,
				CPU:          c.CPU,
				Mem:          c.Mem,
				CPUStd:       c.CPUStd,
				MemStd:       c.MemStd,
				CPUQuantiles: c.CPUQuantiles,
				MemQuantiles: c.MemQuantiles,
				MeanDuration: sub.MeanDuration,
				SqCV:         sub.SqCV,
				Count:        sub.Count,
			})
		}
	}
	return out
}
