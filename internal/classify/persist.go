package classify

import (
	"encoding/json"
	"fmt"
	"io"

	"harmony/internal/kmeans"
	"harmony/internal/trace"
)

// The paper's deployment (§VIII) characterizes the workload offline and
// uses the result online; Save/Load give the characterization a stable
// serialized form so the two phases can run in different processes.

type classDTO struct {
	ID           int                 `json:"id"`
	Group        trace.PriorityGroup `json:"group"`
	CPU          float64             `json:"cpu"`
	Mem          float64             `json:"mem"`
	CPUStd       float64             `json:"cpuStd"`
	MemStd       float64             `json:"memStd"`
	Count        int                 `json:"count"`
	CPUQuantiles [4]float64          `json:"cpuQuantiles"`
	MemQuantiles [4]float64          `json:"memQuantiles"`
	Sub          []SubClass          `json:"sub"`
	LogCentroid  []float64           `json:"logCentroid"`
}

type characterizationDTO struct {
	Version int        `json:"version"`
	Classes []classDTO `json:"classes"`
}

const persistVersion = 1

// Save serializes the characterization as JSON.
func Save(w io.Writer, ch *Characterization) error {
	dto := characterizationDTO{Version: persistVersion}
	for i := range ch.Classes {
		c := &ch.Classes[i]
		dto.Classes = append(dto.Classes, classDTO{
			ID:           c.ID,
			Group:        c.Group,
			CPU:          c.CPU,
			Mem:          c.Mem,
			CPUStd:       c.CPUStd,
			MemStd:       c.MemStd,
			Count:        c.Count,
			CPUQuantiles: c.CPUQuantiles,
			MemQuantiles: c.MemQuantiles,
			Sub:          c.Sub,
			LogCentroid:  c.logCentroid,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(dto); err != nil {
		return fmt.Errorf("classify: save: %w", err)
	}
	return nil
}

// Load parses a characterization previously produced by Save.
func Load(r io.Reader) (*Characterization, error) {
	var dto characterizationDTO
	if err := json.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("classify: load: %w", err)
	}
	if dto.Version != persistVersion {
		return nil, fmt.Errorf("classify: load: unsupported version %d", dto.Version)
	}
	if len(dto.Classes) == 0 {
		return nil, ErrNoTasks
	}
	ch := &Characterization{}
	for i, d := range dto.Classes {
		if d.ID != i {
			return nil, fmt.Errorf("classify: load: class ids not dense at %d", i)
		}
		if d.Group < trace.Gratis || d.Group > trace.Production {
			return nil, fmt.Errorf("classify: load: class %d has invalid group", i)
		}
		if len(d.Sub) == 0 {
			return nil, fmt.Errorf("classify: load: class %d has no sub-classes", i)
		}
		if len(d.LogCentroid) != 2 {
			return nil, fmt.Errorf("classify: load: class %d centroid dimension %d", i, len(d.LogCentroid))
		}
		ch.Classes = append(ch.Classes, Class{
			ID:           d.ID,
			Group:        d.Group,
			CPU:          d.CPU,
			Mem:          d.Mem,
			CPUStd:       d.CPUStd,
			MemStd:       d.MemStd,
			Count:        d.Count,
			CPUQuantiles: d.CPUQuantiles,
			MemQuantiles: d.MemQuantiles,
			Sub:          d.Sub,
			logCentroid:  kmeans.Point(d.LogCentroid),
		})
		ch.byGroup[d.Group.Index()] = append(ch.byGroup[d.Group.Index()], d.ID)
	}
	return ch, nil
}
