package classify

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := syntheticTrace()
	ch, err := Characterize(tr, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, ch); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Classes) != len(ch.Classes) {
		t.Fatalf("classes = %d, want %d", len(got.Classes), len(ch.Classes))
	}
	for i := range ch.Classes {
		a, b := &ch.Classes[i], &got.Classes[i]
		if a.ID != b.ID || a.Group != b.Group || a.Count != b.Count {
			t.Errorf("class %d metadata mismatch", i)
		}
		if a.CPU != b.CPU || a.MemStd != b.MemStd {
			t.Errorf("class %d stats mismatch", i)
		}
		if a.CPUQuantiles != b.CPUQuantiles {
			t.Errorf("class %d quantiles mismatch", i)
		}
		if len(a.Sub) != len(b.Sub) {
			t.Errorf("class %d sub count mismatch", i)
		}
	}

	// Labeling behaves identically after a round trip.
	for _, task := range tr.Tasks {
		if ch.Label(task) != got.Label(task) {
			t.Fatalf("label diverged for task %d", task.ID)
		}
	}

	// TaskTypes carry through.
	if len(got.TaskTypes()) != len(ch.TaskTypes()) {
		t.Error("task types diverged")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":      "nope",
		"wrong version": `{"version": 99, "classes": [{"id":0}]}`,
		"empty classes": `{"version": 1, "classes": []}`,
		"sparse ids": `{"version":1,"classes":[{"id":5,"group":1,"sub":[{}],
			"logCentroid":[0,0]}]}`,
		"bad group": `{"version":1,"classes":[{"id":0,"group":9,"sub":[{}],
			"logCentroid":[0,0]}]}`,
		"no subs": `{"version":1,"classes":[{"id":0,"group":1,"sub":[],
			"logCentroid":[0,0]}]}`,
		"bad centroid": `{"version":1,"classes":[{"id":0,"group":1,"sub":[{}],
			"logCentroid":[0]}]}`,
	}
	for name, body := range cases {
		if _, err := Load(strings.NewReader(body)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
