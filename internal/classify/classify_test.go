package classify

import (
	"math"
	"testing"

	"harmony/internal/kmeans"
	"harmony/internal/trace"
)

// syntheticTrace builds a workload with two obvious size clusters per group
// and a clean short/long duration split.
func syntheticTrace() *trace.Trace {
	tr := &trace.Trace{
		Machines: []trace.MachineType{{ID: 1, CPU: 1, Mem: 1, Count: 10}},
		Horizon:  10000,
	}
	id := uint64(0)
	add := func(n int, cpu, mem, dur float64, prio int) {
		for i := 0; i < n; i++ {
			id++
			tr.Tasks = append(tr.Tasks, trace.Task{
				ID: id, Submit: float64(id), Duration: dur,
				CPU: cpu, Mem: mem, Priority: prio,
			})
		}
	}
	// Gratis: small cluster (short + long) and big cluster (short only).
	add(50, 0.01, 0.01, 30, 0)
	add(20, 0.01, 0.01, 5000, 0)
	add(40, 0.2, 0.15, 30, 1)
	// Other: one cluster, mixed durations.
	add(60, 0.05, 0.05, 60, 5)
	add(15, 0.05, 0.05, 9000, 5)
	// Production: two clusters.
	add(30, 0.1, 0.3, 120, 10)
	add(30, 0.5, 0.4, 80000, 11)
	tr.SortTasks()
	return tr
}

func TestCharacterizeBasics(t *testing.T) {
	ch, err := Characterize(syntheticTrace(), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Classes) < 4 {
		t.Fatalf("classes = %d, want >= 4", len(ch.Classes))
	}
	// Every group got at least one class.
	for _, g := range trace.Groups() {
		if len(ch.ClassesOf(g)) == 0 {
			t.Errorf("group %v has no classes", g)
		}
	}
	// Class counts sum to task count.
	total := 0
	for _, c := range ch.Classes {
		total += c.Count
		if c.CPU <= 0 || c.Mem <= 0 {
			t.Errorf("class %d has non-positive centroid %v/%v", c.ID, c.CPU, c.Mem)
		}
		subTotal := 0
		for _, s := range c.Sub {
			subTotal += s.Count
		}
		if subTotal != c.Count {
			t.Errorf("class %d sub counts %d != %d", c.ID, subTotal, c.Count)
		}
	}
	if total != 245 {
		t.Errorf("total classified = %d, want 245", total)
	}
}

func TestCharacterizeEmpty(t *testing.T) {
	if _, err := Characterize(&trace.Trace{}, Config{}); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestCharacterizeSeparatesSizes(t *testing.T) {
	ch, err := Characterize(syntheticTrace(), Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Gratis should split small (0.01) from large (0.2) tasks.
	gratis := ch.ClassesOf(trace.Gratis)
	var hasSmall, hasLarge bool
	for _, c := range gratis {
		if c.CPU < 0.05 {
			hasSmall = true
		}
		if c.CPU > 0.1 {
			hasLarge = true
		}
	}
	if !hasSmall || !hasLarge {
		t.Errorf("gratis classes did not separate sizes: %+v", gratis)
	}
}

func TestShortLongSplit(t *testing.T) {
	ch, err := Characterize(syntheticTrace(), Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The gratis small class mixes 30s and 5000s tasks: must split.
	found := false
	for _, c := range ch.ClassesOf(trace.Gratis) {
		if c.CPU < 0.05 && len(c.Sub) == 2 {
			found = true
			short := c.ShortSub()
			long, ok := c.LongSub()
			if !ok {
				t.Fatal("LongSub missing after split")
			}
			if short.MeanDuration >= long.MeanDuration {
				t.Errorf("sub-classes not sorted: %v >= %v", short.MeanDuration, long.MeanDuration)
			}
			if long.MeanDuration < 3*short.MeanDuration {
				t.Errorf("long/short separation too small: %v vs %v", long.MeanDuration, short.MeanDuration)
			}
		}
	}
	if !found {
		t.Error("no gratis class with a short/long split")
	}
}

func TestLabelNearestClass(t *testing.T) {
	ch, err := Characterize(syntheticTrace(), Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// A task near the large gratis cluster must label to it.
	id := ch.Label(trace.Task{CPU: 0.19, Mem: 0.16, Priority: 0})
	if id < 0 {
		t.Fatal("label failed")
	}
	c := ch.Classes[id]
	if c.Group != trace.Gratis {
		t.Errorf("labeled into group %v", c.Group)
	}
	if c.CPU < 0.1 {
		t.Errorf("labeled into small class (cpu centroid %v)", c.CPU)
	}
}

func TestLabelerInitialAndRefresh(t *testing.T) {
	ch, err := Characterize(syntheticTrace(), Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	l := NewLabeler(ch)
	id, ok := l.Initial(trace.Task{CPU: 0.01, Mem: 0.01, Priority: 0})
	if !ok {
		t.Fatal("Initial failed")
	}
	if id.Sub != 0 {
		t.Errorf("initial sub = %d, want 0 (short)", id.Sub)
	}
	c := ch.Classes[id.Class]
	if len(c.Sub) < 2 {
		t.Skip("class did not split; relabel not applicable")
	}
	// Below the boundary: stays short.
	still := l.Refresh(id, c.Sub[0].MaxDuration*0.5)
	if still.Sub != 0 {
		t.Error("refreshed to long before boundary")
	}
	// Past the boundary: upgrades to long.
	up := l.Refresh(id, c.Sub[0].MaxDuration*1.01)
	if up.Sub != 1 {
		t.Error("did not upgrade to long past boundary")
	}
	// Refresh of a long label is a no-op.
	again := l.Refresh(up, 1e12)
	if again != up {
		t.Error("long label changed on refresh")
	}
	// Refresh with a bogus class is a no-op.
	bogus := l.Refresh(TypeID{Class: -1}, 100)
	if bogus.Class != -1 {
		t.Error("bogus class mutated")
	}
}

func TestTaskTypes(t *testing.T) {
	ch, err := Characterize(syntheticTrace(), Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	types := ch.TaskTypes()
	if len(types) < len(ch.Classes) {
		t.Fatalf("types = %d < classes = %d", len(types), len(ch.Classes))
	}
	total := 0
	for _, tt := range types {
		total += tt.Count
		if tt.MeanDuration <= 0 {
			t.Errorf("type %+v has non-positive duration", tt.ID)
		}
		if tt.SqCV < 0 {
			t.Errorf("type %+v has negative CV²", tt.ID)
		}
	}
	if total != 245 {
		t.Errorf("type counts sum = %d, want 245", total)
	}
}

// All tasks of the trace label back into a class of their own group.
func TestLabelConsistency(t *testing.T) {
	tr := syntheticTrace()
	ch, err := Characterize(tr, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tr.Tasks {
		id := ch.Label(task)
		if id < 0 {
			t.Fatalf("task %d unlabeled", task.ID)
		}
		if ch.Classes[id].Group != task.Group() {
			t.Fatalf("task %d labeled across groups", task.ID)
		}
	}
}

func TestCharacterizeOnGeneratedTrace(t *testing.T) {
	cfg := trace.DefaultConfig(11)
	cfg.Horizon = 2 * trace.Hour
	cfg.RatePerS = 1
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := Characterize(tr, Config{Seed: 8, MaxK: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Stddev should be well below the mean for most classes (the paper's
	// accuracy check in Section IX-A). Require it for at least half.
	good := 0
	for _, c := range ch.Classes {
		if c.CPUStd < c.CPU && c.MemStd < c.Mem {
			good++
		}
	}
	if good*2 < len(ch.Classes) {
		t.Errorf("only %d/%d classes have std < mean", good, len(ch.Classes))
	}
	// Runtime labeling matches offline assignment class counts roughly:
	// every task must at least label into its own group.
	for _, task := range tr.Tasks[:100] {
		if id := ch.Label(task); id < 0 || ch.Classes[id].Group != task.Group() {
			t.Fatalf("bad label for %+v", task)
		}
	}
}

// TestRefreshBoundaryExact pins the relabel boundary semantics on a
// hand-built characterization: the short→long upgrade requires the
// observed age to strictly exceed the short sub-class's MaxDuration.
func TestRefreshBoundaryExact(t *testing.T) {
	ch := &Characterization{
		Classes: []Class{
			{
				ID: 0, Group: trace.Gratis,
				CPU: 0.02, Mem: 0.02,
				Sub: []SubClass{
					{MeanDuration: 60, SqCV: 1.2, MaxDuration: 100, Count: 90},
					{MeanDuration: 5000, SqCV: 0.5, MaxDuration: 20000, Count: 10},
				},
				logCentroid: kmeans.Point{-3.9, -3.9},
			},
			{
				ID: 1, Group: trace.Gratis,
				CPU: 0.2, Mem: 0.2,
				Sub: []SubClass{
					{MeanDuration: 30, SqCV: 1.0, MaxDuration: 50, Count: 40},
				},
				logCentroid: kmeans.Point{-1.6, -1.6},
			},
		},
	}
	ch.byGroup[trace.Gratis.Index()] = []int{0, 1}
	l := NewLabeler(ch)

	short := TypeID{Class: 0, Sub: 0}
	// Exactly at the boundary: stays short (the boundary is the largest
	// duration observed among short members, so age == MaxDuration is
	// still consistent with a short task).
	if got := l.Refresh(short, 100); got != short {
		t.Errorf("age == MaxDuration relabeled to %+v", got)
	}
	// The smallest representable step above the boundary upgrades.
	justOver := math.Nextafter(100, 200)
	if got := l.Refresh(short, justOver); got != (TypeID{Class: 0, Sub: 1}) {
		t.Errorf("age just over boundary = %+v, want long", got)
	}
	// A class without a long sub-class never upgrades, whatever the age.
	single := TypeID{Class: 1, Sub: 0}
	if got := l.Refresh(single, 1e12); got != single {
		t.Errorf("single-sub class relabeled to %+v", got)
	}
	// Out-of-range class indices pass through untouched.
	over := TypeID{Class: 2, Sub: 0}
	if got := l.Refresh(over, 1e12); got != over {
		t.Errorf("out-of-range class mutated to %+v", got)
	}
}

// TestRefreshAfterInitial walks the full online sequence: classification
// on arrival, then age-driven refreshes as the task keeps running.
func TestRefreshAfterInitial(t *testing.T) {
	ch, err := Characterize(syntheticTrace(), Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	l := NewLabeler(ch)
	task := trace.Task{CPU: 0.01, Mem: 0.01, Priority: 0}
	id, ok := l.Initial(task)
	if !ok || id.Sub != 0 {
		t.Fatalf("Initial = %+v, %v", id, ok)
	}
	c := &ch.Classes[id.Class]
	if len(c.Sub) < 2 {
		t.Skip("class did not split; relabel not applicable")
	}
	boundary := c.Sub[0].MaxDuration
	// Monotone ages crossing the boundary: the label changes exactly
	// once and then sticks.
	ages := []float64{boundary / 4, boundary / 2, boundary, boundary * 1.5, boundary * 10}
	changes := 0
	cur := id
	for _, age := range ages {
		next := l.Refresh(cur, age)
		if next != cur {
			changes++
			if next.Class != cur.Class || next.Sub != 1 {
				t.Fatalf("refresh at age %v produced %+v", age, next)
			}
		}
		cur = next
	}
	if changes != 1 {
		t.Errorf("label changed %d times, want 1", changes)
	}
}

// TestInitialEmptyGroup covers the classless-group path: tasks whose
// priority group produced no classes cannot be labeled.
func TestInitialEmptyGroup(t *testing.T) {
	ch := &Characterization{
		Classes: []Class{{
			ID: 0, Group: trace.Gratis,
			Sub:         []SubClass{{MeanDuration: 60, MaxDuration: 100, Count: 1}},
			logCentroid: kmeans.Point{-3.9, -3.9},
		}},
	}
	ch.byGroup[trace.Gratis.Index()] = []int{0}
	l := NewLabeler(ch)

	// Production has no classes: Initial must report failure with the
	// zero TypeID, and Label must return -1.
	prod := trace.Task{CPU: 0.1, Mem: 0.1, Priority: 10}
	id, ok := l.Initial(prod)
	if ok || id != (TypeID{}) {
		t.Errorf("Initial on empty group = %+v, %v", id, ok)
	}
	if got := ch.Label(prod); got != -1 {
		t.Errorf("Label on empty group = %d, want -1", got)
	}
	// The populated group still labels.
	if _, ok := l.Initial(trace.Task{CPU: 0.02, Mem: 0.02, Priority: 0}); !ok {
		t.Error("gratis task unlabeled")
	}
}
