// Package core implements the paper's primary contribution: the CBS-RELAX
// optimization (Eqs. 12-17), the Model Predictive Control loop of
// Algorithm 1 that turns fractional plans into integer machine and
// container decisions via First-Fit rounding (Lemma 1), and the CBP
// variant (Section VIII-B) that drives an unmodified scheduler.
package core

import (
	"errors"
	"fmt"
	"math"

	"harmony/internal/lp"
)

// MachineSpec describes one machine type available to the provisioner.
type MachineSpec struct {
	Type      int     // machine type identifier (matches trace/energy IDs)
	CPU, Mem  float64 // per-machine normalized capacity
	Available int     // N^m_t: machines of this type that exist

	//harmony:unit(W)
	IdleWatts float64 // E_idle,m
	//harmony:unit(W)
	AlphaCPU float64 // α_m,cpu (watts at full CPU)
	//harmony:unit(W)
	AlphaMem float64 // α_m,mem
	// SwitchCost q_m is the dollar cost of turning one machine of this
	// type on or off (container reassignment cost folded in, §VII-C).
	//harmony:unit($)
	SwitchCost float64
}

// ContainerSpec describes one container (task) type to be provisioned.
type ContainerSpec struct {
	Type     int     // dense container-type index
	CPU, Mem float64 // container reservation (from container.ForClass)
	// Value is the monetary gain per scheduled container per control
	// period — the slope of the concave utility f_n.
	Value float64
	// Omega is the over-provisioning factor ω_n >= 1 that compensates
	// bin-packing inefficiency (Eq. 17). 0 is treated as 1.
	Omega float64
}

// PlanInput is one CBS-RELAX instance over a prediction horizon.
type PlanInput struct {
	//harmony:unit(s)
	PeriodSeconds float64 // control-interval length
	Horizon       int     // W: number of look-ahead periods

	Machines   []MachineSpec
	Containers []ContainerSpec

	// Demand[n][t] is the predicted number of type-n containers needed
	// in period t (from the queueing module on forecast arrival rates).
	Demand [][]float64
	// Price[t] is the electricity price in $/kWh for period t.
	//harmony:unit($/kWh)
	Price []float64
	// InitialActive[m] is z^m_{t-1}, the machines of type m currently on.
	InitialActive []float64
}

// Plan is the fractional CBS-RELAX solution.
type Plan struct {
	// Active[m][t] is z^m_t.
	Active [][]float64
	// Alloc[m][n][t] is x^{mn}_t (0 for incompatible pairs).
	Alloc [][][]float64
	// Scheduled[n][t] is the utility-earning scheduled container count
	// min(Σ_m x^{mn}_t, demand).
	Scheduled [][]float64
	Objective float64
	// Iterations is the simplex pivot count the solve spent — near zero
	// when a warm-started basis was already optimal.
	Iterations int
}

// ErrBadInput is returned for malformed plan inputs.
var ErrBadInput = errors.New("core: bad plan input")

func (in *PlanInput) validate() error {
	if in.PeriodSeconds <= 0 {
		return fmt.Errorf("%w: period %v", ErrBadInput, in.PeriodSeconds)
	}
	if in.Horizon <= 0 {
		return fmt.Errorf("%w: horizon %d", ErrBadInput, in.Horizon)
	}
	if len(in.Machines) == 0 || len(in.Containers) == 0 {
		return fmt.Errorf("%w: need machines and containers", ErrBadInput)
	}
	if len(in.Demand) != len(in.Containers) {
		return fmt.Errorf("%w: demand rows %d != containers %d", ErrBadInput, len(in.Demand), len(in.Containers))
	}
	for n, row := range in.Demand {
		if len(row) != in.Horizon {
			return fmt.Errorf("%w: demand[%d] has %d periods, want %d", ErrBadInput, n, len(row), in.Horizon)
		}
		for _, d := range row {
			if d < 0 || math.IsNaN(d) {
				return fmt.Errorf("%w: negative demand", ErrBadInput)
			}
		}
	}
	if len(in.Price) != in.Horizon {
		return fmt.Errorf("%w: price has %d periods, want %d", ErrBadInput, len(in.Price), in.Horizon)
	}
	if len(in.InitialActive) != len(in.Machines) {
		return fmt.Errorf("%w: initial active %d != machines %d", ErrBadInput, len(in.InitialActive), len(in.Machines))
	}
	for _, m := range in.Machines {
		if m.CPU <= 0 || m.Mem <= 0 || m.Available < 0 {
			return fmt.Errorf("%w: machine type %d", ErrBadInput, m.Type)
		}
	}
	for _, c := range in.Containers {
		if c.CPU <= 0 || c.Mem <= 0 {
			return fmt.Errorf("%w: container type %d", ErrBadInput, c.Type)
		}
	}
	return nil
}

// Compatible reports whether a container of spec c fits on an empty
// machine of spec m (after over-provisioning inflation).
func Compatible(m MachineSpec, c ContainerSpec) bool {
	om := c.Omega
	if om < 1 {
		om = 1
	}
	return om*c.CPU <= m.CPU && om*c.Mem <= m.Mem
}

// EffectiveSize returns the per-container capacity consumption of a type-c
// container on a type-m machine, adjusted for packing integrality: if at
// most k containers of this type fit one machine (k limited by the tighter
// resource), each one effectively consumes C/k of the machine in every
// dimension it is the k-limiter for. Aggregate LP capacity would otherwise
// believe that a container using 96% of a machine's memory leaves usable
// memory behind. Returns ok=false for incompatible pairs.
func EffectiveSize(m MachineSpec, c ContainerSpec) (cpu, mem float64, ok bool) {
	if !Compatible(m, c) {
		return 0, 0, false
	}
	om := c.Omega
	if om < 1 {
		om = 1
	}
	cpu = om * c.CPU
	mem = om * c.Mem
	k := math.Floor(m.CPU / cpu)
	if km := math.Floor(m.Mem / mem); km < k {
		k = km
	}
	if k < 1 {
		k = 1
	}
	// A machine hosting its k-th container of this type is effectively
	// full in the limiting dimension; spread that cost over the k slots.
	if perSlot := m.CPU / k; perSlot > cpu {
		// Only charge the rounding loss in the dimension that limits k;
		// the other dimension keeps its true size so mixed packing with
		// small containers stays possible in the model.
		//harmony:allow floateq exact by construction: k is one of these two Floor values
		if k == math.Floor(m.CPU/(om*c.CPU)) {
			cpu = perSlot
		}
	}
	if perSlot := m.Mem / k; perSlot > mem {
		//harmony:allow floateq exact by construction: k is one of these two Floor values
		if k == math.Floor(m.Mem/(om*c.Mem)) {
			mem = perSlot
		}
	}
	return cpu, mem, true
}

// varIndex lays out LP columns for the CBS-RELAX program.
type varIndex struct {
	nm, nn, w int
	// zBase[m][t], dPlusBase, dMinusBase, sBase[n][t]
	zBase, dPlusBase, dMinusBase, sBase int
	// xCol[(m*nn+n)*w+t] = column or -1 if incompatible
	xCol   []int
	numCol int
}

func newVarIndex(in *PlanInput) *varIndex {
	v := &varIndex{nm: len(in.Machines), nn: len(in.Containers), w: in.Horizon}
	v.xCol = make([]int, v.nm*v.nn*v.w)
	col := 0
	for m := 0; m < v.nm; m++ {
		for n := 0; n < v.nn; n++ {
			comp := Compatible(in.Machines[m], in.Containers[n])
			for t := 0; t < v.w; t++ {
				idx := (m*v.nn+n)*v.w + t
				if comp {
					v.xCol[idx] = col
					col++
				} else {
					v.xCol[idx] = -1
				}
			}
		}
	}
	v.zBase = col
	col += v.nm * v.w
	v.dPlusBase = col
	col += v.nm * v.w
	v.dMinusBase = col
	col += v.nm * v.w
	v.sBase = col
	col += v.nn * v.w
	v.numCol = col
	return v
}

func (v *varIndex) x(m, n, t int) int { return v.xCol[(m*v.nn+n)*v.w+t] }
func (v *varIndex) z(m, t int) int    { return v.zBase + m*v.w + t }
func (v *varIndex) dp(m, t int) int   { return v.dPlusBase + m*v.w + t }
func (v *varIndex) dm(m, t int) int   { return v.dMinusBase + m*v.w + t }
func (v *varIndex) s(n, t int) int    { return v.sBase + n*v.w + t }

// SolveRelaxed builds and solves the CBS-RELAX linear program (Eq. 14
// objective, Eq. 15 availability, Eq. 16/17 capacity with ω, plus the
// switching-cost linearization |δ| = δ⁺ + δ⁻) from a cold start.
func SolveRelaxed(in *PlanInput) (*Plan, error) {
	plan, _, err := SolveRelaxedWarm(in, nil)
	return plan, err
}

// SolveRelaxedWarm solves CBS-RELAX seeded from the optimal basis of a
// previous period's solve and returns the basis for the next period.
// Across MPC periods only the forecast demand, prices, and initial
// machine state change — the constraint matrix is identical as long as
// the machine/container catalog is — so the previous basis is usually
// optimal or a handful of pivots away. A stale or mismatched basis
// (catalog change, horizon change) is detected inside lp.SolveWarm and
// falls back to a cold solve; the answer is identical either way.
func SolveRelaxedWarm(in *PlanInput, basis *lp.Basis) (*Plan, *lp.Basis, error) {
	if err := in.validate(); err != nil {
		return nil, nil, err
	}
	v := newVarIndex(in)
	prob := buildProblem(in, v)
	sol, next, err := lp.SolveWarm(prob, basis)
	if err != nil {
		return nil, nil, fmt.Errorf("core: CBS-RELAX: %w", err)
	}
	return extractPlan(sol, v), next, nil
}

// buildProblem assembles the CBS-RELAX LP over the column layout v.
func buildProblem(in *PlanInput, v *varIndex) *lp.Problem {
	prob := &lp.Problem{NumVars: v.numCol, Objective: make([]float64, v.numCol)}

	kwhPerWattPeriod := in.PeriodSeconds / 3.6e6

	// Objective.
	for t := 0; t < v.w; t++ {
		price := in.Price[t]
		for m, ms := range in.Machines {
			prob.Objective[v.z(m, t)] -= price * ms.IdleWatts * kwhPerWattPeriod
			prob.Objective[v.dp(m, t)] -= ms.SwitchCost
			prob.Objective[v.dm(m, t)] -= ms.SwitchCost
			for n, cs := range in.Containers {
				col := v.x(m, n, t)
				if col < 0 {
					continue
				}
				dynWatts := ms.AlphaCPU*cs.CPU/ms.CPU + ms.AlphaMem*cs.Mem/ms.Mem
				prob.Objective[col] -= price * dynWatts * kwhPerWattPeriod
			}
		}
		for n, cs := range in.Containers {
			prob.Objective[v.s(n, t)] += cs.Value
		}
	}

	// Constraints.
	row := make([]float64, v.numCol)
	reset := func() {
		for i := range row {
			row[i] = 0
		}
	}
	for t := 0; t < v.w; t++ {
		for m, ms := range in.Machines {
			// Availability (Eq. 15): z <= N_m.
			reset()
			row[v.z(m, t)] = 1
			prob.AddConstraint(row, lp.LE, float64(ms.Available))

			// Capacity per resource (Eq. 16/17), with per-pair
			// integrality-aware effective sizes:
			// Σ_n cEff_mnr x - C_mr z <= 0.
			for _, res := range []int{0, 1} {
				reset()
				for n, cs := range in.Containers {
					col := v.x(m, n, t)
					if col < 0 {
						continue
					}
					effCPU, effMem, ok := EffectiveSize(ms, cs)
					if !ok {
						continue
					}
					if res == 0 {
						row[col] = effCPU
					} else {
						row[col] = effMem
					}
				}
				if res == 0 {
					row[v.z(m, t)] = -ms.CPU
				} else {
					row[v.z(m, t)] = -ms.Mem
				}
				prob.AddConstraint(row, lp.LE, 0)
			}

			// Switching linkage (Eq. 12): z_t - z_{t-1} = δ⁺ - δ⁻.
			reset()
			row[v.z(m, t)] = 1
			row[v.dp(m, t)] = -1
			row[v.dm(m, t)] = 1
			rhs := 0.0
			if t == 0 {
				rhs = in.InitialActive[m]
			} else {
				row[v.z(m, t-1)] = -1
			}
			prob.AddConstraint(row, lp.EQ, rhs)
		}
		for n := range in.Containers {
			// Scheduled containers earn utility up to demand:
			// s <= Σ_m x, s <= D.
			reset()
			row[v.s(n, t)] = 1
			for m := range in.Machines {
				if col := v.x(m, n, t); col >= 0 {
					row[col] = -1
				}
			}
			prob.AddConstraint(row, lp.LE, 0)

			reset()
			row[v.s(n, t)] = 1
			prob.AddConstraint(row, lp.LE, in.Demand[n][t])
		}
	}
	return prob
}

// extractPlan maps the LP solution vector back onto the plan tensors.
func extractPlan(sol *lp.Solution, v *varIndex) *Plan {
	plan := &Plan{
		Active:     make([][]float64, v.nm),
		Alloc:      make([][][]float64, v.nm),
		Scheduled:  make([][]float64, v.nn),
		Objective:  sol.Objective,
		Iterations: sol.Iterations,
	}
	for m := 0; m < v.nm; m++ {
		plan.Active[m] = make([]float64, v.w)
		plan.Alloc[m] = make([][]float64, v.nn)
		for t := 0; t < v.w; t++ {
			plan.Active[m][t] = sol.X[v.z(m, t)]
		}
		for n := 0; n < v.nn; n++ {
			plan.Alloc[m][n] = make([]float64, v.w)
			for t := 0; t < v.w; t++ {
				if col := v.x(m, n, t); col >= 0 {
					plan.Alloc[m][n][t] = sol.X[col]
				}
			}
		}
	}
	for n := 0; n < v.nn; n++ {
		plan.Scheduled[n] = make([]float64, v.w)
		for t := 0; t < v.w; t++ {
			plan.Scheduled[n][t] = sol.X[v.s(n, t)]
		}
	}
	return plan
}
