package core

import (
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"harmony/internal/lp"
)

// perturb returns a copy of in with the MPC-shaped drift between
// consecutive control periods: demand, prices, and initial machine state
// move; the machine/container catalog (and hence the LP matrix) stays.
func perturb(r *rand.Rand, in *PlanInput) *PlanInput {
	out := &PlanInput{
		PeriodSeconds: in.PeriodSeconds,
		Horizon:       in.Horizon,
		Machines:      in.Machines,
		Containers:    in.Containers,
		Demand:        make([][]float64, len(in.Demand)),
		Price:         make([]float64, len(in.Price)),
		InitialActive: make([]float64, len(in.InitialActive)),
	}
	for n, row := range in.Demand {
		out.Demand[n] = make([]float64, len(row))
		for t, d := range row {
			nd := math.Floor(d * (0.8 + r.Float64()*0.4))
			if nd < 0 {
				nd = 0
			}
			out.Demand[n][t] = nd
		}
	}
	for t, p := range in.Price {
		out.Price[t] = p * (0.9 + r.Float64()*0.2)
	}
	for m, a := range in.InitialActive {
		na := math.Round(a * (0.8 + r.Float64()*0.4))
		if max := float64(in.Machines[m].Available); na > max {
			na = max
		}
		out.InitialActive[m] = na
	}
	return out
}

// TestSolveRelaxedWarmMatchesCold drives randomized MPC sequences:
// each period's input is a perturbation of the last, solved both cold
// and warm-started from the previous basis. Objectives must agree and
// the warm plans must satisfy the same feasibility invariants; across
// all sequences the warm path must pivot strictly less.
func TestSolveRelaxedWarmMatchesCold(t *testing.T) {
	r := rand.New(rand.NewSource(555))
	coldIters, warmIters := 0, 0
	for trial := 0; trial < 12; trial++ {
		in := randomInput(r)
		var basis *lp.Basis
		for period := 0; period < 6; period++ {
			if period > 0 {
				in = perturb(r, in)
			}
			cold, err := SolveRelaxed(in)
			if err != nil {
				t.Fatalf("trial %d period %d cold: %v", trial, period, err)
			}
			warm, next, err := SolveRelaxedWarm(in, basis)
			if err != nil {
				t.Fatalf("trial %d period %d warm: %v", trial, period, err)
			}
			basis = next
			tol := 1e-6 * (1 + math.Abs(cold.Objective))
			if math.Abs(cold.Objective-warm.Objective) > tol {
				t.Fatalf("trial %d period %d: cold obj %g, warm obj %g",
					trial, period, cold.Objective, warm.Objective)
			}
			assertPlanFeasible(t, in, warm)
			coldIters += cold.Iterations
			if period > 0 {
				warmIters += warm.Iterations
			}
		}
	}
	if warmIters >= coldIters {
		t.Fatalf("warm starts saved nothing: %d warm pivots vs %d cold", warmIters, coldIters)
	}
	t.Logf("pivots: cold=%d warm=%d", coldIters, warmIters)
}

// assertPlanFeasible checks the CBS-RELAX invariants (the same set as
// TestSolveRelaxedInvariants) on one plan.
func assertPlanFeasible(t *testing.T, in *PlanInput, plan *Plan) {
	t.Helper()
	for m, ms := range in.Machines {
		for tt := 0; tt < in.Horizon; tt++ {
			z := plan.Active[m][tt]
			if z < -1e-6 || z > float64(ms.Available)+1e-6 {
				t.Fatalf("z[%d][%d] = %v out of [0,%d]", m, tt, z, ms.Available)
			}
			var cpu, mem float64
			for n, cs := range in.Containers {
				x := plan.Alloc[m][n][tt]
				if x < -1e-6 {
					t.Fatalf("negative alloc x[%d][%d][%d]", m, n, tt)
				}
				if x > 1e-9 && !Compatible(ms, cs) {
					t.Fatalf("incompatible pair allocated")
				}
				om := cs.Omega
				if om < 1 {
					om = 1
				}
				cpu += om * cs.CPU * x
				mem += om * cs.Mem * x
			}
			if cpu > ms.CPU*z+1e-5 || mem > ms.Mem*z+1e-5 {
				t.Fatalf("capacity violated on type %d period %d", m, tt)
			}
		}
	}
	for n := range in.Containers {
		for tt := 0; tt < in.Horizon; tt++ {
			s := plan.Scheduled[n][tt]
			if s < -1e-6 || s > in.Demand[n][tt]+1e-6 {
				t.Fatalf("scheduled %v outside [0, %v]", s, in.Demand[n][tt])
			}
		}
	}
}

// TestControllerWarmAcrossSteps: a controller's second Step reuses the
// basis from the first, and both decisions match what a fresh cold
// controller produces on the same inputs.
func TestControllerWarmAcrossSteps(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		in := randomInput(r)
		warmCtrl := &Controller{
			Machines: in.Machines, Containers: in.Containers,
			PeriodSeconds: in.PeriodSeconds, Horizon: in.Horizon, Mode: CBS,
		}
		next := perturb(r, in)
		for period, cur := range []*PlanInput{in, next} {
			coldCtrl := &Controller{
				Machines: cur.Machines, Containers: cur.Containers,
				PeriodSeconds: cur.PeriodSeconds, Horizon: cur.Horizon, Mode: CBS,
			}
			wd, err := warmCtrl.Step(cur.InitialActive, cur.Demand, cur.Price)
			if err != nil {
				t.Fatalf("trial %d period %d warm: %v", trial, period, err)
			}
			cd, err := coldCtrl.Step(cur.InitialActive, cur.Demand, cur.Price)
			if err != nil {
				t.Fatalf("trial %d period %d cold: %v", trial, period, err)
			}
			if !reflect.DeepEqual(wd.ActiveMachines, cd.ActiveMachines) {
				t.Fatalf("trial %d period %d: active %v (warm) vs %v (cold)",
					trial, period, wd.ActiveMachines, cd.ActiveMachines)
			}
			if !reflect.DeepEqual(wd.Quota, cd.Quota) {
				t.Fatalf("trial %d period %d: quota diverged", trial, period)
			}
		}
		if warmCtrl.basis == nil {
			t.Fatalf("trial %d: controller did not retain a basis", trial)
		}
	}
}

// wideInput builds an instance with many machine types so the parallel
// per-type placement actually fans out.
func wideInput(r *rand.Rand, nm int) *PlanInput {
	in := &PlanInput{PeriodSeconds: 300, Horizon: 2}
	for m := 0; m < nm; m++ {
		in.Machines = append(in.Machines, MachineSpec{
			Type:       m + 1,
			CPU:        0.3 + r.Float64()*0.7,
			Mem:        0.3 + r.Float64()*0.7,
			Available:  5 + r.Intn(40),
			IdleWatts:  50 + r.Float64()*200,
			AlphaCPU:   50 + r.Float64()*200,
			AlphaMem:   10 + r.Float64()*50,
			SwitchCost: r.Float64() * 0.01,
		})
	}
	nn := 4 + r.Intn(5)
	for n := 0; n < nn; n++ {
		in.Containers = append(in.Containers, ContainerSpec{
			Type:  n,
			CPU:   0.02 + r.Float64()*0.3,
			Mem:   0.02 + r.Float64()*0.3,
			Value: 0.05 + r.Float64()*0.2,
			Omega: 1 + r.Float64()*0.3,
		})
	}
	in.Demand = make([][]float64, nn)
	for n := range in.Demand {
		in.Demand[n] = make([]float64, in.Horizon)
		for t := range in.Demand[n] {
			in.Demand[n][t] = math.Floor(r.Float64() * 120)
		}
	}
	in.Price = []float64{0.08, 0.1}
	in.InitialActive = make([]float64, nm)
	for m := range in.InitialActive {
		in.InitialActive[m] = float64(r.Intn(in.Machines[m].Available))
	}
	return in
}

// TestParallelPlacementIdentity pins the deterministic-reduce contract:
// the CBS rounding decision is bit-identical at GOMAXPROCS 1, 4, and 8.
func TestParallelPlacementIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(2718))
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	for trial := 0; trial < 8; trial++ {
		in := wideInput(r, 6+r.Intn(6))
		plan, err := SolveRelaxed(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ctrl := &Controller{
			Machines: in.Machines, Containers: in.Containers,
			PeriodSeconds: in.PeriodSeconds, Horizon: in.Horizon, Mode: CBS,
		}
		var ref *Decision
		for _, procs := range []int{1, 4, 8} {
			runtime.GOMAXPROCS(procs)
			d, err := ctrl.Realize(plan)
			runtime.GOMAXPROCS(orig)
			if err != nil {
				t.Fatalf("trial %d procs %d: %v", trial, procs, err)
			}
			if ref == nil {
				ref = d
				continue
			}
			if !reflect.DeepEqual(ref, d) {
				t.Fatalf("trial %d: decision differs between GOMAXPROCS=1 and %d", trial, procs)
			}
		}
	}
}
