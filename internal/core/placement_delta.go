package core

// Incremental delta placement across control periods. Consecutive MPC
// periods change only a few machine types' allocations, yet roundCBS
// repacks every container from scratch each tick. This file mirrors the
// lp.SolveWarm trick at the packing layer: diff the new fractional plan
// against the previous decision per machine type, keep the packings of
// types whose integerized period-0 projection (machine budget, container
// counts, quota caps) is unchanged, and run First-Fit only for the
// changed types — with a full-repack fallback on any anomaly, so a stale
// previous decision can never change the answer, only cost time.

// DeltaStats reports how the controller's delta placement path has
// resolved its work since construction: machine types whose packings were
// reused, types repacked because their plan projection changed, and whole
// realizations that fell back to a full repack (nil/mismatched previous
// decision or a budget anomaly).
type DeltaStats struct {
	ReusedTypes   int
	RepackedTypes int
	FullRepacks   int
}

// DeltaStats returns the cumulative delta-placement counters.
func (c *Controller) DeltaStats() DeltaStats { return c.deltaStats }

// RealizeDelta rounds period 0 of a fractional plan like Realize, but in
// CBS mode reuses the per-type packings of prev for machine types whose
// period-0 plan projection is unchanged. prev may be nil (or from a
// different catalog shape), in which case the realization is a full
// repack; the result is bit-identical to Realize either way. Step calls
// it with the controller's previous decision; it is exported so the
// delta pass can be exercised (and benchmarked) against fixed plans.
//
// The machine and container catalogs must be the ones prev was produced
// under: like the warm LP basis, the delta diff watches the plan (and the
// Available counts, through the budget), not machine capacities or
// container sizes — mutating those between ticks requires a fresh
// controller (or a nil prev) anyway.
func (c *Controller) RealizeDelta(prev *Decision, plan *Plan) (*Decision, error) {
	switch c.Mode {
	case CBP:
		return c.roundCBP(plan), nil
	case CBS:
		return c.roundCBSDelta(prev, plan)
	default:
		return nil, errUnknownMode(c.Mode)
	}
}

// roundCBSDelta realizes period 0 with per-type reuse against prev. Any
// anomaly — nil or non-CBS prev, catalog-shape change, packed bins
// exceeding the current budget — falls back to the full repack exactly
// like the warm LP path falls back to a cold solve.
func (c *Controller) roundCBSDelta(prev *Decision, plan *Plan) (*Decision, error) {
	if !c.deltaReusable(prev, plan) {
		c.deltaStats.FullRepacks++
		return c.roundCBS(plan)
	}
	nm := len(c.Machines)
	reuse := make([]bool, nm)
	var changed []int
	for m := 0; m < nm; m++ {
		if !c.typeProjectionEqual(prev.Plan, plan, m) {
			changed = append(changed, m)
			continue
		}
		if len(prev.Packings[m]) > c.packBudget(plan, m) {
			// Budget shrank below the bins already packed: the reused
			// packing would exceed what Lemma 1 allows this period. With
			// an equal projection this cannot happen, so treat it as a
			// stale prev and repack everything.
			c.deltaStats.FullRepacks++
			return c.roundCBS(plan)
		}
		reuse[m] = true
	}

	parts := make([]typePacking, nm)
	if len(changed) > 0 {
		c.packInto(plan, changed, parts)
	}
	c.deltaStats.ReusedTypes += nm - len(changed)
	c.deltaStats.RepackedTypes += len(changed)

	d := &Decision{
		ActiveMachines: make([]int, nm),
		Quota:          make([][]int, nm),
		Packings:       make([][]map[int]int, nm),
		Dropped:        make([]int, len(c.Containers)),
		Plan:           plan,
	}
	// Merge in type order, like mergeParts, so the reported error is
	// always the lowest-type failure and the result is bit-identical to
	// the full repack regardless of worker completion order. Reused
	// types cannot fail: their projection packed successfully last time
	// and packType is deterministic in the projection.
	for m := 0; m < nm; m++ {
		if reuse[m] {
			mergeReusedType(d, prev, plan, m)
			continue
		}
		p := &parts[m]
		if p.err != nil {
			return nil, p.err
		}
		d.ActiveMachines[m] = p.active
		d.Quota[m] = p.quota
		d.Packings[m] = p.packings
		for n, cnt := range p.dropped {
			d.Dropped[n] += cnt
		}
	}
	return d, nil
}

// deltaReusable reports whether prev is a CBS decision whose shape matches
// the controller's current catalog, so its per-type packings are safe to
// diff against. Any mismatch — nil prev (first period), a CBP decision
// (no packings), or a machine/container-set change — rejects reuse.
func (c *Controller) deltaReusable(prev *Decision, plan *Plan) bool {
	if prev == nil || prev.Plan == nil || prev.Packings == nil || plan == nil {
		return false
	}
	nm, nn := len(c.Machines), len(c.Containers)
	if len(prev.ActiveMachines) != nm || len(prev.Quota) != nm ||
		len(prev.Packings) != nm || len(prev.Dropped) != nn {
		return false
	}
	pp := prev.Plan
	if len(pp.Active) != nm || len(pp.Alloc) != nm {
		return false
	}
	for m := 0; m < nm; m++ {
		if len(pp.Active[m]) == 0 || len(pp.Alloc[m]) != nn || len(prev.Quota[m]) != nn {
			return false
		}
		for n := 0; n < nn; n++ {
			if len(pp.Alloc[m][n]) == 0 {
				return false
			}
		}
	}
	return true
}

// typeProjectionEqual reports whether machine type m's integerized
// period-0 projection — the First-Fit machine budget, the per-container
// item counts, and the quota caps — is identical between two plans.
// packType's output is a deterministic function of exactly this
// projection (plus the fixed catalog), so an equal projection makes the
// previous packing bit-identical to what a fresh repack would produce.
// Comparing the integerized values rather than the raw fractions matters:
// two fractions within the packer's 1e-9 tolerance of each other can
// still floor or ceil to different integers at a boundary.
//
//harmony:hotpath
func (c *Controller) typeProjectionEqual(a, b *Plan, m int) bool {
	if c.packBudget(a, m) != c.packBudget(b, m) {
		return false
	}
	for n := range c.Containers {
		if itemCount(a, m, n) != itemCount(b, m, n) {
			return false
		}
		if quotaCap(a, m, n) != quotaCap(b, m, n) {
			return false
		}
	}
	return true
}

// mergeReusedType folds machine type m of the previous decision into d.
// ActiveMachines, Quota, and Packings carry over as-is; the per-type drop
// counts are not stored in a Decision (only the cross-type aggregate is),
// so they are recomputed as planned-minus-placed — the projection is
// unchanged, so the counts equal what a fresh repack would drop. The
// merge writes only into pre-sized storage.
//
//harmony:hotpath
func mergeReusedType(d *Decision, prev *Decision, plan *Plan, m int) {
	d.ActiveMachines[m] = prev.ActiveMachines[m]
	d.Quota[m] = prev.Quota[m]
	d.Packings[m] = prev.Packings[m]
	for n := range d.Dropped {
		placed := 0
		for _, pack := range prev.Packings[m] {
			placed += pack[n]
		}
		if dropped := itemCount(plan, m, n) - placed; dropped > 0 {
			d.Dropped[n] += dropped
		}
	}
}
