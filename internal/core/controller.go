package core

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"harmony/internal/lp"
)

// Mode selects how the fractional plan is realized (Section VIII-B).
type Mode int

// Provisioning modes.
const (
	// CBS is container-based scheduling: the controller packs integer
	// containers onto machines with First-Fit (Algorithm 1, Lemma 1)
	// and hands the scheduler an explicit placement.
	CBS Mode = iota + 1
	// CBP is container-based provisioning: only machine counts and
	// per-type container quotas are produced, by rounding the
	// fractional solution; the existing scheduler keeps control.
	CBP
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case CBS:
		return "CBS"
	case CBP:
		return "CBP"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Controller is the heterogeneity-aware DCP controller (Algorithm 1): at
// each control period it solves CBS-RELAX over a prediction horizon and
// realizes the first period of the plan as an integer decision.
type Controller struct {
	Machines   []MachineSpec
	Containers []ContainerSpec
	//harmony:unit(s)
	PeriodSeconds float64
	Horizon       int
	Mode          Mode

	// basis carries the optimal simplex basis from the previous Step, so
	// consecutive MPC solves warm-start instead of re-pivoting from a
	// cold Big-M tableau. lp.SolveWarm validates it against the current
	// problem and silently falls back to a cold solve if the catalog or
	// horizon changed, so a stale basis can never change the answer.
	basis *lp.Basis
	// lastCBS is the previous Step's CBS decision, the packing-layer
	// mirror of basis: RealizeDelta diffs the new plan against it and
	// repacks only the machine types whose projection changed, falling
	// back to a full repack on any anomaly, so a stale decision can
	// never change the answer either.
	lastCBS *Decision
	// deltaStats counts how the delta placement path resolved its work
	// (reused vs repacked types, full-repack fallbacks).
	deltaStats DeltaStats
}

// Decision is the integer realization of one control period.
type Decision struct {
	// ActiveMachines[m] is the number of type-m machines to have on.
	ActiveMachines []int
	// Quota[m][n] caps the number of type-n containers that may run on
	// type-m machines. For CBS it equals the packed counts; for CBP it
	// is the rounded fractional allocation.
	Quota [][]int
	// Packings[m] lists, for CBS, the per-machine container-type counts
	// chosen by First-Fit (one entry per machine to keep on). Nil for CBP.
	Packings [][]map[int]int
	// Dropped[n] counts containers of type n the rounding could not
	// place within the machine budget (CBS only).
	Dropped []int
	// Plan is the underlying fractional CBS-RELAX solution.
	Plan *Plan
}

// TotalActive returns the total machines the decision keeps on.
func (d *Decision) TotalActive() int {
	total := 0
	for _, a := range d.ActiveMachines {
		total += a
	}
	return total
}

// Step runs one MPC iteration: solve CBS-RELAX for the given initial
// machine state, per-type demand over the horizon, and prices, then round
// period 0 of the plan to integers according to the controller's mode.
//
//harmony:coldpath per-tick MPC assembly (problem build, LP setup, decision) is sized by the instance; the pivot loops and placement merge carry their own hotpath roots
func (c *Controller) Step(initialActive []float64, demand [][]float64, price []float64) (*Decision, error) {
	in := &PlanInput{
		PeriodSeconds: c.PeriodSeconds,
		Horizon:       c.Horizon,
		Machines:      c.Machines,
		Containers:    c.Containers,
		Demand:        demand,
		Price:         price,
		InitialActive: initialActive,
	}
	plan, basis, err := SolveRelaxedWarm(in, c.basis)
	if err != nil {
		return nil, err
	}
	c.basis = basis
	//harmony:allow nodeterm debug-only dump hook; never influences the decision
	if path := os.Getenv("HARMONY_DUMP_PLAN"); path != "" {
		dumpPlanInput(in, path)
	}
	dec, err := c.RealizeDelta(c.lastCBS, plan)
	if err != nil {
		return nil, err
	}
	if c.Mode == CBS {
		c.lastCBS = dec
	}
	return dec, nil
}

// Realize rounds period 0 of a fractional plan to an integer decision
// according to the controller's mode, always repacking from scratch. It
// is exported so the full placement pass can be exercised (and
// benchmarked) against a fixed plan without re-running the LP; Step uses
// RealizeDelta, which reuses unchanged machine types' packings from the
// previous decision and is bit-identical to this full pass.
func (c *Controller) Realize(plan *Plan) (*Decision, error) {
	switch c.Mode {
	case CBP:
		return c.roundCBP(plan), nil
	case CBS:
		return c.roundCBS(plan)
	default:
		return nil, errUnknownMode(c.Mode)
	}
}

// errUnknownMode is the shared rejection for modes Realize/RealizeDelta
// do not know.
func errUnknownMode(m Mode) error {
	return fmt.Errorf("core: unknown mode %d", int(m))
}

// dumpPlanInput writes the LP input as JSON for offline debugging; it is
// triggered by the HARMONY_DUMP_PLAN environment variable and best-effort.
func dumpPlanInput(in *PlanInput, path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	//harmony:allow errflow best-effort debug dump; a partial file is acceptable
	_ = enc.Encode(in)
}

// roundCBP rounds δ and σ to the nearest integers (Section VIII-B): the
// machine count and per-type quotas are handed to an unmodified scheduler.
func (c *Controller) roundCBP(plan *Plan) *Decision {
	d := &Decision{
		ActiveMachines: make([]int, len(c.Machines)),
		Quota:          make([][]int, len(c.Machines)),
		Dropped:        make([]int, len(c.Containers)),
		Plan:           plan,
	}
	for m := range c.Machines {
		a := int(math.Round(plan.Active[m][0]))
		if a < 0 {
			a = 0
		}
		if a > c.Machines[m].Available {
			a = c.Machines[m].Available
		}
		d.ActiveMachines[m] = a
		d.Quota[m] = make([]int, len(c.Containers))
		for n := range c.Containers {
			// The x^{mn} values are caps on concurrent containers, so
			// round up: shaving a fractional allocation to zero would
			// forbid a type from a machine class the plan meant to use.
			d.Quota[m][n] = int(math.Ceil(plan.Alloc[m][n][0] - 1e-9))
		}
	}
	return d
}
