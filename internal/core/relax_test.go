package core

import (
	"errors"
	"math"
	"testing"
)

// twoTypes is a small fleet: an efficient small machine and a big machine.
func twoTypes() []MachineSpec {
	return []MachineSpec{
		{Type: 1, CPU: 0.25, Mem: 0.25, Available: 100,
			IdleWatts: 60, AlphaCPU: 45, AlphaMem: 15, SwitchCost: 0.001},
		{Type: 2, CPU: 1, Mem: 1, Available: 50,
			IdleWatts: 260, AlphaCPU: 260, AlphaMem: 110, SwitchCost: 0.004},
	}
}

func smallInput() *PlanInput {
	return &PlanInput{
		PeriodSeconds: 300,
		Horizon:       2,
		Machines:      twoTypes(),
		Containers: []ContainerSpec{
			{Type: 0, CPU: 0.1, Mem: 0.1, Value: 0.01},
			{Type: 1, CPU: 0.5, Mem: 0.4, Value: 0.05},
		},
		Demand:        [][]float64{{10, 12}, {3, 3}},
		Price:         []float64{0.08, 0.08},
		InitialActive: []float64{0, 0},
	}
}

func TestValidateInput(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*PlanInput)
	}{
		{"zero period", func(in *PlanInput) { in.PeriodSeconds = 0 }},
		{"zero horizon", func(in *PlanInput) { in.Horizon = 0 }},
		{"no machines", func(in *PlanInput) { in.Machines = nil }},
		{"no containers", func(in *PlanInput) { in.Containers = nil }},
		{"demand rows", func(in *PlanInput) { in.Demand = in.Demand[:1] }},
		{"demand cols", func(in *PlanInput) { in.Demand[0] = in.Demand[0][:1] }},
		{"negative demand", func(in *PlanInput) { in.Demand[0][0] = -1 }},
		{"price len", func(in *PlanInput) { in.Price = in.Price[:1] }},
		{"initial len", func(in *PlanInput) { in.InitialActive = nil }},
		{"bad machine", func(in *PlanInput) { in.Machines[0].CPU = 0 }},
		{"bad container", func(in *PlanInput) { in.Containers[0].CPU = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in := smallInput()
			tt.mutate(in)
			if _, err := SolveRelaxed(in); !errors.Is(err, ErrBadInput) {
				t.Errorf("want ErrBadInput, got %v", err)
			}
		})
	}
}

func TestCompatible(t *testing.T) {
	m := MachineSpec{CPU: 0.25, Mem: 0.25}
	if !Compatible(m, ContainerSpec{CPU: 0.25, Mem: 0.2}) {
		t.Error("fitting container rejected")
	}
	if Compatible(m, ContainerSpec{CPU: 0.3, Mem: 0.1}) {
		t.Error("oversized container accepted")
	}
	// Omega inflation can make a container incompatible.
	if Compatible(m, ContainerSpec{CPU: 0.2, Mem: 0.2, Omega: 1.5}) {
		t.Error("omega-inflated container accepted")
	}
}

func TestSolveRelaxedMeetsDemand(t *testing.T) {
	in := smallInput()
	plan, err := SolveRelaxed(in)
	if err != nil {
		t.Fatal(err)
	}
	// Utility dominates energy here, so all demand should be scheduled.
	for n := range in.Containers {
		for tt := 0; tt < in.Horizon; tt++ {
			if plan.Scheduled[n][tt] < in.Demand[n][tt]-1e-6 {
				t.Errorf("scheduled[%d][%d] = %v < demand %v",
					n, tt, plan.Scheduled[n][tt], in.Demand[n][tt])
			}
		}
	}
}

func TestSolveRelaxedRespectsCapacityAndAvailability(t *testing.T) {
	in := smallInput()
	in.Demand = [][]float64{{4000, 4000}, {500, 500}} // far beyond capacity
	plan, err := SolveRelaxed(in)
	if err != nil {
		t.Fatal(err)
	}
	for m, ms := range in.Machines {
		for tt := 0; tt < in.Horizon; tt++ {
			if plan.Active[m][tt] > float64(ms.Available)+1e-6 {
				t.Errorf("active[%d][%d] = %v > available %d",
					m, tt, plan.Active[m][tt], ms.Available)
			}
			var cpu, mem float64
			for n, cs := range in.Containers {
				cpu += cs.CPU * plan.Alloc[m][n][tt]
				mem += cs.Mem * plan.Alloc[m][n][tt]
			}
			if cpu > ms.CPU*plan.Active[m][tt]+1e-5 {
				t.Errorf("cpu capacity violated on type %d at %d: %v > %v",
					m, tt, cpu, ms.CPU*plan.Active[m][tt])
			}
			if mem > ms.Mem*plan.Active[m][tt]+1e-5 {
				t.Errorf("mem capacity violated on type %d at %d", m, tt)
			}
		}
	}
}

func TestSolveRelaxedIncompatiblePairsGetZero(t *testing.T) {
	in := smallInput()
	// Container 1 (0.5/0.4) cannot fit machine type 0 (0.25/0.25).
	plan, err := SolveRelaxed(in)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < in.Horizon; tt++ {
		if plan.Alloc[0][1][tt] != 0 {
			t.Errorf("incompatible alloc = %v", plan.Alloc[0][1][tt])
		}
	}
}

// With zero utility, turning anything on only costs money: the plan should
// keep everything off.
func TestSolveRelaxedNoValueNoMachines(t *testing.T) {
	in := smallInput()
	for i := range in.Containers {
		in.Containers[i].Value = 0
	}
	plan, err := SolveRelaxed(in)
	if err != nil {
		t.Fatal(err)
	}
	for m := range in.Machines {
		for tt := 0; tt < in.Horizon; tt++ {
			if plan.Active[m][tt] > 1e-6 {
				t.Errorf("machines on with zero utility: %v", plan.Active[m][tt])
			}
		}
	}
	if plan.Objective > 1e-6 || plan.Objective < -1e-6 {
		t.Errorf("objective = %v, want 0", plan.Objective)
	}
}

// Heterogeneity-awareness: with small containers and both machine types
// able to host them, the optimizer should prefer the machine type with
// lower energy per unit of delivered capacity.
func TestSolveRelaxedPrefersEfficientMachines(t *testing.T) {
	in := &PlanInput{
		PeriodSeconds: 300,
		Horizon:       1,
		Machines: []MachineSpec{
			// Type A: 100W idle for 0.5 capacity -> 200 W per unit.
			{Type: 1, CPU: 0.5, Mem: 0.5, Available: 100,
				IdleWatts: 100, AlphaCPU: 10, AlphaMem: 10, SwitchCost: 0},
			// Type B: 500W idle for 1.0 capacity -> 500 W per unit.
			{Type: 2, CPU: 1, Mem: 1, Available: 100,
				IdleWatts: 500, AlphaCPU: 10, AlphaMem: 10, SwitchCost: 0},
		},
		Containers:    []ContainerSpec{{Type: 0, CPU: 0.1, Mem: 0.1, Value: 0.01}},
		Demand:        [][]float64{{50}},
		Price:         []float64{0.10},
		InitialActive: []float64{0, 0},
	}
	plan, err := SolveRelaxed(in)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Active[1][0] > 1e-6 {
		t.Errorf("inefficient type used: %v machines", plan.Active[1][0])
	}
	if plan.Active[0][0] < 9.9 { // 50 containers × 0.1 cpu / 0.5 cap = 10 machines
		t.Errorf("efficient type underused: %v machines", plan.Active[0][0])
	}
}

// Switching costs damp reactions: with a huge switch cost and machines
// already on, the plan should keep them rather than flapping off/on.
func TestSolveRelaxedSwitchingCostDampens(t *testing.T) {
	base := &PlanInput{
		PeriodSeconds: 300,
		Horizon:       2,
		Machines: []MachineSpec{
			{Type: 1, CPU: 1, Mem: 1, Available: 20,
				IdleWatts: 100, AlphaCPU: 100, AlphaMem: 50, SwitchCost: 0},
		},
		Containers: []ContainerSpec{{Type: 0, CPU: 0.5, Mem: 0.5, Value: 0.004}},
		// Demand dips to zero in period 0 and returns in period 1.
		Demand:        [][]float64{{0, 20}},
		Price:         []float64{0.10, 0.10},
		InitialActive: []float64{10},
	}
	freePlan, err := SolveRelaxed(base)
	if err != nil {
		t.Fatal(err)
	}
	// With free switching the dip empties the fleet in period 0.
	if freePlan.Active[0][0] > 1e-6 {
		t.Fatalf("free-switch plan kept %v machines", freePlan.Active[0][0])
	}

	costly := *base
	costly.Machines = []MachineSpec{base.Machines[0]}
	costly.Machines[0].SwitchCost = 10 // switching costs dwarf energy
	costlyPlan, err := SolveRelaxed(&costly)
	if err != nil {
		t.Fatal(err)
	}
	if costlyPlan.Active[0][0] < 9 {
		t.Errorf("costly-switch plan dropped to %v machines; want ~10 retained",
			costlyPlan.Active[0][0])
	}
}

// The scheduled amount never exceeds demand (utility is capped).
func TestSolveRelaxedScheduleCappedByDemand(t *testing.T) {
	in := smallInput()
	in.Containers[0].Value = 100 // absurdly valuable
	plan, err := SolveRelaxed(in)
	if err != nil {
		t.Fatal(err)
	}
	for n := range in.Containers {
		for tt := 0; tt < in.Horizon; tt++ {
			if plan.Scheduled[n][tt] > in.Demand[n][tt]+1e-6 {
				t.Errorf("scheduled %v > demand %v", plan.Scheduled[n][tt], in.Demand[n][tt])
			}
		}
	}
}

func TestSolveRelaxedOmegaReservesHeadroom(t *testing.T) {
	in := smallInput()
	in.Demand = [][]float64{{100, 100}, {0, 0}}
	plain, err := SolveRelaxed(in)
	if err != nil {
		t.Fatal(err)
	}
	in2 := smallInput()
	in2.Demand = [][]float64{{100, 100}, {0, 0}}
	in2.Containers[0].Omega = 1.5
	inflated, err := SolveRelaxed(in2)
	if err != nil {
		t.Fatal(err)
	}
	// The same scheduled load must reserve at least as much machine
	// capacity with ω (machine counts can shift between types, so
	// compare provisioned CPU capacity).
	sumPlain, sumInfl := 0.0, 0.0
	for m, ms := range in.Machines {
		sumPlain += plain.Active[m][0] * ms.CPU
		sumInfl += inflated.Active[m][0] * ms.CPU
	}
	if sumInfl < sumPlain-1e-6 {
		t.Errorf("omega plan reserves less capacity: %v < %v", sumInfl, sumPlain)
	}
	if math.Abs(sumInfl-sumPlain) < 1e-9 {
		t.Errorf("omega had no effect (%v == %v)", sumInfl, sumPlain)
	}
}
