package core

import (
	"math/rand"
	"strings"
	"testing"
)

// flatPlan builds a period-0-only plan directly (no LP solve) from the
// given active machines and allocation matrix, so placement tests can
// exercise configurations the LP would never emit.
func flatPlan(active []float64, alloc [][]float64) *Plan {
	p := &Plan{
		Active: make([][]float64, len(active)),
		Alloc:  make([][][]float64, len(alloc)),
	}
	for m, z := range active {
		p.Active[m] = []float64{z}
		p.Alloc[m] = make([][]float64, len(alloc[m]))
		for n, x := range alloc[m] {
			p.Alloc[m][n] = []float64{x}
		}
	}
	return p
}

// TestZeroBudgetDropAccounting pins the headline accounting fix: a
// machine type whose budget rounds to zero (here: no machines available)
// must report the containers the plan allocated to it as dropped, and
// still report the plan's caps as quotas, instead of making both vanish.
func TestZeroBudgetDropAccounting(t *testing.T) {
	ctrl := &Controller{
		Machines: []MachineSpec{
			{Type: 1, CPU: 1, Mem: 1, Available: 0}, // budget 0 despite z* > 0
			{Type: 2, CPU: 1, Mem: 1, Available: 8},
		},
		Containers: []ContainerSpec{
			{Type: 0, CPU: 0.2, Mem: 0.2, Omega: 1},
			{Type: 1, CPU: 0.1, Mem: 0.1, Omega: 1},
		},
		PeriodSeconds: 300, Horizon: 1, Mode: CBS,
	}
	plan := flatPlan(
		[]float64{2, 1},
		[][]float64{
			{3, 0.4}, // type 0: 3 whole containers dropped; type 1: cap 1, floor 0
			{2, 1},
		},
	)
	dec, err := ctrl.Realize(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := dec.Dropped[0], 3; got != want {
		t.Errorf("Dropped[0] = %d, want %d (zero-budget containers not counted)", got, want)
	}
	if got := dec.Dropped[1]; got != 0 {
		t.Errorf("Dropped[1] = %d, want 0 (fractional alloc floors to no items)", got)
	}
	if got, want := dec.Quota[0][0], 3; got != want {
		t.Errorf("Quota[0][0] = %d, want %d (plan cap must survive a zero budget)", got, want)
	}
	if got, want := dec.Quota[0][1], 1; got != want {
		t.Errorf("Quota[0][1] = %d, want %d", got, want)
	}
	if dec.ActiveMachines[0] != 0 || len(dec.Packings[0]) != 0 {
		t.Errorf("zero-budget type packed machines: active %d, packings %d",
			dec.ActiveMachines[0], len(dec.Packings[0]))
	}
	// The healthy type is unaffected: its three containers (0.5 total
	// load) first-fit into one machine.
	if got, want := dec.ActiveMachines[1], 1; got != want {
		t.Errorf("ActiveMachines[1] = %d, want %d", got, want)
	}
}

// randomPlacementCase builds a random controller catalog and a random
// well-formed period-0 plan. Container sizes are kept within every
// machine's capacity so packing never rejects an item outright, and some
// machine types draw a zero budget (Available 0 or z* 0) so the
// zero-budget accounting is exercised under the property test too.
func randomPlacementCase(r *rand.Rand) (*Controller, *Plan) {
	nm := 1 + r.Intn(5)
	nn := 1 + r.Intn(6)
	ctrl := &Controller{PeriodSeconds: 300, Horizon: 1, Mode: CBS}
	for m := 0; m < nm; m++ {
		avail := r.Intn(10) // 0 is a valid, interesting catalog entry
		ctrl.Machines = append(ctrl.Machines, MachineSpec{
			Type: m + 1, CPU: 0.5 + r.Float64()*0.5, Mem: 0.5 + r.Float64()*0.5,
			Available: avail,
		})
	}
	for n := 0; n < nn; n++ {
		// Max effective demand 1.4·0.3 = 0.42 < 0.5 min machine capacity.
		ctrl.Containers = append(ctrl.Containers, ContainerSpec{
			Type: n, CPU: 0.01 + r.Float64()*0.29, Mem: 0.01 + r.Float64()*0.29,
			Omega: 1 + r.Float64()*0.4,
		})
	}
	active := make([]float64, nm)
	alloc := make([][]float64, nm)
	for m := 0; m < nm; m++ {
		active[m] = r.Float64() * float64(ctrl.Machines[m].Available+2)
		if r.Intn(4) == 0 {
			active[m] = 0
		}
		alloc[m] = make([]float64, nn)
		for n := 0; n < nn; n++ {
			alloc[m][n] = r.Float64() * 8
		}
	}
	return ctrl, flatPlan(active, alloc)
}

// placedByType sums the packed per-machine counts of one decision into a
// per-container-type total.
func placedByType(dec *Decision, nn int) []int {
	placed := make([]int, nn)
	for m := range dec.Packings {
		for _, pack := range dec.Packings[m] {
			for n, cnt := range pack {
				placed[n] += cnt
			}
		}
	}
	return placed
}

// TestPlacementConservation is the placement conservation property: for
// randomized plans, every whole container the plan allocates is either
// packed onto a machine or counted in Decision.Dropped — none vanish and
// none are invented. Checked for the full repack and the delta path.
func TestPlacementConservation(t *testing.T) {
	r := rand.New(rand.NewSource(771))
	for trial := 0; trial < 200; trial++ {
		ctrl, plan := randomPlacementCase(r)
		nn := len(ctrl.Containers)
		dec, err := ctrl.Realize(plan)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// A delta realization against the full decision must conserve
		// identically (all types reused).
		delta, err := ctrl.RealizeDelta(dec, plan)
		if err != nil {
			t.Fatalf("trial %d delta: %v", trial, err)
		}
		for _, tc := range []struct {
			name string
			d    *Decision
		}{{"full", dec}, {"delta", delta}} {
			name, d := tc.name, tc.d
			placed := placedByType(d, nn)
			for n := 0; n < nn; n++ {
				want := 0
				for m := range ctrl.Machines {
					want += itemCount(plan, m, n)
				}
				if got := placed[n] + d.Dropped[n]; got != want {
					t.Fatalf("trial %d (%s): type %d: placed %d + dropped %d = %d, want %d planned",
						trial, name, n, placed[n], d.Dropped[n], got, want)
				}
			}
		}
	}
}

// TestPackTypeCatalogLimit pins the item-encoding guard: catalogs beyond
// the 16-bit container-type space must be rejected with an explicit
// error instead of silently folding high type indices onto low ones.
func TestPackTypeCatalogLimit(t *testing.T) {
	nn := maxPackContainerTypes + 1
	ctrl := &Controller{
		Machines:      []MachineSpec{{Type: 1, CPU: 1, Mem: 1, Available: 1}},
		Containers:    make([]ContainerSpec, nn),
		PeriodSeconds: 300, Horizon: 1, Mode: CBS,
	}
	for n := range ctrl.Containers {
		ctrl.Containers[n] = ContainerSpec{Type: n, CPU: 0.1, Mem: 0.1, Omega: 1}
	}
	active := []float64{1}
	alloc := [][]float64{make([]float64, nn)}
	_, err := ctrl.Realize(flatPlan(active, alloc))
	if err == nil {
		t.Fatal("oversized container catalog accepted")
	}
	if !strings.Contains(err.Error(), "item-encoding limit") {
		t.Errorf("error %q does not name the encoding limit", err)
	}
	// One type fewer is within the encoding and packs cleanly.
	ctrl.Containers = ctrl.Containers[:maxPackContainerTypes]
	alloc[0] = alloc[0][:maxPackContainerTypes]
	if _, err := ctrl.Realize(flatPlan(active, alloc)); err != nil {
		t.Errorf("catalog at the limit rejected: %v", err)
	}
}
