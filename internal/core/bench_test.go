package core

import (
	"math/rand"
	"testing"

	"harmony/internal/lp"
)

// benchPair returns two consecutive MPC periods of a fixed mid-size
// scenario (4 machine types, 10 container types, 6-period horizon). The
// controller is advanced a few periods first so the pair reflects the
// steady state every production control period lives in: the forecast
// window slid by one, the initial machine state taken from the realized
// decision.
func benchPair() (*PlanInput, *PlanInput) {
	r := rand.New(rand.NewSource(42))
	in := randomSized(r, 4, 10, 6)
	ctrl := &Controller{
		Machines: in.Machines, Containers: in.Containers,
		PeriodSeconds: in.PeriodSeconds, Horizon: in.Horizon, Mode: CBS,
	}
	for period := 0; period < 4; period++ {
		plan, err := SolveRelaxed(in)
		if err != nil {
			panic(err)
		}
		dec, err := ctrl.Realize(plan)
		if err != nil {
			panic(err)
		}
		next := shiftWindow(r, in, dec)
		if period == 3 {
			return in, next
		}
		in = next
	}
	panic("unreachable")
}

// shiftWindow builds period t+1's input from period t's: the forecast
// window slides by one, the tail extrapolates with mild noise, and the
// initial machine state is the decision the controller just realized.
func shiftWindow(r *rand.Rand, in *PlanInput, dec *Decision) *PlanInput {
	out := &PlanInput{
		PeriodSeconds: in.PeriodSeconds, Horizon: in.Horizon,
		Machines: in.Machines, Containers: in.Containers,
		Demand:        make([][]float64, len(in.Demand)),
		Price:         make([]float64, len(in.Price)),
		InitialActive: make([]float64, len(in.InitialActive)),
	}
	for n, row := range in.Demand {
		out.Demand[n] = make([]float64, len(row))
		copy(out.Demand[n], row[1:])
		tail := row[len(row)-1] * (0.95 + r.Float64()*0.1)
		if tail < 0 {
			tail = 0
		}
		out.Demand[n][len(row)-1] = float64(int(tail))
	}
	copy(out.Price, in.Price[1:])
	last := len(in.Price) - 1
	out.Price[last] = in.Price[last] * (0.98 + r.Float64()*0.04)
	for m := range out.InitialActive {
		out.InitialActive[m] = float64(dec.ActiveMachines[m])
	}
	return out
}

// randomSized is randomInput with explicit dimensions.
func randomSized(r *rand.Rand, nm, nn, w int) *PlanInput {
	in := &PlanInput{PeriodSeconds: 300, Horizon: w}
	for m := 0; m < nm; m++ {
		in.Machines = append(in.Machines, MachineSpec{
			Type:       m + 1,
			CPU:        0.3 + r.Float64()*0.7,
			Mem:        0.3 + r.Float64()*0.7,
			Available:  20 + r.Intn(60),
			IdleWatts:  50 + r.Float64()*250,
			AlphaCPU:   50 + r.Float64()*250,
			AlphaMem:   10 + r.Float64()*80,
			SwitchCost: r.Float64() * 0.01,
		})
	}
	for n := 0; n < nn; n++ {
		in.Containers = append(in.Containers, ContainerSpec{
			Type:  n,
			CPU:   0.02 + r.Float64()*0.3,
			Mem:   0.02 + r.Float64()*0.3,
			Value: 0.05 + r.Float64()*0.2,
			Omega: 1 + r.Float64()*0.3,
		})
	}
	in.Demand = make([][]float64, nn)
	for n := range in.Demand {
		in.Demand[n] = make([]float64, w)
		for t := range in.Demand[n] {
			in.Demand[n][t] = float64(r.Intn(150))
		}
	}
	in.Price = make([]float64, w)
	for t := range in.Price {
		in.Price[t] = 0.05 + r.Float64()*0.1
	}
	in.InitialActive = make([]float64, nm)
	for m := range in.InitialActive {
		in.InitialActive[m] = float64(r.Intn(in.Machines[m].Available))
	}
	return in
}

// BenchmarkSolveRelaxedCold is the per-period cost without basis reuse:
// every control period pays a full cold Big-M solve.
func BenchmarkSolveRelaxedCold(b *testing.B) {
	_, next := benchPair()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveRelaxed(next); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveRelaxedWarm solves the same period seeded from the
// previous period's optimal basis — the steady-state MPC cost.
func BenchmarkSolveRelaxedWarm(b *testing.B) {
	prev, next := benchPair()
	var basis *lp.Basis
	if _, bs, err := SolveRelaxedWarm(prev, nil); err != nil {
		b.Fatal(err)
	} else {
		basis = bs
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SolveRelaxedWarm(next, basis); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveRelaxedDense is the retired dense-tableau reference on
// the same instance, for the sparse-vs-dense trajectory.
func BenchmarkSolveRelaxedDense(b *testing.B) {
	_, next := benchPair()
	v := newVarIndex(next)
	prob := buildProblem(next, v)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lp.SolveDense(prob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoundCBS measures the parallel per-type First-Fit placement
// pass against a fixed fractional plan (12 machine types).
func BenchmarkRoundCBS(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	in := randomSized(r, 12, 8, 2)
	plan, err := SolveRelaxed(in)
	if err != nil {
		b.Fatal(err)
	}
	ctrl := &Controller{
		Machines: in.Machines, Containers: in.Containers,
		PeriodSeconds: in.PeriodSeconds, Horizon: in.Horizon, Mode: CBS,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctrl.Realize(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoundCBSFull is BenchmarkRoundCBS at the delta scenario's
// size (20 machine types), the full-repack cost the delta path saves.
func BenchmarkRoundCBSFull(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	in := randomSized(r, 20, 8, 2)
	plan, err := SolveRelaxed(in)
	if err != nil {
		b.Fatal(err)
	}
	ctrl := &Controller{
		Machines: in.Machines, Containers: in.Containers,
		PeriodSeconds: in.PeriodSeconds, Horizon: in.Horizon, Mode: CBS,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctrl.Realize(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoundCBSDelta measures the steady-state low-churn delta
// placement: 20 machine types of which one (5%) changes per period, each
// realization diffed against the previous period's decision.
func BenchmarkRoundCBSDelta(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	in := randomSized(r, 20, 8, 2)
	planA, err := SolveRelaxed(in)
	if err != nil {
		b.Fatal(err)
	}
	ctrl := &Controller{
		Machines: in.Machines, Containers: in.Containers,
		PeriodSeconds: in.PeriodSeconds, Horizon: in.Horizon, Mode: CBS,
	}
	planB := churnBusiestType(ctrl, planA)
	decA, err := ctrl.Realize(planA)
	if err != nil {
		b.Fatal(err)
	}
	decB, err := ctrl.Realize(planB)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if i%2 == 0 {
			_, err = ctrl.RealizeDelta(decA, planB)
		} else {
			_, err = ctrl.RealizeDelta(decB, planA)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}
