package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"harmony/internal/binpack"
)

// typePacking is the CBS rounding result for one machine type. Machine
// types are a conflict-free partition of the placement problem: type m's
// packing reads only plan.Active[m]/plan.Alloc[m] and writes only the
// type-m decision slots, so the per-type packings can run on any number
// of workers and be merged in type order with a bit-identical result.
type typePacking struct {
	active   int
	packings []map[int]int
	quota    []int
	dropped  []int // indexed by container type
	err      error
}

// packType rounds period 0 of the plan for machine type m with First-Fit
// (Algorithm 1): at most ⌈z*⌉+1 machines are used, and by Lemma 1 at
// least x*/(2|R|) containers of each type fit.
func (c *Controller) packType(plan *Plan, m int) typePacking {
	ms := c.Machines[m]
	p := typePacking{quota: make([]int, len(c.Containers))}
	zStar := plan.Active[m][0]
	budget := int(math.Ceil(zStar - 1e-9))
	if zStar > 1e-9 {
		budget++ // Lemma 1's z*+1 allowance
	}
	if budget > ms.Available {
		budget = ms.Available
	}
	if budget == 0 {
		return p
	}

	// Integer container counts for this machine type: floor of the
	// fractional allocation (the plan already respects capacity).
	var items []binpack.Item
	id := 0
	for n, cs := range c.Containers {
		count := int(math.Floor(plan.Alloc[m][n][0] + 1e-9))
		om := cs.Omega
		if om < 1 {
			om = 1
		}
		for k := 0; k < count; k++ {
			items = append(items, binpack.Item{
				ID:      id<<16 | n,
				Demands: []float64{om * cs.CPU, om * cs.Mem},
			})
			id++
		}
	}
	capacity := []float64{ms.CPU, ms.Mem}
	bins, unplaced, err := binpack.FirstFitBounded(items, capacity, budget)
	if err != nil {
		p.err = fmt.Errorf("core: CBS rounding type %d: %w", ms.Type, err)
		return p
	}
	p.active = len(bins)
	p.packings = make([]map[int]int, len(bins))
	for bi, bin := range bins {
		pack := make(map[int]int)
		for _, it := range bin.Items {
			n := it.ID & 0xffff
			pack[n]++
		}
		p.packings[bi] = pack
	}
	if len(unplaced) > 0 {
		p.dropped = make([]int, len(c.Containers))
		for _, it := range unplaced {
			p.dropped[it.ID&0xffff]++
		}
	}
	// Quotas are the plan's caps (Algorithm 1 lets the scheduler keep
	// placing as long as the total stays within x^{mn}), not the packed
	// counts, which floor-rounding would understate.
	for n := range c.Containers {
		p.quota[n] = int(math.Ceil(plan.Alloc[m][n][0] - 1e-9))
	}
	return p
}

// roundCBS realizes period 0 with First-Fit packing per machine type.
// The per-type packings are independent, so they fan out across workers
// with the same deterministic-reduce recipe as sim's sharded machine
// audit: work is claimed from an atomic counter, each result lands in
// its own pre-sized slot, and the merge walks slots in type order — the
// decision is bit-identical to the serial pass at any GOMAXPROCS.
func (c *Controller) roundCBS(plan *Plan) (*Decision, error) {
	nm := len(c.Machines)
	parts := make([]typePacking, nm)

	workers := runtime.GOMAXPROCS(0)
	if workers > nm {
		workers = nm
	}
	if workers <= 1 {
		for m := range parts {
			parts[m] = c.packType(plan, m)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					m := int(next.Add(1)) - 1
					if m >= nm {
						return
					}
					parts[m] = c.packType(plan, m)
				}
			}()
		}
		wg.Wait()
	}

	d := &Decision{
		ActiveMachines: make([]int, nm),
		Quota:          make([][]int, nm),
		Packings:       make([][]map[int]int, nm),
		Dropped:        make([]int, len(c.Containers)),
		Plan:           plan,
	}
	if err := mergeParts(d, parts); err != nil {
		return nil, err
	}
	return d, nil
}

// mergeParts folds the per-type packings into the decision in type
// order, so the result (and the reported error, always the lowest-type
// failure) is bit-identical to the serial pass regardless of worker
// completion order. The merge writes only into pre-sized storage.
//
//harmony:hotpath
func mergeParts(d *Decision, parts []typePacking) error {
	for m := range parts {
		p := &parts[m]
		if p.err != nil {
			return p.err
		}
		d.ActiveMachines[m] = p.active
		d.Quota[m] = p.quota
		d.Packings[m] = p.packings
		for n, cnt := range p.dropped {
			d.Dropped[n] += cnt
		}
	}
	return nil
}
