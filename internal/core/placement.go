package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"harmony/internal/binpack"
)

// typePacking is the CBS rounding result for one machine type. Machine
// types are a conflict-free partition of the placement problem: type m's
// packing reads only plan.Active[m]/plan.Alloc[m] and writes only the
// type-m decision slots, so the per-type packings can run on any number
// of workers and be merged in type order with a bit-identical result.
type typePacking struct {
	active   int
	packings []map[int]int
	quota    []int
	dropped  []int // indexed by container type
	err      error
}

// packTypeShift is how many bits of a binpack item ID hold the per-type
// item counter; the low bits hold the container type. The counter side is
// effectively unbounded (47 spare bits on 64-bit platforms), but the
// container-type side caps the catalog size.
const packTypeShift = 16

// maxPackContainerTypes is the largest container catalog the id<<shift|n
// item encoding can represent. Beyond it the decode (ID & mask) would
// silently fold high type indices onto low ones and mis-merge counts, so
// packType refuses such catalogs with an explicit error instead.
const maxPackContainerTypes = 1 << packTypeShift

// packBudget is the integer machine budget First-Fit may use for machine
// type m in period 0: ⌈z*⌉ plus Lemma 1's one-machine allowance, capped
// at the machines that exist. The delta path diffs consecutive plans on
// this same integerized value, so budget drift is always detected.
//
//harmony:hotpath
func (c *Controller) packBudget(plan *Plan, m int) int {
	zStar := plan.Active[m][0]
	budget := int(math.Ceil(zStar - 1e-9))
	if zStar > 1e-9 {
		budget++ // Lemma 1's z*+1 allowance
	}
	if budget > c.Machines[m].Available {
		budget = c.Machines[m].Available
	}
	return budget
}

// itemCount is the integer number of type-n containers the plan allocates
// to machine type m in period 0: floor of the fractional allocation (the
// plan already respects capacity).
//
//harmony:hotpath
func itemCount(plan *Plan, m, n int) int {
	return int(math.Floor(plan.Alloc[m][n][0] + 1e-9))
}

// quotaCap is the per-type container cap the decision reports for machine
// type m: the plan's ceiling (Algorithm 1 lets the scheduler keep placing
// as long as the total stays within x^{mn}), not the packed counts, which
// floor-rounding would understate.
//
//harmony:hotpath
func quotaCap(plan *Plan, m, n int) int {
	return int(math.Ceil(plan.Alloc[m][n][0] - 1e-9))
}

// packType rounds period 0 of the plan for machine type m with First-Fit
// (Algorithm 1): at most ⌈z*⌉+1 machines are used, and by Lemma 1 at
// least x*/(2|R|) containers of each type fit.
func (c *Controller) packType(plan *Plan, m int) typePacking {
	ms := c.Machines[m]
	p := typePacking{quota: make([]int, len(c.Containers))}
	if len(c.Containers) > maxPackContainerTypes {
		p.err = fmt.Errorf("core: CBS rounding type %d: %d container types exceed the %d-type item-encoding limit",
			ms.Type, len(c.Containers), maxPackContainerTypes)
		return p
	}
	budget := c.packBudget(plan, m)
	if budget == 0 {
		// No machines to pack onto, but the plan may still have allocated
		// containers here (e.g. a type whose Available hit zero): those
		// containers vanish, so count every one of them as dropped, and
		// report the plan's caps as quotas like the packed path does.
		for n := range c.Containers {
			if count := itemCount(plan, m, n); count > 0 {
				if p.dropped == nil {
					p.dropped = make([]int, len(c.Containers))
				}
				p.dropped[n] = count
			}
			p.quota[n] = quotaCap(plan, m, n)
		}
		return p
	}

	// Integer container counts for this machine type.
	var items []binpack.Item
	id := 0
	for n, cs := range c.Containers {
		count := itemCount(plan, m, n)
		om := cs.Omega
		if om < 1 {
			om = 1
		}
		for k := 0; k < count; k++ {
			items = append(items, binpack.Item{
				ID:      id<<packTypeShift | n,
				Demands: []float64{om * cs.CPU, om * cs.Mem},
			})
			id++
		}
	}
	capacity := []float64{ms.CPU, ms.Mem}
	bins, unplaced, err := binpack.FirstFitBounded(items, capacity, budget)
	if err != nil {
		p.err = fmt.Errorf("core: CBS rounding type %d: %w", ms.Type, err)
		return p
	}
	p.active = len(bins)
	p.packings = make([]map[int]int, len(bins))
	for bi, bin := range bins {
		pack := make(map[int]int)
		for _, it := range bin.Items {
			n := it.ID & (maxPackContainerTypes - 1)
			pack[n]++
		}
		p.packings[bi] = pack
	}
	if len(unplaced) > 0 {
		p.dropped = make([]int, len(c.Containers))
		for _, it := range unplaced {
			p.dropped[it.ID&(maxPackContainerTypes-1)]++
		}
	}
	for n := range c.Containers {
		p.quota[n] = quotaCap(plan, m, n)
	}
	return p
}

// packInto packs the listed machine types into their slots of parts,
// fanning the per-type packings out across workers with the same
// deterministic-reduce recipe as sim's sharded machine audit: work is
// claimed from an atomic counter, each result lands in its own pre-sized
// slot, and the caller merges slots in type order — the decision is
// bit-identical to the serial pass at any GOMAXPROCS.
func (c *Controller) packInto(plan *Plan, types []int, parts []typePacking) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(types) {
		workers = len(types)
	}
	if workers <= 1 {
		for _, m := range types {
			parts[m] = c.packType(plan, m)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(types) {
					return
				}
				m := types[i]
				parts[m] = c.packType(plan, m)
			}
		}()
	}
	wg.Wait()
}

// roundCBS realizes period 0 with First-Fit packing per machine type,
// repacking every type from scratch. The delta path (roundCBSDelta)
// shortcuts this for types whose plan projection is unchanged; roundCBS
// stays the reference (and the fallback) the delta must be bit-identical
// to.
func (c *Controller) roundCBS(plan *Plan) (*Decision, error) {
	nm := len(c.Machines)
	parts := make([]typePacking, nm)
	types := make([]int, nm)
	for m := range types {
		types[m] = m
	}
	c.packInto(plan, types, parts)

	d := &Decision{
		ActiveMachines: make([]int, nm),
		Quota:          make([][]int, nm),
		Packings:       make([][]map[int]int, nm),
		Dropped:        make([]int, len(c.Containers)),
		Plan:           plan,
	}
	if err := mergeParts(d, parts); err != nil {
		return nil, err
	}
	return d, nil
}

// mergeParts folds the per-type packings into the decision in type
// order, so the result (and the reported error, always the lowest-type
// failure) is bit-identical to the serial pass regardless of worker
// completion order. The merge writes only into pre-sized storage.
//
//harmony:hotpath
func mergeParts(d *Decision, parts []typePacking) error {
	for m := range parts {
		p := &parts[m]
		if p.err != nil {
			return p.err
		}
		d.ActiveMachines[m] = p.active
		d.Quota[m] = p.quota
		d.Packings[m] = p.packings
		for n, cnt := range p.dropped {
			d.Dropped[n] += cnt
		}
	}
	return nil
}
