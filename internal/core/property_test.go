package core

import (
	"math"
	"math/rand"
	"testing"
)

// randomInput builds a random but well-formed CBS-RELAX instance.
func randomInput(r *rand.Rand) *PlanInput {
	nm := 1 + r.Intn(3)
	nn := 1 + r.Intn(6)
	w := 1 + r.Intn(3)
	in := &PlanInput{
		PeriodSeconds: 60 + r.Float64()*600,
		Horizon:       w,
	}
	for m := 0; m < nm; m++ {
		cpu := 0.1 + r.Float64()*0.9
		in.Machines = append(in.Machines, MachineSpec{
			Type:       m + 1,
			CPU:        cpu,
			Mem:        0.1 + r.Float64()*0.9,
			Available:  1 + r.Intn(50),
			IdleWatts:  20 + r.Float64()*300,
			AlphaCPU:   10 + r.Float64()*300,
			AlphaMem:   5 + r.Float64()*100,
			SwitchCost: r.Float64() * 0.01,
		})
	}
	for n := 0; n < nn; n++ {
		in.Containers = append(in.Containers, ContainerSpec{
			Type:  n,
			CPU:   0.01 + r.Float64()*0.5,
			Mem:   0.01 + r.Float64()*0.5,
			Value: r.Float64() * 0.2,
			Omega: 1 + r.Float64()*0.5,
		})
	}
	in.Demand = make([][]float64, nn)
	for n := range in.Demand {
		in.Demand[n] = make([]float64, w)
		for t := range in.Demand[n] {
			in.Demand[n][t] = math.Floor(r.Float64() * 100)
		}
	}
	in.Price = make([]float64, w)
	for t := range in.Price {
		in.Price[t] = 0.02 + r.Float64()*0.2
	}
	in.InitialActive = make([]float64, nm)
	for m := range in.InitialActive {
		in.InitialActive[m] = float64(r.Intn(in.Machines[m].Available + 1))
	}
	return in
}

// Invariants of every CBS-RELAX solution: availability (Eq. 15), capacity
// (Eq. 16/17), schedule-vs-demand caps, non-negativity, and zero
// allocation on incompatible machine/container pairs.
func TestSolveRelaxedInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 60; trial++ {
		in := randomInput(r)
		plan, err := SolveRelaxed(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for m, ms := range in.Machines {
			for tt := 0; tt < in.Horizon; tt++ {
				z := plan.Active[m][tt]
				if z < -1e-6 || z > float64(ms.Available)+1e-6 {
					t.Fatalf("trial %d: z[%d][%d] = %v out of [0,%d]",
						trial, m, tt, z, ms.Available)
				}
				var cpu, mem float64
				for n, cs := range in.Containers {
					x := plan.Alloc[m][n][tt]
					if x < -1e-6 {
						t.Fatalf("trial %d: negative alloc", trial)
					}
					if x > 1e-9 && !Compatible(ms, cs) {
						t.Fatalf("trial %d: incompatible pair allocated", trial)
					}
					om := cs.Omega
					if om < 1 {
						om = 1
					}
					cpu += om * cs.CPU * x
					mem += om * cs.Mem * x
				}
				if cpu > ms.CPU*z+1e-5 {
					t.Fatalf("trial %d: cpu capacity violated on %d@%d: %v > %v",
						trial, m, tt, cpu, ms.CPU*z)
				}
				if mem > ms.Mem*z+1e-5 {
					t.Fatalf("trial %d: mem capacity violated", trial)
				}
			}
		}
		for n := range in.Containers {
			for tt := 0; tt < in.Horizon; tt++ {
				s := plan.Scheduled[n][tt]
				if s < -1e-6 || s > in.Demand[n][tt]+1e-6 {
					t.Fatalf("trial %d: scheduled %v outside [0, %v]",
						trial, s, in.Demand[n][tt])
				}
				total := 0.0
				for m := range in.Machines {
					total += plan.Alloc[m][n][tt]
				}
				if s > total+1e-5 {
					t.Fatalf("trial %d: scheduled %v exceeds allocation %v", trial, s, total)
				}
			}
		}
	}
}

// The controller's integer decisions also respect machine availability and
// per-machine capacity on random instances, for both modes.
func TestControllerInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(321))
	for trial := 0; trial < 30; trial++ {
		in := randomInput(r)
		for _, mode := range []Mode{CBS, CBP} {
			ctrl := &Controller{
				Machines:      in.Machines,
				Containers:    in.Containers,
				PeriodSeconds: in.PeriodSeconds,
				Horizon:       in.Horizon,
				Mode:          mode,
			}
			dec, err := ctrl.Step(in.InitialActive, in.Demand, in.Price)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, mode, err)
			}
			for m, ms := range in.Machines {
				if dec.ActiveMachines[m] < 0 || dec.ActiveMachines[m] > ms.Available {
					t.Fatalf("trial %d %v: machines out of range", trial, mode)
				}
				for n := range in.Containers {
					if dec.Quota[m][n] < 0 {
						t.Fatalf("trial %d %v: negative quota", trial, mode)
					}
				}
			}
			if mode != CBS {
				continue
			}
			for m, ms := range in.Machines {
				for _, pack := range dec.Packings[m] {
					var cpu, mem float64
					for n, count := range pack {
						cs := in.Containers[n]
						om := cs.Omega
						if om < 1 {
							om = 1
						}
						cpu += om * cs.CPU * float64(count)
						mem += om * cs.Mem * float64(count)
					}
					if cpu > ms.CPU+1e-9 || mem > ms.Mem+1e-9 {
						t.Fatalf("trial %d: packed machine over capacity", trial)
					}
				}
			}
		}
	}
}
