package core

import (
	"math"
	"testing"
)

func testController(mode Mode) *Controller {
	return &Controller{
		Machines: twoTypes(),
		Containers: []ContainerSpec{
			{Type: 0, CPU: 0.1, Mem: 0.1, Value: 0.01},
			{Type: 1, CPU: 0.5, Mem: 0.4, Value: 0.05},
		},
		PeriodSeconds: 300,
		Horizon:       2,
		Mode:          mode,
	}
}

func TestModeString(t *testing.T) {
	if CBS.String() != "CBS" || CBP.String() != "CBP" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("fallback name wrong")
	}
}

func TestStepUnknownMode(t *testing.T) {
	c := testController(Mode(0))
	_, err := c.Step([]float64{0, 0}, [][]float64{{1, 1}, {1, 1}}, []float64{0.1, 0.1})
	if err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestStepCBPRoundsPlan(t *testing.T) {
	c := testController(CBP)
	d, err := c.Step([]float64{0, 0}, [][]float64{{10, 10}, {3, 3}}, []float64{0.08, 0.08})
	if err != nil {
		t.Fatal(err)
	}
	if d.TotalActive() == 0 {
		t.Fatal("no machines provisioned for positive demand")
	}
	for m, ms := range c.Machines {
		if d.ActiveMachines[m] > ms.Available {
			t.Errorf("type %d over-provisioned: %d > %d", m, d.ActiveMachines[m], ms.Available)
		}
		if d.ActiveMachines[m] < 0 {
			t.Errorf("negative machines %d", d.ActiveMachines[m])
		}
	}
	// CBP has no packings.
	if d.Packings != nil {
		t.Error("CBP produced packings")
	}
	// Quota sums should roughly cover demand (utility dominates).
	total0 := 0
	for m := range c.Machines {
		total0 += d.Quota[m][0]
	}
	if total0 < 9 {
		t.Errorf("type-0 quota = %d, want ~10", total0)
	}
}

func TestStepCBSPacksContainers(t *testing.T) {
	c := testController(CBS)
	d, err := c.Step([]float64{0, 0}, [][]float64{{10, 10}, {3, 3}}, []float64{0.08, 0.08})
	if err != nil {
		t.Fatal(err)
	}
	if d.TotalActive() == 0 {
		t.Fatal("no machines provisioned")
	}
	for m, ms := range c.Machines {
		if len(d.Packings[m]) != d.ActiveMachines[m] {
			t.Errorf("type %d: %d packings for %d machines", m, len(d.Packings[m]), d.ActiveMachines[m])
		}
		// Each packed machine respects its capacity.
		for _, pack := range d.Packings[m] {
			var cpu, mem float64
			for n, count := range pack {
				cpu += float64(count) * c.Containers[n].CPU
				mem += float64(count) * c.Containers[n].Mem
			}
			if cpu > ms.CPU+1e-9 || mem > ms.Mem+1e-9 {
				t.Errorf("type %d machine overpacked: %v/%v", m, cpu, mem)
			}
		}
		// Machine budget respects Lemma 1's z*+1.
		budget := int(math.Ceil(d.Plan.Active[m][0]-1e-9)) + 1
		if d.ActiveMachines[m] > budget {
			t.Errorf("type %d uses %d machines > z*+1 = %d", m, d.ActiveMachines[m], budget)
		}
	}
	// Lemma 1 guarantee: at least x*/(2|R|) of each type placed
	// (2 resources -> quarter). Quotas count placements.
	for n := range c.Containers {
		placed := 0
		frac := 0.0
		for m := range c.Machines {
			placed += d.Quota[m][n]
			frac += d.Plan.Alloc[m][n][0]
		}
		if float64(placed) < math.Floor(frac/4)-1e-9 {
			t.Errorf("type %d: placed %d < x*/(2R) = %v", n, placed, frac/4)
		}
	}
}

func TestStepCBSZeroDemand(t *testing.T) {
	c := testController(CBS)
	d, err := c.Step([]float64{5, 2}, [][]float64{{0, 0}, {0, 0}}, []float64{0.08, 0.08})
	if err != nil {
		t.Fatal(err)
	}
	if d.TotalActive() != 0 {
		t.Errorf("machines on with zero demand: %d", d.TotalActive())
	}
	for n := range c.Containers {
		if d.Dropped[n] != 0 {
			t.Errorf("dropped[%d] = %d with zero demand", n, d.Dropped[n])
		}
	}
}

// Conservation in CBS: every floor(x*) container is either packed into a
// machine or counted as dropped, and quotas are the plan's caps ⌈x*⌉.
func TestStepCBSConservation(t *testing.T) {
	c := testController(CBS)
	d, err := c.Step([]float64{0, 0}, [][]float64{{57, 60}, {13, 13}}, []float64{0.08, 0.08})
	if err != nil {
		t.Fatal(err)
	}
	for n := range c.Containers {
		want := 0
		for m := range c.Machines {
			want += int(math.Floor(d.Plan.Alloc[m][n][0] + 1e-9))
		}
		got := d.Dropped[n]
		for m := range c.Machines {
			for _, pack := range d.Packings[m] {
				got += pack[n]
			}
		}
		if got != want {
			t.Errorf("type %d: packed+dropped = %d, want %d", n, got, want)
		}
		for m := range c.Machines {
			if cap := int(math.Ceil(d.Plan.Alloc[m][n][0] - 1e-9)); d.Quota[m][n] != cap {
				t.Errorf("type %d machine %d: quota = %d, want ceil(x*) = %d",
					n, m, d.Quota[m][n], cap)
			}
		}
	}
}

// The MPC loop can be iterated: the decision's machine counts feed the next
// step's initial state without error, and a demand spike raises the fleet
// while a drought lowers it.
func TestStepIterateTracksDemand(t *testing.T) {
	c := testController(CBS)
	price := []float64{0.08, 0.08}
	state := []float64{0, 0}

	dLow, err := c.Step(state, [][]float64{{5, 5}, {1, 1}}, price)
	if err != nil {
		t.Fatal(err)
	}
	state = []float64{float64(dLow.ActiveMachines[0]), float64(dLow.ActiveMachines[1])}

	dHigh, err := c.Step(state, [][]float64{{200, 200}, {40, 40}}, price)
	if err != nil {
		t.Fatal(err)
	}
	if dHigh.TotalActive() <= dLow.TotalActive() {
		t.Errorf("fleet did not grow on spike: %d -> %d", dLow.TotalActive(), dHigh.TotalActive())
	}

	state = []float64{float64(dHigh.ActiveMachines[0]), float64(dHigh.ActiveMachines[1])}
	dDrop, err := c.Step(state, [][]float64{{2, 2}, {0, 0}}, price)
	if err != nil {
		t.Fatal(err)
	}
	if dDrop.TotalActive() >= dHigh.TotalActive() {
		t.Errorf("fleet did not shrink on drought: %d -> %d", dHigh.TotalActive(), dDrop.TotalActive())
	}
}
