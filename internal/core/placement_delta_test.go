package core

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
)

// TestDeltaPlacementIdentity drives randomized multi-period MPC
// sequences and pins the delta contract: on every tick, realizing the
// plan against the previous period's decision is bit-identical to the
// full repack, at GOMAXPROCS 1, 4, and 8 (the same equivalence recipe as
// TestParallelPlacementIdentity and the warm-LP property tests).
func TestDeltaPlacementIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	for trial := 0; trial < 6; trial++ {
		in := wideInput(r, 6+r.Intn(6))
		ctrl := &Controller{
			Machines: in.Machines, Containers: in.Containers,
			PeriodSeconds: in.PeriodSeconds, Horizon: in.Horizon, Mode: CBS,
		}
		var prev *Decision
		for period := 0; period < 5; period++ {
			if period > 0 {
				in = perturb(r, in)
			}
			plan, err := SolveRelaxed(in)
			if err != nil {
				t.Fatalf("trial %d period %d: %v", trial, period, err)
			}
			cold, err := ctrl.Realize(plan)
			if err != nil {
				t.Fatalf("trial %d period %d cold: %v", trial, period, err)
			}
			var delta *Decision
			for _, procs := range []int{1, 4, 8} {
				runtime.GOMAXPROCS(procs)
				d, err := ctrl.RealizeDelta(prev, plan)
				runtime.GOMAXPROCS(orig)
				if err != nil {
					t.Fatalf("trial %d period %d procs %d: %v", trial, period, procs, err)
				}
				if !reflect.DeepEqual(cold, d) {
					t.Fatalf("trial %d period %d procs %d: delta decision differs from full repack",
						trial, period, procs)
				}
				delta = d
			}
			prev = delta
		}
	}
}

// TestDeltaPlacementReuse pins that the delta path actually reuses:
// realizing an identical plan against its own decision repacks nothing,
// and perturbing a single machine type's allocation repacks exactly that
// type.
func TestDeltaPlacementReuse(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	in := wideInput(r, 10)
	plan, err := SolveRelaxed(in)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := &Controller{
		Machines: in.Machines, Containers: in.Containers,
		PeriodSeconds: in.PeriodSeconds, Horizon: in.Horizon, Mode: CBS,
	}
	prev, err := ctrl.Realize(plan)
	if err != nil {
		t.Fatal(err)
	}
	nm := len(in.Machines)

	before := ctrl.DeltaStats()
	if _, err := ctrl.RealizeDelta(prev, plan); err != nil {
		t.Fatal(err)
	}
	after := ctrl.DeltaStats()
	if got := after.ReusedTypes - before.ReusedTypes; got != nm {
		t.Errorf("identical plan reused %d of %d types", got, nm)
	}
	if got := after.RepackedTypes - before.RepackedTypes; got != 0 {
		t.Errorf("identical plan repacked %d types", got)
	}

	// Shift one machine type's whole-container allocation so only its
	// projection changes.
	churned := churnBusiestType(ctrl, plan)
	before = after
	d, err := ctrl.RealizeDelta(prev, churned)
	if err != nil {
		t.Fatal(err)
	}
	after = ctrl.DeltaStats()
	if got := after.RepackedTypes - before.RepackedTypes; got != 1 {
		t.Errorf("single-type churn repacked %d types, want 1", got)
	}
	if got := after.ReusedTypes - before.ReusedTypes; got != nm-1 {
		t.Errorf("single-type churn reused %d types, want %d", got, nm-1)
	}
	cold, err := ctrl.Realize(churned)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, d) {
		t.Error("churned delta decision differs from full repack")
	}
}

// churnBusiestType returns a copy of plan with the busiest machine
// type's period-0 allocation halved — the shape of a low-churn MPC drift
// where one type's demand moved and every other type's projection is
// unchanged. Only the churned rows are copied; the rest of the plan is
// shared, as placement only reads it.
func churnBusiestType(c *Controller, plan *Plan) *Plan {
	busiest, most := 0, -1
	for m := range c.Machines {
		total := 0
		for n := range c.Containers {
			total += itemCount(plan, m, n)
		}
		if total > most {
			busiest, most = m, total
		}
	}
	out := &Plan{
		Active:    plan.Active,
		Alloc:     append([][][]float64(nil), plan.Alloc...),
		Scheduled: plan.Scheduled,
		Objective: plan.Objective,
	}
	row := make([][]float64, len(plan.Alloc[busiest]))
	for n, col := range plan.Alloc[busiest] {
		nc := append([]float64(nil), col...)
		nc[0] *= 0.5
		row[n] = nc
	}
	out.Alloc[busiest] = row
	return out
}

// TestDeltaPlacementFallbacks pins the anomaly triggers: nil prev, CBP
// prev (no packings), and a container-set change must all fall back to a
// full repack — and still produce the full repack's exact decision.
func TestDeltaPlacementFallbacks(t *testing.T) {
	r := rand.New(rand.NewSource(7001))
	in := wideInput(r, 6)
	plan, err := SolveRelaxed(in)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := &Controller{
		Machines: in.Machines, Containers: in.Containers,
		PeriodSeconds: in.PeriodSeconds, Horizon: in.Horizon, Mode: CBS,
	}
	cold, err := ctrl.Realize(plan)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, prev *Decision) {
		t.Helper()
		before := ctrl.DeltaStats()
		d, err := ctrl.RealizeDelta(prev, plan)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		after := ctrl.DeltaStats()
		if after.FullRepacks-before.FullRepacks != 1 {
			t.Errorf("%s: did not fall back to a full repack", name)
		}
		if !reflect.DeepEqual(cold, d) {
			t.Errorf("%s: fallback decision differs from full repack", name)
		}
	}

	check("nil prev", nil)

	cbpCtrl := &Controller{
		Machines: in.Machines, Containers: in.Containers,
		PeriodSeconds: in.PeriodSeconds, Horizon: in.Horizon, Mode: CBP,
	}
	cbpDec, err := cbpCtrl.Realize(plan)
	if err != nil {
		t.Fatal(err)
	}
	check("CBP prev (no packings)", cbpDec)

	// Container-set change: a decision shaped for a smaller catalog.
	shrunk := *cold
	shrunk.Dropped = cold.Dropped[:len(cold.Dropped)-1]
	check("container-set change", &shrunk)

	// Machine-set change.
	narrow := *cold
	narrow.Packings = cold.Packings[:len(cold.Packings)-1]
	check("machine-set change", &narrow)
}

// TestControllerStepDelta pins the Step threading: a controller's
// consecutive Steps chain decisions through the delta path (reusing at
// least one unchanged type in steady state) while staying bit-identical
// to a stateless full repack of each period's plan.
func TestControllerStepDelta(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	in := wideInput(r, 8)
	ctrl := &Controller{
		Machines: in.Machines, Containers: in.Containers,
		PeriodSeconds: in.PeriodSeconds, Horizon: in.Horizon, Mode: CBS,
	}
	for period := 0; period < 5; period++ {
		if period > 0 {
			in = perturb(r, in)
		}
		dec, err := ctrl.Step(in.InitialActive, in.Demand, in.Price)
		if err != nil {
			t.Fatalf("period %d: %v", period, err)
		}
		cold, err := ctrl.Realize(dec.Plan)
		if err != nil {
			t.Fatalf("period %d cold: %v", period, err)
		}
		if !reflect.DeepEqual(cold, dec) {
			t.Fatalf("period %d: Step decision differs from full repack of its plan", period)
		}
	}
	stats := ctrl.DeltaStats()
	if stats.FullRepacks != 1 {
		t.Errorf("full repacks = %d, want exactly the first period's", stats.FullRepacks)
	}
	if stats.ReusedTypes == 0 {
		t.Error("no machine type was ever reused across five steady-state periods")
	}
}
