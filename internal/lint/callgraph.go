package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module call graph the interprocedural analyzers
// (detertaint, goleak, hotpathalloc) run over. Resolution rules:
//
//   - Static dispatch — calls to declared functions, methods with a
//     concrete receiver, and immediately invoked function literals — is
//     resolved exactly.
//   - Interface method calls are resolved conservatively with class
//     hierarchy analysis: an edge to every concrete method of a loaded
//     type that implements the interface. Implementations outside the
//     loaded packages (e.g. a stdlib io.Writer) have no AST and produce
//     no edge; the analyzers treat the stdlib as leaf calls.
//   - A call through a local variable that only ever holds function
//     literals of its own function — the `reset := func(){...}; reset()`
//     shape — is resolved exactly to those literals.
//   - Other calls through function values (variables, fields,
//     parameters, method values) are resolved conservatively to every
//     function or literal whose value is taken somewhere in the module,
//     whose signature is identical, and whose defining package is
//     import-reachable from the caller's package. The reachability cut
//     is deliberate: a value the caller cannot name must have been
//     injected from above, and injected behavior is an input the
//     injector vouches for (see detertaint's contract).
//   - A function literal that is not immediately invoked still gets an
//     edge from its enclosing function (defining a closure almost always
//     precedes running it), tagged as dynamic.
//   - go and defer statements produce edges tagged EdgeGo / EdgeDefer.
//
// Calls into packages that were not loaded (the standard library, unless
// fixture packages pull it in) are recorded per node as ExtCalls so the
// analyzers can recognize well-known roots (time.Now, os.Getenv,
// sync.WaitGroup.Done, fmt.Sprintf) without stdlib ASTs.

// EdgeKind distinguishes how a call site transfers control.
type EdgeKind uint8

const (
	EdgeCall EdgeKind = iota
	EdgeGo
	EdgeDefer
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeGo:
		return "go"
	case EdgeDefer:
		return "defer"
	default:
		return "call"
	}
}

// Node is one function in the module: a declared function or method, or
// a function literal.
type Node struct {
	Fn   *types.Func   // nil for function literals
	Lit  *ast.FuncLit  // nil for declared functions
	Decl *ast.FuncDecl // nil for function literals
	Pkg  *Package
	Name string // pretty name for diagnostics, e.g. sched.(*Harmony).Period

	Out []*Edge
	In  []*Edge
	Ext []ExtCall

	// DynGo records go statements whose function operand is a bare
	// function value: whatever candidate edges exist, the spawn itself is
	// unprovable for join analysis and goleak flags the site.
	DynGo []token.Pos

	// HotPath / ColdPath mirror the //harmony:hotpath and
	// //harmony:coldpath doc-comment annotations (declared functions only).
	HotPath  bool
	ColdPath bool
}

// Body returns the function body.
func (n *Node) Body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	return n.Decl.Body
}

// Pos returns the function's declaration position.
func (n *Node) Pos() token.Pos {
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return n.Decl.Pos()
}

// Edge is one resolved call site.
type Edge struct {
	Caller *Node
	Callee *Node
	Kind   EdgeKind
	Pos    token.Pos
	// Dynamic marks conservative resolution: interface dispatch, calls
	// through function values, or closure definition. Via says which.
	Dynamic bool
	Via     string
}

// ExtCall is a call whose callee lives in a package that was not loaded
// (typically the standard library).
type ExtCall struct {
	Fn   *types.Func
	Kind EdgeKind
	Pos  token.Pos
}

// Graph is the module call graph.
type Graph struct {
	Funcs []*Node // deterministic order: by file position

	byObj map[*types.Func]*Node
	byLit map[*ast.FuncLit]*Node
	fset  *token.FileSet
}

// NodeOf returns the node for a declared function, or nil.
func (g *Graph) NodeOf(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.byObj[fn.Origin()]
}

// NodeOfLit returns the node for a function literal, or nil.
func (g *Graph) NodeOfLit(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// builder carries the intermediate state of graph construction.
type builder struct {
	g          *Graph
	pkgs       []*Package
	valueTaken map[*types.Func]bool // declared functions whose value escapes
	litTaken   []*Node              // literal nodes (always value candidates)
	namedTypes []types.Type         // all loaded named types, for CHA
	implCache  map[implKey][]*types.Func
	reach      map[string]map[string]bool // pkg path -> transitively imported paths
}

type implKey struct {
	iface  *types.Interface
	method string
}

// BuildGraph constructs the call graph over the loaded packages.
func BuildGraph(pkgs []*Package) *Graph {
	b := &builder{
		g: &Graph{
			byObj: make(map[*types.Func]*Node),
			byLit: make(map[*ast.FuncLit]*Node),
			fset:  pkgs[0].Fset,
		},
		pkgs:       pkgs,
		valueTaken: make(map[*types.Func]bool),
		implCache:  make(map[implKey][]*types.Func),
		reach:      make(map[string]map[string]bool),
	}
	b.collectNamedTypes()
	b.collectNodes()
	b.collectEdges()
	b.linkIn()
	return b.g
}

// collectNamedTypes gathers every package-scope named type for class
// hierarchy analysis.
func (b *builder) collectNamedTypes() {
	for _, pkg := range b.pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			b.namedTypes = append(b.namedTypes, tn.Type())
		}
	}
}

// collectNodes creates a node per declared function and per function
// literal, naming literals after their enclosing function.
func (b *builder) collectNodes() {
	for _, pkg := range b.pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					b.addDecl(pkg, d)
				case *ast.GenDecl:
					// Package-level `var f = func() {...}`: literals with
					// no enclosing function.
					name := fmt.Sprintf("%s.init", pathBase(pkg.Path))
					litSeq := 0
					ast.Inspect(d, func(n ast.Node) bool {
						if lit, ok := n.(*ast.FuncLit); ok {
							litSeq++
							b.addLit(pkg, lit, fmt.Sprintf("%s.func%d", name, litSeq))
							return false // nested literals named on their own walk
						}
						return true
					})
				}
			}
		}
	}
	sort.Slice(b.g.Funcs, func(i, j int) bool {
		pi, pj := b.g.fset.Position(b.g.Funcs[i].Pos()), b.g.fset.Position(b.g.Funcs[j].Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
}

func (b *builder) addDecl(pkg *Package, d *ast.FuncDecl) {
	fn, ok := pkg.Info.Defs[d.Name].(*types.Func)
	if !ok || d.Body == nil {
		return
	}
	node := &Node{Fn: fn, Decl: d, Pkg: pkg, Name: prettyFuncName(fn)}
	if d.Doc != nil {
		for _, c := range d.Doc.List {
			if _, ok := commentDirective(c, hotPathMarker); ok {
				node.HotPath = true
			}
			if _, ok := commentDirective(c, coldPathMarker); ok {
				node.ColdPath = true
			}
		}
	}
	b.g.byObj[fn.Origin()] = node
	b.g.Funcs = append(b.g.Funcs, node)

	// Nested literals, named decl.funcN in source order.
	litSeq := 0
	forEachOwnNode(d.Body, func(n ast.Node) {
		if lit, ok := n.(*ast.FuncLit); ok {
			litSeq++
			b.addLitTree(pkg, lit, fmt.Sprintf("%s.func%d", node.Name, litSeq))
		}
	})
}

// addLitTree adds lit and, recursively, literals nested inside it.
func (b *builder) addLitTree(pkg *Package, lit *ast.FuncLit, name string) {
	b.addLit(pkg, lit, name)
	litSeq := 0
	forEachOwnNode(lit.Body, func(n ast.Node) {
		if inner, ok := n.(*ast.FuncLit); ok {
			litSeq++
			b.addLitTree(pkg, inner, fmt.Sprintf("%s.%d", name, litSeq))
		}
	})
}

func (b *builder) addLit(pkg *Package, lit *ast.FuncLit, name string) {
	node := &Node{Lit: lit, Pkg: pkg, Name: name}
	b.g.byLit[lit] = node
	b.g.Funcs = append(b.g.Funcs, node)
	b.litTaken = append(b.litTaken, node)
}

// forEachOwnNode walks the AST under root but does not descend into
// nested function literals: their contents belong to their own node.
func forEachOwnNode(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil || n == root {
			return true
		}
		fn(n)
		_, isLit := n.(*ast.FuncLit)
		return !isLit
	})
}

// collectEdges resolves every call site. Two sweeps: the first records
// which functions have their value taken (so the second can resolve
// calls through function values), the second builds edges.
func (b *builder) collectEdges() {
	for _, node := range b.g.Funcs {
		b.collectValueTaken(node)
	}
	for _, node := range b.g.Funcs {
		b.resolveBody(node)
	}
}

// collectValueTaken records declared functions used outside call
// position in node's body: assigned, passed, returned, or captured as
// method values. Interface method values conservatively take the value
// of every implementation.
func (b *builder) collectValueTaken(node *Node) {
	info := node.Pkg.Info
	callFuns := make(map[ast.Expr]bool)
	forEachOwnNode(node.Body(), func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			callFuns[astUnparen(call.Fun)] = true
		}
	})
	forEachOwnNode(node.Body(), func(n ast.Node) {
		switch e := n.(type) {
		case *ast.Ident:
			if fn, ok := info.Uses[e].(*types.Func); ok && !callFuns[ast.Expr(e)] {
				b.valueTaken[fn.Origin()] = true
			}
		case *ast.SelectorExpr:
			if callFuns[ast.Expr(e)] {
				return
			}
			sel, ok := info.Selections[e]
			if !ok || sel.Kind() != types.MethodVal {
				// Package-qualified functions are handled by the Ident
				// case through e.Sel.
				if fn, ok := info.Uses[e.Sel].(*types.Func); ok && !callFuns[ast.Expr(e)] {
					b.valueTaken[fn.Origin()] = true
				}
				return
			}
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return
			}
			if types.IsInterface(sel.Recv()) {
				for _, impl := range b.implementations(sel.Recv(), fn.Name()) {
					b.valueTaken[impl.Origin()] = true
				}
			} else {
				b.valueTaken[fn.Origin()] = true
			}
		}
	})
}

// resolveBody builds the outgoing edges and external calls of one node.
func (b *builder) resolveBody(node *Node) {
	kinds := make(map[*ast.CallExpr]EdgeKind)
	forEachOwnNode(node.Body(), func(n ast.Node) {
		switch s := n.(type) {
		case *ast.GoStmt:
			kinds[s.Call] = EdgeGo
		case *ast.DeferStmt:
			kinds[s.Call] = EdgeDefer
		}
	})
	forEachOwnNode(node.Body(), func(n ast.Node) {
		switch e := n.(type) {
		case *ast.CallExpr:
			b.resolveCall(node, e, kinds[e])
		case *ast.FuncLit:
			// A literal that is not the function of an immediate call:
			// connect it to its definer — defining a closure almost
			// always precedes running it — tagged dynamic.
			if lit := b.g.byLit[e]; lit != nil && !b.isCallFun(node, e) {
				kind := EdgeCall
				if k, ok := kinds[parentCallOf(node, e)]; ok {
					kind = k
				}
				b.addEdge(node, lit, kind, e.Pos(), true, "closure")
			}
		}
	})
}

// isCallFun reports whether e appears as the function operand of a call
// in node's body.
func (b *builder) isCallFun(node *Node, e ast.Expr) bool {
	found := false
	forEachOwnNode(node.Body(), func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok && astUnparen(call.Fun) == e {
			found = true
		}
	})
	return found
}

// parentCallOf finds the call whose argument list directly contains e,
// so `go wrapper(func(){...})` tags the literal's closure edge as EdgeGo.
func parentCallOf(node *Node, e ast.Expr) *ast.CallExpr {
	var parent *ast.CallExpr
	forEachOwnNode(node.Body(), func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			for _, arg := range call.Args {
				if astUnparen(arg) == e {
					parent = call
				}
			}
		}
	})
	return parent
}

func (b *builder) resolveCall(node *Node, call *ast.CallExpr, kind EdgeKind) {
	info := node.Pkg.Info
	fun := astUnparen(call.Fun)

	// Type conversions and builtins are not calls.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	if id, ok := fun.(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			return
		}
	}

	// Immediately invoked literal: exact edge.
	if lit, ok := fun.(*ast.FuncLit); ok {
		if n := b.g.byLit[lit]; n != nil {
			b.addEdge(node, n, kind, call.Pos(), false, "")
		}
		return
	}

	// Generic instantiation f[T](...) resolves through the index operand.
	if ix, ok := fun.(*ast.IndexExpr); ok {
		fun = astUnparen(ix.X)
	} else if ix, ok := fun.(*ast.IndexListExpr); ok {
		fun = astUnparen(ix.X)
	}

	switch e := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[e].(type) {
		case *types.Func:
			b.addStatic(node, obj, kind, call.Pos())
			return
		case *types.Var:
			// A local that only ever holds literals of this function
			// resolves exactly; anything else is a function-valued
			// variable or parameter, resolved by signature.
			if lits := b.localLits(node, obj); len(lits) > 0 {
				dynamic, via := len(lits) > 1, ""
				if dynamic {
					via = "local closure"
				}
				for _, lit := range lits {
					b.addEdge(node, lit, kind, call.Pos(), dynamic, via)
				}
				return
			}
			b.addDynamic(node, info.Types[call.Fun].Type, kind, call.Pos())
			return
		case *types.Nil:
			b.addDynamic(node, info.Types[call.Fun].Type, kind, call.Pos())
			return
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				fn := sel.Obj().(*types.Func)
				if types.IsInterface(sel.Recv()) {
					for _, impl := range b.implementations(sel.Recv(), fn.Name()) {
						if n := b.g.NodeOf(impl); n != nil {
							b.addEdge(node, n, kind, call.Pos(), true, "interface dispatch")
						}
					}
					return
				}
				b.addStatic(node, fn, kind, call.Pos())
				return
			case types.FieldVal:
				// Function-typed struct field.
				b.addDynamic(node, sel.Type(), kind, call.Pos())
				return
			}
		}
		// Package-qualified function or method expression.
		if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
			b.addStatic(node, fn, kind, call.Pos())
			return
		}
		if tv, ok := info.Types[call.Fun]; ok {
			b.addDynamic(node, tv.Type, kind, call.Pos())
		}
		return
	}
	// Anything else returning a function (call returning a func, index
	// into a slice of funcs, ...) resolves by signature.
	if tv, ok := info.Types[call.Fun]; ok {
		b.addDynamic(node, tv.Type, kind, call.Pos())
	}
}

// addStatic adds an exact edge to a declared function, or records an
// external call when the callee's package was not loaded.
func (b *builder) addStatic(node *Node, fn *types.Func, kind EdgeKind, pos token.Pos) {
	if callee := b.g.NodeOf(fn); callee != nil {
		b.addEdge(node, callee, kind, pos, false, "")
		return
	}
	node.Ext = append(node.Ext, ExtCall{Fn: fn.Origin(), Kind: kind, Pos: pos})
}

// localLits resolves a call through a local variable that only ever
// holds function literals defined in the caller — the common
// `helper := func(){...}; helper()` shape. It returns nil (forcing the
// signature-based fallback) when any assignment to the variable is not a
// literal of this function, or when the variable's address is taken.
func (b *builder) localLits(node *Node, v *types.Var) []*Node {
	info := node.Pkg.Info
	var lits []*Node
	pure := true
	bindTo := func(id *ast.Ident, rhs ast.Expr) {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != types.Object(v) {
			return
		}
		lit, ok := astUnparen(rhs).(*ast.FuncLit)
		if !ok {
			pure = false
			return
		}
		if ln := b.g.byLit[lit]; ln != nil {
			lits = append(lits, ln)
		} else {
			pure = false
		}
	}
	// Full walk, including nested literals: a reassignment inside a
	// closure still invalidates exact resolution.
	ast.Inspect(node.Body(), func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.AssignStmt:
			if len(e.Lhs) != len(e.Rhs) {
				return true
			}
			for i, lhs := range e.Lhs {
				if id, ok := astUnparen(lhs).(*ast.Ident); ok {
					bindTo(id, e.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range e.Names {
				if i < len(e.Values) {
					bindTo(name, e.Values[i])
				}
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if id, ok := astUnparen(e.X).(*ast.Ident); ok && info.Uses[id] == types.Object(v) {
					pure = false
				}
			}
		}
		return true
	})
	if !pure {
		return nil
	}
	return lits
}

// reachableFrom returns the package paths import-reachable from pkg,
// including pkg itself, cached per package.
func (b *builder) reachableFrom(pkg *Package) map[string]bool {
	if r, ok := b.reach[pkg.Path]; ok {
		return r
	}
	r := map[string]bool{pkg.Path: true}
	var visit func(p *types.Package)
	visit = func(p *types.Package) {
		for _, imp := range p.Imports() {
			if !r[imp.Path()] {
				r[imp.Path()] = true
				visit(imp)
			}
		}
	}
	visit(pkg.Types)
	b.reach[pkg.Path] = r
	return r
}

// addDynamic resolves a call through a function value: edges to every
// value-taken function or literal with an identical signature whose
// defining package the caller can import-reach.
func (b *builder) addDynamic(node *Node, t types.Type, kind EdgeKind, pos token.Pos) {
	sig, ok := t.(*types.Signature)
	if !ok {
		return
	}
	if kind == EdgeGo {
		node.DynGo = append(node.DynGo, pos)
	}
	key := sigKey(sig)
	reach := b.reachableFrom(node.Pkg)
	for fn := range b.valueTaken {
		if fn.Pkg() != nil && !reach[fn.Pkg().Path()] {
			continue
		}
		if sigKey(fn.Type().(*types.Signature)) != key {
			continue
		}
		if callee := b.g.NodeOf(fn); callee != nil {
			b.addEdge(node, callee, kind, pos, true, "function value")
		}
	}
	for _, lit := range b.litTaken {
		if !reach[lit.Pkg.Path] {
			continue
		}
		litSig, ok := lit.Pkg.Info.Types[lit.Lit].Type.(*types.Signature)
		if ok && sigKey(litSig) == key {
			b.addEdge(node, lit, kind, pos, true, "function value")
		}
	}
}

// implementations returns the concrete methods of loaded types that
// implement the interface method, conservatively including pointer
// receivers. Results are cached and deterministic.
func (b *builder) implementations(recv types.Type, method string) []*types.Func {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	key := implKey{iface: iface, method: method}
	if impls, ok := b.implCache[key]; ok {
		return impls
	}
	var impls []*types.Func
	for _, t := range b.namedTypes {
		if types.IsInterface(t) {
			continue
		}
		if !types.Implements(t, iface) && !types.Implements(types.NewPointer(t), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, nil, method)
		if fn, ok := obj.(*types.Func); ok {
			impls = append(impls, fn)
		}
	}
	sort.Slice(impls, func(i, j int) bool {
		return prettyFuncName(impls[i]) < prettyFuncName(impls[j])
	})
	b.implCache[key] = impls
	return impls
}

func (b *builder) addEdge(caller, callee *Node, kind EdgeKind, pos token.Pos, dynamic bool, via string) {
	for _, e := range caller.Out {
		if e.Callee == callee && e.Pos == pos && e.Kind == kind {
			return
		}
	}
	caller.Out = append(caller.Out, &Edge{
		Caller: caller, Callee: callee, Kind: kind, Pos: pos,
		Dynamic: dynamic, Via: via,
	})
}

func (b *builder) linkIn() {
	for _, node := range b.g.Funcs {
		sort.Slice(node.Out, func(i, j int) bool {
			if node.Out[i].Pos != node.Out[j].Pos {
				return node.Out[i].Pos < node.Out[j].Pos
			}
			return node.Out[i].Callee.Name < node.Out[j].Callee.Name
		})
		for _, e := range node.Out {
			e.Callee.In = append(e.Callee.In, e)
		}
	}
}

func astUnparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// sigKey normalizes a signature for function-value matching: the
// receiver is dropped (a method value's call signature has none) and
// parameter/result names are erased — `func (g Gauge) Add(d int) int`
// must match a value of type `func(int) int`.
func sigKey(sig *types.Signature) string {
	plain := types.NewSignatureType(nil, nil, nil, unnamedTuple(sig.Params()), unnamedTuple(sig.Results()), sig.Variadic())
	return types.TypeString(plain, func(p *types.Package) string { return p.Path() })
}

func unnamedTuple(t *types.Tuple) *types.Tuple {
	vars := make([]*types.Var, t.Len())
	for i := range vars {
		vars[i] = types.NewVar(token.NoPos, nil, "", t.At(i).Type())
	}
	return types.NewTuple(vars...)
}

// prettyFuncName renders a function for diagnostics: pkg.Func,
// pkg.(*Type).Method, or pkg.Type.Method.
func prettyFuncName(fn *types.Func) string {
	name := fn.Name()
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		ptr := false
		if p, pok := rt.(*types.Pointer); pok {
			rt = p.Elem()
			ptr = true
		}
		tn := rt.String()
		if named, nok := rt.(*types.Named); nok {
			tn = named.Obj().Name()
		}
		pkg := ""
		if fn.Pkg() != nil {
			pkg = pathBase(fn.Pkg().Path()) + "."
		}
		if ptr {
			return fmt.Sprintf("%s(*%s).%s", pkg, tn, name)
		}
		return fmt.Sprintf("%s%s.%s", pkg, tn, name)
	}
	if fn.Pkg() != nil {
		return pathBase(fn.Pkg().Path()) + "." + name
	}
	return name
}

// PathString renders a witness call chain for a diagnostic message.
func PathString(path []string) string {
	return strings.Join(path, " → ")
}
