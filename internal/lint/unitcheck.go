package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// UnitCheck enforces Harmony's dimensioned arithmetic. Declarations
// carry `//harmony:unit(EXPR)` annotations (struct fields, consts, vars,
// named types; function parameters and results via doc-comment lines
// `//harmony:unit(EXPR) <name>` and `//harmony:unit(EXPR) return [i]`),
// and the checker infers units through the value-flow layer: def-use
// chains for locals, exact static calls interprocedurally (annotated or
// summarized results), and recognized conversion constants as scale
// hops (W/1000 is kW, s/3600 is h). It reports additions, comparisons,
// assignments, composite literals, call arguments, and returns that mix
// dimensions — or mix scales of one dimension without an annotated
// conversion — with a def-use witness path. Malformed or unbindable
// annotations are reported instead of silently ignored.
var UnitCheck = &Analyzer{
	Name:      "unitcheck",
	Doc:       "check //harmony:unit dimension annotations over the control path's value flow",
	RunModule: runUnitCheck,
}

// unitNumericPkgs is the annotated numeric surface: the energy→cost
// chain and the demand chain. divzero and nansource share it.
var unitNumericPkgs = map[string]bool{
	"harmony/internal/energy":   true,
	"harmony/internal/tenant":   true,
	"harmony/internal/core":     true,
	"harmony/internal/queueing": true,
	"harmony/internal/forecast": true,
	"harmony/internal/sched":    true,
	"harmony/internal/trace":    true,
}

func unitcheckCovered(pkgPath string) bool {
	return unitNumericPkgs[pkgPath] || strings.HasPrefix(pkgPath, "fixture/unitcheck")
}

// unitAnnotCovered adds the packages whose annotations are collected but
// whose function bodies are not checked: daemon mirrors tenant's config
// fields, so its declarations feed cross-package checks.
func unitAnnotCovered(pkgPath string) bool {
	return unitcheckCovered(pkgPath) || pkgPath == "harmony/internal/daemon"
}

const unitMarker = "harmony:unit"

// parseUnitComment recognizes a //harmony:unit(EXPR) directive. ok means
// the comment is an attempt at one (so malformed attempts are reported,
// not skipped); expr is the text inside the parentheses, rest any
// binding words after them. A missing or unclosed parenthesis yields
// ok=true with expr=="" and malformed=true.
func parseUnitComment(c *ast.Comment) (expr, rest string, malformed, ok bool) {
	text := strings.TrimPrefix(c.Text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, unitMarker) {
		return "", "", false, false
	}
	tail := text[len(unitMarker):]
	if tail != "" && tail[0] != '(' && tail[0] != ' ' {
		return "", "", false, false // a different directive, e.g. harmony:unitfoo
	}
	if !strings.HasPrefix(tail, "(") {
		return "", "", true, true
	}
	end := strings.IndexByte(tail, ')')
	if end < 0 {
		return "", "", true, true
	}
	rest = strings.TrimSpace(tail[end+1:])
	// A trailing line comment after the binding is not part of it.
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = strings.TrimSpace(rest[:i])
	}
	return tail[1:end], rest, false, true
}

// unitDirective is one //harmony:unit comment found in a file.
type unitDirective struct {
	c         *ast.Comment
	expr      string
	rest      string
	malformed bool
	bound     bool
}

// unitWorld is the module-wide annotation database plus the inferred
// function summaries, shared by every function check in one run.
type unitWorld struct {
	pass *ModulePass

	objUnits    map[types.Object]unit        // fields, consts, vars, params, named results
	typeUnits   map[*types.TypeName]unit     // named types
	resultUnits map[*types.Func]map[int]unit // function/method result annotations

	envs        map[*Node]*unitEnv
	summaries   map[*types.Func]unit
	summarizing map[*types.Func]bool
}

func runUnitCheck(pass *ModulePass) {
	w := &unitWorld{
		pass:        pass,
		objUnits:    make(map[types.Object]unit),
		typeUnits:   make(map[*types.TypeName]unit),
		resultUnits: make(map[*types.Func]map[int]unit),
		envs:        make(map[*Node]*unitEnv),
		summaries:   make(map[*types.Func]unit),
		summarizing: make(map[*types.Func]bool),
	}
	w.collect()
	for _, n := range pass.Graph.Funcs {
		if !unitcheckCovered(n.Pkg.Path) {
			continue
		}
		w.checkFunc(n)
	}
}

// ---- annotation collection ----

func (w *unitWorld) collect() {
	for _, pkg := range w.pass.Pkgs {
		if !unitAnnotCovered(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			w.collectFile(pkg, f)
		}
	}
}

func (w *unitWorld) collectFile(pkg *Package, f *ast.File) {
	dirs := make(map[*ast.Comment]*unitDirective)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			expr, rest, malformed, ok := parseUnitComment(c)
			if !ok {
				continue
			}
			dirs[c] = &unitDirective{c: c, expr: expr, rest: rest, malformed: malformed}
		}
	}
	if len(dirs) == 0 {
		return
	}
	groupDirs := func(cgs ...*ast.CommentGroup) []*unitDirective {
		var out []*unitDirective
		for _, cg := range cgs {
			if cg == nil {
				continue
			}
			for _, c := range cg.List {
				if d, ok := dirs[c]; ok {
					out = append(out, d)
				}
			}
		}
		return out
	}

	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			declDoc := d.Doc
			if len(d.Specs) != 1 {
				declDoc = nil // a shared doc cannot bind to one spec of many
			}
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.ValueSpec:
					for _, dir := range groupDirs(declDoc, sp.Doc, sp.Comment) {
						w.bindValueSpec(pkg, dir, sp)
					}
				case *ast.TypeSpec:
					for _, dir := range groupDirs(declDoc, sp.Doc, sp.Comment) {
						w.bindTypeSpec(pkg, dir, sp)
					}
				}
			}
		case *ast.FuncDecl:
			for _, dir := range groupDirs(d.Doc) {
				w.bindFuncDoc(pkg, dir, d)
			}
		}
	}
	// Struct fields and interface methods, wherever the type expression
	// appears.
	ast.Inspect(f, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.StructType:
			for _, field := range t.Fields.List {
				for _, dir := range groupDirs(field.Doc, field.Comment) {
					w.bindField(pkg, dir, field)
				}
			}
		case *ast.InterfaceType:
			for _, field := range t.Methods.List {
				for _, dir := range groupDirs(field.Doc, field.Comment) {
					w.bindInterfaceMethod(pkg, dir, field)
				}
			}
		}
		return true
	})
	// Anything left neither bound nor reported is an annotation floating
	// on a non-declaration — stale by construction.
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if dir, ok := dirs[c]; ok && !dir.bound {
				if dir.malformed {
					w.pass.Reportf(c.Pos(), "malformed //harmony:unit: missing (EXPR)")
				} else {
					w.pass.Reportf(c.Pos(), "//harmony:unit(%s) binds to no annotatable declaration; delete the stale annotation", dir.expr)
				}
			}
		}
	}
}

// parseDir marks the directive bound and parses its unit expression,
// reporting malformed annotations in place.
func (w *unitWorld) parseDir(dir *unitDirective) (unit, bool) {
	dir.bound = true
	if dir.malformed {
		w.pass.Reportf(dir.c.Pos(), "malformed //harmony:unit: missing (EXPR)")
		return unit{}, false
	}
	u, err := parseUnitExpr(dir.expr)
	if err != nil {
		w.pass.Reportf(dir.c.Pos(), "malformed //harmony:unit(%s): %v", dir.expr, err)
		return unit{}, false
	}
	return u, true
}

func (w *unitWorld) bindValueSpec(pkg *Package, dir *unitDirective, sp *ast.ValueSpec) {
	u, ok := w.parseDir(dir)
	if !ok {
		return
	}
	for _, name := range sp.Names {
		if obj := pkg.Info.Defs[name]; obj != nil {
			w.objUnits[obj] = u
		}
	}
}

func (w *unitWorld) bindTypeSpec(pkg *Package, dir *unitDirective, sp *ast.TypeSpec) {
	u, ok := w.parseDir(dir)
	if !ok {
		return
	}
	if tn, ok := pkg.Info.Defs[sp.Name].(*types.TypeName); ok {
		w.typeUnits[tn] = u
	}
}

func (w *unitWorld) bindField(pkg *Package, dir *unitDirective, field *ast.Field) {
	u, ok := w.parseDir(dir)
	if !ok {
		return
	}
	for _, name := range field.Names {
		if obj := pkg.Info.Defs[name]; obj != nil {
			w.objUnits[obj] = u
		}
	}
}

// bindInterfaceMethod annotates an interface method's single result, so
// calls through the interface carry the unit without resolving impls.
func (w *unitWorld) bindInterfaceMethod(pkg *Package, dir *unitDirective, field *ast.Field) {
	u, ok := w.parseDir(dir)
	if !ok {
		return
	}
	for _, name := range field.Names {
		fn, ok := pkg.Info.Defs[name].(*types.Func)
		if !ok {
			continue
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil || sig.Results().Len() != 1 {
			w.pass.Reportf(dir.c.Pos(), "//harmony:unit(%s) on interface method %s needs exactly one result", dir.expr, name.Name)
			continue
		}
		w.setResultUnit(fn, 0, u)
	}
}

func (w *unitWorld) setResultUnit(fn *types.Func, idx int, u unit) {
	fn = fn.Origin()
	m := w.resultUnits[fn]
	if m == nil {
		m = make(map[int]unit)
		w.resultUnits[fn] = m
	}
	m[idx] = u
}

// bindFuncDoc binds doc-comment directives to parameters, named results,
// the receiver, or result indices.
func (w *unitWorld) bindFuncDoc(pkg *Package, dir *unitDirective, d *ast.FuncDecl) {
	u, ok := w.parseDir(dir)
	if !ok {
		return
	}
	fn, ok := pkg.Info.Defs[d.Name].(*types.Func)
	if !ok {
		return
	}
	sig := fn.Type().(*types.Signature)
	fields := strings.Fields(dir.rest)
	if len(fields) == 0 {
		w.pass.Reportf(dir.c.Pos(), "//harmony:unit(%s) on a function needs a binding: a parameter/result name or `return [i]`", dir.expr)
		return
	}
	if fields[0] == "return" {
		idx := 0
		if len(fields) > 1 {
			i, err := strconv.Atoi(fields[1])
			if err != nil {
				w.pass.Reportf(dir.c.Pos(), "//harmony:unit(%s) return: bad result index %q", dir.expr, fields[1])
				return
			}
			idx = i
		}
		if idx < 0 || idx >= sig.Results().Len() {
			w.pass.Reportf(dir.c.Pos(), "//harmony:unit(%s) return %d: %s has %d result(s)", dir.expr, idx, d.Name.Name, sig.Results().Len())
			return
		}
		w.setResultUnit(fn, idx, u)
		return
	}
	name := fields[0]
	var bound bool
	bindVar := func(v *types.Var) {
		if v != nil && v.Name() == name {
			w.objUnits[v] = u
			bound = true
		}
	}
	bindVar(sig.Recv())
	for i := 0; i < sig.Params().Len(); i++ {
		bindVar(sig.Params().At(i))
	}
	for i := 0; i < sig.Results().Len(); i++ {
		bindVar(sig.Results().At(i))
	}
	if !bound {
		w.pass.Reportf(dir.c.Pos(), "//harmony:unit(%s) %s: %s has no parameter or result named %q", dir.expr, name, d.Name.Name, name)
	}
}

// ---- inference ----

// unitEnv is the per-function inference context: the value-flow summary
// plus a cycle guard over definition sites.
type unitEnv struct {
	w         *unitWorld
	pkg       *Package
	ff        *funcFlow
	inferring map[int]bool
}

func (w *unitWorld) envFor(n *Node) *unitEnv {
	if env, ok := w.envs[n]; ok {
		return env
	}
	env := &unitEnv{w: w, pkg: n.Pkg, ff: newFuncFlow(n), inferring: make(map[int]bool)}
	w.envs[n] = env
	return env
}

// typeUnit resolves a named-type annotation for an expression type.
func (w *unitWorld) typeUnit(t types.Type) (unit, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return unit{}, false
	}
	u, ok := w.typeUnits[named.Obj()]
	return u, ok
}

// unitOf infers the unit of an expression: annotations first, then the
// def-use chains, static call summaries, and the scale-hop algebra.
// Unknown is contagious through products and quotients; additions adopt
// the known side (absence of annotation is not evidence of a bug).
func (env *unitEnv) unitOf(e ast.Expr) unit {
	info := env.pkg.Info
	e = astUnparen(e)
	tv, hasTV := info.Types[e]
	if hasTV && tv.Value != nil {
		// Constants are dimensionless unless their declaration or type
		// says otherwise (trace.Hour is s); hops handled at the operator.
		if u, ok := env.annotConst(e, tv.Type); ok {
			return u
		}
		return scalarUnit
	}
	if hasTV {
		if u, ok := env.w.typeUnit(tv.Type); ok {
			return u
		}
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if u, ok := env.w.objUnits[obj]; ok {
			return u
		}
		if v, ok := obj.(*types.Var); ok && env.ff != nil && env.ff.tracked[v] {
			return env.unitOfDefs(x)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			if u, ok := env.w.objUnits[sel.Obj()]; ok {
				return u
			}
		}
		if u, ok := env.w.objUnits[info.Uses[x.Sel]]; ok {
			return u
		}
	case *ast.IndexExpr:
		return env.unitOf(x.X) // elements of an annotated series share its unit
	case *ast.CallExpr:
		return env.unitOfCall(x)
	case *ast.BinaryExpr:
		return env.unitOfBinary(x)
	case *ast.UnaryExpr:
		if x.Op == token.SUB || x.Op == token.ADD {
			return env.unitOf(x.X)
		}
	}
	return unit{}
}

// annotConst resolves an annotated constant's unit: an Ident/Selector
// whose object carries an annotation, or a constant of an annotated
// named type (FlatPrice(0.10)).
func (env *unitEnv) annotConst(e ast.Expr, t types.Type) (unit, bool) {
	info := env.pkg.Info
	switch x := astUnparen(e).(type) {
	case *ast.Ident:
		if u, ok := env.w.objUnits[info.Uses[x]]; ok {
			return u, true
		}
	case *ast.SelectorExpr:
		if u, ok := env.w.objUnits[info.Uses[x.Sel]]; ok {
			return u, true
		}
	}
	return env.w.typeUnit(t)
}

// constPolymorphic reports whether e is a constant with no declared
// unit: literals adopt whatever unit their context demands.
func (env *unitEnv) constPolymorphic(e ast.Expr) bool {
	e = astUnparen(e)
	tv, ok := env.pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	_, annotated := env.annotConst(e, tv.Type)
	return !annotated
}

// unitOfDefs unifies the units of the definitions reaching a use: the
// phi-at-join approximation. Conflicting or opaque defs yield unknown.
func (env *unitEnv) unitOfDefs(id *ast.Ident) unit {
	out := unit{}
	for _, d := range env.ff.defsFor(id) {
		if env.inferring[d.id] {
			continue // cycle (loop-carried def): the acyclic defs decide
		}
		var u unit
		switch d.kind {
		case defAssign:
			if env.constPolymorphic(d.rhs) {
				continue // sum := 0.0 adopts the unit flowing in later
			}
			env.inferring[d.id] = true
			u = env.unitOf(d.rhs)
			delete(env.inferring, d.id)
		case defCompound:
			as, _ := d.node.(*ast.AssignStmt)
			if as == nil || (as.Tok != token.ADD_ASSIGN && as.Tok != token.SUB_ASSIGN) {
				return unit{} // *= and /= change the unit; give up
			}
			env.inferring[d.id] = true
			u = env.unitOf(as.Rhs[0])
			delete(env.inferring, d.id)
		case defRange:
			env.inferring[d.id] = true
			u = env.unitOf(d.rng.X)
			delete(env.inferring, d.id)
		case defZero, defIncDec:
			continue // zero values and counters adopt the flowing unit
		default: // defParam (unannotated), defOpaque
			return unit{}
		}
		if !u.known {
			return unit{}
		}
		if !out.known {
			out = u
			continue
		}
		if !out.compatible(u) {
			return unit{}
		}
	}
	return out
}

// unitPreservingMath lists 1-argument math functions that return their
// argument's unit.
var unitPreservingMath = map[string]bool{
	"Abs": true, "Floor": true, "Ceil": true, "Round": true, "Trunc": true,
}

func (env *unitEnv) unitOfCall(x *ast.CallExpr) unit {
	info := env.pkg.Info
	if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
		if len(x.Args) != 1 {
			return unit{}
		}
		u := env.unitOf(x.Args[0])
		if u.known {
			return u
		}
		// An unannotated integer expression is a count: dimensionless.
		if at, ok := info.Types[x.Args[0]]; ok {
			if b, ok := at.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
				return scalarUnit
			}
		}
		return unit{}
	}
	if lenCallArg(info, x) != nil {
		return scalarUnit
	}
	fn := unitCallee(info, x)
	if fn == nil {
		return unit{}
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "math" {
		if unitPreservingMath[fn.Name()] && len(x.Args) == 1 {
			return env.unitOf(x.Args[0])
		}
		if (fn.Name() == "Max" || fn.Name() == "Min") && len(x.Args) == 2 {
			lu, ru := env.unitOf(x.Args[0]), env.unitOf(x.Args[1])
			if lu.known && ru.known && lu.compatible(ru) {
				return lu
			}
		}
		return unit{}
	}
	if m, ok := env.w.resultUnits[fn.Origin()]; ok {
		if u, ok := m[0]; ok {
			return u
		}
	}
	return env.w.summary(fn)
}

// unitCallee resolves the statically known callee, including interface
// methods (whose annotation stands in for every implementation).
func unitCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	if sel, ok := astUnparen(call.Fun).(*ast.SelectorExpr); ok {
		if selection, ok := info.Selections[sel]; ok {
			if fn, ok := selection.Obj().(*types.Func); ok {
				return fn
			}
		}
	}
	return staticCallee(info, call)
}

// summary infers a single-result function's unit from its return
// expressions — the interprocedural propagation for exact static calls.
// Memoized; cycles resolve to unknown.
func (w *unitWorld) summary(fn *types.Func) unit {
	fn = fn.Origin()
	if u, ok := w.summaries[fn]; ok {
		return u
	}
	if w.summarizing[fn] {
		return unit{}
	}
	node := w.pass.Graph.NodeOf(fn)
	if node == nil || !unitAnnotCovered(node.Pkg.Path) {
		return unit{}
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Results().Len() != 1 {
		w.summaries[fn] = unit{}
		return unit{}
	}
	if u, ok := w.objUnits[sig.Results().At(0)]; ok { // annotated named result
		w.summaries[fn] = u
		return u
	}
	w.summarizing[fn] = true
	defer delete(w.summarizing, fn)
	env := w.envFor(node)
	out := unit{}
	ok := true
	forEachOwnNode(node.Body(), func(n ast.Node) {
		ret, isRet := n.(*ast.ReturnStmt)
		if !isRet || !ok || len(ret.Results) != 1 {
			if isRet && len(ret.Results) == 0 {
				ok = false // naked return of an unannotated named result
			}
			return
		}
		u := env.unitOf(ret.Results[0])
		if !u.known {
			ok = false
			return
		}
		if !out.known {
			out = u
			return
		}
		if !out.compatible(u) {
			ok = false
		}
	})
	if !ok {
		out = unit{}
	}
	w.summaries[fn] = out
	return out
}

func constFloat(info *types.Info, e ast.Expr) (float64, bool) {
	tv, ok := info.Types[astUnparen(e)]
	if !ok || tv.Value == nil {
		return 0, false
	}
	if tv.Value.Kind() != constant.Int && tv.Value.Kind() != constant.Float {
		return 0, false
	}
	f, _ := constant.Float64Val(tv.Value)
	return f, true
}

func (env *unitEnv) unitOfBinary(x *ast.BinaryExpr) unit {
	info := env.pkg.Info
	switch x.Op {
	case token.MUL, token.QUO:
		lu, ru := env.unitOf(x.X), env.unitOf(x.Y)
		// Scale hops: multiplying dimensioned data by a recognized
		// conversion constant moves it between scales of its dimension.
		if c, ok := constFloat(info, x.Y); ok && isConversionConst(c) && lu.known && !lu.dims.isScalar() {
			if x.Op == token.MUL {
				return lu.rescale(c)
			}
			return lu.rescale(1 / c)
		}
		if c, ok := constFloat(info, x.X); ok && isConversionConst(c) && x.Op == token.MUL && ru.known && !ru.dims.isScalar() {
			return ru.rescale(c)
		}
		if x.Op == token.MUL {
			return lu.mul(ru)
		}
		return lu.div(ru)
	case token.ADD, token.SUB:
		// A unit-polymorphic constant adopts the other side's unit.
		if env.constPolymorphic(x.X) {
			return env.unitOf(x.Y)
		}
		if env.constPolymorphic(x.Y) {
			return env.unitOf(x.X)
		}
		lu, ru := env.unitOf(x.X), env.unitOf(x.Y)
		if lu.known && ru.known && lu.compatible(ru) {
			return lu
		}
		// Mismatches are the checker's to report; an unknown side is
		// contagious (45 + 215*avg is not a dimensionless sum).
		return unit{}
	case token.REM:
		return env.unitOf(x.X)
	}
	return unit{}
}

// ---- checks ----

var unitCompareOps = map[token.Token]bool{
	token.EQL: true, token.NEQ: true,
	token.LSS: true, token.LEQ: true, token.GTR: true, token.GEQ: true,
}

func (w *unitWorld) checkFunc(n *Node) {
	env := w.envFor(n)
	info := n.Pkg.Info
	forEachOwnNode(n.Body(), func(nd ast.Node) {
		switch x := nd.(type) {
		case *ast.BinaryExpr:
			env.checkBinary(x)
		case *ast.AssignStmt:
			env.checkAssign(x)
		case *ast.CompositeLit:
			env.checkCompositeLit(x)
		case *ast.CallExpr:
			env.checkCallArgs(x)
		case *ast.ReturnStmt:
			if n.Fn != nil {
				env.checkReturn(n.Fn, x)
			}
		}
	})
	_ = info
}

// reportMismatch renders the two flavors of disagreement: different
// dimensions ("unit mismatch") and same dimension at different scales
// ("scale mixing" / "unannotated scale hop").
func (env *unitEnv) scaleHint(from, to unit) string {
	f := from.scale / to.scale
	if f >= 1 {
		return fmt.Sprintf("*%g", f)
	}
	return fmt.Sprintf("/%g", 1/f)
}

func (env *unitEnv) checkBinary(x *ast.BinaryExpr) {
	if x.Op != token.ADD && x.Op != token.SUB && !unitCompareOps[x.Op] {
		return
	}
	if env.constPolymorphic(x.X) || env.constPolymorphic(x.Y) {
		return // a literal adopts the other side's unit
	}
	lu, ru := env.unitOf(x.X), env.unitOf(x.Y)
	if !lu.known || !ru.known || lu.compatible(ru) {
		return
	}
	op := x.Op.String()
	if lu.sameDims(ru) {
		env.w.pass.ReportPathf(x.OpPos, env.witness(x),
			"scale mixing: %s %s %s without an annotated conversion (%s the %s side)",
			lu, op, ru, env.scaleHint(lu, ru), lu)
		return
	}
	env.w.pass.ReportPathf(x.OpPos, env.witness(x), "unit mismatch: %s %s %s", lu, op, ru)
}

// targetUnit resolves the declared unit of an assignable target.
func (env *unitEnv) targetUnit(lhs ast.Expr) (unit, bool) {
	info := env.pkg.Info
	lhs = astUnparen(lhs)
	switch x := lhs.(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if u, ok := env.w.objUnits[obj]; ok {
			return u, true
		}
		if obj != nil {
			if u, ok := env.w.typeUnit(obj.Type()); ok {
				return u, true
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			if u, ok := env.w.objUnits[sel.Obj()]; ok {
				return u, true
			}
		}
		if u, ok := env.w.objUnits[info.Uses[x.Sel]]; ok {
			return u, true
		}
		if tv, ok := info.Types[x]; ok {
			if u, ok := env.w.typeUnit(tv.Type); ok {
				return u, true
			}
		}
	case *ast.IndexExpr:
		return env.targetUnit(x.X)
	case *ast.StarExpr:
		return env.targetUnit(x.X)
	}
	return unit{}, false
}

func (env *unitEnv) checkAssign(x *ast.AssignStmt) {
	switch x.Tok {
	case token.DEFINE:
		return // a fresh variable adopts its initializer's unit
	case token.ASSIGN:
		if len(x.Lhs) != len(x.Rhs) {
			return
		}
		for i, lhs := range x.Lhs {
			tu, ok := env.targetUnit(lhs)
			if !ok || !tu.known || env.constPolymorphic(x.Rhs[i]) {
				continue
			}
			ru := env.unitOf(x.Rhs[i])
			if !ru.known || tu.compatible(ru) {
				continue
			}
			if tu.sameDims(ru) {
				env.w.pass.ReportPathf(x.Pos(), env.witness(x.Rhs[i]),
					"unannotated scale hop: assigning %s value to %s target %s (convert with %s)",
					ru, tu, types.ExprString(lhs), env.scaleHint(ru, tu))
				continue
			}
			env.w.pass.ReportPathf(x.Pos(), env.witness(x.Rhs[i]),
				"unit mismatch: assigning %s value to %s target %s", ru, tu, types.ExprString(lhs))
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		if env.constPolymorphic(x.Rhs[0]) {
			return
		}
		lu := env.unitOf(x.Lhs[0])
		if tu, ok := env.targetUnit(x.Lhs[0]); ok {
			lu = tu
		}
		ru := env.unitOf(x.Rhs[0])
		if !lu.known || !ru.known || lu.compatible(ru) {
			return
		}
		op := x.Tok.String()
		if lu.sameDims(ru) {
			env.w.pass.ReportPathf(x.Pos(), env.witness(x.Rhs[0]),
				"scale mixing: %s %s %s without an annotated conversion (%s the %s side)",
				lu, op, ru, env.scaleHint(lu, ru), lu)
			return
		}
		env.w.pass.ReportPathf(x.Pos(), env.witness(x.Rhs[0]), "unit mismatch: %s %s %s", lu, op, ru)
	case token.MUL_ASSIGN, token.QUO_ASSIGN:
		tu, ok := env.targetUnit(x.Lhs[0])
		if !ok || !tu.known || tu.dims.isScalar() {
			return
		}
		ru := env.unitOf(x.Rhs[0])
		if c, isConst := constFloat(env.pkg.Info, x.Rhs[0]); isConst && isConversionConst(c) {
			return // an annotated-target rescale in place is on its own head
		}
		if ru.known && !ru.isScalar() {
			env.w.pass.ReportPathf(x.Pos(), env.witness(x.Rhs[0]),
				"unit mismatch: %s by a %s value changes the unit of %s target %s",
				x.Tok, ru, tu, types.ExprString(x.Lhs[0]))
		}
	}
}

func (env *unitEnv) checkCompositeLit(x *ast.CompositeLit) {
	info := env.pkg.Info
	tv, ok := info.Types[x]
	if !ok {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range x.Elts {
		var field *types.Var
		value := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			field, _ = info.Uses[key].(*types.Var)
			value = kv.Value
		} else if i < st.NumFields() {
			field = st.Field(i)
		}
		if field == nil {
			continue
		}
		fu, ok := env.w.objUnits[field]
		if !ok || !fu.known || env.constPolymorphic(value) {
			continue
		}
		vu := env.unitOf(value)
		if !vu.known || fu.compatible(vu) {
			continue
		}
		if fu.sameDims(vu) {
			env.w.pass.ReportPathf(value.Pos(), env.witness(value),
				"unannotated scale hop: field %s is %s but the value is %s (convert with %s)",
				field.Name(), fu, vu, env.scaleHint(vu, fu))
			continue
		}
		env.w.pass.ReportPathf(value.Pos(), env.witness(value),
			"unit mismatch: field %s is %s but the value is %s", field.Name(), fu, vu)
	}
}

func (env *unitEnv) checkCallArgs(x *ast.CallExpr) {
	info := env.pkg.Info
	if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
		return
	}
	fn := unitCallee(info, x)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range x.Args {
		if i >= sig.Params().Len() || (sig.Variadic() && i >= sig.Params().Len()-1) {
			break
		}
		param := sig.Params().At(i)
		pu, ok := env.w.objUnits[param]
		if !ok || !pu.known || env.constPolymorphic(arg) {
			continue
		}
		au := env.unitOf(arg)
		if !au.known || pu.compatible(au) {
			continue
		}
		if pu.sameDims(au) {
			env.w.pass.ReportPathf(arg.Pos(), env.witness(arg),
				"unannotated scale hop: argument %d to %s is %s but parameter %s is %s (convert with %s)",
				i+1, prettyFuncName(fn), au, param.Name(), pu, env.scaleHint(au, pu))
			continue
		}
		env.w.pass.ReportPathf(arg.Pos(), env.witness(arg),
			"unit mismatch: argument %d to %s is %s but parameter %s is %s",
			i+1, prettyFuncName(fn), au, param.Name(), pu)
	}
}

func (env *unitEnv) checkReturn(fn *types.Func, ret *ast.ReturnStmt) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || len(ret.Results) != sig.Results().Len() {
		return
	}
	declared := func(i int) (unit, bool) {
		if m, ok := env.w.resultUnits[fn.Origin()]; ok {
			if u, ok := m[i]; ok {
				return u, true
			}
		}
		u, ok := env.w.objUnits[sig.Results().At(i)]
		return u, ok
	}
	for i, res := range ret.Results {
		ru, ok := declared(i)
		if !ok || !ru.known || env.constPolymorphic(res) {
			continue
		}
		au := env.unitOf(res)
		if !au.known || ru.compatible(au) {
			continue
		}
		if ru.sameDims(au) {
			env.w.pass.ReportPathf(res.Pos(), env.witness(res),
				"unannotated scale hop: returning %s from %s, whose result is declared %s (convert with %s)",
				au, prettyFuncName(fn), ru, env.scaleHint(au, ru))
			continue
		}
		env.w.pass.ReportPathf(res.Pos(), env.witness(res),
			"unit mismatch: returning %s from %s, whose result is declared %s",
			au, prettyFuncName(fn), ru)
	}
}

// witness builds a def-use witness path for a reported expression: the
// definition chain of its first tracked-variable operand, origin first.
func (env *unitEnv) witness(e ast.Expr) []string {
	var id *ast.Ident
	ast.Inspect(e, func(n ast.Node) bool {
		if id != nil {
			return false
		}
		if x, ok := n.(*ast.Ident); ok {
			if v, ok := env.pkg.Info.Uses[x].(*types.Var); ok && env.ff.tracked[v] && len(env.ff.useDefs[x]) > 0 {
				id = x
				return false
			}
		}
		return true
	})
	if id == nil {
		return nil
	}
	return env.ff.defChain(id, 4)
}
