package lint

import (
	"go/ast"
)

// RNGDiscipline requires randomness to be constructed through
// internal/stats (stats.NewRNG) rather than raw math/rand constructors,
// so every stream in the module is a named, seeded source. Only
// internal/stats itself may touch math/rand construction.
var RNGDiscipline = &Analyzer{
	Name: "rngdiscipline",
	Doc:  "require stats.NewRNG instead of raw rand.New/rand.NewSource outside internal/stats",
	Packages: func(pkgPath string) bool {
		return pkgPath != "harmony/internal/stats"
	},
	Run: runRNGDiscipline,
}

func runRNGDiscipline(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath := pass.pkgPathOf(sel.X)
			if pkgPath != "math/rand" && pkgPath != "math/rand/v2" {
				return true
			}
			if rngConstructors[sel.Sel.Name] {
				pass.Reportf(call.Pos(),
					"rand.%s constructs a raw RNG; use stats.NewRNG(seed) so the stream is part of the module's seeded discipline (//harmony:allow rngdiscipline <reason> to permit)",
					sel.Sel.Name)
			}
			return true
		})
	}
}
