package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// parseBody parses one function declaration and returns its body for
// CFG construction. The snippet needs no package clause.
func parseBody(t *testing.T, src string) (*token.FileSet, *ast.BlockStmt) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok {
			return fset, fn.Body
		}
	}
	t.Fatal("no function in snippet")
	return nil, nil
}

func checkCFG(t *testing.T, src, want string) {
	t.Helper()
	fset, body := parseBody(t, src)
	got := NewCFG(body).DebugString(fset)
	want = strings.TrimPrefix(want, "\n")
	if got != want {
		t.Errorf("CFG shape drifted:\n--- want\n%s--- got\n%s", want, got)
	}
}

// TestCFGSelect pins select lowering: the select's own block carries the
// terminator, each comm clause gets a block whose first node is the
// send/recv, and every case (plus default) edges into select.done.
func TestCFGSelect(t *testing.T) {
	checkCFG(t, `
func f(ch chan int, out chan int) {
	x := 0
	select {
	case v := <-ch:
		x = v
	case out <- x:
	default:
		x = 1
	}
	_ = x
}`, `
b0 entry: [x := 0] -> b2 b3 b4
b1 select.done: [_ = x] -> b5
b2 select.case: [v := <-ch] [x = v] -> b1
b3 select.case: [out <- x] -> b1
b4 select.default: [x = 1] -> b1
b5 exit:
`)
}

// TestCFGDeferAndPanic pins two flow facts at once: a defer is an
// ordinary node of its block (registration point, not execution point),
// and a panic-only branch never reaches if.done or exit.
func TestCFGDeferAndPanic(t *testing.T) {
	checkCFG(t, `
func g(cond bool) {
	acquire()
	defer release()
	if cond {
		panic("boom")
	}
}`, `
b0 entry: [acquire()] [defer release()] [cond] -> b1 b2
b1 if.then: [panic("boom")]
b2 if.done: -> b3
b3 exit:
`)
}

// TestCFGLabeledLoops pins labeled break/continue resolution across a
// nested loop: continue outer lands on the for.post block, break outer
// on the outer for.done, and the label point is its own block.
func TestCFGLabeledLoops(t *testing.T) {
	checkCFG(t, `
func h(items [][]int) int {
	sum := 0
outer:
	for i := 0; i < len(items); i++ {
		for _, v := range items[i] {
			if v < 0 {
				continue outer
			}
			if v == 0 {
				break outer
			}
			sum += v
		}
	}
	return sum
}`, `
b0 entry: [sum := 0] -> b1
b1 label.outer: [i := 0] -> b2
b2 for.loop: [i < len(items)] -> b3 b5
b3 for.body: [items[i]] -> b6
b4 for.post: [i++] -> b2
b5 for.done: [return sum] -> b13
b6 range.loop: -> b7 b8
b7 range.body: [v < 0] -> b9 b10
b8 range.done: -> b4
b9 if.then: -> b4
b10 if.done: [v == 0] -> b11 b12
b11 if.then: -> b5
b12 if.done: [sum += v] -> b6
b13 exit:
`)
}

// TestCFGGoto pins goto resolution in both directions: the backward
// goto loop re-enters the labeled block, the forward goto done jumps
// out over statements that then lower into an unreachable dead block.
func TestCFGGoto(t *testing.T) {
	checkCFG(t, `
func gt(n int) int {
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
	goto done
	i = -1
done:
	return i
}`, `
b0 entry: [i := 0] -> b1
b1 label.loop: [i < n] -> b2 b3
b2 if.then: [i++] -> b1
b3 if.done: -> b5
b4 dead: [i = -1] -> b5
b5 label.done: [return i] -> b6
b6 exit:
`)
}

// TestCFGNestedFallthrough pins fallthrough at two nesting depths: the
// inner switch's fallthrough chains case 1 into case 2's body, and the
// outer fallthrough chains case 0's whole aftermath into case 3 —
// without the inner switch's cases leaking into the outer chain.
func TestCFGNestedFallthrough(t *testing.T) {
	checkCFG(t, `
func sw(x int) int {
	n := 0
	switch x {
	case 0:
		switch x {
		case 1:
			n = 1
			fallthrough
		case 2:
			n = 2
		}
		fallthrough
	case 3:
		n += 3
	default:
		n = 9
	}
	return n
}`, `
b0 entry: [n := 0] [x] -> b2 b3 b4
b1 switch.done: [return n] -> b8
b2 switch.case: [0] [x] -> b6 b7 b5
b3 switch.case: [3] [n += 3] -> b1
b4 switch.default: [n = 9] -> b1
b5 switch.done: -> b3
b6 switch.case: [1] [n = 1] -> b7
b7 switch.case: [2] [n = 2] -> b5
b8 exit:
`)
}

// --- dataflow solver ---------------------------------------------------

// kindsProblem collects the set of block kinds traversed from the
// boundary — a may-analysis whose lattice (sets under union) saturates,
// so loops converge. Facts are treated as immutable.
type kindsProblem struct{}

func (kindsProblem) Boundary() map[string]bool { return map[string]bool{} }

func (kindsProblem) Transfer(b *Block, in map[string]bool) map[string]bool {
	out := make(map[string]bool, len(in)+1)
	for k := range in {
		out[k] = true
	}
	out[b.Kind] = true
	return out
}

func (kindsProblem) Merge(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func (kindsProblem) Equal(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func kindSet(m map[string]bool) string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return strings.Join(ks, " ")
}

// TestSolveForward runs the kind-collector forward over a loop wrapping
// a branch: the fixpoint saturates, so the exit sees every reachable
// kind — including both arms, whose facts flow around the back edge.
func TestSolveForward(t *testing.T) {
	_, body := parseBody(t, `
func f(c bool) {
	for c {
		if c {
			work()
		} else {
			rest()
		}
	}
}`)
	c := NewCFG(body)
	sol := Solve(c, kindsProblem{}, Forward)

	in, ok := sol.In[c.Exit]
	if !ok {
		t.Fatal("exit block missing from forward solution")
	}
	if got, want := kindSet(in), "entry for.body for.done for.loop if.done if.else if.then"; got != want {
		t.Errorf("kinds into exit = %q, want %q", got, want)
	}
}

// TestSolveForwardBranchIsolation: without a loop there is no back
// edge, so one arm's fact never leaks into the other — if.then enters
// with only the entry's kinds while the merge point sees both arms.
func TestSolveForwardBranchIsolation(t *testing.T) {
	_, body := parseBody(t, `
func f(c bool) {
	if c {
		work()
	} else {
		rest()
	}
	done()
}`)
	c := NewCFG(body)
	sol := Solve(c, kindsProblem{}, Forward)

	for _, blk := range c.Blocks {
		switch blk.Kind {
		case "if.then":
			if got, want := kindSet(sol.In[blk]), "entry"; got != want {
				t.Errorf("kinds into if.then = %q, want %q", got, want)
			}
		case "if.done":
			if got, want := kindSet(sol.In[blk]), "entry if.else if.then"; got != want {
				t.Errorf("kinds into if.done = %q, want %q", got, want)
			}
		}
	}
}

// TestSolveBackward runs the same collector against the flow: the entry
// block's backward fact holds everything between it and exit.
func TestSolveBackward(t *testing.T) {
	_, body := parseBody(t, `
func f(c bool) {
	if c {
		work()
	}
	done()
}`)
	c := NewCFG(body)
	sol := Solve(c, kindsProblem{}, Backward)

	in, ok := sol.In[c.Entry]
	if !ok {
		t.Fatal("entry block missing from backward solution")
	}
	if got, want := kindSet(in), "exit if.done if.then"; got != want {
		t.Errorf("kinds leaving entry (backward) = %q, want %q", got, want)
	}
}

// liveProblem is textbook liveness — a genuinely backward kill/gen
// problem, unlike the saturating kind-collector above: facts are sets of
// variable names, an assignment kills its target before generating its
// operands, and Transfer replays each block's Nodes in reverse.
type liveProblem struct{}

func (liveProblem) Boundary() map[string]bool { return map[string]bool{} }

func (liveProblem) Transfer(b *Block, in map[string]bool) map[string]bool {
	out := make(map[string]bool, len(in))
	for k := range in {
		out[k] = true
	}
	for i := len(b.Nodes) - 1; i >= 0; i-- {
		n := b.Nodes[i]
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
			if id, ok := as.Lhs[0].(*ast.Ident); ok {
				delete(out, id.Name) // kill before gen: x := x+1 keeps x live
			}
			for _, rhs := range as.Rhs {
				ast.Inspect(rhs, func(n ast.Node) bool {
					if id, ok := n.(*ast.Ident); ok {
						out[id.Name] = true
					}
					return true
				})
			}
			continue
		}
		ast.Inspect(n, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				out[id.Name] = true
			}
			return true
		})
	}
	return out
}

func (liveProblem) Merge(a, b map[string]bool) map[string]bool {
	return kindsProblem{}.Merge(a, b)
}

func (liveProblem) Equal(a, b map[string]bool) bool {
	return kindsProblem{}.Equal(a, b)
}

// TestSolveLiveness drives liveness through the backward solver and
// pins the per-block facts: every parameter is live at function start,
// the killed temporary x is dead there, only a survives into the
// overwriting branch, and only y is live at the join's start.
func TestSolveLiveness(t *testing.T) {
	_, body := parseBody(t, `
func f(a, b, c int) int {
	x := a + b
	y := x * 2
	if c > 0 {
		y = a
	}
	return y
}`)
	c := NewCFG(body)
	sol := Solve(c, liveProblem{}, Backward)

	// Backward flow: Out[blk] is the fact at the block's *start*.
	wantAtStart := map[string]string{
		"entry":   "a b c",
		"if.then": "a",
		"if.done": "y",
	}
	for _, blk := range c.Blocks {
		want, ok := wantAtStart[blk.Kind]
		if !ok {
			continue
		}
		if got := kindSet(sol.Out[blk]); got != want {
			t.Errorf("live at start of %s = %q, want %q", blk.Kind, got, want)
		}
	}
	if live := sol.Out[c.Entry]; live["x"] || live["y"] {
		t.Errorf("x/y live at function start: %q — kills not applied", kindSet(live))
	}
}

// TestSolveSkipsUnreachable: statements after a return lower into a
// "dead" block with no predecessors; the forward solution must omit it
// so path-sensitive checks never report on unreachable code.
func TestSolveSkipsUnreachable(t *testing.T) {
	_, body := parseBody(t, `
func f() int {
	return 1
	x := 2
	_ = x
}`)
	c := NewCFG(body)
	sol := Solve(c, kindsProblem{}, Forward)
	for _, blk := range c.Blocks {
		if blk.Kind != "dead" {
			continue
		}
		if _, ok := sol.In[blk]; ok {
			t.Errorf("dead block b%d has a forward fact; unreachable blocks must be absent", blk.Index)
		}
		return
	}
	t.Fatal("no dead block lowered for code after return")
}
