package lint

// DeferClose is the CFG-accurate successor of the mutexspan analyzer.
// It proves, per function, two release disciplines:
//
//  1. Every acquired resource — a locked mutex, a time.Ticker/Timer, an
//     opened file, an http response — is released on every path that
//     reaches the function exit. Releases may be explicit (Unlock,
//     Stop, Close) or deferred; a deferred release covers every path
//     from its registration point. Ownership transfer is recognized
//     leniently: returning the resource, passing it to another call, or
//     storing it somewhere kills the obligation, as does returning the
//     error value the acquisition produced (the error path where the
//     resource was never valid).
//
//  2. No blocking operation — channel send/receive, select without
//     default, range over a channel, WaitGroup.Wait, time.Sleep,
//     net/http round-trips — runs while a mutex is held. Here deferred
//     unlocks do NOT release: a lock held to function exit is held at
//     the blocking site.
//
// Both checks are flow-sensitive: a resource released on one branch and
// leaked on another is reported with the leaking side's position.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

var DeferClose = &Analyzer{
	Name: "deferclose",
	Doc: "require every acquired resource (locks, tickers, files, response bodies) to be " +
		"released on all paths, and forbid blocking calls while a mutex is held",
	Packages: func(pkgPath string) bool {
		switch pkgPath {
		case "harmony", "harmony/internal/daemon", "harmony/internal/tenant",
			"harmony/internal/metrics", "harmony/internal/sim", "harmony/internal/core",
			"harmony/cmd/harmonyd":
			return true
		}
		return false
	},
	Files: func(pkgPath, filename string) bool {
		base := filename
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		switch pkgPath {
		case "harmony":
			return base == "parallel.go"
		case "harmony/internal/sim":
			return base == "parallel.go"
		case "harmony/internal/core":
			return base == "placement.go"
		}
		return true
	},
	Run: runDeferClose,
}

// resAcq is one outstanding release obligation.
type resAcq struct {
	Pos     token.Pos
	What    string       // rendered resource name for messages
	Release string       // the expected releasing call, for messages
	Obj     types.Object // the variable holding the resource (nil for locks)
	ErrObj  types.Object // the error result of the acquisition, if any
}

// openRes maps resource keys ("lock:e.mu" or "var:<def pos>") to their
// acquisition. The may-analysis union keeps a resource open if any
// incoming path left it open.
type openRes map[string]resAcq

func cloneOpen(o openRes) openRes {
	out := make(openRes, len(o))
	for k, v := range o {
		out[k] = v
	}
	return out
}

func runDeferClose(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncResources(pass, fd.Body)
			checkFuncBlocking(pass, fd.Body)
		}
		// Function literals run the same checks on their own CFGs.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkFuncResources(pass, lit.Body)
				checkFuncBlocking(pass, lit.Body)
			}
			return true
		})
	}
}

// resProblem is the forward may-open-resource analysis.
type resProblem struct{ pass *Pass }

func (p resProblem) Boundary() openRes { return make(openRes) }

func (p resProblem) Transfer(b *Block, in openRes) openRes {
	out := in
	for _, n := range b.Nodes {
		out = applyResOps(p.pass, n, out)
	}
	return out
}

func (p resProblem) Merge(a, b openRes) openRes {
	out := cloneOpen(a)
	for k, vb := range b {
		if va, ok := out[k]; !ok || vb.Pos < va.Pos {
			out[k] = vb
		}
	}
	return out
}

func (p resProblem) Equal(a, b openRes) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		if vb, ok := b[k]; !ok || va.Pos != vb.Pos {
			return false
		}
	}
	return true
}

// applyResOps folds one CFG node into the open-resource fact.
func applyResOps(pass *Pass, n ast.Node, in openRes) openRes {
	out := in
	// Clone lazily, on the first mutation of this node.
	mutate := func() {
		if sameMap(out, in) {
			out = cloneOpen(out)
		}
	}

	// A defer releases at registration for this discipline: every path
	// from here to exit runs it. Any resource or lock the deferred call
	// mentions is considered released.
	if d, ok := n.(*ast.DeferStmt); ok {
		ast.Inspect(d, func(m ast.Node) bool {
			if recv, kind, ok := mutexOp(pass.Pkg, m); ok && (kind == "Unlock" || kind == "RUnlock") {
				ref := resolveLockRef(pass.Pkg, recv)
				if _, held := out["lock:"+ref.Instance]; held {
					mutate()
					delete(out, "lock:"+ref.Instance)
				}
			}
			if id, ok := m.(*ast.Ident); ok {
				if key, tracked := trackedKeyOf(pass, out, id); tracked {
					mutate()
					delete(out, key)
				}
			}
			return true
		})
		return out
	}

	walkNodeOps(n, func(m ast.Node) {
		// Mutex acquire/release.
		if recv, kind, ok := mutexOp(pass.Pkg, m); ok {
			ref := resolveLockRef(pass.Pkg, recv)
			key := "lock:" + ref.Instance
			switch kind {
			case "Lock", "RLock":
				if _, held := out[key]; !held {
					mutate()
					rel := "Unlock"
					if kind == "RLock" {
						rel = "RUnlock"
					}
					out[key] = resAcq{Pos: m.Pos(), What: ref.Instance + " (" + kind + ")", Release: rel}
				}
			case "Unlock", "RUnlock":
				if _, held := out[key]; held {
					mutate()
					delete(out, key)
				}
			}
			return
		}
		// Release methods: x.Close(), x.Stop(), resp.Body.Close().
		if call, ok := m.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Close", "Stop":
					if id := rootIdent(sel.X); id != nil {
						if key, tracked := trackedKeyOf(pass, out, id); tracked {
							mutate()
							delete(out, key)
							return
						}
					}
				}
			}
		}
	})

	// Acquisitions: `x, err := acquire(...)` / `x := acquire(...)`.
	if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
			if what, release, ok := resourceAcquisition(pass, call); ok {
				var obj, errObj types.Object
				if len(as.Lhs) > 0 {
					obj = lhsObj(pass, as.Lhs[0])
				}
				if len(as.Lhs) > 1 {
					errObj = lhsObj(pass, as.Lhs[1])
				}
				if obj != nil {
					mutate()
					out["var:"+obj.Name()+posKey(obj.Pos())] = resAcq{
						Pos: call.Pos(), What: what, Release: release, Obj: obj, ErrObj: errObj,
					}
				}
			}
		}
	}

	// Escape / ownership transfer: a remaining *bare* mention of a
	// tracked variable hands it to someone else (a call argument, a
	// return value, a store), and returning the acquisition's error
	// value is the path where the resource was never valid. Both kill
	// the obligation. Selector-rooted uses (t.C, resp.StatusCode) only
	// read through the resource and keep it tracked.
	protected := make(map[*ast.Ident]bool)
	ast.Inspect(n, func(m ast.Node) bool {
		if sel, ok := m.(*ast.SelectorExpr); ok {
			if id := rootIdent(sel.X); id != nil {
				protected[id] = true
			}
		}
		return true
	})
	ast.Inspect(n, func(m ast.Node) bool {
		if lit, isLit := m.(*ast.FuncLit); isLit {
			// A closure capturing the resource takes over its lifetime.
			for _, obj := range capturedIn(pass, lit) {
				if key, tracked := trackedObjKey(out, obj); tracked {
					mutate()
					delete(out, key)
				}
			}
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Pkg.Info.Uses[id]
		if obj == nil {
			return true
		}
		for key, acq := range out {
			if acq.Obj == obj && m.Pos() > acq.Pos && !protected[id] {
				mutate()
				delete(out, key)
			} else if acq.ErrObj != nil && acq.ErrObj == obj && isReturn(n) {
				mutate()
				delete(out, key)
			}
		}
		return true
	})
	return out
}

func sameMap(a, b openRes) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

func isReturn(n ast.Node) bool {
	_, ok := n.(*ast.ReturnStmt)
	return ok
}

func posKey(p token.Pos) string {
	return "@" + strconv.Itoa(int(p)) // unique per definition site
}

// rootIdent walks selector chains to their base identifier: resp in
// resp.Body, t in t.C.
func rootIdent(x ast.Expr) *ast.Ident {
	for {
		switch e := x.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			x = e.X
		case *ast.ParenExpr:
			x = e.X
		default:
			return nil
		}
	}
}

func lhsObj(pass *Pass, x ast.Expr) types.Object {
	id, ok := x.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Pkg.Info.Uses[id]
}

// trackedKeyOf resolves an identifier use to a tracked resource key.
func trackedKeyOf(pass *Pass, open openRes, id *ast.Ident) (string, bool) {
	obj := pass.Pkg.Info.Uses[id]
	if obj == nil {
		return "", false
	}
	return trackedObjKey(open, obj)
}

func trackedObjKey(open openRes, obj types.Object) (string, bool) {
	for key, acq := range open {
		if acq.Obj == obj {
			return key, true
		}
	}
	return "", false
}

// capturedIn lists the objects a function literal references.
func capturedIn(pass *Pass, lit *ast.FuncLit) []types.Object {
	var out []types.Object
	ast.Inspect(lit.Body, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := pass.Pkg.Info.Uses[id]; obj != nil {
				out = append(out, obj)
			}
		}
		return true
	})
	return out
}

// resourceAcquisition recognizes calls that hand back a resource with a
// release obligation.
func resourceAcquisition(pass *Pass, call *ast.CallExpr) (what, release string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	if pkgPath := importPathOf(pass.Pkg, sel.X); pkgPath != "" {
		switch {
		case pkgPath == "time" && (sel.Sel.Name == "NewTicker" || sel.Sel.Name == "NewTimer"):
			return "time." + sel.Sel.Name, "Stop", true
		case pkgPath == "os" && (sel.Sel.Name == "Open" || sel.Sel.Name == "Create" || sel.Sel.Name == "OpenFile"):
			return "os." + sel.Sel.Name, "Close", true
		case pkgPath == "net/http" && (sel.Sel.Name == "Get" || sel.Sel.Name == "Post" ||
			sel.Sel.Name == "Head" || sel.Sel.Name == "PostForm"):
			return "http." + sel.Sel.Name + " response body", "Body.Close", true
		}
		return "", "", false
	}
	// client.Do / client.Get …: method on *http.Client.
	if selection, okSel := pass.Pkg.Info.Selections[sel]; okSel {
		if fn, okFn := selection.Obj().(*types.Func); okFn && fn.Pkg() != nil {
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
				if named := namedStructOf(recv.Type()); named != nil &&
					fn.Pkg().Path() == "net/http" && named.Obj().Name() == "Client" {
					return "http.Client." + fn.Name() + " response body", "Body.Close", true
				}
			}
		}
	}
	return "", "", false
}

// checkFuncResources reports resources still open on some path reaching
// the function exit.
func checkFuncResources(pass *Pass, body *ast.BlockStmt) {
	cfg := NewCFG(body)
	sol := Solve[openRes](cfg, resProblem{pass: pass}, Forward)

	// Walk exit predecessors: each carries the facts of the paths that
	// end there. Report once per resource, at the acquisition.
	type leak struct {
		acq   resAcq
		retAt token.Pos
	}
	leaks := make(map[string]leak)
	for _, pred := range cfg.Exit.Preds {
		fact, ok := sol.Out[pred]
		if !ok {
			continue
		}
		at := blockEndPos(pred)
		for key, acq := range fact {
			if old, seen := leaks[key]; !seen || at < old.retAt {
				leaks[key] = leak{acq: acq, retAt: at}
			}
		}
	}
	keys := make([]string, 0, len(leaks))
	for k := range leaks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return leaks[keys[i]].acq.Pos < leaks[keys[j]].acq.Pos })
	for _, k := range keys {
		l := leaks[k]
		where := "the function returns"
		if l.retAt != token.NoPos {
			where = "the return at " + shortPos(pass.Pkg.Fset, l.retAt)
		}
		pass.Reportf(l.acq.Pos,
			"%s acquired here is not released on every path: %s without %s — release it or defer the release at acquisition (//harmony:allow deferclose <reason> to permit)",
			l.acq.What, where, l.acq.Release)
	}
}

// blockEndPos is the position of the block's last node (the return, for
// return blocks).
func blockEndPos(blk *Block) token.Pos {
	if len(blk.Nodes) > 0 {
		return blk.Nodes[len(blk.Nodes)-1].Pos()
	}
	if blk.Term != nil {
		return blk.Term.Pos()
	}
	return token.NoPos
}

// checkFuncBlocking reports blocking operations while a mutex is held.
// Locks released only by defer stay held to the exit — exactly the
// semantics the held-span lockset implements.
func checkFuncBlocking(pass *Pass, body *ast.BlockStmt) {
	cfg := NewCFG(body)
	sol := solveLocksets(pass.Pkg, cfg, false, nil)
	for _, blk := range cfg.Blocks {
		in, ok := sol.In[blk]
		if !ok {
			continue
		}
		blk := blk
		walkLockOps(pass.Pkg, blk, in, func(n ast.Node, held heldLocks) {
			if len(held) == 0 || n == blk.Comm {
				return
			}
			if what, ok := blockingNode(pass, n); ok {
				reportBlocked(pass, n.Pos(), what, held)
			}
		})
		// The terminator blocks too: a select without default, a range
		// over a channel.
		out, ok := sol.Out[blk]
		if !ok || len(out) == 0 {
			continue
		}
		switch t := blk.Term.(type) {
		case *ast.SelectStmt:
			if !selectHasDefault(t) {
				reportBlocked(pass, t.Pos(), "select", out)
			}
		case *ast.RangeStmt:
			if tv, ok := pass.Pkg.Info.Types[t.X]; ok && isChanType(tv.Type) {
				reportBlocked(pass, t.Pos(), "range over channel", out)
			}
		}
	}
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blockingNode recognizes blocking operations inside one CFG node.
func blockingNode(pass *Pass, n ast.Node) (string, bool) {
	found := ""
	walkNodeOps(n, func(m ast.Node) {
		if found != "" {
			return
		}
		switch v := m.(type) {
		case *ast.SendStmt:
			found = "channel send"
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				found = "channel receive"
			}
		case *ast.CallExpr:
			if what, ok := blockingOp(pass.Pkg, v); ok {
				found = what
			}
		}
	})
	return found, found != ""
}

func reportBlocked(pass *Pass, pos token.Pos, what string, held heldLocks) {
	hs := sortedHeld(held)
	h := hs[0]
	pass.Reportf(pos,
		"blocking %s while holding %s (acquired at %s): a blocked lock holder stalls every reader of the control plane (//harmony:allow deferclose <reason> to permit)",
		what, describeLock(h.Ref), shortPos(pass.Pkg.Fset, h.Pos))
}
