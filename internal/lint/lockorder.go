package lint

// LockOrder detects potential deadlocks from inconsistent lock
// acquisition order. Per function it runs the may-held lockset analysis
// over the CFG; every acquisition of lock B while some lock A may be
// held adds a directed edge A→B to a module-wide lock-order graph.
// Acquisitions are also propagated interprocedurally: calling a
// function that (transitively) acquires B while holding A adds the same
// edge, with the call chain recorded as the witness. A cycle in the
// order graph means two executions can acquire the same locks in
// opposite orders and deadlock.
//
// Only locks with a module-wide identity (struct fields, package vars)
// participate: two locals named "mu" in different functions are
// different locks. Goroutine-spawn edges and non-local dynamic dispatch
// are excluded from the interprocedural summaries — a spawned goroutine
// does not hold its creator's locks, and CHA candidate sets would
// manufacture order edges no execution takes.

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "build the module lock-acquisition-order graph from per-function locksets " +
		"and report cycles (potential deadlocks) with witness paths",
	RunModule: runLockOrder,
}

// lockorderCovered scopes the analyzer to the concurrent subsystems.
func lockorderCovered(pkgPath, filename string) bool {
	if goleakCovered(pkgPath, filename) && !strings.HasPrefix(pkgPath, "fixture/") {
		return true
	}
	return pkgPath == "harmony/internal/metrics" ||
		strings.HasPrefix(pkgPath, "fixture/lockorder")
}

// acqStep is one hop of an interprocedural acquisition summary: where
// this function acquires the lock, or the call site and callee it
// acquires it through.
type acqStep struct {
	pos    token.Pos
	callee *Node // nil: acquired directly at pos
}

// orderEdge is one A-held-while-acquiring-B observation.
type orderEdge struct {
	from, to string
	pos      token.Pos // the acquisition (or call) site
	heldAt   token.Pos // where the held lock was taken
	fn       *Node
	chain    []string // call-chain witness for interprocedural edges
}

func runLockOrder(pass *ModulePass) {
	g := pass.Graph

	// Pass 1: direct acquisitions per function (module-wide — a covered
	// function may reach lock acquisitions through uncovered helpers).
	acquires := make(map[*Node]map[string]acqStep)
	for _, n := range g.Funcs {
		body := n.Body()
		if body == nil {
			continue
		}
		own := make(map[string]acqStep)
		forEachOwnNode(body, func(a ast.Node) {
			if inDefer(body, a) {
				return
			}
			recv, kind, ok := mutexOp(n.Pkg, a)
			if !ok || (kind != "Lock" && kind != "RLock") {
				return
			}
			ref := resolveLockRef(n.Pkg, recv)
			if ref.Global == "" {
				return
			}
			if _, seen := own[ref.Global]; !seen {
				own[ref.Global] = acqStep{pos: a.Pos()}
			}
		})
		if len(own) > 0 {
			acquires[n] = own
		}
	}

	// Pass 2: transitive closure over call edges, deterministic sweeps
	// to a fixed point. First discovery wins, so witness chains are
	// stable across runs.
	trans := make(map[*Node]map[string]acqStep, len(acquires))
	for n, own := range acquires {
		m := make(map[string]acqStep, len(own))
		for id, s := range own {
			m[id] = s
		}
		trans[n] = m
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Funcs {
			for _, e := range n.Out {
				if !summaryEdgeOK(e) {
					continue
				}
				callee := trans[e.Callee]
				if len(callee) == 0 {
					continue
				}
				mine := trans[n]
				for _, id := range sortedKeys(callee) {
					if _, seen := mine[id]; seen {
						continue
					}
					if mine == nil {
						mine = make(map[string]acqStep)
						trans[n] = mine
					}
					mine[id] = acqStep{pos: e.Pos, callee: e.Callee}
					changed = true
				}
			}
		}
	}

	// Pass 3: order edges from the flow-sensitive locksets of covered
	// functions.
	edges := make(map[[2]string]orderEdge)
	record := func(held lockAcq, to string, at token.Pos, fn *Node, chain []string) {
		from := held.Ref.Global
		if from == "" || from == to {
			return
		}
		key := [2]string{from, to}
		e := orderEdge{from: from, to: to, pos: at, heldAt: held.Pos, fn: fn, chain: chain}
		if old, ok := edges[key]; !ok || posLess(pass.Fset(), e.pos, old.pos) {
			edges[key] = e
		}
	}
	for _, n := range g.Funcs {
		body := n.Body()
		if body == nil || !lockorderCovered(n.Pkg.Path, pass.Fset().Position(n.Pos()).Filename) {
			continue
		}
		posEdges := make(map[token.Pos][]*Edge, len(n.Out))
		for _, e := range n.Out {
			posEdges[e.Pos] = append(posEdges[e.Pos], e)
		}
		cfg := NewCFG(body)
		sol := solveLocksets(n.Pkg, cfg, false, nil)
		for _, blk := range cfg.Blocks {
			in, ok := sol.In[blk]
			if !ok {
				continue
			}
			walkLockOps(n.Pkg, blk, in, func(nd ast.Node, held heldLocks) {
				if len(held) == 0 {
					return
				}
				walkNodeOps(nd, func(a ast.Node) {
					if recv, kind, ok := mutexOp(n.Pkg, a); ok && (kind == "Lock" || kind == "RLock") {
						ref := resolveLockRef(n.Pkg, recv)
						if ref.Global != "" {
							for _, h := range sortedHeld(held) {
								record(h, ref.Global, a.Pos(), n, nil)
							}
						}
						return
					}
					call, ok := a.(*ast.CallExpr)
					if !ok {
						return
					}
					for _, e := range posEdges[call.Pos()] {
						if !summaryEdgeOK(e) {
							continue
						}
						for _, id := range sortedKeys(trans[e.Callee]) {
							chain := acqChain(pass, n, e, id, trans)
							for _, h := range sortedHeld(held) {
								record(h, id, call.Pos(), n, chain)
							}
						}
					}
				})
			})
		}
	}

	reportOrderCycles(pass, edges)
}

// inDefer reports whether node a sits inside a defer statement directly
// under body (not crossing function-literal boundaries, which
// forEachOwnNode already stops at).
func inDefer(body ast.Node, a ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit && n != body {
			return false
		}
		if d, ok := n.(*ast.DeferStmt); ok {
			if d.Pos() <= a.Pos() && a.End() <= d.End() {
				found = true
				return false
			}
			// Still descend: nested non-deferred literals were cut above.
		}
		return true
	})
	return found
}

// acqChain renders the call-chain witness for an interprocedural
// acquisition: caller → call sites → the acquiring function.
func acqChain(pass *ModulePass, n *Node, e *Edge, id string, trans map[*Node]map[string]acqStep) []string {
	chain := []string{n.Name}
	cur := e.Callee
	for i := 0; cur != nil && i < 64; i++ {
		chain = append(chain, cur.Name)
		step, ok := trans[cur][id]
		if !ok {
			break
		}
		cur = step.callee
	}
	return chain
}

func sortedKeys(m map[string]acqStep) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func posLess(fset *token.FileSet, a, b token.Pos) bool {
	pa, pb := fset.Position(a), fset.Position(b)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	return pa.Offset < pb.Offset
}

// reportOrderCycles finds strongly connected components of the order
// graph and reports each as one potential deadlock.
func reportOrderCycles(pass *ModulePass, edges map[[2]string]orderEdge) {
	adj := make(map[string][]string)
	nodes := make(map[string]bool)
	keys := make([][2]string, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		adj[k[0]] = append(adj[k[0]], k[1])
		nodes[k[0]], nodes[k[1]] = true, true
	}
	for _, scc := range sccs(nodes, adj) {
		if len(scc) < 2 {
			continue
		}
		inSCC := make(map[string]bool, len(scc))
		for _, id := range scc {
			inSCC[id] = true
		}
		var cyc []orderEdge
		for _, k := range keys {
			if inSCC[k[0]] && inSCC[k[1]] {
				cyc = append(cyc, edges[k])
			}
		}
		// Report at the earliest witness site; the message walks every
		// edge of the component so the inversion is visible in one read.
		rep := cyc[0]
		for _, e := range cyc[1:] {
			if posLess(pass.Fset(), e.pos, rep.pos) {
				rep = e
			}
		}
		var parts []string
		var path []string
		for _, e := range cyc {
			parts = append(parts, fmt.Sprintf("%s is acquired at %s (in %s) while holding %s",
				e.to, shortPos(pass.Fset(), e.pos), e.fn.Name, e.from))
			if len(e.chain) > 0 {
				path = append(path, fmt.Sprintf("%s → %s via %s",
					e.from, e.to, strings.Join(e.chain, " → ")))
			} else {
				path = append(path, fmt.Sprintf("%s → %s in %s", e.from, e.to, e.fn.Name))
			}
		}
		pass.ReportPathf(rep.pos, path,
			"potential deadlock: inconsistent lock order between %s: %s (//harmony:allow lockorder <reason> to permit)",
			strings.Join(scc, ", "), strings.Join(parts, "; "))
	}
}

// shortPos renders a position as base-filename:line for messages.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}

// sccs computes strongly connected components (Tarjan), visiting nodes
// in sorted order so the output is deterministic. Components are
// returned with their members sorted.
func sccs(nodes map[string]bool, adj map[string][]string) [][]string {
	order := make([]string, 0, len(nodes))
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)

	index := make(map[string]int, len(nodes))
	low := make(map[string]int, len(nodes))
	onStack := make(map[string]bool, len(nodes))
	var stack []string
	var out [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			out = append(out, comp)
		}
	}
	for _, v := range order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
