package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// FloatEq flags == and != between floating-point values. Exact float
// equality silently diverges across refactors that reassociate
// arithmetic; comparisons belong in a tolerance helper. Three idioms stay
// legal: comparison against an exact-zero constant (sentinel checks),
// fully constant comparisons, and self-comparison (the x != x NaN test),
// plus anything inside a function whose name marks it as a tolerance
// helper (approx/almost/near/tol/close).
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= on floats outside tolerance helpers",
	Run:  runFloatEq,
}

var toleranceFunc = regexp.MustCompile(`(?i)(approx|almost|near|tol|close)`)

func runFloatEq(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && toleranceFunc.MatchString(fd.Name.Name) {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op.String() != "==" && be.Op.String() != "!=") {
					return true
				}
				xt, yt := info.Types[be.X], info.Types[be.Y]
				if !isFloat(xt.Type) && !isFloat(yt.Type) {
					return true
				}
				if xt.Value != nil && yt.Value != nil {
					return true // fully constant, decided at compile time
				}
				if isZeroConst(xt.Value) || isZeroConst(yt.Value) {
					return true // exact-zero sentinel check
				}
				if types.ExprString(be.X) == types.ExprString(be.Y) {
					return true // x != x NaN idiom
				}
				pass.Reportf(be.OpPos,
					"float %s comparison; use a tolerance helper or compare against an exact-zero sentinel (//harmony:allow floateq <reason> to permit)",
					be.Op)
				return true
			})
		}
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isZeroConst(v constant.Value) bool {
	if v == nil {
		return false
	}
	f, ok := constant.Float64Val(constant.ToFloat(v))
	return ok && f == 0
}
