package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// MutexSpan flags blocking operations — channel sends and receives,
// select, range-over-channel, sync.WaitGroup.Wait, time.Sleep, and
// net/http round-trips — executed while a sync.Mutex/RWMutex is held. In
// the daemon a lock held across a blocking call stalls ingest (or
// deadlocks outright when the unblocking party needs the same lock); the
// engine's contract is that mu guards state copies only. The analysis is
// a per-function linear scan: defer'd unlocks keep the lock held to the
// end of the function, and goroutine bodies do not inherit the caller's
// locks.
var MutexSpan = &Analyzer{
	Name: "mutexspan",
	Doc:  "flag blocking calls (channel ops, select, http, Wait, Sleep) while holding a mutex",
	Packages: func(pkgPath string) bool {
		return pkgPath == "harmony/internal/daemon" || pkgPath == "harmony/internal/sim"
	},
	Files: func(pkgPath, filename string) bool {
		if pkgPath == "harmony/internal/sim" {
			return filepath.Base(filename) == "parallel.go"
		}
		return true
	},
	Run: runMutexSpan,
}

func runMutexSpan(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					walkLockSpan(pass, fn.Body.List, map[string]token.Pos{})
				}
			case *ast.FuncLit:
				// Each literal gets its own empty span: closures and
				// goroutine bodies do not inherit the caller's locks.
				walkLockSpan(pass, fn.Body.List, map[string]token.Pos{})
			}
			return true
		})
	}
}

// walkLockSpan scans statements in order, tracking which mutexes are held
// and reporting blocking operations inside a held span. held maps the
// receiver expression (e.g. "e.mu") to the position of its Lock call.
func walkLockSpan(pass *Pass, stmts []ast.Stmt, held map[string]token.Pos) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ast.ExprStmt:
			if recv, kind, ok := mutexCall(pass, st.X); ok {
				switch kind {
				case "Lock", "RLock":
					held[recv] = st.Pos()
				case "Unlock", "RUnlock":
					delete(held, recv)
				}
				continue
			}
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held to function end; any
			// other defer is irrelevant to the span.
			continue
		case *ast.BlockStmt:
			walkLockSpan(pass, st.List, held)
			continue
		case *ast.IfStmt:
			if len(held) > 0 {
				checkBlocking(pass, st.Init, held)
				checkBlocking(pass, st.Cond, held)
			}
			walkLockSpan(pass, st.Body.List, copyHeld(held))
			if st.Else != nil {
				walkLockSpan(pass, []ast.Stmt{st.Else}, copyHeld(held))
			}
			continue
		case *ast.ForStmt:
			if len(held) > 0 {
				checkBlocking(pass, st.Init, held)
				checkBlocking(pass, st.Cond, held)
				checkBlocking(pass, st.Post, held)
			}
			walkLockSpan(pass, st.Body.List, copyHeld(held))
			continue
		case *ast.RangeStmt:
			if len(held) > 0 {
				if tv, ok := pass.Pkg.Info.Types[st.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						reportHeld(pass, st.Pos(), "range over channel", held)
					}
				}
				checkBlocking(pass, st.X, held)
			}
			walkLockSpan(pass, st.Body.List, copyHeld(held))
			continue
		case *ast.SwitchStmt, *ast.TypeSwitchStmt:
			if len(held) > 0 {
				checkBlocking(pass, st, held)
			}
			continue
		case *ast.GoStmt:
			// The spawned goroutine runs outside the caller's lock span;
			// its own body is walked as a FuncLit by runMutexSpan.
			continue
		}
		if len(held) > 0 {
			checkBlocking(pass, s, held)
		}
	}
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	c := make(map[string]token.Pos, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

// checkBlocking reports the first blocking operation found under n.
// FuncLit bodies are skipped: a closure merely defined under the lock
// does not execute under it unless called, and goroutine bodies never
// inherit the span.
func checkBlocking(pass *Pass, n ast.Node, held map[string]token.Pos) {
	if n == nil {
		return
	}
	info := pass.Pkg.Info
	reported := false
	report := func(pos token.Pos, what string) {
		if reported {
			return
		}
		reported = true
		reportHeld(pass, pos, what, held)
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if reported {
			return false
		}
		switch v := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			report(v.Pos(), "channel send")
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				report(v.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			report(v.Pos(), "select")
			return false
		case *ast.RangeStmt:
			if tv, ok := info.Types[v.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					report(v.Pos(), "range over channel")
				}
			}
		case *ast.CallExpr:
			if what, ok := blockingCall(pass, v); ok {
				report(v.Pos(), what)
			}
		}
		return true
	})
}

// reportHeld emits one diagnostic naming the first held lock in sorted
// order, so the message itself is deterministic.
func reportHeld(pass *Pass, pos token.Pos, what string, held map[string]token.Pos) {
	recv := ""
	for r := range held {
		if recv == "" || r < recv {
			recv = r
		}
	}
	pass.Reportf(pos,
		"%s while holding %s (locked at line %d); blocking under a lock stalls every other waiter — move it outside the critical section (//harmony:allow mutexspan <reason> to permit)",
		what, recv, pass.Pkg.Fset.Position(held[recv]).Line)
}

// blockingCall reports whether the call is a known blocking operation.
func blockingCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if pkgPath := pass.pkgPathOf(sel.X); pkgPath != "" {
		switch {
		case pkgPath == "net/http":
			return "net/http." + sel.Sel.Name + " round-trip", true
		case pkgPath == "time" && sel.Sel.Name == "Sleep":
			return "time.Sleep", true
		}
		return "", false
	}
	// Method calls: http.Client round-trips and WaitGroup.Wait.
	selection, ok := pass.Pkg.Info.Selections[sel]
	if !ok {
		return "", false
	}
	obj := selection.Obj()
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	rt := recv.Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return "", false
	}
	owner := named.Obj()
	switch {
	case fn.Pkg().Path() == "net/http" && owner.Name() == "Client":
		return "http.Client." + fn.Name() + " round-trip", true
	case fn.Pkg().Path() == "sync" && owner.Name() == "WaitGroup" && fn.Name() == "Wait":
		return "sync.WaitGroup.Wait", true
	}
	return "", false
}

// mutexCall recognizes x.Lock/RLock/Unlock/RUnlock where the method is
// sync.Mutex's or sync.RWMutex's (directly or promoted through
// embedding), returning the receiver expression as the lock's identity.
func mutexCall(pass *Pass, e ast.Expr) (recv, kind string, ok bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	selection, ok := pass.Pkg.Info.Selections[sel]
	if !ok {
		return "", "", false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}
