package lint

import (
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// renderDiags flattens diagnostics (including witness paths) into one
// byte string so runs can be compared for literal equality.
func renderDiags(ds []Diagnostic) string {
	var sb strings.Builder
	for _, d := range ds {
		sb.WriteString(d.String())
		for _, step := range d.Path {
			sb.WriteString(" <- ")
			sb.WriteString(step)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestDeterministicUnderGOMAXPROCS pins the concurrent engine's core
// contract: the rendered findings of a full multi-analyzer run are
// byte-identical at GOMAXPROCS 1, 4, and 8. The fixture trees are rich
// enough that every analyzer contributes findings, so a scheduling-
// dependent merge would show up as a reordered or dropped line.
func TestDeterministicUnderGOMAXPROCS(t *testing.T) {
	var pkgs []*Package
	for _, az := range All() {
		if az.Name == UnusedAllow.Name {
			continue
		}
		tree, err := sharedLoader(t).LoadFixtureTree(filepath.Join("testdata", "src", az.Name))
		if err != nil {
			t.Fatalf("load fixture %s: %v", az.Name, err)
		}
		pkgs = append(pkgs, tree...)
	}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	var baseline string
	for _, procs := range []int{1, 4, 8} {
		runtime.GOMAXPROCS(procs)
		var rendered []string
		for rep := 0; rep < 3; rep++ {
			got := renderDiags(checkAll(pkgs, All(), false))
			if got == "" {
				t.Fatal("fixture run produced no findings; determinism check is vacuous")
			}
			rendered = append(rendered, got)
		}
		for rep, got := range rendered {
			if baseline == "" {
				baseline = got
				continue
			}
			if got != baseline {
				t.Fatalf("GOMAXPROCS=%d rep=%d: findings differ from baseline:\n%s",
					procs, rep, firstDiff(baseline, got))
			}
		}
	}
}

// TestCheckTimedMatchesCheck pins that the timing wrapper changes
// nothing about the findings and reports one timing per analyzer run.
func TestCheckTimedMatchesCheck(t *testing.T) {
	pkgs, err := sharedLoader(t).LoadFixtureTree(filepath.Join("testdata", "src", "divzero"))
	if err != nil {
		t.Fatal(err)
	}
	azs := []*Analyzer{DivZero, NaNSource}
	plain, _ := checkTimed(pkgs, azs, false)
	timed, timings := checkTimed(pkgs, azs, false)
	if renderDiags(plain) != renderDiags(timed) {
		t.Error("CheckTimed diagnostics differ from Check")
	}
	if len(timings) != 2 || timings[0].Name != "divzero" || timings[1].Name != "nansource" {
		t.Errorf("timings = %v, want one entry each for divzero and nansource", timings)
	}
	for _, tm := range timings {
		if tm.Elapsed < 0 {
			t.Errorf("negative elapsed time for %s: %v", tm.Name, tm.Elapsed)
		}
	}
}

// firstDiff returns a short context around the first differing line.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  baseline: %s\n  got:      %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length differs: %d vs %d lines", len(al), len(bl))
}
