package lint

// A miniature analysistest: fixture packages under testdata/src/<name>
// carry `// want `regexp`` comments on the lines an analyzer must flag;
// runFixture loads the package tree (subdirectories become importable
// fixture sub-packages, so interprocedural analyzers can be exercised
// across package boundaries), runs the analyzer with its production
// package/file scope bypassed (annotation suppression still applies),
// and fails on any missed want or unexpected diagnostic.

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loader, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loader
}

// wantRe matches one expectation: a backtick- or double-quoted regexp
// after the `want` marker.
var wantRe = regexp.MustCompile("// want (`[^`]*`|\"[^\"]*\")")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	var wants []*expectation
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				pat := m[1][1 : len(m[1])-1]
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, pat, err)
				}
				wants = append(wants, &expectation{file: path, line: i + 1, re: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("collect wants: %v", err)
	}
	return wants
}

// runFixture checks one analyzer (or a co-running set, for analyzers
// that depend on each other's bookkeeping, like unusedallow) against the
// fixture tree named after the first analyzer.
func runFixture(t *testing.T, azs ...*Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", azs[0].Name)
	pkgs, err := sharedLoader(t).LoadFixtureTree(dir)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	diags := checkAll(pkgs, azs, false)
	wants := collectWants(t, dir)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want expectations", dir)
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.line != d.Pos.Line || filepath.Base(w.file) != filepath.Base(d.Pos.Filename) {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want %q, got no diagnostic", w.file, w.line, w.re)
		}
	}
}

func TestNoDetermFixture(t *testing.T)      { runFixture(t, NoDeterm) }
func TestRNGDisciplineFixture(t *testing.T) { runFixture(t, RNGDiscipline) }
func TestSortedEmitFixture(t *testing.T)    { runFixture(t, SortedEmit) }
func TestFloatEqFixture(t *testing.T)       { runFixture(t, FloatEq) }
func TestDeterTaintFixture(t *testing.T)    { runFixture(t, DeterTaint) }
func TestCtxFlowFixture(t *testing.T)       { runFixture(t, CtxFlow) }
func TestDeferCloseFixture(t *testing.T)    { runFixture(t, DeferClose) }
func TestLockOrderFixture(t *testing.T)     { runFixture(t, LockOrder) }
func TestLockedFieldFixture(t *testing.T)   { runFixture(t, LockedField) }
func TestGoLeakFixture(t *testing.T)        { runFixture(t, GoLeak) }
func TestHotPathAllocFixture(t *testing.T)  { runFixture(t, HotPathAlloc) }
func TestErrFlowFixture(t *testing.T)       { runFixture(t, ErrFlow) }
func TestUnitCheckFixture(t *testing.T)     { runFixture(t, UnitCheck) }
func TestDivZeroFixture(t *testing.T)       { runFixture(t, DivZero) }
func TestNaNSourceFixture(t *testing.T)     { runFixture(t, NaNSource) }

// unusedallow consumes the other analyzers' suppression bookkeeping, so
// its fixture co-runs floateq: one allow in the fixture suppresses a real
// floateq finding (used), one suppresses nothing (stale, flagged).
func TestUnusedAllowFixture(t *testing.T) { runFixture(t, UnusedAllow, FloatEq) }

// TestTreeClean is the in-test twin of `harmony-lint ./...`: the whole
// module must be free of findings (modulo annotations), so a reverted fix
// or a new violation fails `go test` as well as the lint CI job.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := sharedLoader(t).Load("./...")
	if err != nil {
		t.Fatalf("load ./...: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	for _, d := range Check(pkgs, All()) {
		t.Errorf("%s", d)
	}
}

// TestScopes pins each analyzer's production scope: deterministic
// packages are covered, annex packages are not.
func TestScopes(t *testing.T) {
	cases := []struct {
		az      *Analyzer
		pkg     string
		applies bool
	}{
		{NoDeterm, "harmony/internal/sim", true},
		{NoDeterm, "harmony/internal/daemon", true},
		{NoDeterm, "harmony/cmd/harmonyd", true},
		{NoDeterm, "harmony/internal/forecast", true},
		{NoDeterm, "harmony/internal/classify", true},
		{NoDeterm, "harmony/internal/kmeans", true},
		{NoDeterm, "harmony/internal/trace", true},
		{RNGDiscipline, "harmony/internal/stats", false},
		{RNGDiscipline, "harmony/internal/trace", true},
		{DeferClose, "harmony/internal/daemon", true},
		{DeferClose, "harmony/internal/metrics", true},
		{DeferClose, "harmony/cmd/harmonyd", true},
		{DeferClose, "harmony/internal/stats", false},
	}
	for _, c := range cases {
		if got := c.az.Packages(c.pkg); got != c.applies {
			t.Errorf("%s.Packages(%q) = %v, want %v", c.az.Name, c.pkg, got, c.applies)
		}
	}
	if !DeferClose.Files("harmony/internal/sim", "/x/parallel.go") {
		t.Error("deferclose should cover internal/sim/parallel.go")
	}
	if DeferClose.Files("harmony/internal/sim", "/x/sim.go") {
		t.Error("deferclose should not cover internal/sim/sim.go")
	}
	// Module analyzers scope themselves.
	for _, c := range []struct {
		pkg, file string
		applies   bool
	}{
		{"harmony/internal/daemon", "/x/engine.go", true},
		{"harmony", "/x/parallel.go", true},
		{"harmony", "/x/harmony.go", false},
		{"harmony/internal/sim", "/x/parallel.go", true},
		{"harmony/internal/sim", "/x/sim.go", false},
		{"harmony/internal/core", "/x/placement.go", true},
		{"harmony/internal/core", "/x/relax.go", false},
		{"harmony/internal/stats", "/x/rng.go", false},
	} {
		if got := goleakCovered(c.pkg, c.file); got != c.applies {
			t.Errorf("goleakCovered(%q, %q) = %v, want %v", c.pkg, c.file, got, c.applies)
		}
	}
	if !detertaintDeterministic("harmony/internal/sched") || detertaintDeterministic("harmony/internal/stats") {
		t.Error("detertaint deterministic-package scope wrong")
	}
	// The flow-sensitive analyzers inherit goleak's concurrent-surface
	// scope (plus metrics for the lock-centric ones) and their own
	// fixture trees — but never other analyzers' fixtures.
	if !ctxflowCovered("harmony/internal/tenant", "/x/server.go") ||
		!ctxflowCovered("fixture/ctxflow", "/x/a.go") ||
		ctxflowCovered("fixture/goleak", "/x/a.go") {
		t.Error("ctxflow scope wrong")
	}
	if !lockorderCovered("harmony/internal/metrics", "/x/metrics.go") ||
		!lockorderCovered("fixture/lockorder", "/x/a.go") ||
		lockorderCovered("fixture/goleak", "/x/a.go") ||
		lockorderCovered("harmony/internal/stats", "/x/rng.go") {
		t.Error("lockorder scope wrong")
	}
	if !lockedfieldCovered("harmony/internal/metrics") ||
		!lockedfieldCovered("fixture/lockedfield") ||
		lockedfieldCovered("harmony/internal/core") {
		t.Error("lockedfield scope wrong")
	}
	// The value-flow analyzers share the annotated numeric surface (the
	// energy→cost and demand chains) plus their own fixture trees;
	// unitcheck additionally collects (but does not check) daemon's
	// config annotations.
	for _, pkg := range []string{
		"harmony/internal/energy", "harmony/internal/tenant",
		"harmony/internal/core", "harmony/internal/queueing",
		"harmony/internal/forecast", "harmony/internal/sched",
		"harmony/internal/trace",
	} {
		if !unitcheckCovered(pkg) || !divzeroCovered(pkg) || !nansourceCovered(pkg) {
			t.Errorf("value-flow analyzers should cover %s", pkg)
		}
	}
	if !unitcheckCovered("fixture/unitcheck") || unitcheckCovered("fixture/divzero") ||
		unitcheckCovered("harmony/internal/daemon") || unitcheckCovered("harmony/internal/stats") {
		t.Error("unitcheck scope wrong")
	}
	if !unitAnnotCovered("harmony/internal/daemon") || unitAnnotCovered("harmony/internal/stats") {
		t.Error("unitcheck annotation-collection scope wrong")
	}
	if !divzeroCovered("fixture/divzero") || divzeroCovered("fixture/unitcheck") ||
		divzeroCovered("harmony/internal/lp") {
		t.Error("divzero scope wrong")
	}
	if !nansourceCovered("fixture/nansource") || nansourceCovered("fixture/divzero") ||
		nansourceCovered("harmony/internal/stats") {
		t.Error("nansource scope wrong")
	}
}

func TestByName(t *testing.T) {
	azs, err := ByName([]string{"floateq", "nodeterm", "detertaint"})
	if err != nil || len(azs) != 3 {
		t.Fatalf("ByName: %v %v", azs, err)
	}
	if _, err := ByName([]string{"nosuch"}); err == nil {
		t.Fatal("ByName(nosuch) should fail")
	}
	names := map[string]bool{}
	for _, az := range All() {
		if az.Name == "" || az.Doc == "" {
			t.Errorf("analyzer %+v incomplete", az)
		}
		if az.Run == nil && az.RunModule == nil && az != UnusedAllow {
			t.Errorf("analyzer %s has neither Run nor RunModule", az.Name)
		}
		if az.Run != nil && az.RunModule != nil {
			t.Errorf("analyzer %s has both Run and RunModule", az.Name)
		}
		if names[az.Name] {
			t.Errorf("duplicate analyzer name %s", az.Name)
		}
		names[az.Name] = true
	}
}

// TestAllowGrammar pins the annotation grammar: an annotation binds to
// its own line, the line below, and — through a contiguous comment block
// — the first code line after the block; mismatched analyzer names never
// match, and consultation marks the annotation used.
func TestAllowGrammar(t *testing.T) {
	ann := &allowAnn{analyzer: "floateq", pos: token.Position{Filename: "f.go", Line: 10}}
	set := &allowSet{byLine: map[string]map[int][]*allowAnn{}, anns: []*allowAnn{ann}}
	set.bind(ann, 10)
	set.bind(ann, 11)
	for _, c := range []struct {
		line int
		name string
		want bool
	}{
		{10, "floateq", true},  // same line
		{11, "floateq", true},  // line below the comment
		{12, "floateq", false}, // too far
		{10, "nodeterm", false},
	} {
		pos := token.Position{Filename: "f.go", Line: c.line}
		if got := set.allows(c.name, pos); got != c.want {
			t.Errorf("allows(%s, line %d) = %v, want %v", c.name, c.line, got, c.want)
		}
	}
	if !ann.used {
		t.Error("matching consultation should mark the annotation used")
	}
}
