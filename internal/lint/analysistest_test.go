package lint

// A miniature analysistest: fixture packages under testdata/src/<name>
// carry `// want `regexp`` comments on the lines an analyzer must flag;
// runFixture loads the package, runs the analyzer with its production
// package/file scope bypassed (annotation suppression still applies), and
// fails on any missed want or unexpected diagnostic.

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loader, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loader
}

// wantRe matches one expectation: a backtick- or double-quoted regexp
// after the `want` marker.
var wantRe = regexp.MustCompile("// want (`[^`]*`|\"[^\"]*\")")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read fixture: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				pat := m[1][1 : len(m[1])-1]
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, pat, err)
				}
				wants = append(wants, &expectation{file: path, line: i + 1, re: re})
			}
		}
	}
	return wants
}

func runFixture(t *testing.T, az *Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", az.Name)
	pkg, err := sharedLoader(t).LoadDir(dir)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	diags := checkPackage(pkg, []*Analyzer{az}, false)
	wants := collectWants(t, dir)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want expectations", dir)
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.line != d.Pos.Line || filepath.Base(w.file) != filepath.Base(d.Pos.Filename) {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want %q, got no diagnostic", w.file, w.line, w.re)
		}
	}
}

func TestNoDetermFixture(t *testing.T)      { runFixture(t, NoDeterm) }
func TestRNGDisciplineFixture(t *testing.T) { runFixture(t, RNGDiscipline) }
func TestSortedEmitFixture(t *testing.T)    { runFixture(t, SortedEmit) }
func TestFloatEqFixture(t *testing.T)       { runFixture(t, FloatEq) }
func TestMutexSpanFixture(t *testing.T)     { runFixture(t, MutexSpan) }

// TestTreeClean is the in-test twin of `harmony-lint ./...`: the whole
// module must be free of findings (modulo annotations), so a reverted fix
// or a new violation fails `go test` as well as the lint CI job.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := sharedLoader(t).Load("./...")
	if err != nil {
		t.Fatalf("load ./...: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	for _, d := range Check(pkgs, All()) {
		t.Errorf("%s", d)
	}
}

// TestScopes pins each analyzer's production scope: deterministic
// packages are covered, annex packages are not.
func TestScopes(t *testing.T) {
	cases := []struct {
		az      *Analyzer
		pkg     string
		applies bool
	}{
		{NoDeterm, "harmony/internal/sim", true},
		{NoDeterm, "harmony/internal/daemon", true},
		{NoDeterm, "harmony/cmd/harmonyd", true},
		{NoDeterm, "harmony/internal/trace", false},
		{RNGDiscipline, "harmony/internal/stats", false},
		{RNGDiscipline, "harmony/internal/trace", true},
		{MutexSpan, "harmony/internal/daemon", true},
		{MutexSpan, "harmony/internal/metrics", false},
	}
	for _, c := range cases {
		if got := c.az.Packages(c.pkg); got != c.applies {
			t.Errorf("%s.Packages(%q) = %v, want %v", c.az.Name, c.pkg, got, c.applies)
		}
	}
	if !MutexSpan.Files("harmony/internal/sim", "/x/parallel.go") {
		t.Error("mutexspan should cover internal/sim/parallel.go")
	}
	if MutexSpan.Files("harmony/internal/sim", "/x/sim.go") {
		t.Error("mutexspan should not cover internal/sim/sim.go")
	}
}

func TestByName(t *testing.T) {
	azs, err := ByName([]string{"floateq", "nodeterm"})
	if err != nil || len(azs) != 2 {
		t.Fatalf("ByName: %v %v", azs, err)
	}
	if _, err := ByName([]string{"nosuch"}); err == nil {
		t.Fatal("ByName(nosuch) should fail")
	}
	names := map[string]bool{}
	for _, az := range All() {
		if az.Name == "" || az.Doc == "" || az.Run == nil {
			t.Errorf("analyzer %+v incomplete", az)
		}
		if names[az.Name] {
			t.Errorf("duplicate analyzer name %s", az.Name)
		}
		names[az.Name] = true
	}
}

// TestAllowGrammar pins the annotation grammar: same line and line above
// both suppress, mismatched analyzer names do not.
func TestAllowGrammar(t *testing.T) {
	set := allowSet{
		"f.go": {10: {"floateq": true}},
	}
	for _, c := range []struct {
		line int
		name string
		want bool
	}{
		{10, "floateq", true},  // same line
		{11, "floateq", true},  // line below the comment
		{12, "floateq", false}, // too far
		{10, "nodeterm", false},
	} {
		pos := token.Position{Filename: "f.go", Line: c.line}
		if got := set.allows(c.name, pos); got != c.want {
			t.Errorf("allows(%s, line %d) = %v, want %v", c.name, c.line, got, c.want)
		}
	}
}
