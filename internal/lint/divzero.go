package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// DivZero reports divisions and modulos whose denominator may be zero on
// some control path. The analysis is evidence-based: a finding needs
// both the absence of a nonzero proof (from the flow-sensitive fact
// engine: guards, assignments from provably nonzero expressions) and a
// reaching definition that can actually produce zero — a zero-value
// declaration, an assignment of the constant 0, a length taken without a
// nonempty guard, or a static callee that can return 0. Parameters are
// deliberately not evidence (callers own their contracts), which keeps
// the analyzer quiet on the queueing formulas while still catching the
// zero-initialized counter and unguarded len patterns.
var DivZero = &Analyzer{
	Name:      "divzero",
	Doc:       "report divisions whose denominator has a zero-producing reaching definition and no nonzero guard",
	RunModule: runDivZero,
}

func divzeroCovered(pkgPath string) bool {
	return unitNumericPkgs[pkgPath] || strings.HasPrefix(pkgPath, "fixture/divzero")
}

func runDivZero(pass *ModulePass) {
	zeroReturns := make(map[*types.Func]bool)
	for _, n := range pass.Graph.Funcs {
		if !divzeroCovered(n.Pkg.Path) {
			continue
		}
		checkDivZero(pass, n, zeroReturns)
	}
}

func checkDivZero(pass *ModulePass, fn *Node, zeroReturns map[*types.Func]bool) {
	ff := newFuncFlow(fn)
	if ff == nil {
		return
	}
	fc := newFuncFacts(ff)
	info := fn.Pkg.Info
	for _, blk := range ff.cfg.Blocks {
		for _, nd := range blk.Nodes {
			st, ok := fc.atNode[nd]
			if !ok {
				continue // unreachable
			}
			inspectOwn(nd, func(n ast.Node) {
				bin, ok := n.(*ast.BinaryExpr)
				if !ok || (bin.Op != token.QUO && bin.Op != token.REM) {
					return
				}
				checkDenominator(pass, ff, fc, st, bin, zeroReturns)
			})
		}
	}
	_ = info
}

// inspectOwn walks a statement's own expressions, skipping nested
// function literals (they are separate call-graph nodes).
func inspectOwn(root ast.Node, f func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}

func checkDenominator(pass *ModulePass, ff *funcFlow, fc *funcFacts, st factState, bin *ast.BinaryExpr, zeroReturns map[*types.Func]bool) {
	info := ff.pkg.Info
	den := bin.Y
	if tv, ok := info.Types[astUnparen(den)]; ok {
		if tv.Value != nil {
			return // constant denominators are the compiler's problem
		}
		if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Info()&types.IsNumeric == 0 {
			return
		}
	}
	if fc.exprBits(st, den)&factNonzero != 0 {
		return // proven nonzero on every path reaching this node
	}
	den = unwrapConv(info, astUnparen(den))
	if arg := lenCallArg(info, den); arg != nil {
		pass.Reportf(bin.OpPos, "possible division by zero: len(%s) is unguarded; check for emptiness first", types.ExprString(arg))
		return
	}
	id, ok := den.(*ast.Ident)
	if !ok {
		return // field/call denominators: no local evidence, stay quiet
	}
	v, _ := info.Uses[id].(*types.Var)
	if v == nil || !ff.tracked[v] {
		return
	}
	for _, d := range ff.defsFor(id) {
		if why, bad := zeroEvidence(pass, ff, fc, d, zeroReturns); bad {
			pass.ReportPathf(bin.OpPos, ff.defChain(id, 4),
				"possible division by zero: %s %s; guard the division", id.Name, why)
			return
		}
	}
}

// zeroEvidence reports whether one reaching definition can produce zero,
// with a human-readable reason.
func zeroEvidence(pass *ModulePass, ff *funcFlow, fc *funcFacts, d *defSite, zeroReturns map[*types.Func]bool) (string, bool) {
	info := ff.pkg.Info
	switch d.kind {
	case defZero:
		return "starts at its zero value", true
	case defAssign:
		rhs := unwrapConv(info, astUnparen(d.rhs))
		if tv, ok := info.Types[rhs]; ok && tv.Value != nil {
			if v, isInt := constant.Val(tv.Value).(int64); isInt && v == 0 {
				return "is assigned the constant 0", true
			}
			if f, ok := constFloatValue(tv.Value); ok && f == 0 {
				return "is assigned the constant 0", true
			}
			return "", false
		}
		if arg := lenCallArg(info, rhs); arg != nil {
			// A length is evidence unless the def site itself sits under
			// a nonempty guard.
			if st, ok := fc.atNode[d.node]; ok {
				if lv := lenFactVar(info, arg); lv != nil && st[factKey{v: lv, isLen: true}]&factNonzero != 0 {
					return "", false
				}
			}
			return "is assigned len(" + types.ExprString(arg) + ") with no nonempty guard", true
		}
		if call, ok := rhs.(*ast.CallExpr); ok {
			if fn := staticCallee(info, call); fn != nil && mayReturnZero(pass, fn, zeroReturns) {
				return "is assigned from " + prettyFuncName(fn) + ", which can return 0", true
			}
		}
	}
	return "", false
}

func constFloatValue(v constant.Value) (float64, bool) {
	if v.Kind() != constant.Int && v.Kind() != constant.Float {
		return 0, false
	}
	f, _ := constant.Float64Val(v)
	return f, true
}

// lenFactVar resolves the variable a len() fact is keyed on.
func lenFactVar(info *types.Info, arg ast.Expr) *types.Var {
	if id, ok := astUnparen(arg).(*ast.Ident); ok {
		v, _ := info.Uses[id].(*types.Var)
		return v
	}
	return nil
}

// mayReturnZero reports whether a statically known callee has a `return
// 0` (or zero-constant result) on some path. Memoized per run.
func mayReturnZero(pass *ModulePass, fn *types.Func, cache map[*types.Func]bool) bool {
	fn = fn.Origin()
	if v, ok := cache[fn]; ok {
		return v
	}
	cache[fn] = false // cycle guard
	node := pass.Graph.NodeOf(fn)
	if node == nil || node.Body() == nil {
		return false
	}
	info := node.Pkg.Info
	out := false
	forEachOwnNode(node.Body(), func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || out {
			return
		}
		for _, res := range ret.Results {
			if tv, ok := info.Types[astUnparen(res)]; ok && tv.Value != nil {
				if f, ok := constFloatValue(tv.Value); ok && f == 0 {
					out = true
				}
			}
		}
	})
	cache[fn] = out
	return out
}
