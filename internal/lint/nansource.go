package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NaNSource flags expressions that can mint NaN or ±Inf and flow into
// plan/cost outputs without a validation guard: math.Sqrt of a value
// with no non-negativity proof, math.Log (and Log2/Log10/Log1p) of a
// value with no positivity proof, and the x/x shape where x may be zero
// (0/0 is NaN even in float arithmetic, where divzero stays quiet).
// Proofs come from the flow-sensitive fact engine, so a dominating
// `if x <= 0 { return ... }` guard silences the finding, as does an
// explicit math.IsNaN/math.IsInf check on the result variable anywhere
// in the function. This complements the ingest-side NaN hardening:
// ingest rejects poisoned inputs, nansource keeps the control path from
// manufacturing its own.
var NaNSource = &Analyzer{
	Name:      "nansource",
	Doc:       "report expressions that can mint NaN/Inf (log/sqrt of unvalidated input, 0/0) without a guard",
	RunModule: runNaNSource,
}

func nansourceCovered(pkgPath string) bool {
	return unitNumericPkgs[pkgPath] || strings.HasPrefix(pkgPath, "fixture/nansource")
}

func runNaNSource(pass *ModulePass) {
	for _, n := range pass.Graph.Funcs {
		if !nansourceCovered(n.Pkg.Path) {
			continue
		}
		checkNaNSource(pass, n)
	}
}

// nanLogFuncs need a strictly positive argument.
var nanLogFuncs = map[string]bool{"Log": true, "Log2": true, "Log10": true, "Log1p": true}

func checkNaNSource(pass *ModulePass, fn *Node) {
	ff := newFuncFlow(fn)
	if ff == nil {
		return
	}
	fc := newFuncFacts(ff)
	info := fn.Pkg.Info
	guarded := nanGuardedVars(fn, info)
	for _, blk := range ff.cfg.Blocks {
		for _, nd := range blk.Nodes {
			st, ok := fc.atNode[nd]
			if !ok {
				continue // unreachable
			}
			if resultVarGuarded(info, nd, guarded) {
				continue
			}
			sink := ""
			if _, ok := nd.(*ast.ReturnStmt); ok {
				sink = " and flows into a return"
			}
			inspectOwn(nd, func(n ast.Node) {
				switch x := n.(type) {
				case *ast.CallExpr:
					checkNaNCall(pass, ff, fc, st, x, sink)
				case *ast.BinaryExpr:
					checkSelfDivide(pass, ff, fc, st, x, sink)
				}
			})
		}
	}
}

func checkNaNCall(pass *ModulePass, ff *funcFlow, fc *funcFacts, st factState, call *ast.CallExpr, sink string) {
	info := ff.pkg.Info
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "math" || len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	bits := fc.exprBits(st, arg)
	switch {
	case fn.Name() == "Sqrt":
		if bits&factNonneg != 0 {
			return
		}
		pass.ReportPathf(call.Lparen, nanWitness(ff, arg),
			"math.Sqrt of %s, which is not provably non-negative, can mint NaN%s; validate or clamp first",
			types.ExprString(arg), sink)
	case nanLogFuncs[fn.Name()]:
		if bits&factPositive == factPositive {
			return
		}
		pass.ReportPathf(call.Lparen, nanWitness(ff, arg),
			"math.%s of %s, which is not provably positive, can mint NaN/-Inf%s; validate first",
			fn.Name(), types.ExprString(arg), sink)
	}
}

// checkSelfDivide reports x/x where x may be zero: the one float
// division shape that is NaN rather than Inf, and a classic
// normalization bug (ratio of an unpopulated accumulator to itself).
func checkSelfDivide(pass *ModulePass, ff *funcFlow, fc *funcFacts, st factState, bin *ast.BinaryExpr, sink string) {
	info := ff.pkg.Info
	if bin.Op != token.QUO {
		return
	}
	tv, ok := info.Types[bin]
	if !ok {
		return
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsFloat == 0 {
		return
	}
	lx, rx := astUnparen(bin.X), astUnparen(bin.Y)
	if types.ExprString(lx) != types.ExprString(rx) {
		return
	}
	if fc.exprBits(st, rx)&factNonzero != 0 {
		return
	}
	pass.ReportPathf(bin.OpPos, nanWitness(ff, rx),
		"%s / %s is NaN when %s is zero, and it is not provably nonzero%s; guard the division",
		types.ExprString(lx), types.ExprString(rx), types.ExprString(rx), sink)
}

// nanWitness builds the def-use witness for the unvalidated operand.
func nanWitness(ff *funcFlow, e ast.Expr) []string {
	var id *ast.Ident
	ast.Inspect(e, func(n ast.Node) bool {
		if id != nil {
			return false
		}
		if x, ok := n.(*ast.Ident); ok {
			if v, ok := ff.pkg.Info.Uses[x].(*types.Var); ok && ff.tracked[v] && len(ff.useDefs[x]) > 0 {
				id = x
				return false
			}
		}
		return true
	})
	if id == nil {
		return nil
	}
	return ff.defChain(id, 4)
}

// nanGuardedVars collects variables the function explicitly checks with
// math.IsNaN or math.IsInf — results it validates are its own business.
func nanGuardedVars(fn *Node, info *types.Info) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	body := fn.Body()
	if body == nil {
		return out
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := staticCallee(info, call)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "math" {
			return true
		}
		if callee.Name() != "IsNaN" && callee.Name() != "IsInf" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok {
						out[v] = true
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

// resultVarGuarded reports whether the node assigns into a variable the
// function later validates with math.IsNaN/IsInf.
func resultVarGuarded(info *types.Info, nd ast.Node, guarded map[*types.Var]bool) bool {
	if len(guarded) == 0 {
		return false
	}
	as, ok := nd.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := astUnparen(lhs).(*ast.Ident); ok {
			v, _ := info.Uses[id].(*types.Var)
			if v == nil {
				v, _ = info.Defs[id].(*types.Var)
			}
			if v != nil && guarded[v] {
				return true
			}
		}
	}
	return false
}
