package lint

import (
	"go/ast"
	"go/types"
)

// SortedEmit flags `for range` over a map whose body writes output (fmt
// emission or Write* methods on builders, buffers, and writers). Go map
// iteration order is random, so emitting inside such a loop produces
// nondeterministic bytes — collect the keys, sort, and iterate the sorted
// slice instead (the pattern metrics.Render and the figure writers use).
var SortedEmit = &Analyzer{
	Name: "sortedemit",
	Doc:  "flag map iteration that emits output without sorting first",
	Run:  runSortedEmit,
}

// emitFuncs are package-level functions that write formatted output.
var emitFuncs = map[string]map[string]bool{
	"fmt": {
		"Fprint": true, "Fprintf": true, "Fprintln": true,
		"Print": true, "Printf": true, "Println": true,
	},
	"io": {"WriteString": true},
}

// emitMethods are method names that append to an output sink.
var emitMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func runSortedEmit(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if emit := findEmit(pass, rng.Body); emit != nil {
				pass.Reportf(rng.Pos(),
					"map iteration emits output (%s at line %d); map order is random — collect keys, sort, then emit (//harmony:allow sortedemit <reason> to permit)",
					emitName(pass, emit), pass.Pkg.Fset.Position(emit.Pos()).Line)
			}
			return true
		})
	}
}

// findEmit returns the first output-writing call inside body, or nil.
func findEmit(pass *Pass, body ast.Node) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkgPath := pass.pkgPathOf(sel.X); pkgPath != "" {
			if emitFuncs[pkgPath][sel.Sel.Name] {
				found = call
			}
			return true
		}
		// Method call: Write-family methods on any value count as sinks.
		if emitMethods[sel.Sel.Name] {
			found = call
		}
		return true
	})
	return found
}

func emitName(pass *Pass, call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if pkgPath := pass.pkgPathOf(sel.X); pkgPath != "" {
			return pathBase(pkgPath) + "." + sel.Sel.Name
		}
		return sel.Sel.Name
	}
	return "write"
}
