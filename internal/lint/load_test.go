package lint

import (
	"path/filepath"
	"testing"
)

// TestLoaderEdgeCases pins the loader's handling of the go-list corners:
// test-only packages and packages whose every file is excluded by build
// tags are skipped (not errors), and test files — in-package and
// external `_test` packages alike — and tag-excluded files never reach
// the type checker. The fixture module lives under testdata/loadermod
// with its own go.mod, so `./...` resolves against it alone.
func TestLoaderEdgeCases(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	l, err := NewLoader(filepath.Join("testdata", "loadermod"))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	if len(pkgs) != 1 {
		var paths []string
		for _, p := range pkgs {
			paths = append(paths, p.Path)
		}
		t.Fatalf("loaded %v, want exactly loadermod/normal (testonly and tagged must be skipped)", paths)
	}
	pkg := pkgs[0]
	if pkg.Path != "loadermod/normal" {
		t.Fatalf("loaded %s, want loadermod/normal", pkg.Path)
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("loadermod/normal has %d files, want 1", len(pkg.Files))
	}
	name := filepath.Base(pkg.Fset.Position(pkg.Files[0].Pos()).Filename)
	if name != "normal.go" {
		t.Errorf("loaded file %s, want normal.go (test and tag-excluded files must stay out)", name)
	}
	// The excluded file's broken body must never have been type-checked.
	if pkg.Types.Scope().Lookup("Broken") != nil {
		t.Error("tag-excluded declaration leaked into the type-checked package")
	}
	if pkg.Types.Scope().Lookup("Double") == nil {
		t.Error("production declaration missing from the type-checked package")
	}
}

// TestLoaderCrossPackageIdentity pins the load-order guarantee the call
// graph depends on: under the production loader, a call into another
// module package must resolve to the same *types.Func the callee's own
// source-checked AST defines, yielding an exact static edge. (Checking
// importers against gc export data instead would mint a second object
// identity per function and silently demote every cross-package call to
// an external-call record — which is exactly the regression this guards
// against.)
func TestLoaderCrossPackageIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	l, err := NewLoader(filepath.Join("testdata", "graphmod"))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	g := BuildGraph(pkgs)
	use := nodeByName(t, g, "a.Use")
	es := edgesTo(use, "b.Helper")
	if len(es) != 1 {
		t.Fatalf("a.Use -> b.Helper: got %d edges, want 1 exact static edge", len(es))
	}
	if e := es[0]; e.Dynamic || e.Kind != EdgeCall {
		t.Errorf("a.Use -> b.Helper: dynamic=%v kind=%v, want static call", e.Dynamic, e.Kind)
	}
	// The stdlib leaf stays an external-call record on the callee.
	helper := nodeByName(t, g, "b.Helper")
	found := false
	for _, ext := range helper.Ext {
		if ext.Fn.Pkg() != nil && ext.Fn.Pkg().Path() == "time" && ext.Fn.Name() == "Now" {
			found = true
		}
	}
	if !found {
		t.Error("b.Helper should record time.Now as an external call")
	}
}
