package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"testing"
)

func TestScratchValueTakenOverApprox(t *testing.T) {
	pkgs, err := sharedLoader(t).LoadFixtureTree(filepath.Join("testdata", "src", "callgraph"))
	if err != nil {
		t.Fatal(err)
	}
	b := &builder{
		g: &Graph{
			byObj: make(map[*types.Func]*Node),
			byLit: make(map[*ast.FuncLit]*Node),
			fset:  pkgs[0].Fset,
		},
		pkgs:       pkgs,
		valueTaken: make(map[*types.Func]bool),
		implCache:  make(map[implKey][]*types.Func),
		reach:      make(map[string]map[string]bool),
	}
	b.collectNamedTypes()
	b.collectNodes()
	for _, node := range b.g.Funcs {
		b.collectValueTaken(node)
	}
	for fn := range b.valueTaken {
		t.Logf("value-taken: %s", prettyFuncName(fn))
	}
}
