package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// GoLeak requires every goroutine spawned in the concurrent subsystems —
// the daemon, the parallel fan-out helpers, and the parallel placement
// pass — to have a provable termination/join path: somewhere reachable
// in the spawned function (following call and defer edges through the
// module) there must be a sync.WaitGroup.Done, a send on a collector
// channel (the errgroup shape), or a receive/select on a cancellation
// channel. A goroutine with none of these can outlive every tick and
// leak; in the daemon that is memory growth and a shutdown that never
// drains.
//
// Nested go statements do not count as join evidence for their spawner
// (the inner goroutine joining says nothing about the outer one), and a
// goroutine spawned through a bare function value is unprovable by
// construction and always flagged.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc: "require a provable join (WaitGroup.Done, collector send, or cancellation receive) " +
		"for every goroutine in daemon, parallel, and core placement",
	RunModule: runGoLeak,
}

// goleakCovered scopes the analyzer to the concurrent subsystems.
func goleakCovered(pkgPath, filename string) bool {
	base := filepath.Base(filename)
	switch pkgPath {
	case "harmony/internal/daemon":
		return true
	case "harmony/internal/tenant": // per-tenant ingest workers + group tick fan-out
		return true
	case "harmony": // the parallel experiment fan-out
		return base == "parallel.go"
	case "harmony/internal/sim": // the sharded machine audit
		return base == "parallel.go"
	case "harmony/internal/trace": // streaming sources are single-goroutine by contract
		return true
	case "harmony/internal/core": // the per-type placement fan-out
		return base == "placement.go"
	}
	return strings.HasPrefix(pkgPath, "fixture/goleak")
}

func runGoLeak(pass *ModulePass) {
	for _, n := range pass.Graph.Funcs {
		// A go statement through a bare function value is unprovable by
		// construction, whatever candidate edges the graph resolved.
		for _, dp := range n.DynGo {
			if goleakCovered(n.Pkg.Path, pass.Fset().Position(dp).Filename) {
				pass.Reportf(dp,
					"goroutine spawned through a function value; its join cannot be proven — spawn a named function or literal with an explicit join (//harmony:allow goleak <reason> to permit)")
			}
		}
		for _, e := range n.Out {
			if e.Kind != EdgeGo {
				continue
			}
			pos := pass.Fset().Position(e.Pos)
			if !goleakCovered(n.Pkg.Path, pos.Filename) {
				continue
			}
			if e.Dynamic && e.Via == "function value" {
				continue // the DynGo site report covers this spawn
			}
			if _, ok := joinEvidence(e.Callee, nil); ok {
				continue
			}
			pass.Reportf(e.Pos,
				"goroutine %s has no provable join: no sync.WaitGroup.Done, channel send, or cancellation receive is reachable from its body; unjoined goroutines leak (//harmony:allow goleak <reason> to permit)",
				e.Callee.Name)
		}
	}
}

// joinEvidence reports whether a join signal is reachable from node via
// call and defer edges (not nested go edges: an inner goroutine's join
// does not join the outer one).
func joinEvidence(node *Node, seen map[*Node]bool) (string, bool) {
	if seen == nil {
		seen = make(map[*Node]bool)
	}
	if seen[node] {
		return "", false
	}
	seen[node] = true

	// WaitGroup.Done anywhere in this body, including deferred.
	for _, ext := range node.Ext {
		fn := ext.Fn
		if fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Done" {
			return "WaitGroup.Done", true
		}
	}
	// Channel operations in this body: a send is the collector shape, a
	// receive or select is the cancellation shape.
	found := ""
	forEachOwnNode(node.Body(), func(a ast.Node) {
		if found != "" {
			return
		}
		switch v := a.(type) {
		case *ast.SendStmt:
			found = "channel send"
		case *ast.UnaryExpr:
			if v.Op.String() == "<-" {
				found = "channel receive"
			}
		case *ast.SelectStmt:
			found = "select"
		case *ast.RangeStmt:
			if tv, ok := node.Pkg.Info.Types[v.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = "range over channel"
				}
			}
		}
	})
	if found != "" {
		return found, true
	}
	for _, e := range node.Out {
		if e.Kind == EdgeGo {
			continue
		}
		if why, ok := joinEvidence(e.Callee, seen); ok {
			return why, true
		}
	}
	return "", false
}
