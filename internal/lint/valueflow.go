package lint

// An SSA-lite value-flow layer over the intra-procedural CFGs: reaching
// definitions give def-use chains (local single-assignment numbering
// with a phi-at-join approximation — a use reached by several defs sees
// the union), and a separate edge-refined must-analysis tracks simple
// value facts (nonzero, nonnegative) through conditionals. The three
// value-flow analyzers (unitcheck, divzero, nansource) are built on it.
//
// Soundness stance, matching the rest of the suite: the layer is
// deliberately unsound in well-documented ways (see DESIGN.md §14) —
// variables whose address is taken or that are reassigned inside nested
// closures are untracked, interprocedural effects are limited to exact
// static calls, and facts are only as strong as the guard patterns
// recognized by applyCond. Analyzers must treat "no fact" as unknown,
// never as a proof.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// defKind classifies one definition site of a tracked variable.
type defKind uint8

const (
	defParam    defKind = iota // parameter, receiver, or named result: live at entry
	defAssign                  // x = e / x := e with a one-to-one rhs
	defOpaque                  // multi-value assignment or otherwise opaque rhs
	defZero                    // var x T with no initializer: implicit zero
	defCompound                // x += e, x *= e, ...
	defIncDec                  // x++, x--
	defRange                   // range key/value variable
)

// defSite is one definition of a tracked variable.
type defSite struct {
	id   int
	v    *types.Var
	kind defKind
	node ast.Node       // defining stmt/spec; nil for defParam
	rhs  ast.Expr       // one-to-one defining expression (defAssign, defCompound)
	rng  *ast.RangeStmt // the range statement, for defRange
}

// funcFlow is the value-flow summary of one function body: its CFG, the
// numbered definition sites of every tracked local, and the reaching
// definitions at each use identifier.
type funcFlow struct {
	pkg  *Package
	cfg  *CFG
	body *ast.BlockStmt

	defs    []*defSite
	defsIn  map[ast.Node][]*defSite       // block-level node -> defs it performs
	rngDefs map[*ast.RangeStmt][]*defSite // range stmt -> key/value defs
	tracked map[*types.Var]bool
	useDefs map[*ast.Ident][]int // use ident -> reaching def ids (sorted)
	sol     Solution[reachFact]
}

// funcSignature resolves the *types.Signature of a call-graph node.
func funcSignature(n *Node) *types.Signature {
	if n.Fn != nil {
		sig, _ := n.Fn.Type().(*types.Signature)
		return sig
	}
	sig, _ := n.Pkg.Info.Types[n.Lit].Type.(*types.Signature)
	return sig
}

// newFuncFlow builds the value-flow summary for one call-graph node.
func newFuncFlow(fn *Node) *funcFlow {
	ff := &funcFlow{
		pkg:     fn.Pkg,
		body:    fn.Body(),
		cfg:     NewCFG(fn.Body()),
		defsIn:  make(map[ast.Node][]*defSite),
		rngDefs: make(map[*ast.RangeStmt][]*defSite),
		tracked: make(map[*types.Var]bool),
		useDefs: make(map[*ast.Ident][]int),
	}
	ff.collectTracked()
	ff.collectDefs(funcSignature(fn))
	ff.sol = Solve[reachFact](ff.cfg, &reachDefsProblem{ff: ff}, Forward)
	ff.replayUses()
	return ff
}

// collectTracked decides which variables get def-use chains: locals
// (including params) defined in this function, minus any whose address
// is taken or that are written inside a nested function literal — their
// defs are invisible to the intra-procedural CFG.
func (ff *funcFlow) collectTracked() {
	info := ff.pkg.Info
	forEachOwnNode(ff.body, func(n ast.Node) {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Defs[id].(*types.Var); ok {
				ff.tracked[v] = true
			}
		}
	})
	untrack := func(e ast.Expr) {
		if id, ok := astUnparen(e).(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				delete(ff.tracked, v)
			}
			if v, ok := info.Defs[id].(*types.Var); ok {
				delete(ff.tracked, v)
			}
		}
	}
	// Full walk including nested literals: an &x or a closure write
	// anywhere invalidates tracking.
	inLit := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			inLit++
			ast.Inspect(e.Body, walk)
			inLit--
			return false
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				untrack(e.X)
			}
		case *ast.AssignStmt:
			if inLit > 0 {
				for _, lhs := range e.Lhs {
					untrack(lhs)
				}
			}
		case *ast.IncDecStmt:
			if inLit > 0 {
				untrack(e.X)
			}
		}
		return true
	}
	ast.Inspect(ff.body, walk)
}

// objOf resolves the variable behind an identifier in def or use position.
func (ff *funcFlow) objOf(id *ast.Ident) *types.Var {
	info := ff.pkg.Info
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// collectDefs numbers every definition site in deterministic order:
// params and named results first (entry defs), then block-level nodes in
// block index order.
func (ff *funcFlow) collectDefs(sig *types.Signature) {
	add := func(d *defSite) *defSite {
		d.id = len(ff.defs)
		ff.defs = append(ff.defs, d)
		return d
	}
	if sig != nil {
		var entryVars []*types.Var
		if r := sig.Recv(); r != nil && r.Name() != "" && r.Name() != "_" {
			entryVars = append(entryVars, r)
		}
		for i := 0; i < sig.Params().Len(); i++ {
			entryVars = append(entryVars, sig.Params().At(i))
		}
		for i := 0; i < sig.Results().Len(); i++ {
			if sig.Results().At(i).Name() != "" {
				entryVars = append(entryVars, sig.Results().At(i))
			}
		}
		for _, v := range entryVars {
			if v.Name() == "" || v.Name() == "_" {
				continue
			}
			ff.tracked[v] = true
			add(&defSite{v: v, kind: defParam})
		}
	}
	bind := func(n ast.Node, id *ast.Ident, kind defKind, rhs ast.Expr) {
		v := ff.objOf(id)
		if v == nil || !ff.tracked[v] {
			return
		}
		ff.defsIn[n] = append(ff.defsIn[n], add(&defSite{v: v, kind: kind, node: n, rhs: rhs}))
	}
	for _, blk := range ff.cfg.Blocks {
		for _, n := range blk.Nodes {
			switch s := n.(type) {
			case *ast.AssignStmt:
				ff.assignDefs(n, s, bind)
			case *ast.IncDecStmt:
				if id, ok := astUnparen(s.X).(*ast.Ident); ok {
					bind(n, id, defIncDec, nil)
				}
			case *ast.DeclStmt:
				gd, ok := s.Decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						switch {
						case len(vs.Values) == 0:
							bind(n, name, defZero, nil)
						case len(vs.Values) == len(vs.Names):
							bind(n, name, defAssign, vs.Values[i])
						default:
							bind(n, name, defOpaque, nil)
						}
					}
				}
			}
		}
		if rs, ok := blk.Term.(*ast.RangeStmt); ok && ff.rngDefs[rs] == nil {
			for _, e := range []ast.Expr{rs.Key, rs.Value} {
				id, ok := e.(*ast.Ident)
				if !ok {
					continue
				}
				v := ff.objOf(id)
				if v == nil || !ff.tracked[v] {
					continue
				}
				d := add(&defSite{v: v, kind: defRange, node: rs, rng: rs})
				ff.rngDefs[rs] = append(ff.rngDefs[rs], d)
			}
			if ff.rngDefs[rs] == nil {
				ff.rngDefs[rs] = []*defSite{} // visited marker
			}
		}
	}
}

// assignDefs extracts the defs of one assignment statement.
func (ff *funcFlow) assignDefs(n ast.Node, s *ast.AssignStmt, bind func(ast.Node, *ast.Ident, defKind, ast.Expr)) {
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(s.Lhs) == len(s.Rhs) {
			for i, lhs := range s.Lhs {
				if id, ok := astUnparen(lhs).(*ast.Ident); ok {
					bind(n, id, defAssign, s.Rhs[i])
				}
			}
			return
		}
		for _, lhs := range s.Lhs {
			if id, ok := astUnparen(lhs).(*ast.Ident); ok {
				bind(n, id, defOpaque, nil)
			}
		}
	default: // +=, -=, *=, /=, ...
		if id, ok := astUnparen(s.Lhs[0]).(*ast.Ident); ok {
			bind(n, id, defCompound, s.Rhs[0])
		}
	}
}

// reachFact maps each tracked variable to the sorted ids of defs that
// may reach this program point.
type reachFact map[*types.Var][]int

type reachDefsProblem struct{ ff *funcFlow }

func (p *reachDefsProblem) Boundary() reachFact {
	f := make(reachFact)
	for _, d := range p.ff.defs {
		if d.kind == defParam {
			f[d.v] = []int{d.id}
		}
	}
	return f
}

func (p *reachDefsProblem) Transfer(b *Block, in reachFact) reachFact {
	out := make(reachFact, len(in))
	for v, ids := range in {
		out[v] = ids
	}
	for _, n := range b.Nodes {
		for _, d := range p.ff.defsIn[n] {
			out[d.v] = []int{d.id}
		}
	}
	if rs, ok := b.Term.(*ast.RangeStmt); ok {
		for _, d := range p.ff.rngDefs[rs] {
			out[d.v] = []int{d.id}
		}
	}
	return out
}

func (p *reachDefsProblem) Merge(a, b reachFact) reachFact {
	out := make(reachFact, len(a))
	for v, ids := range a {
		out[v] = ids
	}
	for v, ids := range b {
		out[v] = unionSorted(out[v], ids)
	}
	return out
}

func (p *reachDefsProblem) Equal(a, b reachFact) bool {
	if len(a) != len(b) {
		return false
	}
	for v, ids := range a {
		o, ok := b[v]
		if !ok || len(o) != len(ids) {
			return false
		}
		for i := range ids {
			if ids[i] != o[i] {
				return false
			}
		}
	}
	return true
}

func unionSorted(a, b []int) []int {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]int, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Ints(out)
	w := 0
	for i, x := range out {
		if i == 0 || x != out[w-1] {
			out[w] = x
			w++
		}
	}
	return out[:w]
}

// replayUses walks each reachable block with its entry fact and records,
// for every use of a tracked variable, the defs reaching it. Within one
// statement the pre-state applies (x = x+1 reads the old x).
func (ff *funcFlow) replayUses() {
	for _, blk := range ff.cfg.Blocks {
		in, ok := ff.sol.In[blk]
		if !ok {
			continue // unreachable
		}
		cur := make(reachFact, len(in))
		for v, ids := range in {
			cur[v] = ids
		}
		for _, n := range blk.Nodes {
			ff.recordUses(n, cur)
			for _, d := range ff.defsIn[n] {
				cur[d.v] = []int{d.id}
			}
		}
	}
}

// recordUses registers the reaching defs for each tracked-variable use
// inside one block-level node, skipping plain-assignment targets (which
// are defs, not reads) and nested function literals.
func (ff *funcFlow) recordUses(n ast.Node, cur reachFact) {
	info := ff.pkg.Info
	defTargets := make(map[*ast.Ident]bool)
	if as, ok := n.(*ast.AssignStmt); ok && (as.Tok == token.ASSIGN || as.Tok == token.DEFINE) {
		for _, lhs := range as.Lhs {
			if id, ok := astUnparen(lhs).(*ast.Ident); ok {
				defTargets[id] = true
			}
		}
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		id, ok := x.(*ast.Ident)
		if !ok || defTargets[id] {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || !ff.tracked[v] {
			return true
		}
		ff.useDefs[id] = cur[v]
		return true
	})
}

// defsFor returns the definition sites reaching a use identifier.
func (ff *funcFlow) defsFor(id *ast.Ident) []*defSite {
	ids, ok := ff.useDefs[id]
	if !ok {
		return nil
	}
	out := make([]*defSite, len(ids))
	for i, n := range ids {
		out[i] = ff.defs[n]
	}
	return out
}

// defChain renders a def-use witness for a use identifier: the chain of
// definition sites feeding it, origin first, depth-limited. Only the
// first def at each level is followed — the witness is one example path,
// not the whole dag.
func (ff *funcFlow) defChain(id *ast.Ident, depth int) []string {
	var chain []string
	seen := make(map[int]bool)
	cur := id
	for i := 0; i < depth && cur != nil; i++ {
		defs := ff.defsFor(cur)
		if len(defs) == 0 {
			break
		}
		d := defs[0]
		if seen[d.id] {
			break
		}
		seen[d.id] = true
		chain = append(chain, ff.renderDef(d))
		cur = nil
		if d.rhs != nil {
			ast.Inspect(d.rhs, func(x ast.Node) bool {
				if cur != nil {
					return false
				}
				if nid, ok := x.(*ast.Ident); ok {
					if v, ok := ff.pkg.Info.Uses[nid].(*types.Var); ok && ff.tracked[v] {
						cur = nid
						return false
					}
				}
				return true
			})
		}
	}
	// Origin first.
	for l, r := 0, len(chain)-1; l < r; l, r = l+1, r-1 {
		chain[l], chain[r] = chain[r], chain[l]
	}
	return chain
}

// renderDef formats one definition site for a witness path.
func (ff *funcFlow) renderDef(d *defSite) string {
	switch d.kind {
	case defParam:
		return fmt.Sprintf("%s (parameter)", d.v.Name())
	case defRange:
		pos := ff.pkg.Fset.Position(d.node.Pos())
		return fmt.Sprintf("%s (range variable, %s:%d)", d.v.Name(), filepath.Base(pos.Filename), pos.Line)
	default:
		pos := ff.pkg.Fset.Position(d.node.Pos())
		return fmt.Sprintf("%s (%s:%d)", nodeSource(ff.pkg.Fset, d.node), filepath.Base(pos.Filename), pos.Line)
	}
}

// ---- edge-refined value facts ----

// factBits is the small must-fact lattice per variable: the analysis
// proves bits, absence of a bit means "unknown", never "false".
type factBits uint8

const (
	factNonzero factBits = 1 << iota
	factNonneg
)

const factPositive = factNonzero | factNonneg

// factKey addresses either a variable's value or its length.
type factKey struct {
	v     *types.Var
	isLen bool
}

type factState map[factKey]factBits

func copyState(s factState) factState {
	out := make(factState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// funcFacts holds the per-node entry states of the fact analysis: a
// custom worklist (the generic solver is block-grained, and facts need
// branch-edge refinement) with intersection merges at joins.
type funcFacts struct {
	ff     *funcFlow
	atNode map[ast.Node]factState // entry state per block-level node
}

func newFuncFacts(ff *funcFlow) *funcFacts {
	fc := &funcFacts{ff: ff, atNode: make(map[ast.Node]factState)}
	fc.solve()
	return fc
}

func (fc *funcFacts) solve() {
	c := fc.ff.cfg
	in := make(map[*Block]factState)
	seen := make(map[*Block]bool)
	in[c.Entry] = factState{}
	seen[c.Entry] = true
	work := []*Block{c.Entry}
	inWork := map[*Block]bool{c.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		inWork[blk] = false
		out := fc.transfer(blk, in[blk])
		for _, s := range blk.Succs {
			edge := fc.refineEdge(out, blk, s)
			var next factState
			if !seen[s] {
				next = edge
			} else {
				next = intersectState(in[s], edge)
			}
			if !seen[s] || !equalState(in[s], next) {
				in[s] = next
				seen[s] = true
				if !inWork[s] {
					work = append(work, s)
					inWork[s] = true
				}
			}
		}
	}
	// Final replay: record the entry state of every block-level node.
	for _, blk := range c.Blocks {
		st, ok := in[blk]
		if !ok {
			continue
		}
		cur := copyState(st)
		for _, n := range blk.Nodes {
			fc.atNode[n] = copyState(cur)
			fc.applyNode(cur, n)
		}
	}
}

func (fc *funcFacts) transfer(blk *Block, st factState) factState {
	cur := copyState(st)
	for _, n := range blk.Nodes {
		fc.applyNode(cur, n)
	}
	if rs, ok := blk.Term.(*ast.RangeStmt); ok {
		for _, d := range fc.ff.rngDefs[rs] {
			fc.applyDef(cur, d)
		}
	}
	return cur
}

// applyNode updates the fact state across one block-level node.
func (fc *funcFacts) applyNode(st factState, n ast.Node) {
	for _, d := range fc.ff.defsIn[n] {
		fc.applyDef(st, d)
	}
}

// applyDef kills the old facts of the defined variable and installs
// whatever the defining expression proves.
func (fc *funcFacts) applyDef(st factState, d *defSite) {
	old := st[factKey{v: d.v}]
	delete(st, factKey{v: d.v})
	delete(st, factKey{v: d.v, isLen: true})
	var bits factBits
	switch d.kind {
	case defAssign:
		bits = fc.exprBits(st, d.rhs)
	case defZero:
		bits = factNonneg // numeric zero value
		if b, ok := d.v.Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsNumeric == 0 {
			bits = 0
		}
	case defIncDec:
		if inc, ok := d.node.(*ast.IncDecStmt); ok && inc.Tok == token.INC {
			if old&factNonneg != 0 {
				bits = factPositive // nonneg + 1 is at least 1
			}
		}
	case defCompound:
		as, _ := d.node.(*ast.AssignStmt)
		if as != nil {
			rbits := fc.exprBits(st, as.Rhs[0])
			switch as.Tok {
			case token.ADD_ASSIGN:
				if old&factNonneg != 0 && rbits&factNonneg != 0 {
					bits = factNonneg
					if (old|rbits)&factNonzero != 0 {
						bits |= factNonzero
					}
				}
			case token.MUL_ASSIGN:
				if old&factNonneg != 0 && rbits&factNonneg != 0 {
					bits = factNonneg
					if old&factNonzero != 0 && rbits&factNonzero != 0 {
						bits |= factNonzero
					}
				}
			case token.QUO_ASSIGN:
				if old&factNonneg != 0 && rbits&factNonneg != 0 {
					bits = factNonneg
				}
			}
		}
	}
	if bits != 0 {
		st[factKey{v: d.v}] = bits
	}
}

// varOf resolves an expression to a tracked variable, unwrapping parens
// and numeric conversions.
func (fc *funcFacts) varOf(e ast.Expr) *types.Var {
	e = unwrapConv(fc.ff.pkg.Info, e)
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := fc.ff.pkg.Info.Uses[id].(*types.Var)
	if !ok || !fc.ff.tracked[v] {
		return nil
	}
	return v
}

// exprBits computes the provable fact bits of an expression under the
// given state. It is the single sign/zero oracle: divzero and nansource
// query it via bitsAt.
func (fc *funcFacts) exprBits(st factState, e ast.Expr) factBits {
	info := fc.ff.pkg.Info
	e = astUnparen(e)
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return constBits(tv.Value)
	}
	switch x := e.(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok && fc.ff.tracked[v] {
			return st[factKey{v: v}]
		}
	case *ast.CallExpr:
		if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
			if len(x.Args) == 1 {
				return fc.exprBits(st, x.Args[0])
			}
			return 0
		}
		if arg := lenCallArg(info, x); arg != nil {
			bits := factNonneg
			if v := fc.varOf(arg); v != nil {
				bits |= st[factKey{v: v, isLen: true}]
			}
			return bits
		}
		if fn := staticCallee(info, x); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "math" {
			switch fn.Name() {
			case "Abs", "Sqrt":
				bits := factNonneg
				if len(x.Args) == 1 && fc.exprBits(st, x.Args[0])&factNonzero != 0 {
					bits |= factNonzero
				}
				return bits
			case "Exp", "Exp2":
				return factPositive
			case "Inf":
				return factNonzero
			}
		}
	case *ast.BinaryExpr:
		l, r := fc.exprBits(st, x.X), fc.exprBits(st, x.Y)
		switch x.Op {
		case token.MUL:
			if types.ExprString(astUnparen(x.X)) == types.ExprString(astUnparen(x.Y)) {
				// x*x is a square: nonnegative, nonzero iff x is.
				return factNonneg | l&factNonzero
			}
			var bits factBits
			if l&factNonneg != 0 && r&factNonneg != 0 {
				bits |= factNonneg
			}
			if l&factNonzero != 0 && r&factNonzero != 0 {
				bits |= factNonzero
			}
			return bits
		case token.ADD:
			if l&factNonneg != 0 && r&factNonneg != 0 {
				bits := factNonneg
				if (l|r)&factNonzero != 0 {
					bits |= factNonzero
				}
				return bits
			}
		case token.QUO:
			var bits factBits
			if l&factNonneg != 0 && r&factNonneg != 0 {
				bits |= factNonneg
			}
			if l&factNonzero != 0 && r&factNonzero != 0 {
				bits |= factNonzero
			}
			return bits
		}
	case *ast.UnaryExpr:
		if x.Op == token.SUB {
			return fc.exprBits(st, x.X) & factNonzero
		}
		if x.Op == token.ADD {
			return fc.exprBits(st, x.X)
		}
	case *ast.SelectorExpr:
		if tv, ok := info.Types[x]; ok && tv.Value != nil {
			return constBits(tv.Value)
		}
	}
	return 0
}

// bitsAt evaluates an expression's fact bits at the program point of its
// enclosing block-level node (zero if the node is unreachable).
func (fc *funcFacts) bitsAt(n ast.Node, e ast.Expr) factBits {
	st, ok := fc.atNode[n]
	if !ok {
		return 0
	}
	return fc.exprBits(st, e)
}

func constBits(v constant.Value) factBits {
	switch v.Kind() {
	case constant.Int, constant.Float:
		switch constant.Sign(v) {
		case 1:
			return factPositive
		case 0:
			return factNonneg
		}
	}
	return 0
}

// refineEdge strengthens the outgoing state along a conditional edge:
// the then-edge of an if and the body-edge of a for assume the condition
// true, the else/done edges assume it false.
func (fc *funcFacts) refineEdge(out factState, from, to *Block) factState {
	var cond ast.Expr
	truth := false
	switch t := from.Term.(type) {
	case *ast.IfStmt:
		switch to.Kind {
		case "if.then":
			cond, truth = t.Cond, true
		case "if.else", "if.done":
			cond, truth = t.Cond, false
		}
	case *ast.ForStmt:
		if t.Cond != nil {
			switch to.Kind {
			case "for.body":
				cond, truth = t.Cond, true
			case "for.done":
				cond, truth = t.Cond, false
			}
		}
	}
	if cond == nil {
		return out
	}
	st := copyState(out)
	fc.applyCond(st, cond, truth)
	return st
}

// applyCond adds the facts implied by a branch condition's truth value.
// Facts are only ever added — the must-analysis intersection at joins
// does the forgetting.
func (fc *funcFacts) applyCond(st factState, cond ast.Expr, truth bool) {
	cond = astUnparen(cond)
	switch c := cond.(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			fc.applyCond(st, c.X, !truth)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if truth {
				fc.applyCond(st, c.X, true)
				fc.applyCond(st, c.Y, true)
			}
		case token.LOR:
			if !truth {
				fc.applyCond(st, c.X, false)
				fc.applyCond(st, c.Y, false)
			}
		default:
			fc.applyCompare(st, c, truth)
		}
	}
}

// applyCompare handles `x OP const` and `len(x) OP const` guards (either
// operand order), negating the operator when the branch is false.
func (fc *funcFacts) applyCompare(st factState, c *ast.BinaryExpr, truth bool) {
	info := fc.ff.pkg.Info
	op := c.Op
	subject, constSide := c.X, c.Y
	tv, ok := info.Types[constSide]
	if !ok || tv.Value == nil {
		subject, constSide = c.Y, c.X
		tv, ok = info.Types[constSide]
		if !ok || tv.Value == nil {
			return
		}
		op = flipCompare(op)
	}
	if !truth {
		op = negateCompare(op)
	}
	val := tv.Value
	if val.Kind() != constant.Int && val.Kind() != constant.Float {
		return
	}
	sign := constant.Sign(val)

	key, ok := fc.subjectKey(subject)
	if !ok {
		return
	}
	var bits factBits
	switch op {
	case token.NEQ:
		if sign == 0 {
			bits = factNonzero
		}
	case token.EQL:
		if sign > 0 {
			bits = factPositive
		} else if sign == 0 {
			bits = factNonneg
		}
	case token.GTR: // subject > c
		if sign >= 0 {
			bits = factPositive
		}
	case token.GEQ: // subject >= c
		if sign > 0 {
			bits = factPositive
		} else if sign == 0 {
			bits = factNonneg
		}
	}
	if bits != 0 {
		st[key] |= bits
	}
}

// subjectKey resolves the guarded expression to a fact key: a tracked
// variable or the length of one.
func (fc *funcFacts) subjectKey(e ast.Expr) (factKey, bool) {
	info := fc.ff.pkg.Info
	e = unwrapConv(info, e)
	if arg := lenCallArg(info, e); arg != nil {
		if v := fc.varOf(arg); v != nil {
			return factKey{v: v, isLen: true}, true
		}
		return factKey{}, false
	}
	if v := fc.varOf(e); v != nil {
		return factKey{v: v}, true
	}
	return factKey{}, false
}

func flipCompare(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.GTR:
		return token.LSS
	case token.LEQ:
		return token.GEQ
	case token.GEQ:
		return token.LEQ
	}
	return op // EQL, NEQ symmetric
}

func negateCompare(op token.Token) token.Token {
	switch op {
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	case token.LSS:
		return token.GEQ
	case token.GEQ:
		return token.LSS
	case token.GTR:
		return token.LEQ
	case token.LEQ:
		return token.GTR
	}
	return op
}

func intersectState(a, b factState) factState {
	out := make(factState)
	for k, av := range a {
		if bv, ok := b[k]; ok {
			if m := av & bv; m != 0 {
				out[k] = m
			}
		}
	}
	return out
}

func equalState(a, b factState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// unwrapConv strips parens and single-argument type conversions:
// float64(x) carries x's value facts.
func unwrapConv(info *types.Info, e ast.Expr) ast.Expr {
	for {
		e = astUnparen(e)
		call, ok := e.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return e
		}
		tv, ok := info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return e
		}
		e = call.Args[0]
	}
}

// lenCallArg returns the operand of a len(...) call, or nil. Conversions
// around the call are NOT stripped by this helper — callers unwrap first.
func lenCallArg(info *types.Info, e ast.Expr) ast.Expr {
	e = astUnparen(e)
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	id, ok := astUnparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "len" {
		return nil
	}
	if _, ok := info.Uses[id].(*types.Builtin); !ok {
		return nil
	}
	return call.Args[0]
}
