// Package lint implements harmony-lint: a suite of static analyzers that
// mechanically enforce the codebase's determinism and concurrency
// contracts — the conventions (seeded internal/stats RNG only, no
// wall-clock or environment reads in control paths, sorted iteration
// before any output, tolerance-based float comparison, no blocking calls
// under a mutex) that the bit-identical simulation and replay guarantees
// rest on.
//
// The framework mirrors golang.org/x/tools/go/analysis in miniature but
// is dependency-free: packages are loaded through `go list -export` plus
// the standard library's gc importer (see Loader), and each Analyzer is a
// function over a type-checked Package.
//
// A finding can be silenced in place with an annotation on the flagged
// line or the line directly above it:
//
//	//harmony:allow <analyzer> [reason...]
//
// The reason is free text; the analyzer name must match exactly.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string

	// Packages reports whether the analyzer applies to a package; nil
	// means every package. The fixture runner bypasses this so testdata
	// exercises analyzers regardless of their production scope.
	Packages func(pkgPath string) bool
	// Files restricts findings to specific files within an applicable
	// package; nil means every file.
	Files func(pkgPath, filename string) bool

	Run func(*Pass)
}

// Pass carries one analyzer run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Check runs the analyzers over the packages, honoring each analyzer's
// package/file scope and the //harmony:allow annotations, and returns the
// surviving diagnostics sorted by position.
func Check(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		out = append(out, checkPackage(pkg, analyzers, true)...)
	}
	sortDiagnostics(out)
	return out
}

// checkPackage runs the analyzers over one package. When scoped is false
// the Packages/Files predicates are ignored (fixture mode); allow
// annotations are honored either way.
func checkPackage(pkg *Package, analyzers []*Analyzer, scoped bool) []Diagnostic {
	allows := collectAllows(pkg)
	var out []Diagnostic
	for _, az := range analyzers {
		if scoped && az.Packages != nil && !az.Packages(pkg.Path) {
			continue
		}
		pass := &Pass{Analyzer: az, Pkg: pkg}
		az.Run(pass)
		for _, d := range pass.diags {
			if scoped && az.Files != nil && !az.Files(pkg.Path, d.Pos.Filename) {
				continue
			}
			if allows.allows(az.Name, d.Pos) {
				continue
			}
			out = append(out, d)
		}
	}
	sortDiagnostics(out)
	return out
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// allowSet indexes //harmony:allow annotations: file -> line -> analyzer
// names allowed there.
type allowSet map[string]map[int]map[string]bool

// allows reports whether a diagnostic from the named analyzer at pos is
// suppressed: an annotation counts on the flagged line itself or on the
// line directly above it.
func (a allowSet) allows(name string, pos token.Position) bool {
	lines := a[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][name] || lines[pos.Line-1][name]
}

const allowPrefix = "harmony:allow"

// collectAllows scans every comment in the package for allow annotations.
func collectAllows(pkg *Package) allowSet {
	set := make(allowSet)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, allowPrefix))
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					set[pos.Filename] = lines
				}
				names := lines[pos.Line]
				if names == nil {
					names = make(map[string]bool)
					lines[pos.Line] = names
				}
				// Only the first field is the analyzer name; the rest is
				// a free-text reason.
				names[fields[0]] = true
			}
		}
	}
	return set
}

// All returns every analyzer in the suite, sorted by name.
func All() []*Analyzer {
	return []*Analyzer{
		FloatEq,
		MutexSpan,
		NoDeterm,
		RNGDiscipline,
		SortedEmit,
	}
}

// ByName returns the named analyzers, erroring on unknown names.
func ByName(names []string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, az := range All() {
		byName[az.Name] = az
	}
	var out []*Analyzer
	for _, n := range names {
		az, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, az)
	}
	return out, nil
}

// pkgPathOf resolves the import path behind a selector base, or "" when
// the expression is not a package qualifier.
func (p *Pass) pkgPathOf(x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}
