// Package lint implements harmony-lint: a suite of static analyzers that
// mechanically enforce the codebase's determinism and concurrency
// contracts — the conventions (seeded internal/stats RNG only, no
// wall-clock or environment reads in control paths, sorted iteration
// before any output, tolerance-based float comparison, no blocking calls
// under a mutex, joined goroutines, allocation-free hot paths) that the
// bit-identical simulation and replay guarantees rest on.
//
// The framework mirrors golang.org/x/tools/go/analysis in miniature but
// is dependency-free: packages are loaded through `go list -export` plus
// the standard library's gc importer (see Loader), and each Analyzer is
// either a function over one type-checked Package (Run) or a whole-module
// pass over every loaded package plus the module call graph (RunModule;
// see Graph). Interprocedural analyzers — detertaint, goleak,
// hotpathalloc — are module passes; the rest run per package.
//
// A finding can be silenced in place with an annotation on the flagged
// line, at the end of it, or in the contiguous comment block directly
// above it:
//
//	//harmony:allow <analyzer> [reason...]
//
// The reason is free text; the analyzer name must match exactly. The
// unusedallow analyzer reports annotations that no longer suppress
// anything, so suppressions cannot rot silently.
//
// Two further function-level annotations drive hotpathalloc (they go in
// the function's doc comment):
//
//	//harmony:hotpath  [reason...]  — the function and everything it
//	        transitively calls must not allocate
//	//harmony:coldpath [reason...]  — stop descending here: a fallback,
//	        error path, or explicitly budgeted residue
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
	"time"
)

// Diagnostic is one finding. Path, when non-empty, is the call-chain
// witness of an interprocedural finding, outermost caller first.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Path     []string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one named check. Exactly one of Run (per type-checked
// package) and RunModule (once over every loaded package, with the module
// call graph) is set; unusedallow sets neither and is special-cased in
// checkAll because it consumes the other analyzers' suppression usage.
type Analyzer struct {
	Name string
	Doc  string

	// Packages reports whether the analyzer applies to a package; nil
	// means every package. The fixture runner bypasses this so testdata
	// exercises analyzers regardless of their production scope.
	// Module analyzers scope themselves inside RunModule instead.
	Packages func(pkgPath string) bool
	// Files restricts findings to specific files within an applicable
	// package; nil means every file.
	Files func(pkgPath, filename string) bool

	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// Pass carries one analyzer run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModulePass carries one module analyzer run over every loaded package.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package
	Graph    *Graph

	allows *allowSet
	diags  []Diagnostic
}

// Fset returns the shared file set of the loaded packages.
func (p *ModulePass) Fset() *token.FileSet { return p.Pkgs[0].Fset }

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.ReportPathf(pos, nil, format, args...)
}

// ReportPathf records a finding at pos carrying a call-chain witness.
func (p *ModulePass) ReportPathf(pos token.Pos, path []string, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset().Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Path:     path,
	})
}

// Allowed reports whether an annotation suppresses the named analyzer at
// pos. Module analyzers use it to let a vetted //harmony:allow at a taint
// root stop propagation instead of merely hiding the boundary diagnostic.
func (p *ModulePass) Allowed(name string, pos token.Pos) bool {
	return p.allows.allows(name, p.Fset().Position(pos))
}

// Check runs the analyzers over the packages, honoring each analyzer's
// package/file scope and the //harmony:allow annotations, and returns the
// surviving diagnostics sorted by position.
func Check(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	ds, _ := checkTimed(pkgs, analyzers, true)
	return ds
}

// AnalyzerTiming is one analyzer's wall-clock cost in a CheckTimed run.
// Analyzers run concurrently, so the sum of Elapsed generally exceeds the
// run's wall time; each entry is the budget -timing enforces per analyzer.
type AnalyzerTiming struct {
	Name    string
	Elapsed time.Duration
}

// CheckTimed is Check plus per-analyzer wall-clock timings, sorted by
// analyzer name. The diagnostics are byte-identical to Check's.
func CheckTimed(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []AnalyzerTiming) {
	return checkTimed(pkgs, analyzers, true)
}

func checkAll(pkgs []*Package, analyzers []*Analyzer, scoped bool) []Diagnostic {
	ds, _ := checkTimed(pkgs, analyzers, scoped)
	return ds
}

// checkTimed is the shared engine behind Check, CheckTimed, and the
// fixture runner. When scoped is false the Packages/Files predicates are
// ignored (fixture mode); allow annotations are honored either way.
//
// Analyzers are independent of each other — they share only read-only
// package/type data, the prebuilt call graph, and the allowSet (which
// serializes its monotone used-marking internally) — so each one runs in
// its own goroutine. Determinism survives the concurrency because every
// analyzer's findings land in a slot fixed by its position in the input
// slice, slots are merged in that order after the barrier, and the final
// stable sort breaks all remaining ties by (position, analyzer, message).
// unusedallow cannot join the pool: it reports the annotations nothing
// else consumed, so it runs after the barrier.
func checkTimed(pkgs []*Package, analyzers []*Analyzer, scoped bool) ([]Diagnostic, []AnalyzerTiming) {
	allows := collectAllows(pkgs...)
	ran := make(map[string]bool)
	unused := false
	needGraph := false
	var workers []*Analyzer
	for _, az := range analyzers {
		if az.Name == UnusedAllow.Name {
			unused = true
			continue
		}
		ran[az.Name] = true
		if az.RunModule != nil {
			needGraph = true
		}
		workers = append(workers, az)
	}

	var g *Graph
	if needGraph {
		g = BuildGraph(pkgs)
	}

	results := make([][]Diagnostic, len(workers))
	timings := make([]AnalyzerTiming, len(workers))
	var wg sync.WaitGroup
	for i, az := range workers {
		wg.Add(1)
		go func(i int, az *Analyzer) {
			defer wg.Done()
			start := time.Now()
			results[i] = runOneAnalyzer(pkgs, az, g, allows, scoped)
			timings[i] = AnalyzerTiming{Name: az.Name, Elapsed: time.Since(start)}
		}(i, az)
	}
	wg.Wait()

	var out []Diagnostic
	for _, ds := range results {
		out = append(out, ds...)
	}

	if unused {
		for _, ann := range allows.anns {
			if ann.used || !ran[ann.analyzer] {
				continue
			}
			d := Diagnostic{
				Pos:      ann.pos,
				Analyzer: UnusedAllow.Name,
				Message: fmt.Sprintf(
					"//harmony:allow %s suppresses nothing; delete the stale annotation",
					ann.analyzer),
			}
			if allows.allows(UnusedAllow.Name, d.Pos) {
				continue
			}
			out = append(out, d)
		}
	}

	sortDiagnostics(out)
	sort.Slice(timings, func(i, j int) bool { return timings[i].Name < timings[j].Name })
	return out, timings
}

// runOneAnalyzer produces one analyzer's post-filter findings: the
// per-analyzer unit of work the concurrent engine fans out.
func runOneAnalyzer(pkgs []*Package, az *Analyzer, g *Graph, allows *allowSet, scoped bool) []Diagnostic {
	var out []Diagnostic
	if az.Run != nil {
		for _, pkg := range pkgs {
			if scoped && az.Packages != nil && !az.Packages(pkg.Path) {
				continue
			}
			pass := &Pass{Analyzer: az, Pkg: pkg}
			az.Run(pass)
			for _, d := range pass.diags {
				if scoped && az.Files != nil && !az.Files(pkg.Path, d.Pos.Filename) {
					continue
				}
				if allows.allows(az.Name, d.Pos) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	if az.RunModule != nil {
		mp := &ModulePass{Analyzer: az, Pkgs: pkgs, Graph: g, allows: allows}
		az.RunModule(mp)
		for _, d := range mp.diags {
			if allows.allows(az.Name, d.Pos) {
				continue
			}
			out = append(out, d)
		}
	}
	return out
}

func sortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// allowAnn is one //harmony:allow annotation, with its consumption state:
// an annotation never consulted by a matching diagnostic is stale, which
// unusedallow reports.
type allowAnn struct {
	analyzer string
	pos      token.Position // annotation site
	used     bool
}

// allowSet indexes annotations by the lines they bind to. An annotation
// binds to its own line (covering end-of-line annotations and, for
// compatibility, the line below) and to the first line after its
// enclosing contiguous comment block — so a regular // comment between
// the annotation and the flagged code does not break the binding.
type allowSet struct {
	mu     sync.Mutex                     // serializes used-marking across concurrent analyzers
	byLine map[string]map[int][]*allowAnn // file -> bound line -> annotations
	anns   []*allowAnn                    // collection order, for unusedallow
}

// allows reports whether a diagnostic from the named analyzer at pos is
// suppressed, marking the matching annotation as used. The marking is
// monotone (used only ever flips to true), so the answer is independent
// of the interleaving of concurrent analyzers.
func (a *allowSet) allows(name string, pos token.Position) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	hit := false
	for _, ann := range a.byLine[pos.Filename][pos.Line] {
		if ann.analyzer == name {
			ann.used = true
			hit = true
		}
	}
	return hit
}

const (
	allowPrefix    = "harmony:allow"
	hotPathMarker  = "harmony:hotpath"
	coldPathMarker = "harmony:coldpath"
)

// commentDirective strips the comment syntax from c and, when the result
// starts with the given marker, returns the remainder (the marker's
// arguments) and true.
func commentDirective(c *ast.Comment, marker string) (string, bool) {
	text := strings.TrimPrefix(c.Text, "//")
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
	if text != marker && !strings.HasPrefix(text, marker+" ") {
		return "", false
	}
	return strings.TrimSpace(strings.TrimPrefix(text, marker)), true
}

// collectAllows scans every comment in the packages for allow annotations.
func collectAllows(pkgs ...*Package) *allowSet {
	set := &allowSet{byLine: make(map[string]map[int][]*allowAnn)}
	seen := make(map[string]bool) // file:line:analyzer, dedup
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				groupEnd := pkg.Fset.Position(cg.End()).Line
				for _, c := range cg.List {
					args, ok := commentDirective(c, allowPrefix)
					if !ok {
						continue
					}
					fields := strings.Fields(args)
					if len(fields) == 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					// Only the first field is the analyzer name; the rest
					// is a free-text reason.
					key := fmt.Sprintf("%s:%d:%s", pos.Filename, pos.Line, fields[0])
					if seen[key] {
						continue
					}
					seen[key] = true
					ann := &allowAnn{analyzer: fields[0], pos: pos}
					set.anns = append(set.anns, ann)
					set.bind(ann, pos.Line)
					set.bind(ann, pos.Line+1)
					// Bind through the rest of a contiguous comment block:
					// the annotation still covers the first code line after
					// the block even when ordinary comments follow it.
					if groupEnd+1 > pos.Line+1 {
						set.bind(ann, groupEnd+1)
					}
				}
			}
		}
	}
	return set
}

func (a *allowSet) bind(ann *allowAnn, line int) {
	lines := a.byLine[ann.pos.Filename]
	if lines == nil {
		lines = make(map[int][]*allowAnn)
		a.byLine[ann.pos.Filename] = lines
	}
	lines[line] = append(lines[line], ann)
}

// All returns every analyzer in the suite, sorted by name.
func All() []*Analyzer {
	return []*Analyzer{
		CtxFlow,
		DeferClose,
		DeterTaint,
		DivZero,
		ErrFlow,
		FloatEq,
		GoLeak,
		HotPathAlloc,
		LockedField,
		LockOrder,
		NaNSource,
		NoDeterm,
		RNGDiscipline,
		SortedEmit,
		UnitCheck,
		UnusedAllow,
	}
}

// ByName returns the named analyzers, erroring on unknown names.
func ByName(names []string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, az := range All() {
		byName[az.Name] = az
	}
	var out []*Analyzer
	for _, n := range names {
		az, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, az)
	}
	return out, nil
}

// UnusedAllow reports //harmony:allow annotations that no longer
// suppress any finding of the analyzers being run, so suppressions
// cannot rot silently after the code they excused is fixed or deleted.
// It consumes the other analyzers' suppression bookkeeping, runs last,
// and only considers annotations naming an analyzer in the current run.
var UnusedAllow = &Analyzer{
	Name: "unusedallow",
	Doc:  "report //harmony:allow annotations that no longer suppress any finding",
}

// pkgPathOf resolves the import path behind a selector base, or "" when
// the expression is not a package qualifier.
func (p *Pass) pkgPathOf(x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}
