package lint

// Intra-procedural control-flow graphs over go/ast function bodies.
//
// A CFG lowers one function body to basic blocks connected by directed
// edges. Blocks carry the simple statements and controlling expressions
// they execute, in source order — never compound statements, whose
// bodies become blocks of their own. The lowering covers if/else,
// for (all three clauses), range, switch (with fallthrough), type
// switch, select, labeled break/continue, goto, defer, and treats
// panic / os.Exit / log.Fatal* / runtime.Goexit as flow terminators.
//
// The graph is deterministic: block indices follow lowering order,
// which follows source order, so two builds of the same body are
// structurally identical. DebugString renders that shape for golden
// tests.

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// Block is one basic block. Nodes holds simple statements and the
// controlling expressions evaluated in this block (for an `if` block:
// the init statement and the condition), in execution order. Compound
// statements never appear in Nodes.
type Block struct {
	Index int
	Kind  string     // "entry", "exit", "if.then", "for.loop", ...
	Nodes []ast.Node // simple statements + control expressions, source order
	Term  ast.Stmt   // the branching statement this block ends on, if any
	Comm  ast.Stmt   // for select.case blocks: the comm clause's send/recv
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of a single function body. Exit is the
// unique synthetic exit block: every return statement and every fall
// off the end of the body edges into it. Blocks that cannot reach Exit
// run forever (or end the process).
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// NewCFG lowers a function body to basic blocks. A nil body (external
// declaration) yields a two-block entry→exit graph.
func NewCFG(body *ast.BlockStmt) *CFG {
	c := &CFG{}
	b := &cfgBuilder{
		c:      c,
		labels: make(map[string]*Block),
		gotos:  make(map[string][]*Block),
	}
	c.Entry = b.newBlock("entry")
	c.Exit = &Block{Kind: "exit"}
	b.cur = c.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	if b.cur != nil {
		b.edge(b.cur, c.Exit)
	}
	c.Blocks = append(c.Blocks, c.Exit)
	for i, blk := range c.Blocks {
		blk.Index = i
	}
	for _, blk := range c.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return c
}

// branchTarget is one entry of the break/continue resolution stack.
type branchTarget struct {
	label string
	brk   *Block
	cont  *Block // nil for switch/select entries
}

type cfgBuilder struct {
	c       *CFG
	cur     *Block // nil while lowering unreachable code
	targets []branchTarget
	labels  map[string]*Block   // resolved goto/label targets
	gotos   map[string][]*Block // blocks waiting on a forward label
	label   string              // pending label for the next loop/switch/select
	fallTo  *Block              // fallthrough target while lowering a case body
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Kind: kind}
	b.c.Blocks = append(b.c.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// ensure materializes a block for statements lowered while cur is nil
// (code after a return/branch). Such blocks have no predecessors and
// stay invisible to path-sensitive checks, but keep lowering total.
func (b *cfgBuilder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock("dead")
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) {
	blk := b.ensure()
	blk.Nodes = append(blk.Nodes, n)
}

// startBlock begins a new block with an edge from cur (when reachable).
func (b *cfgBuilder) startBlock(kind string) *Block {
	blk := b.newBlock(kind)
	if b.cur != nil {
		b.edge(b.cur, blk)
	}
	b.cur = blk
	return blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label set by a LabeledStmt so only the
// construct immediately under the label binds it.
func (b *cfgBuilder) takeLabel() string {
	l := b.label
	b.label = ""
	return l
}

// findBreak resolves the target of a (possibly labeled) break.
func (b *cfgBuilder) findBreak(label string) *Block {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := b.targets[i]
		if label == "" || t.label == label {
			return t.brk
		}
	}
	return nil
}

// findContinue resolves the target of a (possibly labeled) continue.
func (b *cfgBuilder) findContinue(label string) *Block {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := b.targets[i]
		if t.cont == nil {
			continue // switch/select: continue passes through
		}
		if label == "" || t.label == label {
			return t.cont
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:

	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The label point is its own block so gotos have a target that
		// precedes any loop init of the labeled construct.
		lb := b.startBlock("label." + s.Label.Name)
		b.labels[s.Label.Name] = lb
		for _, g := range b.gotos[s.Label.Name] {
			b.edge(g, lb)
		}
		delete(b.gotos, s.Label.Name)
		b.label = s.Label.Name
		b.stmt(s.Stmt)
		b.label = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.ensure()
		cond.Term = s
		then := b.newBlock("if.then")
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		thenEnd := b.cur
		var elseEnd *Block
		elseFrom := cond // no else: false branch falls through
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			elseEnd = b.cur
			elseFrom = nil
		}
		if thenEnd == nil && elseEnd == nil && elseFrom == nil {
			b.cur = nil
			return
		}
		done := b.newBlock("if.done")
		if elseFrom != nil {
			b.edge(elseFrom, done)
		}
		if thenEnd != nil {
			b.edge(thenEnd, done)
		}
		if elseEnd != nil {
			b.edge(elseEnd, done)
		}
		b.cur = done

	case *ast.ForStmt:
		lbl := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.startBlock("for.loop")
		if s.Cond != nil {
			b.add(s.Cond)
		}
		head.Term = s
		body := b.newBlock("for.body")
		b.edge(head, body)
		var post *Block
		if s.Post != nil {
			post = b.newBlock("for.post")
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
		}
		done := b.newBlock("for.done")
		if s.Cond != nil {
			b.edge(head, done)
		}
		cont := head
		if post != nil {
			cont = post
		}
		b.targets = append(b.targets, branchTarget{label: lbl, brk: done, cont: cont})
		b.cur = body
		b.stmt(s.Body)
		b.targets = b.targets[:len(b.targets)-1]
		if b.cur != nil {
			b.edge(b.cur, cont)
		}
		b.cur = done

	case *ast.RangeStmt:
		lbl := b.takeLabel()
		b.add(s.X)
		head := b.startBlock("range.loop")
		head.Term = s
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.edge(head, body)
		b.edge(head, done)
		b.targets = append(b.targets, branchTarget{label: lbl, brk: done, cont: head})
		b.cur = body
		b.stmt(s.Body)
		b.targets = b.targets[:len(b.targets)-1]
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.cur = done

	case *ast.SwitchStmt:
		b.lowerSwitch(s, s.Init, s.Tag, caseClauses(s.Body))

	case *ast.TypeSwitchStmt:
		b.lowerSwitch(s, s.Init, nil, caseClauses(s.Body))

	case *ast.SelectStmt:
		lbl := b.takeLabel()
		cond := b.ensure()
		cond.Term = s
		done := b.newBlock("select.done")
		b.targets = append(b.targets, branchTarget{label: lbl, brk: done})
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			kind := "select.case"
			if cc.Comm == nil {
				kind = "select.default"
			}
			blk := b.newBlock(kind)
			b.edge(cond, blk)
			b.cur = blk
			if cc.Comm != nil {
				blk.Comm = cc.Comm
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			if b.cur != nil {
				b.edge(b.cur, done)
			}
		}
		b.targets = b.targets[:len(b.targets)-1]
		// select{} (no cases) blocks forever: done keeps no entry edge
		// and the function cannot reach exit through it.
		b.cur = done

	case *ast.BranchStmt:
		blk := b.ensure()
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := b.findBreak(label); t != nil {
				b.edge(blk, t)
			}
		case token.CONTINUE:
			if t := b.findContinue(label); t != nil {
				b.edge(blk, t)
			}
		case token.GOTO:
			if t, ok := b.labels[label]; ok {
				b.edge(blk, t)
			} else {
				b.gotos[label] = append(b.gotos[label], blk)
			}
		case token.FALLTHROUGH:
			if b.fallTo != nil {
				b.edge(blk, b.fallTo)
			}
		}
		b.cur = nil

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.c.Exit)
		b.cur = nil

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && noReturnCall(call) {
			b.cur = nil // panic/os.Exit/...: flow ends without reaching exit
		}

	default:
		// DeclStmt, AssignStmt, IncDecStmt, SendStmt, GoStmt, DeferStmt.
		b.add(s)
	}
}

func caseClauses(body *ast.BlockStmt) []*ast.CaseClause {
	out := make([]*ast.CaseClause, len(body.List))
	for i, cl := range body.List {
		out[i] = cl.(*ast.CaseClause)
	}
	return out
}

// lowerSwitch handles both expression and type switches. The tag block
// branches to every case (and to done when no default exists); each
// case body may fall through to the next clause.
func (b *cfgBuilder) lowerSwitch(s ast.Stmt, init ast.Stmt, tag ast.Expr, clauses []*ast.CaseClause) {
	lbl := b.takeLabel()
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if ts, ok := s.(*ast.TypeSwitchStmt); ok {
		b.add(ts.Assign)
	}
	cond := b.ensure()
	cond.Term = s
	done := b.newBlock("switch.done")
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		kind := "switch.case"
		if cc.List == nil {
			kind = "switch.default"
			hasDefault = true
		}
		bodies[i] = b.newBlock(kind)
		b.edge(cond, bodies[i])
	}
	if !hasDefault {
		b.edge(cond, done)
	}
	b.targets = append(b.targets, branchTarget{label: lbl, brk: done})
	outerFall := b.fallTo
	for i, cc := range clauses {
		b.cur = bodies[i]
		for _, e := range cc.List {
			b.add(e)
		}
		b.fallTo = nil
		if i+1 < len(bodies) {
			b.fallTo = bodies[i+1]
		}
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, done)
		}
	}
	b.fallTo = outerFall
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = done
}

// noReturnCall recognizes calls that end control flow without reaching
// the function's exit: panic, os.Exit, log.Fatal*, runtime.Goexit. The
// match is syntactic (shadowing these names would defeat it), which is
// the same trade the rest of the suite makes for zero dependencies.
func noReturnCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case pkg.Name == "os" && fun.Sel.Name == "Exit":
			return true
		case pkg.Name == "log" && strings.HasPrefix(fun.Sel.Name, "Fatal"):
			return true
		case pkg.Name == "runtime" && fun.Sel.Name == "Goexit":
			return true
		}
	}
	return false
}

// CanReachExit reports, per block, whether the exit block is reachable.
// Blocks outside the result set loop forever or end the process.
func (c *CFG) CanReachExit() map[*Block]bool {
	reach := map[*Block]bool{c.Exit: true}
	work := []*Block{c.Exit}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		for _, p := range blk.Preds {
			if !reach[p] {
				reach[p] = true
				work = append(work, p)
			}
		}
	}
	return reach
}

// ReachableFromEntry reports, per block, whether the entry reaches it.
func (c *CFG) ReachableFromEntry() map[*Block]bool {
	reach := map[*Block]bool{c.Entry: true}
	work := []*Block{c.Entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range blk.Succs {
			if !reach[s] {
				reach[s] = true
				work = append(work, s)
			}
		}
	}
	return reach
}

// DebugString renders the CFG one block per line:
//
//	b0 entry: [x := 0] -> b1
//
// for golden tests. Node source text is printed with go/printer and
// collapsed to single-line form.
func (c *CFG) DebugString(fset *token.FileSet) string {
	var sb strings.Builder
	for _, blk := range c.Blocks {
		fmt.Fprintf(&sb, "b%d %s:", blk.Index, blk.Kind)
		for _, n := range blk.Nodes {
			fmt.Fprintf(&sb, " [%s]", nodeSource(fset, n))
		}
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func nodeSource(fset *token.FileSet, n ast.Node) string {
	var buf strings.Builder
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}
