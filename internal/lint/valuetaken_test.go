package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"sort"
	"testing"
)

// TestCollectValueTaken pins the value-taken set over the callgraph
// fixture: the declared functions whose values escape into variables or
// interface method values, which function-value dispatch later resolves
// by signature. The set must include the method value (Dog.Sound), the
// bound method (Gauge.Add), and — via the interface method value in
// TakeInterfaceMethod — every Adder implementation ((*Offset).Add). The
// abstract interface methods (Animal.Sound, Adder.Add) also land in the
// set: the Ident walk visits the Sel identifier of every method
// selector, and the call-position filter only excludes the selector
// expression as a whole. That over-approximation is harmless — abstract
// methods have no bodies to dispatch to — and deliberate, so it is
// pinned here. Never included: plainly-called package functions (helper)
// and methods whose value is never taken (Shifter.Shift).
func TestCollectValueTaken(t *testing.T) {
	pkgs, err := sharedLoader(t).LoadFixtureTree(filepath.Join("testdata", "src", "callgraph"))
	if err != nil {
		t.Fatal(err)
	}
	b := &builder{
		g: &Graph{
			byObj: make(map[*types.Func]*Node),
			byLit: make(map[*ast.FuncLit]*Node),
			fset:  pkgs[0].Fset,
		},
		pkgs:       pkgs,
		valueTaken: make(map[*types.Func]bool),
		implCache:  make(map[implKey][]*types.Func),
		reach:      make(map[string]map[string]bool),
	}
	b.collectNamedTypes()
	b.collectNodes()
	for _, node := range b.g.Funcs {
		b.collectValueTaken(node)
	}

	var got []string
	for fn := range b.valueTaken {
		got = append(got, prettyFuncName(fn))
	}
	sort.Strings(got)
	want := []string{
		"callgraph.(*Offset).Add",
		"callgraph.Adder.Add",
		"callgraph.Animal.Sound",
		"callgraph.Dog.Sound",
		"callgraph.Gauge.Add",
	}
	if len(got) != len(want) {
		t.Fatalf("value-taken set = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("value-taken set = %v, want %v", got, want)
		}
	}
}
