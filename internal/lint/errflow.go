package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ErrFlow flags discarded errors in production (non-test) code: a call
// whose results include an error used as a bare statement, and blank
// assignments (`_ = f()`, `v, _ := f()`) that throw an error component
// away. A deliberate discard carries `//harmony:allow errflow <reason>`
// on or above the line, so the reason is adjacent to the discard.
//
// Pragmatic exemptions, mirroring the contracts involved:
//   - fmt.Print/Println/Printf/Fprint* — best-effort human output
//   - methods on bytes.Buffer and strings.Builder — documented to never
//     return a non-nil error
//   - deferred calls — deferred cleanup is best-effort by convention;
//     a Close whose error matters must be checked explicitly
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc:  "flag unchecked error-returning calls and blank error discards in production packages",
	Run:  runErrFlow,
}

func runErrFlow(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.DeferStmt:
				return false // deferred cleanup is exempt
			case *ast.ExprStmt:
				call, ok := astUnparen(st.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				if pos, name, ok := discardedError(pass, call); ok {
					pass.Reportf(pos,
						"error result of %s is discarded; handle it or annotate //harmony:allow errflow <reason>",
						name)
				}
				return true
			case *ast.GoStmt:
				if pos, name, ok := discardedError(pass, st.Call); ok {
					pass.Reportf(pos,
						"error result of %s is discarded by the go statement; collect it (//harmony:allow errflow <reason> to permit)",
						name)
				}
				return true
			case *ast.AssignStmt:
				checkBlankErr(pass, st)
				return true
			}
			return true
		})
	}
}

// discardedError reports whether the bare call drops an error result.
func discardedError(pass *Pass, call *ast.CallExpr) (pos token.Pos, name string, drop bool) {
	tv, ok := pass.Pkg.Info.Types[call]
	if !ok || !hasErrorResult(tv.Type) {
		return token.NoPos, "", false
	}
	fn := calleeFunc(pass, call)
	if errFlowExempt(fn) {
		return token.NoPos, "", false
	}
	label := "the call"
	if fn != nil {
		label = prettyFuncName(fn)
	}
	return call.Pos(), label, true
}

// calleeFunc resolves the called *types.Func when statically known.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	if fn := staticCallee(pass.Pkg.Info, call); fn != nil {
		return fn
	}
	if sel, ok := astUnparen(call.Fun).(*ast.SelectorExpr); ok {
		if selection, ok := pass.Pkg.Info.Selections[sel]; ok {
			fn, _ := selection.Obj().(*types.Func)
			return fn
		}
	}
	return nil
}

// checkBlankErr flags `_` assignments whose corresponding value is an
// error: `_ = f()`, `v, _ := g()` with g's second result an error.
func checkBlankErr(pass *Pass, as *ast.AssignStmt) {
	info := pass.Pkg.Info
	// Multi-value form: x, _ := f().
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		tv, ok := info.Types[as.Rhs[0]]
		if !ok {
			return
		}
		tuple, ok := tv.Type.(*types.Tuple)
		if !ok {
			return
		}
		for i, lhs := range as.Lhs {
			if i >= tuple.Len() {
				break
			}
			if isBlank(lhs) && isErrorType(tuple.At(i).Type()) && !rhsExempt(pass, as.Rhs[0]) {
				pass.Reportf(lhs.Pos(),
					"error discarded into _; handle it or annotate //harmony:allow errflow <reason>")
			}
		}
		return
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) || !isBlank(lhs) {
			continue
		}
		tv, ok := info.Types[as.Rhs[i]]
		if !ok {
			continue
		}
		if isErrorType(tv.Type) && !rhsExempt(pass, as.Rhs[i]) {
			pass.Reportf(lhs.Pos(),
				"error discarded into _; handle it or annotate //harmony:allow errflow <reason>")
		}
	}
}

// rhsExempt applies the call exemptions to the assignment form.
func rhsExempt(pass *Pass, rhs ast.Expr) bool {
	call, ok := astUnparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	return errFlowExempt(calleeFunc(pass, call))
}

// errFlowExempt implements the documented exemptions.
func errFlowExempt(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if path == "fmt" && (strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	owner := named.Obj()
	if owner.Pkg() == nil {
		return false
	}
	switch owner.Pkg().Path() + "." + owner.Name() {
	case "bytes.Buffer", "strings.Builder":
		return true
	}
	return false
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// hasErrorResult reports whether a call result type contains an error:
// a lone error or a tuple with an error component.
func hasErrorResult(t types.Type) bool {
	if isErrorType(t) {
		return true
	}
	tuple, ok := t.(*types.Tuple)
	if !ok {
		return false
	}
	for i := 0; i < tuple.Len(); i++ {
		if isErrorType(tuple.At(i).Type()) {
			return true
		}
	}
	return false
}
