package lint

import (
	"path/filepath"
	"testing"
)

// graphFixture loads testdata/src/callgraph and builds its call graph.
func graphFixture(t *testing.T) *Graph {
	t.Helper()
	pkgs, err := sharedLoader(t).LoadFixtureTree(filepath.Join("testdata", "src", "callgraph"))
	if err != nil {
		t.Fatalf("load callgraph fixture: %v", err)
	}
	return BuildGraph(pkgs)
}

func nodeByName(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.Funcs {
		if n.Name == name {
			return n
		}
	}
	var names []string
	for _, n := range g.Funcs {
		names = append(names, n.Name)
	}
	t.Fatalf("no node named %s in %v", name, names)
	return nil
}

// edgesTo returns caller's outgoing edges whose callee has the name.
func edgesTo(caller *Node, callee string) []*Edge {
	var out []*Edge
	for _, e := range caller.Out {
		if e.Callee.Name == callee {
			out = append(out, e)
		}
	}
	return out
}

func TestGraphStaticDispatch(t *testing.T) {
	g := graphFixture(t)
	es := edgesTo(nodeByName(t, g, "callgraph.Direct"), "callgraph.helper")
	if len(es) != 1 {
		t.Fatalf("Direct -> helper: got %d edges, want 1", len(es))
	}
	if e := es[0]; e.Dynamic || e.Kind != EdgeCall {
		t.Errorf("Direct -> helper: dynamic=%v kind=%v, want static call", e.Dynamic, e.Kind)
	}
}

func TestGraphInterfaceDispatch(t *testing.T) {
	g := graphFixture(t)
	speak := nodeByName(t, g, "callgraph.Speak")
	for _, callee := range []string{"callgraph.Dog.Sound", "callgraph.(*Cat).Sound"} {
		es := edgesTo(speak, callee)
		if len(es) != 1 {
			t.Fatalf("Speak -> %s: got %d edges, want 1", callee, len(es))
		}
		if e := es[0]; !e.Dynamic || e.Via != "interface dispatch" {
			t.Errorf("Speak -> %s: dynamic=%v via=%q, want interface dispatch", callee, e.Dynamic, e.Via)
		}
	}
	if extra := edgesTo(speak, "callgraph.helper"); len(extra) != 0 {
		t.Errorf("Speak should not reach helper, got %d edges", len(extra))
	}
}

func TestGraphGoDeferEdges(t *testing.T) {
	g := graphFixture(t)
	es := edgesTo(nodeByName(t, g, "callgraph.Spawn"), "callgraph.helper")
	if len(es) != 2 {
		t.Fatalf("Spawn -> helper: got %d edges, want 2 (go + defer)", len(es))
	}
	kinds := map[EdgeKind]bool{}
	for _, e := range es {
		kinds[e.Kind] = true
	}
	if !kinds[EdgeGo] || !kinds[EdgeDefer] {
		t.Errorf("Spawn -> helper kinds = %v, want go and defer", kinds)
	}
}

// TestGraphFunctionValueDispatch pins method-value resolution: taking
// d.Sound makes Dog.Sound (and only it) a candidate for calls through a
// func() string value; (*Cat).Sound is never value-taken.
func TestGraphFunctionValueDispatch(t *testing.T) {
	g := graphFixture(t)
	cv := nodeByName(t, g, "callgraph.CallValue")
	es := edgesTo(cv, "callgraph.Dog.Sound")
	if len(es) != 1 {
		t.Fatalf("CallValue -> Dog.Sound: got %d edges, want 1", len(es))
	}
	if e := es[0]; !e.Dynamic || e.Via != "function value" {
		t.Errorf("CallValue -> Dog.Sound: dynamic=%v via=%q, want function value", e.Dynamic, e.Via)
	}
	if extra := edgesTo(cv, "callgraph.(*Cat).Sound"); len(extra) != 0 {
		t.Errorf("CallValue should not reach (*Cat).Sound (never value-taken), got %d edges", len(extra))
	}
}

func TestGraphClosureEdge(t *testing.T) {
	g := graphFixture(t)
	es := edgesTo(nodeByName(t, g, "callgraph.Closure"), "callgraph.Closure.func1")
	if len(es) != 1 {
		t.Fatalf("Closure -> Closure.func1: got %d edges, want 1", len(es))
	}
	if e := es[0]; !e.Dynamic || e.Via != "closure" {
		t.Errorf("Closure edge: dynamic=%v via=%q, want closure", e.Dynamic, e.Via)
	}
}

func TestGraphAnnotationsAndExt(t *testing.T) {
	g := graphFixture(t)
	if n := nodeByName(t, g, "callgraph.Hot"); !n.HotPath || n.ColdPath {
		t.Errorf("Hot: HotPath=%v ColdPath=%v, want hotpath only", n.HotPath, n.ColdPath)
	}
	if n := nodeByName(t, g, "callgraph.Cold"); n.HotPath || !n.ColdPath {
		t.Errorf("Cold: HotPath=%v ColdPath=%v, want coldpath only", n.HotPath, n.ColdPath)
	}
	// In/Out are symmetric.
	helper := nodeByName(t, g, "callgraph.helper")
	if len(helper.In) != 3 {
		t.Errorf("helper has %d in-edges, want 3 (Direct call, Spawn go, Spawn defer)", len(helper.In))
	}
	for _, e := range helper.In {
		if e.Callee != helper {
			t.Errorf("in-edge of helper has callee %s", e.Callee.Name)
		}
	}
}

// TestGraphBoundMethodDispatch pins bound-method resolution: binding
// g.Add to a local and calling through it resolves, by signature, to
// every value-taken func(int) int method — and to nothing else.
func TestGraphBoundMethodDispatch(t *testing.T) {
	g := graphFixture(t)
	bm := nodeByName(t, g, "callgraph.BoundMethod")
	es := edgesTo(bm, "callgraph.Gauge.Add")
	if len(es) != 1 {
		t.Fatalf("BoundMethod -> Gauge.Add: got %d edges, want 1", len(es))
	}
	if e := es[0]; !e.Dynamic || e.Via != "function value" {
		t.Errorf("BoundMethod -> Gauge.Add: dynamic=%v via=%q, want function value", e.Dynamic, e.Via)
	}
	if extra := edgesTo(bm, "callgraph.Shifter.Shift"); len(extra) != 0 {
		t.Errorf("BoundMethod should not reach Shifter.Shift (never value-taken), got %d edges", len(extra))
	}
	if extra := edgesTo(bm, "callgraph.Dog.Sound"); len(extra) != 0 {
		t.Errorf("BoundMethod should not reach Dog.Sound (signature mismatch), got %d edges", len(extra))
	}
}

// TestGraphInterfaceMethodValue pins the conservative rule for
// interface method values: taking a.Add marks every implementation as
// value-taken, so CallAdder's indirect call reaches both concrete Adds.
func TestGraphInterfaceMethodValue(t *testing.T) {
	g := graphFixture(t)
	ca := nodeByName(t, g, "callgraph.CallAdder")
	for _, callee := range []string{"callgraph.Gauge.Add", "callgraph.(*Offset).Add"} {
		es := edgesTo(ca, callee)
		if len(es) != 1 {
			t.Fatalf("CallAdder -> %s: got %d edges, want 1", callee, len(es))
		}
		if e := es[0]; !e.Dynamic || e.Via != "function value" {
			t.Errorf("CallAdder -> %s: dynamic=%v via=%q, want function value", callee, e.Dynamic, e.Via)
		}
	}
	if extra := edgesTo(ca, "callgraph.Shifter.Shift"); len(extra) != 0 {
		t.Errorf("CallAdder should not reach Shifter.Shift (never value-taken), got %d edges", len(extra))
	}
}
