package lint

// Shared machinery for the flow-sensitive concurrency analyzers:
// mutex/channel identity resolution, recognition of sync primitive and
// blocking calls, and the held-lockset dataflow problem the lockorder /
// lockedfield / deferclose analyzers run over function CFGs.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// lockRef identifies one mutex value at a program point.
//
// Instance is the receiver expression as written ("e.mu", "g.mu",
// "v.m.vec.mu") — the per-function identity locksets are keyed by.
// Global is the cross-function identity for struct fields and package
// variables ("daemon.Engine.mu", "tenant.Multi.mu", "metrics.vec.mu"),
// or "" for locals and parameters, which have no stable module-wide
// name. Base is Instance minus the final selector ("e", "v.m.vec") and
// Owner the named struct type the field lives on — lockedfield matches
// a guarded access to its lock through Base+Owner.
type lockRef struct {
	Instance string
	Global   string
	Base     string
	Owner    *types.Named
}

// lockAcq is one acquisition: where, and of what.
type lockAcq struct {
	Pos  token.Pos
	Ref  lockRef
	Kind string // "Lock" or "RLock"
}

// heldLocks maps lock Instance keys to their acquisition. Facts are
// immutable: transfer functions clone before editing.
type heldLocks map[string]lockAcq

func cloneHeld(h heldLocks) heldLocks {
	out := make(heldLocks, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

func heldEqual(a, b heldLocks) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || va.Pos != vb.Pos || va.Kind != vb.Kind {
			return false
		}
	}
	return true
}

// sortedHeld returns the held set ordered by Instance for deterministic
// iteration and message rendering.
func sortedHeld(h heldLocks) []lockAcq {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]lockAcq, len(keys))
	for i, k := range keys {
		out[i] = h[k]
	}
	return out
}

// importPathOf resolves the import path behind a selector base, or ""
// when the expression is not a package qualifier.
func importPathOf(pkg *Package, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// mutexOp recognizes sync mutex method calls. recv is the receiver
// expression ("e.mu" in e.mu.Lock()); kind is one of Lock, RLock,
// Unlock, RUnlock.
func mutexOp(pkg *Package, e ast.Node) (recv ast.Expr, kind string, ok bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, "", false
	}
	selection, ok := pkg.Info.Selections[sel]
	if !ok {
		return nil, "", false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// namedStructOf strips pointers and reports the named struct type of t,
// if any.
func namedStructOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return nil
	}
	return named
}

// globalFieldName renders the module-wide identity of a struct field:
// "daemon.Engine.mu".
func globalFieldName(named *types.Named, field string) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return pathBase(obj.Pkg().Path()) + "." + obj.Name() + "." + field
}

// resolveLockRef names the mutex behind a receiver expression.
func resolveLockRef(pkg *Package, x ast.Expr) lockRef {
	ref := lockRef{Instance: types.ExprString(x)}
	switch x := x.(type) {
	case *ast.SelectorExpr:
		ref.Base = types.ExprString(x.X)
		if tv, ok := pkg.Info.Types[x.X]; ok {
			if named := namedStructOf(tv.Type); named != nil {
				ref.Owner = named
				ref.Global = globalFieldName(named, x.Sel.Name)
			}
		}
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[x].(*types.Var); ok && v.Pkg() != nil {
			if v.Parent() == v.Pkg().Scope() {
				ref.Global = pathBase(v.Pkg().Path()) + "." + v.Name()
			}
		}
	}
	return ref
}

// chanIdentity names a channel expression: a module-wide name for
// struct fields and package vars ("" otherwise), plus the object for
// local identity when the expression is a bare identifier.
func chanIdentity(pkg *Package, x ast.Expr) (global string, obj types.Object) {
	switch x := x.(type) {
	case *ast.SelectorExpr:
		if tv, ok := pkg.Info.Types[x.X]; ok {
			if named := namedStructOf(tv.Type); named != nil {
				return globalFieldName(named, x.Sel.Name), nil
			}
		}
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[x].(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return pathBase(v.Pkg().Path()) + "." + v.Name(), v
			}
			return "", v
		}
	}
	return "", nil
}

// walkNodeOps visits n and its descendants in source order, skipping
// function literal bodies (their statements execute on their own CFG;
// the literal itself is still visited) and deferred calls (which
// execute at function exit, not here).
func walkNodeOps(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, isLit := m.(*ast.FuncLit); isLit {
			fn(m)
			return false
		}
		if _, isDefer := m.(*ast.DeferStmt); isDefer && m != n {
			return false
		}
		fn(m)
		return true
	})
}

// applyLockOps folds one CFG node into a held-lockset. Deferred
// unlocks are ignored: under held-span semantics a lock released only
// by defer stays held until function exit, which is exactly what the
// blocking-under-lock and guarded-field checks need.
func applyLockOps(pkg *Package, n ast.Node, fact heldLocks) heldLocks {
	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		return fact
	}
	out := fact
	mutated := false
	walkNodeOps(n, func(m ast.Node) {
		recv, kind, ok := mutexOp(pkg, m)
		if !ok {
			return
		}
		ref := resolveLockRef(pkg, recv)
		if !mutated {
			out = cloneHeld(out)
			mutated = true
		}
		switch kind {
		case "Lock", "RLock":
			if _, held := out[ref.Instance]; !held {
				out[ref.Instance] = lockAcq{Pos: m.Pos(), Ref: ref, Kind: kind}
			}
		case "Unlock", "RUnlock":
			delete(out, ref.Instance)
		}
	})
	return out
}

// lockProblem is the forward held-lockset analysis. must selects the
// merge: intersection proves a lock is held on every path (lockedfield
// guard checks), union tracks locks that may be held (lockorder edges,
// blocking-under-lock).
type lockProblem struct {
	pkg   *Package
	must  bool
	entry heldLocks
}

func (p lockProblem) Boundary() heldLocks {
	if p.entry == nil {
		return make(heldLocks)
	}
	return cloneHeld(p.entry)
}

func (p lockProblem) Transfer(b *Block, in heldLocks) heldLocks {
	out := in
	for _, n := range b.Nodes {
		out = applyLockOps(p.pkg, n, out)
	}
	return out
}

func (p lockProblem) Merge(a, b heldLocks) heldLocks {
	if p.must {
		out := make(heldLocks)
		for k, va := range a {
			if vb, ok := b[k]; ok {
				if vb.Pos < va.Pos {
					va = vb
				}
				out[k] = va
			}
		}
		return out
	}
	out := cloneHeld(a)
	for k, vb := range b {
		if va, ok := out[k]; !ok || vb.Pos < va.Pos {
			out[k] = vb
		}
	}
	return out
}

func (p lockProblem) Equal(a, b heldLocks) bool { return heldEqual(a, b) }

// solveLocksets runs the held-lockset analysis over a function body.
func solveLocksets(pkg *Package, c *CFG, must bool, entry heldLocks) Solution[heldLocks] {
	return Solve[heldLocks](c, lockProblem{pkg: pkg, must: must, entry: entry}, Forward)
}

// walkLockOps replays one block from its entry fact, calling visit with
// the lockset in force immediately before each node takes effect.
func walkLockOps(pkg *Package, blk *Block, in heldLocks, visit func(n ast.Node, held heldLocks)) {
	fact := in
	for _, n := range blk.Nodes {
		visit(n, fact)
		fact = applyLockOps(pkg, n, fact)
	}
}

// blockingOp recognizes calls that can block indefinitely: net/http
// round-trips, time.Sleep, and sync.WaitGroup.Wait. Channel operations
// and selects are recognized structurally by the callers.
func blockingOp(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if pkgPath := importPathOf(pkg, sel.X); pkgPath != "" {
		switch {
		case pkgPath == "net/http":
			return "net/http." + sel.Sel.Name + " round-trip", true
		case pkgPath == "time" && sel.Sel.Name == "Sleep":
			return "time.Sleep", true
		}
		return "", false
	}
	selection, ok := pkg.Info.Selections[sel]
	if !ok {
		return "", false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	named := namedStructOf(recv.Type())
	if named == nil {
		return "", false
	}
	owner := named.Obj()
	switch {
	case fn.Pkg().Path() == "net/http" && owner.Name() == "Client":
		return "http.Client." + fn.Name() + " round-trip", true
	case fn.Pkg().Path() == "sync" && owner.Name() == "WaitGroup" && fn.Name() == "Wait":
		return "WaitGroup.Wait", true
	}
	return "", false
}

// mutexishType reports types that are synchronization primitives
// themselves; lockedfield skips such fields when counting accesses.
func mutexishType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	switch obj.Name() {
	case "Mutex", "RWMutex", "Once", "WaitGroup", "Cond", "Map", "Pool":
		return true
	}
	return false
}

// isChanType reports whether t's underlying type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// describeLock renders a lock for messages: the Global name when the
// lock has one, the instance expression otherwise.
func describeLock(ref lockRef) string {
	if ref.Global != "" {
		return ref.Global
	}
	return ref.Instance
}

// summaryEdgeOK filters call-graph edges for interprocedural lock
// summaries: normal call/defer edges, excluding goroutine spawns (the
// spawnee runs on its own stack, caller locks are not held there) and
// dynamic dispatch except provably-local closures (CHA candidate sets
// would manufacture lock-order edges that no execution takes).
func summaryEdgeOK(e *Edge) bool {
	if e.Kind == EdgeGo {
		return false
	}
	if !e.Dynamic {
		return true
	}
	return e.Via == "closure" || e.Via == "local closure"
}
