package lint

import (
	"go/types"
	"sort"
)

// DeterTaint closes nodeterm's cross-package hole. nodeterm only sees a
// *direct* time.Now / os.Getenv / global math/rand call inside a
// deterministic package; a helper in internal/stats or internal/trace
// that reads the wall clock is invisible to every caller in sim, sched,
// or core. DeterTaint seeds taint at those nondeterministic roots
// anywhere in the module, propagates it along the call graph (including
// go/defer edges and conservative interface and function-value
// dispatch), and flags every call site where a deterministic package
// hands control to a tainted function outside the deterministic set. The
// diagnostic carries the full witness chain from the call site to the
// root.
//
// A `//harmony:allow nodeterm <reason>` or `//harmony:allow detertaint
// <reason>` at the root call site stops the taint at the source: the
// human vouching that a wall-clock read does not influence decisions
// (e.g. a latency metric) clears every transitive caller at once.
//
// Edges within the deterministic set are deliberately not reported:
// direct roots there are nodeterm findings, and a tainted deterministic
// callee is flagged at its own boundary call, so each violation surfaces
// exactly once, at the point where determinism is first lost.
var DeterTaint = &Analyzer{
	Name: "detertaint",
	Doc: "flag deterministic-package calls whose transitive callees read the wall clock, " +
		"the environment, or the global RNG, with the full call-path witness",
	RunModule: runDeterTaint,
}

// detertaintFixture marks the fixture tree as deterministic so the
// analyzer can be exercised outside its production scope.
const detertaintFixture = "fixture/detertaint"

func detertaintDeterministic(pkgPath string) bool {
	return deterministicPkgs[pkgPath] || pkgPath == detertaintFixture
}

// taintInfo records why a function is tainted: the next hop toward a
// nondeterministic root, and the root itself.
type taintInfo struct {
	next *Node  // nil when the root call is in this very function
	root string // e.g. "time.Now (wall clock)"
}

func runDeterTaint(pass *ModulePass) {
	tainted := make(map[*Node]taintInfo)

	// Seed: functions containing a direct, un-vouched-for root call.
	var frontier []*Node
	for _, n := range pass.Graph.Funcs {
		for _, ext := range n.Ext {
			why, ok := taintRoot(ext.Fn)
			if !ok {
				continue
			}
			if pass.Allowed(pass.Analyzer.Name, ext.Pos) || pass.Allowed("nodeterm", ext.Pos) {
				continue
			}
			if _, seen := tainted[n]; !seen {
				tainted[n] = taintInfo{root: why}
				frontier = append(frontier, n)
			}
			break
		}
	}

	// Propagate backwards along call edges, breadth-first so every
	// witness path is a shortest chain to its root. The frontier is
	// processed in deterministic graph order.
	for len(frontier) > 0 {
		sort.Slice(frontier, func(i, j int) bool { return frontier[i].Name < frontier[j].Name })
		var next []*Node
		for _, n := range frontier {
			for _, e := range n.In {
				if _, seen := tainted[e.Caller]; seen {
					continue
				}
				tainted[e.Caller] = taintInfo{next: n, root: tainted[n].root}
				next = append(next, e.Caller)
			}
		}
		frontier = next
	}

	// Report each boundary crossing: a deterministic-package function
	// calling a tainted function that is not itself deterministic-scope.
	for _, n := range pass.Graph.Funcs {
		if !detertaintDeterministic(n.Pkg.Path) {
			continue
		}
		for _, e := range n.Out {
			ti, ok := tainted[e.Callee]
			if !ok || detertaintDeterministic(e.Callee.Pkg.Path) {
				continue
			}
			path := witnessPath(n, e.Callee, tainted)
			via := ""
			if e.Dynamic {
				via = " (via " + e.Via + ")"
			}
			pass.ReportPathf(e.Pos, path,
				"%s of %s%s transitively reads %s: %s; deterministic packages must take it as input (//harmony:allow detertaint <reason> to permit)",
				e.Kind, e.Callee.Name, via, ti.root, PathString(path))
		}
	}
}

// witnessPath renders caller → … → root for the diagnostic.
func witnessPath(caller, callee *Node, tainted map[*Node]taintInfo) []string {
	path := []string{caller.Name}
	for n := callee; n != nil; {
		path = append(path, n.Name)
		ti := tainted[n]
		if ti.next == nil {
			path = append(path, ti.root)
			break
		}
		n = ti.next
	}
	return path
}

// taintRoot reports whether fn is a nondeterministic root and why.
// Roots are package-level functions only: a method on *rand.Rand is a
// seeded stream, not the process-global source.
func taintRoot(fn *types.Func) (string, bool) {
	if fn.Pkg() == nil {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", false
	}
	path, name := fn.Pkg().Path(), fn.Name()
	if why, ok := nodetermBanned[path][name]; ok {
		return pathBase(path) + "." + name + " (" + why + ")", true
	}
	if (path == "math/rand" || path == "math/rand/v2") && !rngConstructors[name] {
		return "rand." + name + " (process-global RNG)", true
	}
	return "", false
}

// The map-iteration-order family of roots is intentionally absent here:
// most map ranges are order-insensitive aggregations, so whole-program
// taint from every map range would be all noise. sortedemit enforces the
// ordered-iteration contract per package at the emit sites themselves.
