package lint

// A generic iterative dataflow solver over CFG blocks. Problems supply
// the lattice (Merge, Equal), the boundary fact, and a transfer
// function; Solve sweeps blocks round-robin in index order (reverse
// order for backward problems) until a fixed point.
//
// Facts must be treated as immutable by Transfer (return a fresh value)
// and Merge must be commutative and associative. Blocks that are never
// reached from the boundary keep no entry in the solution maps — the
// facts of unreachable code are undefined, and callers should skip
// such blocks.

// Direction selects which way facts flow through the CFG.
type Direction int

const (
	Forward  Direction = iota // entry→exit, facts merge over predecessors
	Backward                  // exit→entry, facts merge over successors
)

// Problem is one dataflow analysis. F is the fact type; the zero value
// of F is never passed to Transfer/Merge/Equal — only facts produced by
// Boundary, Transfer, or Merge are.
type Problem[F any] interface {
	// Boundary is the fact entering the flow's start block (the entry
	// block for forward problems, the exit block for backward ones).
	Boundary() F
	// Transfer computes the fact leaving a block from the fact entering
	// it, in flow direction. For backward problems "entering" means at
	// the block's end, and the transfer should replay Nodes in reverse.
	Transfer(b *Block, in F) F
	// Merge joins two facts at a control-flow join.
	Merge(a, b F) F
	// Equal reports whether two facts are the same (fixpoint test).
	Equal(a, b F) bool
}

// Solution holds per-block facts. In is the fact entering a block in
// flow direction, Out the fact leaving it. Blocks unreachable from the
// boundary are absent from both maps.
type Solution[F any] struct {
	In, Out map[*Block]F
}

// Solve runs the iterative algorithm to a fixed point and returns the
// per-block facts. Determinism: blocks are swept in index order and
// merge order follows the Preds/Succs slice order, both of which are
// fixed by the lowering.
func Solve[F any](c *CFG, p Problem[F], dir Direction) Solution[F] {
	sol := Solution[F]{
		In:  make(map[*Block]F, len(c.Blocks)),
		Out: make(map[*Block]F, len(c.Blocks)),
	}
	order := c.Blocks
	if dir == Backward {
		order = make([]*Block, len(c.Blocks))
		for i, blk := range c.Blocks {
			order[len(order)-1-i] = blk
		}
	}
	start := c.Entry
	if dir == Backward {
		start = c.Exit
	}
	flowIn := func(blk *Block) []*Block {
		if dir == Backward {
			return blk.Succs
		}
		return blk.Preds
	}

	for changed := true; changed; {
		changed = false
		for _, blk := range order {
			var in F
			have := false
			if blk == start {
				in = p.Boundary()
				have = true
			}
			for _, pb := range flowIn(blk) {
				out, ok := sol.Out[pb]
				if !ok {
					continue // not yet reached; contributes nothing
				}
				if !have {
					in, have = out, true
				} else {
					in = p.Merge(in, out)
				}
			}
			if !have {
				continue // unreachable from the boundary (so far)
			}
			out := p.Transfer(blk, in)
			oldIn, hadIn := sol.In[blk]
			oldOut := sol.Out[blk]
			if !hadIn || !p.Equal(oldIn, in) || !p.Equal(oldOut, out) {
				sol.In[blk] = in
				sol.Out[blk] = out
				changed = true
			}
		}
	}
	return sol
}
