// Package deferclose exercises the release-on-all-paths and
// no-blocking-under-lock checks.
package deferclose

import (
	"net/http"
	"sync"
	"time"
)

type counter struct {
	mu sync.Mutex
	n  int
}

// The early return leaves c.mu locked.
func (c *counter) Bad(stop bool) int {
	c.mu.Lock() // want `c\.mu \(Lock\) acquired here is not released on every path`
	if stop {
		return 0
	}
	c.n++
	c.mu.Unlock()
	return c.n
}

// A deferred unlock covers every path.
func (c *counter) Good(stop bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if stop {
		return 0
	}
	c.n++
	return c.n
}

// Released on one branch only; falling off the end still holds it.
func (c *counter) BranchLeak(flag bool) {
	c.mu.Lock() // want `c\.mu \(Lock\) acquired here is not released on every path: the function returns without Unlock`
	if flag {
		c.mu.Unlock()
	}
}

// Reading t.C only looks through the ticker — the obligation stays, and
// no path stops it.
func TickerLeak(d time.Duration) int {
	t := time.NewTicker(d) // want `time\.NewTicker acquired here is not released on every path`
	return len(t.C)
}

func TickerGood(d time.Duration) int {
	t := time.NewTicker(d)
	defer t.Stop()
	return len(t.C)
}

// Returning the resource transfers ownership to the caller.
func MakeTicker(d time.Duration) *time.Ticker {
	t := time.NewTicker(d)
	return t
}

// Passing the resource to another call transfers ownership too.
func register(*time.Ticker) {}

func StopLater(d time.Duration) {
	t := time.NewTicker(d)
	register(t)
}

// The error path returns the acquisition's error — the response was
// never valid there. The success path leaks the body.
func RespLeak(url string) (int, error) {
	resp, err := http.Get(url) // want `http\.Get response body acquired here is not released on every path`
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

func FetchGood(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return resp.StatusCode, nil
}

// Blocking channel operations under a held mutex.
func (c *counter) BadWait(ch chan int) {
	c.mu.Lock()
	<-ch // want `blocking channel receive while holding deferclose\.counter\.mu`
	c.mu.Unlock()
}

// The deferred unlock does not release for this check: the lock is held
// across the select, which has no default and can block forever.
func (c *counter) BadSelect(ch chan int, done chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select { // want `blocking select while holding deferclose\.counter\.mu`
	case v := <-ch:
		c.n = v
	case <-done:
	}
}

// A select with a default never blocks.
func (c *counter) OkPoll(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case v := <-ch:
		c.n = v
	default:
	}
}

// Annotated: the channel is buffered by construction.
func (c *counter) AllowedSend(ch chan int) {
	c.mu.Lock()
	//harmony:allow deferclose emit channel is buffered at construction, send cannot block
	ch <- c.n
	c.mu.Unlock()
}
