package unitcheck

// Malformed and stale annotations are reported, never silently ignored.

//harmony:unit(parsec) // want `malformed //harmony:unit\(parsec\): unknown unit "parsec"`
var Distance float64

//harmony:unit(W/) // want `malformed //harmony:unit\(W/\): trailing operator`
var Trailing float64

//harmony:unit // want `malformed //harmony:unit: missing \(EXPR\)`
var NoParen float64

//harmony:unit(W) nosuch // want `badBinding has no parameter or result named "nosuch"`
func badBinding(x float64) float64 { return x }

//harmony:unit(W) return 3 // want `badIndex has 1 result\(s\)`
func badIndex() float64 { return 1 }

//harmony:unit(W) // want `on a function needs a binding`
func noBinding() float64 { return 1 }

func stale() float64 {
	//harmony:unit(W) // want `binds to no annotatable declaration`
	x := 1.0
	return x
}

var _ = badBinding
var _ = badIndex
var _ = noBinding
var _ = stale
