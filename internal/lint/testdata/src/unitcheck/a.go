// Package unitcheck exercises the dimension/scale analyzer: the seeded
// W+kW mixing, the unannotated /1000 hop, call/return/composite-literal
// mismatches, interprocedural summaries, and the malformed-annotation
// reporting.
package unitcheck

// Rack models one rack's power accounting.
type Rack struct {
	//harmony:unit(W)
	IdleW float64
	//harmony:unit(kW)
	BudgetKW float64
	//harmony:unit(s)
	Uptime float64
}

// Samples carries a kW-valued series.
type Samples struct {
	//harmony:unit(kW)
	KW []float64
}

// Tariff is an annotated named type.
//
//harmony:unit($/kWh)
type Tariff float64

// cost mirrors the production energy.Cost chain; unitcheck verifies the
// body infers $ end to end.
//
//harmony:unit(W) watts
//harmony:unit(s) seconds
//harmony:unit($/kWh) price
//harmony:unit($) return
func cost(watts, seconds, price float64) float64 {
	return watts / 1000 * seconds / 3600 * price
}

// AddMixed is the seeded W + kW bug: same dimension, different scale.
func AddMixed(r Rack) float64 {
	return r.IdleW + r.BudgetKW // want `scale mixing: W \+ kW without an annotated conversion`
}

// HopMissing stores raw watts into a kW field without the /1000.
func HopMissing(r *Rack) {
	w := r.IdleW * 2
	r.BudgetKW = w // want `unannotated scale hop: assigning W value to kW target r\.BudgetKW \(convert with /1000\)`
}

// HopAnnotated is the correct conversion; no finding.
func HopAnnotated(r *Rack) {
	r.BudgetKW = r.IdleW / 1000
}

// CompareMismatch compares seconds against watts.
func CompareMismatch(r Rack) bool {
	return r.Uptime > r.IdleW // want `unit mismatch: s > W`
}

// BadCall passes kilowatts where watts are expected.
func BadCall(r Rack) float64 {
	return cost(r.BudgetKW, r.Uptime, 0.08) // want `unannotated scale hop: argument 1 to unitcheck.cost is kW but parameter watts is W \(convert with \*1000\)`
}

// BadReturn returns hours from a seconds-valued function.
//
//harmony:unit(s) return
func BadReturn(r Rack) float64 {
	h := r.Uptime / 3600
	return h // want `unannotated scale hop: returning h from unitcheck.BadReturn, whose result is declared s \(convert with \*3600\)`
}

// BadLit seeds a dimension mismatch in a composite literal.
func BadLit(r Rack) Rack {
	return Rack{IdleW: r.Uptime} // want `unit mismatch: field IdleW is W but the value is s`
}

// baseDraw feeds the interprocedural summary below.
//
//harmony:unit(W)
var baseDraw float64

// doubled has no annotation; its result is summarized to W from its
// return expression.
func doubled() float64 { return baseDraw * 2 }

// SummaryMismatch stores the summarized W into kW.
func SummaryMismatch(r *Rack) {
	d := doubled()
	r.BudgetKW = d // want `unannotated scale hop: assigning W value to kW target r\.BudgetKW`
}

// MixedSum accumulates kW through a range loop, then mixes in W.
func MixedSum(s Samples, r Rack) float64 {
	sum := 0.0
	for _, v := range s.KW {
		sum += v
	}
	return sum + r.IdleW // want `scale mixing: kW \+ W without an annotated conversion`
}

// TariffMismatch adds a price to a power draw.
func TariffMismatch(t Tariff, r Rack) float64 {
	return float64(t) + r.IdleW // want `unit mismatch: \$/kWh \+ W`
}

// Literals adopt the declared unit: no findings here.
func Literals() Rack {
	r := Rack{IdleW: 60, BudgetKW: 0.06, Uptime: 300}
	r.IdleW = 120
	return r
}
