// Package callgraph is the fixture for the call-graph builder unit
// tests: one example of each resolution rule (static dispatch, interface
// dispatch, method values, function values, closures, go/defer edges,
// and the hotpath/coldpath markers).
package callgraph

type Animal interface{ Sound() string }

type Dog struct{}

func (Dog) Sound() string { return "woof" }

type Cat struct{}

func (c *Cat) Sound() string { return "meow" }

// Speak dispatches through the interface: conservatively an edge to
// every implementing concrete method.
func Speak(a Animal) string { return a.Sound() }

// Direct is exact static dispatch.
func Direct() string { return helper() }

func helper() string { return "h" }

// Spawn produces go and defer edges to the same callee.
func Spawn() {
	go helper()
	defer helper()
}

// MethodValue takes d.Sound's value, making Dog.Sound a candidate for
// function-value dispatch.
func MethodValue(d Dog) func() string {
	f := d.Sound
	return f
}

// CallValue calls through a function value: resolved by signature to the
// value-taken candidates.
func CallValue(f func() string) string { return f() }

// Closure defines (but does not invoke) a literal: a dynamic edge from
// the definer.
func Closure() func() int {
	x := 1
	return func() int { return x }
}

//harmony:hotpath
func Hot() {}

//harmony:coldpath budgeted fallback
func Cold() {}
