// Package callgraph is the fixture for the call-graph builder unit
// tests: one example of each resolution rule (static dispatch, interface
// dispatch, method values, function values, closures, go/defer edges,
// and the hotpath/coldpath markers).
package callgraph

type Animal interface{ Sound() string }

type Dog struct{}

func (Dog) Sound() string { return "woof" }

type Cat struct{}

func (c *Cat) Sound() string { return "meow" }

// Speak dispatches through the interface: conservatively an edge to
// every implementing concrete method.
func Speak(a Animal) string { return a.Sound() }

// Direct is exact static dispatch.
func Direct() string { return helper() }

func helper() string { return "h" }

// Spawn produces go and defer edges to the same callee.
func Spawn() {
	go helper()
	defer helper()
}

// MethodValue takes d.Sound's value, making Dog.Sound a candidate for
// function-value dispatch.
func MethodValue(d Dog) func() string {
	f := d.Sound
	return f
}

// CallValue calls through a function value: resolved by signature to the
// value-taken candidates.
func CallValue(f func() string) string { return f() }

// Closure defines (but does not invoke) a literal: a dynamic edge from
// the definer.
func Closure() func() int {
	x := 1
	return func() int { return x }
}

// Gauge, Offset, and Shifter carry methods with the func(int) int call
// signature, distinct from Sound's, so the bound-method tests cannot
// cross-contaminate the func() string dispatch tests above.
type Gauge struct{ n int }

func (g Gauge) Add(d int) int { return g.n + d }

type Offset struct{ off int }

func (o *Offset) Add(d int) int { return o.off + d }

// Shifter's method shares the signature but is never value-taken
// anywhere in the fixture: function-value dispatch must exclude it.
type Shifter struct{}

func (Shifter) Shift(d int) int { return d << 1 }

// BoundMethod binds g.Add and calls through the local: the call
// resolves by signature to every value-taken func(int) int.
func BoundMethod(g Gauge) int {
	f := g.Add
	return f(1)
}

type Adder interface{ Add(int) int }

// TakeInterfaceMethod takes an interface method value: conservatively
// every implementation's value is taken.
func TakeInterfaceMethod(a Adder) func(int) int { return a.Add }

// CallAdder calls through a func(int) int parameter: candidates are the
// value-taken methods of that signature, never Shifter.Shift (not
// taken) or Dog.Sound (different signature).
func CallAdder(f func(int) int) int { return f(2) }

//harmony:hotpath
func Hot() {}

//harmony:coldpath budgeted fallback
func Cold() {}
