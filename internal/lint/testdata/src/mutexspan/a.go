// Package mutexspan is the fixture for the mutexspan analyzer: blocking
// operations under a held sync.Mutex/RWMutex are flagged; unlock-first,
// goroutine bodies, and annotated sites are allowed.
package mutexspan

import (
	"net/http"
	"sync"
	"time"
)

type box struct {
	mu sync.Mutex
	rw sync.RWMutex
	wg sync.WaitGroup
	ch chan int
	v  int
}

func (b *box) badSend() {
	b.mu.Lock()
	b.ch <- 1 // want `channel send while holding b\.mu \(locked at line 21\)`
	b.mu.Unlock()
}

func (b *box) badDeferRecv() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return <-b.ch // want `channel receive while holding b\.mu`
}

func (b *box) badSelect() {
	b.rw.RLock()
	defer b.rw.RUnlock()
	select { // want `select while holding b\.rw`
	case v := <-b.ch:
		b.v = v
	default:
	}
}

func (b *box) badHTTP() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, err := http.Get("http://localhost/plan") // want `net/http\.Get round-trip while holding b\.mu`
	return err
}

func (b *box) badClientDo(c *http.Client, req *http.Request) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, err := c.Do(req) // want `http\.Client\.Do round-trip while holding b\.mu`
	return err
}

func (b *box) badSleep() {
	b.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding b\.mu`
	b.mu.Unlock()
}

func (b *box) badWait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.wg.Wait() // want `sync\.WaitGroup\.Wait while holding b\.mu`
}

func (b *box) badRange() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for v := range b.ch { // want `range over channel while holding b\.mu`
		b.v += v
	}
}

// unlockFirst releases the lock before the send — the sanctioned shape.
func (b *box) unlockFirst() {
	b.mu.Lock()
	b.v++
	v := b.v
	b.mu.Unlock()
	b.ch <- v
}

// spawned goroutines do not inherit the caller's lock span.
func (b *box) goroutineBody() {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		b.ch <- 1
	}()
}

// plain method calls and arithmetic under the lock are fine.
func (b *box) pureCritical() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.v *= 2
	return b.v
}

func (b *box) annotated() {
	b.mu.Lock()
	defer b.mu.Unlock()
	//harmony:allow mutexspan buffered channel with a sole consumer that never locks
	b.ch <- 1
}
