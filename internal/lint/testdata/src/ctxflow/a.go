// Package ctxflow exercises the flow-sensitive goroutine-termination
// analyzer: spawned goroutines must have a CFG path to return on every
// loop, and worker loops ranging over a channel need somebody in the
// module to actually close it.
package ctxflow

func work() {}

func sink(int) {}

// An infinite loop with no break or return pins the goroutine forever.
func spawnLoop() {
	go func() {
		for { // want `can never terminate: no path from this point reaches return`
			work()
		}
	}()
}

// select{} blocks forever by definition.
func spawnSelect() {
	go func() {
		select {} // want `can never terminate: no path from this point reaches return`
	}()
}

// The inescapable loop may sit anywhere below the spawn: outer itself
// returns fine, but it calls spin, which never does.
func outer() {
	spin()
}

func spin() {
	for { // want `can never terminate: no path from this point reaches return`
	}
}

func spawnTransitive() {
	go outer()
}

// A loop whose select has a terminating case is fine.
func pump(ch <-chan int, done <-chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			case v := <-ch:
				sink(v)
			}
		}
	}()
}

// server.queue is a struct field — a module-wide identity — and no
// close(…queue) exists for it anywhere, so the worker outlives every
// shutdown.
type server struct {
	queue chan int
	sum   int
}

func (s *server) worker() {
	for v := range s.queue { // want `ranges over ctxflow\.server\.queue, but nothing in the module ever closes it`
		s.sum += v
	}
}

func (s *server) start() {
	go s.worker()
}

// drainSome can leave its range through the break, so the close is not
// the loop's only exit.
func (s *server) drainSome() {
	n := 0
	for v := range s.queue {
		n += v
		if n > 10 {
			break
		}
	}
	s.sum = n
}

func (s *server) startDrain() {
	go s.drainSome()
}

// firstOnly returns from inside the body: the loop exits without a close.
func (s *server) firstOnly() {
	for v := range s.queue {
		s.sum = v
		return
	}
}

func (s *server) startFirst() {
	go s.firstOnly()
}

// closedServer's queue is closed in run, so its worker terminates.
type closedServer struct {
	queue chan int
	sum   int
}

func (c *closedServer) worker() {
	for v := range c.queue {
		c.sum += v
	}
}

func (c *closedServer) run() {
	go c.worker()
	close(c.queue)
}

// An annotation on the loop suppresses the finding.
func spawnAllowed() {
	go func() {
		//harmony:allow ctxflow burn-in loop by design, killed with the process
		for {
			work()
		}
	}()
}
