// Package hotpathalloc exercises the transitive no-allocation check:
// a //harmony:hotpath root and everything it calls must not allocate,
// with //harmony:coldpath boundaries and //harmony:allow escapes.
package hotpathalloc

import "fmt"

// State is the scratch the hot path is supposed to reuse.
type State struct {
	buf     []float64
	scratch []float64
	n       int
}

//harmony:hotpath
func Tick(s *State, name string) float64 {
	s.buf = append(s.buf, 1) // amortized reuse: result feeds its operand
	tmp := append(s.buf, 2)  // want `copy-grow append \(result does not feed back into its operand\) allocates on the hot path hotpathalloc.Tick \(path: hotpathalloc.Tick\)`
	_ = tmp
	m := make([]float64, 4) // want `make allocates on the hot path hotpathalloc.Tick`
	_ = m
	p := new(State) // want `new allocates on the hot path`
	_ = p
	q := &State{n: 1} // want `&composite literal \(escapes to the heap\)`
	_ = q
	mp := map[string]int{"a": 1} // want `map literal allocates`
	_ = mp
	sl := []int{1, 2} // want `slice literal allocates`
	_ = sl
	bs := []byte(name) // want `\[\]byte\(string\) conversion \(copies\)`
	_ = bs
	_ = fmt.Sprintf("%d", s.n) // want `fmt.Sprintf allocates`
	x := s.n
	f := func() int { return x } // want `closure capturing x`
	_ = f
	go drain(s) // want `go statement \(the goroutine itself\)`
	refit(s)    // clean: refit is a coldpath boundary
	_ = label(name, "-suffix")
	return step(s)
}

// step is on the hot path transitively; its one allocation is excused in
// place.
func step(s *State) float64 {
	w := make([]float64, 1) //harmony:allow hotpathalloc fixture: warm-up fill, measured at zero steady-state
	s.scratch = s.scratch[:0]
	s.scratch = append(s.scratch, w...)
	return s.scratch[0]
}

// label allocates two hops from the root; the diagnostic carries the
// witness chain.
func label(a, b string) string {
	return a + b // want `string concatenation allocates on the hot path hotpathalloc.Tick \(path: hotpathalloc.Tick → hotpathalloc.label\)`
}

// drain is spawned from the hot path and must itself be alloc-free.
func drain(s *State) { s.n++ }

// refit is the budgeted residue: the descent stops here.
//
//harmony:coldpath refit rebuilds the scratch; its cost is budgeted and measured dynamically
func refit(s *State) {
	s.buf = make([]float64, 0, 64)
}

// Setup is not reachable from any hot-path root; it may allocate freely.
func Setup() *State {
	return &State{buf: make([]float64, 0, 64)}
}

// valueOnly holds a struct value literal: no heap allocation, clean even
// on the hot path.
//
//harmony:hotpath
func valueOnly() int {
	st := State{n: 3}
	return st.n
}
