// Package detertaint is treated as a deterministic package by the
// analyzer (see detertaintDeterministic), standing in for sim/sched/core.
package detertaint

import (
	"fixture/detertaint/impure"
	"fixture/detertaint/pure"
)

// Source is dispatched conservatively: every implementing concrete
// method in the loaded packages is a possible callee.
type Source interface{ Value() float64 }

func UsesWallClock() float64 {
	return impure.Stamp() // want `call of impure.Stamp transitively reads time.Now \(wall clock\): detertaint.UsesWallClock → impure.Stamp → time.Now \(wall clock\)`
}

func UsesDeep() float64 {
	return impure.Deep() // want `detertaint.UsesDeep → impure.Deep → impure.helper → impure.Stamp → time.Now \(wall clock\)`
}

func UsesEnv() string {
	return impure.Env() // want `transitively reads os.Getenv \(process environment\)`
}

func UsesGlobalRNG() float64 {
	return impure.Roll() // want `transitively reads rand.Float64 \(process-global RNG\)`
}

func SpawnsImpure() {
	go impure.Deep() // want `go of impure.Deep transitively reads time.Now`
}

func UseSource(s Source) float64 {
	return s.Value() // want `call of impure.Ticker.Value \(via interface dispatch\) transitively reads time.Now`
}

// Clean call chains produce no findings.
func Clean() int { return pure.Add(1, 2) }

func CleanIfaceValue(c pure.Const) float64 { return c.Value() }

func CleanHelper(x float64) float64 { return impure.Pure(x) }

// A vouched-for root (annotation at the source) clears every caller.
func UsesVetted() float64 { return impure.Vetted() }

// A boundary call can also be excused in place.
func AllowedCaller() float64 {
	//harmony:allow detertaint fixture: vetted boundary
	return impure.Stamp()
}
