// Package impure is the detertaint fixture's helper package: it hides
// nondeterministic roots behind ordinary-looking functions, the exact
// shape nodeterm cannot see across a package boundary.
package impure

import (
	"math/rand"
	"os"
	"time"
)

// Stamp reads the wall clock directly.
func Stamp() float64 { return float64(time.Now().UnixNano()) }

// Deep reaches the wall clock two hops down.
func Deep() float64 { return helper() }

func helper() float64 { return Stamp() }

// Env reads the process environment.
func Env() string { return os.Getenv("HOME") }

// Roll draws from the process-global RNG.
func Roll() float64 { return rand.Float64() }

// Vetted reads the wall clock behind a vouched-for annotation: the
// taint stops at the source, so callers stay clean.
func Vetted() float64 {
	//harmony:allow nodeterm latency metric only; never influences decisions
	return float64(time.Now().UnixNano())
}

// Ticker implements the fixture's Source interface impurely.
type Ticker struct{}

func (Ticker) Value() float64 { return Stamp() }

// Pure is genuinely deterministic.
func Pure(x float64) float64 { return x * 2 }
