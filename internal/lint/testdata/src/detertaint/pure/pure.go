// Package pure is the detertaint fixture's clean helper: nothing here
// reads a nondeterministic input.
package pure

// Add is a pure function.
func Add(a, b int) int { return a + b }

// Const implements the fixture's Source interface deterministically.
type Const struct{ V float64 }

func (c Const) Value() float64 { return c.V }
