// Package divzero exercises the may-zero denominator analyzer: zero
// constants, zero values, unguarded lengths, zero-initialized counters,
// and zero-capable callees are evidence; guards and parameters are not.
package divzero

// ConstZero divides by a variable assigned the constant 0.
func ConstZero(x float64) float64 {
	n := 0.0
	return x / n // want `possible division by zero: n is assigned the constant 0`
}

// ZeroValue divides by a declared-but-never-assigned variable.
func ZeroValue(x float64) float64 {
	var d float64
	return x / d // want `possible division by zero: d starts at its zero value`
}

// Counter is the zero-initialized-counter pattern: the loop may run
// zero times, so the init def still reaches the division.
func Counter(xs []float64) float64 {
	sum := 0.0
	count := 0
	for _, v := range xs {
		sum += v
		count++
	}
	return sum / float64(count) // want `possible division by zero: count is assigned the constant 0`
}

// UnguardedLen divides by a length that was never checked.
func UnguardedLen(xs []float64) float64 {
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs)) // want `possible division by zero: len\(xs\) is unguarded`
}

// UnguardedLenVar stores the length first; the def is the evidence.
func UnguardedLenVar(xs []float64) float64 {
	n := float64(len(xs))
	return 1 / n // want `possible division by zero: n is assigned len\(xs\) with no nonempty guard`
}

// GuardedLen checks emptiness before dividing: clean.
func GuardedLen(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// GuardedLenVar takes the length under the guard: clean.
func GuardedLenVar(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := float64(len(xs))
	return 1 / n
}

// GuardedVar tests the denominator directly: clean.
func GuardedVar(x, d float64) float64 {
	if d == 0 {
		return 0
	}
	return x / d
}

// zeroOr can return 0; dividing by its result is flagged.
func zeroOr(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}

// CalleeZero divides by a callee that can return zero.
func CalleeZero(x, y float64) float64 {
	d := zeroOr(y)
	return x / d // want `possible division by zero: d is assigned from divzero.zeroOr, which can return 0`
}

// Param divides by a bare parameter: callers own that contract, clean.
func Param(x, d float64) float64 {
	return x / d
}
