// Package lockorder exercises the lock-acquisition-order analyzer: two
// functions taking the same pair of module-identifiable locks in
// opposite orders form a cycle in the order graph and a potential
// deadlock.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

// Forward takes A then B; Backward takes B then A. The cycle is
// reported once, at the earliest witness (the nested acquisition here).
func Forward(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `potential deadlock: inconsistent lock order between lockorder\.A\.mu, lockorder\.B\.mu`
	b.mu.Unlock()
	a.mu.Unlock()
}

func Backward(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

// lockD acquires D.mu; Outer reaches it through a call while holding
// C.mu, so the order edge C.mu→D.mu is interprocedural.
func lockD(d *D) {
	d.mu.Lock()
	d.mu.Unlock()
}

func Outer(c *C, d *D) {
	c.mu.Lock()
	lockD(d) // want `potential deadlock: inconsistent lock order between lockorder\.C\.mu, lockorder\.D\.mu`
	c.mu.Unlock()
}

func Inverse(c *C, d *D) {
	d.mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	d.mu.Unlock()
}

type E struct{ mu sync.Mutex }

type F struct{ mu sync.Mutex }

// Consistent nesting in one direction only: an edge E.mu→F.mu with no
// reverse edge is no cycle and stays silent.
func NestedOnce(e *E, f *F) {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

func NestedAgain(e *E, f *F) {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

// Sequential (non-nested) acquisition in opposite orders is fine: the
// first lock is released before the second is taken, so no order edge
// forms in either direction.
func SeqForward(a *A, b *B) {
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}

func SeqBackward(a *A, b *B) {
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}

// Branch-released: on the path where the branch released a.mu early,
// taking b.mu is unordered — but the other path still holds it, and the
// may-analysis keeps the edge. Pinned here as an ordered pair with E/F
// (no reverse edge), so it stays silent; the point is that the solver
// merges branch facts instead of crashing or double-reporting.
func BranchRelease(e *E, f *F, early bool) {
	e.mu.Lock()
	if early {
		e.mu.Unlock()
	}
	f.mu.Lock()
	f.mu.Unlock()
	if !early {
		e.mu.Unlock()
	}
}
