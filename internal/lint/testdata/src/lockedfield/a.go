// Package lockedfield exercises guarded-field inference and the
// //harmony:guardedby strict contract.
package lockedfield

import "sync"

type Reg struct {
	mu sync.Mutex
	//harmony:guardedby(mu)
	count int
	total int
	name  string
}

// Constructors are exempt: the value is not shared yet.
func New(name string) *Reg {
	return &Reg{name: name}
}

// count is annotated: every access must hold mu.
func (r *Reg) Bump() {
	r.mu.Lock()
	r.count++
	r.mu.Unlock()
}

func (r *Reg) Peek() int {
	return r.count // want `field lockedfield\.Reg\.count is annotated //harmony:guardedby\(mu\) but this access does not hold mu on every path`
}

// Annotated fields accept explicit allows for the deliberate cases.
func (r *Reg) Snapshot() int {
	//harmony:allow lockedfield read-only snapshot during single-threaded shutdown
	return r.count
}

// total has no annotation; its guard is inferred from usage. Guarded
// accesses: Inc (write), Add (write), Total (read), flushLocked (read +
// write, via Flush's held lock), the closure in Scaled (read) — six of
// seven. Race is the seventh, and the finding.
func (r *Reg) Inc() {
	r.mu.Lock()
	r.total++
	r.mu.Unlock()
}

func (r *Reg) Add(n int) {
	r.mu.Lock()
	r.total += n
	r.mu.Unlock()
}

func (r *Reg) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// The locked-helper pattern: flushLocked's only call site holds r.mu,
// so it analyzes with the lock in its entry fact.
func (r *Reg) Flush() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.flushLocked()
}

func (r *Reg) flushLocked() int {
	v := r.total
	r.total = 0
	return v
}

// A function literal inherits the locks held where it is defined.
func (r *Reg) Scaled(k int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := func() int { return r.total * k }
	return f()
}

func (r *Reg) Race() int {
	return r.total // want `field lockedfield\.Reg\.total is accessed under mu on 6 of 7 accesses \(inferred guard\) but not here`
}

// name is read-only after construction: no guarded write, no inferred
// guard, no findings — even though Label reads it under the lock.
func (r *Reg) Name() string {
	return r.name
}

func (r *Reg) Label() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.name
}

// An annotation naming a non-existent sibling field is itself a finding.
type Bad struct {
	mu sync.Mutex
	//harmony:guardedby(lock) // want `//harmony:guardedby\(lock\) names no field of Bad`
	v int
}
