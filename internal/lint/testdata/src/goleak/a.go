// Package goleak exercises the goroutine-join analyzer: every go
// statement needs a provable termination/join path reachable in the
// spawned function.
package goleak

import "sync"

func work() {}

// Leaky spawns a goroutine with no join signal at all.
func Leaky() {
	go func() { // want `goroutine goleak.Leaky.func1 has no provable join`
		work()
	}()
}

// LeakyNamed spawns a named function with no join signal.
func LeakyNamed() {
	go work() // want `goroutine goleak.work has no provable join`
}

// Joined is the WaitGroup Add/Done pairing.
func Joined(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// Collector is the errgroup shape: the result lands on a channel the
// spawner drains.
func Collector() int {
	ch := make(chan int, 1)
	go func() { ch <- 1 }()
	return <-ch
}

// Cancelled selects on a cancellation channel.
func Cancelled(stop <-chan struct{}) {
	go func() {
		select {
		case <-stop:
		}
	}()
}

// TransitiveJoin reaches its Done through a helper.
func TransitiveJoin(wg *sync.WaitGroup) {
	go joinViaHelper(wg)
}

func joinViaHelper(wg *sync.WaitGroup) { wg.Done() }

// DynamicSpawn cannot be proven: the spawned function is a bare value.
func DynamicSpawn(f func()) {
	go f() // want `spawned through a function value`
}

// NestedGo: the inner goroutine's join says nothing about the outer one.
func NestedGo(wg *sync.WaitGroup) {
	go func() { // want `goroutine goleak.NestedGo.func1 has no provable join`
		go func() {
			wg.Done()
		}()
	}()
}

// Allowed documents a deliberate fire-and-forget.
func Allowed() {
	//harmony:allow goleak fixture: fire-and-forget by design
	go work()
}
