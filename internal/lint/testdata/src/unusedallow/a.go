// Package unusedallow exercises stale-annotation detection. The fixture
// co-runs floateq: one allow suppresses a real finding (used), one
// suppresses nothing (stale, flagged), and one names an analyzer outside
// the run set (not judged).
package unusedallow

// Eq carries a load-bearing allow: deleting it would surface a floateq
// finding, so the annotation is used and not reported.
func Eq(a, b float64) bool {
	//harmony:allow floateq fixture: bitwise replay equivalence
	return a == b
}

// Clean compares ints, so the annotation below excuses nothing.
//
//harmony:allow floateq fixture: stale leftover // want `//harmony:allow floateq suppresses nothing; delete the stale annotation`
func Clean(a, b int) bool { return a == b }

// Untested names an analyzer that is not part of this run; staleness
// cannot be judged, so it is not reported.
//
//harmony:allow nodeterm fixture: outside the run set
func Untested() int { return 42 }
