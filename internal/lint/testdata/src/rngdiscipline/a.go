// Package rngdiscipline is the fixture for the rngdiscipline analyzer:
// raw math/rand construction is flagged; stats.NewRNG and annotated
// sites are allowed.
package rngdiscipline

import (
	"math/rand"

	"harmony/internal/stats"
)

func raw(seed int64) *rand.Rand {
	src := rand.NewSource(seed) // want `rand\.NewSource constructs a raw RNG`
	return rand.New(src)        // want `rand\.New constructs a raw RNG`
}

// sanctioned is the required form: construction through internal/stats.
func sanctioned(seed int64) *stats.RNG {
	return stats.NewRNG(seed)
}

// drawing from an already-constructed instance is not construction.
func draw(r *stats.RNG) float64 { return r.Float64() }

func annotated(seed int64) *rand.Rand {
	//harmony:allow rngdiscipline interop fixture for an external API taking *rand.Rand
	return rand.New(rand.NewSource(seed))
}
