// Package nansource exercises the NaN/Inf-minting analyzer: log and
// sqrt of unvalidated inputs and the x/x shape are flagged; dominating
// guards, provably-signed arguments, and explicit IsNaN checks pass.
package nansource

import "math"

// LogUnvalidated takes the log of a bare parameter.
func LogUnvalidated(x float64) float64 {
	return math.Log(x) // want `math\.Log of x, which is not provably positive, can mint NaN/-Inf and flows into a return`
}

// LogGuarded dominates the call with a positivity guard: clean.
func LogGuarded(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log(x)
}

// SqrtUnvalidated roots a difference that can be negative.
func SqrtUnvalidated(a, b float64) float64 {
	d := a - b
	return math.Sqrt(d) // want `math\.Sqrt of d, which is not provably non-negative, can mint NaN and flows into a return`
}

// SqrtSquare roots a square: provably non-negative, clean.
func SqrtSquare(x float64) float64 {
	return math.Sqrt(x * x)
}

// SqrtLen roots a length: non-negative by construction, clean.
func SqrtLen(xs []float64) float64 {
	return math.Sqrt(float64(len(xs)))
}

// SelfDivide normalizes an accumulator by itself without a guard.
func SelfDivide(xs []float64) float64 {
	total := 0.0
	for _, v := range xs {
		total += v
	}
	return total / total // want `total / total is NaN when total is zero`
}

// SelfDivideGuarded proves the accumulator nonzero first: clean.
func SelfDivideGuarded(total float64) float64 {
	if total == 0 {
		return 0
	}
	return total / total
}

// Checked validates its result with IsNaN: its own business, clean.
func Checked(q float64) float64 {
	v := math.Log(q)
	if math.IsNaN(v) {
		return 0
	}
	return v
}
