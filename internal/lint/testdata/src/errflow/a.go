// Package errflow exercises the discarded-error analyzer: bare calls and
// blank assignments that drop an error are flagged; fmt printing,
// Buffer/Builder methods, deferred cleanup, and annotated discards pass.
package errflow

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func value() (int, error) { return 0, errors.New("boom") }

func Bare() {
	mayFail() // want `error result of errflow.mayFail is discarded`
}

func Blank() {
	_ = mayFail() // want `error discarded into _`
}

func Tuple() {
	v, _ := value() // want `error discarded into _`
	_ = v
}

func Wrapped() {
	_ = fmt.Errorf("wrap: %v", 1) // want `error discarded into _`
}

func Spawned() {
	go mayFail() // want `error result of errflow.mayFail is discarded by the go statement`
}

// Checked handles both results; nothing to flag.
func Checked() error {
	if err := mayFail(); err != nil {
		return err
	}
	v, err := value()
	_ = v // int, not an error: blank is fine
	return err
}

// Printing exercises the exemptions: best-effort human output and
// methods documented to never fail.
func Printing(buf *bytes.Buffer, sb *strings.Builder) {
	fmt.Println("status")
	fmt.Fprintf(buf, "x=%d", 1)
	buf.WriteString("a")
	sb.WriteString("b")
	_, _ = sb.WriteString("c")
}

type closer struct{}

func (closer) Close() error { return nil }

// Deferred cleanup is best-effort by convention.
func Deferred(c closer) {
	defer c.Close()
}

// Vetted documents its discard in place.
func Vetted() {
	//harmony:allow errflow fixture: best-effort telemetry write
	mayFail()
	_ = mayFail() //harmony:allow errflow fixture: end-of-line form
}
