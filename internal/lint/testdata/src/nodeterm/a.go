// Package nodeterm is the fixture for the nodeterm analyzer: flagged
// wall-clock, environment, and global-RNG reads plus the allowed forms
// (instance RNG methods, simulation-clock parameters, annotations).
package nodeterm

import (
	"math/rand"
	"os"
	"time"
)

// simNow shows the sanctioned form: time arrives as an input.
func simNow(clock float64) float64 { return clock }

func wallClock() float64 {
	t := time.Now()   // want `time\.Now reads the wall clock`
	_ = time.Since(t) // want `time\.Since reads the wall clock`
	return float64(t.Unix())
}

func untilDeadline(d time.Time) time.Duration {
	return time.Until(d) // want `time\.Until reads the wall clock`
}

func cadence() <-chan time.Time {
	return time.NewTicker(time.Second).C // want `time\.NewTicker reads the wall clock`
}

func envRead() string {
	return os.Getenv("HARMONY_DEBUG") // want `os\.Getenv reads the process environment`
}

func envLookup() bool {
	_, ok := os.LookupEnv("HARMONY_DEBUG") // want `os\.LookupEnv reads the process environment`
	return ok
}

func globalRand() float64 {
	n := rand.Intn(10) // want `rand\.Intn draws from the process-global RNG`
	return rand.Float64() + float64(n) // want `rand\.Float64 draws from the process-global RNG`
}

// seededDraw is fine: it draws from an instance, not the global source.
func seededDraw(r *rand.Rand) float64 { return r.Float64() }

// durations and time arithmetic that do not read the clock are fine.
func period() time.Duration { return 300 * time.Second }

func tickLoop() time.Time {
	//harmony:allow nodeterm the daemon tick loop is genuinely wall-clock
	return time.Now()
}

func dumpHook() string {
	return os.Getenv("HARMONY_DUMP_PLAN") //harmony:allow nodeterm debug-only dump hook
}
