// Package floateq is the fixture for the floateq analyzer: exact float
// equality is flagged; zero sentinels, NaN self-comparison, constant
// folds, tolerance helpers, and annotated sites are allowed.
package floateq

func bad(a, b float64) bool {
	return a == b // want `float == comparison`
}

func badNeq(a, b float32) bool {
	return a != b // want `float != comparison`
}

func badLiteral(a float64) bool {
	return a == 0.25 // want `float == comparison`
}

// ints are exact; integer equality is fine.
func ints(a, b int) bool { return a == b }

// zeroSentinel checks the exact unset value — well-defined and allowed.
func zeroSentinel(a float64) bool { return a == 0 }

// nanCheck is the x != x idiom — the only way to test NaN without math.
func nanCheck(a float64) bool { return a != a }

// constant comparisons are decided at compile time.
const eps = 1e-9

func constFold() bool { return eps == 1e-9 }

// almostEqual is a tolerance helper: comparisons inside it are the
// implementation of the discipline, not a violation of it.
func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func annotated(a, b float64) bool {
	//harmony:allow floateq bit-identical replay equivalence check
	return a == b
}

// blockAnnotated exercises annotation binding through a contiguous
// comment block: ordinary comments between the annotation and the code
// it excuses must not break the binding.
func blockAnnotated(a, b float64) bool {
	//harmony:allow floateq bit-identical replay equivalence check
	// Both sides decode from the same checkpoint, so exact equality is
	// the property under test, not an approximation of it.
	return a == b
}
