// Package sortedemit is the fixture for the sortedemit analyzer: map
// iteration that writes output is flagged; collect-then-sort loops,
// non-emitting loops, and annotated sites are allowed.
package sortedemit

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func direct(w io.Writer, m map[string]int) {
	for k, v := range m { // want `map iteration emits output \(fmt\.Fprintf`
		fmt.Fprintf(w, "%s %d\n", k, v)
	}
}

func viaBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `map iteration emits output \(WriteString`
		b.WriteString(k)
	}
	return b.String()
}

func nested(w io.Writer, m map[string][]int) {
	for k, vs := range m { // want `map iteration emits output \(fmt\.Fprintln`
		for _, v := range vs {
			fmt.Fprintln(w, k, v)
		}
	}
}

// collectThenSort is the sanctioned pattern: the map range only gathers
// keys; emission happens over the sorted slice.
func collectThenSort(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s %d\n", k, m[k])
	}
}

// accumulate does not emit: arithmetic over map values is order-free.
func accumulate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func annotated(w io.Writer, m map[string]int) {
	//harmony:allow sortedemit single-entry map, order cannot matter
	for k := range m {
		fmt.Fprintln(w, k)
	}
}
