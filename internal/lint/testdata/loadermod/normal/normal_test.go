package normal

import "testing"

func TestDouble(t *testing.T) {
	if Double(2) != 4 {
		t.Fatal("wrong")
	}
}
