// External test package: compiled as normal_test, never part of the
// production package the loader returns.
package normal_test

import (
	"testing"

	"loadermod/normal"
)

func TestDoubleExternal(t *testing.T) {
	if normal.Double(3) != 6 {
		t.Fatal("wrong")
	}
}
