// Package normal is the ordinary-package case of the loader edge-case
// tests: one buildable file, plus test files and a build-tag-excluded
// file that must all stay out of the loaded package.
package normal

// Double is production code; the loader must see this file.
func Double(x int) int { return 2 * x }
