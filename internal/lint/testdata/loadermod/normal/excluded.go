//go:build loadermod_never

// This file is excluded by its build tag in every real build; the
// loader must not parse or type-check it (it would not compile).
package normal

func Broken() { undefinedSymbol() }
