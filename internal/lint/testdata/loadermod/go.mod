module loadermod

go 1.22
