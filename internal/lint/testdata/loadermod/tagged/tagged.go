//go:build loadermod_never

// Package tagged has every file excluded by build tags: the loader must
// treat it like a package with nothing to check, not an error.
package tagged

func Unreachable() {}
