// Package testonly has no production files at all: go list reports it
// with an empty GoFiles, and the loader must skip it rather than fail.
package testonly

import "testing"

func TestNothing(t *testing.T) {}
