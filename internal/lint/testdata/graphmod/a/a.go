// Package a imports b across a package boundary, so the call graph must
// resolve Use → b.Helper as an exact static edge under the production
// loader (not just the source-registered fixture loader).
package a

import "graphmod/b"

func Use() int64 { return b.Helper() }
