// Package b is the callee side of the cross-package dispatch fixture.
package b

import "time"

func Helper() int64 { return time.Now().Unix() }
