package lint

// CtxFlow is the flow-sensitive upgrade of goleak. goleak proves a
// spawned goroutine *touches* a join signal somewhere; ctxflow proves
// the goroutine can actually *terminate*:
//
//   - Every CFG block of the spawned function (and of everything it
//     reaches through call edges) that is reachable from the entry must
//     have a path to the function exit. A `for { ... }` or `select{}`
//     with no break/return can never observe ctx cancellation and runs
//     until process death.
//   - A worker loop `for x := range ch` whose only exit is channel
//     close (no break/return out of the loop body) requires somebody to
//     actually close the channel: if ch has a module-wide identity (a
//     struct field or package var) and no close(ch) exists anywhere in
//     the module, the worker outlives every shutdown.
//
// The scope is the same concurrent surface goleak covers: the daemon,
// the tenant fan-out, and the parallel helpers.

import (
	"go/ast"
	"go/token"
	"strings"
)

var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "require every goroutine spawned in the concurrent subsystems to have a " +
		"terminating path on every loop: no inescapable loops, no ranges over " +
		"channels nothing ever closes",
	RunModule: runCtxFlow,
}

func ctxflowCovered(pkgPath, filename string) bool {
	if goleakCovered(pkgPath, filename) && !strings.HasPrefix(pkgPath, "fixture/") {
		return true
	}
	return strings.HasPrefix(pkgPath, "fixture/ctxflow")
}

func runCtxFlow(pass *ModulePass) {
	closed := moduleClosedChans(pass.Pkgs)

	reportedLoop := make(map[token.Pos]bool)  // inescapable-region reports
	reportedRange := make(map[token.Pos]bool) // never-closed-range reports

	for _, n := range pass.Graph.Funcs {
		for _, e := range n.Out {
			if e.Kind != EdgeGo {
				continue
			}
			if !ctxflowCovered(n.Pkg.Path, pass.Fset().Position(e.Pos).Filename) {
				continue
			}
			if e.Dynamic && e.Via == "function value" {
				continue // unprovable spawn; goleak flags the site
			}
			// Everything the goroutine reaches over call edges runs on
			// its stack; an inescapable loop anywhere below pins it.
			for _, f := range spawnReach(e.Callee) {
				body := f.node.Body()
				if body == nil {
					continue
				}
				cfg := NewCFG(body)
				checkInescapable(pass, n, f, cfg, reportedLoop)
				checkUnclosedRanges(pass, n, f, cfg, closed, reportedRange)
			}
		}
	}
}

// reached pairs a function reached from a spawn with its witness chain
// (spawned function first).
type reached struct {
	node  *Node
	chain []string
}

// spawnReach collects the functions reachable from the spawned callee
// over call/defer edges (not nested go edges: an inner goroutine runs
// on its own stack), each with a shortest witness chain. Deterministic:
// BFS in Out-edge order.
func spawnReach(callee *Node) []reached {
	seen := map[*Node]bool{callee: true}
	out := []reached{{node: callee, chain: []string{callee.Name}}}
	for i := 0; i < len(out); i++ {
		cur := out[i]
		for _, e := range cur.node.Out {
			if !summaryEdgeOK(e) || seen[e.Callee] {
				continue
			}
			seen[e.Callee] = true
			chain := append(append([]string(nil), cur.chain...), e.Callee.Name)
			out = append(out, reached{node: e.Callee, chain: chain})
		}
	}
	return out
}

// checkInescapable reports CFG regions the goroutine can enter but
// never leave: reachable blocks with no path to the function exit.
func checkInescapable(pass *ModulePass, spawner *Node, f reached, cfg *CFG, reported map[token.Pos]bool) {
	fromEntry := cfg.ReachableFromEntry()
	toExit := cfg.CanReachExit()
	var at token.Pos
	for _, blk := range cfg.Blocks {
		if !fromEntry[blk] || toExit[blk] || blk == cfg.Exit {
			continue
		}
		pos := blockPos(blk)
		if pos == token.NoPos {
			continue
		}
		// Prefer the loop/select header of the region; the first
		// terminator block found in index order is exactly that.
		if at == token.NoPos || blk.Term != nil && pos < at {
			at = pos
		}
	}
	if at == token.NoPos || reported[at] {
		return
	}
	reported[at] = true
	pass.ReportPathf(at, f.chain,
		"goroutine %s (spawned in %s) can never terminate: no path from this point reaches return — add a ctx.Done()/done-channel case or a break (//harmony:allow ctxflow <reason> to permit)",
		f.node.Name, spawner.Name)
}

// checkUnclosedRanges reports `for range ch` worker loops whose only
// exit is a close that never happens anywhere in the module.
func checkUnclosedRanges(pass *ModulePass, spawner *Node, f reached, cfg *CFG, closed map[string]bool, reported map[token.Pos]bool) {
	for _, blk := range cfg.Blocks {
		rs, ok := blk.Term.(*ast.RangeStmt)
		if !ok {
			continue
		}
		tv, ok := f.node.Pkg.Info.Types[rs.X]
		if !ok || !isChanType(tv.Type) {
			continue
		}
		// The loop's done block: the head's non-body successor. Another
		// way in (break, labeled break) means the loop can exit without
		// a close.
		var done *Block
		for _, s := range blk.Succs {
			if s.Kind == "range.done" {
				done = s
			}
		}
		if done == nil {
			continue
		}
		escapes := false
		for _, p := range done.Preds {
			if p != blk {
				escapes = true
			}
		}
		if escapes {
			continue
		}
		// A body that returns or terminates also exits the loop.
		if bodyLeaves(cfg, blk, done) {
			continue
		}
		global, _ := chanIdentity(f.node.Pkg, rs.X)
		if global == "" || closed[global] || reported[rs.Pos()] {
			continue
		}
		reported[rs.Pos()] = true
		pass.ReportPathf(rs.Pos(), f.chain,
			"worker %s (spawned in %s) ranges over %s, but nothing in the module ever closes it: the loop cannot exit and the goroutine survives every shutdown — close the channel when draining is done (//harmony:allow ctxflow <reason> to permit)",
			f.node.Name, spawner.Name, global)
	}
}

// bodyLeaves reports whether the range body can leave the function (or
// end the process) without going back through the loop head: a return,
// goto out, or panic inside the body.
func bodyLeaves(cfg *CFG, head, done *Block) bool {
	// Blocks dominated by the loop: reachable from head's body successor
	// without passing through head or done.
	var body *Block
	for _, s := range head.Succs {
		if s.Kind == "range.body" {
			body = s
		}
	}
	if body == nil {
		return false
	}
	seen := map[*Block]bool{head: true, done: true}
	work := []*Block{body}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[blk] {
			continue
		}
		seen[blk] = true
		if blk == cfg.Exit {
			return true
		}
		if len(blk.Succs) == 0 {
			return true // panic/os.Exit terminator: the loop ends with the process
		}
		work = append(work, blk.Succs...)
	}
	return false
}

// blockPos finds a representative position for a block: its terminator
// statement, else its first node.
func blockPos(blk *Block) token.Pos {
	if blk.Term != nil {
		return blk.Term.Pos()
	}
	for _, n := range blk.Nodes {
		return n.Pos()
	}
	return token.NoPos
}

// moduleClosedChans records every channel with a module-wide identity
// that some close() call targets.
func moduleClosedChans(pkgs []*Package) map[string]bool {
	out := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(a ast.Node) bool {
				call, ok := a.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "close" {
					return true
				}
				if global, _ := chanIdentity(pkg, call.Args[0]); global != "" {
					out[global] = true
				}
				return true
			})
		}
	}
	return out
}
