package lint

// LockedField infers and enforces mutex-guarded struct fields. Per
// function it runs the must-held lockset analysis (intersection merge:
// a lock counts only when held on every path) and records, for every
// struct field access in the covered packages, which locks rooted at
// the same base expression were held. A field accessed under the same
// mutex on more than 80% of its accesses — with at least one guarded
// write — earns that mutex as its inferred guard, and the remaining
// unguarded accesses are findings. The contract can be made explicit
// with a field annotation:
//
//	mu sync.Mutex
//	//harmony:guardedby(mu)
//	stats Stats
//
// which switches the field to strict mode: every access outside the
// owning type's constructors must hold the guard.
//
// Lock context flows across calls: an unexported method whose every
// static call site holds e.mu analyzes with that lock in its entry
// fact (the locked-helper pattern), and a function literal inherits the
// locks held where it is defined — except goroutine literals, which
// start on a fresh stack. Constructor functions (anything containing a
// composite literal of the owning type) are exempt: the value is not
// shared yet.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

var LockedField = &Analyzer{
	Name: "lockedfield",
	Doc: "infer mutex-guarded struct fields (>80% of accesses locked) and flag the " +
		"unguarded paths; //harmony:guardedby(mu) makes the contract strict",
	RunModule: runLockedField,
}

const guardedByMarker = "harmony:guardedby"

func lockedfieldCovered(pkgPath string) bool {
	switch pkgPath {
	case "harmony/internal/daemon", "harmony/internal/tenant", "harmony/internal/metrics":
		return true
	}
	return strings.HasPrefix(pkgPath, "fixture/lockedfield")
}

// lfAccess is one field access with its lock context.
type lfAccess struct {
	pos    token.Pos
	write  bool
	guards []string // field names of held locks sharing the access base
}

// lfGroup aggregates accesses to one field of one type.
type lfGroup struct {
	key      string // "daemon.Engine.stats"
	declared string // annotated guard field name, "" when inferred
	accesses []lfAccess
}

func runLockedField(pass *ModulePass) {
	declared := collectGuardedBy(pass)
	entries := computeEntryLocksets(pass)

	groups := make(map[string]*lfGroup)
	group := func(key string) *lfGroup {
		g, ok := groups[key]
		if !ok {
			g = &lfGroup{key: key}
			if d, isDecl := declared[key]; isDecl {
				g.declared = d
			}
			groups[key] = g
		}
		return g
	}

	for _, n := range pass.Graph.Funcs {
		body := n.Body()
		if body == nil || !lockedfieldCovered(n.Pkg.Path) {
			continue
		}
		made := composedTypes(n)
		writes := writeSelectors(body)
		cfg := NewCFG(body)
		sol := solveLocksets(n.Pkg, cfg, true, entries[n])
		for _, blk := range cfg.Blocks {
			in, ok := sol.In[blk]
			if !ok {
				continue
			}
			walkLockOps(n.Pkg, blk, in, func(nd ast.Node, held heldLocks) {
				walkNodeOps(nd, func(m ast.Node) {
					sel, ok := m.(*ast.SelectorExpr)
					if !ok {
						return
					}
					selection, ok := n.Pkg.Info.Selections[sel]
					if !ok || selection.Kind() != types.FieldVal {
						return
					}
					owner := namedStructOf(n.Pkg.Info.Types[sel.X].Type)
					if owner == nil || owner.Obj().Pkg() == nil ||
						!lockedfieldCovered(owner.Obj().Pkg().Path()) {
						return
					}
					if made[owner] {
						return // constructor: the value is not shared yet
					}
					if tv, ok := n.Pkg.Info.Types[sel]; ok && mutexishType(tv.Type) {
						return // the guard itself, WaitGroups, etc.
					}
					base := types.ExprString(sel.X)
					var guards []string
					for _, h := range sortedHeld(held) {
						if h.Ref.Base == base && strings.HasPrefix(h.Ref.Instance, base+".") {
							guards = append(guards, h.Ref.Instance[len(base)+1:])
						}
					}
					g := group(globalFieldName(owner, sel.Sel.Name))
					g.accesses = append(g.accesses, lfAccess{
						pos:    sel.Pos(),
						write:  writes[sel.Pos()],
						guards: guards,
					})
				})
			})
		}
	}

	reportGuardFindings(pass, groups)
}

// reportGuardFindings turns the per-field access aggregates into
// diagnostics: strict checks for annotated fields, ratio-inferred
// checks for the rest.
func reportGuardFindings(pass *ModulePass, groups map[string]*lfGroup) {
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := groups[k]
		if g.declared != "" {
			for _, a := range g.accesses {
				if !containsStr(a.guards, g.declared) {
					pass.Reportf(a.pos,
						"field %s is annotated //harmony:guardedby(%s) but this access does not hold %s on every path (//harmony:allow lockedfield <reason> to permit)",
						g.key, g.declared, g.declared)
				}
			}
			continue
		}
		// Inference: the dominant guard must cover >80% of accesses and
		// at least one write; read-only (immutable-after-construction)
		// fields never infer a guard.
		guardCount := make(map[string]int)
		guardedWrites := 0
		for _, a := range g.accesses {
			for _, name := range a.guards {
				guardCount[name]++
			}
			if a.write && len(a.guards) > 0 {
				guardedWrites++
			}
		}
		best, bestN := "", 0
		for _, name := range sortedCountKeys(guardCount) {
			if guardCount[name] > bestN {
				best, bestN = name, guardCount[name]
			}
		}
		total := len(g.accesses)
		if best == "" || guardedWrites == 0 || bestN == total ||
			float64(bestN)/float64(total) <= 0.8 {
			continue
		}
		for _, a := range g.accesses {
			if containsStr(a.guards, best) {
				continue
			}
			pass.Reportf(a.pos,
				"field %s is accessed under %s on %d of %d accesses (inferred guard) but not here — hold the lock or make the contract explicit with //harmony:guardedby(%s) (//harmony:allow lockedfield <reason> to permit)",
				g.key, best, bestN, total, best)
		}
	}
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func sortedCountKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectGuardedBy parses //harmony:guardedby(mu) field annotations in
// the covered packages, validating that the named guard is a sibling
// field. Returns field key → guard field name.
func collectGuardedBy(pass *ModulePass) map[string]string {
	out := make(map[string]string)
	for _, pkg := range pass.Pkgs {
		if !lockedfieldCovered(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(a ast.Node) bool {
				ts, ok := a.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					return true
				}
				named, ok := tn.Type().(*types.Named)
				if !ok {
					return true
				}
				fieldNames := make(map[string]bool)
				for _, fld := range st.Fields.List {
					for _, name := range fld.Names {
						fieldNames[name.Name] = true
					}
				}
				for _, fld := range st.Fields.List {
					guard, pos, ok := guardedByDirective(fld)
					if !ok {
						continue
					}
					if !fieldNames[guard] {
						pass.Reportf(pos,
							"//harmony:guardedby(%s) names no field of %s", guard, ts.Name.Name)
						continue
					}
					for _, name := range fld.Names {
						out[globalFieldName(named, name.Name)] = guard
					}
				}
				return true
			})
		}
	}
	return out
}

// guardedByDirective extracts the guard name from a field's doc or
// line comment: `//harmony:guardedby(mu)` or `//harmony:guardedby mu`.
func guardedByDirective(fld *ast.Field) (string, token.Pos, bool) {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			args, ok := commentDirective(c, guardedByMarker)
			if !ok {
				// The (mu) form parses as part of the marker word.
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, guardedByMarker+"(") {
					continue
				}
				args = strings.TrimPrefix(text, guardedByMarker)
			}
			args = strings.TrimSpace(args)
			if strings.HasPrefix(args, "(") {
				if i := strings.IndexByte(args, ')'); i >= 0 {
					args = args[1:i]
				} else {
					args = strings.TrimPrefix(args, "(")
				}
			} else if fs := strings.Fields(args); len(fs) > 0 {
				args = fs[0]
			}
			args = strings.TrimSpace(args)
			if args != "" {
				return args, c.Pos(), true
			}
		}
	}
	return "", token.NoPos, false
}

// composedTypes lists the named struct types a function builds with
// composite literals — its "constructor for" set.
func composedTypes(n *Node) map[*types.Named]bool {
	out := make(map[*types.Named]bool)
	body := n.Body()
	if body == nil {
		return out
	}
	forEachOwnNode(body, func(a ast.Node) {
		cl, ok := a.(*ast.CompositeLit)
		if !ok {
			return
		}
		if tv, ok := n.Pkg.Info.Types[cl]; ok {
			if named := namedStructOf(tv.Type); named != nil {
				out[named] = true
			}
		}
	})
	return out
}

// writeSelectors records the positions of selector expressions on the
// left-hand side of assignments and inc/dec statements.
func writeSelectors(body ast.Node) map[token.Pos]bool {
	out := make(map[token.Pos]bool)
	mark := func(x ast.Expr) {
		ast.Inspect(x, func(m ast.Node) bool {
			if sel, ok := m.(*ast.SelectorExpr); ok {
				out[sel.Pos()] = true
			}
			return true
		})
	}
	forEachOwnNode(body, func(a ast.Node) {
		switch s := a.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(s.X)
		}
	})
	return out
}

// computeEntryLocksets propagates lock context into callees: an
// unexported method every one of whose static call sites holds a lock
// rooted at the call receiver starts its analysis with that lock held,
// and a function literal starts with the locks held at its definition
// point (none for goroutine literals). Iterated to a fixed point so
// locked helpers calling locked helpers resolve.
func computeEntryLocksets(pass *ModulePass) map[*Node]heldLocks {
	g := pass.Graph
	entries := make(map[*Node]heldLocks)
	cfgs := make(map[*Node]*CFG)

	for iter := 0; iter < 4; iter++ {
		proposals := make(map[*Node][]heldLocks)
		litEntries := make(map[*Node]heldLocks)
		for _, n := range g.Funcs {
			body := n.Body()
			if body == nil || !lockedfieldCovered(n.Pkg.Path) {
				continue
			}
			cfg, ok := cfgs[n]
			if !ok {
				cfg = NewCFG(body)
				cfgs[n] = cfg
			}
			posEdges := make(map[token.Pos][]*Edge, len(n.Out))
			for _, e := range n.Out {
				posEdges[e.Pos] = append(posEdges[e.Pos], e)
			}
			sol := solveLocksets(n.Pkg, cfg, true, entries[n])
			for _, blk := range cfg.Blocks {
				in, ok := sol.In[blk]
				if !ok {
					continue
				}
				walkLockOps(n.Pkg, blk, in, func(nd ast.Node, held heldLocks) {
					goLits := goStmtLits(nd)
					walkNodeOps(nd, func(m ast.Node) {
						if lit, ok := m.(*ast.FuncLit); ok {
							if ln := g.NodeOfLit(lit); ln != nil && !goLits[lit] {
								litEntries[ln] = cloneHeld(held)
							}
							return
						}
						call, ok := m.(*ast.CallExpr)
						if !ok || len(held) == 0 {
							return
						}
						for _, e := range posEdges[call.Pos()] {
							if e.Kind != EdgeCall || e.Dynamic || e.Callee.Fn == nil {
								continue
							}
							if remapped, ok := remapToCallee(n.Pkg, call, e.Callee, held); ok {
								proposals[e.Callee] = append(proposals[e.Callee], remapped)
							}
						}
					})
				})
			}
		}

		next := make(map[*Node]heldLocks)
		for _, n := range g.Funcs {
			if n.Lit != nil {
				if h, ok := litEntries[n]; ok && len(h) > 0 {
					next[n] = h
				}
				continue
			}
			if n.Fn == nil || ast.IsExported(n.Fn.Name()) {
				continue
			}
			props := proposals[n]
			if len(props) == 0 {
				continue
			}
			// Every in-edge must be a static call we proposed for;
			// otherwise an unknown caller may not hold the lock.
			staticCalls := 0
			clean := true
			for _, e := range n.In {
				if e.Kind != EdgeCall || e.Dynamic {
					clean = false
					break
				}
				staticCalls++
			}
			if !clean || staticCalls != len(props) {
				continue
			}
			entry := props[0]
			for _, p := range props[1:] {
				entry = (lockProblem{must: true}).Merge(entry, p)
			}
			if len(entry) > 0 {
				next[n] = entry
			}
		}
		if entrySetsEqual(entries, next) {
			break
		}
		entries = next
	}
	return entries
}

// goStmtLits marks function literals spawned directly by a go statement
// under nd: they start on a fresh stack and inherit no locks.
func goStmtLits(nd ast.Node) map[*ast.FuncLit]bool {
	out := make(map[*ast.FuncLit]bool)
	ast.Inspect(nd, func(m ast.Node) bool {
		if gs, ok := m.(*ast.GoStmt); ok {
			if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				out[lit] = true
			}
		}
		return true
	})
	return out
}

// remapToCallee rewrites the caller-side held set into the callee's
// frame: locks rooted at the call's receiver expression become locks
// rooted at the callee's receiver name. Calls that are not method calls
// on a named receiver propose nothing.
func remapToCallee(pkg *Package, call *ast.CallExpr, callee *Node, held heldLocks) (heldLocks, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || callee.Decl == nil || callee.Decl.Recv == nil ||
		len(callee.Decl.Recv.List) != 1 || len(callee.Decl.Recv.List[0].Names) != 1 {
		return nil, false
	}
	recvName := callee.Decl.Recv.List[0].Names[0].Name
	if recvName == "_" {
		return nil, false
	}
	base := types.ExprString(sel.X)
	out := make(heldLocks)
	for _, h := range sortedHeld(held) {
		if h.Ref.Base != base || !strings.HasPrefix(h.Ref.Instance, base+".") {
			continue
		}
		suffix := h.Ref.Instance[len(base):]
		ref := h.Ref
		ref.Instance = recvName + suffix
		ref.Base = recvName
		out[ref.Instance] = lockAcq{Pos: h.Pos, Ref: ref, Kind: h.Kind}
	}
	return out, true
}

func entrySetsEqual(a, b map[*Node]heldLocks) bool {
	if len(a) != len(b) {
		return false
	}
	for n, ha := range a {
		hb, ok := b[n]
		if !ok || !heldEqual(ha, hb) {
			return false
		}
	}
	return true
}
