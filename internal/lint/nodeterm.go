package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// deterministicPkgs are the packages whose behavior must be a pure
// function of their inputs: the simulator, the trace generator and
// streaming readers (a seed must reproduce the same task stream in
// chunked and one-shot modes), the control loop and its solvers, and the
// daemon (whose Replay is the batch reference a streamed trace must
// reproduce bit-for-bit). cmd/harmonyd is included so its genuinely
// wall-clock tick loop carries explicit annotations.
var deterministicPkgs = map[string]bool{
	"harmony/internal/sim":      true,
	"harmony/internal/trace":    true,
	"harmony/internal/sched":    true,
	"harmony/internal/core":     true,
	"harmony/internal/queueing": true,
	"harmony/internal/binpack":  true,
	"harmony/internal/kmeans":   true,
	"harmony/internal/forecast": true,
	"harmony/internal/classify": true,
	"harmony/internal/daemon":   true,
	"harmony/internal/tenant":   true,
	"harmony/cmd/harmonyd":      true,
}

// nodetermBanned maps package path -> function name -> why it is banned.
var nodetermBanned = map[string]map[string]string{
	"time": {
		"Now":       "wall clock",
		"Since":     "wall clock",
		"Until":     "wall clock",
		"Tick":      "wall clock",
		"After":     "wall clock",
		"AfterFunc": "wall clock",
		"NewTicker": "wall clock",
		"NewTimer":  "wall clock",
	},
	"os": {
		"Getenv":    "process environment",
		"LookupEnv": "process environment",
		"Environ":   "process environment",
	},
}

// rngConstructors are the explicit-source constructors that nodeterm
// leaves to the rngdiscipline analyzer.
var rngConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// NoDeterm forbids nondeterministic inputs — wall-clock reads,
// environment reads, and the global math/rand source — inside the
// deterministic packages. Replayability of the paper's figures depends on
// these packages taking time from the simulation clock and randomness
// from a seeded internal/stats RNG only.
var NoDeterm = &Analyzer{
	Name: "nodeterm",
	Doc: "forbid time.Now, os.Getenv, and global math/rand use in deterministic packages " +
		"(sim, trace, sched, core, queueing, binpack, kmeans, forecast, classify, daemon, harmonyd)",
	Packages: func(pkgPath string) bool { return deterministicPkgs[pkgPath] },
	Run:      runNoDeterm,
}

func runNoDeterm(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath := pass.pkgPathOf(sel.X)
			if pkgPath == "" {
				return true
			}
			name := sel.Sel.Name
			if why, ok := nodetermBanned[pkgPath][name]; ok {
				pass.Reportf(sel.Pos(),
					"%s.%s reads the %s; deterministic packages must take it as input (//harmony:allow nodeterm <reason> to permit)",
					pathBase(pkgPath), name, why)
				return true
			}
			if pkgPath == "math/rand" || pkgPath == "math/rand/v2" {
				if rngConstructors[name] {
					return true // rngdiscipline's concern
				}
				if _, isFunc := pass.Pkg.Info.Uses[sel.Sel].(*types.Func); isFunc {
					pass.Reportf(sel.Pos(),
						"rand.%s draws from the process-global RNG; use a seeded *stats.RNG (//harmony:allow nodeterm <reason> to permit)",
						name)
				}
			}
			return true
		})
	}
}

func pathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
