package lint

// The dimension algebra behind unitcheck. A unit is an integer exponent
// vector over the six base dimensions of Harmony's control path — power,
// time, money, task, machine, period — plus a scale factor relating the
// unit to the base unit of its dimension class (W, s, $, task, machine,
// period). kW is power at scale 1000: a value of 2 in kW denotes 2000 in
// base W. Energy is the product dimension power·time (J at scale 1, kWh
// at scale 3.6e6).
//
// Scale is how conversions stay honest: multiplying a value by a
// recognized conversion constant divides its scale (watts/1000 is kW),
// and additions/comparisons require both dims and scale to agree —
// same-dimension different-scale operands are "scale mixing", the
// unannotated kW-vs-W bug class this algebra exists to catch.

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

const (
	dimPower = iota
	dimTime
	dimMoney
	dimTask
	dimMachine
	dimPeriod
	numDims
)

type dimVec [numDims]int8

func (d dimVec) isScalar() bool { return d == dimVec{} }

// unit is one point of the algebra. The zero value is the unknown unit.
type unit struct {
	dims  dimVec
	scale float64
	known bool
}

var scalarUnit = unit{scale: 1, known: true}

// namedUnits is the annotation vocabulary. Scales are base-units-per-1:
// a value of 1 kWh is 3.6e6 base W·s.
var namedUnits = map[string]unit{
	"1":       scalarUnit,
	"W":       {dims: dv(dimPower, 1), scale: 1, known: true},
	"kW":      {dims: dv(dimPower, 1), scale: 1000, known: true},
	"MW":      {dims: dv(dimPower, 1), scale: 1e6, known: true},
	"J":       {dims: dvv(dimPower, 1, dimTime, 1), scale: 1, known: true},
	"Wh":      {dims: dvv(dimPower, 1, dimTime, 1), scale: 3600, known: true},
	"kWh":     {dims: dvv(dimPower, 1, dimTime, 1), scale: 3.6e6, known: true},
	"s":       {dims: dv(dimTime, 1), scale: 1, known: true},
	"min":     {dims: dv(dimTime, 1), scale: 60, known: true},
	"h":       {dims: dv(dimTime, 1), scale: 3600, known: true},
	"$":       {dims: dv(dimMoney, 1), scale: 1, known: true},
	"task":    {dims: dv(dimTask, 1), scale: 1, known: true},
	"machine": {dims: dv(dimMachine, 1), scale: 1, known: true},
	"period":  {dims: dv(dimPeriod, 1), scale: 1, known: true},
}

func dv(i int, e int8) dimVec {
	var d dimVec
	d[i] = e
	return d
}

func dvv(i int, ei int8, j int, ej int8) dimVec {
	d := dv(i, ei)
	d[j] = ej
	return d
}

// conversionConstants are the factors unitcheck recognizes as scale
// hops: multiplying or dividing by one moves a value between scales of
// the same dimension (W/1000 → kW, s/3600 → h, J/3.6e6 → kWh). Other
// constants are plain dimensionless scalars.
var conversionConstants = []float64{1e-6, 0.001, 1000, 3600, 1e6, 3.6e6}

func isConversionConst(v float64) bool {
	for _, c := range conversionConstants {
		if sameScale(v, c) {
			return true
		}
	}
	return false
}

// sameScale compares scale factors with a relative tolerance, so scales
// reached by different arithmetic paths still unify.
func sameScale(a, b float64) bool {
	if a == b { //harmony:allow floateq exact-match fast path ahead of the relative-tolerance comparison
		return true
	}
	if a == 0 || b == 0 {
		return false
	}
	return math.Abs(a/b-1) < 1e-9
}

func (u unit) mul(v unit) unit {
	if !u.known || !v.known {
		return unit{}
	}
	out := unit{scale: u.scale * v.scale, known: true}
	for i := range out.dims {
		out.dims[i] = u.dims[i] + v.dims[i]
	}
	return out
}

func (u unit) div(v unit) unit {
	if !u.known || !v.known {
		return unit{}
	}
	out := unit{scale: u.scale / v.scale, known: true}
	for i := range out.dims {
		out.dims[i] = u.dims[i] - v.dims[i]
	}
	return out
}

// rescale returns u with its scale divided by c: the unit of u-valued
// data after multiplying the data by c.
func (u unit) rescale(c float64) unit {
	if !u.known {
		return u
	}
	u.scale /= c
	return u
}

// sameDims reports dimension agreement (the add/compare precondition).
func (u unit) sameDims(v unit) bool { return u.dims == v.dims }

// compatible reports full agreement: same dimensions at the same scale.
func (u unit) compatible(v unit) bool {
	return u.dims == v.dims && sameScale(u.scale, v.scale)
}

func (u unit) isScalar() bool { return u.known && u.dims.isScalar() && sameScale(u.scale, 1) }

// unitNames returns the vocabulary in sorted order (for docs and error
// messages).
func unitNames() []string {
	names := make([]string, 0, len(namedUnits))
	for n := range namedUnits {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// renderTable maps canonical (dims, scale) keys back to readable names:
// every named unit plus every quotient of two named units, preferring
// plain names over quotients and lexicographically smaller quotients on
// ties. Built once, deterministically.
var renderTable = buildRenderTable()

func unitKey(u unit) string {
	return fmt.Sprintf("%v|%.9e", u.dims, u.scale)
}

func buildRenderTable() map[string]string {
	t := make(map[string]string)
	names := unitNames()
	for _, n := range names {
		k := unitKey(namedUnits[n])
		if _, ok := t[k]; !ok {
			t[k] = n
		}
	}
	for _, a := range names {
		for _, b := range names {
			if a == "1" || b == "1" || a == b {
				continue
			}
			q := namedUnits[a].div(namedUnits[b])
			k := unitKey(q)
			if _, ok := t[k]; !ok {
				t[k] = a + "/" + b
			}
		}
	}
	return t
}

// String renders a unit for diagnostics: a vocabulary name when one
// matches, otherwise a composed base-dimension form with an explicit
// scale marker, e.g. "W·s^-1 ×3600".
func (u unit) String() string {
	if !u.known {
		return "?"
	}
	if name, ok := renderTable[unitKey(u)]; ok {
		return name
	}
	base := [numDims]string{"W", "s", "$", "task", "machine", "period"}
	var parts []string
	for i, e := range u.dims {
		switch {
		case e == 1:
			parts = append(parts, base[i])
		case e != 0:
			parts = append(parts, fmt.Sprintf("%s^%d", base[i], e))
		}
	}
	s := strings.Join(parts, "·")
	if s == "" {
		s = "1"
	}
	if !sameScale(u.scale, 1) {
		s += fmt.Sprintf(" ×%g", u.scale)
	}
	return s
}

// parseUnitExpr parses the annotation grammar:
//
//	expr   = factor { ("*" | "/") factor } .
//	factor = name [ "^" int ] .
//
// e.g. "W", "$/kWh", "task/s", "W*s", "s^-1". Whitespace is ignored.
func parseUnitExpr(s string) (unit, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return unit{}, fmt.Errorf("empty unit expression")
	}
	out := scalarUnit
	rest := s
	op := byte('*')
	for {
		idx := strings.IndexAny(rest, "*/")
		factor := rest
		var nextOp byte
		if idx >= 0 {
			factor, nextOp = rest[:idx], rest[idx]
			rest = rest[idx+1:]
		}
		u, err := parseFactor(strings.TrimSpace(factor))
		if err != nil {
			return unit{}, err
		}
		if op == '/' {
			out = out.div(u)
		} else {
			out = out.mul(u)
		}
		if idx < 0 {
			return out, nil
		}
		if strings.TrimSpace(rest) == "" {
			return unit{}, fmt.Errorf("trailing operator in %q", s)
		}
		op = nextOp
	}
}

func parseFactor(f string) (unit, error) {
	if f == "" {
		return unit{}, fmt.Errorf("empty unit factor")
	}
	name, expStr := f, ""
	if i := strings.IndexByte(f, '^'); i >= 0 {
		name, expStr = f[:i], f[i+1:]
	}
	u, ok := namedUnits[name]
	if !ok {
		return unit{}, fmt.Errorf("unknown unit %q (vocabulary: %s)", name, strings.Join(unitNames(), " "))
	}
	if expStr == "" {
		return u, nil
	}
	exp, err := strconv.Atoi(expStr)
	if err != nil {
		return unit{}, fmt.Errorf("bad exponent %q in %q", expStr, f)
	}
	out := scalarUnit
	for i := 0; i < abs(exp); i++ {
		if exp > 0 {
			out = out.mul(u)
		} else {
			out = out.div(u)
		}
	}
	return out, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
