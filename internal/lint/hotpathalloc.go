package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc turns the control path's steady-state allocation contract
// — pinned dynamically by testing.AllocsPerRun — into a static guarantee
// with named culprits. A function whose doc comment carries
// `//harmony:hotpath` is a root: the root and everything it transitively
// calls (through call, defer, and go edges, including conservative
// interface and function-value dispatch) is scanned for allocating
// constructs:
//
//   - make and new
//   - &composite literals, and map/slice composite literals (their
//     backing store is heap-allocated)
//   - copy-grow append: `y = append(x, ...)` where y is not x (the
//     steady-state idiom `x = append(x, ...)` amortizes to zero and is
//     not flagged)
//   - closures that capture variables, and go statements (both allocate)
//   - non-constant string concatenation and string<->[]byte conversions
//   - calls into fmt and errors (Sprintf, Errorf, New all allocate)
//
// The descent stops at functions whose doc comment carries
// `//harmony:coldpath <reason>` — an explicit budget boundary for
// fallbacks, error paths, and measured residues (e.g. the predictor's
// fit, which TestPeriodScratchReuse budgets dynamically). Individual
// sites are excused with `//harmony:allow hotpathalloc <reason>`.
// Diagnostics name the hot-path root and the call chain to the culprit.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "forbid allocating constructs in //harmony:hotpath functions and their " +
		"transitive callees (stop at //harmony:coldpath boundaries)",
	RunModule: runHotPathAlloc,
}

func runHotPathAlloc(pass *ModulePass) {
	// Union reachability from every hot-path root, visiting roots in
	// deterministic graph order so each function is scanned once and
	// attributed to a stable witness chain.
	parent := make(map[*Node]*Edge)
	visited := make(map[*Node]bool)
	var order []*Node
	var roots []*Node
	for _, n := range pass.Graph.Funcs {
		if n.HotPath {
			roots = append(roots, n)
		}
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if visited[n] || n.ColdPath {
			return
		}
		visited[n] = true
		order = append(order, n)
		for _, e := range n.Out {
			if !visited[e.Callee] && !e.Callee.ColdPath {
				parent[e.Callee] = e
				walk(e.Callee)
			}
		}
	}
	for _, r := range roots {
		walk(r)
	}
	for _, n := range order {
		scanAllocs(pass, n, chainTo(n, parent))
	}
}

// chainTo renders the witness chain root → … → n.
func chainTo(n *Node, parent map[*Node]*Edge) []string {
	var rev []string
	for cur := n; cur != nil; {
		rev = append(rev, cur.Name)
		e := parent[cur]
		if e == nil {
			break
		}
		cur = e.Caller
	}
	path := make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i])
	}
	return path
}

// allocatingExt names external packages whose exported functions all
// allocate on every call.
var allocatingExt = map[string]bool{"fmt": true, "errors": true}

// scanAllocs reports allocating constructs in one function body.
func scanAllocs(pass *ModulePass, n *Node, path []string) {
	info := n.Pkg.Info
	report := func(pos token.Pos, what string) {
		pass.ReportPathf(pos, path,
			"%s allocates on the hot path %s (path: %s); reuse scratch, hoist it out of the tick, or mark the function //harmony:coldpath (//harmony:allow hotpathalloc <reason> to permit)",
			what, path[0], PathString(path))
	}

	// Appends whose result lands back in their own first argument are
	// the steady-state reuse idiom; collect them so the expression walk
	// can skip them.
	amortized := make(map[*ast.CallExpr]bool)
	forEachOwnNode(n.Body(), func(a ast.Node) {
		as, ok := a.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return
		}
		for i, rhs := range as.Rhs {
			call, ok := astUnparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltin(info, call, "append") || len(call.Args) == 0 {
				continue
			}
			if types.ExprString(astUnparen(call.Args[0])) == types.ExprString(astUnparen(as.Lhs[i])) {
				amortized[call] = true
			}
		}
	})

	skipLits := make(map[*ast.CompositeLit]bool)
	forEachOwnNode(n.Body(), func(a ast.Node) {
		switch v := a.(type) {
		case *ast.CallExpr:
			switch {
			case isBuiltin(info, v, "make"):
				report(v.Pos(), "make")
			case isBuiltin(info, v, "new"):
				report(v.Pos(), "new")
			case isBuiltin(info, v, "append"):
				if !amortized[v] {
					report(v.Pos(), "copy-grow append (result does not feed back into its operand)")
				}
			default:
				if tv, ok := info.Types[v.Fun]; ok && tv.IsType() {
					if what, bad := allocatingConversion(info, v); bad {
						report(v.Pos(), what)
					}
					return
				}
				if fn := staticCallee(info, v); fn != nil && fn.Pkg() != nil && allocatingExt[fn.Pkg().Path()] {
					report(v.Pos(), fn.Pkg().Name()+"."+fn.Name())
				}
			}
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if cl, ok := astUnparen(v.X).(*ast.CompositeLit); ok {
					skipLits[cl] = true
					report(v.Pos(), "&composite literal (escapes to the heap)")
				}
			}
		case *ast.CompositeLit:
			if skipLits[v] {
				return
			}
			if tv, ok := info.Types[v]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					report(v.Pos(), "map literal")
				case *types.Slice:
					report(v.Pos(), "slice literal")
				}
			}
		case *ast.BinaryExpr:
			if v.Op == token.ADD {
				if tv, ok := info.Types[v]; ok && tv.Value == nil && isString(tv.Type) {
					report(v.Pos(), "string concatenation")
				}
			}
		case *ast.GoStmt:
			report(v.Pos(), "go statement (the goroutine itself)")
		case *ast.FuncLit:
			if capt := capturedVar(info, v); capt != "" {
				report(v.Pos(), "closure capturing "+capt)
			}
		}
	})
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := astUnparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// staticCallee resolves the statically known callee of a call, or nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch e := astUnparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// allocatingConversion flags string <-> byte/rune slice conversions,
// which copy their operand.
func allocatingConversion(info *types.Info, call *ast.CallExpr) (string, bool) {
	if len(call.Args) != 1 {
		return "", false
	}
	dst, ok1 := info.Types[call.Fun]
	src, ok2 := info.Types[call.Args[0]]
	if !ok1 || !ok2 {
		return "", false
	}
	d, s := dst.Type.Underlying(), src.Type.Underlying()
	if isString(d) {
		if _, isSlice := s.(*types.Slice); isSlice {
			return "string(bytes) conversion (copies)", true
		}
	}
	if _, isSlice := d.(*types.Slice); isSlice && isString(s) {
		return "[]byte(string) conversion (copies)", true
	}
	return "", false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// capturedVar returns the name of a variable the literal captures from
// an enclosing function, or "" for a capture-free literal (which does
// not allocate: it compiles to a static function value).
func capturedVar(info *types.Info, lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit.Body, func(a ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := a.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pkg() == nil || v.Parent() == nil {
			return true
		}
		// Package-level variables are not captures.
		if v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = v.Name()
		}
		return true
	})
	return captured
}
