package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, parsed, and type-checked package — the unit an
// Analyzer runs over.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Loader type-checks packages without golang.org/x/tools: it asks the go
// tool for compiled export data (`go list -export`) and feeds it to the
// standard library's gc importer through a lookup function, so only the
// packages under analysis are type-checked from source.
type Loader struct {
	root string // module root; go list runs here
	fset *token.FileSet

	mu      sync.Mutex
	exports map[string]string         // import path -> export data file
	src     map[string]*types.Package // source-checked fixture packages
	imp     types.Importer
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// NewLoader returns a Loader rooted at the module containing dir (the
// nearest parent with a go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		root:    root,
		fset:    token.NewFileSet(),
		exports: make(map[string]string),
		src:     make(map[string]*types.Package),
	}
	gc := importer.ForCompiler(l.fset, "gc", l.lookup)
	// Source-checked fixture packages shadow export data, so fixture
	// trees can import their own sub-packages (see LoadFixtureTree).
	l.imp = importerFunc(func(path string) (*types.Package, error) {
		l.mu.Lock()
		p := l.src[path]
		l.mu.Unlock()
		if p != nil {
			return p, nil
		}
		return gc.Import(path)
	})
	return l, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// lookup resolves an import path to its export data, shelling out to
// `go list -export` on first miss (results are cached).
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	f, ok := l.exports[path]
	l.mu.Unlock()
	if !ok {
		if err := l.ensureExports(path); err != nil {
			return nil, err
		}
		l.mu.Lock()
		f = l.exports[path]
		l.mu.Unlock()
	}
	if f == "" {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(f)
}

// goList runs `go list -export -deps -json` on the patterns and records
// every export data file it reports.
func (l *Loader) goList(patterns ...string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.root
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	dec := json.NewDecoder(&out)
	var pkgs []*listedPackage
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	l.mu.Lock()
	for _, p := range pkgs {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	l.mu.Unlock()
	return pkgs, nil
}

func (l *Loader) ensureExports(paths ...string) error {
	_, err := l.goList(paths...)
	return err
}

// Load lists the patterns and returns every non-dependency package,
// parsed and type-checked, sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("lint: %s uses cgo, which the loader does not support", p.ImportPath)
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := l.check(p.ImportPath, p.Dir, files)
		if err != nil {
			return nil, err
		}
		// Register the source-checked package so later packages in this
		// load import it directly instead of through export data. go list
		// -deps emits dependency order, so by the time an importer is
		// checked its module-internal imports are already registered —
		// giving one *types.Func identity per function module-wide, which
		// the call graph's byObj lookup depends on for cross-package
		// static dispatch.
		l.mu.Lock()
		l.src[p.ImportPath] = pkg.Types
		l.mu.Unlock()
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir parses and type-checks every .go file directly inside dir as a
// single package, resolving imports the same way Load does. It exists for
// fixture packages under testdata, which `go list ./...` skips.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	return l.loadDirAs("fixture/"+filepath.Base(dir), dir)
}

// LoadFixtureTree loads dir and every subdirectory beneath it as fixture
// packages, depth-first so a parent fixture can import its own
// sub-packages by their fixture path (e.g. fixture/detertaint/impure).
// The root package comes first in the result.
func (l *Loader) LoadFixtureTree(dir string) ([]*Package, error) {
	root := "fixture/" + filepath.Base(dir)
	var pkgs []*Package
	var sub func(path, dir string) error
	sub = func(path, dir string) error {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if e.IsDir() {
				if err := sub(path+"/"+e.Name(), filepath.Join(dir, e.Name())); err != nil {
					return err
				}
			}
		}
		pkg, err := l.loadDirAs(path, dir)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, pkg)
		return nil
	}
	if err := sub(root, dir); err != nil {
		return nil, err
	}
	// Root package first, sub-packages after, both deterministic.
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// loadDirAs loads the .go files directly inside dir as one package under
// the given import path and registers it for import by later fixtures.
func (l *Loader) loadDirAs(path, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	pkg, err := l.check(path, dir, files)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.src[path] = pkg.Types
	l.mu.Unlock()
	return pkg, nil
}

// check parses files and type-checks them as one package.
func (l *Loader) check(path, dir string, files []string) (*Package, error) {
	var asts []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(l.fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, af)
	}
	// Warm the export cache with the whole import closure in one go list
	// run instead of one exec per import.
	var missing []string
	l.mu.Lock()
	for _, af := range asts {
		for _, imp := range af.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if _, srcOK := l.src[p]; srcOK {
				continue // fixture sub-package, checked from source
			}
			if _, ok := l.exports[p]; !ok && p != "unsafe" {
				missing = append(missing, p)
			}
		}
	}
	l.mu.Unlock()
	if len(missing) > 0 {
		if err := l.ensureExports(missing...); err != nil {
			return nil, err
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, asts, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, len(typeErrs))
		for i, e := range typeErrs {
			msgs[i] = e.Error()
		}
		return nil, errors.New("lint: type errors:\n\t" + strings.Join(msgs, "\n\t"))
	}
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: asts, Types: tpkg, Info: info}, nil
}
