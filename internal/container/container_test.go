package container

import (
	"math"
	"math/rand"
	"testing"

	"harmony/internal/stats"
)

func TestPerResourceBound(t *testing.T) {
	epsR, err := PerResourceBound(0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Joint bound must be respected: 1-(1-epsR)^2 <= 0.05.
	joint := 1 - math.Pow(1-epsR, 2)
	if joint > 0.05+1e-12 {
		t.Errorf("joint violation %v exceeds 0.05", joint)
	}
	if epsR >= 0.05 {
		t.Errorf("per-resource bound %v should be < joint 0.05", epsR)
	}
	// Single resource: bound passes through.
	one, _ := PerResourceBound(0.05, 1)
	if math.Abs(one-0.05) > 1e-12 {
		t.Errorf("single-resource bound = %v", one)
	}
	if _, err := PerResourceBound(0, 2); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := PerResourceBound(1, 2); err == nil {
		t.Error("eps=1 accepted")
	}
	if _, err := PerResourceBound(0.1, 0); err == nil {
		t.Error("zero resources accepted")
	}
}

func TestZScore(t *testing.T) {
	z, err := ZScore(0.025)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z-1.959964) > 1e-4 {
		t.Errorf("Z(0.025) = %v, want 1.96", z)
	}
	if _, err := ZScore(0); err == nil {
		t.Error("eps_r=0 accepted")
	}
}

func TestSize(t *testing.T) {
	if got := Size(0.1, 0.05, 2, 1); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Size = %v, want 0.2", got)
	}
	// Clamp above at cap.
	if got := Size(0.9, 0.5, 3, 1); got != 1 {
		t.Errorf("Size clamp hi = %v", got)
	}
	// Clamp below at mean for negative z.
	if got := Size(0.1, 0.05, -4, 1); got != 0.1 {
		t.Errorf("Size clamp lo = %v", got)
	}
}

func TestViolationProbability(t *testing.T) {
	// Mean well below capacity with tiny variance: ~0.
	if p := ViolationProbability(1, 0.2, 0.0001); p > 0.001 {
		t.Errorf("low-load violation = %v", p)
	}
	// Mean equals capacity: 0.5.
	if p := ViolationProbability(1, 1, 0.01); math.Abs(p-0.5) > 1e-9 {
		t.Errorf("at-capacity violation = %v, want 0.5", p)
	}
	// Degenerate variance.
	if p := ViolationProbability(1, 2, 0); p != 1 {
		t.Errorf("overloaded deterministic = %v, want 1", p)
	}
	if p := ViolationProbability(1, 0.5, 0); p != 0 {
		t.Errorf("underloaded deterministic = %v, want 0", p)
	}
}

func TestGroupFits(t *testing.T) {
	ok, err := GroupFits(1, []float64{0.2, 0.2}, []float64{0.05, 0.05}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("comfortable group rejected")
	}
	ok, err = GroupFits(0.5, []float64{0.3, 0.3}, []float64{0.05, 0.05}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("overloaded group accepted")
	}
	if _, err := GroupFits(1, []float64{0.1}, []float64{0.1, 0.2}, 1); err == nil {
		t.Error("mismatched lengths accepted")
	}
	// Zero-variance group reduces to a deterministic capacity check.
	ok, _ = GroupFits(1, []float64{0.5, 0.5}, []float64{0, 0}, 3)
	if !ok {
		t.Error("deterministic exact fit rejected")
	}
}

func TestForClass(t *testing.T) {
	s, err := ForClass(0.1, 0.02, 0.05, 0.01, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if s.CPU <= 0.1 || s.Mem <= 0.05 {
		t.Errorf("sizes not padded: %+v", s)
	}
	if s.Z <= 0 {
		t.Errorf("Z = %v", s.Z)
	}
	if _, err := ForClass(0.1, 0.02, 0.05, 0.01, 0); err == nil {
		t.Error("eps=0 accepted")
	}
}

// Empirical check of the whole chain: pack independent Gaussian tasks up to
// the container-size budget and verify the machine capacity is violated at
// most ~eps of the time.
func TestSizingBoundsEmpiricalViolation(t *testing.T) {
	const (
		eps      = 0.05
		capacity = 1.0
		taskMean = 0.05
		taskStd  = 0.01
		trials   = 20000
	)
	epsR, err := PerResourceBound(eps, 1)
	if err != nil {
		t.Fatal(err)
	}
	z, err := ZScore(epsR)
	if err != nil {
		t.Fatal(err)
	}
	cSize := Size(taskMean, taskStd, z, 1)
	n := int(capacity / cSize) // containers that "fit" by reservation

	r := rand.New(rand.NewSource(17))
	violations := 0
	for trial := 0; trial < trials; trial++ {
		total := 0.0
		for i := 0; i < n; i++ {
			total += stats.TruncNormal(r, taskMean, taskStd, 0, 1)
		}
		if total > capacity {
			violations++
		}
	}
	rate := float64(violations) / trials
	if rate > eps {
		t.Errorf("empirical violation rate %v exceeds eps %v", rate, eps)
	}
}
