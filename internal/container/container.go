// Package container implements HARMONY's container-size selection
// (Section VII-A): task classes are modeled as Gaussian demand per resource,
// and the container size c = μ + Z·σ is chosen so that, by statistical
// multiplexing, a machine packed by container sizes overflows its real
// capacity with probability at most ε (Eq. 3).
package container

import (
	"errors"
	"fmt"
	"math"

	"harmony/internal/stats"
)

// ErrBadBound is returned for error bounds outside (0,1).
var ErrBadBound = errors.New("container: error bound must be in (0,1)")

// PerResourceBound splits a joint machine-overflow bound eps across
// numResources independent resource dimensions: if each resource violates
// with probability at most eps_r and violations are independent, the joint
// violation probability is at most 1-(1-eps_r)^R <= eps when
// eps_r = 1-(1-eps)^{1/R}.
func PerResourceBound(eps float64, numResources int) (float64, error) {
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("%w: eps=%v", ErrBadBound, eps)
	}
	if numResources <= 0 {
		return 0, errors.New("container: need at least one resource")
	}
	return 1 - math.Pow(1-eps, 1/float64(numResources)), nil
}

// ZScore returns the Z multiplier for a per-resource violation bound
// eps_r: the (1-eps_r) percentile of the unit normal.
func ZScore(epsR float64) (float64, error) {
	if epsR <= 0 || epsR >= 1 {
		return 0, fmt.Errorf("%w: eps_r=%v", ErrBadBound, epsR)
	}
	return stats.NormalQuantile(1 - epsR), nil
}

// Size is the container reservation for one resource: c = μ + Z·σ,
// clamped below at μ (a negative Z would under-reserve) and above at cap
// (a container can never exceed the largest machine, capacity 1).
func Size(mean, stddev, z, cap float64) float64 {
	c := mean + z*stddev
	if c < mean {
		c = mean
	}
	if c > cap {
		c = cap
	}
	return c
}

// ViolationProbability returns P(Σ demand > capacity) for a group of
// tasks whose total demand is normal with the given aggregate mean and
// variance (the sum of independent per-task Gaussians).
func ViolationProbability(capacity, totalMean, totalVar float64) float64 {
	if totalVar <= 0 {
		if totalMean > capacity {
			return 1
		}
		return 0
	}
	zz := (capacity - totalMean) / math.Sqrt(totalVar)
	return 1 - stats.NormalCDF(zz)
}

// GroupFits checks the Eq. 3 inequality for a concrete group of tasks:
// (C - Σμ) / sqrt(Σσ²) >= Z. It reports whether the machine capacity C
// accommodates the group at the Z-score's confidence level.
func GroupFits(capacity float64, means, stddevs []float64, z float64) (bool, error) {
	if len(means) != len(stddevs) {
		return false, fmt.Errorf("container: %d means vs %d stddevs", len(means), len(stddevs))
	}
	var sumMu, sumVar float64
	for i := range means {
		sumMu += means[i]
		sumVar += stddevs[i] * stddevs[i]
	}
	if sumVar == 0 {
		return sumMu <= capacity, nil
	}
	return (capacity-sumMu)/math.Sqrt(sumVar) >= z, nil
}

// Sizing bundles the sizing decision for one task class across resources.
type Sizing struct {
	CPU float64
	Mem float64
	Z   float64
}

// ForClass computes the CPU and memory container sizes for a task class
// with the given per-resource means and standard deviations, a joint
// machine-overflow bound eps, and two resource dimensions (CPU, memory).
func ForClass(cpuMean, cpuStd, memMean, memStd, eps float64) (Sizing, error) {
	epsR, err := PerResourceBound(eps, 2)
	if err != nil {
		return Sizing{}, err
	}
	z, err := ZScore(epsR)
	if err != nil {
		return Sizing{}, err
	}
	return Sizing{
		CPU: Size(cpuMean, cpuStd, z, 1),
		Mem: Size(memMean, memStd, z, 1),
		Z:   z,
	}, nil
}
