package energy

import (
	"math"
	"testing"

	"harmony/internal/trace"
)

func TestTableIIShape(t *testing.T) {
	models := TableII()
	if len(models) != 4 {
		t.Fatalf("models = %d, want 4", len(models))
	}
	total := 0
	for _, m := range models {
		total += m.Count
		if m.CPUCap <= 0 || m.CPUCap > 1 || m.MemCap <= 0 || m.MemCap > 1 {
			t.Errorf("%s capacity out of range: %v/%v", m.Name, m.CPUCap, m.MemCap)
		}
		if m.IdleWatts <= 0 || m.AlphaCPU <= 0 {
			t.Errorf("%s power params non-positive", m.Name)
		}
	}
	if total != 10000 {
		t.Errorf("total machines = %d, want 10000", total)
	}
	// The largest machine is normalized to 1/1.
	last := models[3]
	if last.CPUCap != 1 || last.MemCap != 1 {
		t.Errorf("DL585 capacity = %v/%v, want 1/1", last.CPUCap, last.MemCap)
	}
	// Larger machines draw more at idle, as in Figure 9.
	for i := 1; i < len(models); i++ {
		if models[i].IdleWatts <= models[i-1].IdleWatts {
			t.Errorf("idle watts not increasing at %s", models[i].Name)
		}
	}
}

func TestPowerLinear(t *testing.T) {
	m := Model{IdleWatts: 100, AlphaCPU: 50, AlphaMem: 20}
	if got := m.Power(0, 0); got != 100 {
		t.Errorf("idle power = %v", got)
	}
	if got := m.Power(1, 1); got != 170 {
		t.Errorf("peak power = %v", got)
	}
	if got := m.Power(0.5, 0.5); got != 135 {
		t.Errorf("half power = %v", got)
	}
	// Clamping.
	if got := m.Power(2, -1); got != 150 {
		t.Errorf("clamped power = %v", got)
	}
	if m.PeakWatts() != 170 {
		t.Errorf("PeakWatts = %v", m.PeakWatts())
	}
}

func TestEfficiencyOrdering(t *testing.T) {
	models := TableII()
	// In Figure 9's spirit, big machines deliver more capacity per watt
	// at peak than the small R210.
	r210 := models[0].EfficiencyAtPeak()
	dl585 := models[3].EfficiencyAtPeak()
	if dl585 <= r210 {
		t.Errorf("DL585 efficiency %v <= R210 %v", dl585, r210)
	}
	var zero Model
	if zero.EfficiencyAtPeak() != 0 {
		t.Error("zero model efficiency should be 0")
	}
}

func TestMachineTypeConversion(t *testing.T) {
	mt := TableII()[1].MachineType(2)
	if mt.ID != 2 || mt.Count != 1500 {
		t.Errorf("conversion = %+v", mt)
	}
	if mt.CPU != 0.25 || mt.Mem != 0.5 {
		t.Errorf("capacities = %v/%v, want 0.25/0.5", mt.CPU, mt.Mem)
	}
	all := TableIIMachineTypes()
	if len(all) != 4 || all[0].ID != 1 || all[3].ID != 4 {
		t.Errorf("TableIIMachineTypes IDs wrong: %+v", all)
	}
}

func TestCurvePoints(t *testing.T) {
	m := TableII()[0]
	pts := CurvePoints(m, 11)
	if len(pts) != 11 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].CPUUtil != 0 || pts[10].CPUUtil != 1 {
		t.Errorf("endpoints = %v, %v", pts[0], pts[10])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Watts <= pts[i-1].Watts {
			t.Errorf("power curve not increasing at %d", i)
		}
	}
	// Degenerate n.
	if got := CurvePoints(m, 1); len(got) != 2 {
		t.Errorf("n=1 points = %d, want 2", len(got))
	}
}

func TestPrices(t *testing.T) {
	if got := FlatPrice(0.07).At(12345); got != 0.07 {
		t.Errorf("flat price = %v", got)
	}
	p := DiurnalPrice{Base: 0.06, Amplitude: 0.02, PhaseHour: 0}
	// Mean over one day ~= base.
	sum := 0.0
	const n = 240
	for i := 0; i < n; i++ {
		sum += p.At(float64(i) / n * trace.Day)
	}
	if mean := sum / n; math.Abs(mean-0.06) > 1e-3 {
		t.Errorf("diurnal mean = %v, want ~0.06", mean)
	}
	// Never negative even with large amplitude.
	pBig := DiurnalPrice{Base: 0.01, Amplitude: 0.5}
	for i := 0; i < n; i++ {
		if v := pBig.At(float64(i) / n * trace.Day); v < 0 {
			t.Fatalf("negative price %v", v)
		}
	}
}

func TestCost(t *testing.T) {
	// 1000 W for one hour at $0.10/kWh = $0.10.
	if got := Cost(1000, 3600, 0.10); math.Abs(got-0.10) > 1e-12 {
		t.Errorf("Cost = %v, want 0.10", got)
	}
}

func TestMeter(t *testing.T) {
	var m Meter
	if err := m.Accumulate(500, 7200, 0.10); err != nil {
		t.Fatal(err)
	}
	if got := m.KWh(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("KWh = %v, want 1", got)
	}
	if got := m.Dollars(); math.Abs(got-0.10) > 1e-12 {
		t.Errorf("Dollars = %v, want 0.10", got)
	}
	if err := m.Accumulate(1, -1, 0.10); err == nil {
		t.Error("negative interval accepted")
	}
}
