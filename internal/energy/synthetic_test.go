package energy

import (
	"testing"

	"harmony/internal/trace"
)

func TestSyntheticModel(t *testing.T) {
	mt := trace.MachineType{ID: 3, Platform: "PF-B", CPU: 0.5, Mem: 0.25, Count: 40}
	m := SyntheticModel(mt)
	if m.CPUCap != 0.5 || m.MemCap != 0.25 || m.Count != 40 {
		t.Errorf("capacities not preserved: %+v", m)
	}
	if m.IdleWatts <= 45 {
		t.Errorf("idle watts %v should exceed the platform floor", m.IdleWatts)
	}
	if m.AlphaCPU <= 0 || m.AlphaMem <= 0 {
		t.Errorf("alphas non-positive: %+v", m)
	}
	// Bigger machines draw more.
	big := SyntheticModel(trace.MachineType{CPU: 1, Mem: 1})
	small := SyntheticModel(trace.MachineType{CPU: 0.25, Mem: 0.25})
	if big.IdleWatts <= small.IdleWatts {
		t.Error("idle watts not monotone in capacity")
	}
	if big.PeakWatts() <= small.PeakWatts() {
		t.Error("peak watts not monotone in capacity")
	}
}

func TestSyntheticModels(t *testing.T) {
	mts := trace.GoogleLikeMachines(1200)
	models := SyntheticModels(mts)
	if len(models) != len(mts) {
		t.Fatalf("models = %d, want %d", len(models), len(mts))
	}
	for i, m := range models {
		if m.CPUCap != mts[i].CPU || m.MemCap != mts[i].Mem {
			t.Errorf("model %d capacities mismatch", i)
		}
	}
}
