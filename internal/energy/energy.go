// Package energy implements the machine energy model of the paper's
// evaluation (Table II and Eq. 7): four server models with heterogeneous
// capacities and linear power curves P = E_idle + Σ_r α_r·u_r, plus the
// time-varying electricity price p_t that the CBS objective charges
// against.
//
// The paper estimated E_idle and α from Energy Star measurement data [2];
// the wattages here are representative figures for the same server models
// taken from public spec sheets — the substitution documented in DESIGN.md.
package energy

import (
	"errors"
	"fmt"
	"math"

	"harmony/internal/trace"
)

// Model is one server hardware model (a row of Table II).
type Model struct {
	Name       string
	Processors int
	Cores      int
	MemGB      int
	Count      int // machines of this model in the simulated cluster

	CPUCap float64 // normalized CPU capacity (largest machine = 1)
	MemCap float64 // normalized memory capacity

	// E_idle,m: draw when on but idle
	//harmony:unit(W)
	IdleWatts float64
	// α for CPU utilization (watts at u=1)
	//harmony:unit(W)
	AlphaCPU float64
	// α for memory utilization (watts at u=1)
	//harmony:unit(W)
	AlphaMem float64
}

// Power returns the electrical draw in watts at the given utilizations
// (each in [0,1], clamped). This is Eq. 7's per-machine term.
//
//harmony:unit(W) return
func (m Model) Power(cpuUtil, memUtil float64) float64 {
	return m.IdleWatts + m.AlphaCPU*clamp01(cpuUtil) + m.AlphaMem*clamp01(memUtil)
}

// PeakWatts returns the draw at full utilization.
//
//harmony:unit(W) return
func (m Model) PeakWatts() float64 { return m.Power(1, 1) }

// EfficiencyAtPeak returns normalized capacity delivered per watt at full
// load — the metric the heterogeneity-oblivious baseline greedily sorts by.
func (m Model) EfficiencyAtPeak() float64 {
	p := m.PeakWatts()
	if p <= 0 {
		return 0
	}
	return (m.CPUCap + m.MemCap) / 2 / p
}

// MachineType converts the model to the trace package's machine type,
// preserving the Table II population count.
func (m Model) MachineType(id int) trace.MachineType {
	return trace.MachineType{
		ID:       id,
		Platform: m.Name,
		CPU:      m.CPUCap,
		Mem:      m.MemCap,
		Count:    m.Count,
	}
}

// TableII returns the simulated cluster of the paper's evaluation
// (Section IX, Table II): 10 000 machines over four models, normalized so
// the HP DL585 G7 (48 cores, 64 GB) has capacity 1.0/1.0.
func TableII() []Model {
	return []Model{
		{
			Name: "Dell PowerEdge R210", Processors: 1, Cores: 4, MemGB: 4,
			Count:  7000,
			CPUCap: 4.0 / 48, MemCap: 4.0 / 64,
			IdleWatts: 60, AlphaCPU: 45, AlphaMem: 15,
		},
		{
			Name: "Dell PowerEdge R515", Processors: 2, Cores: 6, MemGB: 32,
			Count:  1500,
			CPUCap: 12.0 / 48, MemCap: 32.0 / 64,
			IdleWatts: 120, AlphaCPU: 115, AlphaMem: 45,
		},
		{
			Name: "HP DL385 G7", Processors: 2, Cores: 12, MemGB: 16,
			Count:  1000,
			CPUCap: 24.0 / 48, MemCap: 16.0 / 64,
			IdleWatts: 140, AlphaCPU: 130, AlphaMem: 50,
		},
		{
			Name: "HP DL585 G7", Processors: 4, Cores: 12, MemGB: 64,
			Count:  500,
			CPUCap: 1, MemCap: 1,
			IdleWatts: 260, AlphaCPU: 260, AlphaMem: 110,
		},
	}
}

// TableIIMachineTypes converts TableII into trace machine types with
// IDs 1..4.
func TableIIMachineTypes() []trace.MachineType {
	models := TableII()
	out := make([]trace.MachineType, len(models))
	for i, m := range models {
		out[i] = m.MachineType(i + 1)
	}
	return out
}

// SyntheticModel derives a plausible power model for an arbitrary machine
// type: idle and dynamic draw scale with normalized capacity, with a fixed
// platform overhead. It fills in energy curves for the ten Google-like
// machine types whose hardware specs the trace does not disclose.
func SyntheticModel(mt trace.MachineType) Model {
	avg := (mt.CPU + mt.Mem) / 2
	return Model{
		Name:      fmt.Sprintf("synthetic-%s-%d", mt.Platform, mt.ID),
		Count:     mt.Count,
		CPUCap:    mt.CPU,
		MemCap:    mt.Mem,
		IdleWatts: 45 + 215*avg,
		AlphaCPU:  30 + 230*mt.CPU,
		AlphaMem:  10 + 100*mt.Mem,
	}
}

// SyntheticModels maps SyntheticModel over a machine population.
func SyntheticModels(mts []trace.MachineType) []Model {
	out := make([]Model, len(mts))
	for i, mt := range mts {
		out[i] = SyntheticModel(mt)
	}
	return out
}

// CurvePoints samples a model's power curve at n CPU utilizations in
// [0,1] with memory utilization tracking CPU (Figure 9's x-axis is CPU
// usage).
func CurvePoints(m Model, n int) []CurvePoint {
	if n < 2 {
		n = 2
	}
	pts := make([]CurvePoint, n)
	for i := 0; i < n; i++ {
		u := float64(i) / float64(n-1)
		pts[i] = CurvePoint{CPUUtil: u, Watts: m.Power(u, u)}
	}
	return pts
}

// CurvePoint is one sample of a power curve.
type CurvePoint struct {
	CPUUtil float64
	Watts   float64
}

// Price is a time-varying electricity price in dollars per kWh.
type Price interface {
	// At returns the price at t seconds since simulation start.
	//harmony:unit($/kWh)
	At(t float64) float64
}

// FlatPrice is a constant electricity price.
//
//harmony:unit($/kWh)
type FlatPrice float64

// At implements Price.
//
//harmony:unit($/kWh) return
func (p FlatPrice) At(float64) float64 { return float64(p) }

// DiurnalPrice follows a daily sinusoid: Base + Amplitude·sin(2πt/day +
// phase), floored at zero. It models the run-time electricity price feed
// the paper's objective multiplies energy by.
type DiurnalPrice struct {
	//harmony:unit($/kWh)
	Base float64
	//harmony:unit($/kWh)
	Amplitude float64
	PhaseHour float64 // hour of day at which the sinusoid crosses upward
}

// At implements Price.
//
//harmony:unit($/kWh) return
func (p DiurnalPrice) At(t float64) float64 {
	v := p.Base + p.Amplitude*math.Sin(2*math.Pi*(t/trace.Day)-p.PhaseHour*2*math.Pi/24)
	if v < 0 {
		return 0
	}
	return v
}

// Cost converts a power draw sustained for an interval into dollars:
// W/1000 → kW, ·s/3600 → kWh, ·$/kWh → $. unitcheck verifies the chain.
//
//harmony:unit(W) watts
//harmony:unit(s) seconds
//harmony:unit($/kWh) dollarsPerKWh
//harmony:unit($) return
func Cost(watts, seconds, dollarsPerKWh float64) float64 {
	return watts / 1000 * seconds / 3600 * dollarsPerKWh
}

// Meter accumulates cluster energy and cost over a simulation.
type Meter struct {
	joules  float64 //harmony:unit(J)
	dollars float64 //harmony:unit($)
}

// ErrBadInterval is returned by Accumulate for negative intervals.
var ErrBadInterval = errors.New("energy: negative interval")

// Accumulate records a power draw sustained for an interval at the given
// price.
//
//harmony:unit(W) watts
//harmony:unit(s) seconds
//harmony:unit($/kWh) dollarsPerKWh
func (m *Meter) Accumulate(watts, seconds, dollarsPerKWh float64) error {
	if seconds < 0 {
		return ErrBadInterval
	}
	m.joules += watts * seconds
	m.dollars += Cost(watts, seconds, dollarsPerKWh)
	return nil
}

// KWh returns total energy recorded in kilowatt-hours.
//
//harmony:unit(kWh) return
func (m *Meter) KWh() float64 { return m.joules / 3.6e6 }

// Dollars returns total energy cost recorded.
//
//harmony:unit($) return
func (m *Meter) Dollars() float64 { return m.dollars }

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
