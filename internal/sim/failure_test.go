package sim

import (
	"testing"

	"harmony/internal/energy"
	"harmony/internal/trace"
)

func failureConfig(tr *trace.Trace, mtbf float64) Config {
	return Config{
		Trace:         tr,
		Models:        []energy.Model{{CPUCap: 1, MemCap: 1, IdleWatts: 100, AlphaCPU: 100, AlphaMem: 40}},
		Price:         energy.FlatPrice(0.1),
		Policy:        &staticPolicy{name: "on", target: []int{4}},
		Period:        100,
		NumTypes:      1,
		TypeOf:        func(trace.Task) int { return 0 },
		MTBFHours:     mtbf,
		RepairSeconds: 200,
		FailureSeed:   7,
	}
}

func TestFailureInjectionKillsAndRequeues(t *testing.T) {
	// Long tasks on a small cluster with an aggressive failure rate:
	// failures must abort executions, requeue, and still finish work.
	var tasks []trace.Task
	for i := 0; i < 8; i++ {
		tasks = append(tasks, trace.Task{
			ID: uint64(i + 1), Submit: float64(i), Duration: 300,
			CPU: 0.2, Mem: 0.2, Priority: 0,
		})
	}
	tr := &trace.Trace{
		Machines: []trace.MachineType{{ID: 1, CPU: 1, Mem: 1, Count: 4}},
		Tasks:    tasks,
		Horizon:  40000,
	}
	// MTBF of ~0.1h with 100s periods: p(fail) per period ~ 0.28.
	res, err := Run(failureConfig(tr, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 {
		t.Fatal("no failures injected despite tiny MTBF")
	}
	if res.TasksKilled == 0 {
		t.Error("failures killed no executions on a busy cluster")
	}
	// Conservation still holds: every task is scheduled or unscheduled.
	if res.Scheduled+res.Unscheduled != len(tasks) {
		t.Errorf("conservation broken: %d + %d != %d",
			res.Scheduled, res.Unscheduled, len(tasks))
	}
	// The horizon is generous: most tasks should eventually complete
	// despite churn.
	if res.Completed == 0 {
		t.Error("nothing completed despite long horizon")
	}
}

func TestNoFailuresWhenDisabled(t *testing.T) {
	tasks := []trace.Task{{ID: 1, Submit: 0, Duration: 100, CPU: 0.1, Mem: 0.1, Priority: 0}}
	tr := &trace.Trace{
		Machines: []trace.MachineType{{ID: 1, CPU: 1, Mem: 1, Count: 1}},
		Tasks:    tasks,
		Horizon:  1000,
	}
	res, err := Run(failureConfig(tr, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 || res.TasksKilled != 0 {
		t.Errorf("failures injected while disabled: %d/%d", res.Failures, res.TasksKilled)
	}
	if res.Completed != 1 {
		t.Errorf("completed = %d", res.Completed)
	}
}

func TestFailedMachineStaysDownThenRecovers(t *testing.T) {
	// With one machine and near-certain per-period failure, tasks keep
	// restarting; with repair shorter than the period the machine comes
	// back and eventually completes short tasks.
	tasks := []trace.Task{
		{ID: 1, Submit: 0, Duration: 30, CPU: 0.5, Mem: 0.5, Priority: 0},
	}
	tr := &trace.Trace{
		Machines: []trace.MachineType{{ID: 1, CPU: 1, Mem: 1, Count: 1}},
		Tasks:    tasks,
		Horizon:  20000,
	}
	cfg := failureConfig(tr, 2) // moderate failure rate
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Errorf("task never completed across failures: completed=%d failures=%d",
			res.Completed, res.Failures)
	}
}
