package sim

import (
	"testing"

	"harmony/internal/energy"
	"harmony/internal/trace"
)

func TestBootDelayPostponesScheduling(t *testing.T) {
	tasks := []trace.Task{
		{ID: 1, Submit: 10, Duration: 50, CPU: 0.3, Mem: 0.3, Priority: 0},
	}
	tr := &trace.Trace{
		Machines: []trace.MachineType{{ID: 1, CPU: 1, Mem: 1, Count: 1}},
		Tasks:    tasks,
		Horizon:  2000,
	}
	cfg := Config{
		Trace:     tr,
		Models:    []energy.Model{{CPUCap: 1, MemCap: 1, IdleWatts: 100, AlphaCPU: 100, AlphaMem: 40}},
		Price:     energy.FlatPrice(0.1),
		Policy:    &staticPolicy{name: "one", target: []int{1}},
		Period:    100,
		NumTypes:  1,
		TypeOf:    func(trace.Task) int { return 0 },
		BootDelay: 250,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled != 1 {
		t.Fatalf("scheduled = %d", res.Scheduled)
	}
	// The machine powers on at t=0 but is ready only at t=250; the task
	// arriving at t=10 waits until the t=300 period boundary pass (the
	// first scheduling opportunity after readiness).
	delay := res.DelayByGroup[trace.Gratis].Quantile(1)
	if delay < 240 {
		t.Errorf("delay = %v, want >= 240 (boot delay enforced)", delay)
	}
}

func TestBootDelayZeroIsInstant(t *testing.T) {
	tasks := []trace.Task{
		{ID: 1, Submit: 10, Duration: 50, CPU: 0.3, Mem: 0.3, Priority: 0},
	}
	tr := &trace.Trace{
		Machines: []trace.MachineType{{ID: 1, CPU: 1, Mem: 1, Count: 1}},
		Tasks:    tasks,
		Horizon:  2000,
	}
	cfg := Config{
		Trace:    tr,
		Models:   []energy.Model{{CPUCap: 1, MemCap: 1, IdleWatts: 100, AlphaCPU: 100, AlphaMem: 40}},
		Price:    energy.FlatPrice(0.1),
		Policy:   &staticPolicy{name: "one", target: []int{1}},
		Period:   100,
		NumTypes: 1,
		TypeOf:   func(trace.Task) int { return 0 },
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.DelayByGroup[trace.Gratis].Quantile(1); d != 0 {
		t.Errorf("delay = %v, want 0 without boot delay", d)
	}
}

func TestRelabelMovesOccupancy(t *testing.T) {
	// One long task initially labeled type 0; the relabel hook flips any
	// task older than 150s to type 1. A quota of {type0: 1, type1: 1}
	// means a second type-0 task can only start after the relabel frees
	// the type-0 slot.
	tasks := []trace.Task{
		{ID: 1, Submit: 0, Duration: 5000, CPU: 0.1, Mem: 0.1, Priority: 0},
		{ID: 2, Submit: 50, Duration: 100, CPU: 0.1, Mem: 0.1, Priority: 0},
	}
	tr := &trace.Trace{
		Machines: []trace.MachineType{{ID: 1, CPU: 1, Mem: 1, Count: 1}},
		Tasks:    tasks,
		Horizon:  3000,
	}
	cfg := Config{
		Trace:  tr,
		Models: []energy.Model{{CPUCap: 1, MemCap: 1, IdleWatts: 100, AlphaCPU: 100, AlphaMem: 40}},
		Price:  energy.FlatPrice(0.1),
		Policy: &staticPolicy{
			name:   "quota",
			target: []int{1},
			quota:  [][]int{{1, 1}},
		},
		Period:   100,
		NumTypes: 2,
		TypeOf:   func(trace.Task) int { return 0 },
		Relabel: func(current int, age float64) int {
			if current == 0 && age > 150 {
				return 1
			}
			return current
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled != 2 {
		t.Fatalf("scheduled = %d, want 2", res.Scheduled)
	}
	// Task 2 could not start while task 1 held the single type-0 slot;
	// after the relabel pass at t=200 (age 200 > 150) the slot freed and
	// task 2 started at the same boundary: delay = 200 - 50 = 150.
	delay := res.DelayByGroup[trace.Gratis].Quantile(1)
	if delay != 150 {
		t.Errorf("delay = %v, want 150 (freed by relabel)", delay)
	}
}

func TestRelabelIgnoresBadTypes(t *testing.T) {
	tasks := []trace.Task{
		{ID: 1, Submit: 0, Duration: 1000, CPU: 0.1, Mem: 0.1, Priority: 0},
	}
	tr := &trace.Trace{
		Machines: []trace.MachineType{{ID: 1, CPU: 1, Mem: 1, Count: 1}},
		Tasks:    tasks,
		Horizon:  2000,
	}
	cfg := Config{
		Trace:    tr,
		Models:   []energy.Model{{CPUCap: 1, MemCap: 1, IdleWatts: 100, AlphaCPU: 100, AlphaMem: 40}},
		Price:    energy.FlatPrice(0.1),
		Policy:   &staticPolicy{name: "one", target: []int{1}},
		Period:   100,
		NumTypes: 2,
		TypeOf:   func(trace.Task) int { return 0 },
		Relabel: func(current int, age float64) int {
			return 99 // out of range: must be ignored
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Errorf("completed = %d", res.Completed)
	}
}

func TestPlacementConstraintRespected(t *testing.T) {
	// Two machine types on different platforms; the constrained task may
	// only use PF-B even though PF-A has room.
	tasks := []trace.Task{
		{ID: 1, Submit: 0, Duration: 100, CPU: 0.1, Mem: 0.1, Priority: 0, Constraint: "PF-B"},
	}
	tr := &trace.Trace{
		Machines: []trace.MachineType{
			{ID: 1, Platform: "PF-A", CPU: 1, Mem: 1, Count: 1},
			{ID: 2, Platform: "PF-B", CPU: 1, Mem: 1, Count: 1},
		},
		Tasks:   tasks,
		Horizon: 1000,
	}
	models := []energy.Model{
		{CPUCap: 1, MemCap: 1, IdleWatts: 100, AlphaCPU: 100, AlphaMem: 40},
		{CPUCap: 1, MemCap: 1, IdleWatts: 100, AlphaCPU: 100, AlphaMem: 40},
	}

	// Only PF-A powered: the task can never start.
	res, err := Run(Config{
		Trace: tr, Models: models, Price: energy.FlatPrice(0.1),
		Policy: &staticPolicy{name: "a-only", target: []int{1, 0}},
		Period: 100, NumTypes: 1, TypeOf: func(trace.Task) int { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled != 0 {
		t.Errorf("constrained task scheduled on wrong platform")
	}

	// PF-B powered: it runs.
	res, err = Run(Config{
		Trace: tr, Models: models, Price: energy.FlatPrice(0.1),
		Policy: &staticPolicy{name: "both", target: []int{1, 1}},
		Period: 100, NumTypes: 1, TypeOf: func(trace.Task) int { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled != 1 {
		t.Errorf("constrained task not scheduled on its platform")
	}
}
