package sim

import (
	"testing"

	"harmony/internal/energy"
	"harmony/internal/stats"
	"harmony/internal/trace"
)

// staticPolicy always requests the same machine counts and quotas.
type staticPolicy struct {
	name   string
	target []int
	quota  [][]int
	rcpu   []float64
	rmem   []float64
}

func (p *staticPolicy) Name() string { return p.name }
func (p *staticPolicy) Period(*Observation) Directive {
	return Directive{TargetActive: p.target, Quota: p.quota, ReserveCPU: p.rcpu, ReserveMem: p.rmem}
}

// recorderPolicy captures observations.
type recorderPolicy struct {
	staticPolicy
	obs []*Observation
}

func (p *recorderPolicy) Period(o *Observation) Directive {
	p.obs = append(p.obs, o)
	return p.staticPolicy.Period(o)
}

func simTrace(tasks []trace.Task, horizon float64) *trace.Trace {
	tr := &trace.Trace{
		Machines: []trace.MachineType{
			{ID: 1, CPU: 0.5, Mem: 0.5, Count: 2},
			{ID: 2, CPU: 1, Mem: 1, Count: 1},
		},
		Tasks:   tasks,
		Horizon: horizon,
	}
	tr.SortTasks()
	return tr
}

func simModels() []energy.Model {
	return []energy.Model{
		{Name: "small", CPUCap: 0.5, MemCap: 0.5, IdleWatts: 100, AlphaCPU: 50, AlphaMem: 20},
		{Name: "big", CPUCap: 1, MemCap: 1, IdleWatts: 200, AlphaCPU: 100, AlphaMem: 40},
	}
}

func baseConfig(tr *trace.Trace, p Policy) Config {
	return Config{
		Trace:    tr,
		Models:   simModels(),
		Price:    energy.FlatPrice(0.10),
		Policy:   p,
		Period:   100,
		NumTypes: 1,
		TypeOf:   func(trace.Task) int { return 0 },
	}
}

func TestValidateConfig(t *testing.T) {
	tr := simTrace(nil, 1000)
	good := baseConfig(tr, &staticPolicy{name: "x", target: []int{1, 1}})
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no trace", func(c *Config) { c.Trace = nil }},
		{"model mismatch", func(c *Config) { c.Models = c.Models[:1] }},
		{"no price", func(c *Config) { c.Price = nil }},
		{"no policy", func(c *Config) { c.Policy = nil }},
		{"zero period", func(c *Config) { c.Period = 0 }},
		{"no type map", func(c *Config) { c.TypeOf = nil }},
		{"bad switch cost", func(c *Config) { c.SwitchCost = []float64{1} }},
		{"bad initial", func(c *Config) { c.InitialActive = []int{1} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := good
			tt.mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestRunSchedulesAndCompletes(t *testing.T) {
	tasks := []trace.Task{
		{ID: 1, Submit: 10, Duration: 50, CPU: 0.3, Mem: 0.3, Priority: 0},
		{ID: 2, Submit: 20, Duration: 50, CPU: 0.3, Mem: 0.3, Priority: 10},
	}
	tr := simTrace(tasks, 1000)
	res, err := Run(baseConfig(tr, &staticPolicy{name: "on", target: []int{2, 1}}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled != 2 || res.Completed != 2 || res.Unscheduled != 0 {
		t.Errorf("scheduled=%d completed=%d unscheduled=%d", res.Scheduled, res.Completed, res.Unscheduled)
	}
	// Machines on from period 0: delays are 0 for both.
	if d := res.DelayByGroup[trace.Gratis].Quantile(1); d != 0 {
		t.Errorf("gratis delay = %v, want 0", d)
	}
	if res.EnergyKWh <= 0 || res.EnergyCost <= 0 {
		t.Errorf("no energy recorded: %v kWh, $%v", res.EnergyKWh, res.EnergyCost)
	}
}

func TestRunNoMachinesMeansNoScheduling(t *testing.T) {
	tasks := []trace.Task{{ID: 1, Submit: 10, Duration: 50, CPU: 0.3, Mem: 0.3, Priority: 0}}
	tr := simTrace(tasks, 500)
	res, err := Run(baseConfig(tr, &staticPolicy{name: "off", target: []int{0, 0}}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled != 0 || res.Unscheduled != 1 {
		t.Errorf("scheduled=%d unscheduled=%d", res.Scheduled, res.Unscheduled)
	}
	if res.EnergyKWh != 0 {
		t.Errorf("energy with all machines off: %v", res.EnergyKWh)
	}
	// The censored task records its wait.
	if res.DelayByGroup[trace.Gratis].Len() != 1 {
		t.Error("censored delay missing")
	}
}

func TestRunDelayMeasured(t *testing.T) {
	// One machine; first task occupies it fully; second waits until done.
	tasks := []trace.Task{
		{ID: 1, Submit: 0, Duration: 300, CPU: 0.9, Mem: 0.9, Priority: 0},
		{ID: 2, Submit: 50, Duration: 100, CPU: 0.9, Mem: 0.9, Priority: 0},
	}
	tr := &trace.Trace{
		Machines: []trace.MachineType{{ID: 1, CPU: 1, Mem: 1, Count: 1}},
		Tasks:    tasks,
		Horizon:  2000,
	}
	cfg := Config{
		Trace:    tr,
		Models:   []energy.Model{{CPUCap: 1, MemCap: 1, IdleWatts: 100, AlphaCPU: 100, AlphaMem: 40}},
		Price:    energy.FlatPrice(0.1),
		Policy:   &staticPolicy{name: "one", target: []int{1}},
		Period:   100,
		NumTypes: 1,
		TypeOf:   func(trace.Task) int { return 0 },
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled != 2 {
		t.Fatalf("scheduled = %d", res.Scheduled)
	}
	// Task 2 waited from t=50 until t=300 -> 250s.
	max := res.DelayByGroup[trace.Gratis].Quantile(1)
	if max != 250 {
		t.Errorf("max delay = %v, want 250", max)
	}
}

func TestRunPriorityOrdering(t *testing.T) {
	// Capacity for one task at a time; gratis arrives first but
	// production should be scheduled first when both are queued.
	tasks := []trace.Task{
		{ID: 1, Submit: 0, Duration: 100, CPU: 0.9, Mem: 0.9, Priority: 0},   // occupies machine
		{ID: 2, Submit: 10, Duration: 100, CPU: 0.9, Mem: 0.9, Priority: 0},  // gratis, queued
		{ID: 3, Submit: 20, Duration: 100, CPU: 0.9, Mem: 0.9, Priority: 10}, // production, queued later
	}
	tr := &trace.Trace{
		Machines: []trace.MachineType{{ID: 1, CPU: 1, Mem: 1, Count: 1}},
		Tasks:    tasks,
		Horizon:  1000,
	}
	cfg := Config{
		Trace:    tr,
		Models:   []energy.Model{{CPUCap: 1, MemCap: 1, IdleWatts: 100, AlphaCPU: 100, AlphaMem: 40}},
		Price:    energy.FlatPrice(0.1),
		Policy:   &staticPolicy{name: "one", target: []int{1}},
		Period:   50,
		NumTypes: 1,
		TypeOf:   func(trace.Task) int { return 0 },
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Production got the machine at t=100 (delay 80); gratis at t=200
	// (delay 190).
	prodDelay := res.DelayByGroup[trace.Production].Quantile(1)
	gratisMax := res.DelayByGroup[trace.Gratis].Quantile(1)
	if prodDelay != 80 {
		t.Errorf("production delay = %v, want 80", prodDelay)
	}
	if gratisMax != 190 {
		t.Errorf("gratis max delay = %v, want 190", gratisMax)
	}
}

func TestRunQuotaEnforced(t *testing.T) {
	// Quota forbids type 0 on machine type 0 (small), allows on big.
	tasks := []trace.Task{
		{ID: 1, Submit: 10, Duration: 400, CPU: 0.2, Mem: 0.2, Priority: 0},
		{ID: 2, Submit: 11, Duration: 400, CPU: 0.2, Mem: 0.2, Priority: 0},
	}
	tr := simTrace(tasks, 1000)
	quota := [][]int{{0}, {1}} // none on small, one on big
	res, err := Run(baseConfig(tr, &staticPolicy{name: "quota", target: []int{2, 1}, quota: quota}))
	if err != nil {
		t.Fatal(err)
	}
	// Only one task can run concurrently (big machine, quota 1); the
	// second waits the full 400s even though small machines are free.
	if res.Scheduled != 2 {
		t.Fatalf("scheduled = %d", res.Scheduled)
	}
	max := res.DelayByGroup[trace.Gratis].Quantile(1)
	if max < 399-1e-6 {
		t.Errorf("quota not enforced: max delay %v, want ~399", max)
	}
}

func TestRunReservationInflatesFootprint(t *testing.T) {
	// Two tiny tasks with a 0.5 container reservation: the 0.5/0.5
	// machine fits only one at a time per machine.
	tasks := []trace.Task{
		{ID: 1, Submit: 0, Duration: 200, CPU: 0.05, Mem: 0.05, Priority: 0},
		{ID: 2, Submit: 1, Duration: 200, CPU: 0.05, Mem: 0.05, Priority: 0},
		{ID: 3, Submit: 2, Duration: 200, CPU: 0.05, Mem: 0.05, Priority: 0},
	}
	tr := &trace.Trace{
		Machines: []trace.MachineType{{ID: 1, CPU: 0.5, Mem: 0.5, Count: 2}},
		Tasks:    tasks,
		Horizon:  1000,
	}
	cfg := Config{
		Trace:  tr,
		Models: []energy.Model{{CPUCap: 0.5, MemCap: 0.5, IdleWatts: 100, AlphaCPU: 50, AlphaMem: 20}},
		Price:  energy.FlatPrice(0.1),
		Policy: &staticPolicy{
			name: "resv", target: []int{2},
			rcpu: []float64{0.5}, rmem: []float64{0.5},
		},
		Period:   100,
		NumTypes: 1,
		TypeOf:   func(trace.Task) int { return 0 },
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two run immediately (one per machine); the third waits ~198s.
	max := res.DelayByGroup[trace.Gratis].Quantile(1)
	if max < 100 {
		t.Errorf("reservation not enforced: max delay = %v", max)
	}
}

func TestRunObservationContents(t *testing.T) {
	tasks := []trace.Task{
		{ID: 1, Submit: 10, Duration: 500, CPU: 0.3, Mem: 0.2, Priority: 0},
	}
	tr := simTrace(tasks, 350)
	rec := &recorderPolicy{staticPolicy: staticPolicy{name: "rec", target: []int{2, 1}}}
	if _, err := Run(baseConfig(tr, rec)); err != nil {
		t.Fatal(err)
	}
	if len(rec.obs) < 3 {
		t.Fatalf("observations = %d", len(rec.obs))
	}
	// Period 1 (t=100) sees the arrival of task 1 during period 0.
	if rec.obs[1].Arrivals[0] != 1 {
		t.Errorf("arrivals = %v", rec.obs[1].Arrivals)
	}
	// Task runs: running demand visible.
	if rec.obs[1].RunningDemandCPU != 0.3 {
		t.Errorf("running demand = %v", rec.obs[1].RunningDemandCPU)
	}
	if rec.obs[0].PeriodIndex != 0 || rec.obs[1].PeriodIndex != 1 {
		t.Error("period indices wrong")
	}
	if rec.obs[1].Active[0] != 2 || rec.obs[1].Active[1] != 1 {
		t.Errorf("active = %v", rec.obs[1].Active)
	}
}

func TestRunSwitchCostsCounted(t *testing.T) {
	tasks := []trace.Task{{ID: 1, Submit: 10, Duration: 50, CPU: 0.3, Mem: 0.3, Priority: 0}}
	tr := simTrace(tasks, 300)
	cfg := baseConfig(tr, &staticPolicy{name: "on", target: []int{2, 1}})
	cfg.SwitchCost = []float64{0.5, 1.0}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Three machines powered on at period 0: 2×0.5 + 1×1.0 = 2.
	if res.SwitchEvents != 3 {
		t.Errorf("switch events = %d, want 3", res.SwitchEvents)
	}
	if res.SwitchCost != 2 {
		t.Errorf("switch cost = %v, want 2", res.SwitchCost)
	}
}

func TestRunBusyMachineNotPoweredOff(t *testing.T) {
	// Policy turns everything on in period 0, off afterwards; the
	// long-running task keeps its machine alive.
	tasks := []trace.Task{{ID: 1, Submit: 1, Duration: 5000, CPU: 0.9, Mem: 0.9, Priority: 0}}
	tr := &trace.Trace{
		Machines: []trace.MachineType{{ID: 1, CPU: 1, Mem: 1, Count: 2}},
		Tasks:    tasks,
		Horizon:  1000,
	}
	flip := &flipPolicy{}
	cfg := Config{
		Trace:    tr,
		Models:   []energy.Model{{CPUCap: 1, MemCap: 1, IdleWatts: 100, AlphaCPU: 100, AlphaMem: 40}},
		Price:    energy.FlatPrice(0.1),
		Policy:   flip,
		Period:   100,
		NumTypes: 1,
		TypeOf:   func(trace.Task) int { return 0 },
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// After the flip the active series must stay at 1 (the busy machine),
	// not 0.
	var sawOne bool
	for _, p := range res.ActiveSeries.Points[2:] {
		if p.Y == 1 {
			sawOne = true
		}
		if p.Y == 0 {
			t.Fatalf("busy machine was powered off at t=%v", p.X)
		}
	}
	if !sawOne {
		t.Error("active series never settled at 1")
	}
}

type flipPolicy struct{ calls int }

func (f *flipPolicy) Name() string { return "flip" }
func (f *flipPolicy) Period(*Observation) Directive {
	f.calls++
	if f.calls == 1 {
		return Directive{TargetActive: []int{2}}
	}
	return Directive{TargetActive: []int{0}}
}

func TestMeanDelay(t *testing.T) {
	r := &Result{DelayByGroup: map[trace.PriorityGroup]*stats.CDF{
		trace.Gratis: stats.NewCDF([]float64{0, 10, 20}),
	}}
	if got := r.MeanDelay(trace.Gratis); got != 10 {
		t.Errorf("MeanDelay = %v, want 10", got)
	}
	if got := r.MeanDelay(trace.Production); got != 0 {
		t.Errorf("MeanDelay(empty) = %v", got)
	}
}

// Conservation: every task is scheduled or unscheduled, and completions
// never exceed schedules.
func TestRunConservation(t *testing.T) {
	cfgTr := trace.DefaultConfig(3)
	cfgTr.Horizon = 2 * trace.Hour
	cfgTr.RatePerS = 0.5
	cfgTr.Machines = []trace.MachineType{
		{ID: 1, CPU: 0.5, Mem: 0.5, Count: 30},
		{ID: 2, CPU: 1, Mem: 1, Count: 10},
	}
	tr, err := trace.Generate(cfgTr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Trace:    tr,
		Models:   simModels(),
		Price:    energy.FlatPrice(0.1),
		Policy:   &staticPolicy{name: "all", target: []int{30, 10}},
		Period:   300,
		NumTypes: 1,
		TypeOf:   func(trace.Task) int { return 0 },
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled+res.Unscheduled != len(tr.Tasks) {
		t.Errorf("scheduled %d + unscheduled %d != tasks %d",
			res.Scheduled, res.Unscheduled, len(tr.Tasks))
	}
	if res.Completed > res.Scheduled {
		t.Errorf("completed %d > scheduled %d", res.Completed, res.Scheduled)
	}
	total := 0
	for _, g := range trace.Groups() {
		total += res.DelayByGroup[g].Len()
	}
	if total != len(tr.Tasks) {
		t.Errorf("delay samples %d != tasks %d", total, len(tr.Tasks))
	}
}
