// Package sim is a discrete-event cluster simulator: machines with
// heterogeneous capacities and power curves execute a task trace under a
// pluggable provisioning policy. It measures everything the paper's
// evaluation reports — per-priority scheduling-delay CDFs, active-machine
// series, and total energy/cost — and is the substrate for Figures 3-4 and
// 19-26.
//
// The engine consumes its workload through trace.TaskSource, so a
// trace-scale run (the Google trace is 25M tasks over 29 days) streams
// through with peak memory proportional to live tasks plus machines, not
// trace length. The steady-state event path — arrival, placement,
// completion — is allocation-free and statically enforced by
// harmony-lint's hotpathalloc analyzer via the //harmony:hotpath roots
// below.
package sim

import (
	"errors"
	"fmt"
	"math"

	"harmony/internal/energy"
	"harmony/internal/stats"
	"harmony/internal/trace"
)

// Directive is a policy's decision for one control period.
type Directive struct {
	// TargetActive[m] is the desired number of powered machines per
	// machine type. Values are clamped to [0, available]; machines
	// currently running tasks are never powered off.
	TargetActive []int
	// Quota[m][n], when non-nil, caps the number of type-n tasks
	// concurrently running on type-m machines (the x^{mn}_t limits).
	Quota [][]int
	// ReserveCPU/ReserveMem, when non-nil, give per-task-type container
	// reservations: a task occupies max(task demand, reservation) on its
	// machine. This is how CBS's container-based scheduling is realized.
	ReserveCPU []float64
	ReserveMem []float64
	// BestFit selects best-fit placement within a machine type instead
	// of the default legacy first-fit. The HARMONY policies coordinate
	// with the scheduler and request it; the oblivious baseline keeps
	// the cluster's legacy first-fit.
	BestFit bool
}

// Observation is the state snapshot handed to a policy at each period.
type Observation struct {
	Time        float64
	PeriodIndex int
	// Arrivals[n] counts type-n tasks that arrived during the last period.
	Arrivals []int
	// Queued[n] counts type-n tasks currently waiting.
	Queued []int
	// Running[n] counts type-n tasks currently executing.
	Running []int
	// QueuedDemandCPU/Mem are the total resource demands of the queue.
	QueuedDemandCPU, QueuedDemandMem float64
	// RunningDemandCPU/Mem are the total demands of executing tasks.
	RunningDemandCPU, RunningDemandMem float64
	// Active[m] is the number of powered machines per machine type.
	Active []int
	// Price is the current electricity price ($/kWh).
	Price float64
}

// Policy decides machine counts (and optionally quotas) each period.
type Policy interface {
	Name() string
	Period(obs *Observation) Directive
}

// Config parameterizes a simulation run.
type Config struct {
	// Trace is the materialized workload. Exactly one of Trace and
	// Source must be set.
	Trace *trace.Trace
	// Source streams the workload in submit order without materializing
	// it; machines and horizon come from Source.Meta(). This is how
	// trace-scale runs keep peak memory independent of trace length.
	Source trace.TaskSource

	Models []energy.Model // one per machine type, same order as the machine population
	Price  energy.Price
	Policy Policy
	Period float64 // control-period length in seconds
	// NumTypes and TypeOf map tasks to dense task-type indices for
	// quota accounting and per-type arrival statistics.
	NumTypes int
	TypeOf   func(trace.Task) int
	// SwitchCost[m] is the dollar cost per on/off transition of a
	// type-m machine. Optional.
	SwitchCost []float64
	// InitialActive[m] optionally sets how many machines per type start
	// powered on. Nil starts with everything off.
	InitialActive []int
	// BootDelay is how long a powered-on machine takes before it can
	// accept tasks (seconds). It draws idle power while booting. 0 means
	// instant boot.
	BootDelay float64
	// MTBFHours, when positive, injects machine failures: each powered
	// machine fails independently with the matching per-period
	// probability. A failed machine kills its running tasks (they are
	// requeued and restart from scratch) and stays unavailable for
	// RepairSeconds.
	MTBFHours float64
	// RepairSeconds is how long a failed machine stays down (default 900).
	RepairSeconds float64
	// FailureSeed seeds the failure process (default 1).
	FailureSeed int64
	// Relabel, when non-nil, is called at each period boundary for every
	// running task with its current type and age (seconds since start);
	// the returned type replaces the current one. This realizes the
	// paper's short-first labeling: tasks that outlive their short
	// sub-class boundary are upgraded to the long sub-class, so quota
	// and demand accounting track reality.
	Relabel func(current int, age float64) int
	// FailBudgetPerQueue bounds how many placement failures are
	// tolerated per task-type queue in one scheduling pass before the
	// rest of that queue is skipped (0 = default 64). It models a
	// scheduler that skips currently-unschedulable tasks rather than
	// blocking on them.
	FailBudgetPerQueue int
	// MaxDelaySamples, when positive, bounds the per-priority-group
	// scheduling-delay sample retained for the delay CDFs using
	// deterministic reservoir sampling (seeded per group). 0 keeps every
	// sample — exact, but O(total tasks) memory, which a 25M-task run
	// cannot afford.
	MaxDelaySamples int
}

// Result aggregates everything measured during a run.
type Result struct {
	Policy string

	// DelayByGroup holds the scheduling-delay CDF per priority group
	// (Figure 4 and Figures 23-25). With Config.MaxDelaySamples set it
	// holds a uniform reservoir sample of the delays instead of every
	// sample.
	DelayByGroup map[trace.PriorityGroup]*stats.CDF
	// ActiveSeries is the total powered machines at each period start
	// (Figures 21-22).
	ActiveSeries stats.Series
	// ActiveByType[m] is the per-type powered count at each period.
	ActiveByType []stats.Series
	// UsedSeries is the number of machines running at least one task at
	// each period start (Figure 3's "used" curve).
	UsedSeries stats.Series
	// QueueSeries is the queue length at each period start.
	QueueSeries stats.Series

	EnergyKWh    float64
	EnergyCost   float64 // dollars (Eq. 7 integrated over the run)
	SwitchCost   float64 // dollars
	SwitchEvents int

	// Failures counts injected machine failures; TasksKilled counts the
	// task executions they aborted (the tasks requeue and restart).
	Failures    int
	TasksKilled int

	Scheduled   int // tasks that started execution
	Unscheduled int // tasks still queued when the horizon ended
	Completed   int
}

// MeanDelay returns the mean scheduling delay of a group, or 0.
func (r *Result) MeanDelay(g trace.PriorityGroup) float64 {
	c := r.DelayByGroup[g]
	if c == nil || c.Len() == 0 {
		return 0
	}
	// Mean over quantiles is exact for an empirical CDF sampled at its
	// own points; use the underlying points via Quantile at k/n.
	n := c.Len()
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += c.Quantile(float64(i) / float64(n))
	}
	return sum / float64(n)
}

type machine struct {
	id      int
	typeIdx int
	on      bool
	readyAt float64 // machine accepts tasks from this time (boot delay)
	downTil float64 // failed machine is unavailable until this time
	epoch   int     // incremented on failure to invalidate heap entries
	usedCPU float64
	usedMem float64
	tasks   int
}

type runningTask struct {
	finish   float64
	start    float64
	machine  int
	epoch    int // machine epoch at placement; stale entries are ignored
	taskType int
	group    trace.PriorityGroup
	task     trace.Task
	cpu, mem float64 // reserved amounts on the machine
}

// finishHeap is a typed binary min-heap on finish time. The sift
// routines mirror container/heap exactly (same comparison and swap
// order), so results are bit-identical to the boxed implementation it
// replaces — but push/pop stay monomorphic and allocation-free instead
// of boxing every runningTask through an interface.
type finishHeap []runningTask

//harmony:hotpath
func (h *finishHeap) push(rt runningTask) {
	*h = append(*h, rt)
	h.up(len(*h) - 1)
}

//harmony:hotpath
func (h *finishHeap) pop() runningTask {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	old.down(0, n)
	it := old[n]
	*h = old[:n]
	return it
}

func (h finishHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || h[i].finish <= h[j].finish {
			return
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h finishHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			return
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h[j2].finish < h[j1].finish {
			j = j2 // right child
		}
		if h[j].finish >= h[i].finish {
			return
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

type pendingTask struct {
	task     trace.Task
	taskType int
}

// machineShardSize fixes the shard width of per-type machine state:
// placement pruning bounds and the period-boundary audit both work in
// (machine type, shard) granules. Shard boundaries depend only on the
// machine population — never on GOMAXPROCS — so sharded results are
// bit-for-bit independent of worker count.
const machineShardSize = 512

// auditItem is one (machine type, shard) granule of the periodic
// accounting audit; lo/hi are machine-id bounds.
type auditItem struct {
	ti, shard int
	lo, hi    int
}

// engine is the mutable simulation state.
type engine struct {
	cfg Config

	src     trace.TaskSource
	types   []trace.MachineType
	horizon float64

	machines  []machine
	typeFirst []int // first machine id per type (ids are contiguous per type)
	typeCount []int
	active    []int // powered count per type

	// pending[group][taskType] is a FIFO queue; scheduling scans groups
	// in descending priority, then types, so a stuck type cannot block
	// the others.
	pending                [trace.NumGroups][][]pendingTask
	pendingCount           int
	running                finishHeap
	quota                  [][]int // current directive quotas (nil = unlimited)
	bestFit                bool
	occupancy              [][]int // running tasks per (machineType, taskType)
	reserveCPU, reserveMem []float64

	arrivals []int // per type, this period
	runningN []int // per type

	now        float64
	lastEnergy float64 // time up to which energy is integrated
	sumUsedCPU []float64
	sumUsedMem []float64
	usedCount  int // machines with at least one running task

	failRand *stats.RNG

	// freeCPUBound/freeMemBound[m][s] are upper bounds on the largest
	// free CPU/memory of any powered type-m machine in shard s, used to
	// prune placement scans shard by shard. They are tightened to exact
	// values whenever a shard is fully scanned, and wholesale by the
	// period-boundary audit.
	freeCPUBound [][]float64
	freeMemBound [][]float64

	auditItems []auditItem
	auditUsed  []int // per-item used-machine partials, reused across periods

	// delayRes, when non-nil per group, reservoir-samples scheduling
	// delays instead of retaining all of them.
	delayRes [trace.NumGroups]*stats.Reservoir

	res *Result
}

// Run executes the simulation and returns its measurements.
func Run(cfg Config) (*Result, error) {
	if err := validateConfig(&cfg); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	src := cfg.Source
	if src == nil {
		src = trace.NewSliceSource(cfg.Trace)
	}
	e := newEngine(cfg, src)
	if err := e.run(); err != nil {
		return nil, err
	}
	return e.res, nil
}

// applyDefaults normalizes every optional Config field in one place, so
// the defaults documented on the struct hold regardless of which path
// constructed the config.
func (cfg *Config) applyDefaults() {
	if cfg.FailBudgetPerQueue <= 0 {
		cfg.FailBudgetPerQueue = 64
	}
	if cfg.RepairSeconds <= 0 {
		cfg.RepairSeconds = 900
	}
	if cfg.FailureSeed == 0 {
		cfg.FailureSeed = 1
	}
}

func validateConfig(cfg *Config) error {
	var machines []trace.MachineType
	switch {
	case cfg.Trace != nil && cfg.Source != nil:
		return errors.New("sim: set exactly one of Trace and Source")
	case cfg.Trace != nil:
		machines = cfg.Trace.Machines
	case cfg.Source != nil:
		machines = cfg.Source.Meta().Machines
	}
	if len(machines) == 0 {
		return errors.New("sim: missing trace or machines")
	}
	if len(cfg.Models) != len(machines) {
		return fmt.Errorf("sim: %d energy models for %d machine types",
			len(cfg.Models), len(machines))
	}
	if cfg.Price == nil {
		return errors.New("sim: missing price")
	}
	if cfg.Policy == nil {
		return errors.New("sim: missing policy")
	}
	if cfg.Period <= 0 {
		return errors.New("sim: period must be positive")
	}
	if cfg.NumTypes <= 0 || cfg.TypeOf == nil {
		return errors.New("sim: task-type mapping required")
	}
	if cfg.SwitchCost != nil && len(cfg.SwitchCost) != len(machines) {
		return errors.New("sim: switch-cost length mismatch")
	}
	if cfg.InitialActive != nil && len(cfg.InitialActive) != len(machines) {
		return errors.New("sim: initial-active length mismatch")
	}
	return nil
}

func newEngine(cfg Config, src trace.TaskSource) *engine {
	meta := src.Meta()
	nm := len(meta.Machines)
	e := &engine{
		cfg:          cfg,
		src:          src,
		types:        meta.Machines,
		horizon:      meta.Horizon,
		active:       make([]int, nm),
		typeFirst:    make([]int, nm),
		typeCount:    make([]int, nm),
		arrivals:     make([]int, cfg.NumTypes),
		runningN:     make([]int, cfg.NumTypes),
		sumUsedCPU:   make([]float64, nm),
		sumUsedMem:   make([]float64, nm),
		occupancy:    make([][]int, nm),
		freeCPUBound: make([][]float64, nm),
		freeMemBound: make([][]float64, nm),
		res: &Result{
			Policy:       cfg.Policy.Name(),
			DelayByGroup: make(map[trace.PriorityGroup]*stats.CDF, trace.NumGroups),
			ActiveByType: make([]stats.Series, nm),
		},
	}
	for _, g := range trace.Groups() {
		e.res.DelayByGroup[g] = &stats.CDF{}
		if cfg.MaxDelaySamples > 0 {
			// Seeded per group so the retained sample is deterministic
			// and independent of the other groups' arrival interleaving.
			e.delayRes[g.Index()] = stats.NewReservoir(cfg.MaxDelaySamples, int64(g.Index()+1))
		}
	}
	for gi := range e.pending {
		e.pending[gi] = make([][]pendingTask, cfg.NumTypes)
	}
	if cfg.MTBFHours > 0 {
		e.failRand = stats.NewRNG(cfg.FailureSeed)
	}
	id := 0
	for ti, mt := range e.types {
		e.occupancy[ti] = make([]int, cfg.NumTypes)
		e.res.ActiveByType[ti].Name = fmt.Sprintf("active type %d", mt.ID)
		e.typeFirst[ti] = id
		e.typeCount[ti] = mt.Count
		shards := (mt.Count + machineShardSize - 1) / machineShardSize
		if shards < 1 {
			shards = 1
		}
		e.freeCPUBound[ti] = make([]float64, shards)
		e.freeMemBound[ti] = make([]float64, shards)
		for s := 0; s < shards; s++ {
			lo := id + s*machineShardSize
			hi := lo + machineShardSize
			if hi > id+mt.Count {
				hi = id + mt.Count
			}
			e.auditItems = append(e.auditItems, auditItem{ti: ti, shard: s, lo: lo, hi: hi})
		}
		for k := 0; k < mt.Count; k++ {
			e.machines = append(e.machines, machine{id: id, typeIdx: ti})
			id++
		}
	}
	e.auditUsed = make([]int, len(e.auditItems))
	if cfg.InitialActive != nil {
		for ti, want := range cfg.InitialActive {
			for mi := e.typeFirst[ti]; mi < e.typeFirst[ti]+e.typeCount[ti]; mi++ {
				if e.active[ti] >= want {
					break
				}
				e.machines[mi].on = true
				e.active[ti]++
				e.raiseBounds(mi)
			}
		}
	}
	e.res.ActiveSeries.Name = "active machines " + cfg.Policy.Name()
	e.res.UsedSeries.Name = "used machines " + cfg.Policy.Name()
	e.res.QueueSeries.Name = "queued tasks " + cfg.Policy.Name()
	return e
}

func (e *engine) run() error {
	nextPeriod := 0.0
	periodIdx := 0
	var (
		next    trace.Task
		have    bool
		prevSub = math.Inf(-1)
	)
	pull := func() error {
		ok, err := e.src.Next(&next)
		if err != nil {
			return fmt.Errorf("sim: task source: %w", err)
		}
		have = ok
		if ok {
			if next.Submit < prevSub {
				return fmt.Errorf("sim: task %d out of submit order (%g after %g)",
					next.ID, next.Submit, prevSub)
			}
			prevSub = next.Submit
		}
		return nil
	}
	if err := pull(); err != nil {
		return err
	}

	for {
		// Next event time: min(arrival, completion, period boundary).
		tArr, tFin := math.Inf(1), math.Inf(1)
		if have {
			tArr = next.Submit
		}
		if len(e.running) > 0 {
			tFin = e.running[0].finish
		}
		tEvt := math.Min(math.Min(tArr, tFin), nextPeriod)
		if tEvt > e.horizon {
			break
		}
		e.advanceTo(tEvt)

		switch {
		//harmony:allow floateq exact by construction: tEvt is the min of the compared values
		case tEvt == nextPeriod:
			e.periodBoundary(periodIdx)
			periodIdx++
			nextPeriod += e.cfg.Period
		//harmony:allow floateq exact by construction: tEvt is the min of the compared values
		case tEvt == tFin:
			e.completeOne()
			e.schedulePending()
		default:
			e.handleArrival(next)
			if err := pull(); err != nil {
				return err
			}
		}
	}
	e.advanceTo(e.horizon)
	e.finish(e.horizon)
	return nil
}

// handleArrival enqueues (or immediately places) one arriving task.
//
//harmony:hotpath
func (e *engine) handleArrival(t trace.Task) {
	tt := e.typeOf(t)
	e.arrivals[tt]++
	gi := t.Group().Index()
	p := pendingTask{task: t, taskType: tt}
	// Fast path: preserve FIFO per (group, type) but place an arriving
	// task immediately when nothing of its kind waits.
	if len(e.pending[gi][tt]) == 0 && e.place(p) {
		return
	}
	e.pending[gi][tt] = append(e.pending[gi][tt], p)
	e.pendingCount++
}

func (e *engine) typeOf(t trace.Task) int {
	tt := e.cfg.TypeOf(t)
	if tt < 0 || tt >= e.cfg.NumTypes {
		return 0
	}
	return tt
}

// advanceTo integrates energy from lastEnergy to t.
//
//harmony:hotpath
func (e *engine) advanceTo(t float64) {
	dt := t - e.lastEnergy
	if dt <= 0 {
		e.now = t
		return
	}
	price := e.cfg.Price.At(e.lastEnergy)
	watts := 0.0
	for ti, model := range e.cfg.Models {
		if e.active[ti] == 0 {
			continue
		}
		mt := e.types[ti]
		watts += float64(e.active[ti])*model.IdleWatts +
			model.AlphaCPU*e.sumUsedCPU[ti]/mt.CPU +
			model.AlphaMem*e.sumUsedMem[ti]/mt.Mem
	}
	e.res.EnergyKWh += watts * dt / 3.6e6
	e.res.EnergyCost += energy.Cost(watts, dt, price)
	e.lastEnergy = t
	e.now = t
}

// periodBoundary runs the control-period work: failure injection, exact
// accounting audit, relabeling, observation, and the policy decision.
// It is the budgeted residue outside the per-event hot path.
//
//harmony:coldpath period work is budgeted per control period, not per event
func (e *engine) periodBoundary(periodIdx int) {
	e.injectFailures()
	e.refreshAccounting()
	e.relabelRunning()
	obs := e.observe(periodIdx)
	e.res.ActiveSeries.Points = append(e.res.ActiveSeries.Points,
		stats.Point{X: e.now, Y: float64(totalInts(e.active))})
	for ti := range e.active {
		e.res.ActiveByType[ti].Points = append(e.res.ActiveByType[ti].Points,
			stats.Point{X: e.now, Y: float64(e.active[ti])})
	}
	e.res.QueueSeries.Points = append(e.res.QueueSeries.Points,
		stats.Point{X: e.now, Y: float64(totalInts(obs.Queued))})
	e.res.UsedSeries.Points = append(e.res.UsedSeries.Points,
		stats.Point{X: e.now, Y: float64(e.usedCount)})

	dir := e.cfg.Policy.Period(obs)
	e.apply(dir)
	for i := range e.arrivals {
		e.arrivals[i] = 0
	}
	e.schedulePending()
}

func (e *engine) observe(periodIdx int) *Observation {
	obs := &Observation{
		Time:        e.now,
		PeriodIndex: periodIdx,
		Arrivals:    append([]int(nil), e.arrivals...),
		Queued:      make([]int, e.cfg.NumTypes),
		Running:     append([]int(nil), e.runningN...),
		Active:      append([]int(nil), e.active...),
		Price:       e.cfg.Price.At(e.now),
	}
	for g := range e.pending {
		for tt := range e.pending[g] {
			for _, p := range e.pending[g][tt] {
				obs.Queued[p.taskType]++
				obs.QueuedDemandCPU += p.task.CPU
				obs.QueuedDemandMem += p.task.Mem
			}
		}
	}
	for ti := range e.sumUsedCPU {
		obs.RunningDemandCPU += e.sumUsedCPU[ti]
		obs.RunningDemandMem += e.sumUsedMem[ti]
	}
	return obs
}

func (e *engine) apply(dir Directive) {
	e.quota = dir.Quota
	e.reserveCPU = dir.ReserveCPU
	e.reserveMem = dir.ReserveMem
	e.bestFit = dir.BestFit
	if dir.TargetActive == nil {
		return
	}
	for ti := range e.typeCount {
		target := 0
		if ti < len(dir.TargetActive) {
			target = dir.TargetActive[ti]
		}
		if target < 0 {
			target = 0
		}
		if target > e.typeCount[ti] {
			target = e.typeCount[ti]
		}
		e.setActive(ti, target)
	}
}

// setActive powers machines of a type up or down toward target. Machines
// with running tasks are never powered off.
func (e *engine) setActive(ti, target int) {
	cost := 0.0
	if e.cfg.SwitchCost != nil {
		cost = e.cfg.SwitchCost[ti]
	}
	first, count := e.typeFirst[ti], e.typeCount[ti]
	if e.active[ti] < target {
		for mi := first; mi < first+count; mi++ {
			if e.active[ti] >= target {
				break
			}
			m := &e.machines[mi]
			if !m.on {
				m.on = true
				m.readyAt = e.now + e.cfg.BootDelay
				e.active[ti]++
				e.res.SwitchEvents++
				e.res.SwitchCost += cost
				e.raiseBounds(mi)
			}
		}
		return
	}
	if e.active[ti] > target {
		for mi := first; mi < first+count; mi++ {
			if e.active[ti] <= target {
				break
			}
			m := &e.machines[mi]
			if m.on && m.tasks == 0 {
				m.on = false
				e.active[ti]--
				e.res.SwitchEvents++
				e.res.SwitchCost += cost
			}
		}
	}
}

// schedulePending walks the queues in priority order (production first),
// then per task type, first-fitting tasks onto powered machines while
// honoring quotas and container reservations. Each type queue tolerates a
// bounded number of placement failures per pass so one unschedulable task
// cannot starve everything behind it.
//
//harmony:hotpath
func (e *engine) schedulePending() {
	if e.pendingCount == 0 {
		return
	}
	for gi := trace.NumGroups - 1; gi >= 0; gi-- {
		for tt := range e.pending[gi] {
			q := e.pending[gi][tt]
			if len(q) == 0 {
				continue
			}
			fails := 0
			kept := q[:0]
			for qi, p := range q {
				if fails >= e.cfg.FailBudgetPerQueue {
					kept = append(kept, q[qi:]...)
					break
				}
				if e.place(p) {
					e.pendingCount--
					continue
				}
				kept = append(kept, p)
				fails++
			}
			e.pending[gi][tt] = kept
		}
	}
}

// place tries to start p on some machine; reports success.
//
//harmony:hotpath
func (e *engine) place(p pendingTask) bool {
	cpu, mem := p.task.CPU, p.task.Mem
	if e.reserveCPU != nil && p.taskType < len(e.reserveCPU) {
		if r := e.reserveCPU[p.taskType]; r > cpu {
			cpu = r
		}
	}
	if e.reserveMem != nil && p.taskType < len(e.reserveMem) {
		if r := e.reserveMem[p.taskType]; r > mem {
			mem = r
		}
	}
	for ti := range e.types {
		if e.active[ti] == 0 {
			continue
		}
		mt := e.types[ti]
		if p.task.Constraint != "" && mt.Platform != p.task.Constraint {
			continue // placement constraint: wrong platform
		}
		if cpu > mt.CPU || mem > mt.Mem {
			continue
		}
		if e.quota != nil && ti < len(e.quota) && e.quota[ti] != nil {
			if p.taskType < len(e.quota[ti]) &&
				e.occupancy[ti][p.taskType] >= e.quota[ti][p.taskType] {
				continue
			}
		}
		if mi := e.placeInType(ti, mt, cpu, mem); mi >= 0 {
			e.start(p, mi, cpu, mem)
			return true
		}
	}
	return false
}

// placeInType scans the machines of one type shard by shard: legacy
// first-fit by default; best-fit (least leftover capacity) when the
// policy requests scheduler coordination — best-fit keeps large
// contiguous slots available, which matters because some containers
// occupy almost a whole machine.
//
// A shard whose free-capacity upper bounds already rule the task out is
// skipped without touching its machines — skipping cannot change the
// placement decision, because such a shard provably holds no feasible
// machine. Any shard that is fully scanned has its bounds tightened to
// the exact maxima seen, so repeated placement failures get cheaper.
//
//harmony:hotpath
func (e *engine) placeInType(ti int, mt trace.MachineType, cpu, mem float64) int {
	first := e.typeFirst[ti]
	last := first + e.typeCount[ti]
	cpuB := e.freeCPUBound[ti]
	memB := e.freeMemBound[ti]
	best := -1
	bestLeft := math.Inf(1)
	for s := range cpuB {
		if cpu > cpuB[s]+1e-12 || mem > memB[s]+1e-12 {
			continue // no powered machine in this shard can fit it
		}
		lo := first + s*machineShardSize
		hi := lo + machineShardSize
		if hi > last {
			hi = last
		}
		var maxFreeCPU, maxFreeMem float64
		hit := -1
		for mi := lo; mi < hi; mi++ {
			m := &e.machines[mi]
			if !m.on {
				continue
			}
			// Booting machines count toward the free-capacity bound
			// (they will be ready soon; the bound must stay an upper
			// bound) but cannot accept tasks yet.
			freeCPU := mt.CPU - m.usedCPU
			freeMem := mt.Mem - m.usedMem
			if freeCPU > maxFreeCPU {
				maxFreeCPU = freeCPU
			}
			if freeMem > maxFreeMem {
				maxFreeMem = freeMem
			}
			if e.now < m.readyAt || e.now < m.downTil {
				continue
			}
			if m.usedCPU+cpu > mt.CPU+1e-12 || m.usedMem+mem > mt.Mem+1e-12 {
				continue
			}
			if !e.bestFit {
				hit = mi
				break
			}
			left := (freeCPU-cpu)/mt.CPU + (freeMem-mem)/mt.Mem
			if left < bestLeft {
				bestLeft = left
				best = mi
			}
		}
		if !e.bestFit && hit >= 0 {
			// First fit found mid-shard: the shard was not fully
			// scanned, so its bounds stay as they were (still valid
			// upper bounds).
			return hit
		}
		// The scan saw every powered machine in the shard: the maxima
		// are exact, so the bounds tighten.
		cpuB[s] = maxFreeCPU
		memB[s] = maxFreeMem
	}
	return best
}

//harmony:hotpath
func (e *engine) start(p pendingTask, mi int, cpu, mem float64) {
	m := &e.machines[mi]
	m.usedCPU += cpu
	m.usedMem += mem
	if m.tasks == 0 {
		e.usedCount++
	}
	m.tasks++
	ti := m.typeIdx
	e.sumUsedCPU[ti] += cpu
	e.sumUsedMem[ti] += mem
	e.occupancy[ti][p.taskType]++
	e.runningN[p.taskType]++
	e.running.push(runningTask{
		finish:   e.now + p.task.Duration,
		start:    e.now,
		machine:  mi,
		epoch:    m.epoch,
		taskType: p.taskType,
		group:    p.task.Group(),
		task:     p.task,
		cpu:      cpu,
		mem:      mem,
	})
	delay := e.now - p.task.Submit
	if delay < 0 {
		delay = 0
	}
	e.recordDelay(p.task.Group(), delay)
	e.res.Scheduled++
}

// recordDelay routes one scheduling-delay sample either into the exact
// per-group CDF or, at scale, into the bounded reservoir.
//
//harmony:hotpath
func (e *engine) recordDelay(g trace.PriorityGroup, d float64) {
	if rv := e.delayRes[g.Index()]; rv != nil {
		rv.Add(d)
		return
	}
	e.res.DelayByGroup[g].Add(d)
}

//harmony:hotpath
func (e *engine) completeOne() {
	rt := e.running.pop()
	m := &e.machines[rt.machine]
	if rt.epoch != m.epoch {
		return // execution was aborted by a machine failure
	}
	m.usedCPU -= rt.cpu
	m.usedMem -= rt.mem
	if m.usedCPU < 0 {
		m.usedCPU = 0
	}
	if m.usedMem < 0 {
		m.usedMem = 0
	}
	m.tasks--
	if m.tasks == 0 {
		e.usedCount--
	}
	ti := m.typeIdx
	e.sumUsedCPU[ti] -= rt.cpu
	e.sumUsedMem[ti] -= rt.mem
	if e.sumUsedCPU[ti] < 0 {
		e.sumUsedCPU[ti] = 0
	}
	if e.sumUsedMem[ti] < 0 {
		e.sumUsedMem[ti] = 0
	}
	e.occupancy[ti][rt.taskType]--
	e.runningN[rt.taskType]--
	e.raiseBounds(rt.machine)
	e.res.Completed++
}

// injectFailures fails each powered machine with the per-period hazard
// implied by the configured MTBF. A failed machine aborts its executions
// (the tasks requeue and restart from scratch), powers off, and stays
// unavailable for the repair interval.
//
// The hazard draws are sequential — the RNG stream is part of the
// deterministic contract — but the expensive part, finding the aborted
// executions, is a single pass over the running set instead of a full
// rescan per failed machine (O(R+F) rather than O(R·F)).
func (e *engine) injectFailures() {
	if e.cfg.MTBFHours <= 0 || e.failRand == nil {
		return
	}
	pFail := e.cfg.Period / (e.cfg.MTBFHours * 3600)
	if pFail > 1 {
		pFail = 1
	}
	// Phase 1: draw the hazards and take the failed machines down,
	// recording the epoch their live executions carry.
	var failed []int // machine ids, ascending (requeue grouping order)
	liveEpoch := make(map[int]int)
	for mi := range e.machines {
		m := &e.machines[mi]
		if !m.on || e.failRand.Float64() >= pFail {
			continue
		}
		e.res.Failures++
		failed = append(failed, mi)
		liveEpoch[mi] = m.epoch
		m.epoch++
		m.on = false
		m.downTil = e.now + e.cfg.RepairSeconds
		ti := m.typeIdx
		e.active[ti]--
		e.sumUsedCPU[ti] -= m.usedCPU
		e.sumUsedMem[ti] -= m.usedMem
		m.usedCPU = 0
		m.usedMem = 0
		if m.tasks > 0 {
			e.usedCount--
		}
		m.tasks = 0
	}
	if len(failed) == 0 {
		return
	}
	// Phase 2: one pass over the running set collects the aborted
	// executions, grouped per failed machine to preserve the requeue
	// order of the per-machine scan. Only entries carrying the
	// machine's pre-failure epoch are live: stale entries left in the
	// heap by an earlier failure were requeued back then and must not
	// requeue twice.
	orderOf := make(map[int]int, len(failed))
	for i, mi := range failed {
		orderOf[mi] = i
	}
	aborted := make([][]*runningTask, len(failed))
	for i := range e.running {
		rt := &e.running[i]
		oi, ok := orderOf[rt.machine]
		if !ok || rt.epoch != liveEpoch[rt.machine] {
			continue
		}
		aborted[oi] = append(aborted[oi], rt)
	}
	for i, mi := range failed {
		ti := e.machines[mi].typeIdx
		for _, rt := range aborted[i] {
			e.res.TasksKilled++
			e.occupancy[ti][rt.taskType]--
			e.runningN[rt.taskType]--
			gi := rt.task.Group().Index()
			e.pending[gi][rt.taskType] = append(e.pending[gi][rt.taskType],
				pendingTask{task: rt.task, taskType: rt.taskType})
			e.pendingCount++
			// Scheduled/delay stats were already recorded at first
			// placement; the requeued execution will not re-record.
			e.res.Scheduled--
		}
	}
}

// relabelRunning applies the configured relabel hook to every running
// task, moving quota occupancy and per-type counts when a label changes.
func (e *engine) relabelRunning() {
	if e.cfg.Relabel == nil {
		return
	}
	for i := range e.running {
		rt := &e.running[i]
		if rt.epoch != e.machines[rt.machine].epoch {
			continue
		}
		nt := e.cfg.Relabel(rt.taskType, e.now-rt.start)
		if nt == rt.taskType || nt < 0 || nt >= e.cfg.NumTypes {
			continue
		}
		ti := e.machines[rt.machine].typeIdx
		e.occupancy[ti][rt.taskType]--
		e.occupancy[ti][nt]++
		e.runningN[rt.taskType]--
		e.runningN[nt]++
		rt.taskType = nt
	}
}

// raiseBounds loosens machine mi's shard free-capacity upper bounds
// after resources are freed or the machine powers on. Bounds only ever
// need to stay >= the true maxima, so raising them is always safe.
//
//harmony:hotpath
func (e *engine) raiseBounds(mi int) {
	m := &e.machines[mi]
	ti := m.typeIdx
	s := (mi - e.typeFirst[ti]) / machineShardSize
	mt := e.types[ti]
	if f := mt.CPU - m.usedCPU; f > e.freeCPUBound[ti][s] {
		e.freeCPUBound[ti][s] = f
	}
	if f := mt.Mem - m.usedMem; f > e.freeMemBound[ti][s] {
		e.freeMemBound[ti][s] = f
	}
}

func (e *engine) finish(horizon float64) {
	// Tasks still pending are censored at the horizon: they register
	// their waiting time so far, which underestimates their final delay
	// but keeps them visible in the CDFs.
	for gi := range e.pending {
		for tt := range e.pending[gi] {
			for _, p := range e.pending[gi][tt] {
				e.recordDelay(p.task.Group(), horizon-p.task.Submit)
				e.res.Unscheduled++
			}
		}
	}
	// In reservoir mode the CDFs are built once, from the retained
	// samples, at the very end.
	if e.cfg.MaxDelaySamples > 0 {
		for _, g := range trace.Groups() {
			e.res.DelayByGroup[g] = e.delayRes[g.Index()].CDF()
		}
	}
}

func totalInts(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
