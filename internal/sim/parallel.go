package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// refreshAccounting replaces the incrementally tracked used-machine
// count and the per-(type, shard) free-capacity pruning bounds with
// exact values from a full machine scan. The bounds only ever drift
// loose between refreshes, so tightening them here cannot change
// placement decisions — a pruned shard is one where every powered
// machine provably cannot fit the task — but it lets placeInType skip
// whole shards without scanning.
//
// The scan is a sharded parallel reduce over the auditItems built at
// engine construction: each (machine type, shard) granule is an
// independent work item that writes the exact free-capacity maxima into
// the bound slots it exclusively owns, plus a used-count partial into
// its own auditUsed slot. Nothing is merged across workers, and shard
// boundaries depend only on the machine population — never on
// GOMAXPROCS — so the result is bit-for-bit identical however many
// workers ran it. Under GOMAXPROCS=1 the granules simply run in order
// on the calling goroutine.
func (e *engine) refreshAccounting() {
	items := e.auditItems
	scan := func(k int) {
		it := &items[k]
		mt := e.types[it.ti]
		var maxCPU, maxMem float64
		used := 0
		for mi := it.lo; mi < it.hi; mi++ {
			m := &e.machines[mi]
			if m.tasks > 0 {
				used++
			}
			if !m.on {
				continue
			}
			// Booting machines count: the free-capacity bounds must
			// stay upper bounds over everything placeInType scans.
			if f := mt.CPU - m.usedCPU; f > maxCPU {
				maxCPU = f
			}
			if f := mt.Mem - m.usedMem; f > maxMem {
				maxMem = f
			}
		}
		e.freeCPUBound[it.ti][it.shard] = maxCPU
		e.freeMemBound[it.ti][it.shard] = maxMem
		e.auditUsed[k] = used
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for k := range items {
			scan(k)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					k := int(next.Add(1)) - 1
					if k >= len(items) {
						return
					}
					scan(k)
				}
			}()
		}
		wg.Wait()
	}

	used := 0
	for _, u := range e.auditUsed {
		used += u
	}
	e.usedCount = used
}
