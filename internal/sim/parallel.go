package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// machineShardSize fixes the shard width of the per-machine accounting
// reduce. Shard boundaries depend only on the machine count — never on
// GOMAXPROCS — and shard partials are combined in shard order, so the
// audit result is bit-for-bit identical however many workers ran it.
const machineShardSize = 2048

// machineAudit is the exact per-machine resource accounting computed at
// each period boundary: the used-machine count and, per machine type,
// the largest free CPU/memory of any powered machine.
type machineAudit struct {
	used    int
	freeCPU []float64
	freeMem []float64
}

// auditMachines scans the whole machine population with a sharded
// parallel reduce. Each shard reduction is itself order-independent
// (integer sums and maxima), so the merged result does not depend on
// worker count or scheduling; under GOMAXPROCS=1 the shards simply run
// in order on the calling goroutine.
func (e *engine) auditMachines() machineAudit {
	nm := len(e.machines)
	nt := len(e.byType)
	shards := (nm + machineShardSize - 1) / machineShardSize
	parts := make([]machineAudit, shards)
	scan := func(s int) {
		lo := s * machineShardSize
		hi := lo + machineShardSize
		if hi > nm {
			hi = nm
		}
		p := machineAudit{freeCPU: make([]float64, nt), freeMem: make([]float64, nt)}
		for mi := lo; mi < hi; mi++ {
			m := &e.machines[mi]
			if m.tasks > 0 {
				p.used++
			}
			if !m.on {
				continue
			}
			// Booting machines count: the free-capacity bounds must
			// stay upper bounds over everything place() scans.
			mt := e.cfg.Trace.Machines[m.typeIdx]
			if f := mt.CPU - m.usedCPU; f > p.freeCPU[m.typeIdx] {
				p.freeCPU[m.typeIdx] = f
			}
			if f := mt.Mem - m.usedMem; f > p.freeMem[m.typeIdx] {
				p.freeMem[m.typeIdx] = f
			}
		}
		parts[s] = p
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > shards {
		workers = shards
	}
	if workers <= 1 {
		for s := range parts {
			scan(s)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					s := int(next.Add(1)) - 1
					if s >= shards {
						return
					}
					scan(s)
				}
			}()
		}
		wg.Wait()
	}

	out := machineAudit{freeCPU: make([]float64, nt), freeMem: make([]float64, nt)}
	for _, p := range parts {
		out.used += p.used
		for ti := 0; ti < nt; ti++ {
			if p.freeCPU[ti] > out.freeCPU[ti] {
				out.freeCPU[ti] = p.freeCPU[ti]
			}
			if p.freeMem[ti] > out.freeMem[ti] {
				out.freeMem[ti] = p.freeMem[ti]
			}
		}
	}
	return out
}

// refreshAccounting replaces the incrementally tracked used-machine
// count and free-capacity pruning bounds with exact values from a full
// machine scan. The bounds only ever drift loose between refreshes, so
// tightening them here cannot change placement decisions — a pruned
// machine type is one where every powered machine provably cannot fit
// the task — but it lets place() skip whole types without scanning.
func (e *engine) refreshAccounting() {
	a := e.auditMachines()
	e.usedCount = a.used
	copy(e.freeCPUBound, a.freeCPU)
	copy(e.freeMemBound, a.freeMem)
}
