package sim

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"harmony/internal/energy"
	"harmony/internal/trace"
)

// bigEngine builds an engine over enough machines to span several audit
// shards, with a deterministic pseudo-random mix of powered, loaded, and
// failed machines.
func bigEngine(t *testing.T) *engine {
	t.Helper()
	tr := &trace.Trace{
		Machines: []trace.MachineType{
			{ID: 1, CPU: 0.5, Mem: 0.5, Count: 3000},
			{ID: 2, CPU: 1, Mem: 1, Count: 2500},
		},
		Horizon: 1000,
	}
	cfg := Config{
		Trace:    tr,
		Models:   simModels(),
		Price:    energy.FlatPrice(0.1),
		Policy:   &staticPolicy{name: "x", target: []int{0, 0}},
		Period:   100,
		NumTypes: 1,
		TypeOf:   func(trace.Task) int { return 0 },
	}
	if err := validateConfig(&cfg); err != nil {
		t.Fatal(err)
	}
	cfg.applyDefaults()
	e := newEngine(cfg, trace.NewSliceSource(tr))
	rng := rand.New(rand.NewSource(7))
	for mi := range e.machines {
		m := &e.machines[mi]
		switch rng.Intn(4) {
		case 0: // off
		case 1: // powered, idle
			m.on = true
		case 2: // powered, loaded
			m.on = true
			mt := tr.Machines[m.typeIdx]
			m.usedCPU = rng.Float64() * mt.CPU
			m.usedMem = rng.Float64() * mt.Mem
			m.tasks = 1 + rng.Intn(3)
		case 3: // booting
			m.on = true
			m.readyAt = 500
		}
	}
	return e
}

// flatBounds snapshots the per-(type, shard) bounds for comparison.
func flatBounds(e *engine) (cpu, mem [][]float64) {
	for ti := range e.freeCPUBound {
		cpu = append(cpu, append([]float64(nil), e.freeCPUBound[ti]...))
		mem = append(mem, append([]float64(nil), e.freeMemBound[ti]...))
	}
	return cpu, mem
}

// The sharded audit must agree with a plain sequential per-shard scan
// and be bit-for-bit identical no matter how many workers run it.
func TestAuditMachinesDeterministicAcrossWorkers(t *testing.T) {
	e := bigEngine(t)

	// Reference: straightforward sequential accounting per (type, shard).
	wantCPU := make([][]float64, len(e.types))
	wantMem := make([][]float64, len(e.types))
	for ti := range e.types {
		wantCPU[ti] = make([]float64, len(e.freeCPUBound[ti]))
		wantMem[ti] = make([]float64, len(e.freeMemBound[ti]))
	}
	wantUsed := 0
	for mi := range e.machines {
		m := &e.machines[mi]
		if m.tasks > 0 {
			wantUsed++
		}
		if !m.on {
			continue
		}
		ti := m.typeIdx
		s := (mi - e.typeFirst[ti]) / machineShardSize
		mt := e.types[ti]
		if f := mt.CPU - m.usedCPU; f > wantCPU[ti][s] {
			wantCPU[ti][s] = f
		}
		if f := mt.Mem - m.usedMem; f > wantMem[ti][s] {
			wantMem[ti][s] = f
		}
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	// Fixed worker counts (not NumCPU) so the multi-worker path runs
	// even on a single-core box.
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		e.refreshAccounting()
		gotCPU, gotMem := flatBounds(e)
		if !reflect.DeepEqual(gotCPU, wantCPU) || !reflect.DeepEqual(gotMem, wantMem) {
			t.Errorf("GOMAXPROCS=%d: audit bounds differ from sequential reference", procs)
		}
		if e.usedCount != wantUsed {
			t.Errorf("GOMAXPROCS=%d: used = %d, want %d", procs, e.usedCount, wantUsed)
		}
	}
}

func genFailureConfig(t *testing.T, seed int64) Config {
	t.Helper()
	cfgTr := trace.DefaultConfig(seed)
	cfgTr.Horizon = 2 * trace.Hour
	cfgTr.RatePerS = 0.5
	cfgTr.Machines = []trace.MachineType{
		{ID: 1, CPU: 0.5, Mem: 0.5, Count: 30},
		{ID: 2, CPU: 1, Mem: 1, Count: 10},
	}
	tr, err := trace.Generate(cfgTr)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Trace:         tr,
		Models:        simModels(),
		Price:         energy.FlatPrice(0.1),
		Policy:        &staticPolicy{name: "all", target: []int{30, 10}},
		Period:        300,
		NumTypes:      1,
		TypeOf:        func(trace.Task) int { return 0 },
		MTBFHours:     1,
		RepairSeconds: 200,
	}
}

// Identical seeds must produce bit-identical results whether the audit
// shards run on one worker or many (the tentpole determinism guarantee).
// GOMAXPROCS 1, 4, and 8 all reduce to the same answer.
func TestRunDeterministicAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(1)
	r1, err := Run(genFailureConfig(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{4, 8} {
		runtime.GOMAXPROCS(procs)
		rn, err := Run(genFailureConfig(t, 3))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1, rn) {
			t.Errorf("results differ between GOMAXPROCS=1 and GOMAXPROCS=%d", procs)
		}
	}
}

// Property test: across random seeds, a simulation fed by the streaming
// generator must be bit-identical to the same simulation over the
// materialized trace, at every worker count. This is the heart of the
// streaming contract — the engine cannot tell which mode fed it.
func TestRunStreamingMatchesMaterialized(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 4; trial++ {
		seed := rng.Int63()
		cfgTr := trace.DefaultConfig(seed)
		cfgTr.Horizon = 2 * trace.Hour
		cfgTr.RatePerS = 0.4 + rng.Float64()
		cfgTr.Machines = []trace.MachineType{
			{ID: 1, CPU: 0.5, Mem: 0.5, Count: 30},
			{ID: 2, CPU: 1, Mem: 1, Count: 10},
		}
		tr, err := trace.Generate(cfgTr)
		if err != nil {
			t.Fatal(err)
		}
		base := Config{
			Models:   simModels(),
			Price:    energy.FlatPrice(0.1),
			Policy:   &staticPolicy{name: "all", target: []int{30, 10}},
			Period:   300,
			NumTypes: 1,
			TypeOf:   func(trace.Task) int { return 0 },
		}

		mat := base
		mat.Trace = tr
		runtime.GOMAXPROCS(1)
		want, err := Run(mat)
		if err != nil {
			t.Fatal(err)
		}
		for _, procs := range []int{1, 4, 8} {
			runtime.GOMAXPROCS(procs)
			src, err := trace.NewGenSource(cfgTr, 1+rng.Intn(300))
			if err != nil {
				t.Fatal(err)
			}
			stream := base
			stream.Source = src
			got, err := Run(stream)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("trial %d (seed=%d, procs=%d): streamed result differs from materialized",
					trial, seed, procs)
			}
		}
	}
}

// Under aggressive failure injection (machines failing repeatedly while
// stale heap entries from earlier failures are still queued) the
// accounting invariants must hold: every task is scheduled or
// unscheduled exactly once, and each placement contributes exactly one
// delay sample. The pre-fix simulator double-requeued tasks whose
// machine failed twice, which breaks both.
func TestRunFailureAccountingInvariants(t *testing.T) {
	cfg := genFailureConfig(t, 11)
	cfg.MTBFHours = 0.25 // one failure per machine-hour of uptime, many repeats
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := len(cfg.Trace.Tasks)
	if res.Failures == 0 || res.TasksKilled == 0 {
		t.Fatalf("stress run injected no failures (failures=%d killed=%d)",
			res.Failures, res.TasksKilled)
	}
	if res.Scheduled+res.Unscheduled != n {
		t.Errorf("scheduled %d + unscheduled %d != tasks %d",
			res.Scheduled, res.Unscheduled, n)
	}
	if res.Completed > res.Scheduled {
		t.Errorf("completed %d > scheduled %d", res.Completed, res.Scheduled)
	}
	samples := 0
	for _, g := range trace.Groups() {
		samples += res.DelayByGroup[g].Len()
	}
	if want := n + res.TasksKilled; samples != want {
		t.Errorf("delay samples %d != tasks %d + killed %d",
			samples, n, res.TasksKilled)
	}
}

// The used-machine series must never go negative or exceed the powered
// count, even when failures take loaded machines down (the pre-fix
// simulator leaked usedCount on failure).
func TestRunUsedCountSaneUnderFailures(t *testing.T) {
	res, err := Run(genFailureConfig(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.UsedSeries.Points {
		if p.Y < 0 {
			t.Fatalf("used series dips negative at point %d: %v", i, p.Y)
		}
		if a := res.ActiveSeries.Points[i].Y; p.Y > a {
			t.Fatalf("used %v exceeds active %v at point %d", p.Y, a, i)
		}
	}
}
