package sim

import (
	"errors"
	"reflect"
	"testing"

	"harmony/internal/energy"
	"harmony/internal/trace"
)

// steadyEngine builds a small powered-up engine and warms every scratch
// structure: queues, the finish heap, delay reservoirs, and the CDF
// backing arrays, so the alloc measurement sees only steady-state work.
func steadyEngine(t *testing.T, maxDelaySamples int) *engine {
	t.Helper()
	tr := &trace.Trace{
		Machines: []trace.MachineType{
			{ID: 1, CPU: 0.5, Mem: 0.5, Count: 600},
			{ID: 2, CPU: 1, Mem: 1, Count: 600},
		},
		Horizon: 1e9,
	}
	cfg := Config{
		Trace:           tr,
		Models:          simModels(),
		Price:           energy.FlatPrice(0.1),
		Policy:          &staticPolicy{name: "x", target: []int{600, 600}},
		Period:          300,
		NumTypes:        1,
		TypeOf:          func(trace.Task) int { return 0 },
		InitialActive:   []int{600, 600},
		MaxDelaySamples: maxDelaySamples,
	}
	if err := validateConfig(&cfg); err != nil {
		t.Fatal(err)
	}
	cfg.applyDefaults()
	return newEngine(cfg, trace.NewSliceSource(tr))
}

// The steady-state event path — arrival, placement, heap push, energy
// integration, completion, heap pop — must not allocate. This is the
// dynamic half of the //harmony:hotpath contract the hotpathalloc
// analyzer enforces statically: at 25M tasks, even one small allocation
// per event is gigabytes of garbage.
func TestEventLoopSteadyStateAllocFree(t *testing.T) {
	e := steadyEngine(t, 256)
	task := trace.Task{ID: 1, Submit: 0, Duration: 10, CPU: 0.1, Mem: 0.1, Priority: 9}

	// Warm-up: fill the reservoirs past capacity and grow the heap and
	// queue backing arrays to their steady size.
	for i := 0; i < 1024; i++ {
		e.advanceTo(e.now + 1)
		task.Submit = e.now
		e.handleArrival(task)
		e.advanceTo(e.running[0].finish)
		e.completeOne()
		e.schedulePending()
	}

	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 16; i++ {
			e.advanceTo(e.now + 1)
			task.Submit = e.now
			e.handleArrival(task)
			e.advanceTo(e.running[0].finish)
			e.completeOne()
			e.schedulePending()
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state event loop allocates %.1f objects per run, want 0", allocs)
	}
}

// The typed finish heap must order identically to container/heap's
// sift rules: pops come out in finish order, ties broken by heap
// mechanics, and interleaved push/pop keeps the min at the root.
func TestFinishHeapOrdering(t *testing.T) {
	var h finishHeap
	finishes := []float64{9, 3, 7, 3, 1, 8, 2, 5, 4, 6, 0, 3}
	for i, f := range finishes {
		h.push(runningTask{finish: f, machine: i})
	}
	prev := -1.0
	for len(h) > 0 {
		if h[0].finish != h.minFinish() {
			t.Fatal("root is not the minimum")
		}
		rt := h.pop()
		if rt.finish < prev {
			t.Fatalf("pop order violated: %g after %g", rt.finish, prev)
		}
		prev = rt.finish
	}
}

func (h finishHeap) minFinish() float64 {
	min := h[0].finish
	for _, rt := range h {
		if rt.finish < min {
			min = rt.finish
		}
	}
	return min
}

// MaxDelaySamples bounds delay-CDF memory without changing any other
// measurement: energy, series, and counters must be bit-identical to the
// exact run, and the retained sample count must respect the cap.
func TestMaxDelaySamplesBoundsMemoryOnly(t *testing.T) {
	exactCfg := genFailureConfig(t, 17)
	exact, err := Run(exactCfg)
	if err != nil {
		t.Fatal(err)
	}
	capped := genFailureConfig(t, 17)
	capped.MaxDelaySamples = 64
	got, err := Run(capped)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range trace.Groups() {
		if n := got.DelayByGroup[g].Len(); n > 64 {
			t.Errorf("group %s retained %d delay samples, cap is 64", g, n)
		}
		if exactN := exact.DelayByGroup[g].Len(); exactN > 64 &&
			got.DelayByGroup[g].Len() != 64 {
			t.Errorf("group %s: reservoir holds %d of cap 64 despite %d samples seen",
				g, got.DelayByGroup[g].Len(), exactN)
		}
	}
	// Everything except the delay CDFs is untouched by sampling.
	exact.DelayByGroup, got.DelayByGroup = nil, nil
	if !reflect.DeepEqual(exact, got) {
		t.Error("MaxDelaySamples changed measurements beyond the delay CDFs")
	}
}

// A source error surfaces as a Run error rather than a silent truncation,
// and an out-of-order stream is rejected.
func TestRunSourceErrors(t *testing.T) {
	base := func() Config {
		return Config{
			Models:   simModels(),
			Price:    energy.FlatPrice(0.1),
			Policy:   &staticPolicy{name: "x", target: []int{5}},
			Period:   300,
			NumTypes: 1,
			TypeOf:   func(trace.Task) int { return 0 },
		}
	}

	t.Run("failing source", func(t *testing.T) {
		cfg := base()
		cfg.Source = failAfterSource{n: 3}
		if _, err := Run(cfg); err == nil {
			t.Fatal("source error swallowed")
		}
	})
	t.Run("out of order", func(t *testing.T) {
		cfg := base()
		cfg.Source = trace.NewSliceSource(&trace.Trace{
			Machines: []trace.MachineType{{ID: 1, CPU: 1, Mem: 1, Count: 5}},
			Horizon:  1000,
			Tasks: []trace.Task{
				{ID: 1, Submit: 500, Duration: 1, CPU: 0.1, Mem: 0.1},
				{ID: 2, Submit: 100, Duration: 1, CPU: 0.1, Mem: 0.1},
			},
		})
		if _, err := Run(cfg); err == nil {
			t.Fatal("out-of-order stream accepted")
		}
	})
	t.Run("both trace and source", func(t *testing.T) {
		tr := &trace.Trace{Machines: []trace.MachineType{{ID: 1, CPU: 1, Mem: 1, Count: 5}}, Horizon: 10}
		cfg := base()
		cfg.Trace = tr
		cfg.Source = trace.NewSliceSource(tr)
		if _, err := Run(cfg); err == nil {
			t.Fatal("ambiguous workload config accepted")
		}
	})
}

// failAfterSource emits n tasks, then fails.
type failAfterSource struct{ n int }

func (s failAfterSource) Meta() trace.Meta {
	return trace.Meta{
		Machines: []trace.MachineType{{ID: 1, CPU: 1, Mem: 1, Count: 5}},
		Horizon:  1000,
		Tasks:    trace.TasksUnknown,
	}
}

func (s failAfterSource) Next(t *trace.Task) (bool, error) {
	// Value receiver keeps no state; fail immediately to exercise the
	// error path deterministically.
	return false, errTestSource
}

var errTestSource = errors.New("sim test: source failure")
