package sim

import (
	"reflect"
	"testing"
)

// Every documented Config default is applied by the single
// normalization point, field by field.
func TestConfigApplyDefaults(t *testing.T) {
	tests := []struct {
		name string
		in   Config
		want func(Config) bool
	}{
		{"zero RepairSeconds -> 900", Config{},
			func(c Config) bool { return c.RepairSeconds == 900 }},
		{"negative RepairSeconds -> 900", Config{RepairSeconds: -5},
			func(c Config) bool { return c.RepairSeconds == 900 }},
		{"set RepairSeconds kept", Config{RepairSeconds: 60},
			func(c Config) bool { return c.RepairSeconds == 60 }},
		{"zero FailureSeed -> 1", Config{},
			func(c Config) bool { return c.FailureSeed == 1 }},
		{"set FailureSeed kept", Config{FailureSeed: 42},
			func(c Config) bool { return c.FailureSeed == 42 }},
		{"zero FailBudgetPerQueue -> 64", Config{},
			func(c Config) bool { return c.FailBudgetPerQueue == 64 }},
		{"negative FailBudgetPerQueue -> 64", Config{FailBudgetPerQueue: -1},
			func(c Config) bool { return c.FailBudgetPerQueue == 64 }},
		{"set FailBudgetPerQueue kept", Config{FailBudgetPerQueue: 7},
			func(c Config) bool { return c.FailBudgetPerQueue == 7 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := tt.in
			cfg.applyDefaults()
			if !tt.want(cfg) {
				t.Errorf("applyDefaults(%+v) = %+v", tt.in, cfg)
			}
		})
	}
}

// Behavior-level regression: a zero field and its documented default
// must produce bit-identical runs.
func TestConfigDefaultsEquivalentRuns(t *testing.T) {
	run := func(mutate func(*Config)) *Result {
		cfg := genFailureConfig(t, 9)
		mutate(&cfg)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(func(cfg *Config) {
		cfg.RepairSeconds = 0
		cfg.FailureSeed = 0
		cfg.FailBudgetPerQueue = 0
	})
	explicit := run(func(cfg *Config) {
		cfg.RepairSeconds = 900
		cfg.FailureSeed = 1
		cfg.FailBudgetPerQueue = 64
	})
	if !reflect.DeepEqual(base, explicit) {
		t.Error("zero-valued defaults and explicit defaults give different results")
	}
}
