package kmeans

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// threeBlobs returns well-separated gaussian blobs around the given centers.
func threeBlobs(r *rand.Rand, perBlob int, centers []Point, sigma float64) []Point {
	var pts []Point
	for _, c := range centers {
		for i := 0; i < perBlob; i++ {
			p := make(Point, len(c))
			for d := range c {
				p[d] = c[d] + sigma*r.NormFloat64()
			}
			pts = append(pts, p)
		}
	}
	return pts
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, Config{K: 1}); err == nil {
		t.Error("empty input accepted")
	}
	pts := []Point{{1}, {2}}
	if _, err := Run(pts, Config{K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Run(pts, Config{K: 3}); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := Run([]Point{{1}, {1, 2}}, Config{K: 1}); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestRunRecoversBlobs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	centers := []Point{{0, 0}, {10, 10}, {0, 10}}
	pts := threeBlobs(r, 100, centers, 0.5)
	res, err := Run(pts, Config{K: 3, Seed: 7, Restarts: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Each true center should have a recovered centroid within 1.0.
	for _, c := range centers {
		_, d := Nearest(res.Centroids, c)
		if d > 1.0 {
			t.Errorf("no centroid near %v (closest at distance %v)", c, d)
		}
	}
	sizes := res.ClusterSizes()
	for i, s := range sizes {
		if s < 80 || s > 120 {
			t.Errorf("cluster %d size = %d, want ~100", i, s)
		}
	}
}

func TestRunK1CentroidIsMean(t *testing.T) {
	pts := []Point{{0, 0}, {2, 4}, {4, 2}}
	res, err := Run(pts, Config{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Centroids[0][0]-2) > 1e-9 || math.Abs(res.Centroids[0][1]-2) > 1e-9 {
		t.Errorf("centroid = %v, want [2 2]", res.Centroids[0])
	}
}

func TestRunIdenticalPoints(t *testing.T) {
	pts := []Point{{1, 1}, {1, 1}, {1, 1}}
	res, err := Run(pts, Config{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.SSE != 0 {
		t.Errorf("SSE = %v, want 0", res.SSE)
	}
}

// Property: at convergence every point is assigned to its nearest centroid,
// and SSE matches a direct recomputation.
func TestRunAssignmentOptimality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(80)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{r.Float64() * 10, r.Float64() * 10}
		}
		k := 1 + r.Intn(4)
		res, err := Run(pts, Config{K: k, Seed: seed})
		if err != nil {
			return false
		}
		sse := 0.0
		for i, p := range pts {
			best, _ := Nearest(res.Centroids, p)
			bd := sqDist(p, res.Centroids[best])
			ad := sqDist(p, res.Centroids[res.Assignment[i]])
			if ad > bd+1e-9 {
				return false
			}
			sse += ad
		}
		return math.Abs(sse-res.SSE) < 1e-6*(1+sse)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: SSE is non-increasing in k (with enough restarts).
func TestSSEDecreasesWithK(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pts := threeBlobs(r, 60, []Point{{0, 0}, {5, 5}, {10, 0}}, 1.0)
	prev := math.Inf(1)
	for k := 1; k <= 5; k++ {
		res, err := Run(pts, Config{K: k, Seed: 11, Restarts: 8})
		if err != nil {
			t.Fatal(err)
		}
		if res.SSE > prev*1.001 {
			t.Errorf("SSE increased at k=%d: %v > %v", k, res.SSE, prev)
		}
		prev = res.SSE
	}
}

func TestNearest(t *testing.T) {
	cents := []Point{{0, 0}, {10, 0}}
	idx, d := Nearest(cents, Point{6, 0})
	if idx != 1 || math.Abs(d-4) > 1e-9 {
		t.Errorf("Nearest = %d, %v; want 1, 4", idx, d)
	}
	idx, d = Nearest(nil, Point{1})
	if idx != -1 || !math.IsInf(d, 1) {
		t.Errorf("Nearest(empty) = %d, %v", idx, d)
	}
}

func TestClusterStats(t *testing.T) {
	pts := []Point{{0, 0}, {2, 0}, {10, 10}, {12, 10}}
	res := &Result{
		Centroids:  []Point{{1, 0}, {11, 10}},
		Assignment: []int{0, 0, 1, 1},
	}
	means, stds := res.ClusterStats(pts)
	if math.Abs(means[0][0]-1) > 1e-9 || math.Abs(means[1][0]-11) > 1e-9 {
		t.Errorf("means = %v", means)
	}
	if math.Abs(stds[0][0]-1) > 1e-9 {
		t.Errorf("stddev = %v, want 1", stds[0][0])
	}
	if stds[0][1] != 0 {
		t.Errorf("stddev dim1 = %v, want 0", stds[0][1])
	}
}

func TestClusterStatsEmpty(t *testing.T) {
	res := &Result{}
	m, s := res.ClusterStats(nil)
	if m != nil || s != nil {
		t.Error("expected nil stats for empty result")
	}
}

func TestChooseK(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	pts := threeBlobs(r, 80, []Point{{0, 0}, {20, 0}, {0, 20}}, 0.5)
	k, res, err := ChooseK(pts, 8, 0.3, Config{Seed: 13, Restarts: 6})
	if err != nil {
		t.Fatal(err)
	}
	if k != 3 {
		t.Errorf("ChooseK = %d, want 3", k)
	}
	if len(res.Centroids) != k {
		t.Errorf("result has %d centroids, want %d", len(res.Centroids), k)
	}
	if _, _, err := ChooseK(pts, 0, 0.1, Config{}); err == nil {
		t.Error("maxK=0 accepted")
	}
}

func TestChooseKCapsAtN(t *testing.T) {
	pts := []Point{{0}, {1}, {100}}
	k, _, err := ChooseK(pts, 10, 0.01, Config{Seed: 1, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if k > 3 {
		t.Errorf("k = %d exceeds n", k)
	}
}

func TestSilhouetteWellSeparated(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	pts := threeBlobs(r, 40, []Point{{0, 0}, {50, 50}}, 0.5)
	res, err := Run(pts, Config{K: 2, Seed: 3, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Silhouette(pts); s < 0.9 {
		t.Errorf("silhouette = %v, want > 0.9 for well-separated blobs", s)
	}
}

func TestSilhouetteOverlapping(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	pts := threeBlobs(r, 40, []Point{{0, 0}, {0.5, 0.5}}, 2.0)
	res, err := Run(pts, Config{K: 2, Seed: 3, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Silhouette(pts); s > 0.5 {
		t.Errorf("silhouette = %v, want low for overlapping blobs", s)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	// Single cluster: silhouette is 0 by definition.
	pts := []Point{{0}, {1}, {2}}
	res, err := Run(pts, Config{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Silhouette(pts); s != 0 {
		t.Errorf("single-cluster silhouette = %v, want 0", s)
	}
	// Empty input.
	var empty Result
	if s := empty.Silhouette(nil); s != 0 {
		t.Errorf("empty silhouette = %v", s)
	}
}
