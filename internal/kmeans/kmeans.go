// Package kmeans implements the K-means clustering algorithm with
// k-means++ seeding, Lloyd iterations, and the cluster-count selection
// heuristics used by HARMONY's task characterization (Section V of the
// paper): the workload is divided into task classes whose centroids later
// drive container sizing and runtime classification.
package kmeans

import (
	"errors"
	"fmt"
	"math"

	"harmony/internal/stats"
)

// Point is a feature vector.
type Point []float64

// Result holds the outcome of one clustering run.
type Result struct {
	Centroids  []Point // k centroids
	Assignment []int   // cluster index per input point
	SSE        float64 // sum of squared distances to assigned centroids
	Iterations int     // Lloyd iterations executed
}

// Config controls a clustering run.
type Config struct {
	K        int
	MaxIter  int   // Lloyd iteration cap (default 100)
	Seed     int64 // RNG seed for k-means++ initialization
	Restarts int   // independent restarts; best SSE wins (default 1)
}

var (
	// ErrNoPoints is returned when the input is empty.
	ErrNoPoints = errors.New("kmeans: no points")
	// ErrBadK is returned when K is out of range.
	ErrBadK = errors.New("kmeans: k must be in [1, len(points)]")
	// ErrDimMismatch is returned when points have differing dimensions.
	ErrDimMismatch = errors.New("kmeans: inconsistent point dimensions")
)

// Run clusters points into cfg.K clusters and returns the best result over
// cfg.Restarts independent k-means++ initializations.
func Run(points []Point, cfg Config) (*Result, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	if cfg.K < 1 || cfg.K > len(points) {
		return nil, fmt.Errorf("%w: k=%d, n=%d", ErrBadK, cfg.K, len(points))
	}
	dim := len(points[0])
	for _, p := range points {
		if len(p) != dim {
			return nil, ErrDimMismatch
		}
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 100
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 1
	}

	r := stats.NewRNG(cfg.Seed)
	var best *Result
	for attempt := 0; attempt < cfg.Restarts; attempt++ {
		res := lloyd(points, seedPlusPlus(points, cfg.K, r), cfg.MaxIter)
		if best == nil || res.SSE < best.SSE {
			best = res
		}
	}
	return best, nil
}

// seedPlusPlus picks k initial centroids with the k-means++ strategy:
// each next centroid is drawn with probability proportional to its squared
// distance from the nearest already-chosen centroid.
func seedPlusPlus(points []Point, k int, r *stats.RNG) []Point {
	centroids := make([]Point, 0, k)
	first := points[r.Intn(len(points))]
	centroids = append(centroids, clonePoint(first))

	d2 := make([]float64, len(points))
	for i, p := range points {
		d2[i] = sqDist(p, centroids[0])
	}
	for len(centroids) < k {
		total := 0.0
		for _, d := range d2 {
			total += d
		}
		var next Point
		if total == 0 {
			// All points coincide with existing centroids; pick any.
			next = points[r.Intn(len(points))]
		} else {
			u := r.Float64() * total
			acc := 0.0
			idx := len(points) - 1
			for i, d := range d2 {
				acc += d
				if u < acc {
					idx = i
					break
				}
			}
			next = points[idx]
		}
		centroids = append(centroids, clonePoint(next))
		for i, p := range points {
			if d := sqDist(p, next); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

// lloyd runs standard Lloyd iterations to convergence or maxIter.
func lloyd(points []Point, centroids []Point, maxIter int) *Result {
	k := len(centroids)
	dim := len(points[0])
	assign := make([]int, len(points))
	for i := range assign {
		assign[i] = -1
	}

	iter := 0
	for ; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			bestC, bestD := 0, math.Inf(1)
			for c, cen := range centroids {
				if d := sqDist(p, cen); d < bestD {
					bestC, bestD = c, d
				}
			}
			if assign[i] != bestC {
				assign[i] = bestC
				changed = true
			}
		}
		if !changed {
			break
		}
		// Recompute centroids; empty clusters keep their position.
		sums := make([][]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d := 0; d < dim; d++ {
				sums[c][d] += p[d]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue
			}
			for d := 0; d < dim; d++ {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
	}

	sse := 0.0
	for i, p := range points {
		sse += sqDist(p, centroids[assign[i]])
	}
	return &Result{
		Centroids:  centroids,
		Assignment: assign,
		SSE:        sse,
		Iterations: iter,
	}
}

// Nearest returns the index of the centroid closest (Euclidean) to p and
// the distance to it. It returns (-1, +Inf) when centroids is empty.
func Nearest(centroids []Point, p Point) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for c, cen := range centroids {
		if d := sqDist(p, cen); d < bestD {
			best, bestD = c, d
		}
	}
	if best < 0 {
		return -1, math.Inf(1)
	}
	return best, math.Sqrt(bestD)
}

// ClusterSizes returns the number of points assigned to each cluster.
func (r *Result) ClusterSizes() []int {
	sizes := make([]int, len(r.Centroids))
	for _, c := range r.Assignment {
		sizes[c]++
	}
	return sizes
}

// ClusterStats returns, for each cluster and feature dimension, the mean
// and standard deviation of the member points. These are the mean±stddev
// bars of Figures 13, 15 and 17, and feed container sizing (Eq. 3).
func (r *Result) ClusterStats(points []Point) (means, stddevs []Point) {
	k := len(r.Centroids)
	if k == 0 || len(points) == 0 {
		return nil, nil
	}
	dim := len(points[0])
	sums := make([][]float64, k)
	sqs := make([][]float64, k)
	counts := make([]int, k)
	for c := 0; c < k; c++ {
		sums[c] = make([]float64, dim)
		sqs[c] = make([]float64, dim)
	}
	for i, p := range points {
		c := r.Assignment[i]
		counts[c]++
		for d := 0; d < dim; d++ {
			sums[c][d] += p[d]
			sqs[c][d] += p[d] * p[d]
		}
	}
	means = make([]Point, k)
	stddevs = make([]Point, k)
	for c := 0; c < k; c++ {
		means[c] = make(Point, dim)
		stddevs[c] = make(Point, dim)
		if counts[c] == 0 {
			continue
		}
		n := float64(counts[c])
		for d := 0; d < dim; d++ {
			m := sums[c][d] / n
			means[c][d] = m
			v := sqs[c][d]/n - m*m
			if v < 0 {
				v = 0
			}
			stddevs[c][d] = math.Sqrt(v)
		}
	}
	return means, stddevs
}

// ChooseK runs Run for k = 1..maxK and returns the smallest k past the
// "elbow": the first k whose relative SSE improvement over k-1 drops below
// minGain (e.g. 0.1 for 10%). This mirrors the paper's "no significant
// benefit from increasing k" selection rule.
func ChooseK(points []Point, maxK int, minGain float64, cfg Config) (int, *Result, error) {
	if maxK < 1 {
		return 0, nil, ErrBadK
	}
	if maxK > len(points) {
		maxK = len(points)
	}
	var (
		prevSSE float64
		prevRes *Result
	)
	for k := 1; k <= maxK; k++ {
		c := cfg
		c.K = k
		res, err := Run(points, c)
		if err != nil {
			return 0, nil, err
		}
		if k > 1 {
			gain := 0.0
			if prevSSE > 0 {
				gain = (prevSSE - res.SSE) / prevSSE
			}
			if gain < minGain {
				return k - 1, prevRes, nil
			}
		}
		prevSSE, prevRes = res.SSE, res
	}
	return maxK, prevRes, nil
}

// Silhouette returns the mean silhouette coefficient of the clustering,
// a quality measure in [-1, 1]: near 1 means points sit well inside their
// clusters, near 0 means clusters touch, negative means misassignment.
// Clusters with a single member contribute 0 (the standard convention).
// It is O(n²) and intended for characterization-quality reporting, not
// hot paths.
func (r *Result) Silhouette(points []Point) float64 {
	n := len(points)
	if n == 0 || len(r.Centroids) < 2 {
		return 0
	}
	sizes := r.ClusterSizes()
	total := 0.0
	for i, p := range points {
		own := r.Assignment[i]
		if sizes[own] <= 1 {
			continue // silhouette of a singleton is 0
		}
		// a = mean distance to own cluster (excluding self);
		// b = smallest mean distance to another cluster.
		sums := make([]float64, len(r.Centroids))
		for j, q := range points {
			if i == j {
				continue
			}
			sums[r.Assignment[j]] += math.Sqrt(sqDist(p, q))
		}
		a := sums[own] / float64(sizes[own]-1)
		b := math.Inf(1)
		for c := range sums {
			if c == own || sizes[c] == 0 {
				continue
			}
			if m := sums[c] / float64(sizes[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
		}
	}
	return total / float64(n)
}

func sqDist(a, b Point) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func clonePoint(p Point) Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}
