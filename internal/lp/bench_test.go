package lp

import (
	"math/rand"
	"testing"
)

// benchLP returns a feasible mid-size instance (25 vars, 35 rows) — big
// enough that the eta-refactor machinery engages. Note randomLP emits
// ~60% column fill: on such dense matrices the dense tableau is
// competitive, and the sparse solver's win shows up on the actual
// CBS-RELAX structure (a few nonzeros per column) — see the
// SolveRelaxed{Cold,Warm,Dense} benchmarks in internal/core.
func benchLP(b *testing.B) *Problem {
	r := rand.New(rand.NewSource(131))
	for {
		p := randomLP(r, 25, 35)
		if _, err := SolveDense(p); err == nil {
			return p
		}
	}
}

// BenchmarkSolveSparse is the production sparse revised simplex, cold.
func BenchmarkSolveSparse(b *testing.B) {
	p := benchLP(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveDense is the dense-tableau reference on the same instance.
func BenchmarkSolveDense(b *testing.B) {
	p := benchLP(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveDense(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveWarmRepeat re-solves the identical problem from its own
// optimal basis — the zero-pivot floor of the warm-start path.
func BenchmarkSolveWarmRepeat(b *testing.B) {
	p := benchLP(b)
	_, basis, err := SolveWarm(p, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SolveWarm(p, basis); err != nil {
			b.Fatal(err)
		}
	}
}
