package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

func TestValidation(t *testing.T) {
	if _, err := Solve(&Problem{NumVars: 0}); !errors.Is(err, ErrBadProblem) {
		t.Errorf("zero vars: %v", err)
	}
	if _, err := Solve(&Problem{NumVars: 2, Objective: []float64{1}}); !errors.Is(err, ErrBadProblem) {
		t.Errorf("short objective: %v", err)
	}
	p := &Problem{NumVars: 1, Objective: []float64{1}}
	p.Constraints = append(p.Constraints, Constraint{Coeffs: []float64{1, 2}, Sense: LE, RHS: 1})
	if _, err := Solve(p); !errors.Is(err, ErrBadProblem) {
		t.Errorf("bad row width: %v", err)
	}
	p2 := &Problem{NumVars: 1, Objective: []float64{1}}
	p2.Constraints = append(p2.Constraints, Constraint{Coeffs: []float64{1}, Sense: 0, RHS: 1})
	if _, err := Solve(p2); !errors.Is(err, ErrBadProblem) {
		t.Errorf("bad sense: %v", err)
	}
}

func TestTextbookLP(t *testing.T) {
	// max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18 -> x=2, y=6, obj=36.
	p := &Problem{NumVars: 2, Objective: []float64{3, 5}}
	p.AddConstraint([]float64{1, 0}, LE, 4)
	p.AddConstraint([]float64{0, 2}, LE, 12)
	p.AddConstraint([]float64{3, 2}, LE, 18)
	s := solveOK(t, p)
	if math.Abs(s.Objective-36) > 1e-6 {
		t.Errorf("objective = %v, want 36", s.Objective)
	}
	if math.Abs(s.X[0]-2) > 1e-6 || math.Abs(s.X[1]-6) > 1e-6 {
		t.Errorf("x = %v, want [2 6]", s.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// max x + y s.t. x + y = 5, x <= 3 -> obj 5.
	p := &Problem{NumVars: 2, Objective: []float64{1, 1}}
	p.AddConstraint([]float64{1, 1}, EQ, 5)
	p.AddConstraint([]float64{1, 0}, LE, 3)
	s := solveOK(t, p)
	if math.Abs(s.Objective-5) > 1e-6 {
		t.Errorf("objective = %v, want 5", s.Objective)
	}
	if math.Abs(s.X[0]+s.X[1]-5) > 1e-6 {
		t.Errorf("equality violated: %v", s.X)
	}
}

func TestGEConstraint(t *testing.T) {
	// min cost: max -(2x + 3y) s.t. x + y >= 4, x <= 3 -> x=3, y=1, cost 9.
	p := &Problem{NumVars: 2, Objective: []float64{-2, -3}}
	p.AddConstraint([]float64{1, 1}, GE, 4)
	p.AddConstraint([]float64{1, 0}, LE, 3)
	s := solveOK(t, p)
	if math.Abs(s.Objective+9) > 1e-6 {
		t.Errorf("objective = %v, want -9", s.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{NumVars: 1, Objective: []float64{1}}
	p.AddConstraint([]float64{1}, LE, 1)
	p.AddConstraint([]float64{1}, GE, 2)
	if _, err := Solve(p); !errors.Is(err, ErrInfeasible) {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{NumVars: 2, Objective: []float64{1, 0}}
	p.AddConstraint([]float64{0, 1}, LE, 1)
	if _, err := Solve(p); !errors.Is(err, ErrUnbounded) {
		t.Errorf("want ErrUnbounded, got %v", err)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x >= 1 expressed as -x <= -1; max -x -> x=1.
	p := &Problem{NumVars: 1, Objective: []float64{-1}}
	p.AddConstraint([]float64{-1}, LE, -1)
	s := solveOK(t, p)
	if math.Abs(s.X[0]-1) > 1e-6 {
		t.Errorf("x = %v, want 1", s.X[0])
	}
}

func TestDegenerateNoCycle(t *testing.T) {
	// A classic degenerate instance (Beale); Bland's rule must terminate.
	p := &Problem{NumVars: 4, Objective: []float64{0.75, -150, 0.02, -6}}
	p.AddConstraint([]float64{0.25, -60, -0.04, 9}, LE, 0)
	p.AddConstraint([]float64{0.5, -90, -0.02, 3}, LE, 0)
	p.AddConstraint([]float64{0, 0, 1, 0}, LE, 1)
	s := solveOK(t, p)
	if math.Abs(s.Objective-0.05) > 1e-6 {
		t.Errorf("objective = %v, want 0.05", s.Objective)
	}
}

func TestZeroRHSFeasible(t *testing.T) {
	p := &Problem{NumVars: 2, Objective: []float64{1, 1}}
	p.AddConstraint([]float64{1, 1}, LE, 0)
	s := solveOK(t, p)
	if s.Objective != 0 {
		t.Errorf("objective = %v, want 0", s.Objective)
	}
}

// bruteForce2D enumerates all vertices of a 2-variable LE-only LP with
// x,y >= 0 and returns the best objective, or -Inf if infeasible... the
// feasible region always contains candidate vertices from pairwise
// intersections and the axes.
func bruteForce2D(obj []float64, cons []Constraint) float64 {
	var candidates [][2]float64
	candidates = append(candidates, [2]float64{0, 0})
	lines := make([][3]float64, 0, len(cons)+2) // ax + by = c
	for _, c := range cons {
		lines = append(lines, [3]float64{c.Coeffs[0], c.Coeffs[1], c.RHS})
	}
	lines = append(lines, [3]float64{1, 0, 0}, [3]float64{0, 1, 0})
	for i := 0; i < len(lines); i++ {
		for j := i + 1; j < len(lines); j++ {
			a1, b1, c1 := lines[i][0], lines[i][1], lines[i][2]
			a2, b2, c2 := lines[j][0], lines[j][1], lines[j][2]
			det := a1*b2 - a2*b1
			if math.Abs(det) < 1e-12 {
				continue
			}
			x := (c1*b2 - c2*b1) / det
			y := (a1*c2 - a2*c1) / det
			candidates = append(candidates, [2]float64{x, y})
		}
	}
	best := math.Inf(-1)
	for _, cand := range candidates {
		x, y := cand[0], cand[1]
		if x < -1e-9 || y < -1e-9 {
			continue
		}
		ok := true
		for _, c := range cons {
			if c.Coeffs[0]*x+c.Coeffs[1]*y > c.RHS+1e-9 {
				ok = false
				break
			}
		}
		if ok {
			v := obj[0]*x + obj[1]*y
			if v > best {
				best = v
			}
		}
	}
	return best
}

// Property: on random bounded 2-variable LPs the simplex optimum matches
// brute-force vertex enumeration, and the solution is feasible.
func TestRandom2DMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		obj := []float64{r.Float64()*4 - 1, r.Float64()*4 - 1}
		ncons := 2 + r.Intn(4)
		p := &Problem{NumVars: 2, Objective: obj}
		cons := make([]Constraint, 0, ncons+1)
		for i := 0; i < ncons; i++ {
			row := []float64{r.Float64() * 2, r.Float64() * 2}
			rhs := r.Float64()*10 + 0.5
			p.AddConstraint(row, LE, rhs)
			cons = append(cons, Constraint{Coeffs: row, Sense: LE, RHS: rhs})
		}
		// Bounding box keeps every instance bounded.
		p.AddConstraint([]float64{1, 1}, LE, 50)
		cons = append(cons, Constraint{Coeffs: []float64{1, 1}, Sense: LE, RHS: 50})

		s, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := bruteForce2D(obj, cons)
		if math.Abs(s.Objective-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("trial %d: simplex %v != brute force %v", trial, s.Objective, want)
		}
		for _, c := range cons {
			if c.Coeffs[0]*s.X[0]+c.Coeffs[1]*s.X[1] > c.RHS+1e-6 {
				t.Fatalf("trial %d: infeasible solution %v", trial, s.X)
			}
		}
		if s.X[0] < -1e-9 || s.X[1] < -1e-9 {
			t.Fatalf("trial %d: negative solution %v", trial, s.X)
		}
	}
}

// Random LPs with mixed senses: verify returned points satisfy all rows.
func TestRandomMixedFeasibility(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for trial := 0; trial < 100; trial++ {
		nv := 2 + r.Intn(4)
		obj := make([]float64, nv)
		for i := range obj {
			obj[i] = r.Float64()*2 - 1
		}
		p := &Problem{NumVars: nv, Objective: obj}
		var rows []Constraint
		// Always bound the region.
		box := make([]float64, nv)
		for i := range box {
			box[i] = 1
		}
		p.AddConstraint(box, LE, 20)
		rows = append(rows, Constraint{Coeffs: box, Sense: LE, RHS: 20})
		for i := 0; i < 2+r.Intn(3); i++ {
			row := make([]float64, nv)
			for j := range row {
				row[j] = r.Float64()
			}
			sense := LE
			rhs := r.Float64() * 15
			if r.Intn(3) == 0 {
				sense = GE
				rhs = r.Float64() * 2 // keep feasible odds high
			}
			p.AddConstraint(row, sense, rhs)
			rows = append(rows, Constraint{Coeffs: row, Sense: sense, RHS: rhs})
		}
		s, err := Solve(p)
		if errors.Is(err, ErrInfeasible) {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for ri, c := range rows {
			lhs := 0.0
			for j, v := range c.Coeffs {
				lhs += v * s.X[j]
			}
			switch c.Sense {
			case LE:
				if lhs > c.RHS+1e-6 {
					t.Fatalf("trial %d row %d: LE violated (%v > %v)", trial, ri, lhs, c.RHS)
				}
			case GE:
				if lhs < c.RHS-1e-6 {
					t.Fatalf("trial %d row %d: GE violated (%v < %v)", trial, ri, lhs, c.RHS)
				}
			}
		}
	}
}
