package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randomLP builds a random feasible-or-not LP with mixed senses. Small
// coefficients and RHS keep the instances numerically tame.
func randomLP(r *rand.Rand, nVars, nRows int) *Problem {
	p := &Problem{NumVars: nVars, Objective: make([]float64, nVars)}
	for j := range p.Objective {
		p.Objective[j] = math.Round((r.Float64()*4-1)*8) / 4
	}
	for i := 0; i < nRows; i++ {
		coeffs := make([]float64, nVars)
		for j := range coeffs {
			if r.Float64() < 0.6 {
				coeffs[j] = math.Round((r.Float64()*4-2)*8) / 4
			}
		}
		sense := LE
		switch r.Intn(6) {
		case 0:
			sense = GE
		case 1:
			sense = EQ
		}
		rhs := math.Round((r.Float64()*20 - 2) * 4 / 4)
		p.AddConstraint(coeffs, sense, rhs)
	}
	return p
}

// assertFeasible checks x against every row of p within tolerance.
func assertFeasible(t *testing.T, p *Problem, x []float64) {
	t.Helper()
	const tol = 1e-6
	for j, v := range x {
		if v < -tol {
			t.Fatalf("x[%d] = %g < 0", j, v)
		}
	}
	for i, c := range p.Constraints {
		lhs := 0.0
		for j, a := range c.Coeffs {
			lhs += a * x[j]
		}
		switch c.Sense {
		case LE:
			if lhs > c.RHS+tol {
				t.Fatalf("row %d: %g > %g (LE)", i, lhs, c.RHS)
			}
		case GE:
			if lhs < c.RHS-tol {
				t.Fatalf("row %d: %g < %g (GE)", i, lhs, c.RHS)
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > tol {
				t.Fatalf("row %d: %g != %g (EQ)", i, lhs, c.RHS)
			}
		}
	}
}

// TestSparseMatchesDenseRandom differential-tests the sparse revised
// simplex against the dense tableau reference on random mixed-sense LPs:
// identical feasibility verdicts, matching objectives, feasible points.
func TestSparseMatchesDenseRandom(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	feasible := 0
	for trial := 0; trial < 400; trial++ {
		nVars := 1 + r.Intn(6)
		nRows := 1 + r.Intn(7)
		p := randomLP(r, nVars, nRows)
		ds, derr := SolveDense(p)
		ss, serr := Solve(p)
		if (derr == nil) != (serr == nil) {
			t.Fatalf("trial %d: dense err=%v sparse err=%v", trial, derr, serr)
		}
		if derr != nil {
			if !errors.Is(serr, derr) {
				t.Fatalf("trial %d: dense err=%v sparse err=%v", trial, derr, serr)
			}
			continue
		}
		feasible++
		// Optimal vertices may differ under degeneracy; objectives must not.
		tol := 1e-6 * (1 + math.Abs(ds.Objective))
		if math.Abs(ds.Objective-ss.Objective) > tol {
			t.Fatalf("trial %d: dense obj %g sparse obj %g", trial, ds.Objective, ss.Objective)
		}
		assertFeasible(t, p, ss.X)
	}
	if feasible < 50 {
		t.Fatalf("only %d feasible instances; generator too harsh", feasible)
	}
}

// TestSparseMatchesDenseLarge pushes past refactorEvery pivots so the
// eta-fold/refactor path is exercised, not just the pure eta file.
func TestSparseMatchesDenseLarge(t *testing.T) {
	r := rand.New(rand.NewSource(131))
	for trial := 0; trial < 10; trial++ {
		p := randomLP(r, 25, 35)
		ds, derr := SolveDense(p)
		ss, serr := Solve(p)
		if (derr == nil) != (serr == nil) {
			t.Fatalf("trial %d: dense err=%v sparse err=%v", trial, derr, serr)
		}
		if derr != nil {
			continue
		}
		tol := 1e-5 * (1 + math.Abs(ds.Objective))
		if math.Abs(ds.Objective-ss.Objective) > tol {
			t.Fatalf("trial %d: dense obj %g sparse obj %g", trial, ds.Objective, ss.Objective)
		}
		assertFeasible(t, p, ss.X)
	}
}

// TestSolveWarmMatchesCold re-solves perturbed copies of a base problem
// (objective and RHS drift, matrix fixed — the MPC shape) from the
// previous basis and requires the warm answer to match a cold solve
// while spending fewer total pivots.
func TestSolveWarmMatchesCold(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	base := randomLP(r, 8, 10)
	// Make the base comfortably feasible: LE rows with positive RHS.
	base.Constraints = nil
	for i := 0; i < 10; i++ {
		coeffs := make([]float64, base.NumVars)
		for j := range coeffs {
			if r.Float64() < 0.6 {
				coeffs[j] = r.Float64() * 2
			}
		}
		base.AddConstraint(coeffs, LE, 5+r.Float64()*10)
	}
	var basis *Basis
	coldIters, warmIters := 0, 0
	for period := 0; period < 20; period++ {
		p := &Problem{NumVars: base.NumVars, Objective: append([]float64(nil), base.Objective...)}
		for j := range p.Objective {
			p.Objective[j] += (r.Float64() - 0.5) * 0.2 * float64(period)
		}
		p.Constraints = make([]Constraint, len(base.Constraints))
		for i, c := range base.Constraints {
			p.Constraints[i] = Constraint{Coeffs: c.Coeffs, Sense: c.Sense,
				RHS: c.RHS + (r.Float64()-0.5)*0.5}
		}
		cold, err := Solve(p)
		if err != nil {
			t.Fatalf("period %d cold: %v", period, err)
		}
		warm, next, err := SolveWarm(p, basis)
		if err != nil {
			t.Fatalf("period %d warm: %v", period, err)
		}
		tol := 1e-6 * (1 + math.Abs(cold.Objective))
		if math.Abs(cold.Objective-warm.Objective) > tol {
			t.Fatalf("period %d: cold obj %g warm obj %g", period, cold.Objective, warm.Objective)
		}
		assertFeasible(t, p, warm.X)
		coldIters += cold.Iterations
		if period > 0 {
			warmIters += warm.Iterations
		}
		basis = next
	}
	if warmIters >= coldIters {
		t.Fatalf("warm starts saved nothing: warm %d pivots vs cold %d", warmIters, coldIters)
	}
	t.Logf("pivots: cold=%d warm=%d (periods 1..19)", coldIters, warmIters)
}

// TestSolveWarmBasisReusable verifies a Basis survives being used for
// several solves (SolveWarm must not mutate its argument).
func TestSolveWarmBasisReusable(t *testing.T) {
	p := &Problem{NumVars: 2, Objective: []float64{3, 5}}
	p.AddConstraint([]float64{1, 0}, LE, 4)
	p.AddConstraint([]float64{0, 2}, LE, 12)
	p.AddConstraint([]float64{3, 2}, LE, 18)
	_, basis, err := SolveWarm(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		s, _, err := SolveWarm(p, basis)
		if err != nil {
			t.Fatalf("reuse %d: %v", i, err)
		}
		if math.Abs(s.Objective-36) > 1e-9 {
			t.Fatalf("reuse %d: objective %g, want 36", i, s.Objective)
		}
		if s.Iterations != 0 {
			t.Fatalf("reuse %d: %d pivots from an optimal basis, want 0", i, s.Iterations)
		}
	}
}

// TestSolveWarmMismatchFallsBack feeds a basis from a structurally
// different problem; the solver must detect the mismatch and still
// return the correct cold answer.
func TestSolveWarmMismatchFallsBack(t *testing.T) {
	small := &Problem{NumVars: 2, Objective: []float64{1, 1}}
	small.AddConstraint([]float64{1, 1}, LE, 10)
	_, smallBasis, err := SolveWarm(small, nil)
	if err != nil {
		t.Fatal(err)
	}

	big := &Problem{NumVars: 2, Objective: []float64{3, 5}}
	big.AddConstraint([]float64{1, 0}, LE, 4)
	big.AddConstraint([]float64{0, 2}, LE, 12)
	big.AddConstraint([]float64{3, 2}, LE, 18)
	s, _, err := SolveWarm(big, smallBasis)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Objective-36) > 1e-9 {
		t.Fatalf("objective %g, want 36", s.Objective)
	}

	// Same shape, different matrix: the B⁻¹ verification must reject it.
	twisted := &Problem{NumVars: 2, Objective: []float64{3, 5}}
	twisted.AddConstraint([]float64{0, 1}, LE, 4)
	twisted.AddConstraint([]float64{2, 0}, LE, 12)
	twisted.AddConstraint([]float64{2, 3}, LE, 18)
	_, bigBasis, err := SolveWarm(big, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts, _, err := SolveWarm(twisted, bigBasis)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := SolveDense(twisted)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ts.Objective-ref.Objective) > 1e-9 {
		t.Fatalf("twisted: warm obj %g, dense obj %g", ts.Objective, ref.Objective)
	}
}

// TestSolveWarmInfeasibleRHS warm-starts into a RHS that makes the old
// basis primal-infeasible; the fallback cold solve must still detect
// overall infeasibility correctly.
func TestSolveWarmInfeasibleRHS(t *testing.T) {
	p := &Problem{NumVars: 2, Objective: []float64{1, 1}}
	p.AddConstraint([]float64{1, 1}, LE, 10)
	p.AddConstraint([]float64{1, 0}, GE, 2)
	_, basis, err := SolveWarm(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := &Problem{NumVars: 2, Objective: []float64{1, 1}}
	bad.AddConstraint([]float64{1, 1}, LE, 10)
	bad.AddConstraint([]float64{1, 0}, GE, 50)
	if _, _, err := SolveWarm(bad, basis); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("got %v, want ErrInfeasible", err)
	}
}

// TestSparseDegenerateBland forces Bland's rule from the very first
// pivot on Beale's classic cycling example; the solver must terminate at
// the optimum instead of cycling.
func TestSparseDegenerateBland(t *testing.T) {
	p := &Problem{NumVars: 4, Objective: []float64{0.75, -150, 0.02, -6}}
	p.AddConstraint([]float64{0.25, -60, -0.04, 9}, LE, 0)
	p.AddConstraint([]float64{0.5, -90, -0.02, 3}, LE, 0)
	p.AddConstraint([]float64{0, 0, 1, 0}, LE, 1)
	sv := newSparseSolver(standardize(p))
	sv.startCold()
	if err := sv.runBudget(10000, 0); err != nil {
		t.Fatalf("Bland-from-start failed: %v", err)
	}
	s := sv.solution(p)
	if math.Abs(s.Objective-0.05) > 1e-9 {
		t.Fatalf("objective %g, want 0.05", s.Objective)
	}
}

// TestSparseInfeasibleBigM: contradictory equality rows leave an
// artificial basic at a positive level, which the Big-M accounting must
// report as ErrInfeasible (not as a bogus optimum).
func TestSparseInfeasibleBigM(t *testing.T) {
	p := &Problem{NumVars: 2, Objective: []float64{1, 1}}
	p.AddConstraint([]float64{1, 1}, EQ, 2)
	p.AddConstraint([]float64{1, 1}, EQ, 5)
	if _, err := Solve(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("got %v, want ErrInfeasible", err)
	}
	p2 := &Problem{NumVars: 1, Objective: []float64{0}}
	p2.AddConstraint([]float64{1}, LE, 1)
	p2.AddConstraint([]float64{1}, GE, 3)
	if _, err := Solve(p2); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("got %v, want ErrInfeasible", err)
	}
}

// TestSparseZeroObjective: with an all-zero objective any feasible point
// is optimal; the solver must still drive artificials out and return a
// feasible x with objective exactly 0.
func TestSparseZeroObjective(t *testing.T) {
	p := &Problem{NumVars: 3, Objective: []float64{0, 0, 0}}
	p.AddConstraint([]float64{1, 1, 0}, EQ, 4)
	p.AddConstraint([]float64{0, 1, 1}, GE, 2)
	p.AddConstraint([]float64{1, 0, 1}, LE, 7)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Objective != 0 {
		t.Fatalf("objective %g, want exactly 0", s.Objective)
	}
	assertFeasible(t, p, s.X)
}

// TestSparseUnbounded mirrors the dense unbounded test through the
// sparse path.
func TestSparseUnbounded(t *testing.T) {
	p := &Problem{NumVars: 2, Objective: []float64{1, 1}}
	p.AddConstraint([]float64{1, -1}, GE, 1)
	if _, err := Solve(p); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("got %v, want ErrUnbounded", err)
	}
}
