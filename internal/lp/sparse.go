// Sparse revised simplex with product-form (eta) basis updates — the
// production engine behind Solve and SolveWarm.
//
// The CBS-RELAX constraint matrix is overwhelmingly sparse: every
// x(m,n,t) column touches a capacity row pair and one scheduled-count
// row, every z(m,t) column a handful of linkage rows. The dense tableau
// (retained in lp.go as SolveDense, the differential-testing reference)
// pays O(m·n) per pivot regardless; the revised simplex below stores the
// matrix column-wise, represents the basis inverse as a product of
// sparse eta matrices folded periodically into dense inverse columns,
// and re-prices from scratch each iteration, so a pivot costs roughly
// O(nnz(A) + m·|etas| + m²/refactorEvery).
//
// SolveWarm additionally accepts the Basis captured by a previous solve
// of a structurally identical problem (same variables, constraints, and
// coefficients; only the objective and right-hand side may differ).
// Consecutive MPC control periods are exactly that — one shifted
// forecast window apart — so the previous optimal basis is usually
// optimal or a few pivots away. A warm basis is verified (its stored
// inverse must invert this problem's basis columns) and checked for
// primal feasibility under the new right-hand side; on any mismatch the
// solver silently falls back to a cold Big-M start.
package lp

import (
	"errors"
	"math"
)

// Refactor policy: the eta file is folded into dense basis-inverse
// columns once applying the chain costs clearly more than a dense
// BTRAN/FTRAN would (total eta nonzeros past refactorNNZFactor·m²), or
// at a hard pivot cap that bounds accumulated roundoff. For the sparse
// CBS-RELAX instances the chain typically stays far below the nnz
// threshold for an entire solve, which is exactly why the revised
// simplex beats the dense tableau here.
const (
	refactorMaxEtas   = 4096
	refactorNNZFactor = 4
)

// spCol is one sparse constraint-matrix column (row indices ascending).
type spCol struct {
	idx []int32
	val []float64
}

func unitCol(row int, v float64) spCol {
	return spCol{idx: []int32{int32(row)}, val: []float64{v}}
}

// eta is one product-form pivot update: the transformed entering column
// at pivot row r, stored with its diagonal 1/pivot entry included.
// Applying it to v replaces v[r] with val_r·v_r and adds val_i·v_r to
// every off-pivot entry i.
type eta struct {
	r   int
	idx []int32
	val []float64
}

// Basis is the reusable state captured from an optimal solve: the basic
// column set, its inverse, and the right-hand side and basic values at
// capture time (needed to repair primal feasibility when the next
// problem's RHS has moved). SolveWarm uses it to seed the next solve of
// a structurally identical problem. It is opaque and immutable from the
// caller's point of view; a Basis may be reused for any number of warm
// solves.
type Basis struct {
	m, n int
	cols []int
	binv [][]float64 // column-major: binv[j] is column j of B^{-1}
	b    []float64   // standardized RHS the basis was optimal for
	xb   []float64   // basic values under b (all >= 0)
}

// std is a Problem in computational standard form: non-negative RHS,
// slack and artificial columns appended, costs carried as (real, Big-M)
// pairs, and the matrix stored column-wise.
type std struct {
	m, n       int
	cols       []spCol
	b          []float64
	cR, cM     []float64
	artificial []bool
	structural int
	initBasis  []int
}

// standardize mirrors the dense tableau's setup exactly: rows with
// negative RHS are flipped, LE rows get a +1 slack, GE rows a -1 surplus
// plus a +1 artificial, EQ rows a +1 artificial; artificial columns
// carry cost (0, -1) in (real, M) terms.
func standardize(p *Problem) *std {
	m := len(p.Constraints)
	type nrow struct {
		coeffs []float64
		sense  Sense
		rhs    float64
	}
	rows := make([]nrow, m)
	for i, c := range p.Constraints {
		rows[i] = nrow{coeffs: c.Coeffs, sense: c.Sense, rhs: c.RHS}
		if c.RHS < 0 {
			flipped := make([]float64, len(c.Coeffs))
			for j, v := range c.Coeffs {
				flipped[j] = -v
			}
			rows[i].coeffs = flipped
			rows[i].rhs = -c.RHS
			switch c.Sense {
			case LE:
				rows[i].sense = GE
			case GE:
				rows[i].sense = LE
			}
		}
	}
	slacks, arts := 0, 0
	for _, r := range rows {
		switch r.sense {
		case LE:
			slacks++
		case GE:
			slacks++
			arts++
		case EQ:
			arts++
		}
	}
	n := p.NumVars + slacks + arts
	s := &std{
		m: m, n: n,
		cols:       make([]spCol, n),
		b:          make([]float64, m),
		cR:         make([]float64, n),
		cM:         make([]float64, n),
		artificial: make([]bool, n),
		structural: p.NumVars,
		initBasis:  make([]int, m),
	}
	copy(s.cR, p.Objective)
	// Row-major append keeps each column's row indices ascending.
	for i, r := range rows {
		s.b[i] = r.rhs
		for j, v := range r.coeffs {
			if v != 0 {
				s.cols[j].idx = append(s.cols[j].idx, int32(i))
				s.cols[j].val = append(s.cols[j].val, v)
			}
		}
	}
	slackCol := p.NumVars
	artCol := p.NumVars + slacks
	for i, r := range rows {
		switch r.sense {
		case LE:
			s.cols[slackCol] = unitCol(i, 1)
			s.initBasis[i] = slackCol
			slackCol++
		case GE:
			s.cols[slackCol] = unitCol(i, -1)
			slackCol++
			s.cols[artCol] = unitCol(i, 1)
			s.artificial[artCol] = true
			s.cM[artCol] = -1
			s.initBasis[i] = artCol
			artCol++
		case EQ:
			s.cols[artCol] = unitCol(i, 1)
			s.artificial[artCol] = true
			s.cM[artCol] = -1
			s.initBasis[i] = artCol
			artCol++
		}
	}
	return s
}

// sparseSolver is the revised-simplex iteration state.
type sparseSolver struct {
	*std
	basis  []int
	inB    []bool
	binv   [][]float64 // column-major; nil while the inverse is the identity
	etas   []eta
	etaNNZ int       // total nonzeros across the eta file
	xB     []float64 // current basic values B^{-1}b

	uR, uM []float64 // BTRAN scratch (c_B transformed through the etas)
	yR, yM []float64 // dual pair
	w      []float64 // FTRAN scratch (transformed entering column)
	rho    []float64 // BTRAN scratch for one row of B^{-1} (dual simplex)
	iters  int
	// mActive is whether any artificial column is currently basic; once
	// the artificials are driven out the Big-M dual components are
	// identically zero and the M half of pricing is skipped.
	mActive bool
}

func newSparseSolver(s *std) *sparseSolver {
	return &sparseSolver{
		std:   s,
		basis: make([]int, s.m),
		inB:   make([]bool, s.n),
		xB:    make([]float64, s.m),
		uR:    make([]float64, s.m),
		uM:    make([]float64, s.m),
		yR:    make([]float64, s.m),
		yM:    make([]float64, s.m),
		w:     make([]float64, s.m),
		rho:   make([]float64, s.m),
	}
}

// refreshMActive rescans the basis for basic artificials.
func (sv *sparseSolver) refreshMActive() {
	sv.mActive = false
	for _, bj := range sv.basis {
		if sv.artificial[bj] {
			sv.mActive = true
			return
		}
	}
}

// startCold installs the all-slack/artificial Big-M starting basis.
func (sv *sparseSolver) startCold() {
	copy(sv.basis, sv.initBasis)
	copy(sv.xB, sv.b)
	for i := range sv.inB {
		sv.inB[i] = false
	}
	for _, bj := range sv.basis {
		sv.inB[bj] = true
	}
	sv.binv = nil
	sv.etas = sv.etas[:0]
	sv.etaNNZ = 0
	sv.refreshMActive()
}

// startWarm seeds the solver from a previous basis. ok reports whether
// the basis matches this problem structurally (shape, and a stored
// inverse that actually inverts this problem's basis columns); feasible
// reports whether the basic values are non-negative under the new
// right-hand side. On ok && !feasible the caller may attempt the
// dual-simplex repair; on !ok it must startCold.
func (sv *sparseSolver) startWarm(wb *Basis) (ok, feasible bool) {
	if wb == nil || wb.m != sv.m || wb.n != sv.n ||
		len(wb.cols) != sv.m || len(wb.binv) != sv.m {
		return false, false
	}
	for i := range sv.inB {
		sv.inB[i] = false
	}
	for i, c := range wb.cols {
		if c < 0 || c >= sv.n || sv.inB[c] {
			return false, false
		}
		sv.basis[i] = c
		sv.inB[c] = true
	}
	// Deep-copy the inverse: refactoring mutates it in place, and the
	// caller may reuse the same Basis for another solve.
	sv.binv = make([][]float64, sv.m)
	for j, col := range wb.binv {
		if len(col) != sv.m {
			return false, false
		}
		sv.binv[j] = append([]float64(nil), col...)
	}
	sv.etas = sv.etas[:0]
	sv.etaNNZ = 0
	sv.refreshMActive()
	// The stored inverse must actually invert this problem's basis
	// columns: B⁻¹·A_basis[k] ≈ e_k. A structural mismatch — changed
	// coefficients, reordered rows, a flipped negative-RHS row — surfaces
	// here and forces a cold solve instead of a silently wrong answer.
	for k := 0; k < sv.m; k++ {
		sv.ftran(sv.cols[sv.basis[k]], sv.w)
		for i, v := range sv.w {
			want := 0.0
			if i == k {
				want = 1
			}
			if math.Abs(v-want) > 1e-6 {
				return false, false
			}
		}
	}
	// Primal feasibility for the new RHS: the previous optimal vertex
	// must still be a vertex of the shifted polytope.
	sv.computeXB()
	for _, v := range sv.xB {
		if v < -1e-7 {
			return true, false
		}
	}
	return true, true
}

// computeXB recomputes the basic values B⁻¹b. Callers guarantee the eta
// file is empty (fresh warm start or just-refactored state).
func (sv *sparseSolver) computeXB() {
	if sv.binv == nil {
		copy(sv.xB, sv.b)
		return
	}
	for i := range sv.xB {
		sv.xB[i] = 0
	}
	for i, bi := range sv.b {
		if bi == 0 {
			continue
		}
		col := sv.binv[i]
		for r := range sv.xB {
			sv.xB[r] += bi * col[r]
		}
	}
}

// ftran computes out = B⁻¹·a: the folded inverse first, then the eta
// file in application order.
func (sv *sparseSolver) ftran(a spCol, out []float64) {
	for i := range out {
		out[i] = 0
	}
	if sv.binv == nil {
		for t, i := range a.idx {
			out[i] = a.val[t]
		}
	} else {
		for t, i := range a.idx {
			v := a.val[t]
			col := sv.binv[i]
			for r := range out {
				out[r] += v * col[r]
			}
		}
	}
	for k := range sv.etas {
		e := &sv.etas[k]
		t := out[e.r]
		if t == 0 {
			continue
		}
		out[e.r] = 0
		for q, i := range e.idx {
			out[i] += e.val[q] * t
		}
	}
}

// computeDuals computes the dual pair yᵀ = c_Bᵀ·B⁻¹ by BTRAN: transform
// c_B through the etas in reverse, then through the folded inverse. The
// Big-M half is skipped once no artificial is basic (c_B's M part, and
// hence y's, is identically zero from then on).
func (sv *sparseSolver) computeDuals() {
	for i, bj := range sv.basis {
		sv.uR[i] = sv.cR[bj]
	}
	for k := len(sv.etas) - 1; k >= 0; k-- {
		e := &sv.etas[k]
		var sR float64
		for q, i := range e.idx {
			sR += sv.uR[i] * e.val[q]
		}
		sv.uR[e.r] = sR
	}
	if sv.mActive {
		for i, bj := range sv.basis {
			sv.uM[i] = sv.cM[bj]
		}
		for k := len(sv.etas) - 1; k >= 0; k-- {
			e := &sv.etas[k]
			var sM float64
			for q, i := range e.idx {
				sM += sv.uM[i] * e.val[q]
			}
			sv.uM[e.r] = sM
		}
	}
	if sv.binv == nil {
		copy(sv.yR, sv.uR)
		if sv.mActive {
			copy(sv.yM, sv.uM)
		}
		return
	}
	if sv.mActive {
		for j := 0; j < sv.m; j++ {
			col := sv.binv[j]
			var sR, sM float64
			for i, c := range col {
				sR += sv.uR[i] * c
				sM += sv.uM[i] * c
			}
			sv.yR[j], sv.yM[j] = sR, sM
		}
		return
	}
	for j := 0; j < sv.m; j++ {
		col := sv.binv[j]
		var sR float64
		for i, c := range col {
			sR += sv.uR[i] * c
		}
		sv.yR[j] = sR
	}
}

// reducedCost prices one column against the current duals.
func (sv *sparseSolver) reducedCost(j int) (real, bigM float64) {
	col := &sv.cols[j]
	var dR float64
	for q, i := range col.idx {
		dR += sv.yR[i] * col.val[q]
	}
	if !sv.mActive {
		return sv.cR[j] - dR, sv.cM[j]
	}
	var dM float64
	for q, i := range col.idx {
		dM += sv.yM[i] * col.val[q]
	}
	return sv.cR[j] - dR, sv.cM[j] - dM
}

// chooseEntering mirrors the dense tableau's rules: Dantzig on the
// lexicographic (M, real) reduced cost with the same tie-breaking, Bland
// (lowest eligible index) once the grace budget is spent. Artificial
// columns never re-enter.
func (sv *sparseSolver) chooseEntering(bland bool) int {
	if bland {
		for j := 0; j < sv.n; j++ {
			if sv.inB[j] || sv.artificial[j] {
				continue
			}
			if r, mm := sv.reducedCost(j); betterThanZero(r, mm) {
				return j
			}
		}
		return -1
	}
	best := -1
	bestR, bestM := 0.0, 0.0
	for j := 0; j < sv.n; j++ {
		if sv.inB[j] || sv.artificial[j] {
			continue
		}
		r, mm := sv.reducedCost(j)
		if !betterThanZero(r, mm) {
			continue
		}
		if best < 0 || mm > bestM+eps || (math.Abs(mm-bestM) <= eps && r > bestR) {
			best, bestR, bestM = j, r, mm
		}
	}
	return best
}

// chooseLeaving runs the ratio test on the transformed entering column,
// breaking ties toward the smallest basic column index (Bland-safe).
func (sv *sparseSolver) chooseLeaving() int {
	leave := -1
	best := math.Inf(1)
	for i := 0; i < sv.m; i++ {
		if sv.w[i] > eps {
			ratio := sv.xB[i] / sv.w[i]
			if ratio < best-eps ||
				(math.Abs(ratio-best) <= eps && (leave < 0 || sv.basis[i] < sv.basis[leave])) {
				best = ratio
				leave = i
			}
		}
	}
	return leave
}

// pivot performs the basis exchange as an eta update: the basic values
// move along the entering direction, and B⁻¹ gains one sparse factor
// instead of a dense elimination pass.
func (sv *sparseSolver) pivot(row, col int) {
	pv := sv.w[row]
	inv := 1 / pv
	theta := sv.xB[row] * inv
	var idx []int32
	var val []float64
	for i, wi := range sv.w {
		if i == row || wi == 0 {
			continue
		}
		sv.xB[i] -= theta * wi
		idx = append(idx, int32(i))
		val = append(val, -wi*inv)
	}
	idx = append(idx, int32(row))
	val = append(val, inv)
	sv.xB[row] = theta
	sv.etas = append(sv.etas, eta{r: row, idx: idx, val: val})
	sv.etaNNZ += len(idx)
	leaving := sv.basis[row]
	sv.inB[leaving] = false
	sv.basis[row] = col
	sv.inB[col] = true
	if sv.mActive && sv.artificial[leaving] {
		// Entering columns are never artificial, so mActive only ever
		// turns off; rescan once the departing column was the last one.
		sv.refreshMActive()
	}
	if len(sv.etas) >= refactorMaxEtas || sv.etaNNZ > refactorNNZFactor*sv.m*sv.m {
		sv.refactor()
	}
}

// refactor folds the eta file into the dense basis-inverse columns and
// resynchronizes the basic values from the original right-hand side.
func (sv *sparseSolver) refactor() {
	if sv.binv == nil {
		//harmony:allow hotpathalloc one-time lazy init behind the nil check; reused across refactors
		sv.binv = make([][]float64, sv.m)
		for j := range sv.binv {
			col := make([]float64, sv.m) //harmony:allow hotpathalloc one-time lazy init behind the nil check; reused across refactors
			col[j] = 1
			sv.binv[j] = col
		}
	}
	for k := range sv.etas {
		e := &sv.etas[k]
		for _, col := range sv.binv {
			t := col[e.r]
			if t == 0 {
				continue
			}
			col[e.r] = 0
			for q, i := range e.idx {
				col[i] += e.val[q] * t
			}
		}
	}
	sv.etas = sv.etas[:0]
	sv.etaNNZ = 0
	sv.computeXB()
}

var (
	// errIterLimit aborts a run that exhausted its pivot budget; warm
	// paths treat it as "retry cold" rather than a user-facing error.
	errIterLimit = errors.New("lp: iteration limit exceeded")
	// errWarmRepair aborts the dual-simplex repair; the caller falls
	// back to a cold solve, which re-derives the correct verdict.
	errWarmRepair = errors.New("lp: warm-start repair abandoned")
)

// runBudget is the simplex loop with explicit iteration budgets; tests
// use it to force Bland's rule from the first pivot.
//
//harmony:hotpath
func (sv *sparseSolver) runBudget(maxIter, blandAfter int) error {
	for iter := 0; iter < maxIter; iter++ {
		sv.computeDuals()
		enter := sv.chooseEntering(iter >= blandAfter)
		if enter < 0 {
			return sv.checkFeasible()
		}
		sv.ftran(sv.cols[enter], sv.w)
		leave := sv.chooseLeaving()
		if leave < 0 {
			if err := sv.checkFeasible(); err != nil {
				return err
			}
			return ErrUnbounded
		}
		sv.iters++
		sv.pivot(leave, enter)
	}
	return errIterLimit
}

// btranRow computes sv.rho = e_rᵀ·B⁻¹, row r of the basis inverse (the
// pivot row generator for the dual simplex).
func (sv *sparseSolver) btranRow(r int) {
	// The M duals are unused on the artificial-free dual path, so their
	// scratch vector is free here.
	u := sv.uM
	for i := range u {
		u[i] = 0
	}
	u[r] = 1
	for k := len(sv.etas) - 1; k >= 0; k-- {
		e := &sv.etas[k]
		var s float64
		for q, i := range e.idx {
			s += u[i] * e.val[q]
		}
		u[e.r] = s
	}
	if sv.binv == nil {
		copy(sv.rho, u)
		return
	}
	for j := 0; j < sv.m; j++ {
		col := sv.binv[j]
		var s float64
		for i, c := range col {
			if u[i] != 0 {
				s += u[i] * c
			}
		}
		sv.rho[j] = s
	}
}

// runDual restores primal feasibility after an RHS change with dual
// simplex pivots: the basis must be dual feasible for the current
// objective (it was just re-optimized against the old RHS) and
// artificial-free. Any anomaly — dual unboundedness (an infeasibility
// proof the caller re-derives with a cold solve), a vanishing pivot,
// the iteration cap — bails with errWarmRepair instead of guessing.
//
// Reduced costs are priced once and then updated incrementally across
// pivots (rc_j ← rc_j − θ_d·w_j). Drift in them cannot corrupt the
// answer: the basis and xB updates are exact regardless of which
// eligible pivot is chosen, and the primal cleanup that follows
// re-prices from scratch — stale rc only risks a longer path.
//
//harmony:hotpath
func (sv *sparseSolver) runDual() error {
	maxIter := 500 * (sv.m + sv.n + 10)
	rc := make([]float64, sv.n)   //harmony:allow hotpathalloc per-solve pricing vector, not per-pivot
	wrow := make([]float64, sv.n) //harmony:allow hotpathalloc per-solve pricing vector, not per-pivot
	sv.computeDuals()
	for j := 0; j < sv.n; j++ {
		if sv.inB[j] || sv.artificial[j] {
			continue
		}
		r, _ := sv.reducedCost(j)
		if r > 0 {
			r = 0 // clamp post-optimal rounding drift
		}
		rc[j] = r
	}
	for iter := 0; iter < maxIter; iter++ {
		// Leaving row: most negative basic value.
		r, worst := -1, -1e-7
		for i, v := range sv.xB {
			if v < worst {
				r, worst = i, v
			}
		}
		if r < 0 {
			return nil // primal feasible again
		}
		sv.btranRow(r)
		// Entering column: dual ratio test over columns that can absorb
		// the infeasibility (pivot-row entry < 0), smallest |rc/w| wins,
		// ties toward the lowest column index.
		enter, bestRatio := -1, math.Inf(1)
		for j := 0; j < sv.n; j++ {
			if sv.inB[j] || sv.artificial[j] {
				continue
			}
			col := &sv.cols[j]
			var wj float64
			for q, i := range col.idx {
				wj += sv.rho[i] * col.val[q]
			}
			wrow[j] = wj
			if wj >= -eps {
				continue
			}
			ratio := rc[j] / wj
			if ratio < bestRatio-eps ||
				(math.Abs(ratio-bestRatio) <= eps && (enter < 0 || j < enter)) {
				bestRatio, enter = ratio, j
			}
		}
		if enter < 0 {
			return errWarmRepair
		}
		sv.ftran(sv.cols[enter], sv.w)
		if math.Abs(sv.w[r]) <= eps {
			return errWarmRepair
		}
		// Update reduced costs over the pre-pivot nonbasic set, then
		// give the departing column its post-pivot value −θ_d.
		theta := rc[enter] / wrow[enter]
		for j := 0; j < sv.n; j++ {
			if sv.inB[j] || sv.artificial[j] {
				continue
			}
			v := rc[j] - theta*wrow[j]
			if v > 0 {
				v = 0
			}
			rc[j] = v
		}
		rc[sv.basis[r]] = -theta
		sv.iters++
		sv.pivot(r, enter)
	}
	return errWarmRepair
}

func (sv *sparseSolver) run() error {
	// Same budgets as the dense reference: Dantzig until the grace
	// budget is spent, then Bland's rule guarantees termination.
	return sv.runBudget(500*(sv.m+sv.n+10), 20*(sv.m+sv.n+10))
}

// checkFeasible rejects optima that still carry a positive artificial:
// with the symbolic Big-M cost that means no feasible point exists.
func (sv *sparseSolver) checkFeasible() error {
	for i, bj := range sv.basis {
		if sv.artificial[bj] && sv.xB[i] > 1e-7 {
			return ErrInfeasible
		}
	}
	return nil
}

func (sv *sparseSolver) solution(p *Problem) *Solution {
	x := make([]float64, p.NumVars)
	for i, bj := range sv.basis {
		if bj < sv.structural {
			v := sv.xB[i]
			if v < 0 && v > -1e-7 {
				v = 0
			}
			x[bj] = v
		}
	}
	obj := 0.0
	for j, c := range p.Objective {
		obj += c * x[j]
	}
	return &Solution{X: x, Objective: obj, Iterations: sv.iters}
}

// captureBasis folds any pending etas and hands the inverse columns to
// the returned Basis (the solver is done with them), together with the
// RHS/basic-value pair the dual-simplex repair needs next period.
func (sv *sparseSolver) captureBasis() *Basis {
	sv.refactor()
	b := &Basis{
		m:    sv.m,
		n:    sv.n,
		cols: append([]int(nil), sv.basis...),
		binv: sv.binv,
		b:    append([]float64(nil), sv.b...),
		xb:   append([]float64(nil), sv.xB...),
	}
	sv.binv = nil
	return b
}

// tryWarm attempts the full warm-start ladder from a prior basis:
//
//  1. structural verification (else cold),
//  2. still primal feasible → plain primal simplex,
//  3. infeasible under the new RHS → re-optimize against the OLD RHS
//     (primal, absorbs the objective drift, usually 0 pivots), then
//     dual simplex to walk the RHS change back to feasibility, then a
//     final primal cleanup.
//
// finished=false means the solver must be restarted cold; any verdict
// returned with finished=true was reached from a feasible start and is
// therefore trustworthy.
func (sv *sparseSolver) tryWarm(warm *Basis) (finished bool, err error) {
	ok, feasible := sv.startWarm(warm)
	if !ok {
		return false, nil
	}
	if feasible {
		if e := sv.run(); e != nil {
			if errors.Is(e, errIterLimit) {
				return false, nil
			}
			return true, e
		}
		return true, nil
	}
	// The repair needs the capture-time RHS and an artificial-free basis
	// (so the Big-M components vanish from the dual ratio test).
	if sv.mActive || len(warm.b) != sv.m || len(warm.xb) != sv.m {
		return false, nil
	}
	newB := sv.b
	sv.b = append([]float64(nil), warm.b...)
	copy(sv.xB, warm.xb)
	e := sv.run() // phase A: new objective, old RHS — warm basis is feasible here
	sv.b = newB
	if e != nil {
		// Unbounded here says nothing about the new-RHS problem's
		// feasibility; let the cold solve produce the verdict.
		return false, nil
	}
	sv.refactor() // fold etas and recompute xB under the NEW RHS
	if e := sv.runDual(); e != nil {
		return false, nil
	}
	if e := sv.run(); e != nil { // phase C: usually 0 pivots
		if errors.Is(e, errIterLimit) {
			return false, nil
		}
		return true, e
	}
	return true, nil
}

// Solve runs the sparse revised simplex from a cold Big-M start and
// returns an optimal solution.
func Solve(p *Problem) (*Solution, error) {
	sol, _, err := SolveWarm(p, nil)
	return sol, err
}

// SolveWarm solves p seeded from the basis of a previous solve and
// returns the solution together with the optimal basis for the next
// call. A nil, mismatched, or infeasible-under-the-new-RHS basis falls
// back to a cold solve; the answer is optimal either way, so callers can
// thread the returned Basis through a solve sequence unconditionally.
func SolveWarm(p *Problem, warm *Basis) (*Solution, *Basis, error) {
	if err := p.validate(); err != nil {
		return nil, nil, err
	}
	s := standardize(p)
	if warm != nil {
		sv := newSparseSolver(s)
		if finished, err := sv.tryWarm(warm); finished {
			if err != nil {
				return nil, nil, err
			}
			return sv.solution(p), sv.captureBasis(), nil
		}
		// Fall through to a pristine cold solver: tryWarm left pivot
		// state behind, but s itself is untouched.
	}
	sv := newSparseSolver(s)
	sv.startCold()
	if err := sv.run(); err != nil {
		return nil, nil, err
	}
	return sv.solution(p), sv.captureBasis(), nil
}
